package systolic

import (
	"systolic/internal/memmodel"
	"systolic/internal/trace"
	"systolic/internal/workload"
)

// Workload bundles a program, topology, word-level semantics and
// expected outputs (see internal/workload).
type Workload = workload.Workload

// FIROptions configures the Fig 2 FIR generator.
type FIROptions = workload.FIROptions

// MatVecOptions configures the matrix–vector generator.
type MatVecOptions = workload.MatVecOptions

// MatMulOptions configures the 2-D mesh matrix-multiply generator.
type MatMulOptions = workload.MatMulOptions

// SortOptions configures the odd-even transposition sort generator.
type SortOptions = workload.SortOptions

// HornerOptions configures the polynomial-evaluation generator.
type HornerOptions = workload.HornerOptions

// AttentionOptions configures the attention/MoE operator-graph generator.
type AttentionOptions = workload.AttentionOptions

// StencilOptions configures the iterative mesh-stencil generator.
type StencilOptions = workload.StencilOptions

// FFTOptions configures the butterfly-network generator.
type FFTOptions = workload.FFTOptions

// PipelinedSortOptions configures the collection-free sorting-network
// generator.
type PipelinedSortOptions = workload.PipelinedSortOptions

// Fig7Options sizes the Fig 7 example.
type Fig7Options = workload.Fig7Options

// FIR generates the Fig 2 k-tap FIR filter program with semantics.
func FIR(opts FIROptions) (*Workload, error) { return workload.FIR(opts) }

// MatVec generates y = A·x on a linear array.
func MatVec(opts MatVecOptions) (*Workload, error) { return workload.MatVec(opts) }

// MatMul generates C = A·B on a 2-D mesh.
func MatMul(opts MatMulOptions) (*Workload, error) { return workload.MatMul(opts) }

// SortNetwork generates odd-even transposition sort on a linear array.
func SortNetwork(opts SortOptions) (*Workload, error) { return workload.Sort(opts) }

// HornerEval generates systolic polynomial evaluation by Horner's rule
// on a linear array.
func HornerEval(opts HornerOptions) (*Workload, error) { return workload.Horner(opts) }

// AttentionGraph generates an attention/MoE-style operator graph:
// router → experts → combiner on a linear array.
func AttentionGraph(opts AttentionOptions) (*Workload, error) { return workload.Attention(opts) }

// StencilGraph generates an iterative neighbor-exchange stencil on a
// 2-D mesh.
func StencilGraph(opts StencilOptions) (*Workload, error) { return workload.Stencil(opts) }

// FFTGraph generates an in-place butterfly network (Walsh–Hadamard
// arithmetic) on a linear array.
func FFTGraph(opts FFTOptions) (*Workload, error) { return workload.FFT(opts) }

// PipelinedSortNetwork generates odd-even transposition sort without
// host collection; it scales to 10k+ cells.
func PipelinedSortNetwork(opts PipelinedSortOptions) (*Workload, error) {
	return workload.PipelinedSort(opts)
}

// The paper's figure programs.
var (
	// Fig2Workload is the exact 3-tap / 2-output FIR program of Fig 2.
	Fig2Workload = workload.Fig2
	// Fig3Workload illustrates queue-sequence assignment (Fig 3).
	Fig3Workload = workload.Fig3
	// Fig5P1Workload…Fig5P3Workload are the deadlocked programs of Fig 5.
	Fig5P1Workload = workload.Fig5P1
	Fig5P2Workload = workload.Fig5P2
	Fig5P3Workload = workload.Fig5P3
	// Fig6Workload is the cyclic-yet-deadlock-free program of Fig 6.
	Fig6Workload = workload.Fig6
	// Fig8Workload and Fig9Workload are the interleaved-read/-write
	// queue-induced deadlock examples.
	Fig8Workload = workload.Fig8
	Fig9Workload = workload.Fig9
)

// Fig7Workload is the first queue-induced deadlock example (§4).
func Fig7Workload(opts Fig7Options) *Workload { return workload.Fig7(opts) }

// Memory-to-memory comparison (Fig 1).
type (
	// MemModelParams describes one pipeline configuration for the
	// Fig 1 comparison.
	MemModelParams = memmodel.Params
	// MemModelRow is one comparison line.
	MemModelRow = memmodel.Row
)

// MemModelTable evaluates Fig 1's systolic vs memory-to-memory
// comparison over a parameter sweep.
func MemModelTable(params []MemModelParams) ([]MemModelRow, error) { return memmodel.Table(params) }

// MemModelDefaultSweep is the grid the Fig 1 experiment reports.
func MemModelDefaultSweep() []MemModelParams { return memmodel.DefaultSweep() }

// Rendering helpers (text diagrams in the style of the figures).

// RenderProgram renders a program one column per cell (Fig 2 style).
func RenderProgram(p *Program) string { return trace.ProgramTable(p) }

// RenderSchedule renders crossing-off rounds (Fig 4 style).
func RenderSchedule(p *Program, rounds []CrossoffRound) string {
	return trace.ScheduleTable(p, rounds)
}

// RenderLabels renders a labeling sorted by label.
func RenderLabels(p *Program, l Labeling) string { return trace.Labels(p, l) }

// RenderTimeline renders queue bind/release events (Fig 7 style).
func RenderTimeline(p *Program, t Topology, res *RunResult) string {
	return trace.Timeline(p, t, res.Timeline)
}

// RenderQueueSequences renders each message's route (Fig 3 style).
func RenderQueueSequences(p *Program, t Topology) (string, error) {
	return trace.QueueSequences(p, t)
}

// RenderRun summarizes a simulation outcome.
func RenderRun(p *Program, res *RunResult) string { return trace.RunSummary(p, res) }

// RenderQueueStats renders per-queue lifetime counters of a run.
func RenderQueueStats(p *Program, t Topology, res *RunResult) string {
	return trace.QueueStatsTable(p, t, res.Stats.Queues)
}
