package systolic

import (
	"context"

	"systolic/internal/diff"
	"systolic/internal/gen"
)

// Randomized scenario generation and the differential oracle (see
// internal/gen and internal/diff): manufacture thousands of
// well-formed systolic programs from a seed and cross-check the
// analyzer's Theorem 1 verdict against what the simulator actually
// does, under a matrix of policies, queue budgets, and capacities.
// Each scenario's matrix runs against one compiled machine (the
// oracle analyzes once and Execute reuses the cached compile), so
// oracle throughput scales with simulation work, not setup.
type (
	// GenOptions are the scenario-generation knobs (cells, messages,
	// word counts, interleave depth, cyclicity, mutations, topology).
	GenOptions = gen.Options
	// GenTopoKind selects the generated topology family.
	GenTopoKind = gen.TopoKind
	// Scenario is one generated program/topology pair, reproducible
	// from its seed and resolved options.
	Scenario = gen.Scenario
	// DiffOptions configures the differential oracle.
	DiffOptions = diff.Options
	// DiffResult is the oracle's verdict on one scenario.
	DiffResult = diff.Result
	// DiffFinding is one violation or expected counterexample.
	DiffFinding = diff.Finding
	// DiffReport is the order-stable outcome of a batch DiffRun.
	DiffReport = diff.Report
)

// Generated topology families.
const (
	// GenTopoAuto picks a family per seed.
	GenTopoAuto = gen.TopoAuto
	// GenTopoLinear generates 1-D arrays.
	GenTopoLinear = gen.TopoLinear
	// GenTopoRing generates rings.
	GenTopoRing = gen.TopoRing
	// GenTopoMesh generates 2-D meshes.
	GenTopoMesh = gen.TopoMesh
)

// GenerateProgram builds the scenario for a seed: a valid program
// over a linear, ring, or mesh topology. The same (seed, opts) always
// yields the identical scenario.
func GenerateProgram(seed int64, opts GenOptions) (*Scenario, error) {
	return gen.Generate(seed, opts)
}

// DiffCheck runs the differential oracle on one scenario: Analyze,
// then Execute under every configured policy × queue budget ×
// capacity, asserting the paper's invariants (Theorem 1 completion,
// stream equality and integrity, labeling consistency) and minimizing
// any counterexample.
func DiffCheck(sc *Scenario, opts DiffOptions) DiffResult {
	return diff.Check(sc, opts)
}

// DiffRun generates and checks n scenarios with seeds seed…seed+n-1
// across a bounded worker pool. The report is byte-identical for any
// worker count; any finding is replayable from its scenario seed
// alone.
func DiffRun(ctx context.Context, n int, seed int64, opts DiffOptions) (*DiffReport, error) {
	return diff.Run(ctx, n, seed, opts)
}
