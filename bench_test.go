// Benchmarks regenerate the paper's figures as measured workloads, one
// benchmark per figure (the paper has no numeric tables; its
// "evaluation" is Figures 1–10), plus ablations for the design choices
// the paper calls out. Custom metrics report the figure-level outcome
// (cycles, speedups, deadlock counts) alongside the usual ns/op:
//
//	go test -bench=. -benchmem
//
// EXPERIMENTS.md records the paper-vs-measured correspondence.
package systolic_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"systolic"
	"systolic/internal/assign"
	"systolic/internal/machine"
	"systolic/internal/verify"
)

// mustAnalyze analyzes a workload or aborts the benchmark.
func mustAnalyze(b *testing.B, w *systolic.Workload, opts systolic.AnalyzeOptions) *systolic.Analysis {
	b.Helper()
	a, err := systolic.Analyze(w.Program, w.Topology, opts)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkFig01_CommunicationModels measures the systolic vs
// memory-to-memory pipeline simulation of Fig 1 and reports the
// throughput ratio as a metric (the paper's "at least four local
// memory accesses" argument, quantified).
func BenchmarkFig01_CommunicationModels(b *testing.B) {
	params := systolic.MemModelParams{Cells: 8, Words: 4096, QueueAccess: 1, MemAccess: 4, Compute: 1}
	var rows []systolic.MemModelRow
	for b.Loop() {
		var err error
		rows, err = systolic.MemModelTable([]systolic.MemModelParams{params})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Speedup, "speedup")
	b.ReportMetric(float64(rows[0].Systolic), "systolic-cycles")
	b.ReportMetric(float64(rows[0].MemToMem), "memtomem-cycles")
}

// BenchmarkFig02_FIRGeneration measures building the Fig 2 program
// family at the paper's size and scaled up.
func BenchmarkFig02_FIRGeneration(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{3, 2}, {8, 64}, {16, 256}} {
		b.Run(fmt.Sprintf("k=%d,n=%d", tc.k, tc.n), func(b *testing.B) {
			var ops int
			for b.Loop() {
				w, err := systolic.FIR(systolic.FIROptions{Taps: tc.k, Outputs: tc.n})
				if err != nil {
					b.Fatal(err)
				}
				ops = w.Program.TotalOps()
			}
			b.ReportMetric(float64(ops), "program-ops")
		})
	}
}

// BenchmarkFig04_CrossingOff measures the crossing-off schedule of the
// Fig 2 program family (the Fig 4 analysis) and reports the number of
// rounds — 12 for the paper's 3-tap/2-output instance.
func BenchmarkFig04_CrossingOff(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{3, 2}, {8, 64}, {16, 256}} {
		w, err := systolic.FIR(systolic.FIROptions{Taps: tc.k, Outputs: tc.n})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("k=%d,n=%d", tc.k, tc.n), func(b *testing.B) {
			var rounds int
			for b.Loop() {
				rs, free := systolic.CrossOffSchedule(w.Program)
				if !free {
					b.Fatal("FIR not deadlock-free")
				}
				rounds = len(rs)
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkFig05_Classification measures the strict classifier on the
// three deadlocked programs and the lookahead classifier on P1.
func BenchmarkFig05_Classification(b *testing.B) {
	cases := []struct {
		name string
		w    *systolic.Workload
		la   bool
	}{
		{"P1-strict", systolic.Fig5P1Workload(), false},
		{"P1-lookahead", systolic.Fig5P1Workload(), true},
		{"P2-strict", systolic.Fig5P2Workload(), false},
		{"P3-lookahead", systolic.Fig5P3Workload(), true},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for b.Loop() {
				if tc.la {
					systolic.IsDeadlockFreeWithLookahead(tc.w.Program, 2)
				} else {
					systolic.IsDeadlockFree(tc.w.Program)
				}
			}
		})
	}
}

// BenchmarkFig06_CyclicProgram measures the full pipeline on the
// cyclic-yet-deadlock-free Fig 6 program over a ring.
func BenchmarkFig06_CyclicProgram(b *testing.B) {
	w := systolic.Fig6Workload()
	a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
	var cycles int
	for b.Loop() {
		res, err := systolic.Execute(a, systolic.ExecOptions{QueuesPerLink: 1, Capacity: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal(res.Outcome())
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkFig07_Avoidance contrasts naive FCFS (which deadlocks) with
// compatible assignment (which completes) on Fig 7's program with one
// queue per link. The deadlock metric is 1 when the policy stalled.
func BenchmarkFig07_Avoidance(b *testing.B) {
	w := systolic.Fig7Workload(systolic.Fig7Options{})
	a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
	for _, tc := range []struct {
		name   string
		policy systolic.PolicyKind
	}{
		{"naive-fcfs", systolic.NaiveFCFS},
		{"compatible", systolic.DynamicCompatible},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var deadlocked, cycles int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{
					Policy: tc.policy, QueuesPerLink: 1, Capacity: 1, Force: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				deadlocked = 0
				if res.Deadlocked {
					deadlocked = 1
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(deadlocked), "deadlocked")
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkFig08_InterleavedReads and BenchmarkFig09_InterleavedWrites
// sweep the queue count: one queue deadlocks (related messages need
// simultaneous queues), two completes.
func BenchmarkFig08_InterleavedReads(b *testing.B)  { interleavedBench(b, systolic.Fig8Workload()) }
func BenchmarkFig09_InterleavedWrites(b *testing.B) { interleavedBench(b, systolic.Fig9Workload()) }

func interleavedBench(b *testing.B, w *systolic.Workload) {
	a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
	for _, queues := range []int{1, 2} {
		b.Run(fmt.Sprintf("queues=%d", queues), func(b *testing.B) {
			var deadlocked int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{
					QueuesPerLink: queues, Capacity: 1, Force: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				deadlocked = 0
				if res.Deadlocked {
					deadlocked = 1
				}
			}
			b.ReportMetric(float64(deadlocked), "deadlocked")
		})
	}
}

// BenchmarkFig10_Lookahead measures the lookahead crossing-off on P1
// (the Fig 10 walkthrough) and on the generator-scale symmetric sort,
// which is the same phenomenon at size.
func BenchmarkFig10_Lookahead(b *testing.B) {
	b.Run("p1", func(b *testing.B) {
		w := systolic.Fig5P1Workload()
		for b.Loop() {
			res := systolic.CrossOff(w.Program, systolic.CrossoffOptions{
				Lookahead: true,
				Budget:    func(systolic.MessageID) int { return 2 },
			})
			if !res.DeadlockFree {
				b.Fatal("P1 rejected")
			}
		}
	})
	b.Run("symmetric-sort-n=16", func(b *testing.B) {
		w, err := systolic.SortNetwork(systolic.SortOptions{N: 16, Symmetric: true})
		if err != nil {
			b.Fatal(err)
		}
		for b.Loop() {
			if !systolic.IsDeadlockFreeWithLookahead(w.Program, 1) {
				b.Fatal("symmetric sort rejected")
			}
		}
	})
}

// BenchmarkTheorem1_Pipeline measures the complete avoidance pipeline
// (classify + label + precondition + simulate) on random deadlock-free
// programs; every run must complete (Theorem 1).
func BenchmarkTheorem1_Pipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var progs []*systolic.Program
	for i := 0; i < 32; i++ {
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells: 5, Messages: 6, MaxWords: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		progs = append(progs, p)
	}
	topo := systolic.LinearArray(5)
	i := 0
	for b.Loop() {
		p := progs[i%len(progs)]
		i++
		a, err := systolic.Analyze(p, topo, systolic.AnalyzeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := systolic.Execute(a, systolic.ExecOptions{Capacity: 2})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatalf("Theorem 1 violated: %s", res.Outcome())
		}
	}
}

// BenchmarkSweep measures the concurrent parameter-sweep engine over a
// 144-point grid (Figs 7 and 8 × 3 policies × 4 queue budgets × 3
// capacities × 2 lookaheads), single-worker vs all cores. Run with
// -benchmem: the grid re-runs the same analyzed configurations over
// and over, which is exactly the repeated-Run pattern the sim hot path
// was refactored for (pooled runner scratch, precomputed routes).
//
// Hot-path allocation counts across the two hot-path refactors (PR 1
// pooled the runner scratch; PR 3 replaced the engine with the
// compile-once machine + ready-set scheduler), measured with
// `go test -bench 'SimThroughput|Fig07' -benchmem -benchtime 200x`:
//
//	BenchmarkFig07_Avoidance/naive-fcfs     82 → 31 → 16 allocs/op
//	BenchmarkFig07_Avoidance/compatible     91 → 39 →  8 allocs/op
//	BenchmarkSimThroughput/k=3,n=64        155 → 74 →  8 allocs/op
//	BenchmarkSimThroughput/k=8,n=256       413 → 217 → 8 allocs/op
//	BenchmarkSimThroughput/k=16,n=1024     876 → 502 → 9 allocs/op
//
// and at the sweep level (this benchmark, workers=1, -benchtime 20x):
// 4542 → 2187 allocs/op, 551 → 206 KB/op, 1.61 → 0.70 ms/op — the
// compile-once machine makes per-run allocations O(1) in steady state
// (TestAllocGate* pins this). The batched-grid-execution pass
// (column-batched sweep driver with per-span core.Runner, direct-mode
// single-shard execution, policy-instance reuse, one-shot queue-buffer
// growth) then took the same grid from 0.70 ms / 2187 allocs/op to
// ~0.35 ms / 914 allocs/op steady-state — 2× end to end, ~6.4 allocs
// per grid point (TestAllocGateSweepBatch pins that). Identical
// simulated cycle counts throughout: all refactors are
// behavior-preserving; the engine-equivalence suite in internal/sim
// and the batched-vs-per-point suite in internal/sweep enforce
// byte-identical results.
func BenchmarkSweep(b *testing.B) {
	f7 := systolic.Fig7Workload(systolic.Fig7Options{})
	f8 := systolic.Fig8Workload()
	cases := []systolic.SweepCase{
		{Name: "fig7", Program: f7.Program, Topology: f7.Topology},
		{Name: "fig8", Program: f8.Program, Topology: f8.Topology},
	}
	axes := systolic.SweepAxes{
		Policies:   []systolic.PolicyKind{systolic.NaiveFCFS, systolic.StaticAssignment, systolic.DynamicCompatible},
		Queues:     []int{0, 1, 2, 3},
		Capacities: []int{1, 2, 4},
		Lookaheads: []int{0, 2},
		Seed:       1,
	}
	grid := axes.Size(len(cases))
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var deadlocks int
			for b.Loop() {
				rep, err := systolic.Sweep(context.Background(), cases, axes,
					systolic.SweepOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				deadlocks = len(rep.Deadlocked())
			}
			b.ReportMetric(float64(grid), "grid-points")
			b.ReportMetric(float64(deadlocks), "deadlocks")
		})
	}
}

// BenchmarkGenerate measures the randomized scenario generator at the
// fuzzing default (per-seed random knobs) and at a pinned large size.
// Baseline (Xeon 2.7 GHz, -benchtime 100x): ~25 µs/op default,
// ~83 µs/op large — generation is never the bottleneck of a fuzz run.
func BenchmarkGenerate(b *testing.B) {
	for _, tc := range []struct {
		name string
		opts systolic.GenOptions
	}{
		{"default", systolic.GenOptions{}},
		{"large", systolic.GenOptions{Cells: 16, Messages: 48, MaxWords: 8, Interleave: 6}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			seed := int64(0)
			var ops int
			for b.Loop() {
				sc, err := systolic.GenerateProgram(seed, tc.opts)
				if err != nil {
					b.Fatal(err)
				}
				seed++
				ops = sc.Program.TotalOps()
			}
			b.ReportMetric(float64(ops), "program-ops")
		})
	}
}

// BenchmarkDiffCheck measures the differential oracle end to end —
// generate, analyze, simulate the policy × budget × capacity matrix,
// assert every invariant — per scenario, single-worker vs all cores.
// Baseline (Xeon 2.7 GHz, -benchtime 100x): ~10.4 ms per 64-scenario
// batch single-worker, i.e. ~160 µs per scenario at 8 simulations
// each; `sysdl fuzz -n 500` completes in well under a second.
func BenchmarkDiffCheck(b *testing.B) {
	const n = 64
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var sims int
			for b.Loop() {
				rep, err := systolic.DiffRun(context.Background(), n, 1,
					systolic.DiffOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				if v := rep.Violations(); len(v) > 0 {
					b.Fatalf("oracle found violations: %v", v)
				}
				sims = 0
				for _, res := range rep.Results {
					sims += res.Runs
				}
			}
			b.ReportMetric(float64(n), "scenarios")
			b.ReportMetric(float64(sims), "simulations")
		})
	}
}

// BenchmarkSimThroughput measures simulator speed on the scaled FIR
// workload (cycles simulated per second is the interesting figure).
func BenchmarkSimThroughput(b *testing.B) {
	for _, tc := range []struct{ k, n int }{{3, 64}, {8, 256}, {16, 1024}} {
		w, err := systolic.FIR(systolic.FIROptions{Taps: tc.k, Outputs: tc.n})
		if err != nil {
			b.Fatal(err)
		}
		a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
		b.Run(fmt.Sprintf("k=%d,n=%d", tc.k, tc.n), func(b *testing.B) {
			var cycles int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{Capacity: 2, Logic: w.Logic})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal(res.Outcome())
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkMatMulMesh measures the 2-D mesh workload end to end.
func BenchmarkMatMulMesh(b *testing.B) {
	for _, n := range []int{3, 5} {
		w, err := systolic.MatMul(systolic.MatMulOptions{Rows: n, Inner: n, Cols: n})
		if err != nil {
			b.Fatal(err)
		}
		a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var cycles int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{Capacity: 2, Logic: w.Logic})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal(res.Outcome())
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblation_Labeling contrasts the trivial all-ones labeling
// (§5's "will not likely yield an efficient use of queues") with the
// §6 scheme: the trivial labeling inflates the simultaneous-assignment
// group and therefore the queues each link must have.
func BenchmarkAblation_Labeling(b *testing.B) {
	// Sort concentrates many messages on the host link, so label
	// quality directly controls the simultaneous-assignment group
	// size (trivial: everything shares label 1).
	w, err := systolic.SortNetwork(systolic.SortOptions{N: 8})
	if err != nil {
		b.Fatal(err)
	}
	a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
	trivial := systolic.TrivialLabels(w.Program)
	repTrivial, err := systolic.CheckPreconditions(w.Program, w.Topology, trivial.Dense, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("section6", func(b *testing.B) {
		for b.Loop() {
			if _, err := systolic.AssignLabels(w.Program, systolic.LabelOptions{}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(a.MinQueuesDynamic), "min-queues")
	})
	b.Run("trivial", func(b *testing.B) {
		for b.Loop() {
			systolic.TrivialLabels(w.Program)
		}
		b.ReportMetric(float64(repTrivial.MaxGroup), "min-queues")
	})
}

// BenchmarkAblation_QueueCapacity sweeps per-queue capacity on the
// Fig 2-family workload: deeper queues cut stalls until the pipeline
// bound takes over.
func BenchmarkAblation_QueueCapacity(b *testing.B) {
	w, err := systolic.FIR(systolic.FIROptions{Taps: 8, Outputs: 128})
	if err != nil {
		b.Fatal(err)
	}
	a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
	for _, capacity := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("capacity=%d", capacity), func(b *testing.B) {
			var cycles int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{Capacity: capacity, Logic: w.Logic})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal(res.Outcome())
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkAblation_StaticVsDynamic contrasts §7.1 and §7.2 on Fig 3's
// workload: static needs a queue per competing message, dynamic
// recycles queues at equal cycle cost here.
func BenchmarkAblation_StaticVsDynamic(b *testing.B) {
	w := systolic.Fig3Workload()
	a := mustAnalyze(b, w, systolic.AnalyzeOptions{})
	for _, tc := range []struct {
		name   string
		policy systolic.PolicyKind
		queues int
	}{
		{"static", systolic.StaticAssignment, 0},   // defaults to MinQueuesStatic
		{"dynamic", systolic.DynamicCompatible, 0}, // defaults to MinQueuesDynamic
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cycles, queues int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{
					Policy: tc.policy, QueuesPerLink: tc.queues, Capacity: 2,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal(res.Outcome())
				}
				cycles = res.Cycles
			}
			queues = a.MinQueuesDynamic
			if tc.policy == systolic.StaticAssignment {
				queues = a.MinQueuesStatic
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(queues), "queues-per-link")
		})
	}
}

// BenchmarkAblation_QueueExtension measures the §8 queue-extension
// trade: extra effective capacity at a per-access latency penalty.
func BenchmarkAblation_QueueExtension(b *testing.B) {
	w := systolic.Fig5P1Workload() // needs 2 words of buffering for A
	a, err := systolic.Analyze(w.Program, w.Topology, systolic.AnalyzeOptions{Lookahead: true, Capacity: 2})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name                   string
		capacity, ext, penalty int
	}{
		{"plain-capacity-2", 2, 0, 0},
		{"extension-1+1-penalty-1", 1, 1, 1},
		{"extension-1+1-penalty-4", 1, 1, 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var cycles int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{
					QueuesPerLink: 2,
					Capacity:      tc.capacity,
					ExtCapacity:   tc.ext,
					ExtPenalty:    tc.penalty,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal(res.Outcome())
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// largeLinearWorkload builds a daisy-chain wave over a cells-long
// linear array: message i travels cell i → cell i+1, and cell i+1
// reads all of message i before writing message i+1. Only ~2 messages
// are ever in flight, so at any cycle the overwhelming majority of
// cells, links, and messages are idle — the workload the ready-set
// scheduler's O(active) per-cycle cost is built for.
func largeLinearWorkload(b testing.TB, cells, words int) *systolic.Analysis {
	b.Helper()
	bd := systolic.NewProgram()
	ids := make([]systolic.CellID, cells)
	for i := range ids {
		ids[i] = bd.AddCell(fmt.Sprintf("C%d", i))
	}
	msgs := make([]systolic.MessageID, cells-1)
	for i := range msgs {
		msgs[i] = bd.DeclareMessage(fmt.Sprintf("M%d", i), ids[i], ids[i+1], words)
	}
	bd.WriteN(ids[0], msgs[0], words)
	for i := 1; i < cells-1; i++ {
		bd.ReadN(ids[i], msgs[i-1], words)
		bd.WriteN(ids[i], msgs[i], words)
	}
	bd.ReadN(ids[cells-1], msgs[cells-2], words)
	p, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	a, err := systolic.Analyze(p, systolic.LinearArray(cells), systolic.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkLargeLinear measures the compiled machine on mostly-idle
// large arrays. The figure to watch is ns/sim-cycle: under the old
// full-scan loop it grew linearly with the array size (every cycle
// touched every cell and queue pool); under the ready-set scheduler
// it stays roughly flat from 256 to 1024 cells because per-cycle cost
// follows the ~2 in-flight messages, not the array.
func BenchmarkLargeLinear(b *testing.B) {
	for _, cells := range []int{256, 1024} {
		a := largeLinearWorkload(b, cells, 4)
		b.Run(fmt.Sprintf("cells=%d", cells), func(b *testing.B) {
			var cycles int
			for b.Loop() {
				res, err := systolic.Execute(a, systolic.ExecOptions{Capacity: 2})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal(res.Outcome())
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns/sim-cycle")
		})
	}
}

// wideLinearProgram builds the busy counterpart of
// largeLinearWorkload: every interior cell word-interleaves
// R(M[i-1]) with W(M[i]), so once the wavefront fills, nearly all
// cells issue and nearly all messages are in flight every cycle —
// the per-cycle ready sets scale with the array, which is the regime
// sharded execution exists for.
func wideLinearProgram(b testing.TB, cells, words int) (*systolic.Program, systolic.Topology) {
	b.Helper()
	bd := systolic.NewProgram()
	ids := make([]systolic.CellID, cells)
	for i := range ids {
		ids[i] = bd.AddCell(fmt.Sprintf("C%d", i))
	}
	msgs := make([]systolic.MessageID, cells-1)
	for i := range msgs {
		msgs[i] = bd.DeclareMessage(fmt.Sprintf("M%d", i), ids[i], ids[i+1], words)
	}
	bd.WriteN(ids[0], msgs[0], words)
	for i := 1; i < cells-1; i++ {
		for w := 0; w < words; w++ {
			bd.Read(ids[i], msgs[i-1])
			bd.Write(ids[i], msgs[i])
		}
	}
	bd.ReadN(ids[cells-1], msgs[cells-2], words)
	p, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	return p, systolic.LinearArray(cells)
}

// wideLinearWorkload is wideLinearProgram through the full Analyze
// pipeline, for the gates that exercise the public Execute path.
func wideLinearWorkload(b testing.TB, cells, words int) *systolic.Analysis {
	b.Helper()
	p, topo := wideLinearProgram(b, cells, words)
	a, err := systolic.Analyze(p, topo, systolic.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// meshFlowProgram sends one message along every row and every column
// of a rows×cols mesh (XY routing keeps them on disjoint links), so
// the transport phase advances ~rows+cols multi-hop messages across
// ~rows·cols queue pools concurrently — the interior-advance-heavy
// counterpart to wideLinearProgram's issue-heavy wavefront.
func meshFlowProgram(b testing.TB, rows, cols, words int) (*systolic.Program, systolic.Topology) {
	b.Helper()
	bd := systolic.NewProgram()
	ids := make([]systolic.CellID, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			ids[r*cols+c] = bd.AddCell(fmt.Sprintf("P%d_%d", r, c))
		}
	}
	for r := 0; r < rows; r++ {
		m := bd.DeclareMessage(fmt.Sprintf("ROW%d", r), ids[r*cols], ids[r*cols+cols-1], words)
		bd.WriteN(ids[r*cols], m, words)
		bd.ReadN(ids[r*cols+cols-1], m, words)
	}
	for c := 0; c < cols; c++ {
		m := bd.DeclareMessage(fmt.Sprintf("COL%d", c), ids[c], ids[(rows-1)*cols+c], words)
		bd.WriteN(ids[c], m, words)
		bd.ReadN(ids[(rows-1)*cols+c], m, words)
	}
	p, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	return p, systolic.Mesh(rows, cols)
}

// BenchmarkRunParallel is the perf gate for deterministic sharded
// execution: the 1024-cell all-active wavefront and a 32×32 mesh
// flood, single-threaded vs 4 shards. The workloads are compiled
// directly (machine.Compile; the naive-FCFS policy needs no labels)
// because crossing-off a million-op program is analysis cost, not
// runner cost, and this benchmark measures the runner. The
// interesting figures are ns/sim-cycle per worker count and the
// allocs/op staying flat — the Results are byte-identical by
// construction, so this benchmark is purely about wall clock. On a
// single-CPU host the worker counts should roughly tie (the gang's
// barrier cost is a few µs against tens of µs of per-cycle work); the
// CI bench-smoke job records both sides in BENCH_parallel.json so the
// trajectory is tracked wherever it runs.
func BenchmarkRunParallel(b *testing.B) {
	build := func(p *systolic.Program, topo systolic.Topology) *machine.Machine {
		m, err := machine.Compile(p, topo, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}
	// 512 words give each cell a ~1024-cycle activity window, so once
	// the wavefront fills, essentially the whole 1024-cell array
	// issues every cycle.
	wp, wt := wideLinearProgram(b, 1024, 512)
	mp, mt := meshFlowProgram(b, 32, 32, 64)
	workloads := []struct {
		name string
		m    *machine.Machine
	}{
		{"wide-linear-1024", build(wp, wt)},
		{"mesh-32x32", build(mp, mt)},
	}
	for _, wl := range workloads {
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", wl.name, workers), func(b *testing.B) {
				var cycles int
				for b.Loop() {
					res, err := wl.m.Run(machine.ExecOptions{
						Policy:        assign.Naive(assign.FCFS, 0),
						QueuesPerLink: 1,
						Capacity:      2,
						Workers:       workers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Completed {
						b.Fatal(res.Outcome())
					}
					cycles = res.Cycles
				}
				b.ReportMetric(float64(cycles), "sim-cycles")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(cycles), "ns/sim-cycle")
			})
		}
	}
}
