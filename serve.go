package systolic

import (
	"context"
	"net/http"

	"systolic/internal/server"
)

// Simulation-as-a-service (see internal/server): a long-running
// HTTP/JSON daemon over the Analyze/Execute/Sweep pipeline with a
// content-addressed compiled-machine cache — repeated scenarios skip
// parsing, analysis, and compilation and go straight to a pooled
// machine run.
type (
	// ServeOptions configures the daemon: listen address, cache bound,
	// concurrency budget, result retention.
	ServeOptions = server.Options
	// ServeStats is the counter snapshot exposed by GET /v1/stats.
	ServeStats = server.StatsResponse
)

// Serve runs the simulation service on opts.Addr until ctx is
// cancelled, then shuts down gracefully. The sysdl serve verb is a
// thin wrapper around this.
func Serve(ctx context.Context, opts ServeOptions) error {
	return server.ListenAndServe(ctx, opts)
}

// NewServeHandler returns the service's HTTP handler without binding
// a listener, for callers embedding the service in their own server
// (custom TLS, middleware, muxes).
func NewServeHandler(opts ServeOptions) http.Handler {
	return server.New(opts).Handler()
}

// ServeRoutes lists the service's route patterns.
func ServeRoutes() []string { return server.Routes() }
