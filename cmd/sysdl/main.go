// Command sysdl analyzes and runs systolic programs written in the DSL
// (see internal/dsl for the grammar):
//
//	sysdl check  prog.sys            # deadlock-free? (strict and lookahead)
//	sysdl label  prog.sys            # §6 consistent labeling
//	sysdl plan   prog.sys            # queue requirements (Theorem 1)
//	sysdl run    prog.sys [flags]    # simulate
//	sysdl render prog.sys            # program table + routes
//	sysdl sweep  prog.sys [flags]    # run a grid of configurations
//	sysdl fuzz   [flags]             # differential oracle over generated programs
//
// FILE may be '-' for stdin. Flags for run: -queues N -capacity N
// -policy compatible|static|fcfs|lifo|random|adversarial -seed N
// -lookahead -timeline -force. Flags for sweep: -sweep-policies,
// -sweep-queues, -sweep-capacities, -sweep-lookaheads (comma-separated
// axis values) and -workers N; the report marks which configurations
// deadlock and which Theorem 1 budgets avoid it.
//
// fuzz takes no FILE: it generates -n seeded random scenarios
// (seeds -seed … -seed+n-1) and cross-checks the analyzer's Theorem 1
// verdict against the simulator, reporting invariant violations and
// minimized counterexamples. Pass -queues Q to force a budget below
// the Theorem 1 bound and watch the predicted deadlocks appear; any
// reported seed replays with -n 1 -seed S.
//
// Every verb accepts -cpuprofile FILE and -memprofile FILE, which
// write pprof profiles covering the whole command for `go tool
// pprof`.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"systolic/internal/cli"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]

	// fuzz generates its own programs — no FILE argument.
	var path string
	args := os.Args[2:]
	if cmd != "fuzz" {
		if len(os.Args) < 3 {
			usage()
		}
		path = os.Args[2]
		args = os.Args[3:]
	}

	opts := cli.DefaultSysdlOptions()
	fs := flag.NewFlagSet("sysdl "+cmd, flag.ExitOnError)
	opts.BindFlags(fs)
	_ = fs.Parse(args)
	if cmd == "fuzz" {
		// Flag parsing stops at the first non-flag argument, so a
		// stray FILE (or any trailing word) would silently swallow
		// every flag after it — refuse instead of fuzzing defaults.
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "sysdl: fuzz takes no FILE argument (got %q); flags after it were not parsed\n", fs.Arg(0))
			os.Exit(2)
		}
		// Refuse flags fuzz accepts syntactically but does not use, so
		// e.g. -lookahead is not mistaken for -fuzz-lookahead.
		ignored := map[string]string{
			"capacity":  "the oracle sweeps its own capacity grid",
			"policy":    "the oracle cross-checks the compatible and static policies",
			"lookahead": "use -fuzz-lookahead N for the §8 analysis budget",
			"timeline":  "not applicable to fuzz", "stats": "not applicable to fuzz",
			"force":          "not applicable to fuzz",
			"sweep-policies": "sweep-only flag", "sweep-queues": "sweep-only flag",
			"sweep-capacities": "sweep-only flag", "sweep-lookaheads": "sweep-only flag",
		}
		bad := false
		fs.Visit(func(f *flag.Flag) {
			if why, ok := ignored[f.Name]; ok {
				fmt.Fprintf(os.Stderr, "sysdl: fuzz does not use -%s (%s)\n", f.Name, why)
				bad = true
			}
		})
		if bad {
			os.Exit(2)
		}
	}

	var src string
	if cmd != "fuzz" {
		var err error
		src, err = readSource(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sysdl:", err)
			os.Exit(1)
		}
	}
	stopProfiles, err := cli.StartProfiles(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", err)
		os.Exit(1)
	}
	code, err := cli.Sysdl(os.Stdout, cmd, src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", err)
	}
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", perr)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sysdl check|label|plan|run|render|sweep FILE [flags]  (FILE '-' = stdin)")
	fmt.Fprintln(os.Stderr, "       sysdl fuzz [-n N -seed S -queues Q ...]               (differential oracle)")
	os.Exit(2)
}
