// Command sysdl analyzes and runs systolic programs written in the DSL
// (see internal/dsl for the grammar):
//
//	sysdl check  prog.sys            # deadlock-free? (strict and lookahead)
//	sysdl label  prog.sys            # §6 consistent labeling
//	sysdl plan   prog.sys            # queue requirements (Theorem 1)
//	sysdl run    prog.sys [flags]    # simulate
//	sysdl render prog.sys            # program table + routes
//	sysdl sweep  prog.sys [flags]    # run a grid of configurations
//
// FILE may be '-' for stdin. Flags for run: -queues N -capacity N
// -policy compatible|static|fcfs|lifo|random|adversarial -seed N
// -lookahead -timeline -force. Flags for sweep: -sweep-policies,
// -sweep-queues, -sweep-capacities, -sweep-lookaheads (comma-separated
// axis values) and -workers N; the report marks which configurations
// deadlock and which Theorem 1 budgets avoid it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"systolic/internal/cli"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]

	opts := cli.DefaultSysdlOptions()
	fs := flag.NewFlagSet("sysdl "+cmd, flag.ExitOnError)
	opts.BindFlags(fs)
	_ = fs.Parse(os.Args[3:])

	src, err := readSource(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", err)
		os.Exit(1)
	}
	code, err := cli.Sysdl(os.Stdout, cmd, src, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", err)
	}
	os.Exit(code)
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: sysdl check|label|plan|run|render|sweep FILE [flags]  (FILE '-' = stdin)")
	os.Exit(2)
}
