// Command sysdl analyzes, runs, and serves systolic programs written
// in the DSL (see docs/DSL.md for the grammar reference):
//
//	sysdl check  prog.sys            # deadlock-free? (strict and lookahead)
//	sysdl label  prog.sys            # §6 consistent labeling
//	sysdl plan   prog.sys            # queue requirements (Theorem 1)
//	sysdl run    prog.sys [flags]    # simulate
//	sysdl render prog.sys            # program table + routes
//	sysdl sweep  prog.sys [flags]    # run a grid of configurations
//	sysdl fuzz   [flags]             # differential oracle over generated programs
//	sysdl serve  [flags]             # HTTP simulation service with machine cache
//
// FILE may be '-' for stdin. Flags for run: -queues N -capacity N
// -policy compatible|static|fcfs|lifo|random|adversarial -seed N
// -lookahead -timeline -force -workers N (deterministic sharded
// execution: any worker count prints byte-identical output). Flags
// for sweep: -sweep-policies, -sweep-queues, -sweep-capacities,
// -sweep-lookaheads (comma-separated axis values) and -workers N; the
// report marks which configurations deadlock and which Theorem 1
// budgets avoid it.
//
// fuzz takes no FILE: it generates -n seeded random scenarios
// (seeds -seed … -seed+n-1) and cross-checks the analyzer's Theorem 1
// verdict against the simulator, reporting invariant violations and
// minimized counterexamples. Pass -queues Q to force a budget below
// the Theorem 1 bound and watch the predicted deadlocks appear;
// -run-workers W > 1 re-executes every simulation sharded across W
// workers and reports any divergence from the single-threaded run as
// a parallel-equivalence violation; any reported seed replays with
// -n 1 -seed S.
//
// serve also takes no FILE: it starts the HTTP/JSON daemon
// (-addr HOST:PORT -cache-size N -max-concurrency N -queue-wait N
// -tenants FILE) documented in docs/API.md and shuts down gracefully
// on SIGINT/SIGTERM. -queue-wait bounds how many requests may wait
// for a run slot before the daemon sheds with 429 + Retry-After;
// -tenants names a JSON file of per-tenant API keys and quotas
// (omitted = anonymous mode).
//
// Every verb accepts -cpuprofile FILE and -memprofile FILE, which
// write pprof profiles covering the whole command for `go tool
// pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"systolic/internal/cli"
)

// verbs enumerates every subcommand with its one-line summary, in
// display order. needsFile marks verbs that read a DSL FILE argument.
var verbs = []struct {
	name      string
	summary   string
	needsFile bool
}{
	{"check", "classify a program: deadlock-free or not (strict and §8 lookahead)", true},
	{"label", "print the §6 consistent message labeling", true},
	{"plan", "print Theorem 1's queues-per-link requirements", true},
	{"run", "simulate under a policy/queues/capacity configuration", true},
	{"render", "print the program table and message routes", true},
	{"sweep", "run a grid of configurations across a worker pool", true},
	{"fuzz", "differential oracle over generated random programs", false},
	{"serve", "HTTP simulation service with a compiled-machine cache", false},
}

func findVerb(name string) (int, bool) {
	for i, v := range verbs {
		if v.name == name {
			return i, true
		}
	}
	return 0, false
}

func main() {
	if len(os.Args) < 2 {
		usage(os.Stderr)
		os.Exit(2)
	}
	cmd := os.Args[1]
	switch cmd {
	case "-h", "-help", "--help", "help":
		usage(os.Stdout)
		return
	}
	vi, known := findVerb(cmd)
	if !known {
		fmt.Fprintf(os.Stderr, "sysdl: unknown verb %q\n", cmd)
		if near := closestVerb(cmd); near != "" {
			fmt.Fprintf(os.Stderr, "did you mean 'sysdl %s'?\n", near)
		}
		fmt.Fprintln(os.Stderr)
		usage(os.Stderr)
		os.Exit(2)
	}

	var path string
	args := os.Args[2:]
	if verbs[vi].needsFile {
		if len(os.Args) < 3 {
			fmt.Fprintf(os.Stderr, "sysdl: %s needs a FILE argument ('-' = stdin)\n\n", cmd)
			usage(os.Stderr)
			os.Exit(2)
		}
		path = os.Args[2]
		args = os.Args[3:]
	}

	opts := cli.DefaultSysdlOptions()
	fs := flag.NewFlagSet("sysdl "+cmd, flag.ExitOnError)
	opts.BindFlags(fs)
	_ = fs.Parse(args)
	if !verbs[vi].needsFile {
		// Flag parsing stops at the first non-flag argument, so a
		// stray FILE (or any trailing word) would silently swallow
		// every flag after it — refuse instead of running defaults.
		if fs.NArg() > 0 {
			fmt.Fprintf(os.Stderr, "sysdl: %s takes no FILE argument (got %q); flags after it were not parsed\n", cmd, fs.Arg(0))
			os.Exit(2)
		}
	}
	if cmd == "fuzz" {
		// Refuse flags fuzz accepts syntactically but does not use, so
		// e.g. -lookahead is not mistaken for -fuzz-lookahead.
		ignored := map[string]string{
			"capacity":  "the oracle sweeps its own capacity grid",
			"policy":    "the oracle cross-checks the compatible and static policies",
			"lookahead": "use -fuzz-lookahead N for the §8 analysis budget",
			"timeline":  "not applicable to fuzz", "stats": "not applicable to fuzz",
			"force":          "not applicable to fuzz",
			"sweep-policies": "sweep-only flag", "sweep-queues": "sweep-only flag",
			"sweep-capacities": "sweep-only flag", "sweep-lookaheads": "sweep-only flag",
		}
		bad := false
		fs.Visit(func(f *flag.Flag) {
			if why, ok := ignored[f.Name]; ok {
				fmt.Fprintf(os.Stderr, "sysdl: fuzz does not use -%s (%s)\n", f.Name, why)
				bad = true
			}
		})
		if bad {
			os.Exit(2)
		}
	}

	var src string
	if verbs[vi].needsFile {
		var err error
		src, err = readSource(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sysdl:", err)
			os.Exit(1)
		}
	}
	stopProfiles, err := cli.StartProfiles(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", err)
		os.Exit(1)
	}
	var code int
	if cmd == "serve" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		code, err = cli.Serve(ctx, os.Stdout, opts)
		stop()
	} else {
		code, err = cli.Sysdl(os.Stdout, cmd, src, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", err)
	}
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, "sysdl:", perr)
		if code == 0 {
			code = 1
		}
	}
	os.Exit(code)
}

func readSource(path string) (string, error) {
	if path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: sysdl VERB [FILE] [flags]   (FILE '-' = stdin; fuzz and serve take no FILE)")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "verbs:")
	for _, v := range verbs {
		arg := "FILE"
		if !v.needsFile {
			arg = "    "
		}
		fmt.Fprintf(w, "  %-7s %s  %s\n", v.name, arg, v.summary)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "run 'sysdl VERB -h' for the verb's flags")
}

// closestVerb suggests the nearest verb by edit distance, when it is
// near enough to plausibly be a typo.
func closestVerb(input string) string {
	best, bestDist := "", 3 // suggest only within distance 2
	for _, v := range verbs {
		if d := editDistance(input, v.name); d < bestDist {
			best, bestDist = v.name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between two short strings.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
