// Command figures regenerates every figure of Kung's "Deadlock
// Avoidance for Systolic Communication" (1988) from the library:
//
//	figures          # all figures
//	figures -fig 7   # one figure
//
// Output is text in the style of the paper; EXPERIMENTS.md records the
// correspondence.
package main

import (
	"flag"
	"fmt"
	"os"

	"systolic/internal/cli"
)

func main() {
	figFlag := flag.Int("fig", 0, "figure to regenerate (1-10); 0 = all")
	flag.Parse()

	var err error
	if *figFlag == 0 {
		err = cli.AllFigures(os.Stdout)
	} else {
		err = cli.Figure(os.Stdout, *figFlag)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}
