package queue

import (
	"testing"
	"testing/quick"
)

func TestFIFOOrder(t *testing.T) {
	q := New(4, 0, 0)
	for i := 0; i < 4; i++ {
		if !q.Push(Word(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(99) {
		t.Fatal("push into full queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.FrontReady() {
			t.Fatalf("front not ready at %d", i)
		}
		if got := q.Pop(); got != Word(i) {
			t.Fatalf("pop %d = %v", i, got)
		}
	}
	if q.FrontReady() {
		t.Fatal("empty queue claims ready front")
	}
}

func TestCapacityZeroNeverAccepts(t *testing.T) {
	q := New(0, 0, 0)
	if q.CanAccept() || q.Push(1) {
		t.Fatal("latch accepted a buffered word")
	}
	if q.TotalCapacity() != 0 {
		t.Fatal("latch capacity not zero")
	}
}

func TestNegativeArgsClamped(t *testing.T) {
	q := New(-3, -1, -2)
	if q.Capacity() != 0 || q.TotalCapacity() != 0 {
		t.Fatal("negative capacities not clamped")
	}
}

func TestStatsMaxOccupancyAndWords(t *testing.T) {
	q := New(3, 0, 0)
	q.Push(1)
	q.Push(2)
	q.Pop()
	q.Push(3)
	q.Push(4)
	s := q.Stats()
	if s.WordsPassed != 4 {
		t.Fatalf("WordsPassed=%d", s.WordsPassed)
	}
	if s.MaxOccupancy != 3 {
		t.Fatalf("MaxOccupancy=%d", s.MaxOccupancy)
	}
}

func TestExtensionAccountingAndPenalty(t *testing.T) {
	// Base 1, extension 2, penalty 2 cycles.
	q := New(1, 2, 2)
	if q.TotalCapacity() != 3 {
		t.Fatal("total capacity wrong")
	}
	q.Push(10)
	q.Push(11)
	q.Push(12) // occupancy 3 > base 1: in extension
	if !q.FrontReady() {
		t.Fatal("front should be ready before first pop")
	}
	got := q.Pop() // popped while occupancy 3 > 1: extension access
	if got != 10 {
		t.Fatalf("pop = %v", got)
	}
	if q.Stats().ExtAccesses != 1 {
		t.Fatalf("ExtAccesses=%d", q.Stats().ExtAccesses)
	}
	// Penalty cooldown: front not ready for 2 ticks.
	if q.FrontReady() {
		t.Fatal("front ready during cooldown")
	}
	q.Tick()
	if q.FrontReady() {
		t.Fatal("front ready after one tick of two")
	}
	q.Tick()
	if !q.FrontReady() {
		t.Fatal("front not ready after cooldown")
	}
	q.Pop() // occupancy was 2 > base: another extension access
	if q.Stats().ExtAccesses != 2 {
		t.Fatalf("ExtAccesses=%d", q.Stats().ExtAccesses)
	}
	q.Tick()
	q.Tick()
	q.Pop() // occupancy was 1 ≤ base: normal access
	if q.Stats().ExtAccesses != 2 {
		t.Fatalf("final pop counted as extension: %d", q.Stats().ExtAccesses)
	}
}

func TestNoExtensionNoPenalty(t *testing.T) {
	q := New(2, 0, 5) // penalty configured but no extension region
	q.Push(1)
	q.Push(2)
	q.Pop()
	if !q.FrontReady() {
		t.Fatal("penalty applied without extension")
	}
}

func TestResetCountsRebinds(t *testing.T) {
	q := New(2, 0, 0)
	q.Push(1)
	q.Reset()
	if q.Len() != 0 || q.Stats().Rebinds != 1 {
		t.Fatalf("after reset: len=%d rebinds=%d", q.Len(), q.Stats().Rebinds)
	}
	q.Reset()
	if q.Stats().Rebinds != 2 {
		t.Fatal("second rebind not counted")
	}
}

// TestQuickFIFOProperty: any push/pop interleaving preserves order and
// never exceeds capacity.
func TestQuickFIFOProperty(t *testing.T) {
	f := func(ops []bool, capSel uint8) bool {
		capacity := int(capSel)%5 + 1
		q := New(capacity, 0, 0)
		var modelQ []Word
		next := Word(0)
		for _, push := range ops {
			if push {
				ok := q.Push(next)
				wantOK := len(modelQ) < capacity
				if ok != wantOK {
					return false
				}
				if ok {
					modelQ = append(modelQ, next)
				}
				next++
			} else {
				if q.FrontReady() != (len(modelQ) > 0) {
					return false
				}
				if len(modelQ) > 0 {
					if q.Pop() != modelQ[0] {
						return false
					}
					modelQ = modelQ[1:]
				}
			}
			if q.Len() != len(modelQ) || q.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
