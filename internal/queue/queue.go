// Package queue implements the word FIFOs that sit between adjacent
// cells (§2.3), including the paper's two buffering regimes:
//
//   - capacity 0: a latch with "no buffering capability" (§3.2) — a
//     word can only pass through in a rendezvous, never park;
//   - capacity c ≥ 1: a FIFO able to buffer c words (§8), optionally
//     extended into the receiving cell's local memory (the iWarp
//     "queue extension", §8.1) at the price of a per-access latency
//     penalty.
package queue

// Word is the unit of transfer. Real systolic machines move fixed-size
// machine words; float64 covers every workload in this repository
// (signal processing and integer sorting alike).
type Word float64

// Stats aggregates a queue's lifetime counters.
type Stats struct {
	// MaxOccupancy is the largest number of buffered words observed.
	MaxOccupancy int
	// WordsPassed counts words that entered the queue.
	WordsPassed int
	// ExtAccesses counts pops served from the extension region (words
	// buffered beyond the base capacity).
	ExtAccesses int
	// Rebinds counts how many times the queue was reassigned to a new
	// message.
	Rebinds int
}

// Queue is a bounded FIFO of words with an optional extension region.
// The zero value is unusable; use New.
type Queue struct {
	capacity   int // base hardware capacity; 0 = pure latch
	ext        int // extension capacity beyond base (0 = none)
	extPenalty int // extra ready-delay per pop while extension in use

	buf      []Word
	cooldown int // cycles before the front word becomes available
	stats    Stats
}

// New returns a queue with the given base capacity, extension capacity
// and extension access penalty (cycles added before a pop when the
// occupancy exceeds the base capacity). Negative arguments are treated
// as zero.
func New(capacity, ext, extPenalty int) *Queue {
	q := &Queue{}
	q.Init(capacity, ext, extPenalty)
	return q
}

// Init (re)initializes a queue in place to the pristine state New would
// produce, keeping the buffer's backing array so pooled simulator state
// can be reused across runs without reallocating.
func (q *Queue) Init(capacity, ext, extPenalty int) {
	if capacity < 0 {
		capacity = 0
	}
	if ext < 0 {
		ext = 0
	}
	if extPenalty < 0 {
		extPenalty = 0
	}
	q.capacity = capacity
	q.ext = ext
	q.extPenalty = extPenalty
	q.buf = q.buf[:0]
	q.cooldown = 0
	q.stats = Stats{}
}

// Capacity returns the base capacity.
func (q *Queue) Capacity() int { return q.capacity }

// TotalCapacity returns base + extension capacity.
func (q *Queue) TotalCapacity() int { return q.capacity + q.ext }

// Len returns the number of buffered words.
func (q *Queue) Len() int { return len(q.buf) }

// Empty reports whether no words are buffered.
func (q *Queue) Empty() bool { return len(q.buf) == 0 }

// CanAccept reports whether a Push would succeed. A capacity-0 latch
// can never hold a word across cycles, so it only "accepts" via the
// simulator's rendezvous path, never via Push.
func (q *Queue) CanAccept() bool {
	return len(q.buf) < q.capacity+q.ext
}

// Push appends a word; it reports false (and buffers nothing) if the
// queue is full.
func (q *Queue) Push(w Word) bool {
	if !q.CanAccept() {
		return false
	}
	if len(q.buf) == cap(q.buf) && cap(q.buf) < q.capacity+q.ext {
		// Grow straight to the full capacity: one allocation per queue
		// lifetime instead of append's doubling chain, and a reused
		// queue (Init keeps the backing array) never grows again.
		nb := make([]Word, len(q.buf), q.capacity+q.ext)
		copy(nb, q.buf)
		q.buf = nb
	}
	q.buf = append(q.buf, w)
	q.stats.WordsPassed++
	if len(q.buf) > q.stats.MaxOccupancy {
		q.stats.MaxOccupancy = len(q.buf)
	}
	return true
}

// FrontReady reports whether the front word may be popped this cycle.
// It is false when the queue is empty or when an extension-access
// cooldown is still running.
func (q *Queue) FrontReady() bool {
	return len(q.buf) > 0 && q.cooldown == 0
}

// Front returns the front word; it must only be called when FrontReady.
func (q *Queue) Front() Word { return q.buf[0] }

// Pop removes and returns the front word. It must only be called when
// FrontReady. Popping while the occupancy exceeds the base capacity
// counts as an extension access and arms the penalty cooldown.
func (q *Queue) Pop() Word {
	w := q.buf[0]
	copy(q.buf, q.buf[1:])
	q.buf = q.buf[:len(q.buf)-1]
	if len(q.buf)+1 > q.capacity && q.ext > 0 {
		q.stats.ExtAccesses++
		q.cooldown = q.extPenalty
	}
	return w
}

// Tick advances per-cycle state (cooldowns). Call once per simulated
// cycle.
func (q *Queue) Tick() {
	if q.cooldown > 0 {
		q.cooldown--
	}
}

// Cooling reports whether an extension-access cooldown is still
// running: the queue is not stuck, it is waiting out the penalty. The
// simulator's deadlock detector must treat this as pending progress.
func (q *Queue) Cooling() bool { return q.cooldown > 0 }

// Reset empties the queue for reassignment to a new message ("a queue
// … can be assigned to another message only after the last word in the
// current message has passed", §2.3 — the simulator only resets empty
// queues; Reset tolerates leftovers for unit tests).
func (q *Queue) Reset() {
	q.buf = q.buf[:0]
	q.cooldown = 0
	q.stats.Rebinds++
}

// Stats returns a copy of the lifetime counters.
func (q *Queue) Stats() Stats { return q.stats }
