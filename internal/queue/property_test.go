package queue

import (
	"math/rand"
	"testing"

	"systolic/internal/gen"
	"systolic/internal/model"
)

// TestPropertyFIFOUnderGeneratedInterleavings drives one Queue per
// message with the op interleavings of generated programs: each cell's
// code is replayed as a schedule where W(m) enqueues message m's next
// word and R(m) dequeues one (when ready). A plain-slice reference
// model runs alongside; the Queue must agree on every pop, order
// included, under arbitrary interleavings of enqueue and dequeue.
func TestPropertyFIFOUnderGeneratedInterleavings(t *testing.T) {
	for seed := int64(0); seed < 80; seed++ {
		sc, err := gen.Generate(seed, gen.Options{Interleave: 4})
		if err != nil {
			t.Fatal(err)
		}
		p := sc.Program
		// One queue and one reference FIFO per message; capacities
		// cycle through small values to exercise the full/backoff
		// paths.
		qs := make([]*Queue, p.NumMessages())
		ref := make([][]Word, p.NumMessages())
		produced := make([]int, p.NumMessages())
		// credits[m] counts words force-drained by a full writer before
		// the reader reached its R(m); those reads are already
		// satisfied.
		credits := make([]int, p.NumMessages())
		for m := range qs {
			qs[m] = New(1+int(seed)%3, 0, 0)
		}
		// Replay every cell's schedule round-robin one op at a time so
		// enqueues and dequeues from different cells interleave the
		// way the simulator would interleave them.
		pcs := make([]int, p.NumCells())
		for remaining := p.TotalOps(); remaining > 0; {
			advanced := false
			for c := 0; c < p.NumCells(); c++ {
				if pcs[c] >= len(p.Code(model.CellID(c))) {
					continue
				}
				op := p.Code(model.CellID(c))[pcs[c]]
				m := int(op.Msg)
				if op.Kind == model.Write {
					w := Word(float64(m)*1e6 + float64(produced[m]))
					if !qs[m].CanAccept() {
						// Full: drain one word first so the schedule
						// always terminates; the displaced word
						// satisfies one future R(m).
						drain(t, qs[m], &ref[m], m)
						credits[m]++
					}
					if !qs[m].Push(w) {
						t.Fatalf("seed %d: push refused with CanAccept true", seed)
					}
					produced[m]++
					ref[m] = append(ref[m], w)
				} else if credits[m] > 0 {
					credits[m]--
				} else {
					if qs[m].Empty() {
						// Reader ahead of writer: skip this cell for
						// now; a later round supplies the word.
						continue
					}
					drain(t, qs[m], &ref[m], m)
				}
				pcs[c]++
				remaining--
				advanced = true
			}
			if !advanced {
				t.Fatalf("seed %d: schedule wedged at pcs=%v", seed, pcs)
			}
		}
		for m := range qs {
			for !qs[m].Empty() {
				drain(t, qs[m], &ref[m], m)
			}
			if len(ref[m]) != 0 {
				t.Fatalf("seed %d: message %d reference holds %d undelivered words", seed, m, len(ref[m]))
			}
		}
	}
}

// drain pops one word and checks it against the reference front.
func drain(t *testing.T, q *Queue, ref *[]Word, m int) {
	t.Helper()
	if !q.FrontReady() {
		t.Fatalf("message %d: queue not ready with %d buffered words", m, q.Len())
	}
	got := q.Pop()
	if len(*ref) == 0 {
		t.Fatalf("message %d: popped %v from an empty reference", m, got)
	}
	want := (*ref)[0]
	*ref = (*ref)[1:]
	if got != want {
		t.Fatalf("message %d: FIFO order broken: popped %v, want %v", m, got, want)
	}
}

// TestPropertyExtensionKeepsOrder: the §8 queue extension must delay
// pops, never reorder them — random push/pop interleavings with
// cooldowns ticked through.
func TestPropertyExtensionKeepsOrder(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		q := New(2, 1+rng.Intn(2), 1+rng.Intn(3))
		var ref []Word
		next := 0
		for step := 0; step < 500; step++ {
			q.Tick()
			if rng.Intn(2) == 0 && q.CanAccept() {
				w := Word(next)
				next++
				if !q.Push(w) {
					t.Fatalf("seed %d: push refused with CanAccept true", seed)
				}
				ref = append(ref, w)
			} else if q.FrontReady() {
				got := q.Pop()
				if got != ref[0] {
					t.Fatalf("seed %d: popped %v, want %v", seed, got, ref[0])
				}
				ref = ref[1:]
			}
		}
		for tick := 0; len(ref) > 0; tick++ {
			if tick > 1000 {
				t.Fatalf("seed %d: queue never became ready draining the tail (%d words left)", seed, len(ref))
			}
			q.Tick()
			if !q.FrontReady() {
				continue
			}
			got := q.Pop()
			if got != ref[0] {
				t.Fatalf("seed %d: tail popped %v, want %v", seed, got, ref[0])
			}
			ref = ref[1:]
		}
	}
}
