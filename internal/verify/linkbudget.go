package verify

// Link-timing analysis: what happens to Theorem 1's guarantees when
// the interconnect is retimed by a linkmodel.Plan. Every model the
// package ships is delay-only — a busy link always frees again within
// a finite window (at most the tallied words × the model's max
// factor) — so the situation mirrors a periodic fault, not a terminal
// one: any schedule that completes on the unit-latency array completes
// on the retimed one, merely stretched, and Theorem 1's queue budgets
// carry over unchanged. What the analysis quantifies is the stretch
// (the model's worst-case latency factor, which also scales the
// engines' derived cycle bounds) and which messages the model touches
// at all.

import (
	"systolic/internal/linkmodel"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// LinkImpact reports one link-timing model's effect on Theorem 1's
// guarantees, in the same shape FaultImpact reports a fault's.
type LinkImpact struct {
	// Model is the model in canonical spec form (linkmodel.ParseSpec
	// round-trips it).
	Model string
	// GuaranteeHolds reports whether Theorem 1's completion guarantee
	// survives. Always true: all shipped models are delay-only, so an
	// analyzer-approved configuration still completes (the fuzz
	// link-model invariant exercises exactly this claim).
	GuaranteeHolds bool
	// MaxFactor is the worst-case schedule stretch: the largest
	// per-link latency factor, plus the congestion model's maximum
	// backpressure. 1 means the model is timing-neutral.
	MaxFactor int
	// AffectedMessages lists, ascending, the messages whose route
	// crosses a link the model retimes (non-unit delay, limited
	// credit, or any congestion feedback).
	AffectedMessages []model.MessageID
	// MinQueuesDynamic and MinQueuesStatic are the Theorem 1 budgets,
	// unchanged from the unit-latency array: delay-only retiming never
	// grows a competing set.
	MinQueuesDynamic int
	MinQueuesStatic  int
}

// LinkBudgets evaluates a link-timing plan against a labeled, routed
// program. A nil or unit plan yields nil: there is nothing to report.
func LinkBudgets(routes [][]topology.Hop, dense []int, plan *linkmodel.Plan, numLinks int) *LinkImpact {
	lowered := linkmodel.Lower(plan, numLinks)
	if lowered == nil {
		return nil
	}
	var affected []model.MessageID
	for id := range routes {
		for _, h := range routes[id] {
			if linkRetimed(plan, h.Link) {
				affected = append(affected, model.MessageID(id))
				break
			}
		}
	}
	rep := CheckPreconditionsRoutes(routes, dense, 1<<30)
	return &LinkImpact{
		Model:            plan.String(),
		GuaranteeHolds:   true,
		MaxFactor:        lowered.MaxFactor(),
		AffectedMessages: affected,
		MinQueuesDynamic: rep.MaxGroup,
		MinQueuesStatic:  rep.MaxCompeting,
	}
}

// linkRetimed reports whether the plan gives link lk non-unit timing:
// a service delay above 1, a finite word credit (bandwidth limit), or
// — for the congestion model — any feedback at all.
func linkRetimed(p *linkmodel.Plan, lk topology.LinkID) bool {
	switch p.Kind {
	case linkmodel.Congestion:
		return p.Delay > 1 || p.Credit > 0 || p.MaxExtra > 0
	case linkmodel.Fixed:
		delay, credit := p.Delay, p.Credit
		for _, o := range p.Overrides {
			if o.Link == lk {
				if o.Delay > 0 {
					delay = o.Delay
				}
				if o.Credit > 0 {
					credit = o.Credit
				}
			}
		}
		return delay > 1 || credit > 0
	}
	return false
}
