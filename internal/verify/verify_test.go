package verify

import (
	"math/rand"
	"reflect"
	"testing"

	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/model"
	"systolic/internal/topology"
)

func TestRandomDeadlockFreeIsAlwaysDeadlockFree(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, err := RandomDeadlockFree(rng, RandomOptions{
			Cells:    2 + rng.Intn(5),
			Messages: 1 + rng.Intn(8),
			MaxWords: 4,
			Chain:    seed%2 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !crossoff.Classify(p, crossoff.Options{}) {
			t.Fatalf("seed %d: generated program not deadlock-free:\n%s", seed, p)
		}
	}
}

func TestRandomDeadlockFreeValidatesOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomDeadlockFree(rng, RandomOptions{Cells: 1, Messages: 1}); err == nil {
		t.Fatal("1 cell accepted")
	}
	if _, err := RandomDeadlockFree(rng, RandomOptions{Cells: 2, Messages: 0}); err == nil {
		t.Fatal("0 messages accepted")
	}
}

func TestSection6LabelsRandomPrograms(t *testing.T) {
	// The paper claims the §6 scheme produces a consistent labeling
	// for any deadlock-free program; validate over many random ones.
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, err := RandomDeadlockFree(rng, RandomOptions{
			Cells:    2 + rng.Intn(5),
			Messages: 1 + rng.Intn(8),
			MaxWords: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		lab, err := label.Assign(p, label.Options{})
		if err != nil {
			t.Fatalf("seed %d: labeling failed: %v\n%s", seed, err, p)
		}
		if err := label.Check(p, lab.ByMessage); err != nil {
			t.Fatalf("seed %d: inconsistent labeling: %v\n%s", seed, err, p)
		}
	}
}

func TestMutateToDeadlockFindsNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	found := 0
	for i := 0; i < 20; i++ {
		p, err := RandomDeadlockFree(rng, RandomOptions{Cells: 3, Messages: 4, MaxWords: 3})
		if err != nil {
			t.Fatal(err)
		}
		if mutant, ok := MutateToDeadlock(rng, p, 50); ok {
			found++
			if crossoff.Classify(mutant, crossoff.Options{}) {
				t.Fatal("MutateToDeadlock returned a deadlock-free program")
			}
		}
	}
	if found == 0 {
		t.Fatal("mutation never produced a deadlocked program in 20 tries")
	}
}

func TestSwapAdjacent(t *testing.T) {
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c1, c2, 1)
	b.Write(c1, a).Write(c1, bb)
	b.Read(c2, a).Read(c2, bb)
	p := b.MustBuild()

	q, err := SwapAdjacent(p, c1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Code(c1)[0].Msg != bb || q.Code(c1)[1].Msg != a {
		t.Fatal("swap did not exchange ops")
	}
	if p.Code(c1)[0].Msg != a {
		t.Fatal("swap mutated the original")
	}
	if _, err := SwapAdjacent(p, c1, 5); err == nil {
		t.Fatal("out-of-range swap accepted")
	}
}

func TestRebuildPreservesHostFlag(t *testing.T) {
	b := model.NewBuilder()
	h := b.AddHost("Host")
	c := b.AddCell("C1")
	a := b.DeclareMessage("A", h, c, 1)
	b.Write(h, a)
	b.Read(c, a)
	p := b.MustBuild()
	q, err := Rebuild(p, [][]model.Op{p.Code(h), p.Code(c)})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Cell(h).Host {
		t.Fatal("host flag lost in rebuild")
	}
}

func TestCheckPreconditionsFig8Shape(t *testing.T) {
	// A and B related (same label) and both crossing one link: the
	// report must demand 2 queues.
	b := model.NewBuilder()
	cs := b.AddCells("C", 3)
	a := b.DeclareMessage("A", cs[1], cs[2], 4)
	bb := b.DeclareMessage("B", cs[0], cs[2], 3)
	b.WriteN(cs[0], bb, 3)
	b.WriteN(cs[1], a, 4)
	b.Read(cs[2], a).Read(cs[2], bb).Read(cs[2], a).Read(cs[2], a)
	b.Read(cs[2], bb).Read(cs[2], bb).Read(cs[2], a)
	p := b.MustBuild()

	lab, err := label.Assign(p, label.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckPreconditions(p, topology.Linear(3), lab.Dense, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxGroup != 2 {
		t.Fatalf("MaxGroup=%d, want 2", rep.MaxGroup)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("no violation reported with 1 queue")
	}
	rep, err = CheckPreconditions(p, topology.Linear(3), lab.Dense, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations with 2 queues: %v", rep.Violations)
	}
	_ = a
}

func TestSuggestFixesRepairsP2AndP3(t *testing.T) {
	// P2: both cells write before reading.
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c2, c1, 1)
	b.Write(c1, a).Read(c1, bb)
	b.Write(c2, bb).Read(c2, a)
	p2 := b.MustBuild()

	fixes := SuggestFixes(p2, 0)
	if len(fixes) == 0 {
		t.Fatal("no fix found for P2")
	}
	for _, f := range fixes {
		q, err := SwapAdjacent(p2, f.Cell, f.Index)
		if err != nil {
			t.Fatal(err)
		}
		if !crossoff.Classify(q, crossoff.Options{}) {
			t.Fatalf("suggested fix %v does not repair P2", f)
		}
		if DescribeFix(p2, f) == "" {
			t.Fatal("empty fix description")
		}
	}

	// P3: both cells read before writing; symmetric, also one swap.
	b = model.NewBuilder()
	c1 = b.AddCell("C1")
	c2 = b.AddCell("C2")
	a = b.DeclareMessage("A", c1, c2, 1)
	bb = b.DeclareMessage("B", c2, c1, 1)
	b.Read(c1, bb).Write(c1, a)
	b.Read(c2, a).Write(c2, bb)
	p3 := b.MustBuild()
	if len(SuggestFixes(p3, 0)) == 0 {
		t.Fatal("no fix found for P3")
	}
}

func TestSuggestFixesHonorsLimit(t *testing.T) {
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c2, c1, 1)
	b.Write(c1, a).Read(c1, bb)
	b.Write(c2, bb).Read(c2, a)
	p := b.MustBuild()
	if got := SuggestFixes(p, 1); len(got) > 1 {
		t.Fatalf("limit ignored: %d fixes", len(got))
	}
}

func TestSuggestFixesEmptyOnDeadlockFree(t *testing.T) {
	// Fix search only reports swaps that *repair*; a deadlock-free
	// program trivially reports whatever swaps keep it free — callers
	// gate on classification first, but the function must not panic.
	rng := rand.New(rand.NewSource(3))
	p, err := RandomDeadlockFree(rng, RandomOptions{Cells: 3, Messages: 3, MaxWords: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = SuggestFixes(p, 2)
}

func TestLabelAndCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, err := RandomDeadlockFree(rng, RandomOptions{Cells: 4, Messages: 6, MaxWords: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := LabelAndCheck(p, topology.Linear(4))
	if err != nil {
		t.Fatal(err)
	}
	if got.Report.MaxGroup < 1 || got.Report.MaxCompeting < got.Report.MaxGroup {
		t.Fatalf("report %+v", got.Report)
	}
}

// TestViolationsDeterministicOrder is the regression test for the
// sysvet detorder finding in CheckPreconditionsRoutes: Violations was
// built by ranging over the competing-messages map and the label
// groups map, so its order differed run to run even though the report
// escapes into core.Analysis and wire responses. Links and labels
// must now come out in ascending order on every call.
func TestViolationsDeterministicOrder(t *testing.T) {
	hop := func(l topology.LinkID) []topology.Hop {
		return []topology.Hop{{Link: l, From: 0, To: 1}}
	}
	// Links 0, 1, and 2 each carry two label groups of two messages;
	// with one queue per link that is six violations across three
	// links — plenty of map keys for a nondeterministic order to show.
	routes := [][]topology.Hop{
		hop(0), hop(0), hop(0), hop(0),
		hop(1), hop(1), hop(1), hop(1),
		hop(2), hop(2), hop(2), hop(2),
	}
	dense := []int{0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5}
	want := []string{
		"link 0: 2 competing messages share label 0 but only 1 queues",
		"link 0: 2 competing messages share label 1 but only 1 queues",
		"link 1: 2 competing messages share label 2 but only 1 queues",
		"link 1: 2 competing messages share label 3 but only 1 queues",
		"link 2: 2 competing messages share label 4 but only 1 queues",
		"link 2: 2 competing messages share label 5 but only 1 queues",
	}
	for i := 0; i < 100; i++ {
		rep := CheckPreconditionsRoutes(routes, dense, 1)
		if !reflect.DeepEqual(rep.Violations, want) {
			t.Fatalf("iteration %d: violations out of order:\ngot  %v\nwant %v", i, rep.Violations, want)
		}
		if rep.MaxGroup != 2 || rep.MaxCompeting != 4 {
			t.Fatalf("MaxGroup=%d MaxCompeting=%d, want 2 and 4", rep.MaxGroup, rep.MaxCompeting)
		}
	}
}
