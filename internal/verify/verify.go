// Package verify provides the correctness harness around Theorem 1:
// precondition checks (assumption (ii) — enough queues for every
// equal-label group of competing messages), random generation of
// deadlock-free programs (correct by construction), and mutation-based
// generation of deadlocked programs.
package verify

import (
	"fmt"
	"math/rand"
	"sort"

	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// PreconditionReport lists per-link requirements for Theorem 1's
// assumption (ii) under a given labeling.
type PreconditionReport struct {
	// MaxGroup is the largest number of competing messages sharing a
	// label on any single link — the minimum queues-per-link for the
	// dynamic compatible policy.
	MaxGroup int
	// MaxCompeting is the largest number of competing messages on any
	// link — the minimum queues-per-link for the static policy.
	MaxCompeting int
	// Violations describes links whose same-label group exceeds the
	// supplied queue count (empty when queuesPerLink ≥ MaxGroup).
	Violations []string
}

// CheckPreconditions evaluates assumption (ii) of Theorem 1 for a
// program, a topology, a dense labeling, and a queue count.
func CheckPreconditions(p *model.Program, t topology.Topology, dense []int, queuesPerLink int) (PreconditionReport, error) {
	routes, err := topology.Routes(p, t)
	if err != nil {
		return PreconditionReport{}, err
	}
	return CheckPreconditionsRoutes(routes, dense, queuesPerLink), nil
}

// CheckPreconditionsRoutes is CheckPreconditions over precomputed
// routes, for pipelines (core.Analyze) that have already routed the
// program and should not pay for routing twice. Links and labels are
// visited in sorted order so Violations is deterministic: the report
// flows into core.Analysis and from there into wire responses, which
// must be byte-identical run to run.
func CheckPreconditionsRoutes(routes [][]topology.Hop, dense []int, queuesPerLink int) PreconditionReport {
	var rep PreconditionReport
	competing := topology.Competing(routes)
	links := make([]topology.LinkID, 0, len(competing))
	for link := range competing {
		links = append(links, link)
	}
	sort.Slice(links, func(i, j int) bool { return links[i] < links[j] })
	for _, link := range links {
		msgs := competing[link]
		if len(msgs) > rep.MaxCompeting {
			rep.MaxCompeting = len(msgs)
		}
		groups := make(map[int]int)
		for _, m := range msgs {
			groups[dense[m]]++
		}
		labs := make([]int, 0, len(groups))
		for lab := range groups {
			labs = append(labs, lab)
		}
		sort.Ints(labs)
		for _, lab := range labs {
			n := groups[lab]
			if n > rep.MaxGroup {
				rep.MaxGroup = n
			}
			if n > queuesPerLink {
				rep.Violations = append(rep.Violations, fmt.Sprintf(
					"link %d: %d competing messages share label %d but only %d queues",
					link, n, lab, queuesPerLink))
			}
		}
	}
	return rep
}

// RandomOptions shapes random program generation.
type RandomOptions struct {
	// Cells is the number of cells (≥ 2).
	Cells int
	// Messages is the number of messages to declare.
	Messages int
	// MaxWords bounds each message's word count (≥ 1).
	MaxWords int
	// Chain, when true, restricts senders and receivers to adjacent
	// cell indices (single-hop on a linear array); otherwise any
	// ordered pair is allowed (multi-hop on a linear array).
	Chain bool
}

// RandomDeadlockFree generates a random program that is deadlock-free
// by construction: it synthesizes a random word-transfer history and
// appends each transfer's W to the sender program and R to the
// receiver program in history order. The crossing-off procedure can
// cross pairs in exactly that order, so the strict classifier must
// accept the result — which makes the generator a test oracle.
func RandomDeadlockFree(rng *rand.Rand, opts RandomOptions) (*model.Program, error) {
	if opts.Cells < 2 {
		return nil, fmt.Errorf("verify: need ≥ 2 cells")
	}
	if opts.Messages < 1 {
		return nil, fmt.Errorf("verify: need ≥ 1 message")
	}
	if opts.MaxWords < 1 {
		opts.MaxWords = 1
	}
	b := model.NewBuilder()
	cells := b.AddCells("C", opts.Cells)

	type msgDecl struct {
		id       model.MessageID
		sender   model.CellID
		receiver model.CellID
		words    int
		sent     int
	}
	msgs := make([]msgDecl, opts.Messages)
	for i := range msgs {
		var s, r int
		if opts.Chain {
			s = rng.Intn(opts.Cells - 1)
			r = s + 1
			if rng.Intn(2) == 0 {
				s, r = r, s
			}
		} else {
			s = rng.Intn(opts.Cells)
			r = rng.Intn(opts.Cells - 1)
			if r >= s {
				r++
			}
		}
		words := 1 + rng.Intn(opts.MaxWords)
		id := b.DeclareMessage(fmt.Sprintf("M%d", i+1), cells[s], cells[r], words)
		msgs[i] = msgDecl{id: id, sender: cells[s], receiver: cells[r], words: words}
	}

	// Random transfer history: repeatedly pick a message with words
	// left and emit its next word's W and R.
	var live []int
	for i := range msgs {
		live = append(live, i)
	}
	for len(live) > 0 {
		k := rng.Intn(len(live))
		i := live[k]
		b.Write(msgs[i].sender, msgs[i].id)
		b.Read(msgs[i].receiver, msgs[i].id)
		msgs[i].sent++
		if msgs[i].sent == msgs[i].words {
			live = append(live[:k], live[k+1:]...)
		}
	}
	return b.Build()
}

// Rebuild constructs a new validated program with the same cells and
// messages as p but the given per-cell op sequences. Generators use it
// to derive program variants (op reorderings).
func Rebuild(p *model.Program, code [][]model.Op) (*model.Program, error) {
	b := model.NewBuilder()
	for _, c := range p.Cells() {
		if c.Host {
			b.AddHost(c.Name)
		} else {
			b.AddCell(c.Name)
		}
	}
	for _, m := range p.Messages() {
		b.DeclareMessage(m.Name, m.Sender, m.Receiver, m.Words)
	}
	for c, ops := range code {
		for _, op := range ops {
			if op.Kind == model.Write {
				b.Write(model.CellID(c), op.Msg)
			} else {
				b.Read(model.CellID(c), op.Msg)
			}
		}
	}
	return b.Build()
}

// SwapAdjacent returns a copy of p with ops i and i+1 of cell c
// exchanged (a validity-preserving mutation: per-message op counts and
// cell placement are untouched).
func SwapAdjacent(p *model.Program, c model.CellID, i int) (*model.Program, error) {
	code := make([][]model.Op, p.NumCells())
	for cc := 0; cc < p.NumCells(); cc++ {
		code[cc] = append([]model.Op(nil), p.Code(model.CellID(cc))...)
	}
	if i < 0 || i+1 >= len(code[c]) {
		return nil, fmt.Errorf("verify: swap index %d out of range for cell %d", i, c)
	}
	code[c][i], code[c][i+1] = code[c][i+1], code[c][i]
	return Rebuild(p, code)
}

// MutateToDeadlock swaps random adjacent operations until the strict
// classifier rejects the program (or attempts run out). It returns the
// last mutant and whether it is deadlocked — the negative-case
// generator for classifier/simulator agreement tests.
func MutateToDeadlock(rng *rand.Rand, p *model.Program, attempts int) (*model.Program, bool) {
	cur := p
	for a := 0; a < attempts; a++ {
		c := model.CellID(rng.Intn(cur.NumCells()))
		n := len(cur.Code(c))
		if n < 2 {
			continue
		}
		q, err := SwapAdjacent(cur, c, rng.Intn(n-1))
		if err != nil {
			continue
		}
		cur = q
		if !crossoff.Classify(cur, crossoff.Options{}) {
			return cur, true
		}
	}
	return cur, false
}

// Fix describes a repair suggestion: exchanging the operations at
// Index and Index+1 of Cell's program makes the program deadlock-free
// under the strict procedure.
type Fix struct {
	Cell  model.CellID
	Index int
}

// SuggestFixes searches for single adjacent-swap repairs of a
// deadlocked program (§9 makes deadlock-freedom "the programmer's or
// compiler's responsibility" — this is the compiler-assistant half).
// It returns up to limit fixes; an empty slice means no single swap
// suffices. The search is exhaustive over all adjacent pairs.
func SuggestFixes(p *model.Program, limit int) []Fix {
	if limit <= 0 {
		limit = 8
	}
	var fixes []Fix
	for c := 0; c < p.NumCells(); c++ {
		cell := model.CellID(c)
		code := p.Code(cell)
		for i := 0; i+1 < len(code); i++ {
			if code[i] == code[i+1] {
				continue // swapping identical ops changes nothing
			}
			q, err := SwapAdjacent(p, cell, i)
			if err != nil {
				continue
			}
			if crossoff.Classify(q, crossoff.Options{}) {
				fixes = append(fixes, Fix{Cell: cell, Index: i})
				if len(fixes) >= limit {
					return fixes
				}
			}
		}
	}
	return fixes
}

// DescribeFix renders a fix using program names.
func DescribeFix(p *model.Program, f Fix) string {
	code := p.Code(f.Cell)
	return fmt.Sprintf("swap %s and %s at %s (ops %d,%d)",
		p.OpString(code[f.Index]), p.OpString(code[f.Index+1]),
		p.Cell(f.Cell).Name, f.Index, f.Index+1)
}

// Labeled bundles a labeling result with the minimum queue requirement
// it implies; a convenience for property tests.
type Labeled struct {
	Labeling label.Labeling
	Report   PreconditionReport
}

// LabelAndCheck labels a program with the §6 scheme, verifies
// consistency, and computes the queue requirements over a topology.
func LabelAndCheck(p *model.Program, t topology.Topology) (Labeled, error) {
	lab, err := label.Assign(p, label.Options{})
	if err != nil {
		return Labeled{}, err
	}
	if err := label.Check(p, lab.ByMessage); err != nil {
		return Labeled{}, fmt.Errorf("verify: §6 labeling inconsistent: %w", err)
	}
	rep, err := CheckPreconditions(p, t, lab.Dense, 1<<30)
	if err != nil {
		return Labeled{}, err
	}
	return Labeled{Labeling: lab, Report: rep}, nil
}
