package verify

// Degraded-array analysis: which of Theorem 1's queue guarantees
// survive each fault in a plan. The theorem is proved for a perfect
// array; a degraded array splits into two regimes:
//
//   - Periodic faults (a slowed cell, a throttled link) only delay
//     operations — every gate reopens infinitely often, so any
//     schedule that completes on the perfect array completes on the
//     degraded one, merely stretched. Theorem 1's budgets carry over
//     unchanged, and the differential oracle's degraded-completion
//     invariant exercises exactly this claim.
//
//   - Terminal faults (a dead cell, a severed link) remove progress.
//     Messages depending on the dead element can never finish, and the
//     stall propagates through program order: once a cell blocks on an
//     affected message, every later operation of that cell is stuck
//     too. The theorem's guarantee is gone for the affected set; for
//     the surviving traffic the queue bounds are recomputed with the
//     affected routes removed.

import (
	"systolic/internal/fault"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// Fault class names reported by DegradedBudgets.
const (
	ClassSlowCell    = "slow-cell"
	ClassDeadCell    = "dead-cell"
	ClassSlowLink    = "degraded-link"
	ClassSeveredLink = "severed-link"
)

// FaultImpact reports one fault's effect on Theorem 1's guarantees,
// evaluated independently of the plan's other faults and of the
// fault's effective-from cycle (the conservative, steady-state view).
type FaultImpact struct {
	// Fault is the fault in canonical spec form (see fault.ParseSpec).
	Fault string
	// Class is one of the Class* constants.
	Class string
	// GuaranteeHolds reports whether Theorem 1's completion guarantee
	// survives: always true for periodic faults (delay only), and true
	// for terminal faults only when no message depends on the dead
	// element.
	GuaranteeHolds bool
	// AffectedMessages lists, ascending: for periodic faults, the
	// messages the fault directly delays; for terminal faults, the
	// closure of messages that can never complete (direct dependents
	// plus everything stalled behind them in program order).
	AffectedMessages []model.MessageID
	// MinQueuesDynamic and MinQueuesStatic are the Theorem 1 budgets
	// that survive the fault: unchanged for periodic faults,
	// recomputed over the unaffected traffic for terminal ones.
	MinQueuesDynamic int
	MinQueuesStatic  int
}

// DegradedBudgets evaluates each fault of plan against a labeled,
// routed program: p's per-cell programs drive the stall-propagation
// closure, routes and the dense labeling drive the recomputed queue
// bounds. A nil or no-op plan yields no impacts. The result is
// deterministic: plan order, with ascending message lists.
func DegradedBudgets(p *model.Program, routes [][]topology.Hop, dense []int, plan *fault.Plan) []FaultImpact {
	if plan.IsNoop() {
		return nil
	}
	var out []FaultImpact
	for _, c := range plan.Cells {
		if !c.Dead && c.Factor <= 1 {
			continue
		}
		spec := (&fault.Plan{Cells: []fault.CellFault{c}}).String()
		direct := func(id model.MessageID) bool {
			m := p.Message(id)
			return m.Sender == c.Cell || m.Receiver == c.Cell
		}
		if c.Dead {
			out = append(out, terminalImpact(p, routes, dense, spec, ClassDeadCell, direct))
		} else {
			out = append(out, periodicImpact(p, routes, dense, spec, ClassSlowCell, direct))
		}
	}
	for _, l := range plan.Links {
		if !l.Severed && l.Factor <= 1 {
			continue
		}
		spec := (&fault.Plan{Links: []fault.LinkFault{l}}).String()
		direct := func(id model.MessageID) bool {
			for _, h := range routes[id] {
				if h.Link == l.Link {
					return true
				}
			}
			return false
		}
		if l.Severed {
			out = append(out, terminalImpact(p, routes, dense, spec, ClassSeveredLink, direct))
		} else {
			out = append(out, periodicImpact(p, routes, dense, spec, ClassSlowLink, direct))
		}
	}
	return out
}

// periodicImpact reports a delay-only fault: the guarantee holds, the
// budgets are the perfect-array budgets, and the affected list is the
// directly delayed messages.
func periodicImpact(p *model.Program, routes [][]topology.Hop, dense []int, spec, class string, direct func(model.MessageID) bool) FaultImpact {
	var affected []model.MessageID
	for id := 0; id < p.NumMessages(); id++ {
		if direct(model.MessageID(id)) {
			affected = append(affected, model.MessageID(id))
		}
	}
	rep := CheckPreconditionsRoutes(routes, dense, 1<<30)
	return FaultImpact{
		Fault:            spec,
		Class:            class,
		GuaranteeHolds:   true,
		AffectedMessages: affected,
		MinQueuesDynamic: rep.MaxGroup,
		MinQueuesStatic:  rep.MaxCompeting,
	}
}

// terminalImpact reports a progress-removing fault: the affected set
// is the stall closure of the direct dependents, and the budgets are
// recomputed with the affected messages' routes removed (their queue
// competition disappears with them — a dead message never binds a
// queue for long enough to matter under the conservative view, and
// what remains is the traffic the theorem can still speak for).
func terminalImpact(p *model.Program, routes [][]topology.Hop, dense []int, spec, class string, direct func(model.MessageID) bool) FaultImpact {
	affected := make([]bool, p.NumMessages())
	for id := range affected {
		affected[id] = direct(model.MessageID(id))
	}
	stallClosure(p, affected)

	var list []model.MessageID
	surviving := make([][]topology.Hop, len(routes))
	copy(surviving, routes)
	for id, bad := range affected {
		if bad {
			list = append(list, model.MessageID(id))
			surviving[id] = nil
		}
	}
	rep := CheckPreconditionsRoutes(surviving, dense, 1<<30)
	return FaultImpact{
		Fault:            spec,
		Class:            class,
		GuaranteeHolds:   len(list) == 0,
		AffectedMessages: list,
		MinQueuesDynamic: rep.MaxGroup,
		MinQueuesStatic:  rep.MaxCompeting,
	}
}

// stallClosure propagates the affected set through program order to a
// fixpoint: a cell whose front reaches an operation on an affected
// message may stall there forever, so every later operation of that
// cell — and thus its messages — is affected too. This is the
// conservative closure: an affected W can in fact complete while
// queue capacity lasts, but nothing after the queue fills is
// guaranteed, which is exactly what "the guarantee survives" must
// exclude.
func stallClosure(p *model.Program, affected []bool) {
	for changed := true; changed; {
		changed = false
		for c := 0; c < p.NumCells(); c++ {
			code := p.Code(model.CellID(c))
			hit := false
			for _, op := range code {
				if hit && !affected[op.Msg] {
					affected[op.Msg] = true
					changed = true
				}
				if !hit && affected[op.Msg] {
					hit = true
				}
			}
		}
	}
}
