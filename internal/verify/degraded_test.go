package verify

import (
	"reflect"
	"testing"

	"systolic/internal/fault"
	"systolic/internal/label"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// degradedFixture builds a 4-cell pipeline C1→C2→C3→C4 with messages
// A: C1→C2, B: C2→C3, C: C3→C4 (sequential history, so deadlock-free
// and trivially labeled) and returns everything DegradedBudgets needs.
func degradedFixture(t *testing.T) (*model.Program, [][]topology.Hop, []int) {
	t.Helper()
	b := model.NewBuilder()
	cells := b.AddCells("C", 4)
	a := b.DeclareMessage("A", cells[0], cells[1], 1)
	bb := b.DeclareMessage("B", cells[1], cells[2], 1)
	c := b.DeclareMessage("C", cells[2], cells[3], 1)
	b.Write(cells[0], a)
	b.Read(cells[1], a)
	b.Write(cells[1], bb)
	b.Read(cells[2], bb)
	b.Write(cells[2], c)
	b.Read(cells[3], c)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Linear(4)
	routes, err := topology.Routes(p, topo)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := label.Assign(p, label.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, routes, lab.Dense
}

func TestDegradedBudgetsNoopPlan(t *testing.T) {
	p, routes, dense := degradedFixture(t)
	if got := DegradedBudgets(p, routes, dense, nil); got != nil {
		t.Errorf("nil plan → %v impacts", got)
	}
	noop := &fault.Plan{Cells: []fault.CellFault{{Cell: 0, Factor: 1}}}
	if got := DegradedBudgets(p, routes, dense, noop); got != nil {
		t.Errorf("no-op plan → %v impacts", got)
	}
}

func TestDegradedBudgetsPeriodic(t *testing.T) {
	p, routes, dense := degradedFixture(t)
	plan := &fault.Plan{
		Cells: []fault.CellFault{{Cell: 1, Factor: 3}},
		Links: []fault.LinkFault{{Link: 0, Factor: 2, From: 4}},
	}
	impacts := DegradedBudgets(p, routes, dense, plan)
	if len(impacts) != 2 {
		t.Fatalf("%d impacts, want 2", len(impacts))
	}

	// Slowed cell C2 (id 1): delays its own messages A (receiver) and
	// B (sender); the guarantee survives with unchanged budgets.
	slow := impacts[0]
	if slow.Fault != "cell:1:slow=3" || slow.Class != ClassSlowCell {
		t.Errorf("impact 0 = %q class %q", slow.Fault, slow.Class)
	}
	if !slow.GuaranteeHolds {
		t.Error("slow cell voids guarantee")
	}
	if want := []model.MessageID{0, 1}; !reflect.DeepEqual(slow.AffectedMessages, want) {
		t.Errorf("slow cell affects %v, want %v", slow.AffectedMessages, want)
	}
	base := CheckPreconditionsRoutes(routes, dense, 1<<30)
	if slow.MinQueuesDynamic != base.MaxGroup || slow.MinQueuesStatic != base.MaxCompeting {
		t.Errorf("slow budgets (%d,%d) differ from perfect-array (%d,%d)",
			slow.MinQueuesDynamic, slow.MinQueuesStatic, base.MaxGroup, base.MaxCompeting)
	}

	// Throttled link 0 (C1–C2): only message A crosses it.
	slowL := impacts[1]
	if slowL.Fault != "link:0:slow=2@4" || slowL.Class != ClassSlowLink {
		t.Errorf("impact 1 = %q class %q", slowL.Fault, slowL.Class)
	}
	if !slowL.GuaranteeHolds {
		t.Error("throttled link voids guarantee")
	}
	if want := []model.MessageID{0}; !reflect.DeepEqual(slowL.AffectedMessages, want) {
		t.Errorf("throttled link affects %v, want %v", slowL.AffectedMessages, want)
	}
}

func TestDegradedBudgetsTerminalStallClosure(t *testing.T) {
	p, routes, dense := degradedFixture(t)

	// Dead C1 (id 0): A can never be written; C2 stalls on R(A), so B
	// stalls too; C3 stalls on R(B), so C stalls. Everything is
	// affected, nothing survives.
	dead := DegradedBudgets(p, routes, dense, &fault.Plan{
		Cells: []fault.CellFault{{Cell: 0, Dead: true}},
	})
	if len(dead) != 1 {
		t.Fatalf("%d impacts, want 1", len(dead))
	}
	d := dead[0]
	if d.Class != ClassDeadCell || d.GuaranteeHolds {
		t.Errorf("dead cell: class %q holds=%v", d.Class, d.GuaranteeHolds)
	}
	if want := []model.MessageID{0, 1, 2}; !reflect.DeepEqual(d.AffectedMessages, want) {
		t.Errorf("dead C1 affects %v, want %v (full stall closure)", d.AffectedMessages, want)
	}
	if d.MinQueuesDynamic != 0 || d.MinQueuesStatic != 0 {
		t.Errorf("no surviving traffic but budgets (%d,%d)", d.MinQueuesDynamic, d.MinQueuesStatic)
	}

	// Severed last link (C3–C4): only C crosses it, and C is the last
	// op of both its endpoints, so the closure stops there — A and B
	// still complete and keep their budgets.
	sev := DegradedBudgets(p, routes, dense, &fault.Plan{
		Links: []fault.LinkFault{{Link: 2, Severed: true}},
	})
	if len(sev) != 1 {
		t.Fatalf("%d impacts, want 1", len(sev))
	}
	s := sev[0]
	if s.Class != ClassSeveredLink || s.GuaranteeHolds {
		t.Errorf("severed link: class %q holds=%v", s.Class, s.GuaranteeHolds)
	}
	if want := []model.MessageID{2}; !reflect.DeepEqual(s.AffectedMessages, want) {
		t.Errorf("severed C3–C4 affects %v, want %v", s.AffectedMessages, want)
	}
	surviving := [][]topology.Hop{routes[0], routes[1], nil}
	rep := CheckPreconditionsRoutes(surviving, dense, 1<<30)
	if s.MinQueuesDynamic != rep.MaxGroup || s.MinQueuesStatic != rep.MaxCompeting {
		t.Errorf("surviving budgets (%d,%d), want (%d,%d)",
			s.MinQueuesDynamic, s.MinQueuesStatic, rep.MaxGroup, rep.MaxCompeting)
	}
}

func TestDegradedBudgetsDeadCellMidPipeline(t *testing.T) {
	p, routes, dense := degradedFixture(t)

	// Dead C3 (id 2): B's receiver and C's sender. A (C1→C2) is
	// unaffected — C2's W(B) follows its R(A) in program order, and
	// stalls propagate forward, not backward.
	out := DegradedBudgets(p, routes, dense, &fault.Plan{
		Cells: []fault.CellFault{{Cell: 2, Dead: true}},
	})
	if len(out) != 1 {
		t.Fatalf("%d impacts, want 1", len(out))
	}
	if want := []model.MessageID{1, 2}; !reflect.DeepEqual(out[0].AffectedMessages, want) {
		t.Errorf("dead C3 affects %v, want %v", out[0].AffectedMessages, want)
	}
}
