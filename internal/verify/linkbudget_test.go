package verify

import (
	"reflect"
	"testing"

	"systolic/internal/linkmodel"
	"systolic/internal/model"
)

func TestLinkBudgetsNoopPlan(t *testing.T) {
	_, routes, dense := degradedFixture(t)
	if got := LinkBudgets(routes, dense, nil, 8); got != nil {
		t.Errorf("nil plan → %+v impact", got)
	}
	if got := LinkBudgets(routes, dense, linkmodel.UnitPlan(), 8); got != nil {
		t.Errorf("unit plan → %+v impact", got)
	}
	// fixed,delay=1 with no credit is unit timing in disguise; Lower
	// recognizes it and the analysis stays silent.
	if got := LinkBudgets(routes, dense, linkmodel.FixedPlan(1, 0), 8); got != nil {
		t.Errorf("fixed,delay=1 plan → %+v impact", got)
	}
}

func TestLinkBudgetsUniformFixed(t *testing.T) {
	_, routes, dense := degradedFixture(t)
	imp := LinkBudgets(routes, dense, linkmodel.FixedPlan(3, 0), 8)
	if imp == nil {
		t.Fatal("fixed,delay=3 → nil impact")
	}
	if imp.Model != "fixed,delay=3" {
		t.Errorf("Model = %q", imp.Model)
	}
	if !imp.GuaranteeHolds {
		t.Error("delay-only retiming voided the guarantee")
	}
	if imp.MaxFactor != 3 {
		t.Errorf("MaxFactor = %d, want 3", imp.MaxFactor)
	}
	// A uniform slowdown touches every routed message.
	if want := []model.MessageID{0, 1, 2}; !reflect.DeepEqual(imp.AffectedMessages, want) {
		t.Errorf("AffectedMessages = %v, want %v", imp.AffectedMessages, want)
	}
	// Theorem 1 budgets carry over unchanged from the unit array.
	base := CheckPreconditionsRoutes(routes, dense, 1<<30)
	if imp.MinQueuesDynamic != base.MaxGroup || imp.MinQueuesStatic != base.MaxCompeting {
		t.Errorf("budgets (%d,%d) diverged from unit array (%d,%d)",
			imp.MinQueuesDynamic, imp.MinQueuesStatic, base.MaxGroup, base.MaxCompeting)
	}
}

func TestLinkBudgetsPerLinkOverride(t *testing.T) {
	_, routes, dense := degradedFixture(t)
	// Unit base delay with one slowed link: only the message routed
	// over that link is affected, and the override sets the factor.
	slowed := routes[1][0].Link
	plan := &linkmodel.Plan{
		Kind:      linkmodel.Fixed,
		Delay:     1,
		Overrides: []linkmodel.Override{{Link: slowed, Delay: 4}},
	}
	imp := LinkBudgets(routes, dense, plan, 8)
	if imp == nil {
		t.Fatal("override plan → nil impact")
	}
	if imp.MaxFactor != 4 {
		t.Errorf("MaxFactor = %d, want 4", imp.MaxFactor)
	}
	if want := []model.MessageID{1}; !reflect.DeepEqual(imp.AffectedMessages, want) {
		t.Errorf("AffectedMessages = %v, want %v", imp.AffectedMessages, want)
	}
}

func TestLinkBudgetsCongestion(t *testing.T) {
	_, routes, dense := degradedFixture(t)
	imp := LinkBudgets(routes, dense, linkmodel.CongestionPlan(1, 2, 4), 8)
	if imp == nil {
		t.Fatal("congestion plan → nil impact")
	}
	if !imp.GuaranteeHolds {
		t.Error("congestion retiming voided the guarantee")
	}
	// Worst case: base delay plus the full backpressure window.
	if imp.MaxFactor != 5 {
		t.Errorf("MaxFactor = %d, want 5", imp.MaxFactor)
	}
	// Congestion feedback can slow any link, so every routed message
	// is in scope.
	if want := []model.MessageID{0, 1, 2}; !reflect.DeepEqual(imp.AffectedMessages, want) {
		t.Errorf("AffectedMessages = %v, want %v", imp.AffectedMessages, want)
	}
	// Spec round-trips through the canonical form.
	if _, err := linkmodel.ParseSpec(imp.Model); err != nil {
		t.Errorf("Model %q does not re-parse: %v", imp.Model, err)
	}
}
