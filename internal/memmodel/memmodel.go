// Package memmodel quantifies Fig 1's comparison between the systolic
// and the conventional memory-to-memory models of communication.
//
// Under the memory-to-memory model a cell program never touches its
// I/O queues directly: the operating system first copies an arriving
// word into local memory, the program reads it from memory, writes the
// result to memory, and the OS copies it back out — "a total of at
// least four local memory accesses … to update a data item flowing
// through the array" (§1). Under the systolic model the program
// operates on the queues directly: zero local-memory accesses for
// pass-through computations such as convolution.
//
// The paper gives no measured numbers, so this package provides both a
// closed-form pipeline model and a discrete simulation of the same
// pipeline; the two must agree exactly (see the tests), and the
// simulation provides the per-configuration rows that the Fig 1
// benchmark prints.
package memmodel

import "fmt"

// Model selects the communication style.
type Model int

const (
	// Systolic reads and writes queues directly.
	Systolic Model = iota
	// MemToMem stages every word through cell local memory.
	MemToMem
)

// String names the model.
func (m Model) String() string {
	if m == Systolic {
		return "systolic"
	}
	return "mem-to-mem"
}

// Params describes one pipeline configuration: an array of Cells
// identical stages, each updating every one of Words data items, with
// the given per-access costs (in cycles).
type Params struct {
	Cells int // pipeline depth (k)
	Words int // words streamed through (n)
	// QueueAccess is the cost of touching an I/O queue (both models
	// pay it on entry and exit of a cell).
	QueueAccess int
	// MemAccess is the cost of one local-memory access; the
	// memory-to-memory model pays 4 of these per word per cell (§1).
	MemAccess int
	// Compute is the data operation itself.
	Compute int
}

// StageTime returns the per-word service time of one cell under the
// model.
func (p Params) StageTime(m Model) int {
	base := 2*p.QueueAccess + p.Compute
	if m == MemToMem {
		return base + 4*p.MemAccess
	}
	return base
}

// Makespan returns the closed-form completion time of the homogeneous
// pipeline: (k + n - 1) stage times.
func (p Params) Makespan(m Model) int {
	if p.Cells <= 0 || p.Words <= 0 {
		return 0
	}
	return (p.Cells + p.Words - 1) * p.StageTime(m)
}

// Speedup returns the systolic/memory-to-memory throughput ratio,
// which is independent of k and n for the homogeneous pipeline.
func (p Params) Speedup() float64 {
	return float64(p.StageTime(MemToMem)) / float64(p.StageTime(Systolic))
}

// Simulate runs a discrete-event simulation of the pipeline and
// returns its completion cycle. Cells are store-and-forward with a
// one-word buffer per stage boundary; each stage busies itself
// StageTime cycles per word. It exists to validate Makespan (they must
// agree) and to keep the Fig 1 numbers honest rather than formulaic.
func (p Params) Simulate(m Model) int {
	if p.Cells <= 0 || p.Words <= 0 {
		return 0
	}
	st := p.StageTime(m)
	// finish[c] is the cycle at which stage c finishes its current
	// word; classic recurrence f[c][w] = max(f[c-1][w], f[c][w-1]) + st.
	finish := make([]int, p.Cells)
	for w := 0; w < p.Words; w++ {
		arrival := 0
		for c := 0; c < p.Cells; c++ {
			start := finish[c]
			if arrival > start {
				start = arrival
			}
			finish[c] = start + st
			arrival = finish[c]
		}
	}
	return finish[p.Cells-1]
}

// Row is one line of the Fig 1 comparison table.
type Row struct {
	Params   Params
	Systolic int
	MemToMem int
	Speedup  float64
}

// String renders the row.
func (r Row) String() string {
	return fmt.Sprintf("k=%-3d n=%-6d qa=%d ma=%d cp=%d  systolic=%-8d mem-to-mem=%-8d speedup=%.2fx",
		r.Params.Cells, r.Params.Words, r.Params.QueueAccess, r.Params.MemAccess, r.Params.Compute,
		r.Systolic, r.MemToMem, r.Speedup)
}

// Table evaluates a sweep of configurations, cross-checking the
// closed form against the simulation for each one.
func Table(configs []Params) ([]Row, error) {
	rows := make([]Row, 0, len(configs))
	for _, p := range configs {
		s, mm := p.Simulate(Systolic), p.Simulate(MemToMem)
		if s != p.Makespan(Systolic) || mm != p.Makespan(MemToMem) {
			return nil, fmt.Errorf("memmodel: simulation disagrees with closed form for %+v", p)
		}
		rows = append(rows, Row{Params: p, Systolic: s, MemToMem: mm, Speedup: p.Speedup()})
	}
	return rows, nil
}

// DefaultSweep is the parameter grid the Fig 1 experiment reports:
// filter-like pipelines of growing depth and stream length at unit
// queue cost, unit compute, and a memory access as expensive as a
// queue access (the paper's premise is that memory access is the
// bottleneck; equal cost is the conservative end).
func DefaultSweep() []Params {
	var out []Params
	for _, k := range []int{3, 8, 16} {
		for _, n := range []int{64, 1024, 16384} {
			out = append(out, Params{Cells: k, Words: n, QueueAccess: 1, MemAccess: 1, Compute: 1})
			out = append(out, Params{Cells: k, Words: n, QueueAccess: 1, MemAccess: 4, Compute: 1})
		}
	}
	return out
}
