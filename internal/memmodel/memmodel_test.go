package memmodel

import (
	"testing"
	"testing/quick"
)

func TestStageTime(t *testing.T) {
	p := Params{Cells: 3, Words: 10, QueueAccess: 1, MemAccess: 2, Compute: 3}
	if got := p.StageTime(Systolic); got != 5 { // 2*1 + 3
		t.Fatalf("systolic stage time %d", got)
	}
	if got := p.StageTime(MemToMem); got != 13 { // 5 + 4*2
		t.Fatalf("mem-to-mem stage time %d", got)
	}
}

func TestMakespanClosedForm(t *testing.T) {
	p := Params{Cells: 3, Words: 4, QueueAccess: 1, MemAccess: 1, Compute: 0}
	// (3+4-1) * (2*1+0) = 12
	if got := p.Makespan(Systolic); got != 12 {
		t.Fatalf("makespan %d", got)
	}
}

func TestSimulateMatchesClosedForm(t *testing.T) {
	for _, p := range DefaultSweep() {
		for _, m := range []Model{Systolic, MemToMem} {
			if p.Simulate(m) != p.Makespan(m) {
				t.Fatalf("mismatch for %+v model %v", p, m)
			}
		}
	}
}

func TestQuickSimulateMatchesClosedForm(t *testing.T) {
	f := func(k, n, qa, ma, cp uint8) bool {
		p := Params{
			Cells:       int(k)%20 + 1,
			Words:       int(n)%200 + 1,
			QueueAccess: int(qa) % 4,
			MemAccess:   int(ma)%4 + 1,
			Compute:     int(cp) % 4,
		}
		return p.Simulate(Systolic) == p.Makespan(Systolic) &&
			p.Simulate(MemToMem) == p.Makespan(MemToMem)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupAlwaysAtLeastOne(t *testing.T) {
	f := func(qa, ma, cp uint8) bool {
		p := Params{
			Cells: 3, Words: 8,
			QueueAccess: int(qa)%4 + 1,
			MemAccess:   int(ma) % 8,
			Compute:     int(cp) % 8,
		}
		return p.Speedup() >= 1.0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedupHeadlineCase(t *testing.T) {
	// The paper's qualitative claim: with memory as the bottleneck,
	// systolic communication wins by the 4·mem term. Unit costs give
	// (2+1+4)/(2+1) = 7/3.
	p := Params{Cells: 3, Words: 64, QueueAccess: 1, MemAccess: 1, Compute: 1}
	if got := p.Speedup(); got < 2.3 || got > 2.4 {
		t.Fatalf("speedup %.3f, want ≈2.33", got)
	}
	// Expensive memory (4 cycles): (3+16)/3 ≈ 6.33.
	p.MemAccess = 4
	if got := p.Speedup(); got < 6.3 || got > 6.4 {
		t.Fatalf("speedup %.3f, want ≈6.33", got)
	}
}

func TestZeroSizes(t *testing.T) {
	p := Params{}
	if p.Makespan(Systolic) != 0 || p.Simulate(Systolic) != 0 {
		t.Fatal("empty pipeline should cost 0")
	}
}

func TestTableCrossChecks(t *testing.T) {
	rows, err := Table(DefaultSweep())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(DefaultSweep()) {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.MemToMem <= r.Systolic {
			t.Fatalf("mem-to-mem not slower: %v", r)
		}
		if r.String() == "" {
			t.Fatal("empty row render")
		}
	}
}

func TestModelString(t *testing.T) {
	if Systolic.String() != "systolic" || MemToMem.String() != "mem-to-mem" {
		t.Fatal("model names wrong")
	}
}
