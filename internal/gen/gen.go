// Package gen manufactures random — but always well-formed — systolic
// programs at scale. Where internal/workload transcribes the paper's
// six figures by hand, gen produces thousands of program/topology
// scenarios from a seed, with knobs for cell count, message count,
// word counts, cyclicity, and interleaving depth, over linear, ring,
// and 2-D mesh topologies.
//
// Construction is history-based, like verify.RandomDeadlockFree: a
// random word-transfer history is synthesized and each transfer's W is
// appended to the sender's program and its R to the receiver's, in
// history order. The crossing-off procedure can cross pairs in exactly
// that order, so the un-mutated output is deadlock-free by
// construction. The Interleave knob bounds how many messages the
// history keeps in flight at once: depth 1 yields sequential,
// one-message-at-a-time programs; deeper interleaving produces the
// related-message classes of §6 (Fig 8/9's R(A) R(B) R(A)… patterns)
// whose equal labels drive up Theorem 1's queue requirement.
//
// Mutations then apply validity-preserving adjacent-op swaps, which
// may or may not introduce deadlock — the differential oracle
// (internal/diff) checks the analyzer's verdict either way.
//
// Everything is derived from the seed through one rand stream, so a
// scenario is reproducible from (seed, Options) alone.
package gen

import (
	"fmt"
	"math/rand"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// TopoKind selects the topology family of a scenario.
type TopoKind int

const (
	// TopoAuto picks a family per seed.
	TopoAuto TopoKind = iota
	// TopoLinear is a 1-D array, the paper's default setting.
	TopoLinear
	// TopoRing is a ring with shorter-arc routing.
	TopoRing
	// TopoMesh is a 2-D mesh with XY routing.
	TopoMesh
)

// String names the kind.
func (k TopoKind) String() string {
	switch k {
	case TopoAuto:
		return "auto"
	case TopoLinear:
		return "linear"
	case TopoRing:
		return "ring"
	case TopoMesh:
		return "mesh"
	}
	return fmt.Sprintf("topo(%d)", int(k))
}

// Options are the generation knobs. The zero value asks Generate to
// pick every unset knob from the seed, which is the usual fuzzing
// configuration; fixed values pin an axis.
type Options struct {
	// Cells is the number of cells (≥ 2). 0 picks 3–8 per seed. For a
	// mesh the value is rounded up to the next rows×cols grid.
	Cells int
	// Messages is the number of declared messages (≥ 1). 0 picks
	// between 2 and 2·Cells per seed.
	Messages int
	// MaxWords bounds each message's word count (≥ 1). 0 picks 1–6
	// per seed.
	MaxWords int
	// Interleave bounds how many messages the transfer history keeps
	// in flight at once (≥ 1). 1 generates sequential programs; larger
	// values generate the interleaved op patterns that force related
	// messages to share labels. 0 picks 1–4 per seed.
	Interleave int
	// Cyclic allows messages in both directions (receiver index below
	// sender), producing cyclic data-flow like the paper's Fig 6.
	// Acyclic scenarios only send from lower to higher cell ids.
	Cyclic bool
	// Mutations is the number of random validity-preserving
	// adjacent-op swaps applied after construction. 0 keeps the
	// program deadlock-free by construction; a few swaps produce a mix
	// of deadlock-free and deadlocked programs.
	Mutations int
	// Topology selects the family; TopoAuto picks per seed.
	Topology TopoKind
}

// Scenario is one generated program/topology pair, tagged with the
// seed and resolved knobs that reproduce it.
type Scenario struct {
	Seed     int64
	Opts     Options // fully resolved: every knob concrete
	Program  *model.Program
	Topology topology.Topology
	Name     string
}

// Generate builds the scenario for a seed. The same (seed, opts)
// always yields the identical scenario. Errors are reserved for
// impossible knob combinations (e.g. Cells < 2).
func Generate(seed int64, opts Options) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))

	if opts.Topology == TopoAuto {
		opts.Topology = []TopoKind{TopoLinear, TopoRing, TopoMesh}[rng.Intn(3)]
	}
	if opts.Cells == 0 {
		opts.Cells = 3 + rng.Intn(6)
	}
	if opts.Cells < 2 {
		return nil, fmt.Errorf("gen: Cells %d < 2", opts.Cells)
	}

	var topo topology.Topology
	switch opts.Topology {
	case TopoLinear:
		topo = topology.Linear(opts.Cells)
	case TopoRing:
		if opts.Cells < 3 {
			opts.Cells = 3 // a 2-ring would duplicate its single link
		}
		topo = topology.Ring(opts.Cells)
	case TopoMesh:
		rows := 2
		if opts.Cells > 6 && rng.Intn(2) == 0 {
			rows = 3
		}
		cols := (opts.Cells + rows - 1) / rows
		if cols < 2 {
			cols = 2
		}
		opts.Cells = rows * cols
		topo = topology.Mesh2D(rows, cols)
	default:
		return nil, fmt.Errorf("gen: unknown topology kind %d", int(opts.Topology))
	}

	if opts.Messages == 0 {
		opts.Messages = 2 + rng.Intn(2*opts.Cells-1)
	}
	if opts.Messages < 1 {
		return nil, fmt.Errorf("gen: Messages %d < 1", opts.Messages)
	}
	if opts.MaxWords == 0 {
		opts.MaxWords = 1 + rng.Intn(6)
	}
	if opts.MaxWords < 1 {
		return nil, fmt.Errorf("gen: MaxWords %d < 1", opts.MaxWords)
	}
	if opts.Interleave == 0 {
		opts.Interleave = 1 + rng.Intn(4)
	}
	if opts.Interleave < 1 {
		return nil, fmt.Errorf("gen: Interleave %d < 1", opts.Interleave)
	}
	if opts.Mutations < 0 {
		return nil, fmt.Errorf("gen: Mutations %d < 0", opts.Mutations)
	}

	// Declare messages: random endpoint pairs and word counts.
	type decl struct {
		sender, receiver int
		words            int
		left             int
	}
	decls := make([]decl, opts.Messages)
	for i := range decls {
		var s, r int
		if opts.Cyclic {
			s = rng.Intn(opts.Cells)
			r = rng.Intn(opts.Cells - 1)
			if r >= s {
				r++
			}
		} else {
			// Acyclic flow: lower id sends to strictly higher id.
			s = rng.Intn(opts.Cells - 1)
			r = s + 1 + rng.Intn(opts.Cells-s-1)
		}
		w := 1 + rng.Intn(opts.MaxWords)
		decls[i] = decl{sender: s, receiver: r, words: w, left: w}
	}

	// Synthesize the transfer history with a bounded in-flight window.
	// Admission order is a random permutation; at each step one active
	// message transfers its next word.
	perm := rng.Perm(opts.Messages)
	next := 0 // next admission index in perm
	var active []int
	code := make([][]model.Op, opts.Cells)
	for {
		for len(active) < opts.Interleave && next < len(perm) {
			active = append(active, perm[next])
			next++
		}
		if len(active) == 0 {
			break
		}
		k := rng.Intn(len(active))
		i := active[k]
		code[decls[i].sender] = append(code[decls[i].sender], model.Op{Kind: model.Write, Msg: model.MessageID(i)})
		code[decls[i].receiver] = append(code[decls[i].receiver], model.Op{Kind: model.Read, Msg: model.MessageID(i)})
		decls[i].left--
		if decls[i].left == 0 {
			active = append(active[:k], active[k+1:]...)
		}
	}

	// Mutations: random adjacent swaps that change the sequence.
	// Per-message op counts and cell placement are untouched, so the
	// program stays valid; deadlock-freedom may or may not survive.
	for m := 0; m < opts.Mutations; m++ {
		c := rng.Intn(opts.Cells)
		if len(code[c]) < 2 {
			continue
		}
		i := rng.Intn(len(code[c]) - 1)
		code[c][i], code[c][i+1] = code[c][i+1], code[c][i]
	}

	b := model.NewBuilder()
	cells := b.AddCells("C", opts.Cells)
	for i, d := range decls {
		b.DeclareMessage(fmt.Sprintf("M%d", i+1), cells[d.sender], cells[d.receiver], d.words)
	}
	for c, ops := range code {
		for _, op := range ops {
			if op.Kind == model.Write {
				b.Write(cells[c], op.Msg)
			} else {
				b.Read(cells[c], op.Msg)
			}
		}
	}
	p, err := b.Build()
	if err != nil {
		// Unreachable for the construction above; surfaced for tests.
		return nil, fmt.Errorf("gen: seed %d produced an invalid program: %w", seed, err)
	}
	return &Scenario{
		Seed:     seed,
		Opts:     opts,
		Program:  p,
		Topology: topo,
		Name:     fmt.Sprintf("gen-%d-%s", seed, topo.Name()),
	}, nil
}
