package gen

// Random fault plans for the differential oracle: like Generate, a
// plan is reproducible from (seed, counts, options) alone through one
// rand stream, so a failing faulted scenario replays exactly.

import (
	"math/rand"

	"systolic/internal/fault"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// FaultOptions are the RandomFaults knobs.
type FaultOptions struct {
	// PeriodicOnly restricts the plan to slowdowns (no dead cells, no
	// severed links), the classes whose completion guarantee survives
	// — the right setting for the degraded-completion invariant.
	PeriodicOnly bool
	// MaxFaults bounds the number of faults in the plan (≥ 1).
	// 0 means 2.
	MaxFaults int
}

// RandomFaults derives a valid fault plan for an array with the given
// cell and link counts. The plan always contains at least one
// effective fault, never duplicates a cell or link, and validates
// against the same counts it was drawn for. numLinks may be 0 (the
// plan then holds only cell faults).
func RandomFaults(seed int64, numCells, numLinks int, opts FaultOptions) *fault.Plan {
	rng := rand.New(rand.NewSource(seed))
	if opts.MaxFaults == 0 {
		opts.MaxFaults = 2
	}
	n := 1 + rng.Intn(opts.MaxFaults)
	plan := &fault.Plan{}
	usedCell := map[int]bool{}
	usedLink := map[int]bool{}
	for i := 0; i < n; i++ {
		terminal := !opts.PeriodicOnly && rng.Intn(4) == 0
		factor := 2 + rng.Intn(3)
		from := 0
		if rng.Intn(2) == 0 {
			from = rng.Intn(9)
		}
		pickLink := numLinks > 0 && rng.Intn(2) == 0
		if pickLink && len(usedLink) < numLinks {
			l := rng.Intn(numLinks)
			for usedLink[l] {
				l = (l + 1) % numLinks
			}
			usedLink[l] = true
			lf := fault.LinkFault{Link: topology.LinkID(l), Factor: factor, From: from}
			if terminal {
				lf.Severed, lf.Factor = true, 0
			}
			plan.Links = append(plan.Links, lf)
			continue
		}
		if len(usedCell) >= numCells {
			break
		}
		c := rng.Intn(numCells)
		for usedCell[c] {
			c = (c + 1) % numCells
		}
		usedCell[c] = true
		cf := fault.CellFault{Cell: model.CellID(c), Factor: factor, From: from}
		if terminal {
			cf.Dead, cf.Factor = true, 0
		}
		plan.Cells = append(plan.Cells, cf)
	}
	return plan
}
