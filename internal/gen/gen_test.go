package gen

import (
	"testing"

	"systolic/internal/crossoff"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// TestDeterministic: the same (seed, opts) must reproduce the
// identical scenario, byte for byte.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, err := Generate(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b, err := Generate(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d (second call): %v", seed, err)
		}
		if a.Program.String() != b.Program.String() {
			t.Fatalf("seed %d: programs differ:\n%s\nvs\n%s", seed, a.Program, b.Program)
		}
		if a.Topology.Name() != b.Topology.Name() {
			t.Fatalf("seed %d: topologies differ: %s vs %s", seed, a.Topology.Name(), b.Topology.Name())
		}
		if a.Opts != b.Opts {
			t.Fatalf("seed %d: resolved opts differ: %+v vs %+v", seed, a.Opts, b.Opts)
		}
	}
}

// TestDeadlockFreeByConstruction: without mutations, every generated
// program must pass the strict crossing-off test — the history-order
// construction is the oracle.
func TestDeadlockFreeByConstruction(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		sc, err := Generate(seed, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !crossoff.Classify(sc.Program, crossoff.Options{}) {
			t.Fatalf("seed %d: un-mutated program rejected by strict crossing-off:\n%s", seed, sc.Program)
		}
	}
}

// TestRoutable: every generated scenario's messages must route over
// its topology (the generator never declares an unroutable message).
func TestRoutable(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		sc, err := Generate(seed, Options{Cyclic: seed%2 == 0, Mutations: int(seed % 5)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := topology.Routes(sc.Program, sc.Topology); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestKnobsRespected: pinned knobs survive into the resolved options
// and the program.
func TestKnobsRespected(t *testing.T) {
	sc, err := Generate(7, Options{Cells: 5, Messages: 4, MaxWords: 3, Interleave: 1, Topology: TopoLinear})
	if err != nil {
		t.Fatal(err)
	}
	if sc.Program.NumCells() != 5 {
		t.Errorf("cells = %d, want 5", sc.Program.NumCells())
	}
	if sc.Program.NumMessages() != 4 {
		t.Errorf("messages = %d, want 4", sc.Program.NumMessages())
	}
	for _, m := range sc.Program.Messages() {
		if m.Words < 1 || m.Words > 3 {
			t.Errorf("message %s words = %d, want 1..3", m.Name, m.Words)
		}
	}
	if sc.Topology.Name() != "linear(5)" {
		t.Errorf("topology = %s, want linear(5)", sc.Topology.Name())
	}
}

// TestInterleaveOne: depth-1 scenarios transfer one message at a time,
// so each cell's program is a run of blocks, never an interleaving —
// every message's ops are contiguous within its sender and receiver.
func TestInterleaveOne(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sc, err := Generate(seed, Options{Interleave: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		p := sc.Program
		for c := 0; c < p.NumCells(); c++ {
			code := p.Code(model.CellID(c))
			last := map[int]int{}
			for i, op := range code {
				if j, seen := last[int(op.Msg)]; seen && j != i-1 {
					t.Fatalf("seed %d: cell %d interleaves message %d at ops %d and %d despite depth 1:\n%s",
						seed, c, op.Msg, j, i, p)
				}
				last[int(op.Msg)] = i
			}
		}
	}
}

// TestErrors: impossible knob combinations are rejected, not panicked.
func TestErrors(t *testing.T) {
	for _, opts := range []Options{
		{Cells: 1},
		{Messages: -1},
		{MaxWords: -2},
		{Interleave: -1},
		{Mutations: -3},
		{Topology: TopoKind(99)},
	} {
		if _, err := Generate(1, opts); err == nil {
			t.Errorf("Generate(1, %+v): want error", opts)
		}
	}
}
