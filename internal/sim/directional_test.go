package sim

import (
	"testing"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// bidirectional builds simultaneous opposite-direction traffic over
// one link: A: C1→C2 and B: C2→C1, fully interleaved at both cells.
func bidirectional(t testing.TB, words int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, words)
	bb := b.DeclareMessage("B", c2, c1, words)
	for i := 0; i < words; i++ {
		b.Write(c1, a).Read(c1, bb)
		b.Read(c2, a).Write(c2, bb)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDirectionalPoolsDoubleEffectiveQueues: one shared queue cannot
// serve both directions at once (B can never bind), while one queue
// per direction completes.
func TestDirectionalPoolsDoubleEffectiveQueues(t *testing.T) {
	p := bidirectional(t, 4)
	shared := Config{
		Topology:      topology.Linear(2),
		QueuesPerLink: 1,
		Capacity:      1,
		Policy:        assign.Naive(assign.FCFS, 0),
	}
	res, err := Run(p, shared)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("shared single queue: %s, want deadlock", res.Outcome())
	}
	directional := shared
	directional.Policy = assign.Naive(assign.FCFS, 0)
	directional.DirectionalPools = true
	res, err = Run(p, directional)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("directional pools: %s\n%s", res.Outcome(), DescribeBlocked(p, res.Blocked))
	}
}

// TestDirectionalPoolsEquivalentWhenEnoughQueues: with 2 shared queues
// the shared pool serves both directions; results agree.
func TestDirectionalPoolsEquivalentWhenEnoughQueues(t *testing.T) {
	p := bidirectional(t, 6)
	base := Config{
		Topology:      topology.Linear(2),
		QueuesPerLink: 2,
		Capacity:      1,
		Policy:        assign.Naive(assign.FCFS, 0),
	}
	shared, err := Run(p, base)
	if err != nil {
		t.Fatal(err)
	}
	dirCfg := base
	dirCfg.Policy = assign.Naive(assign.FCFS, 0)
	dirCfg.DirectionalPools = true
	directional, err := Run(p, dirCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !shared.Completed || !directional.Completed {
		t.Fatalf("shared=%s directional=%s", shared.Outcome(), directional.Outcome())
	}
	for id := range shared.Received {
		if len(shared.Received[id]) != len(directional.Received[id]) {
			t.Fatal("received word counts differ between pool modes")
		}
	}
}

// TestDirectionalPoolsWithCompatible runs the labeled pipeline under
// directional pools on multi-hop bidirectional traffic.
func TestDirectionalPoolsWithCompatible(t *testing.T) {
	b := model.NewBuilder()
	cs := b.AddCells("C", 3)
	a := b.DeclareMessage("A", cs[0], cs[2], 3)
	bb := b.DeclareMessage("B", cs[2], cs[0], 3)
	b.WriteN(cs[0], a, 3).ReadN(cs[0], bb, 3)
	b.ReadN(cs[2], a, 3).WriteN(cs[2], bb, 3)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, Config{
		Topology:         topology.Linear(3),
		QueuesPerLink:    1,
		Capacity:         1,
		DirectionalPools: true,
		Policy:           assign.Compatible(),
		Labels:           []int{1, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run %s\n%s", res.Outcome(), DescribeBlocked(p, res.Blocked))
	}
}
