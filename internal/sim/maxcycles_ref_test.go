package sim

import (
	"testing"

	"systolic/internal/linkmodel"
	"systolic/internal/topology"
)

// TestLinkLatencyDerivedBound mirrors the machine package's
// maxCyclesFor regression for the reference engine: defaultMaxCycles
// must scale by the link factor, or a slow-link run that needs more
// cycles than the old unit-latency bound (the 2^14 floor for this
// workload) is misreported as stuck. The old derivation is simulated
// by pinning MaxCycles to its value.
func TestLinkLatencyDerivedBound(t *testing.T) {
	p := pipeline(t, 64)
	c := cfg(topology.Linear(2), 1, 1)
	c.LinkModel = linkmodel.FixedPlan(264, 1)
	res, err := Run(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("slow-link run under the scaled derived bound: %s at cycle %d", res.Outcome(), res.Cycles)
	}
	const oldBound = 1 << 14
	if res.Cycles <= oldBound {
		t.Fatalf("run finished at cycle %d, inside the old bound %d — fixture no longer exercises the regression", res.Cycles, oldBound)
	}

	c.MaxCycles = oldBound
	cut, err := Run(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Completed {
		t.Fatalf("run pinned to the old bound completed in %d cycles", cut.Cycles)
	}
}
