package sim

// Engine-equivalence suite: the compiled machine (internal/machine,
// driving Run) must be byte-identical to the original full-scan
// engine (referenceRun) on every scenario and configuration — same
// outcome, same cycle count, same received streams, same blocked-cell
// reports, same timelines, same queue statistics. The suite replays
// the checked-in fuzz corpus plus a few hundred generated scenarios
// under a matrix of policies, budgets, capacities, pool regimes, and
// extension settings.
//
// Since the deterministic-sharding PR the same replay also fans every
// configuration across worker counts (equivWorkers): sharded
// execution must reproduce the single-threaded machine — and hence
// the reference engine — byte for byte at every count, corpus-wide.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/fault"
	"systolic/internal/gen"
	"systolic/internal/label"
	"systolic/internal/linkmodel"
)

// mustLinkModel parses a link-model spec for the config matrix.
func mustLinkModel(spec string) *linkmodel.Plan {
	p, err := linkmodel.ParseSpec(spec)
	if err != nil {
		panic(fmt.Sprintf("equiv_test: bad link-model spec %q: %v", spec, err))
	}
	return p
}

// equivCase is one (scenario seed, generation knobs) input. faultClass
// selects a degraded-array regime: 0 runs the perfect array, 1 a
// seeded periodic-only fault plan, 2 a seeded plan with terminal
// faults (dead cells / severed links) allowed.
type equivCase struct {
	seed       int64
	mutations  int
	cyclic     bool
	faultClass int
}

// corpusCases parses the native fuzz corpus checked in for the
// differential oracle, so the machines are compared on exactly the
// seeds the fuzzer found interesting. Corpus entries carry three byte
// knobs positionally — mutations, workload family, fault class; the
// family byte is oracle-only (the family generators are verified in
// internal/workload and cannot be imported here without a cycle), the
// other two replay.
func corpusCases(t *testing.T) []equivCase {
	t.Helper()
	dir := filepath.Join("..", "diff", "testdata", "fuzz", "FuzzOracle")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fuzz corpus: %v", err)
	}
	var out []equivCase
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var c equivCase
		var bytes []int
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			switch {
			case strings.HasPrefix(line, "int64("):
				n, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(line, "int64("), ")"), 10, 64)
				if err != nil {
					t.Fatalf("%s: %v", ent.Name(), err)
				}
				c.seed = n
			case strings.HasPrefix(line, "byte("):
				n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(line, "byte("), ")"), 0, 8)
				if err != nil {
					t.Fatalf("%s: %v", ent.Name(), err)
				}
				bytes = append(bytes, int(n))
			case strings.HasPrefix(line, "bool("):
				c.cyclic = line == "bool(true)"
			}
		}
		if len(bytes) > 0 {
			c.mutations = bytes[0] % 8
		}
		if len(bytes) > 2 {
			c.faultClass = bytes[2] % 3
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	return out
}

// generatedCases derives 200 deterministic scenarios spanning clean,
// mutated (deadlocking), and cyclic programs; half of them run
// degraded (alternating periodic-only and terminal fault plans).
func generatedCases() []equivCase {
	out := make([]equivCase, 0, 200)
	for i := int64(1); i <= 200; i++ {
		out = append(out, equivCase{
			seed:       i,
			mutations:  int(i % 5),
			cyclic:     i%3 == 0,
			faultClass: int(i % 4 % 3), // 0,1,2,0,0,1,2,0,…
		})
	}
	return out
}

// equivConfigs is the configuration matrix each scenario runs under.
// Policies are built fresh per engine per run (instances are
// stateful). labels may be nil; label-dependent rows then cover the
// shared setup-error path instead.
func equivConfigs(labels []int) []Config {
	base := func(pol assign.Policy, queues, capacity int) Config {
		return Config{QueuesPerLink: queues, Capacity: capacity, Policy: pol, Labels: labels}
	}
	cfgs := []Config{
		base(assign.Naive(assign.FCFS, 0), 1, 1),
		base(assign.Naive(assign.FCFS, 0), 2, 2),
		base(assign.Naive(assign.LIFO, 0), 1, 1),
		base(assign.Naive(assign.Random, 7), 1, 2),
		base(assign.Static(), 3, 1),
		base(assign.Compatible(), 1, 1),
		base(assign.Compatible(), 2, 2),
	}
	timeline := base(assign.Naive(assign.FCFS, 0), 2, 1)
	timeline.RecordTimeline = true
	cfgs = append(cfgs, timeline)
	directional := base(assign.Compatible(), 1, 1)
	directional.DirectionalPools = true
	cfgs = append(cfgs, directional)
	ext := base(assign.Naive(assign.FCFS, 0), 1, 1)
	ext.ExtCapacity = 2
	ext.ExtPenalty = 2
	cfgs = append(cfgs, ext)
	// A tight cycle bound pins the timed-out path (partial progress,
	// identical cut-off accounting).
	bounded := base(assign.Naive(assign.FCFS, 0), 1, 1)
	bounded.MaxCycles = 7
	cfgs = append(cfgs, bounded)
	if labels != nil {
		cfgs = append(cfgs, base(assign.Naive(assign.LabelDescending, 0), 1, 1))
	}
	// Link-timing rows: all three LinkModel kinds (uniform fixed
	// slowdown, bandwidth-limited with a per-link override, congestion
	// backpressure) replay through both engines at every worker count.
	// The rows above pin the nil fast path; per-case fault plans apply
	// to these rows too, so LinkModel × fault composition is replayed
	// corpus-wide.
	for _, spec := range []string{
		"fixed,delay=3",
		"fixed,delay=2,credit=1,link:0:delay=4",
		"congestion,delay=1,threshold=2,max=4",
	} {
		lmrow := base(assign.Naive(assign.FCFS, 0), 2, 1)
		lmrow.LinkModel = mustLinkModel(spec)
		cfgs = append(cfgs, lmrow)
	}
	// One capacity-0 latch row under latency, so the rendezvous gate
	// and tally sites are replayed as well (multi-hop scenarios reject
	// capacity 0 identically in both engines).
	latch := base(assign.Naive(assign.FCFS, 0), 1, 0)
	latch.LinkModel = mustLinkModel("fixed,delay=2")
	cfgs = append(cfgs, latch)
	return cfgs
}

// freshPolicy rebuilds a config's policy so each engine gets its own
// instance (Setup must run exactly once per instance, and Random
// policies carry RNG state). Unknown names are a loud error: falling
// through would share one stateful instance between both engines and
// corrupt the comparison.
func freshPolicy(c Config) Config {
	switch c.Policy.Name() {
	case "compatible":
		c.Policy = assign.Compatible()
	case "static":
		c.Policy = assign.Static()
	case "naive-fcfs":
		c.Policy = assign.Naive(assign.FCFS, 0)
	case "naive-lifo":
		c.Policy = assign.Naive(assign.LIFO, 0)
	case "naive-random":
		c.Policy = assign.Naive(assign.Random, 7)
	case "naive-label-desc":
		c.Policy = assign.Naive(assign.LabelDescending, 0)
	default:
		panic(fmt.Sprintf("equiv_test: freshPolicy does not know how to rebuild %q; add it to the switch", c.Policy.Name()))
	}
	return c
}

// runEquivCase checks one scenario; it reports false when the
// scenario could not even be generated (so callers can bound how much
// of the suite silently evaporates).
func runEquivCase(t *testing.T, ec equivCase) bool {
	t.Helper()
	sc, err := gen.Generate(ec.seed, gen.Options{Mutations: ec.mutations, Cyclic: ec.cyclic})
	if err != nil {
		t.Logf("seed %d: generation failed: %v", ec.seed, err)
		return false
	}
	p := sc.Program
	// Labels when the scheme accepts the program; the trivial
	// everything-is-1 labeling otherwise, so label-ordered policies
	// are exercised on deadlocking programs too.
	var labels []int
	if lab, err := label.Assign(p, label.Options{}); err == nil {
		labels = lab.Dense
	} else {
		labels = label.Trivial(p).Dense
	}
	// Degraded replays: the seeded fault plan gates both engines at
	// identical points, so every comparison below — reference vs
	// machine vs every worker count — must stay byte-identical on the
	// faulted array too.
	var plan *fault.Plan
	if ec.faultClass != 0 {
		plan = gen.RandomFaults(ec.seed, p.NumCells(), len(sc.Topology.Links()),
			gen.FaultOptions{PeriodicOnly: ec.faultClass == 1})
	}
	for i, cfg := range equivConfigs(labels) {
		cfg.Topology = sc.Topology
		cfg.Faults = plan
		ref, refErr := referenceRun(p, freshPolicy(cfg))
		got, gotErr := Run(p, freshPolicy(cfg))
		name := fmt.Sprintf("seed=%d mut=%d cyclic=%v faults=%d cfg=%d (%s q=%d cap=%d dir=%v)",
			ec.seed, ec.mutations, ec.cyclic, ec.faultClass, i, cfg.Policy.Name(), cfg.QueuesPerLink, cfg.Capacity, cfg.DirectionalPools)
		if (refErr != nil) != (gotErr != nil) {
			t.Fatalf("%s: reference err=%v, machine err=%v", name, refErr, gotErr)
		}
		if refErr != nil {
			if refErr.Error() != gotErr.Error() {
				t.Fatalf("%s: error text diverged:\n  reference: %v\n  machine:   %v", name, refErr, gotErr)
			}
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: results diverged\nreference: %+v\nmachine:   %+v\nprogram:\n%s", name, ref, got, p)
		}
		for _, workers := range equivWorkers {
			wcfg := freshPolicy(cfg)
			wcfg.Workers = workers
			gotW, errW := Run(p, wcfg)
			if (gotErr != nil) != (errW != nil) {
				t.Fatalf("%s workers=%d: single-threaded err=%v, sharded err=%v", name, workers, gotErr, errW)
			}
			if gotErr != nil {
				if gotErr.Error() != errW.Error() {
					t.Fatalf("%s workers=%d: error text diverged:\n  workers=1: %v\n  sharded:   %v", name, workers, gotErr, errW)
				}
				continue
			}
			if !reflect.DeepEqual(got, gotW) {
				t.Fatalf("%s workers=%d: sharded result diverged from single-threaded machine\nsingle: %+v\nsharded: %+v\nprogram:\n%s",
					name, workers, got, gotW, p)
			}
		}
	}
	return true
}

// equivWorkers are the shard counts every configuration is replayed
// under, on top of the implicit single-threaded run: 1 exercises the
// Workers-field dispatch with one shard, 2 and 4 the even splits, 7
// an odd count that misaligns every chunk boundary.
var equivWorkers = []int{1, 2, 4, 7}

// runEquivCases runs a batch and fails if a meaningful fraction of it
// never generated — the suite must not silently dwindle.
func runEquivCases(t *testing.T, cases []equivCase) {
	t.Helper()
	ran := 0
	for _, ec := range cases {
		if runEquivCase(t, ec) {
			ran++
		}
	}
	if ran < len(cases)*9/10 {
		t.Fatalf("only %d of %d scenarios generated; the equivalence suite lost its coverage", ran, len(cases))
	}
}

func TestEngineEquivalenceOnFuzzCorpus(t *testing.T) {
	runEquivCases(t, corpusCases(t))
}

func TestEngineEquivalenceOnGeneratedScenarios(t *testing.T) {
	runEquivCases(t, generatedCases())
}
