package sim

import (
	"fmt"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// benchPipeline builds a words-long single-message transfer across the
// given number of cells (hops = cells-1).
func benchPipeline(b *testing.B, cells, words int) *model.Program {
	b.Helper()
	bd := model.NewBuilder()
	ids := bd.AddCells("C", cells)
	m := bd.DeclareMessage("M", ids[0], ids[cells-1], words)
	bd.WriteN(ids[0], m, words)
	bd.ReadN(ids[cells-1], m, words)
	p, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkTransport measures raw word transport: simulated
// words-per-second through a multi-hop route.
func BenchmarkTransport(b *testing.B) {
	for _, tc := range []struct{ cells, words int }{
		{2, 1024}, {5, 1024}, {9, 1024},
	} {
		p := benchPipeline(b, tc.cells, tc.words)
		cfg := Config{
			Topology:      topology.Linear(tc.cells),
			QueuesPerLink: 1,
			Capacity:      2,
			Policy:        assign.Static(),
		}
		b.Run(fmt.Sprintf("hops=%d", tc.cells-1), func(b *testing.B) {
			var cycles int
			for b.Loop() {
				cfg := cfg
				cfg.Policy = assign.Static()
				res, err := Run(p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Completed {
					b.Fatal(res.Outcome())
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(tc.words)*float64(b.N)/b.Elapsed().Seconds(), "words/s")
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// BenchmarkRendezvous measures the capacity-0 latch path.
func BenchmarkRendezvous(b *testing.B) {
	p := benchPipeline(b, 2, 4096)
	for b.Loop() {
		res, err := Run(p, Config{
			Topology:      topology.Linear(2),
			QueuesPerLink: 1,
			Capacity:      0,
			Policy:        assign.Static(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal(res.Outcome())
		}
	}
}

// BenchmarkGrantChurn stresses dynamic rebinding: many short messages
// sharing one queue sequentially.
func BenchmarkGrantChurn(b *testing.B) {
	bd := model.NewBuilder()
	ids := bd.AddCells("C", 2)
	const n = 64
	msgs := make([]model.MessageID, n)
	for i := range msgs {
		msgs[i] = bd.DeclareMessage(fmt.Sprintf("M%d", i), ids[0], ids[1], 2)
	}
	for i := range msgs {
		bd.WriteN(ids[0], msgs[i], 2)
	}
	for i := range msgs {
		bd.ReadN(ids[1], msgs[i], 2)
	}
	p, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i + 1
	}
	var releases int
	for b.Loop() {
		res, err := Run(p, Config{
			Topology:      topology.Linear(2),
			QueuesPerLink: 1,
			Capacity:      4,
			Policy:        assign.Compatible(),
			Labels:        labels,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal(res.Outcome())
		}
		releases = res.Stats.Releases
	}
	b.ReportMetric(float64(releases), "rebinds")
}
