package sim

import (
	"reflect"
	"testing"

	"systolic/internal/fault"
	"systolic/internal/linkmodel"
	"systolic/internal/topology"
)

// bothEngines runs one config through the full-scan reference and the
// compiled machine, requires byte-identical results, and returns them.
func bothEngines(t *testing.T, words int, c Config) *Result {
	t.Helper()
	p := pipeline(t, words)
	ref, refErr := referenceRun(p, freshPolicy(c))
	got, gotErr := Run(p, freshPolicy(c))
	if refErr != nil || gotErr != nil {
		t.Fatalf("reference err=%v, machine err=%v", refErr, gotErr)
	}
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("engines diverged\nreference: %+v\nmachine:   %+v", ref, got)
	}
	return got
}

// TestGoldenLinkFaultTrace pins the exact composed behaviour of a
// throttled link under a latency model — the LinkModel × fault golden
// trace: both engines must gate and delay at identical cycles, and
// the numbers themselves are frozen so any re-ordering of the gate
// sites (link busy test before fault gate, tally after the move)
// shows up as a diff here, not just as cross-engine divergence.
func TestGoldenLinkFaultTrace(t *testing.T) {
	// A 4-word single-hop pipeline; link 0 throttled to every 3rd
	// cycle, and serving each word costs 2 cycles (credit 1).
	c := cfg(topology.Linear(2), 1, 1)
	c.Faults = &fault.Plan{Links: []fault.LinkFault{{Link: 0, Factor: 3}}}
	c.LinkModel = linkmodel.FixedPlan(2, 1)
	res := bothEngines(t, 4, c)
	if !res.Completed {
		t.Fatalf("throttled+delayed pipeline: %s at cycle %d", res.Outcome(), res.Cycles)
	}
	// Unit-latency fault-free this run takes 9 cycles; the composed
	// throttle (open on cycles 3,6,9,… only) and 2-cycle service with
	// credit 1 land it at exactly 11, with 3 operations held back by
	// the fault gate and the receiver stalled on cycles 6 and 7.
	if res.Cycles != 11 {
		t.Errorf("cycles = %d, want 11", res.Cycles)
	}
	if res.Stats.GatedOps != 3 {
		t.Errorf("gated ops = %d, want 3", res.Stats.GatedOps)
	}
	if want := []int{6, 7}; !reflect.DeepEqual(res.Stats.BlockedCycles, want) {
		t.Errorf("blocked cycles = %v, want %v", res.Stats.BlockedCycles, want)
	}
	if res.Stats.WordsMoved != 4 {
		t.Errorf("words moved = %d, want 4", res.Stats.WordsMoved)
	}

	// A severed link under the same latency model: words that crossed
	// before the cut arrive, then the system freezes and the deadlock
	// detector reports the exact stall cycle and blocked set.
	c2 := cfg(topology.Linear(2), 1, 1)
	c2.Faults = &fault.Plan{Links: []fault.LinkFault{{Link: 0, Severed: true, From: 6}}}
	c2.LinkModel = linkmodel.FixedPlan(2, 1)
	res2 := bothEngines(t, 6, c2)
	if !res2.Deadlocked {
		t.Fatalf("severed pipeline: %s at cycle %d", res2.Outcome(), res2.Cycles)
	}
	// At 2 cycles per word, exactly 3 of the 6 words cross before the
	// cycle-6 cut; the detector then freezes the run at cycle 6 with
	// the sender wedged on a full queue and the receiver starved.
	if res2.Cycles != 6 {
		t.Errorf("stall cycle = %d, want 6", res2.Cycles)
	}
	if got := len(res2.Received[0]); got != 3 {
		t.Errorf("received %d words before the cut, want 3", got)
	}
	if res2.Stats.GatedOps != 1 {
		t.Errorf("gated ops = %d, want 1", res2.Stats.GatedOps)
	}
	if len(res2.Blocked) != 2 {
		t.Fatalf("blocked set %+v, want sender and receiver", res2.Blocked)
	}
	sender, receiver := res2.Blocked[0], res2.Blocked[1]
	if sender.Cell != 0 || sender.Reason != "queue for A is full (capacity 1) and the downstream never drains" {
		t.Errorf("sender block = %+v", sender)
	}
	if receiver.Cell != 1 || receiver.Reason != "no word of A has arrived" {
		t.Errorf("receiver block = %+v", receiver)
	}
}
