// Package sim executes a systolic program cycle by cycle over a
// topology with a fixed number of bounded queues per link, under a
// pluggable queue-assignment policy. It is the run-time substrate that
// stands in for the Warp/iWarp hardware of the paper: the same
// abstraction (cells issuing one R/W per cycle, words flowing hop by
// hop through assigned queues), made deterministic and observable.
//
// The simulator detects run-time deadlock exactly: the system is
// deterministic and monotone, so a cycle in which no operation issues,
// no word moves, and no queue is granted — while work remains — can
// never un-stall.
//
// Since the compile-once refactor the execution core lives in
// internal/machine: Run here is a thin compatibility adapter that
// compiles the configuration into a machine and runs it once. Callers
// that run the same analyzed configuration many times (core.Execute,
// the sweep engine, the differential oracle) go through
// core.Analysis.Machine instead, which compiles once and reuses the
// machine for the whole grid. The original full-scan engine is kept
// in reference.go as the differential oracle for the equivalence
// suite.
package sim

import (
	"systolic/internal/assign"
	"systolic/internal/fault"
	"systolic/internal/linkmodel"
	"systolic/internal/machine"
	"systolic/internal/model"
	"systolic/internal/queue"
	"systolic/internal/topology"
)

// Word re-exports the queue word type.
type Word = queue.Word

// ConfigError is a typed rejection of an invalid Config: the named
// field cannot be simulated. Callers assembling configurations
// mechanically (core.Execute normally pre-validates; direct Simulate
// users may not) detect it with errors.As.
type ConfigError = machine.ConfigError

// CellLogic supplies word values so workloads can verify end-to-end
// arithmetic; see machine.CellLogic.
type CellLogic = machine.CellLogic

// SyntheticLogic is the default CellLogic; see machine.SyntheticLogic.
type SyntheticLogic = machine.SyntheticLogic

// BindEvent is one timeline entry: a queue bound to or released from a
// message.
type BindEvent = machine.BindEvent

// CellBlock describes why a cell was stuck when a deadlock was
// detected.
type CellBlock = machine.CellBlock

// QueueStat pairs a queue's identity with its counters.
type QueueStat = machine.QueueStat

// Stats aggregates run counters.
type Stats = machine.Stats

// Result reports a run's outcome.
type Result = machine.Result

// DescribeBlocked renders a deadlock report, one line per stuck cell.
func DescribeBlocked(p *model.Program, blocked []CellBlock) string {
	return machine.DescribeBlocked(p, blocked)
}

// Config parameterizes a run.
type Config struct {
	// Topology connects the program's cells. Required.
	Topology topology.Topology
	// QueuesPerLink is the fixed number of queues on every link
	// (§2.3). Must be ≥ 1.
	QueuesPerLink int
	// Capacity is each queue's base capacity in words. 0 models the
	// paper's unbuffered latch: transfers happen only as same-cycle
	// rendezvous, which restricts every route to a single hop.
	Capacity int
	// ExtCapacity and ExtPenalty model the iWarp queue extension
	// (§8.1): extra buffering beyond Capacity at ExtPenalty additional
	// cycles per extension access.
	ExtCapacity int
	ExtPenalty  int
	// DirectionalPools splits every link's queue pool in two, one per
	// traffic direction, instead of the paper's default of one shared
	// pool whose queues flip direction on reassignment (§2.3 "the
	// direction of the queue can be reset"). With directional pools a
	// link effectively offers QueuesPerLink queues per direction.
	DirectionalPools bool
	// Routes, when non-nil, supplies precomputed routes (indexed by
	// message id, as returned by topology.Routes for this program and
	// topology). Must match Topology.
	Routes [][]topology.Hop
	// Policy decides queue bindings. Required.
	Policy assign.Policy
	// Labels (dense, per message) are passed to the policy; required
	// by Compatible and LabelDescending, optional otherwise.
	Labels []int
	// Logic supplies word values; nil means SyntheticLogic.
	Logic CellLogic
	// MaxCycles bounds the run; 0 means a generous default derived
	// from program size.
	MaxCycles int
	// RecordTimeline captures bind/release events for rendering
	// (Fig 7's lower half).
	RecordTimeline bool
	// Workers selects deterministic sharded execution (0 or 1 =
	// single-threaded). Results are byte-identical for every worker
	// count; see machine.ExecOptions.Workers.
	Workers int
	// Faults degrades the array for this run (slowed/dead cells,
	// throttled/severed links); nil runs the perfect array. See
	// internal/fault and machine.ExecOptions.Faults.
	Faults *fault.Plan
	// LinkModel retimes the interconnect for this run (fixed per-link
	// latency/bandwidth or congestion-sensitive backpressure); nil or
	// a unit plan keeps unit-latency links. See internal/linkmodel and
	// machine.ExecOptions.LinkModel.
	LinkModel *linkmodel.Plan
}

// Run simulates the program to completion, deadlock, or the cycle
// bound. It returns an error only for configuration problems; run-time
// deadlock is a Result, not an error.
//
// Run compiles a fresh machine per call; it is the right entry point
// for one-off simulations with an ad-hoc policy instance. Grid runs
// over one analyzed configuration should go through core.Execute,
// which reuses a single compiled machine.
func Run(p *model.Program, cfg Config) (*Result, error) {
	if p == nil {
		return nil, &ConfigError{Field: "Program", Reason: "nil program"}
	}
	if cfg.Topology == nil {
		return nil, &ConfigError{Field: "Topology", Reason: "nil topology"}
	}
	if cfg.Policy == nil {
		return nil, &ConfigError{Field: "Policy", Reason: "nil policy"}
	}
	m, err := machine.Compile(p, cfg.Topology, cfg.Routes, cfg.Labels)
	if err != nil {
		return nil, err
	}
	return m.Run(machine.ExecOptions{
		Policy:           cfg.Policy,
		QueuesPerLink:    cfg.QueuesPerLink,
		Capacity:         cfg.Capacity,
		ExtCapacity:      cfg.ExtCapacity,
		ExtPenalty:       cfg.ExtPenalty,
		DirectionalPools: cfg.DirectionalPools,
		Logic:            cfg.Logic,
		MaxCycles:        cfg.MaxCycles,
		RecordTimeline:   cfg.RecordTimeline,
		Workers:          cfg.Workers,
		Faults:           cfg.Faults,
		LinkModel:        cfg.LinkModel,
	})
}

// Compile lowers a (program, topology) pair into a reusable machine;
// see machine.Compile. It is re-exported so direct sim users can opt
// into compile-once reuse without importing the machine package.
func Compile(p *model.Program, t topology.Topology, routes [][]topology.Hop, labels []int) (*machine.Machine, error) {
	return machine.Compile(p, t, routes, labels)
}
