package sim

// This file is the original full-scan execution engine, kept verbatim
// as the differential oracle for the compiled machine
// (internal/machine): every cycle it scans every cell, queue, and
// message, which makes it slow but easy to audit against the paper.
// The engine-equivalence suite (equiv_test.go) replays the fuzz
// corpus and hundreds of generated scenarios through referenceRun and
// the machine-backed Run, demanding byte-identical Results. It is not
// used on any production path.

import (
	"fmt"
	"sync"

	"systolic/internal/assign"
	"systolic/internal/fault"
	"systolic/internal/linkmodel"
	"systolic/internal/model"
	"systolic/internal/queue"
	"systolic/internal/topology"
)

// queueInst is one physical queue in a link's pool.
type queueInst struct {
	link topology.LinkID // real link, for reporting
	idx  int
	q    queue.Queue

	bound bool
	msg   model.MessageID
	hop   int // index into the bound message's route
}

// poolID identifies a queue pool as the policy sees it: the real link
// id under the shared-pool default, or a synthetic per-direction id
// (2·link, 2·link+1) under DirectionalPools. Policies treat pool ids
// opaquely, so the synthetic encoding stays internal to the runner.
type poolID = topology.LinkID

// msgState tracks one message's transport progress.
type msgState struct {
	route     []topology.Hop
	queues    []*queueInst // per hop; nil until granted
	granted   []bool
	requested []bool
	departed  []int // words that have left hop i (last hop: read by receiver)
	written   int   // words pushed by the sender
	read      int   // words consumed by the receiver
}

// runner holds all mutable simulation state. Everything below the
// "reusable scratch" marker survives between runs inside runnerPool so
// repeated Run calls (parameter sweeps) stop re-allocating; anything
// that escapes into the returned Result is allocated fresh per run.
type runner struct {
	p      *model.Program
	cfg    Config
	logic  CellLogic
	routes [][]topology.Hop
	links  []topology.Link

	// Reusable scratch, sized in setup and pooled across runs.
	numPools int
	queues   []queueInst         // pool p occupies [p*Q : (p+1)*Q]
	pending  [][]model.MessageID // per pool, outstanding requests
	msgs     []msgState
	hopQ     []*queueInst // flat backing for msgState.queues
	hopFlags []bool       // flat backing for granted + requested
	hopInts  []int        // flat backing for departed
	pc       []int
	issued   []bool

	received [][]Word // escapes into Result; fresh per run

	// faults holds the run's lowered fault tables; nil when fault-free.
	// The gates sit at the same four operation-issue sites as the
	// compiled machine's, each checked after every fault-free readiness
	// criterion, keeping the engines byte-identical under degradation.
	faults *fault.Lowered

	// lm mirrors the compiled machine's link-timing state exactly:
	// lmNextFree[l] is the first cycle link l is free again, lmTally[l]
	// the words that crossed it this cycle, lmDirty the links with a
	// non-zero tally, lmBusyMax the largest nextFree ever set. Gates
	// sit immediately before the fault link gates at the three
	// link-crossing sites; the end-of-cycle fold (lmEndCycle) runs
	// right after the release phase, as in the machine.
	lm         *linkmodel.Lowered
	lmNextFree []int
	lmTally    []int32
	lmDirty    []int32
	lmBusyMax  int

	res   Result
	stats Stats
	now   int
	moved bool // any event this cycle
}

// runnerPool recycles runner scratch state between runs. Run copies the
// Result out and clears every escaping reference before returning a
// runner to the pool.
var runnerPool = sync.Pool{New: func() any { return new(runner) }}

// grow returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers clear what they need.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// pool returns the queue instances of pool p.
func (r *runner) pool(p poolID) []queueInst {
	q := r.cfg.QueuesPerLink
	return r.queues[int(p)*q : (int(p)+1)*q]
}

// poolOf maps a route hop to the pool that serves it.
func (r *runner) poolOf(h topology.Hop) poolID {
	if !r.cfg.DirectionalPools {
		return h.Link
	}
	dir := poolID(0)
	if h.From != r.links[h.Link].A {
		dir = 1
	}
	return 2*h.Link + dir
}

// referenceRun simulates the program with the original full-scan
// engine: the differential oracle the compiled machine is checked
// against. Semantics are identical to Run's by construction — and by
// the equivalence suite.
func referenceRun(p *model.Program, cfg Config) (*Result, error) {
	if p == nil {
		return nil, &ConfigError{Field: "Program", Reason: "nil program"}
	}
	if cfg.Topology == nil {
		return nil, &ConfigError{Field: "Topology", Reason: "nil topology"}
	}
	if cfg.Policy == nil {
		return nil, &ConfigError{Field: "Policy", Reason: "nil policy"}
	}
	if cfg.QueuesPerLink < 1 {
		return nil, &ConfigError{Field: "QueuesPerLink", Reason: fmt.Sprintf("%d < 1 (every link needs at least one queue, §2.3)", cfg.QueuesPerLink)}
	}
	if cfg.Capacity < 0 {
		return nil, &ConfigError{Field: "Capacity", Reason: fmt.Sprintf("negative capacity %d", cfg.Capacity)}
	}
	if cfg.ExtCapacity < 0 {
		return nil, &ConfigError{Field: "ExtCapacity", Reason: fmt.Sprintf("negative extension capacity %d", cfg.ExtCapacity)}
	}
	if cfg.ExtPenalty < 0 {
		return nil, &ConfigError{Field: "ExtPenalty", Reason: fmt.Sprintf("negative extension penalty %d", cfg.ExtPenalty)}
	}
	routes := cfg.Routes
	if routes == nil {
		var err error
		routes, err = topology.Routes(p, cfg.Topology)
		if err != nil {
			return nil, err
		}
	} else if len(routes) != p.NumMessages() {
		return nil, &ConfigError{Field: "Routes", Reason: fmt.Sprintf("%d entries for %d messages", len(routes), p.NumMessages())}
	}
	if cfg.Capacity == 0 {
		for id, rt := range routes {
			if len(rt) > 1 {
				return nil, &ConfigError{Field: "Capacity", Reason: fmt.Sprintf(
					"capacity 0 (latch) supports single-hop routes only; message %s crosses %d links",
					p.Message(model.MessageID(id)).Name, len(rt))}
			}
		}
		if cfg.ExtCapacity > 0 {
			return nil, &ConfigError{Field: "ExtCapacity", Reason: "queue extension requires base capacity ≥ 1"}
		}
	}
	links := cfg.Topology.Links()
	var flt *fault.Lowered
	if cfg.Faults != nil {
		if ferr := cfg.Faults.Validate(p.NumCells(), len(links)); ferr != nil {
			return nil, &ConfigError{Field: "Faults", Reason: ferr.Error()}
		}
		flt = fault.Lower(cfg.Faults, p.NumCells(), len(links))
	}
	var lmo *linkmodel.Lowered
	if cfg.LinkModel != nil {
		if lerr := cfg.LinkModel.Validate(len(links)); lerr != nil {
			return nil, &ConfigError{Field: "LinkModel", Reason: lerr.Error()}
		}
		lmo = linkmodel.Lower(cfg.LinkModel, len(links))
	}
	logic := cfg.Logic
	if logic == nil {
		logic = SyntheticLogic{}
	}

	r := runnerPool.Get().(*runner)
	r.p, r.cfg, r.logic, r.routes, r.links = p, cfg, logic, routes, links
	r.faults = flt
	r.lm = lmo
	r.setup()

	// Competing sets are keyed by pool: the whole link under the
	// shared-pool default, per direction under DirectionalPools.
	competing := make(map[topology.LinkID][]model.MessageID)
	for id, route := range routes {
		for _, h := range route {
			key := r.poolOf(h)
			competing[key] = append(competing[key], model.MessageID(id))
		}
	}
	ctx := &assign.Context{
		Program:       p,
		Routes:        routes,
		Competing:     competing,
		Labels:        cfg.Labels,
		QueuesPerLink: cfg.QueuesPerLink,
	}
	if err := cfg.Policy.Setup(ctx); err != nil {
		r.release()
		return nil, err
	}

	maxCycles := cfg.MaxCycles
	if maxCycles <= 0 {
		linkFactor := 1
		if lmo != nil {
			// Same scaling as the compiled machine: slow links stretch
			// the derived bound by the largest latency factor.
			linkFactor = lmo.MaxFactor()
		}
		maxCycles = defaultMaxCycles(p, routes, linkFactor)
		if flt != nil {
			// Same scaling as the compiled machine: the derived bound
			// stretches by the largest periodic factor, and a user-set
			// MaxCycles is never second-guessed.
			scaled, ok := flt.ScaleCycles(maxCycles)
			if !ok {
				r.release()
				return nil, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf(
					"derived cycle bound %d×%d (fault slowdown) overflows int; set MaxCycles explicitly", maxCycles, flt.MaxFactor())}
			}
			maxCycles = scaled
		}
	}
	for r.now = 0; r.now < maxCycles; r.now++ {
		if r.done() {
			break
		}
		r.moved = false
		r.tickQueues()
		r.collectRequests()
		r.grantPhase()
		r.cellAndTransferPhase()
		r.releasePhase()
		if r.lm != nil {
			r.lmEndCycle()
		}
		r.accountBlocked()
		if !r.moved && !r.anyCooling() && (r.faults == nil || r.faults.AllPeriodicOpen(r.now)) &&
			(r.lm == nil || r.now >= r.lmBusyMax) {
			// A no-event cycle proves deadlock only if every periodic
			// fault gate was open (dead/severed elements never reopen
			// and are rightly excluded) and no link is still inside a
			// finite busy window — same rules as the machine.
			r.res.Deadlocked = true
			r.res.Blocked = r.blockedReport()
			break
		}
	}
	r.res.Completed = r.done()
	if !r.res.Completed && !r.res.Deadlocked {
		r.res.TimedOut = true
	}
	r.res.Cycles = r.now
	r.res.Received = r.received
	if r.faults != nil {
		r.res.Faults = r.faults.Descriptions()
	}
	r.stats.Cycles = r.now
	r.stats.Queues = make([]QueueStat, 0, len(r.queues))
	for i := range r.queues {
		qi := &r.queues[i]
		// qi.link is the real link, not the pool id: under
		// DirectionalPools a link's two pools report under the same
		// physical link, matching the timeline's attribution.
		r.stats.Queues = append(r.stats.Queues, QueueStat{Link: qi.link, QueueIdx: qi.idx, Stats: qi.q.Stats()})
	}
	r.res.Stats = r.stats
	out := new(Result)
	*out = r.res
	r.release()
	return out, nil
}

// release clears every reference that escaped into the returned Result
// (and the per-run inputs) and returns the runner's scratch to the
// pool for the next Run.
func (r *runner) release() {
	r.p, r.logic, r.routes, r.links = nil, nil, nil, nil
	r.cfg = Config{}
	r.received = nil
	r.faults = nil
	r.lm = nil
	r.res = Result{}
	r.stats = Stats{}
	for i := range r.msgs {
		r.msgs[i].route = nil
	}
	runnerPool.Put(r)
}

func defaultMaxCycles(p *model.Program, routes [][]topology.Hop, linkFactor int) int {
	words, hops := 0, 0
	for _, m := range p.Messages() {
		words += m.Words
		hops += len(routes[m.ID])
	}
	if linkFactor < 1 {
		linkFactor = 1
	}
	n := 16*(words+1)*(hops+1)*linkFactor + 4096
	if n < 1<<14 {
		n = 1 << 14
	}
	return n
}

// setup sizes the runner's scratch for the current program and
// configuration, reusing pooled backing arrays where they are large
// enough. Link and pool ids are dense, so pools live in one flat slice
// (pool p at [p*Q:(p+1)*Q]) in ascending pool-id order, and each
// message's per-hop state is a window into shared flat arrays.
func (r *runner) setup() {
	p, cfg := r.p, r.cfg
	r.numPools = len(r.links)
	if cfg.DirectionalPools {
		r.numPools *= 2
	}
	r.queues = grow(r.queues, r.numPools*cfg.QueuesPerLink)
	for i := range r.queues {
		qi := &r.queues[i]
		pool := i / cfg.QueuesPerLink
		realLink := topology.LinkID(pool)
		if cfg.DirectionalPools {
			realLink = topology.LinkID(pool / 2)
		}
		qi.link = realLink
		// idx identifies the queue within its *link* for reporting:
		// with directional pools the link's two pools are contiguous
		// (forward 0..Q-1, reverse Q..2Q-1), keeping (link, idx)
		// unique in timelines and stats.
		qi.idx = i % cfg.QueuesPerLink
		if cfg.DirectionalPools {
			qi.idx = i % (2 * cfg.QueuesPerLink)
		}
		qi.bound = false
		qi.msg = 0
		qi.hop = 0
		qi.q.Init(cfg.Capacity, cfg.ExtCapacity, cfg.ExtPenalty)
	}
	r.pending = grow(r.pending, r.numPools)
	for i := range r.pending {
		r.pending[i] = r.pending[i][:0]
	}
	totalHops := 0
	for _, rt := range r.routes {
		totalHops += len(rt)
	}
	r.hopQ = grow(r.hopQ, totalHops)
	r.hopFlags = grow(r.hopFlags, 2*totalHops)
	r.hopInts = grow(r.hopInts, totalHops)
	clear(r.hopQ)
	clear(r.hopFlags)
	clear(r.hopInts)
	r.msgs = grow(r.msgs, p.NumMessages())
	off := 0
	for id := range r.msgs {
		rt := r.routes[id]
		n := len(rt)
		r.msgs[id] = msgState{
			route:     rt,
			queues:    r.hopQ[off : off+n : off+n],
			granted:   r.hopFlags[off : off+n : off+n],
			requested: r.hopFlags[totalHops+off : totalHops+off+n : totalHops+off+n],
			departed:  r.hopInts[off : off+n : off+n],
		}
		off += n
	}
	r.pc = grow(r.pc, p.NumCells())
	r.issued = grow(r.issued, p.NumCells())
	clear(r.pc)
	clear(r.issued)
	r.lmBusyMax = 0
	if r.lm != nil {
		n := len(r.links)
		r.lmNextFree = grow(r.lmNextFree, n)
		r.lmTally = grow(r.lmTally, n)
		clear(r.lmNextFree)
		clear(r.lmTally)
		r.lmDirty = r.lmDirty[:0]
	}
	r.received = make([][]Word, p.NumMessages())
	r.stats.BlockedCycles = make([]int, p.NumCells())
}

// linkFree reports whether link lk can carry words this cycle (not
// inside a busy window). Callers gate with r.lm != nil.
func (r *runner) linkFree(lk topology.LinkID) bool {
	return r.now >= r.lmNextFree[lk]
}

// noteLinkHit tallies one word crossing link lk this cycle. Callers
// gate with r.lm != nil.
func (r *runner) noteLinkHit(lk topology.LinkID) {
	if r.lmTally[lk] == 0 {
		r.lmDirty = append(r.lmDirty, int32(lk))
	}
	r.lmTally[lk]++
}

// lmEndCycle closes the cycle's link occupancy, exactly as the
// compiled machine's fold does: nextFree = now + Busy(link, tally) for
// every link with traffic, then tallies reset.
func (r *runner) lmEndCycle() {
	for _, l := range r.lmDirty {
		nf := r.now + r.lm.Busy(topology.LinkID(l), r.lmTally[l])
		r.lmNextFree[l] = nf
		if nf > r.lmBusyMax {
			r.lmBusyMax = nf
		}
		r.lmTally[l] = 0
	}
	r.lmDirty = r.lmDirty[:0]
}

func (r *runner) done() bool {
	for c := 0; c < r.p.NumCells(); c++ {
		if r.pc[c] < len(r.p.Code(model.CellID(c))) {
			return false
		}
	}
	return true
}

// anyCooling reports whether some queue is waiting out an
// extension-access penalty; such cycles are latency, not deadlock.
func (r *runner) anyCooling() bool {
	for i := range r.queues {
		if r.queues[i].q.Cooling() {
			return true
		}
	}
	return false
}

func (r *runner) tickQueues() {
	for i := range r.queues {
		r.queues[i].q.Tick()
	}
}

// collectRequests registers queue requests: a message asks for its
// first hop when its sender reaches a W on it, and for hop i>0 when its
// header is buffered at the cell feeding that hop (§5: "when the
// header of a message arrives at a cell").
func (r *runner) collectRequests() {
	for c := 0; c < r.p.NumCells(); c++ {
		code := r.p.Code(model.CellID(c))
		if r.pc[c] >= len(code) {
			continue
		}
		op := code[r.pc[c]]
		if op.Kind != model.Write {
			continue
		}
		ms := &r.msgs[op.Msg]
		if len(ms.route) > 0 && !ms.requested[0] {
			ms.requested[0] = true
			pool := r.poolOf(ms.route[0])
			r.pending[pool] = append(r.pending[pool], op.Msg)
		}
	}
	for id := range r.msgs {
		ms := &r.msgs[id]
		for hop := 1; hop < len(ms.route); hop++ {
			if ms.requested[hop] || ms.queues[hop-1] == nil {
				continue
			}
			if ms.queues[hop-1].q.Len() > 0 {
				ms.requested[hop] = true
				pool := r.poolOf(ms.route[hop])
				r.pending[pool] = append(r.pending[pool], model.MessageID(id))
			}
		}
	}
}

// hopOn returns the route hop of msg served by pool link, or -1. A
// shortest-path route crosses each link (and so each pool) at most
// once, and routes are short, so a linear scan beats the per-run map
// the runner used to build.
func (r *runner) hopOn(link poolID, msg model.MessageID) int {
	for hop, h := range r.msgs[msg].route {
		if r.poolOf(h) == link {
			return hop
		}
	}
	return -1
}

func (r *runner) grantPhase() {
	for link := poolID(0); int(link) < r.numPools; link++ {
		pool := r.pool(link)
		free := 0
		for i := range pool {
			if !pool[i].bound {
				free++
			}
		}
		grants := r.cfg.Policy.Grant(r.now, link, free, r.pending[link])
		for _, msg := range grants {
			if free == 0 {
				break // policy over-granted; ignore the excess
			}
			hop := r.hopOn(link, msg)
			if hop < 0 || r.msgs[msg].granted[hop] {
				continue
			}
			var qi *queueInst
			for i := range pool {
				if !pool[i].bound {
					qi = &pool[i]
					break
				}
			}
			qi.bound = true
			qi.msg = msg
			qi.hop = hop
			ms := &r.msgs[msg]
			ms.granted[hop] = true
			ms.queues[hop] = qi
			free--
			r.moved = true
			r.stats.Grants++
			r.removePending(link, msg)
			if r.cfg.RecordTimeline {
				// Record the real link (qi.link), not the pool id:
				// under DirectionalPools pool ids are synthetic and
				// release events already use the real link.
				r.res.Timeline = append(r.res.Timeline, BindEvent{Cycle: r.now, Link: qi.link, QueueIdx: qi.idx, Msg: msg, Bound: true})
			}
		}
	}
}

func (r *runner) removePending(link poolID, msg model.MessageID) {
	lst := r.pending[link]
	for i, m := range lst {
		if m == msg {
			r.pending[link] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// cellAndTransferPhase performs, in order: receiver reads, interior
// hop advances (swept from the receiver side so a pipeline advances
// one hop everywhere in a single cycle), rendezvous transfers for
// capacity-0 latches, and sender writes. Each cell issues at most one
// operation per cycle.
func (r *runner) cellAndTransferPhase() {
	for c := range r.issued {
		r.issued[c] = false
	}
	// 1. Receiver reads from buffered last-hop queues.
	for c := 0; c < r.p.NumCells(); c++ {
		cell := model.CellID(c)
		code := r.p.Code(cell)
		if r.issued[c] || r.pc[c] >= len(code) {
			continue
		}
		op := code[r.pc[c]]
		if op.Kind != model.Read {
			continue
		}
		ms := &r.msgs[op.Msg]
		last := len(ms.route) - 1
		if last < 0 || ms.queues[last] == nil {
			continue
		}
		qi := ms.queues[last]
		if !qi.q.FrontReady() {
			continue
		}
		if r.faults != nil && !r.faults.CellOpen(cell, r.now) {
			r.stats.GatedOps++
			continue
		}
		w := qi.q.Pop()
		r.logic.OnRead(cell, op.Msg, ms.read, w)
		r.received[op.Msg] = append(r.received[op.Msg], w)
		ms.read++
		ms.departed[last]++
		r.pc[c]++
		r.issued[c] = true
		r.moved = true
		r.stats.WordsMoved++
	}
	// 2. Interior advances, last hop toward receiver first.
	for id := range r.msgs {
		ms := &r.msgs[id]
		for hop := len(ms.route) - 2; hop >= 0; hop-- {
			src, dst := ms.queues[hop], ms.queues[hop+1]
			if src == nil || dst == nil {
				continue
			}
			if src.q.FrontReady() && dst.q.CanAccept() {
				if r.lm != nil && !r.linkFree(ms.route[hop+1].Link) {
					// Busy-link stalls are timing, not degradation: no
					// GatedOps.
					continue
				}
				if r.faults != nil && !r.faults.LinkOpen(ms.route[hop+1].Link, r.now) {
					r.stats.GatedOps++
					continue
				}
				dst.q.Push(src.q.Pop())
				if r.lm != nil {
					r.noteLinkHit(ms.route[hop+1].Link)
				}
				ms.departed[hop]++
				r.moved = true
				r.stats.WordsMoved++
			}
		}
	}
	// 3. Capacity-0 rendezvous: single-hop messages hand a word
	//    directly from a writing sender to a reading receiver.
	if r.cfg.Capacity == 0 {
		r.rendezvous()
	}
	// 4. Sender writes into first-hop queues.
	for c := 0; c < r.p.NumCells(); c++ {
		cell := model.CellID(c)
		code := r.p.Code(cell)
		if r.issued[c] || r.pc[c] >= len(code) {
			continue
		}
		op := code[r.pc[c]]
		if op.Kind != model.Write {
			continue
		}
		ms := &r.msgs[op.Msg]
		if len(ms.route) == 0 || ms.queues[0] == nil {
			continue
		}
		qi := ms.queues[0]
		if !qi.q.CanAccept() {
			continue
		}
		if r.lm != nil && !r.linkFree(ms.route[0].Link) {
			continue
		}
		if r.faults != nil && (!r.faults.CellOpen(cell, r.now) || !r.faults.LinkOpen(ms.route[0].Link, r.now)) {
			r.stats.GatedOps++
			continue
		}
		qi.q.Push(r.logic.Produce(cell, op.Msg, ms.written))
		if r.lm != nil {
			r.noteLinkHit(ms.route[0].Link)
		}
		ms.written++
		r.pc[c]++
		r.issued[c] = true
		r.moved = true
	}
}

// rendezvous matches W(m) senders with R(m) receivers over bound
// capacity-0 latches: the word passes through without ever being
// buffered, the paper's "queues are just latches" regime.
func (r *runner) rendezvous() {
	for id := range r.msgs {
		ms := &r.msgs[id]
		if len(ms.route) != 1 || ms.queues[0] == nil {
			continue
		}
		m := r.p.Message(model.MessageID(id))
		sc, rc := int(m.Sender), int(m.Receiver)
		if r.issued[sc] || r.issued[rc] {
			continue
		}
		sCode, rCode := r.p.Code(m.Sender), r.p.Code(m.Receiver)
		if r.pc[sc] >= len(sCode) || r.pc[rc] >= len(rCode) {
			continue
		}
		sOp, rOp := sCode[r.pc[sc]], rCode[r.pc[rc]]
		if sOp.Kind != model.Write || sOp.Msg != model.MessageID(id) {
			continue
		}
		if rOp.Kind != model.Read || rOp.Msg != model.MessageID(id) {
			continue
		}
		if r.lm != nil && !r.linkFree(ms.route[0].Link) {
			continue
		}
		if r.faults != nil && (!r.faults.CellOpen(m.Sender, r.now) ||
			!r.faults.CellOpen(m.Receiver, r.now) ||
			!r.faults.LinkOpen(ms.route[0].Link, r.now)) {
			r.stats.GatedOps++
			continue
		}
		w := r.logic.Produce(m.Sender, m.ID, ms.written)
		r.logic.OnRead(m.Receiver, m.ID, ms.read, w)
		r.received[m.ID] = append(r.received[m.ID], w)
		if r.lm != nil {
			r.noteLinkHit(ms.route[0].Link)
		}
		ms.written++
		ms.read++
		ms.departed[0]++
		r.pc[sc]++
		r.pc[rc]++
		r.issued[sc] = true
		r.issued[rc] = true
		r.moved = true
		r.stats.WordsMoved++
	}
}

// releasePhase frees queues whose message has fully passed (§2.3: a
// queue may be reassigned only after the current message's last word
// has passed it).
func (r *runner) releasePhase() {
	for id := range r.msgs {
		ms := &r.msgs[id]
		m := r.p.Message(model.MessageID(id))
		for hop := range ms.route {
			if !ms.granted[hop] || ms.queues[hop] == nil {
				continue
			}
			if ms.departed[hop] == m.Words && ms.queues[hop].q.Empty() {
				qi := ms.queues[hop]
				qi.bound = false
				qi.q.Reset()
				ms.queues[hop] = nil // keep granted=true: the message had its turn
				r.stats.Releases++
				if r.cfg.RecordTimeline {
					r.res.Timeline = append(r.res.Timeline, BindEvent{Cycle: r.now, Link: qi.link, QueueIdx: qi.idx, Msg: model.MessageID(id), Bound: false})
				}
			}
		}
	}
}

func (r *runner) accountBlocked() {
	for c := 0; c < r.p.NumCells(); c++ {
		if !r.issued[c] && r.pc[c] < len(r.p.Code(model.CellID(c))) {
			r.stats.BlockedCycles[c]++
		}
	}
}

func (r *runner) blockedReport() []CellBlock {
	var out []CellBlock
	for c := 0; c < r.p.NumCells(); c++ {
		cell := model.CellID(c)
		code := r.p.Code(cell)
		if r.pc[c] >= len(code) {
			continue
		}
		op := code[r.pc[c]]
		out = append(out, CellBlock{Cell: cell, Op: op, OpIdx: r.pc[c], Reason: r.blockReason(cell, op)})
	}
	return out
}

func (r *runner) blockReason(cell model.CellID, op model.Op) string {
	ms := &r.msgs[op.Msg]
	name := r.p.Message(op.Msg).Name
	if op.Kind == model.Write {
		if len(ms.route) > 0 && !ms.granted[0] {
			return fmt.Sprintf("no queue bound for %s on its first link", name)
		}
		return fmt.Sprintf("queue for %s is full (capacity %d) and the downstream never drains", name, r.cfg.Capacity)
	}
	last := len(ms.route) - 1
	if last >= 0 && !ms.granted[last] {
		return fmt.Sprintf("no queue bound for %s on its last link", name)
	}
	return fmt.Sprintf("no word of %s has arrived", name)
}
