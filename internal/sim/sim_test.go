package sim

import (
	"strings"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// pipeline builds Host→C1 with n words on message A.
func pipeline(t testing.TB, n int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, n)
	b.WriteN(c1, a, n)
	b.ReadN(c2, a, n)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cfg(topo topology.Topology, queues, capacity int) Config {
	return Config{
		Topology:      topo,
		QueuesPerLink: queues,
		Capacity:      capacity,
		Policy:        assign.Naive(assign.FCFS, 0),
	}
}

func TestSingleHopPipelineCompletes(t *testing.T) {
	p := pipeline(t, 5)
	res, err := Run(p, cfg(topology.Linear(2), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("outcome %s", res.Outcome())
	}
	if len(res.Received[0]) != 5 {
		t.Fatalf("received %d words", len(res.Received[0]))
	}
	// Synthetic values preserve order: word i = msg*1e6 + i.
	for i, w := range res.Received[0] {
		if w != Word(i) {
			t.Fatalf("word %d = %v (reordered?)", i, w)
		}
	}
}

func TestThroughputIsPipelined(t *testing.T) {
	// n words over 1 hop with capacity 1 should take ~n+O(1) cycles,
	// not n*k.
	p := pipeline(t, 50)
	res, err := Run(p, cfg(topology.Linear(2), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > 60 {
		t.Fatalf("50 words took %d cycles; pipelining broken", res.Cycles)
	}
}

func TestMultiHopTransport(t *testing.T) {
	// A: C1→C4 over 3 links.
	b := model.NewBuilder()
	cs := b.AddCells("C", 4)
	a := b.DeclareMessage("A", cs[0], cs[3], 6)
	b.WriteN(cs[0], a, 6)
	b.ReadN(cs[3], a, 6)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, cfg(topology.Linear(4), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("outcome %s: %s", res.Outcome(), DescribeBlocked(p, res.Blocked))
	}
	for i, w := range res.Received[0] {
		if w != Word(i) {
			t.Fatalf("multi-hop reordered word %d = %v", i, w)
		}
	}
	// One word per hop per cycle: makespan ≈ words + hops.
	if res.Cycles > 6+3+4 {
		t.Fatalf("multi-hop makespan %d too slow", res.Cycles)
	}
}

func TestRendezvousCapacityZero(t *testing.T) {
	// P2-like exchange with both cells reading first: fine at cap 0
	// when programs are strictly deadlock-free.
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 2)
	bb := b.DeclareMessage("B", c2, c1, 2)
	b.Write(c1, a).Read(c1, bb).Write(c1, a).Read(c1, bb)
	b.Read(c2, a).Write(c2, bb).Read(c2, a).Write(c2, bb)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, cfg(topology.Linear(2), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("rendezvous run %s: %s", res.Outcome(), DescribeBlocked(p, res.Blocked))
	}
}

func TestCapacityZeroDeadlocksP2(t *testing.T) {
	// P2 proper: both write first. With pure latches (no buffering)
	// this deadlocks at run time exactly as §3.2 says.
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c2, c1, 1)
	b.Write(c1, a).Read(c1, bb)
	b.Write(c2, bb).Read(c2, a)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, cfg(topology.Linear(2), 2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("P2 at capacity 0: %s, want deadlock", res.Outcome())
	}
	// …and with one word of buffering it completes (§8).
	res, err = Run(p, cfg(topology.Linear(2), 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("P2 at capacity 1: %s", res.Outcome())
	}
}

func TestCapacityZeroRejectsMultiHop(t *testing.T) {
	b := model.NewBuilder()
	cs := b.AddCells("C", 3)
	a := b.DeclareMessage("A", cs[0], cs[2], 1)
	b.Write(cs[0], a)
	b.Read(cs[2], a)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, cfg(topology.Linear(3), 1, 0)); err == nil {
		t.Fatal("capacity 0 with a multi-hop route accepted")
	}
}

func TestQueueReuseAcrossMessages(t *testing.T) {
	// Two sequential messages share the single queue: binding must be
	// released and reused (§2.3).
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 3)
	bb := b.DeclareMessage("B", c1, c2, 3)
	b.WriteN(c1, a, 3).WriteN(c1, bb, 3)
	b.ReadN(c2, a, 3).ReadN(c2, bb, 3)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := cfg(topology.Linear(2), 1, 2)
	c.RecordTimeline = true
	res, err := Run(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("outcome %s", res.Outcome())
	}
	if res.Stats.Releases != 2 {
		t.Fatalf("releases=%d, want 2", res.Stats.Releases)
	}
	// Timeline: bind A, release A, bind B, release B on queue 0.
	if len(res.Timeline) != 4 {
		t.Fatalf("timeline %v", res.Timeline)
	}
	if !res.Timeline[0].Bound || res.Timeline[1].Bound || !res.Timeline[2].Bound {
		t.Fatalf("timeline order wrong: %v", res.Timeline)
	}
	if res.Timeline[2].Msg != bb {
		t.Fatalf("queue not rebound to B: %v", res.Timeline)
	}
	_ = a
}

func TestDeadlockDetectionReportsBlockedCells(t *testing.T) {
	// Receiver wants B first but only A's queue fits (1 queue, and A
	// hogs it forever since its reader never comes first).
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 2)
	bb := b.DeclareMessage("B", c1, c2, 2)
	b.WriteN(c1, a, 2).WriteN(c1, bb, 2)
	b.ReadN(c2, bb, 2).ReadN(c2, a, 2) // reads B first: strictly deadlocked
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, cfg(topology.Linear(2), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("outcome %s", res.Outcome())
	}
	if len(res.Blocked) != 2 {
		t.Fatalf("blocked=%v", res.Blocked)
	}
	desc := DescribeBlocked(p, res.Blocked)
	if !strings.Contains(desc, "C1") || !strings.Contains(desc, "C2") {
		t.Fatalf("report %q", desc)
	}
}

func TestDeadlockDetectedQuickly(t *testing.T) {
	// The no-progress cycle detector should fire in O(work), not run
	// to MaxCycles.
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c2, c1, 1)
	b.Read(c1, bb).Write(c1, a)
	b.Read(c2, a).Write(c2, bb)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, cfg(topology.Linear(2), 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked || res.Cycles > 8 {
		t.Fatalf("outcome %s after %d cycles", res.Outcome(), res.Cycles)
	}
}

func TestMaxCyclesTimesOut(t *testing.T) {
	p := pipeline(t, 100)
	c := cfg(topology.Linear(2), 1, 1)
	c.MaxCycles = 3
	res, err := Run(p, c)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatalf("outcome %s, want timed-out", res.Outcome())
	}
}

func TestConfigValidation(t *testing.T) {
	p := pipeline(t, 1)
	if _, err := Run(p, Config{}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := Run(p, Config{Topology: topology.Linear(2)}); err == nil {
		t.Fatal("nil policy accepted")
	}
	c := cfg(topology.Linear(2), 0, 1)
	if _, err := Run(p, c); err == nil {
		t.Fatal("zero queues accepted")
	}
	c = cfg(topology.Linear(2), 1, -1)
	if _, err := Run(p, c); err == nil {
		t.Fatal("negative capacity accepted")
	}
	c = cfg(topology.Linear(2), 1, 0)
	c.ExtCapacity = 1
	if _, err := Run(p, c); err == nil {
		t.Fatal("extension over latch accepted")
	}
}

func TestOneOpPerCellPerCycle(t *testing.T) {
	// A cell that reads then writes cannot do both in one cycle: n
	// round trips need ≥ 2n cycles.
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 4)
	bb := b.DeclareMessage("B", c2, c1, 4)
	for i := 0; i < 4; i++ {
		b.Write(c1, a).Read(c1, bb)
		b.Read(c2, a).Write(c2, bb)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, cfg(topology.Linear(2), 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("outcome %s", res.Outcome())
	}
	if res.Cycles < 8 {
		t.Fatalf("%d cycles for 8 sequential ops per cell: issue width violated", res.Cycles)
	}
}

func TestBlockedCyclesAccounting(t *testing.T) {
	p := pipeline(t, 3)
	res, err := Run(p, cfg(topology.Linear(2), 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// C2 is blocked at least on cycle 0 (no word yet).
	if res.Stats.BlockedCycles[1] == 0 {
		t.Fatal("receiver never counted blocked")
	}
	if len(res.Stats.Queues) != 1 {
		t.Fatalf("queue stats %v", res.Stats.Queues)
	}
	if res.Stats.Queues[0].Stats.WordsPassed != 3 {
		t.Fatalf("queue words=%d", res.Stats.Queues[0].Stats.WordsPassed)
	}
}

func TestExtensionIncreasesEffectiveCapacity(t *testing.T) {
	// Strictly deadlocked without buffering: C1 writes all of A then
	// all of B, C2 reads B first. Needs A fully buffered: capacity 4
	// or capacity 2 + extension 2.
	build := func() *model.Program {
		b := model.NewBuilder()
		c1 := b.AddCell("C1")
		c2 := b.AddCell("C2")
		a := b.DeclareMessage("A", c1, c2, 4)
		bb := b.DeclareMessage("B", c1, c2, 1)
		b.WriteN(c1, a, 4).Write(c1, bb)
		b.Read(c2, bb).ReadN(c2, a, 4)
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p := build()
	base := cfg(topology.Linear(2), 2, 2)
	res, err := Run(p, base)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("capacity 2 alone: %s, want deadlock", res.Outcome())
	}
	ext := base
	ext.ExtCapacity = 2
	ext.ExtPenalty = 1
	res, err = Run(p, ext)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("with extension: %s", res.Outcome())
	}
	var extAccesses int
	for _, qs := range res.Stats.Queues {
		extAccesses += qs.Stats.ExtAccesses
	}
	if extAccesses == 0 {
		t.Fatal("extension never used despite being required")
	}
}

func TestSyntheticLogicEncodesMessageAndIndex(t *testing.T) {
	var l SyntheticLogic
	if l.Produce(0, 2, 7) != Word(2*1e6+7) {
		t.Fatal("synthetic encoding wrong")
	}
}

func TestResultOutcomeString(t *testing.T) {
	r := &Result{Completed: true}
	if r.Outcome() != "completed" {
		t.Fatal("outcome string wrong")
	}
	r = &Result{Deadlocked: true}
	if r.Outcome() != "deadlocked" {
		t.Fatal("outcome string wrong")
	}
	r = &Result{}
	if r.Outcome() != "timed-out" {
		t.Fatal("outcome string wrong")
	}
}
