package crossoff

import (
	"fmt"
	"testing"

	"systolic/internal/model"
)

// longPipeline builds a 1-message-per-stage pipeline of the given
// width and depth for scaling measurements.
func longPipeline(b *testing.B, cells, words int) *model.Program {
	b.Helper()
	bd := model.NewBuilder()
	ids := bd.AddCells("C", cells)
	for c := 0; c+1 < cells; c++ {
		m := bd.DeclareMessage(fmt.Sprintf("M%d", c), ids[c], ids[c+1], words)
		bd.WriteN(ids[c], m, words)
		bd.ReadN(ids[c+1], m, words)
	}
	p, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkClassifyStrict(b *testing.B) {
	for _, tc := range []struct{ cells, words int }{
		{4, 16}, {8, 64}, {16, 256},
	} {
		p := longPipeline(b, tc.cells, tc.words)
		b.Run(fmt.Sprintf("cells=%d,words=%d", tc.cells, tc.words), func(b *testing.B) {
			for b.Loop() {
				if !Classify(p, Options{}) {
					b.Fatal("pipeline rejected")
				}
			}
			b.ReportMetric(float64(p.TotalOps()), "ops")
		})
	}
}

func BenchmarkClassifyLookahead(b *testing.B) {
	for _, tc := range []struct{ cells, words int }{
		{4, 16}, {8, 64},
	} {
		p := longPipeline(b, tc.cells, tc.words)
		b.Run(fmt.Sprintf("cells=%d,words=%d", tc.cells, tc.words), func(b *testing.B) {
			for b.Loop() {
				if !Classify(p, Options{Lookahead: true, Budget: UniformBudget(4)}) {
					b.Fatal("pipeline rejected")
				}
			}
		})
	}
}

func BenchmarkSchedule(b *testing.B) {
	p := longPipeline(b, 8, 64)
	for b.Loop() {
		if _, free := Schedule(p); !free {
			b.Fatal("pipeline rejected")
		}
	}
}
