// Package crossoff implements the paper's crossing-off procedure (§3):
// the compile-time analysis that decides whether a systolic program is
// deadlock-free, plus the lookahead variant of §8.1 that credits queue
// buffering.
//
// An executable pair is a W(X) and an R(X) that are both the next
// unexecuted ("front") statement of their cell programs. The procedure
// repeatedly crosses executable pairs off; a program is deadlock-free
// iff every operation can be crossed off.
//
// With lookahead enabled, the W or R of a pair may be located past
// leading *write* operations only (rule R1), and for each located pair
// the number of skipped writes to any message must not exceed that
// message's buffering budget — "the total size of the queues that the
// message will cross" (rule R2). Skipped writes stay in the program and
// are crossed later, which is exactly the paper's model of words parked
// in queue buffers.
package crossoff

import (
	"fmt"
	"sort"
	"strings"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// Skip records one write operation jumped over while locating a pair
// member under lookahead.
type Skip struct {
	Cell model.CellID
	Idx  int // index into the cell's original op sequence
	Msg  model.MessageID
}

// Pair is one crossed-off executable pair: the write at
// (WriteCell, WriteIdx) matched with the read at (ReadCell, ReadIdx),
// both operations on Msg. Skipped lists the write operations jumped
// over to locate either member (empty without lookahead).
type Pair struct {
	Msg       model.MessageID
	WriteCell model.CellID
	WriteIdx  int
	ReadCell  model.CellID
	ReadIdx   int
	Skipped   []Skip
}

// PairPicker selects which executable pair to cross next when several
// are available. The paper notes the choice can matter for queue-use
// efficiency (§6); it never affects the deadlock-free verdict (see the
// confluence property tests).
type PairPicker func(candidates []Pair) Pair

// ByMessageID picks the candidate with the smallest message id,
// breaking ties by write index. It is the deterministic default.
func ByMessageID(candidates []Pair) Pair {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Msg < best.Msg || (c.Msg == best.Msg && c.WriteIdx < best.WriteIdx) {
			best = c
		}
	}
	return best
}

// ByFewestSkips picks the candidate with the fewest skipped writes
// (then smallest message id), a heuristic that keeps buffer pressure
// low under lookahead.
func ByFewestSkips(candidates []Pair) Pair {
	best := candidates[0]
	for _, c := range candidates[1:] {
		if len(c.Skipped) < len(best.Skipped) ||
			(len(c.Skipped) == len(best.Skipped) && c.Msg < best.Msg) {
			best = c
		}
	}
	return best
}

// Options configures a crossing-off run.
type Options struct {
	// Lookahead enables §8.1 lookahead (skip leading writes).
	Lookahead bool
	// Budget returns, for a message, the maximum number of its write
	// operations that may be skipped while locating any single pair
	// (rule R2): the total capacity of the queues the message crosses.
	// nil with Lookahead means unbounded skipping (infinite buffers).
	// Ignored without Lookahead.
	Budget func(model.MessageID) int
	// Picker chooses among executable pairs; nil means ByMessageID.
	Picker PairPicker
	// Observer, if non-nil, is invoked for each pair immediately
	// before it is crossed off. The labeling scheme (§6) hooks in
	// here.
	Observer func(Pair)
}

// BlockedOp describes the front operation of a cell that could not be
// crossed off, for deadlock diagnostics.
type BlockedOp struct {
	Cell model.CellID
	Idx  int
	Op   model.Op
}

// Result reports the outcome of a crossing-off run.
type Result struct {
	// DeadlockFree is true iff every operation was crossed off.
	DeadlockFree bool
	// Order lists the pairs in the order they were crossed.
	Order []Pair
	// Blocked lists each unfinished cell's front operation when the
	// procedure stalled (empty if DeadlockFree).
	Blocked []BlockedOp
	// RemainingOps counts operations left uncrossed.
	RemainingOps int
}

// UniformBudget returns a Budget function assigning every message the
// same skip budget.
func UniformBudget(n int) func(model.MessageID) int {
	return func(model.MessageID) int { return n }
}

// BudgetFromRoutes returns the rule-R2 budget implied by per-queue
// capacity and the routes of each message: capacity × hops, "the total
// size of the queues that the message will cross".
func BudgetFromRoutes(routes [][]topology.Hop, capacity int) func(model.MessageID) int {
	return func(m model.MessageID) int {
		if int(m) < 0 || int(m) >= len(routes) {
			return 0
		}
		return capacity * len(routes[m])
	}
}

// state tracks crossing progress over a program.
type state struct {
	p       *model.Program
	opts    Options
	crossed [][]bool
	cursor  []int // first uncrossed index per cell (may point past crossed holes lazily)
	left    int
}

func newState(p *model.Program, opts Options) *state {
	s := &state{p: p, opts: opts}
	s.crossed = make([][]bool, p.NumCells())
	s.cursor = make([]int, p.NumCells())
	for c := 0; c < p.NumCells(); c++ {
		s.crossed[c] = make([]bool, len(p.Code(model.CellID(c))))
		s.left += len(p.Code(model.CellID(c)))
	}
	return s
}

// advance moves a cell's cursor past crossed ops.
func (s *state) advance(c model.CellID) {
	code := s.p.Code(c)
	for s.cursor[c] < len(code) && s.crossed[c][s.cursor[c]] {
		s.cursor[c]++
	}
}

// front returns the front op of a cell, if any.
func (s *state) front(c model.CellID) (model.Op, int, bool) {
	s.advance(c)
	code := s.p.Code(c)
	if s.cursor[c] >= len(code) {
		return model.Op{}, 0, false
	}
	return code[s.cursor[c]], s.cursor[c], true
}

// locate finds the earliest uncrossed op of the wanted kind on message
// msg in cell c's program, subject to lookahead rules. It returns the
// op index, the writes skipped to reach it, and whether it was found
// within the rules.
func (s *state) locate(c model.CellID, kind model.OpKind, msg model.MessageID) (int, []Skip, bool) {
	s.advance(c)
	code := s.p.Code(c)
	var skipped []Skip
	for i := s.cursor[c]; i < len(code); i++ {
		if s.crossed[c][i] {
			continue
		}
		op := code[i]
		if op.Kind == kind && op.Msg == msg {
			return i, skipped, true
		}
		if !s.opts.Lookahead {
			return 0, nil, false // strict: only the front qualifies
		}
		if op.Kind == model.Read {
			return 0, nil, false // rule R1: reads are never skipped
		}
		skipped = append(skipped, Skip{Cell: c, Idx: i, Msg: op.Msg})
	}
	return 0, nil, false
}

// withinBudget applies rule R2 to a candidate's skip set.
func (s *state) withinBudget(skipped []Skip) bool {
	if !s.opts.Lookahead || s.opts.Budget == nil || len(skipped) == 0 {
		return true
	}
	perMsg := make(map[model.MessageID]int)
	for _, sk := range skipped {
		perMsg[sk.Msg]++
	}
	for m, n := range perMsg {
		if n > s.opts.Budget(m) {
			return false
		}
	}
	return true
}

// candidateFor builds the executable pair for message m, if one exists
// under the current rules.
func (s *state) candidateFor(m model.Message) (Pair, bool) {
	wIdx, wSkips, ok := s.locate(m.Sender, model.Write, m.ID)
	if !ok {
		return Pair{}, false
	}
	rIdx, rSkips, ok := s.locate(m.Receiver, model.Read, m.ID)
	if !ok {
		return Pair{}, false
	}
	skipped := append(append([]Skip(nil), wSkips...), rSkips...)
	if !s.withinBudget(skipped) {
		return Pair{}, false
	}
	return Pair{
		Msg:       m.ID,
		WriteCell: m.Sender,
		WriteIdx:  wIdx,
		ReadCell:  m.Receiver,
		ReadIdx:   rIdx,
		Skipped:   skipped,
	}, true
}

// candidates returns all currently executable pairs, one per eligible
// message, in message-id order.
func (s *state) candidates() []Pair {
	var out []Pair
	for _, m := range s.p.Messages() {
		if c, ok := s.candidateFor(m); ok {
			out = append(out, c)
		}
	}
	return out
}

// cross marks a pair's two ops as executed.
func (s *state) cross(pr Pair) {
	s.crossed[pr.WriteCell][pr.WriteIdx] = true
	s.crossed[pr.ReadCell][pr.ReadIdx] = true
	s.left -= 2
}

// blocked gathers the diagnostic front ops of unfinished cells.
func (s *state) blocked() []BlockedOp {
	var out []BlockedOp
	for c := 0; c < s.p.NumCells(); c++ {
		if op, idx, ok := s.front(model.CellID(c)); ok {
			out = append(out, BlockedOp{Cell: model.CellID(c), Idx: idx, Op: op})
		}
	}
	return out
}

// tracker maintains the candidate set incrementally. candidateFor(m)
// is a pure function of the crossed state of m's two endpoint cells,
// so after crossing a pair only messages incident to the pair's write
// and read cells can gain or lose candidacy — everything else is
// untouched. This turns Run from O(pairs × messages) rescanning into
// O(pairs × degree) maintenance, which is what lets 10k-cell operator
// graphs through Analyze in milliseconds instead of minutes.
type tracker struct {
	s      *state
	msgs   []model.Message
	byCell [][]int // cell → indexes into msgs with that cell as an endpoint
	cand   []Pair  // current candidate per message (valid iff live)
	live   []bool
	nLive  int
}

func newTracker(s *state) *tracker {
	t := &tracker{s: s, msgs: s.p.Messages()}
	t.byCell = make([][]int, s.p.NumCells())
	for i, m := range t.msgs {
		t.byCell[m.Sender] = append(t.byCell[m.Sender], i)
		if m.Receiver != m.Sender {
			t.byCell[m.Receiver] = append(t.byCell[m.Receiver], i)
		}
	}
	t.cand = make([]Pair, len(t.msgs))
	t.live = make([]bool, len(t.msgs))
	for i, m := range t.msgs {
		if c, ok := s.candidateFor(m); ok {
			t.cand[i], t.live[i] = c, true
			t.nLive++
		}
	}
	return t
}

// refresh recomputes candidacy for every message incident to cell c.
func (t *tracker) refresh(c model.CellID) {
	for _, i := range t.byCell[c] {
		pr, ok := t.s.candidateFor(t.msgs[i])
		if ok != t.live[i] {
			if ok {
				t.nLive++
			} else {
				t.nLive--
			}
		}
		t.cand[i], t.live[i] = pr, ok
	}
}

// slice materializes the live candidates in message-id order — the
// exact value the full rescan used to produce — for custom pickers.
func (t *tracker) slice() []Pair {
	out := make([]Pair, 0, t.nLive)
	for i, ok := range t.live {
		if ok {
			out = append(out, t.cand[i])
		}
	}
	return out
}

// minHeap is a binary min-heap of message indexes with lazy deletion:
// entries are re-pushed on every refresh-to-live, and stale or dead
// entries are discarded at pop time against tracker.live.
type minHeap []int

func (h *minHeap) push(v int) {
	*h = append(*h, v)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent] <= (*h)[i] {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *minHeap) pop() int {
	old := *h
	v := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l] < (*h)[small] {
			small = l
		}
		if r < n && (*h)[r] < (*h)[small] {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return v
}

// Run performs the crossing-off procedure one pair at a time until no
// executable pair remains, and reports whether the program is
// deadlock-free (§3.2).
func Run(p *model.Program, opts Options) Result {
	s := newState(p, opts)
	t := newTracker(s)
	var order []Pair

	if opts.Picker == nil {
		// Fast path for the deterministic default: ByMessageID always
		// selects the live candidate with the smallest message id
		// (there is exactly one candidate per message, so the
		// write-index tie-break never fires). A lazy min-heap of
		// message indexes finds it without materializing the slice.
		var h minHeap
		for i, ok := range t.live {
			if ok {
				h.push(i)
			}
		}
		for s.left > 0 {
			best := -1
			for len(h) > 0 {
				i := h.pop()
				if t.live[i] {
					best = i
					break
				}
			}
			if best < 0 {
				break
			}
			pr := t.cand[best]
			if opts.Observer != nil {
				opts.Observer(pr)
			}
			s.cross(pr)
			order = append(order, pr)
			t.refresh(pr.WriteCell)
			if pr.ReadCell != pr.WriteCell {
				t.refresh(pr.ReadCell)
			}
			for _, i := range t.byCell[pr.WriteCell] {
				if t.live[i] {
					h.push(i)
				}
			}
			if pr.ReadCell != pr.WriteCell {
				for _, i := range t.byCell[pr.ReadCell] {
					if t.live[i] {
						h.push(i)
					}
				}
			}
		}
	} else {
		for s.left > 0 {
			if t.nLive == 0 {
				break
			}
			pr := opts.Picker(t.slice())
			if opts.Observer != nil {
				opts.Observer(pr)
			}
			s.cross(pr)
			order = append(order, pr)
			t.refresh(pr.WriteCell)
			if pr.ReadCell != pr.WriteCell {
				t.refresh(pr.ReadCell)
			}
		}
	}
	return Result{
		DeadlockFree: s.left == 0,
		Order:        order,
		Blocked:      s.blocked(),
		RemainingOps: s.left,
	}
}

// Classify is Run without trace bookkeeping concerns: it answers only
// the deadlock-free question.
func Classify(p *model.Program, opts Options) bool {
	return Run(p, opts).DeadlockFree
}

// Round is one step of the simultaneous schedule: all pairs executable
// at the start of the round, crossed together. Because a cell's front
// is a single operation, the pairs of a round are automatically
// disjoint; Fig 4's steps 3, 5 and 9 each contain two pairs.
type Round struct {
	Step  int
	Pairs []Pair
}

// Schedule runs the strict (no-lookahead) procedure in maximal
// simultaneous rounds, reproducing the step structure of Fig 4. It
// reports the rounds and whether the program is deadlock-free.
func Schedule(p *model.Program) ([]Round, bool) {
	s := newState(p, Options{})
	var rounds []Round
	for s.left > 0 {
		cands := s.candidates()
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].Msg < cands[j].Msg })
		for _, pr := range cands {
			s.cross(pr)
		}
		rounds = append(rounds, Round{Step: len(rounds) + 1, Pairs: cands})
	}
	return rounds, s.left == 0
}

// FormatPair renders a pair like "W(XA)@Host/R(XA)@C1" using program
// names.
func FormatPair(p *model.Program, pr Pair) string {
	m := p.Message(pr.Msg)
	s := fmt.Sprintf("W(%s)@%s/R(%s)@%s", m.Name, p.Cell(pr.WriteCell).Name, m.Name, p.Cell(pr.ReadCell).Name)
	if len(pr.Skipped) > 0 {
		var parts []string
		for _, sk := range pr.Skipped {
			parts = append(parts, fmt.Sprintf("W(%s)@%s#%d", p.Message(sk.Msg).Name, p.Cell(sk.Cell).Name, sk.Idx))
		}
		s += " skipping " + strings.Join(parts, ",")
	}
	return s
}

// DescribeBlocked renders the blocked fronts of a deadlocked
// classification, e.g. "C1 blocked at W(A); C2 blocked at R(B)".
func DescribeBlocked(p *model.Program, blocked []BlockedOp) string {
	if len(blocked) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(blocked))
	for _, b := range blocked {
		parts = append(parts, fmt.Sprintf("%s blocked at %s", p.Cell(b.Cell).Name, p.OpString(b.Op)))
	}
	return strings.Join(parts, "; ")
}
