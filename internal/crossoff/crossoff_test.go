package crossoff

import (
	"math/rand"
	"testing"

	"systolic/internal/model"
)

// build constructs a program from compact specs: msgs are
// {name, sender, receiver, words}; code maps cell index to "W:A R:B"
// style op lists.
type msgSpec struct {
	name  string
	s, r  int
	words int
}

func build(t testing.TB, cells int, msgs []msgSpec, code [][]string) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	ids := b.AddCells("C", cells)
	byName := map[string]model.MessageID{}
	for _, m := range msgs {
		byName[m.name] = b.DeclareMessage(m.name, ids[m.s], ids[m.r], m.words)
	}
	for c, ops := range code {
		for _, op := range ops {
			kind, name := op[0], op[2:]
			if kind == 'W' {
				b.Write(ids[c], byName[name])
			} else {
				b.Read(ids[c], byName[name])
			}
		}
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// p1 is Fig 5/Fig 10's program P1.
func p1(t testing.TB) *model.Program {
	return build(t, 2,
		[]msgSpec{{"A", 0, 1, 4}, {"B", 0, 1, 2}},
		[][]string{
			{"W:A", "W:A", "W:B", "W:A", "W:B", "W:A"},
			{"R:B", "R:A", "R:B", "R:A", "R:A", "R:A"},
		})
}

func TestStrictSimplePipeline(t *testing.T) {
	p := build(t, 2,
		[]msgSpec{{"A", 0, 1, 3}},
		[][]string{{"W:A", "W:A", "W:A"}, {"R:A", "R:A", "R:A"}})
	res := Run(p, Options{})
	if !res.DeadlockFree || len(res.Order) != 3 || res.RemainingOps != 0 {
		t.Fatalf("pipeline: %+v", res)
	}
}

func TestStrictDeadlockedP1(t *testing.T) {
	res := Run(p1(t), Options{})
	if res.DeadlockFree {
		t.Fatal("P1 classified deadlock-free strictly")
	}
	if res.RemainingOps != 12 {
		t.Fatalf("P1 crossed %d ops, want 0 (remaining %d)", 12-res.RemainingOps, res.RemainingOps)
	}
	if len(res.Blocked) != 2 {
		t.Fatalf("blocked=%v", res.Blocked)
	}
	// C1 blocked at its first W(A), C2 at its first R(B).
	if res.Blocked[0].Op.Kind != model.Write || res.Blocked[1].Op.Kind != model.Read {
		t.Fatalf("blocked fronts wrong: %v", res.Blocked)
	}
}

func TestLookaheadAdmitsP1WithBudget2(t *testing.T) {
	p := p1(t)
	res := Run(p, Options{Lookahead: true, Budget: UniformBudget(2)})
	if !res.DeadlockFree {
		t.Fatal("P1 rejected with budget 2")
	}
	// Fig 10: the first pair is B's, skipping two W(A)s; the third is
	// B's second word, again skipping two W(A)s.
	if p.Message(res.Order[0].Msg).Name != "B" || len(res.Order[0].Skipped) != 2 {
		t.Fatalf("first pair %v", FormatPair(p, res.Order[0]))
	}
	if p.Message(res.Order[1].Msg).Name != "A" || len(res.Order[1].Skipped) != 0 {
		t.Fatalf("second pair %v", FormatPair(p, res.Order[1]))
	}
	if p.Message(res.Order[2].Msg).Name != "B" || len(res.Order[2].Skipped) != 2 {
		t.Fatalf("third pair %v", FormatPair(p, res.Order[2]))
	}
	for _, pr := range res.Order {
		for _, sk := range pr.Skipped {
			if p.Message(sk.Msg).Name != "A" {
				t.Fatalf("skipped a non-A write: %v", FormatPair(p, pr))
			}
		}
	}
}

func TestLookaheadBudget1RejectsP1(t *testing.T) {
	if Classify(p1(t), Options{Lookahead: true, Budget: UniformBudget(1)}) {
		t.Fatal("P1 admitted with budget 1")
	}
}

func TestLookaheadUnboundedBudget(t *testing.T) {
	// nil budget = infinite buffering; P1 is admitted.
	if !Classify(p1(t), Options{Lookahead: true}) {
		t.Fatal("P1 rejected with unbounded lookahead")
	}
}

func TestLookaheadNeverSkipsReads(t *testing.T) {
	// P3: both cells read before writing; lookahead must not admit it.
	p := build(t, 2,
		[]msgSpec{{"A", 0, 1, 1}, {"B", 1, 0, 1}},
		[][]string{{"R:B", "W:A"}, {"R:A", "W:B"}})
	if Classify(p, Options{Lookahead: true}) {
		t.Fatal("rule R1 violated: read was skipped")
	}
}

func TestLookaheadAdmitsP2(t *testing.T) {
	// P2: both cells write before reading; one word of buffering
	// suffices.
	p := build(t, 2,
		[]msgSpec{{"A", 0, 1, 1}, {"B", 1, 0, 1}},
		[][]string{{"W:A", "R:B"}, {"W:B", "R:A"}})
	if Classify(p, Options{}) {
		t.Fatal("P2 classified deadlock-free strictly")
	}
	if !Classify(p, Options{Lookahead: true, Budget: UniformBudget(1)}) {
		t.Fatal("P2 rejected with budget 1")
	}
}

func TestScheduleRoundsAreMaximal(t *testing.T) {
	// Two independent pipelines cross in parallel every round.
	p := build(t, 4,
		[]msgSpec{{"A", 0, 1, 2}, {"B", 2, 3, 2}},
		[][]string{
			{"W:A", "W:A"}, {"R:A", "R:A"},
			{"W:B", "W:B"}, {"R:B", "R:B"},
		})
	rounds, free := Schedule(p)
	if !free {
		t.Fatal("parallel pipelines deadlocked")
	}
	if len(rounds) != 2 {
		t.Fatalf("rounds=%d, want 2", len(rounds))
	}
	for _, r := range rounds {
		if len(r.Pairs) != 2 {
			t.Fatalf("round %d has %d pairs, want 2", r.Step, len(r.Pairs))
		}
	}
}

func TestScheduleDeadlockedReportsFalse(t *testing.T) {
	if _, free := Schedule(p1(t)); free {
		t.Fatal("Schedule accepted P1")
	}
}

// randomPicker breaks the default deterministic order.
func randomPicker(rng *rand.Rand) PairPicker {
	return func(cands []Pair) Pair { return cands[rng.Intn(len(cands))] }
}

// TestConfluence: the deadlock-free verdict must not depend on the
// pair-selection order (the paper's procedure says "pick an executable
// pair" without constraining which).
func TestConfluence(t *testing.T) {
	progs := []*model.Program{
		p1(t),
		build(t, 3,
			[]msgSpec{{"A", 0, 1, 3}, {"B", 1, 2, 3}, {"C", 2, 0, 1}},
			[][]string{
				{"W:A", "W:A", "W:A", "R:C"},
				{"R:A", "W:B", "R:A", "W:B", "R:A", "W:B"},
				{"R:B", "R:B", "R:B", "W:C"},
			}),
	}
	for pi, p := range progs {
		want := Classify(p, Options{})
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed))
			got := Classify(p, Options{Picker: randomPicker(rng)})
			if got != want {
				t.Fatalf("program %d: verdict depends on pick order (seed %d): %v vs %v", pi, seed, got, want)
			}
		}
		// Lookahead verdicts must be order-independent too.
		wantLA := Classify(p, Options{Lookahead: true, Budget: UniformBudget(2)})
		for seed := int64(0); seed < 30; seed++ {
			rng := rand.New(rand.NewSource(seed))
			got := Classify(p, Options{Lookahead: true, Budget: UniformBudget(2), Picker: randomPicker(rng)})
			if got != wantLA {
				t.Fatalf("program %d: lookahead verdict depends on pick order (seed %d)", pi, seed)
			}
		}
	}
}

// TestLookaheadMonotoneInBudget: a bigger budget never rejects a
// program a smaller one admitted.
func TestLookaheadMonotoneInBudget(t *testing.T) {
	progs := []*model.Program{p1(t)}
	for _, p := range progs {
		prev := false
		for budget := 0; budget <= 4; budget++ {
			got := Classify(p, Options{Lookahead: true, Budget: UniformBudget(budget)})
			if prev && !got {
				t.Fatalf("budget %d rejected but %d admitted", budget, budget-1)
			}
			prev = got
		}
	}
}

// TestStrictImpliesLookahead: every strictly deadlock-free program is
// lookahead deadlock-free with any budget.
func TestStrictImpliesLookahead(t *testing.T) {
	p := build(t, 2,
		[]msgSpec{{"A", 0, 1, 2}, {"B", 1, 0, 2}},
		[][]string{{"W:A", "R:B", "W:A", "R:B"}, {"R:A", "W:B", "R:A", "W:B"}})
	if !Classify(p, Options{}) {
		t.Fatal("expected strict deadlock-free")
	}
	if !Classify(p, Options{Lookahead: true, Budget: UniformBudget(0)}) {
		t.Fatal("lookahead with zero budget rejected a strictly-fine program")
	}
}

func TestObserverSeesEveryPair(t *testing.T) {
	p := p1(t)
	var seen int
	Run(p, Options{Lookahead: true, Budget: UniformBudget(2), Observer: func(Pair) { seen++ }})
	if seen != 6 {
		t.Fatalf("observer saw %d pairs, want 6", seen)
	}
}

func TestPickers(t *testing.T) {
	cands := []Pair{
		{Msg: 3, WriteIdx: 0, Skipped: []Skip{{}, {}}},
		{Msg: 1, WriteIdx: 5, Skipped: []Skip{{}}},
		{Msg: 1, WriteIdx: 2, Skipped: nil},
	}
	if got := ByMessageID(cands); got.Msg != 1 || got.WriteIdx != 2 {
		t.Fatalf("ByMessageID picked %+v", got)
	}
	if got := ByFewestSkips(cands); len(got.Skipped) != 0 {
		t.Fatalf("ByFewestSkips picked %+v", got)
	}
}

func TestDescribeBlocked(t *testing.T) {
	p := p1(t)
	res := Run(p, Options{})
	s := DescribeBlocked(p, res.Blocked)
	if s == "none" || len(s) == 0 {
		t.Fatalf("DescribeBlocked = %q", s)
	}
	if DescribeBlocked(p, nil) != "none" {
		t.Fatal("empty blocked list should render 'none'")
	}
}

func TestBudgetFromRoutesViaUniform(t *testing.T) {
	// BudgetFromRoutes is exercised end-to-end in core tests; here the
	// arithmetic: capacity × hops, and out-of-range ids budget 0.
	b := BudgetFromRoutes(nil, 3)
	if b(0) != 0 {
		t.Fatal("out-of-range message should have zero budget")
	}
}
