package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterBoundsConcurrency(t *testing.T) {
	const bound = 3
	l := NewLimiter(bound)
	if l.Cap() != bound {
		t.Fatalf("Cap = %d, want %d", l.Cap(), bound)
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			l.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Fatalf("observed %d concurrent holders, bound is %d", p, bound)
	}
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after all released", l.InUse())
	}
}

func TestLimiterAcquireHonoursContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("Acquire succeeded on a cancelled context with no free slot")
	}
	l.Release()
}

func TestNilLimiterIsUnbounded(t *testing.T) {
	var l *Limiter
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	l.Release()
	if l.InUse() != 0 || l.Cap() != 0 {
		t.Fatal("nil limiter reports non-zero usage")
	}
}

// TestTryAcquireN pins the extra-credit contract intra-run sharding
// relies on: never blocks, grants at most what is free, pairs with
// ReleaseN, and a nil limiter grants everything.
func TestTryAcquireN(t *testing.T) {
	l := NewLimiter(3)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := l.TryAcquireN(5); got != 2 {
		t.Fatalf("TryAcquireN(5) with 2 free = %d", got)
	}
	if got := l.TryAcquireN(1); got != 0 {
		t.Fatalf("TryAcquireN(1) when saturated = %d", got)
	}
	l.ReleaseN(2)
	l.Release()
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after releasing everything", l.InUse())
	}
	if got := l.TryAcquireN(0); got != 0 {
		t.Fatalf("TryAcquireN(0) = %d", got)
	}
	var nilL *Limiter
	if got := nilL.TryAcquireN(4); got != 4 {
		t.Fatalf("nil TryAcquireN(4) = %d", got)
	}
	nilL.ReleaseN(4)
}

// TestShardBudget pins the shared intra-run discipline: ≤ 1 requested
// means single-threaded with no slots touched; otherwise 1 + whatever
// extra slots are free, all returned by the release func.
func TestShardBudget(t *testing.T) {
	l := NewLimiter(3)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if w, release := l.ShardBudget(1); w != 0 || l.InUse() != 1 {
		t.Fatalf("ShardBudget(1) = %d workers, %d in use", w, l.InUse())
	} else {
		release()
	}
	w, release := l.ShardBudget(8)
	if w != 3 || l.InUse() != 3 {
		t.Fatalf("ShardBudget(8) with 2 free = %d workers, %d in use", w, l.InUse())
	}
	release()
	if l.InUse() != 1 {
		t.Fatalf("release left %d in use, want 1", l.InUse())
	}
	l.Release()
	var nilL *Limiter
	if w, release := nilL.ShardBudget(5); w != 5 {
		t.Fatalf("nil ShardBudget(5) = %d", w)
	} else {
		release()
	}
}

// TestSweepRunWorkersBoundedAndIdentical: intra-run sharding through a
// tight limiter must neither exceed the global budget (the limiter
// panics on over-release, and InUse must return to zero) nor change a
// single report byte.
func TestSweepRunWorkersBoundedAndIdentical(t *testing.T) {
	cases := testCases()
	axes := Axes{Seed: 1}
	plain, err := Run(context.Background(), cases, axes, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	lim := NewLimiter(2)
	sharded, err := Run(context.Background(), cases, axes, Options{
		Workers: 2, RunWorkers: 4, Limiter: lim,
	})
	if err != nil {
		t.Fatal(err)
	}
	if lim.InUse() != 0 {
		t.Fatalf("limiter leaked %d slots", lim.InUse())
	}
	if plain.Table() != sharded.Table() {
		t.Fatal("intra-run sharding changed the sweep report")
	}
}

// TestSweepSharesLimiter runs a sweep through a width-1 limiter and
// checks the report is complete and identical to an unlimited run.
func TestSweepSharesLimiter(t *testing.T) {
	cases := testCases()
	axes := Axes{Seed: 1}
	free, err := Run(context.Background(), cases, axes, Options{Workers: 4})
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	gated, err := Run(context.Background(), cases, axes, Options{Workers: 4, Limiter: NewLimiter(1)})
	if err != nil {
		t.Fatalf("limited run: %v", err)
	}
	if free.Table() != gated.Table() {
		t.Fatal("limiter changed the sweep report")
	}
}
