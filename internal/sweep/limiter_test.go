package sweep

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestLimiterBoundsConcurrency(t *testing.T) {
	const bound = 3
	l := NewLimiter(bound)
	if l.Cap() != bound {
		t.Fatalf("Cap = %d, want %d", l.Cap(), bound)
	}
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Acquire(context.Background()); err != nil {
				t.Errorf("Acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			l.Release()
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > bound {
		t.Fatalf("observed %d concurrent holders, bound is %d", p, bound)
	}
	if l.InUse() != 0 {
		t.Fatalf("InUse = %d after all released", l.InUse())
	}
}

func TestLimiterAcquireHonoursContext(t *testing.T) {
	l := NewLimiter(1)
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.Acquire(ctx); err == nil {
		t.Fatal("Acquire succeeded on a cancelled context with no free slot")
	}
	l.Release()
}

func TestNilLimiterIsUnbounded(t *testing.T) {
	var l *Limiter
	if err := l.Acquire(context.Background()); err != nil {
		t.Fatalf("nil Acquire: %v", err)
	}
	l.Release()
	if l.InUse() != 0 || l.Cap() != 0 {
		t.Fatal("nil limiter reports non-zero usage")
	}
}

// TestSweepSharesLimiter runs a sweep through a width-1 limiter and
// checks the report is complete and identical to an unlimited run.
func TestSweepSharesLimiter(t *testing.T) {
	cases := testCases()
	axes := Axes{Seed: 1}
	free, err := Run(context.Background(), cases, axes, Options{Workers: 4})
	if err != nil {
		t.Fatalf("unlimited run: %v", err)
	}
	gated, err := Run(context.Background(), cases, axes, Options{Workers: 4, Limiter: NewLimiter(1)})
	if err != nil {
		t.Fatalf("limited run: %v", err)
	}
	if free.Table() != gated.Table() {
		t.Fatal("limiter changed the sweep report")
	}
}
