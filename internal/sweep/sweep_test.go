package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"systolic/internal/core"
	"systolic/internal/fault"
	"systolic/internal/gen"
	"systolic/internal/model"
	"systolic/internal/topology"
	"systolic/internal/workload"
)

// familyWorkload mirrors the oracle's family knob (internal/diff
// fuzzScenario): sizes derive from the seed the same way, so corpus
// entries replay the exact operator graph the fuzzer exercised.
// Returns nil when the derived sizes are impossible.
func familyWorkload(seed int64, family uint8) *workload.Workload {
	mod := func(m uint64) int { return int(uint64(seed) % m) }
	var w *workload.Workload
	var err error
	switch family {
	case 1:
		w, err = workload.Attention(workload.AttentionOptions{Tokens: 2 + mod(9), Experts: 1 + mod(4)})
	case 2:
		w, err = workload.Stencil(workload.StencilOptions{Rows: 2 + mod(3), Cols: 2 + mod(4), Iters: 1 + mod(3)})
	case 3:
		w, err = workload.FFT(workload.FFTOptions{LogN: 1 + mod(4)})
	case 4:
		w, err = workload.PipelinedSort(workload.PipelinedSortOptions{Width: 2 + mod(10), Rounds: 1 + mod(6)})
	default:
		return nil
	}
	if err != nil {
		return nil
	}
	return w
}

func testCases() []Case {
	f7 := workload.Fig7(workload.Fig7Options{})
	f8 := workload.Fig8()
	return []Case{
		{Name: "fig7", Program: f7.Program, Topology: f7.Topology},
		{Name: "fig8", Program: f8.Program, Topology: f8.Topology},
	}
}

// TestDeterministicAcrossWorkers is the acceptance criterion: the same
// grid and seed produce a byte-identical report with 1 worker and with
// runtime.NumCPU() workers, over ≥ 100 configurations.
func TestDeterministicAcrossWorkers(t *testing.T) {
	cases := testCases()
	axes := Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS, core.NaiveRandom, core.StaticAssignment, core.DynamicCompatible},
		Queues:     []int{0, 1, 2, 3},
		Capacities: []int{1, 2},
		Lookaheads: []int{0, 2},
		Seed:       7,
	}
	if n := axes.Size(len(cases)); n < 100 {
		t.Fatalf("grid has %d configurations, want ≥ 100", n)
	}
	seq, err := Run(context.Background(), cases, axes, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), cases, axes, Options{Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatal("1-worker and NumCPU-worker reports differ")
	}
	if seq.Table() != par.Table() {
		t.Fatal("rendered tables differ across worker counts")
	}
	if len(seq.Outcomes) != axes.Size(len(cases)) {
		t.Fatalf("report has %d outcomes, want %d", len(seq.Outcomes), axes.Size(len(cases)))
	}
}

// TestSweepFindsFig7Deadlock checks the engine reproduces §4: FCFS
// with one queue per link deadlocks Fig 7, the compatible policy never
// deadlocks at its Theorem 1 budget, and the safe-budget summary
// reports it.
func TestSweepFindsFig7Deadlock(t *testing.T) {
	cases := testCases()
	rep, err := Run(context.Background(), cases, Axes{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var fcfsDeadlock, compatibleDeadlock bool
	for _, o := range rep.Outcomes {
		if o.CaseName != "fig7" {
			continue
		}
		if o.Policy == core.NaiveFCFS && o.QueuesUsed == 1 && o.deadlocked() {
			fcfsDeadlock = true
		}
		if o.Policy == core.DynamicCompatible && o.Queues == 0 && o.Result != "completed" {
			compatibleDeadlock = true
		}
	}
	if !fcfsDeadlock {
		t.Error("fig7 under FCFS with 1 queue/link did not deadlock")
	}
	if compatibleDeadlock {
		t.Error("fig7 under compatible assignment at the analysis minimum failed")
	}
	if _, ok := rep.SafeBudgets(core.DynamicCompatible)["fig7"]; !ok {
		t.Error("no safe compatible budget reported for fig7")
	}
	if len(rep.Deadlocked()) == 0 {
		t.Error("sweep over Figs 7–8 found no deadlocks at all")
	}
	if !strings.Contains(rep.Table(), "deadlocked") {
		t.Error("table does not mention deadlocks")
	}
}

// TestCancellation checks a cancelled context abandons the sweep
// promptly with ctx.Err().
func TestCancellation(t *testing.T) {
	cases := testCases()
	axes := Axes{Queues: []int{1, 2, 3, 4, 5, 6, 7, 8}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cases, axes, Options{Workers: 2}); err != context.Canceled {
		t.Fatalf("pre-cancelled sweep returned %v, want context.Canceled", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	start := time.Now()
	_, err := Run(ctx2, cases, axes, Options{Workers: 1})
	if err != nil && err != context.DeadlineExceeded {
		t.Fatalf("timed-out sweep returned %v", err)
	}
	// err == nil is possible if the whole grid beat the deadline; only
	// a hang is a failure.
	if time.Since(start) > 30*time.Second {
		t.Fatal("cancelled sweep did not return promptly")
	}
}

// TestRejectedAndAutoBudget checks analysis-rejected grid points are
// reported (not run) and auto budgets resolve to the analysis minimum.
func TestRejectedAndAutoBudget(t *testing.T) {
	p1 := workload.Fig5P1()
	cases := []Case{{Name: "p1", Program: p1.Program, Topology: p1.Topology}}
	axes := Axes{
		Policies:   []core.PolicyKind{core.DynamicCompatible},
		Queues:     []int{0},
		Capacities: []int{2},
		Lookaheads: []int{0, 2},
	}
	rep, err := Run(context.Background(), cases, axes, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 2 {
		t.Fatalf("got %d outcomes, want 2", len(rep.Outcomes))
	}
	strict, la := rep.Outcomes[0], rep.Outcomes[1]
	if strict.Result != "rejected" || strict.DeadlockFree {
		t.Errorf("strict P1 = %q (deadlock-free=%v), want rejected", strict.Result, strict.DeadlockFree)
	}
	if la.Result != "completed" {
		t.Errorf("lookahead-2 P1 = %q, want completed", la.Result)
	}
	if la.QueuesUsed < 1 {
		t.Errorf("auto budget resolved to %d", la.QueuesUsed)
	}
}

// TestValidation covers the configuration errors.
func TestValidation(t *testing.T) {
	if _, err := Run(context.Background(), nil, Axes{}, Options{}); err == nil {
		t.Error("empty case list accepted")
	}
	cases := testCases()
	if _, err := Run(context.Background(), cases, Axes{Capacities: []int{0}}, Options{}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := Run(context.Background(), cases, Axes{Queues: []int{-1}}, Options{}); err == nil {
		t.Error("negative queue budget accepted")
	}
	if _, err := Run(context.Background(), []Case{{Name: "nil"}}, Axes{}, Options{}); err == nil {
		t.Error("nil program accepted")
	}
}

// countingTopology wraps a Topology and counts Route invocations —
// every analysis pass routes each message, so the count exposes how
// many times Analyze ran behind a sweep.
type countingTopology struct {
	topology.Topology
	calls *int
}

func (c countingTopology) Route(from, to model.CellID) ([]topology.Hop, error) {
	*c.calls++
	return c.Topology.Route(from, to)
}

// TestAnalysisMemoizedAcrossGrid: growing the policy × queues ×
// capacity axes must not grow the number of Analyze passes (and hence
// machine compiles) — one per (case, lookahead), shared by the whole
// grid.
func TestAnalysisMemoizedAcrossGrid(t *testing.T) {
	countCalls := func(axes Axes) int {
		calls := 0
		f7 := workload.Fig7(workload.Fig7Options{})
		cases := []Case{{
			Name:     "fig7",
			Program:  f7.Program,
			Topology: countingTopology{Topology: f7.Topology, calls: &calls},
		}}
		if _, err := Run(context.Background(), cases, axes, Options{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		return calls
	}
	lookaheads := []int{0, 2}
	small := countCalls(Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS},
		Queues:     []int{1},
		Capacities: []int{1},
		Lookaheads: lookaheads,
		Seed:       1,
	})
	large := countCalls(Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS, core.StaticAssignment, core.DynamicCompatible},
		Queues:     []int{0, 1, 2, 3},
		Capacities: []int{1, 2, 4},
		Lookaheads: lookaheads,
		Seed:       1,
	})
	if small == 0 {
		t.Fatal("counting topology never consulted")
	}
	if large != small {
		t.Fatalf("route computations grew with the grid: %d (1-point axes) vs %d (36-point axes); analysis not memoized", small, large)
	}
}

// TestOnOutcomeReportsEveryGridPoint pins the streaming hook's
// contract: every grid point is reported exactly once, tagged with its
// enumeration index, carrying the same outcome the final report holds
// at that index — so a consumer re-sorting by index reconstructs the
// order-stable report byte-for-byte.
func TestOnOutcomeReportsEveryGridPoint(t *testing.T) {
	cases := testCases()
	axes := Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS, core.DynamicCompatible},
		Queues:     []int{1, 2},
		Capacities: []int{1},
		Lookaheads: []int{0},
		Seed:       1,
	}
	var mu sync.Mutex
	got := make(map[int]Outcome)
	rep, err := Run(context.Background(), cases, axes, Options{
		Workers: 4,
		OnOutcome: func(i int, o Outcome) {
			mu.Lock()
			defer mu.Unlock()
			if _, dup := got[i]; dup {
				t.Errorf("grid point %d reported twice", i)
			}
			got[i] = o
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rep.Outcomes) {
		t.Fatalf("callback saw %d grid points, report has %d", len(got), len(rep.Outcomes))
	}
	for i, want := range rep.Outcomes {
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("callback outcome %d diverges from the report:\n%+v\nvs\n%+v", i, got[i], want)
		}
	}
}

// TestAnalysisProviderBypassesEngineAnalyze: with Options.Analysis
// installed, the engine must never route messages itself — the
// provider's analyses power the whole grid, and provider errors
// surface per grid point like in-engine analysis failures.
func TestAnalysisProviderBypassesEngineAnalyze(t *testing.T) {
	calls := 0
	f7 := workload.Fig7(workload.Fig7Options{})
	cases := []Case{{
		Name:     "fig7",
		Program:  f7.Program,
		Topology: countingTopology{Topology: f7.Topology, calls: &calls},
	}}
	pre, err := analyze(Case{Name: "fig7", Program: f7.Program, Topology: f7.Topology}, 0)
	if err != nil {
		t.Fatal(err)
	}
	calls = 0
	axes := Axes{
		Policies:   []core.PolicyKind{core.DynamicCompatible},
		Queues:     []int{0, 1},
		Capacities: []int{1},
		Lookaheads: []int{0},
		Seed:       1,
	}
	providerCalls := 0
	rep, err := Run(context.Background(), cases, axes, Options{
		Workers: 1,
		Analysis: func(caseIdx, lookahead int) (*core.Analysis, error) {
			providerCalls++
			if caseIdx != 0 || lookahead != 0 {
				t.Errorf("provider asked for (%d, %d), want (0, 0)", caseIdx, lookahead)
			}
			return pre, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("engine routed %d messages despite the provider", calls)
	}
	if providerCalls != 1 {
		t.Fatalf("provider called %d times, want once per (case, lookahead)", providerCalls)
	}
	for _, o := range rep.Outcomes {
		if o.Result != "completed" {
			t.Fatalf("provider-powered grid point failed: %+v", o)
		}
	}

	if _, err := Run(context.Background(), cases, axes, Options{
		Analysis: func(int, int) (*core.Analysis, error) {
			return nil, fmt.Errorf("boom")
		},
	}); err != nil {
		t.Fatalf("provider error must surface per grid point, not fail the run: %v", err)
	}
}

// fuzzCorpusCases rebuilds the differential oracle's checked-in fuzz
// corpus (seed, mutations, cyclic triples in go-fuzz v1 encoding) into
// sweep cases, so the equivalence suite below replays exactly the
// programs the fuzzer found interesting — every topology family,
// cyclic flow, and mutated (deadlocking) programs.
func fuzzCorpusCases(t *testing.T) []Case {
	t.Helper()
	dir := filepath.Join("..", "diff", "testdata", "fuzz", "FuzzOracle")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fuzz corpus: %v", err)
	}
	var cases []Case
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading corpus entry %s: %v", e.Name(), err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		// Layout: header, int64 seed, byte mutations, bool cyclic,
		// byte family, byte fault class (the class knob only matters
		// to the oracle's degraded checks, not to case construction).
		if len(lines) != 6 || lines[0] != "go test fuzz v1" {
			t.Fatalf("corpus entry %s: unexpected layout %q", e.Name(), lines)
		}
		var seed int64
		var mutations, family uint8
		if _, err := fmt.Sscanf(lines[1], "int64(%d)", &seed); err != nil {
			t.Fatalf("corpus entry %s: %v", e.Name(), err)
		}
		if _, err := fmt.Sscanf(lines[2], "byte(0x%x)", &mutations); err != nil {
			t.Fatalf("corpus entry %s: %v", e.Name(), err)
		}
		cyclic := strings.Contains(lines[3], "true")
		if _, err := fmt.Sscanf(lines[4], "byte(0x%x)", &family); err != nil {
			t.Fatalf("corpus entry %s: %v", e.Name(), err)
		}
		if family%5 != 0 {
			// Workload-family entries: the generated operator graphs
			// (attention, stencil, FFT, pipelined sort), mirroring the
			// oracle's family knob so the batched driver replays them.
			w := familyWorkload(seed, family%5)
			if w == nil {
				continue
			}
			cases = append(cases, Case{Name: "corpus/" + e.Name(), Program: w.Program, Topology: w.Topology})
			continue
		}
		sc, err := gen.Generate(seed, gen.Options{Mutations: int(mutations % 8), Cyclic: cyclic})
		if err != nil {
			continue // impossible knobs, same as the fuzz target's skip
		}
		cases = append(cases, Case{Name: "corpus/" + e.Name(), Program: sc.Program, Topology: sc.Topology})
	}
	if len(cases) == 0 {
		t.Fatal("fuzz corpus produced no cases")
	}
	return cases
}

// generatedCases derives n scenarios from consecutive seeds, mixing
// acyclic and cyclic flow and mutation counts, as broad-coverage input
// for the batched-vs-per-point equivalence suite.
func generatedCases(t *testing.T, n int) []Case {
	t.Helper()
	cases := make([]Case, 0, n)
	for seed := int64(1); len(cases) < n; seed++ {
		sc, err := gen.Generate(seed, gen.Options{Mutations: int(seed % 5), Cyclic: seed%2 == 0})
		if err != nil {
			continue
		}
		cases = append(cases, Case{
			Name:     fmt.Sprintf("gen-%d/%s", seed, sc.Name),
			Program:  sc.Program,
			Topology: sc.Topology,
		})
	}
	return cases
}

// TestBatchedMatchesPerPoint is the batched driver's acceptance
// criterion: for every grid — the oracle's fuzz corpus plus 200
// generated scenarios, spanning completed, deadlocked, rejected, and
// auto-budget points — the column-batched driver (retained core.Runner
// per span) and the per-point baseline (core.Execute against the
// machine's scratch pool) produce byte-identical reports, at 1 sweep
// worker and at 4.
func TestBatchedMatchesPerPoint(t *testing.T) {
	scenarios := 200
	if testing.Short() {
		scenarios = 40
	}
	cases := append(fuzzCorpusCases(t), generatedCases(t, scenarios)...)
	axes := Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS, core.StaticAssignment, core.DynamicCompatible},
		Queues:     []int{0, 2},
		Capacities: []int{1},
		Lookaheads: []int{0, 2},
		Seed:       11,
	}
	for _, workers := range []int{1, 4} {
		batched, err := Run(context.Background(), cases, axes, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d batched: %v", workers, err)
		}
		perPoint, err := Run(context.Background(), cases, axes, Options{Workers: workers, PerPoint: true})
		if err != nil {
			t.Fatalf("workers=%d per-point: %v", workers, err)
		}
		if !reflect.DeepEqual(batched, perPoint) {
			for i := range batched.Outcomes {
				if !reflect.DeepEqual(batched.Outcomes[i], perPoint.Outcomes[i]) {
					t.Fatalf("workers=%d: grid point %d diverges:\nbatched:   %+v\nper-point: %+v",
						workers, i, batched.Outcomes[i], perPoint.Outcomes[i])
				}
			}
			t.Fatalf("workers=%d: reports diverge outside the outcome list", workers)
		}
	}
}

// TestBatchedMatchesPerPointFaulted extends the acceptance criterion
// to degraded arrays: under a fault plan of every class — periodic
// cell slowdown, dead cell, throttled link, severed link — the
// batched driver and the per-point baseline must still be
// byte-identical at 1 sweep worker and at 4. Cell 0 and link 0 exist
// in every case, so the plans fit the whole grid.
func TestBatchedMatchesPerPointFaulted(t *testing.T) {
	scenarios := 60
	if testing.Short() {
		scenarios = 20
	}
	cases := append(fuzzCorpusCases(t), generatedCases(t, scenarios)...)
	axes := Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS, core.DynamicCompatible},
		Queues:     []int{0, 2},
		Capacities: []int{1},
		Lookaheads: []int{0},
		Seed:       11,
	}
	plans := []struct {
		name string
		spec string
	}{
		{"periodic", "cell:0:slow=2,link:0:slow=3@5"},
		{"terminal", "cell:0:dead@6,link:0:sever@9"},
	}
	for _, pl := range plans {
		plan, err := fault.ParseSpec(pl.spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 4} {
			opts := Options{Workers: workers, Faults: plan}
			batched, err := Run(context.Background(), cases, axes, opts)
			if err != nil {
				t.Fatalf("%s workers=%d batched: %v", pl.name, workers, err)
			}
			opts.PerPoint = true
			perPoint, err := Run(context.Background(), cases, axes, opts)
			if err != nil {
				t.Fatalf("%s workers=%d per-point: %v", pl.name, workers, err)
			}
			if !reflect.DeepEqual(batched, perPoint) {
				for i := range batched.Outcomes {
					if !reflect.DeepEqual(batched.Outcomes[i], perPoint.Outcomes[i]) {
						t.Fatalf("%s workers=%d: grid point %d diverges:\nbatched:   %+v\nper-point: %+v",
							pl.name, workers, i, batched.Outcomes[i], perPoint.Outcomes[i])
					}
				}
				t.Fatalf("%s workers=%d: reports diverge outside the outcome list", pl.name, workers)
			}
		}
	}
}

// TestRunOneObservesContext is the regression test for the sysvet
// ctxloop finding that grid points ran detached from the sweep's
// context: runOne built core.ExecOptions without Context, so a
// cancelled caller (a dropped /v1/sweep client) only stopped
// unstarted grid points while every in-flight simulation ran to
// completion. The context must now reach the machine itself.
func TestRunOneObservesContext(t *testing.T) {
	cases := testCases()
	a, aerr := analyze(cases[0], 0)
	if aerr != nil {
		t.Fatal(aerr)
	}
	cfg := Config{Case: 0, Policy: core.DynamicCompatible, Capacity: 1, Seed: 1}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := runOne(ctx, cases[0], cfg, a, aerr, nil, Options{})
	if o.Result != "error" || !strings.Contains(o.Err, "cancelled") {
		t.Fatalf("runOne under a cancelled ctx returned %q (err %q); want the cancellation to reach the machine", o.Result, o.Err)
	}

	if got := runOne(context.Background(), cases[0], cfg, a, aerr, nil, Options{}); got.Result != "completed" {
		t.Fatalf("runOne under a live ctx returned %q (err %q), want completed", got.Result, got.Err)
	}
}
