// Package sweep is the batch engine over the Analyze/Execute pipeline:
// it fans a grid of configurations — cases (program × topology),
// assignment policy, queues per link, queue capacity, lookahead budget
// — across a bounded worker pool and collects every run's outcome into
// a deterministic, order-stable report.
//
// The paper proves a point configuration safe (Theorem 1); the sweep
// engine is how that point is found: run the whole neighbourhood, see
// which configurations deadlock at run time, and read off the budgets
// that avoid it. Reports are byte-identical regardless of worker
// count: the grid is enumerated in a fixed order, every outcome is
// written to its own slot, and all randomness is seeded per
// configuration.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"systolic/internal/core"
	"systolic/internal/fault"
	"systolic/internal/linkmodel"
	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// ForEach runs fn(i) for every i in [0,n) across a bounded worker
// pool (workers ≤ 0 means runtime.GOMAXPROCS(0)). Callers write each
// result into its own slot, which keeps the output order-stable for
// any worker count — the same discipline Run uses for its grid, shared
// here so other batch engines (the differential oracle in
// internal/diff) fan out the same way. Cancelling ctx abandons
// unstarted indices and returns ctx.Err(); started calls always
// finish.
func ForEach(ctx context.Context, n, workers int, fn func(int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				fn(i)
			}
		}()
	}
	var cancelled error
feeding:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			cancelled = ctx.Err()
			break feeding
		case feed <- i:
		}
	}
	close(feed)
	wg.Wait()
	return cancelled
}

// Case is one named (program, topology) pair under sweep.
type Case struct {
	Name     string
	Program  *model.Program
	Topology topology.Topology
}

// Axes spans the configuration grid: the cartesian product of every
// axis is run for every case. Empty axes take the defaults of
// DefaultAxes.
type Axes struct {
	// Policies are the assignment disciplines to contrast (e.g. the
	// paper's compatible policy against the naive FCFS baseline).
	Policies []core.PolicyKind
	// Queues are queues-per-link budgets; 0 means "the analysis'
	// minimum for the policy" (Theorem 1's assumption (ii) met
	// exactly).
	Queues []int
	// Capacities are per-queue word capacities (≥ 1).
	Capacities []int
	// Lookaheads are §8 skip budgets; 0 means the strict §3 procedure,
	// n > 0 classifies and labels with a uniform budget of n skipped
	// writes per message per located pair.
	Lookaheads []int
	// LinkModels are link-timing specs (see linkmodel.ParseSpec); the
	// empty string is the unit-latency interconnect. Empty means just
	// unit timing — the link axis is opt-in, so default grids keep
	// their historical shape.
	LinkModels []string
	// Seed feeds randomized policies; one seed keeps the whole grid
	// deterministic.
	Seed int64
}

// DefaultAxes contrasts the naive FCFS baseline with the paper's two
// compatible policies over small queue and capacity budgets, strict
// and lookahead-2.
func DefaultAxes() Axes {
	return Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS, core.StaticAssignment, core.DynamicCompatible},
		Queues:     []int{0, 1, 2, 3},
		Capacities: []int{1, 2},
		Lookaheads: []int{0, 2},
		LinkModels: []string{""},
		Seed:       1,
	}
}

// WithDefaults resolves empty axes to the DefaultAxes values — the
// exact grid Run will enumerate. Callers that need the grid's shape
// before running it (the serving layer sizes quotas and pre-resolves
// per-lookahead analyses) use this to agree with the engine.
func (a Axes) WithDefaults() Axes {
	d := DefaultAxes()
	if len(a.Policies) == 0 {
		a.Policies = d.Policies
	}
	if len(a.Queues) == 0 {
		a.Queues = d.Queues
	}
	if len(a.Capacities) == 0 {
		a.Capacities = d.Capacities
	}
	if len(a.Lookaheads) == 0 {
		a.Lookaheads = d.Lookaheads
	}
	if len(a.LinkModels) == 0 {
		a.LinkModels = d.LinkModels
	}
	return a
}

// Validate reports the first configuration error in the axes, after
// default resolution — the same checks Run performs up front, exported
// so callers that stream results can refuse a bad grid before any
// response bytes are committed.
func (a Axes) Validate() error {
	a = a.WithDefaults()
	for _, q := range a.Queues {
		if q < 0 {
			return fmt.Errorf("sweep: negative queue budget %d", q)
		}
	}
	for _, cp := range a.Capacities {
		if cp < 1 {
			return fmt.Errorf("sweep: capacity %d < 1 (the latch regime needs a dedicated run, not a grid)", cp)
		}
	}
	if _, err := a.linkPlans(); err != nil {
		return err
	}
	return nil
}

// linkPlans parses the (already defaulted or explicit) link-model axis
// once: specs[i] lowers to plans[spec]. The empty spec maps to a nil
// plan — the unit-latency interconnect.
func (a Axes) linkPlans() (map[string]*linkmodel.Plan, error) {
	plans := make(map[string]*linkmodel.Plan, len(a.LinkModels))
	for _, spec := range a.LinkModels {
		if spec == "" {
			plans[spec] = nil
			continue
		}
		p, err := linkmodel.ParseSpec(spec)
		if err != nil {
			return nil, fmt.Errorf("sweep: link model %q: %v", spec, err)
		}
		plans[spec] = p
	}
	return plans, nil
}

// Size returns the number of grid points for numCases cases.
func (a Axes) Size(numCases int) int {
	a = a.WithDefaults()
	return numCases * len(a.Policies) * len(a.Queues) * len(a.Capacities) * len(a.Lookaheads) * len(a.LinkModels)
}

// Config is one grid point.
type Config struct {
	Case      int // index into the cases slice
	Policy    core.PolicyKind
	Queues    int // 0 = analysis minimum for the policy
	Capacity  int
	Lookahead int    // 0 = strict crossing-off
	LinkModel string // linkmodel spec; "" = unit-latency links
	Seed      int64
}

// Outcome is the result of one grid point.
type Outcome struct {
	Config
	CaseName string
	// DeadlockFree is the compile-time classification under the
	// config's lookahead budget. When false the run is skipped and
	// Result is "rejected".
	DeadlockFree bool
	// QueuesUsed resolves Queues (0 → the analysis minimum actually
	// simulated).
	QueuesUsed int
	// MinQueues is Theorem 1's queues-per-link requirement for the
	// config's policy (the dynamic-group minimum for compatible, the
	// competing-set minimum for static).
	MinQueues int
	// Result is "completed", "deadlocked", "timed-out", "rejected"
	// (analysis refused the program) or "error" (configuration
	// problem, see Err).
	Result string
	Cycles int
	// MaxQueueDepth is the largest queue occupancy observed.
	MaxQueueDepth int
	Err           string
}

// deadlocked reports whether this grid point stalled at run time.
func (o Outcome) deadlocked() bool { return o.Result == "deadlocked" }

// Options configures a sweep run.
type Options struct {
	// Workers bounds the pool; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
	// RunWorkers, when > 1, shards each grid point's simulation across
	// up to that many workers (machine.ExecOptions.Workers). Combined
	// with Limiter the product of sweep-level and run-level
	// concurrency stays globally bounded: each extra shard must win a
	// limiter slot (non-blocking), and a run that gets fewer — or none
	// — simply shards less. Reports are byte-identical either way: the
	// sharded runner produces the same bytes at every worker count.
	RunWorkers int
	// MaxCycles bounds each simulation (0 = the simulator's derived
	// default).
	MaxCycles int
	// Faults, when non-nil, degrades the array for every grid point
	// (see internal/fault): the whole sweep runs on the same faulted
	// array, so the grid shows which configurations ride out the
	// degradation. Plans that do not fit a case's cell/link counts
	// surface as per-point errors.
	Faults *fault.Plan
	// Limiter, when non-nil, additionally gates every grid point on a
	// process-wide concurrency budget shared with other engines (the
	// serving layer passes its -max-concurrency limiter here, so
	// concurrent sweeps and single runs draw from one pool).
	Limiter *Limiter
	// OnOutcome, when non-nil, is called once per grid point as it
	// completes, from the worker goroutine that ran it, after the
	// point's limiter slot has been released — a slow consumer (a
	// streaming HTTP client) therefore never pins the process-wide
	// simulation budget. Indices arrive in completion order, not
	// enumeration order; the outcome passed is exactly the value the
	// final report carries at that index, so a caller that re-sorts by
	// index reconstructs the report's order-stable outcome list.
	// The callback must be safe for concurrent use. Grid points
	// abandoned by cancellation are never reported.
	OnOutcome func(index int, o Outcome)
	// PerPoint disables column batching: every grid point runs
	// through core.Execute against the machine's shared scratch pool
	// instead of a per-column core.Runner with retained buffers. The
	// batched driver produces byte-identical reports (the equivalence
	// suite replays grids through both paths); PerPoint is the escape
	// hatch and the comparison baseline for that suite and for
	// benchmarks.
	PerPoint bool
	// Analysis, when non-nil, replaces the engine's own per-(case,
	// lookahead) analysis step: the engine calls it exactly once per
	// distinct (case index, lookahead budget) pair during warm-up and
	// shares the result across the whole grid. The serving layer uses
	// this to route sweep analyses through its content-addressed
	// compiled-machine cache, so repeated sweeps of one program skip
	// Analyze and machine compilation entirely. An error is reported
	// per grid point exactly like a failed in-engine analysis.
	Analysis func(caseIdx, lookahead int) (*core.Analysis, error)

	// linkPlans maps each link-model axis spec to its parsed plan ("" →
	// nil, the unit interconnect). Run fills it from Axes.LinkModels
	// before fanning out, so runOne never re-parses on the hot path.
	linkPlans map[string]*linkmodel.Plan
}

// Report is the order-stable result of a sweep: Outcomes[i] is grid
// point i in enumeration order (case-major, then lookahead, capacity,
// policy, queues).
type Report struct {
	Cases    []string
	Outcomes []Outcome
}

// Run sweeps the grid. The returned report is identical for any
// worker count. Cancelling ctx abandons unstarted grid points and
// returns ctx.Err().
func Run(ctx context.Context, cases []Case, axes Axes, opts Options) (*Report, error) {
	if len(cases) == 0 {
		return nil, fmt.Errorf("sweep: no cases")
	}
	for i, c := range cases {
		if c.Program == nil || c.Topology == nil {
			return nil, fmt.Errorf("sweep: case %d (%q) missing program or topology", i, c.Name)
		}
	}
	if err := axes.Validate(); err != nil {
		return nil, err
	}
	axes = axes.WithDefaults()

	// Enumerate the grid in a fixed order; the report inherits it.
	configs := make([]Config, 0, axes.Size(len(cases)))
	for ci := range cases {
		for _, la := range axes.Lookaheads {
			for _, lm := range axes.LinkModels {
				for _, cp := range axes.Capacities {
					for _, pol := range axes.Policies {
						for _, q := range axes.Queues {
							configs = append(configs, Config{
								Case: ci, Policy: pol, Queues: q,
								Capacity: cp, Lookahead: la, LinkModel: lm, Seed: axes.Seed,
							})
						}
					}
				}
			}
		}
	}
	// Validate parsed the axis already; re-parse here for the plan map
	// runOne consults (one parse per distinct spec, not per point).
	linkPlans, err := axes.linkPlans()
	if err != nil {
		return nil, err
	}
	opts.linkPlans = linkPlans

	cache := newAnalysisCache(cases, opts.Analysis)
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cache.warm(cfg.Case, cfg.Lookahead)
	}

	// Worker-affine column batching: the enumeration order above makes
	// every (case, lookahead) pair a contiguous block of
	// |capacities|×|policies|×|queues| grid points sharing one analysis
	// and one compiled machine. Handing each worker whole blocks (split
	// into sub-columns when the grid has fewer blocks than workers)
	// lets it replay its column through one retained core.Runner —
	// scratch arenas, ready sets, and result buffers survive from point
	// to point instead of round-tripping through the machine's
	// sync.Pool. Outcomes still land in enumeration-order slots, so the
	// report stays byte-identical for any worker count and either
	// driver (see Options.PerPoint).
	block := len(axes.LinkModels) * len(axes.Capacities) * len(axes.Policies) * len(axes.Queues)
	spans := splitColumns(len(configs), block, opts.Workers)
	outcomes := make([]Outcome, len(configs))
	if err := ForEach(ctx, len(spans), opts.Workers, func(si int) {
		runSpan(ctx, cases, configs, spans[si], cache, outcomes, opts)
	}); err != nil {
		return nil, err
	}
	// A cancellation that struck while a worker waited on the shared
	// limiter leaves its outcome unwritten; refuse to return a partial
	// report.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	names := make([]string, len(cases))
	for i, c := range cases {
		names[i] = c.Name
	}
	return &Report{Cases: names, Outcomes: outcomes}, nil
}

// span is one worker-affine unit of grid work: a contiguous index
// range [lo, hi) of configs whose points all share one (case,
// lookahead) analysis.
type span struct{ lo, hi int }

// splitColumns carves n grid points into worker-affine spans. Each
// (case, lookahead) column is `block` contiguous points; when the grid
// has at least as many columns as workers each column is one span, and
// when it has fewer, every column is split into equal-as-possible
// sub-columns so all workers stay busy. Splitting never crosses a
// column boundary — a span's points always share an analysis.
func splitColumns(n, block, workers int) []span {
	if block <= 0 {
		block = 1
	}
	cols := n / block
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	parts := 1
	if cols < workers {
		parts = (workers + cols - 1) / cols
		if parts > block {
			parts = block
		}
	}
	spans := make([]span, 0, cols*parts)
	for c := 0; c < cols; c++ {
		lo := c * block
		for p := 0; p < parts; p++ {
			s := lo + p*block/parts
			e := lo + (p+1)*block/parts
			if s < e {
				spans = append(spans, span{s, e})
			}
		}
	}
	return spans
}

// runSpan replays one span's grid points back-to-back on the worker
// that owns it, creating the span's core.Runner lazily on the first
// simulated point (rejected and errored points never need one). Each
// point still acquires its own limiter slot, and the slot is released
// before OnOutcome fires, so a slow consumer stalls this worker but
// never the process-wide simulation budget. A cancelled Acquire
// abandons the rest of the span; Run refuses to return the partial
// report. Release is called without defer — the loop holds at most
// one slot at a time, and a panicking run is fatal anyway.
//
//sysvet:hotpath
func runSpan(ctx context.Context, cases []Case, configs []Config, sp span, cache *analysisCache, outcomes []Outcome, opts Options) {
	var runner *core.Runner
	for i := sp.lo; i < sp.hi; i++ {
		cfg := configs[i]
		if err := opts.Limiter.Acquire(ctx); err != nil {
			return
		}
		a, aerr := cache.get(cfg.Case, cfg.Lookahead)
		if runner == nil && !opts.PerPoint && aerr == nil && a != nil && a.DeadlockFree {
			runner = core.NewRunner(a)
		}
		outcomes[i] = runOne(ctx, cases[cfg.Case], cfg, a, aerr, runner, opts)
		opts.Limiter.Release()
		if opts.OnOutcome != nil {
			opts.OnOutcome(i, outcomes[i])
		}
	}
}

// akey is the memoization key: the analysis (routes, labels, queue
// requirements) and its compiled machine depend only on the case and
// the lookahead budget — the policy, queue, and capacity axes all
// share one compile. (Capacity affects analysis only through the
// derived R2 budget, which the sweep's explicit lookahead axis always
// overrides.)
type akey struct{ caseIdx, lookahead int }

// analysisCache memoizes Analyze per (case, lookahead) and pre-warms
// each analysis' compiled machine, so the worker pool runs the entire
// grid as pure simulation: zero route computations, zero labelings,
// zero machine compiles per grid point. When a provider is installed
// (Options.Analysis), it replaces the in-engine analyze step and the
// cache merely memoizes its results.
type analysisCache struct {
	cases    []Case
	provider func(caseIdx, lookahead int) (*core.Analysis, error)
	analyses map[akey]*core.Analysis
	errs     map[akey]error
}

func newAnalysisCache(cases []Case, provider func(int, int) (*core.Analysis, error)) *analysisCache {
	return &analysisCache{
		cases:    cases,
		provider: provider,
		analyses: make(map[akey]*core.Analysis),
		errs:     make(map[akey]error),
	}
}

// warm computes and caches the analysis for one key, compiling its
// machine eagerly so concurrent workers never race to compile. It is
// not safe for concurrent use; Run warms the whole grid up front.
func (c *analysisCache) warm(caseIdx, lookahead int) {
	k := akey{caseIdx, lookahead}
	if _, seen := c.analyses[k]; seen {
		return
	}
	if _, seen := c.errs[k]; seen {
		return
	}
	var a *core.Analysis
	var err error
	if c.provider != nil {
		a, err = c.provider(caseIdx, lookahead)
	} else {
		a, err = analyze(c.cases[caseIdx], lookahead)
	}
	if err != nil {
		c.errs[k] = err
		return
	}
	if a.DeadlockFree {
		// Compile once here rather than lazily under the first
		// worker; a compile failure surfaces per grid point via
		// Execute exactly as before.
		_, _ = a.Machine()
	}
	c.analyses[k] = a
}

// get returns the cached analysis or error for a key.
func (c *analysisCache) get(caseIdx, lookahead int) (*core.Analysis, error) {
	k := akey{caseIdx, lookahead}
	return c.analyses[k], c.errs[k]
}

// analyze runs the compile-time pipeline for one (case, lookahead)
// key. The explicit budget override makes AnalyzeOptions.Capacity
// irrelevant, so capacities share one analysis.
func analyze(c Case, lookahead int) (*core.Analysis, error) {
	opts := core.AnalyzeOptions{}
	if lookahead > 0 {
		opts.Lookahead = true
		opts.BudgetOverride = func(model.MessageID) int { return lookahead }
	}
	return core.Analyze(c.Program, c.Topology, opts)
}

// runOne executes one grid point. A non-nil runner routes the run
// through the span's retained execution context; nil falls back to
// core.Execute (the PerPoint path, and points whose analysis failed).
// Only scalars are copied out of the Result, so the runner's aliased
// Result buffers are safe to reuse on the next point.
//
//sysvet:hotpath
func runOne(ctx context.Context, c Case, cfg Config, a *core.Analysis, aerr error, runner *core.Runner, opts Options) Outcome {
	// QueuesUsed starts as the requested budget so rejected/error rows
	// still report which configuration they were; simulated rows below
	// resolve 0 to the analysis minimum.
	o := Outcome{Config: cfg, CaseName: c.Name, QueuesUsed: cfg.Queues}
	if aerr != nil {
		o.Result = "error"
		o.Err = aerr.Error()
		return o
	}
	o.DeadlockFree = a.DeadlockFree
	if !a.DeadlockFree {
		o.Result = "rejected"
		return o
	}
	o.MinQueues = a.MinQueues(cfg.Policy)
	o.QueuesUsed = a.ResolveQueues(cfg.Policy, cfg.Queues)
	// Intra-run sharding against the grid point's limiter slot; see
	// Limiter.ShardBudget for the budget discipline.
	workers, releaseShards := opts.Limiter.ShardBudget(opts.RunWorkers)
	defer releaseShards()
	eopts := core.ExecOptions{
		Policy:        cfg.Policy,
		QueuesPerLink: o.QueuesUsed,
		Capacity:      cfg.Capacity,
		Seed:          cfg.Seed,
		MaxCycles:     opts.MaxCycles,
		Workers:       workers,
		Faults:        opts.Faults,
		LinkModel:     opts.linkPlans[cfg.LinkModel],
		// Context threads the sweep's cancellation into the run itself:
		// without it a cancelled caller (a dropped /v1/sweep client)
		// only stops unstarted grid points while every in-flight
		// simulation runs to completion, pinning its limiter slot.
		Context: ctx,
		// Force: under-provisioned grid points are the interesting
		// ones — let them run and deadlock rather than be refused.
		Force: true,
	}
	var res *sim.Result
	var err error
	if runner != nil {
		res, err = runner.Execute(eopts)
	} else {
		res, err = core.Execute(a, eopts)
	}
	if err != nil {
		o.Result = "error"
		o.Err = err.Error()
		return o
	}
	o.Result = res.Outcome()
	o.Cycles = res.Cycles
	for _, qs := range res.Stats.Queues {
		if qs.Stats.MaxOccupancy > o.MaxQueueDepth {
			o.MaxQueueDepth = qs.Stats.MaxOccupancy
		}
	}
	return o
}

// Deadlocked returns the outcomes that stalled at run time, in report
// order.
func (r *Report) Deadlocked() []Outcome {
	var out []Outcome
	for _, o := range r.Outcomes {
		if o.deadlocked() {
			out = append(out, o)
		}
	}
	return out
}

// SafeBudgets returns, per case name, the smallest queues-per-link
// budget that completed under every (capacity, lookahead, link-model)
// combination
// the case was simulated with for the given policy — the empirical
// Theorem 1 budget. A budget only counts when it was actually run in
// every combination (auto budgets can resolve differently per
// analysis), and never failed anywhere. Cases with no such budget are
// absent.
func (r *Report) SafeBudgets(policy core.PolicyKind) map[string]int {
	type combo struct {
		capacity, lookahead int
		linkModel           string
	}
	combos := make(map[string]map[combo]bool)              // all combos simulated per case
	completedAt := make(map[string]map[int]map[combo]bool) // combos completed per budget
	failed := make(map[string]map[int]bool)                // budgets that ever failed
	for _, o := range r.Outcomes {
		if o.Policy != policy || o.Result == "rejected" || o.Result == "error" {
			continue
		}
		cb := combo{o.Capacity, o.Lookahead, o.LinkModel}
		if combos[o.CaseName] == nil {
			combos[o.CaseName] = make(map[combo]bool)
		}
		combos[o.CaseName][cb] = true
		q := o.QueuesUsed
		if o.Result == "completed" {
			if completedAt[o.CaseName] == nil {
				completedAt[o.CaseName] = make(map[int]map[combo]bool)
			}
			if completedAt[o.CaseName][q] == nil {
				completedAt[o.CaseName][q] = make(map[combo]bool)
			}
			completedAt[o.CaseName][q][cb] = true
		} else {
			if failed[o.CaseName] == nil {
				failed[o.CaseName] = make(map[int]bool)
			}
			failed[o.CaseName][q] = true
		}
	}
	out := make(map[string]int)
	//sysvet:unordered -- each case writes only its own out[name] key
	for name, byBudget := range completedAt {
		best := -1
		//sysvet:unordered -- computes a minimum over budgets, which is order-independent
		for q, done := range byBudget {
			if failed[name][q] || len(done) < len(combos[name]) {
				continue
			}
			if best < 0 || q < best {
				best = q
			}
		}
		if best >= 0 {
			out[name] = best
		}
	}
	return out
}

// linkModelLabel renders a Config.LinkModel spec for the table; the
// empty spec is the unit-latency interconnect.
func linkModelLabel(spec string) string {
	if spec == "" {
		return "unit"
	}
	return spec
}

// Table renders the report as a fixed-width text table, one row per
// grid point in enumeration order, followed by a per-case summary of
// deadlock counts and safe budgets. The rendering is deterministic:
// equal reports produce byte-identical tables.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-18s %7s %9s %10s %-14s %12s %7s %9s\n",
		"case", "policy", "queues", "capacity", "lookahead", "link-model", "result", "cycles", "max-depth")
	for _, o := range r.Outcomes {
		queues := fmt.Sprintf("%d", o.QueuesUsed)
		if o.Queues == 0 {
			if o.Result == "rejected" || o.Result == "error" {
				queues = "auto" // never resolved: the run was not simulated
			} else {
				queues = fmt.Sprintf("auto(%d)", o.QueuesUsed)
			}
		}
		result := o.Result
		if o.Result == "error" {
			result = "error*"
		}
		fmt.Fprintf(&b, "%-12s %-18s %7s %9d %10d %-14s %12s %7d %9d\n",
			o.CaseName, o.Policy.String(), queues, o.Capacity, o.Lookahead, linkModelLabel(o.LinkModel), result, o.Cycles, o.MaxQueueDepth)
	}
	for _, o := range r.Outcomes {
		if o.Result == "error" {
			fmt.Fprintf(&b, "* %s %s queues=%d capacity=%d lookahead=%d link-model=%s: %s\n",
				o.CaseName, o.Policy.String(), o.QueuesUsed, o.Capacity, o.Lookahead, linkModelLabel(o.LinkModel), o.Err)
		}
	}
	b.WriteString("\n")
	counts := make(map[string][2]int) // case -> [deadlocked, total-run]
	order := append([]string(nil), r.Cases...)
	sort.Strings(order)
	for _, o := range r.Outcomes {
		if o.Result == "rejected" || o.Result == "error" {
			continue
		}
		c := counts[o.CaseName]
		if o.deadlocked() {
			c[0]++
		}
		c[1]++
		counts[o.CaseName] = c
	}
	summaryPolicies := []core.PolicyKind{core.DynamicCompatible, core.StaticAssignment}
	safe := make([]map[string]int, len(summaryPolicies))
	for i, pol := range summaryPolicies {
		safe[i] = r.SafeBudgets(pol)
	}
	for _, name := range order {
		c := counts[name]
		fmt.Fprintf(&b, "%s: %d/%d simulated configurations deadlocked\n", name, c[0], c[1])
		for i, pol := range summaryPolicies {
			if q, ok := safe[i][name]; ok {
				fmt.Fprintf(&b, "%s: %s completes every swept configuration at %d queue(s)/link\n", name, pol.String(), q)
			}
		}
	}
	return b.String()
}
