package sweep

import (
	"context"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"systolic/internal/core"
)

// TestLinkModelAxis sweeps the same grid under unit links and two
// retimed interconnects: the axis multiplies the grid, every outcome
// carries its spec, unit rows are byte-identical to a sweep without
// the axis, and retimed completions are never faster than unit ones.
func TestLinkModelAxis(t *testing.T) {
	cases := testCases()
	axes := Axes{
		Policies:   []core.PolicyKind{core.NaiveFCFS, core.DynamicCompatible},
		Queues:     []int{0, 2},
		Capacities: []int{1},
		Lookaheads: []int{0},
		LinkModels: []string{"", "fixed,delay=3", "congestion,delay=1,threshold=2,max=4"},
		Seed:       7,
	}
	if got, want := axes.Size(len(cases)), 2*2*2*1*1*3; got != want {
		t.Fatalf("Size = %d, want %d", got, want)
	}
	rep, err := Run(context.Background(), cases, axes, Options{Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != axes.Size(len(cases)) {
		t.Fatalf("%d outcomes, want %d", len(rep.Outcomes), axes.Size(len(cases)))
	}

	// Unit rows must match a sweep that never heard of the axis.
	plain := axes
	plain.LinkModels = nil
	plainRep, err := Run(context.Background(), cases, plain, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var unit []Outcome
	type point struct {
		caseIdx   int
		policy    core.PolicyKind
		queues    int
		capacity  int
		lookahead int
	}
	byPoint := make(map[point]map[string]Outcome)
	for _, o := range rep.Outcomes {
		if o.LinkModel == "" {
			u := o
			u.LinkModel = ""
			unit = append(unit, u)
		}
		k := point{o.Case, o.Policy, o.Queues, o.Capacity, o.Lookahead}
		if byPoint[k] == nil {
			byPoint[k] = make(map[string]Outcome)
		}
		byPoint[k][o.LinkModel] = o
	}
	if !reflect.DeepEqual(unit, plainRep.Outcomes) {
		t.Fatal("unit-link rows diverged from the axis-free sweep")
	}

	// Retimed interconnects only stretch schedules: a point that
	// completed under unit timing and still completes retimed takes at
	// least as many cycles.
	stretched := false
	for _, models := range byPoint {
		base, ok := models[""]
		if !ok || base.Result != "completed" {
			continue
		}
		for spec, o := range models {
			if spec == "" || o.Result != "completed" {
				continue
			}
			if o.Cycles < base.Cycles {
				t.Errorf("%s %s q=%d: %q completed in %d cycles, faster than unit's %d",
					o.CaseName, o.Policy, o.QueuesUsed, spec, o.Cycles, base.Cycles)
			}
			if o.Cycles > base.Cycles {
				stretched = true
			}
		}
	}
	if !stretched {
		t.Error("no retimed point took longer than unit timing; the axis is not reaching the engine")
	}

	// The rendered table names the models.
	if tbl := rep.Table(); !strings.Contains(tbl, "fixed,delay=3") || !strings.Contains(tbl, "link-model") {
		t.Error("table missing link-model column or spec")
	}
}

// TestLinkModelAxisValidate rejects malformed specs before any run.
func TestLinkModelAxisValidate(t *testing.T) {
	axes := Axes{LinkModels: []string{"fixed,delay=nope"}}
	err := axes.Validate()
	if err == nil || !strings.Contains(err.Error(), "link model") {
		t.Fatalf("Validate = %v, want link-model parse error", err)
	}
	if _, err := Run(context.Background(), testCases(), axes, Options{}); err == nil {
		t.Fatal("Run accepted a malformed link-model spec")
	}
}
