package sweep

import (
	"context"
	"runtime"
)

// Limiter is a counting semaphore that bounds how many simulations run
// at once across otherwise independent callers. The sweep engine's
// worker pool bounds one grid; a Limiter bounds a whole process — the
// serving layer hands every request handler and every sweep it spawns
// the same Limiter, so a burst of /v1/run traffic and a wide /v1/sweep
// grid together never exceed the operator's -max-concurrency budget.
//
// A nil *Limiter is valid and imposes no bound, so callers can thread
// an optional limiter without branching.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter admitting n concurrent holders; n <= 0
// means runtime.GOMAXPROCS(0).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning
// ctx.Err() in the latter case. A nil limiter acquires immediately.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot previously acquired. A nil limiter is a no-op.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	select {
	case <-l.sem:
	default:
		panic("sweep: Limiter.Release without Acquire")
	}
}

// TryAcquireN grabs up to n extra slots without blocking and reports
// how many it got (possibly zero). It is the intra-run parallelism
// hook: a caller already holding one Acquire slot asks for workers-1
// more, shards its run across 1 + granted workers, and the global
// simulation budget holds — run-level × sweep-level concurrency can
// never exceed the limiter's capacity, because every extra shard
// occupies a slot a whole run would otherwise use. Degrading to fewer
// (or zero) extra shards is invisible in results: the sharded runner
// is byte-identical at every worker count. A nil limiter grants all n.
func (l *Limiter) TryAcquireN(n int) int {
	if n <= 0 {
		return 0
	}
	if l == nil {
		return n
	}
	got := 0
	for ; got < n; got++ {
		select {
		case l.sem <- struct{}{}:
		default:
			return got
		}
	}
	return got
}

// ReleaseN frees n slots previously obtained via TryAcquireN. A nil
// limiter is a no-op.
func (l *Limiter) ReleaseN(n int) {
	if l == nil {
		return
	}
	for i := 0; i < n; i++ {
		l.Release()
	}
}

// ShardBudget resolves an intra-run worker request for a caller that
// already holds one Acquire slot: each extra shard beyond the first
// must win its own slot without blocking, so run-level × caller-level
// concurrency stays inside the limiter's capacity. It returns the
// worker count to simulate with (0 when requested ≤ 1, i.e.
// single-threaded) and a release function to call exactly once when
// the run finishes. The sweep engine and the serving layer share this
// so the budget discipline cannot drift between them; degrading to
// fewer shards is invisible in results — the sharded runner is
// byte-identical at every worker count.
func (l *Limiter) ShardBudget(requested int) (workers int, release func()) {
	if requested <= 1 {
		return 0, func() {}
	}
	extra := l.TryAcquireN(requested - 1)
	return 1 + extra, func() { l.ReleaseN(extra) }
}

// InUse reports how many slots are currently held (0 for nil).
func (l *Limiter) InUse() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// Cap reports the limiter's concurrency bound (0 for nil).
func (l *Limiter) Cap() int {
	if l == nil {
		return 0
	}
	return cap(l.sem)
}
