package sweep

import (
	"context"
	"runtime"
)

// Limiter is a counting semaphore that bounds how many simulations run
// at once across otherwise independent callers. The sweep engine's
// worker pool bounds one grid; a Limiter bounds a whole process — the
// serving layer hands every request handler and every sweep it spawns
// the same Limiter, so a burst of /v1/run traffic and a wide /v1/sweep
// grid together never exceed the operator's -max-concurrency budget.
//
// A nil *Limiter is valid and imposes no bound, so callers can thread
// an optional limiter without branching.
type Limiter struct {
	sem chan struct{}
}

// NewLimiter returns a limiter admitting n concurrent holders; n <= 0
// means runtime.GOMAXPROCS(0).
func NewLimiter(n int) *Limiter {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Limiter{sem: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free or ctx is done, returning
// ctx.Err() in the latter case. A nil limiter acquires immediately.
func (l *Limiter) Acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot previously acquired. A nil limiter is a no-op.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	select {
	case <-l.sem:
	default:
		panic("sweep: Limiter.Release without Acquire")
	}
}

// InUse reports how many slots are currently held (0 for nil).
func (l *Limiter) InUse() int {
	if l == nil {
		return 0
	}
	return len(l.sem)
}

// Cap reports the limiter's concurrency bound (0 for nil).
func (l *Limiter) Cap() int {
	if l == nil {
		return 0
	}
	return cap(l.sem)
}
