// Package trace renders programs, crossing-off schedules, labelings,
// and queue-assignment timelines as text diagrams in the style of the
// paper's figures. Everything here is presentation-only.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// ProgramTable renders a program as the paper's figures do: one column
// per cell, one operation per row (Fig 2/Fig 5 style).
func ProgramTable(p *model.Program) string {
	cols := make([][]string, p.NumCells())
	width := make([]int, p.NumCells())
	rows := 0
	for c := 0; c < p.NumCells(); c++ {
		cell := model.CellID(c)
		cols[c] = append(cols[c], p.Cell(cell).Name)
		for _, op := range p.Code(cell) {
			cols[c] = append(cols[c], p.OpString(op))
		}
		if len(cols[c]) > rows {
			rows = len(cols[c])
		}
		for _, s := range cols[c] {
			if len(s) > width[c] {
				width[c] = len(s)
			}
		}
	}
	var b strings.Builder
	for r := 0; r < rows; r++ {
		for c := 0; c < p.NumCells(); c++ {
			s := ""
			if r < len(cols[c]) {
				s = cols[c][r]
			}
			fmt.Fprintf(&b, "%-*s", width[c]+2, s)
		}
		b.WriteString("\n")
		if r == 0 {
			for c := 0; c < p.NumCells(); c++ {
				fmt.Fprintf(&b, "%-*s", width[c]+2, strings.Repeat("-", width[c]))
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// ScheduleTable renders crossing-off rounds in Fig 4's layout: step
// number, then each crossed pair as "W(X)/R(X)".
func ScheduleTable(p *model.Program, rounds []crossoff.Round) string {
	var b strings.Builder
	for _, r := range rounds {
		parts := make([]string, 0, len(r.Pairs))
		for _, pr := range r.Pairs {
			parts = append(parts, crossoff.FormatPair(p, pr))
		}
		fmt.Fprintf(&b, "Step %2d: %s\n", r.Step, strings.Join(parts, "   "))
	}
	return b.String()
}

// CrossOrder renders a sequential crossing-off order (used for the
// Fig 10 lookahead walkthrough, where skips matter).
func CrossOrder(p *model.Program, order []crossoff.Pair) string {
	var b strings.Builder
	for i, pr := range order {
		fmt.Fprintf(&b, "Pair %2d: %s\n", i+1, crossoff.FormatPair(p, pr))
	}
	return b.String()
}

// Labels renders a labeling, one message per line, sorted by label
// then name.
func Labels(p *model.Program, lab label.Labeling) string {
	type entry struct {
		name  string
		exact string
		dense int
	}
	if len(lab.ByMessage) != p.NumMessages() || len(lab.Dense) != p.NumMessages() {
		return "(no labeling)\n"
	}
	entries := make([]entry, 0, p.NumMessages())
	for _, m := range p.Messages() {
		entries = append(entries, entry{m.Name, lab.ByMessage[m.ID].String(), lab.Dense[m.ID]})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].dense != entries[j].dense {
			return entries[i].dense < entries[j].dense
		}
		return entries[i].name < entries[j].name
	})
	var b strings.Builder
	for _, e := range entries {
		fmt.Fprintf(&b, "%-8s label %-6s (dense %d)\n", e.name, e.exact, e.dense)
	}
	return b.String()
}

// Timeline renders bind/release events grouped by link, Fig 7
// lower-half style.
func Timeline(p *model.Program, t topology.Topology, events []sim.BindEvent) string {
	byLink := make(map[topology.LinkID][]sim.BindEvent)
	for _, e := range events {
		byLink[e.Link] = append(byLink[e.Link], e)
	}
	links := t.Links()
	var b strings.Builder
	for _, l := range links {
		evs := byLink[l.ID]
		if len(evs) == 0 {
			continue
		}
		fmt.Fprintf(&b, "link %s--%s:\n", cellName(p, l.A), cellName(p, l.B))
		for _, e := range evs {
			verb := "bound to"
			if !e.Bound {
				verb = "released by"
			}
			fmt.Fprintf(&b, "  cycle %4d: queue %d %s %s\n", e.Cycle, e.QueueIdx, verb, p.Message(e.Msg).Name)
		}
	}
	return b.String()
}

func cellName(p *model.Program, c model.CellID) string {
	if int(c) < p.NumCells() {
		return p.Cell(c).Name
	}
	return fmt.Sprintf("cell%d", c)
}

// QueueSequences renders, per message, the sequence of links its words
// traverse (Fig 3 style).
func QueueSequences(p *model.Program, t topology.Topology) (string, error) {
	routes, err := topology.Routes(p, t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, m := range p.Messages() {
		var hops []string
		for _, h := range routes[m.ID] {
			hops = append(hops, fmt.Sprintf("%s→%s", cellName(p, h.From), cellName(p, h.To)))
		}
		fmt.Fprintf(&b, "%-8s %s\n", m.Name, strings.Join(hops, ", "))
	}
	return b.String(), nil
}

// QueueStatsTable renders per-queue lifetime counters: peak occupancy,
// words passed, rebinds, and extension accesses.
func QueueStatsTable(p *model.Program, t topology.Topology, stats []sim.QueueStat) string {
	links := t.Links()
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-5s %-8s %-8s %-8s %-8s\n",
		"link", "queue", "max-occ", "words", "rebinds", "ext-acc")
	for _, qs := range stats {
		name := fmt.Sprintf("link%d", qs.Link)
		if int(qs.Link) < len(links) {
			l := links[qs.Link]
			name = fmt.Sprintf("%s--%s", cellName(p, l.A), cellName(p, l.B))
		}
		fmt.Fprintf(&b, "%-14s %-5d %-8d %-8d %-8d %-8d\n",
			name, qs.QueueIdx,
			qs.Stats.MaxOccupancy, qs.Stats.WordsPassed, qs.Stats.Rebinds, qs.Stats.ExtAccesses)
	}
	return b.String()
}

// RunSummary renders a simulation outcome in one block.
func RunSummary(p *model.Program, res *sim.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "outcome: %s after %d cycles\n", res.Outcome(), res.Cycles)
	if res.Deadlocked {
		b.WriteString(sim.DescribeBlocked(p, res.Blocked))
	}
	fmt.Fprintf(&b, "words moved: %d, grants: %d, releases: %d\n",
		res.Stats.WordsMoved, res.Stats.Grants, res.Stats.Releases)
	return b.String()
}
