package trace

import (
	"strings"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
	"systolic/internal/workload"
)

func TestProgramTableColumns(t *testing.T) {
	w := workload.Fig2()
	s := ProgramTable(w.Program)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// Header + rule + 11 op rows (C1 is the longest program).
	if len(lines) != 13 {
		t.Fatalf("table has %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[0], "Host") || !strings.Contains(lines[0], "C3") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(s, "W(XA)") || !strings.Contains(s, "R(YC)") {
		t.Fatalf("ops missing:\n%s", s)
	}
}

func TestScheduleTableFig4(t *testing.T) {
	w := workload.Fig2()
	rounds, _ := crossoff.Schedule(w.Program)
	s := ScheduleTable(w.Program, rounds)
	if !strings.Contains(s, "Step  1: W(XA)@Host/R(XA)@C1") {
		t.Fatalf("step 1 wrong:\n%s", s)
	}
	if !strings.Contains(s, "Step 12") {
		t.Fatalf("missing step 12:\n%s", s)
	}
}

func TestCrossOrderWithSkips(t *testing.T) {
	w := workload.Fig5P1()
	res := crossoff.Run(w.Program, crossoff.Options{Lookahead: true, Budget: crossoff.UniformBudget(2)})
	s := CrossOrder(w.Program, res.Order)
	if !strings.Contains(s, "skipping") {
		t.Fatalf("skips not rendered:\n%s", s)
	}
	if !strings.Contains(s, "Pair  6") {
		t.Fatalf("missing pairs:\n%s", s)
	}
}

func TestLabelsRendering(t *testing.T) {
	w := workload.Fig7(workload.Fig7Options{})
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Labels(w.Program, lab)
	// Sorted by label: A (1) first, B (3) last.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "A") || !strings.HasPrefix(lines[2], "B") {
		t.Fatalf("labels render:\n%s", s)
	}
}

func TestLabelsEmpty(t *testing.T) {
	w := workload.Fig2()
	if s := Labels(w.Program, label.Labeling{}); !strings.Contains(s, "no labeling") {
		t.Fatalf("empty labeling render %q", s)
	}
}

func TestTimelineAndRunSummary(t *testing.T) {
	w := workload.Fig7(workload.Fig7Options{})
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:       w.Topology,
		QueuesPerLink:  1,
		Capacity:       1,
		Policy:         assign.Compatible(),
		Labels:         lab.Dense,
		RecordTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := Timeline(w.Program, w.Topology, res.Timeline)
	if !strings.Contains(tl, "link C3--C4") || !strings.Contains(tl, "bound to C") {
		t.Fatalf("timeline:\n%s", tl)
	}
	if !strings.Contains(tl, "released by") {
		t.Fatalf("no release events:\n%s", tl)
	}
	sum := RunSummary(w.Program, res)
	if !strings.Contains(sum, "completed") || !strings.Contains(sum, "words moved") {
		t.Fatalf("summary:\n%s", sum)
	}
}

func TestRunSummaryDeadlock(t *testing.T) {
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bm := b.DeclareMessage("B", c2, c1, 1)
	b.Read(c1, bm).Write(c1, a)
	b.Read(c2, a).Write(c2, bm)
	p := b.MustBuild()
	res, err := sim.Run(p, sim.Config{
		Topology:      topology.Linear(2),
		QueuesPerLink: 2,
		Capacity:      2,
		Policy:        assign.Naive(assign.FCFS, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	s := RunSummary(p, res)
	if !strings.Contains(s, "deadlocked") || !strings.Contains(s, "stuck at") {
		t.Fatalf("deadlock summary:\n%s", s)
	}
}

func TestQueueStatsTable(t *testing.T) {
	w := workload.Fig2()
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: 2,
		Capacity:      2,
		Policy:        assign.Compatible(),
		Labels:        lab.Dense,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := QueueStatsTable(w.Program, w.Topology, res.Stats.Queues)
	if !strings.Contains(s, "Host--C1") || !strings.Contains(s, "max-occ") {
		t.Fatalf("stats table:\n%s", s)
	}
	// Six queues total (3 links × 2); the Host–C1 link moved XA (4
	// words) and YA (2 words).
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 7 {
		t.Fatalf("stats table has %d lines:\n%s", len(lines), s)
	}
}

func TestQueueSequences(t *testing.T) {
	w := workload.Fig3()
	s, err := QueueSequences(w.Program, w.Topology)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "C1→C2, C2→C3, C3→C4") {
		t.Fatalf("message A route missing:\n%s", s)
	}
}
