package doclint

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepositoryIsFullyDocumented is the enforcement test: every
// package in this repository must carry a package doc comment. CI
// also runs the same check via `go run ./tools/doclint`.
func TestRepositoryIsFullyDocumented(t *testing.T) {
	root := filepath.Join("..", "..")
	findings, err := Check(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestCheckFlagsUndocumentedPackage proves the lint actually bites.
func TestCheckFlagsUndocumentedPackage(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("good/good.go", "// Package good is documented.\npackage good\n")
	write("bad/bad.go", "package bad\n")
	write("bad/extra.go", "package bad\n\nvar X = 1\n")
	write("testonly/only_test.go", "package testonly\n")
	write("testdata/skipme/x.go", "package skipme\n")

	findings, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 finding, got %v", findings)
	}
	if findings[0].Package != "bad" || findings[0].Dir != "bad" {
		t.Fatalf("wrong finding: %+v", findings[0])
	}
}

// TestCheckAcceptsDocOnAnyFile: the doc comment may live on any one
// non-test file of the package.
func TestCheckAcceptsDocOnAnyFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "p"), 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		"a.go": "package p\n",
		"b.go": "// Package p is documented here, not in a.go.\npackage p\n",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, "p", name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("documented package flagged: %v", findings)
	}
}
