// Package doclint enforces the repository's documentation floor:
// every Go package must carry a package-level doc comment
// ("// Package xyz …" or "// Command xyz …" for mains). The CI step
// `go run ./tools/doclint` and the unit test in this package both run
// Check, so an undocumented package fails the build in two places.
package doclint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding names one undocumented package.
type Finding struct {
	// Dir is the package directory relative to the scanned root.
	Dir string
	// Package is the package name.
	Package string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: package %s has no package doc comment", f.Dir, f.Package)
}

// Check walks every Go package under root (skipping testdata and
// hidden directories) and returns one Finding per package whose
// non-test files all lack a package doc comment. Test-only packages
// (xxx_test or packages with only _test.go files) are exempt: their
// doc comment would never render anywhere.
func Check(root string) ([]Finding, error) {
	type pkgState struct {
		name       string
		documented bool
		nonTest    int
	}
	pkgs := make(map[string]*pkgState) // dir -> state
	fset := token.NewFileSet()

	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return fmt.Errorf("doclint: %s: %w", path, err)
		}
		dir, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		st := pkgs[dir]
		if st == nil {
			st = &pkgState{name: f.Name.Name}
			pkgs[dir] = st
		}
		st.nonTest++
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.documented = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var findings []Finding
	for dir, st := range pkgs {
		if st.nonTest > 0 && !st.documented {
			findings = append(findings, Finding{Dir: dir, Package: st.name})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].Dir < findings[j].Dir })
	return findings, nil
}

// Main is the shared entry point of the tools/doclint command: scan
// the working tree, print findings, and report whether the tree is
// clean.
func Main(root string) int {
	findings, err := Check(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "doclint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d undocumented package(s)\n", len(findings))
		return 1
	}
	return 0
}
