package assign

import (
	"strings"
	"testing"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// ctx builds a small Context: 3 messages over one link, labels 1, 1, 2.
func ctx(queues int, labels []int) *Context {
	return &Context{
		Competing: map[topology.LinkID][]model.MessageID{
			0: {0, 1, 2},
		},
		Labels:        labels,
		QueuesPerLink: queues,
	}
}

func TestCompatibleRequiresLabels(t *testing.T) {
	p := Compatible()
	if err := p.Setup(&Context{QueuesPerLink: 1}); err == nil {
		t.Fatal("compatible accepted nil labels")
	}
}

func TestCompatibleGroupTooLargeStalls(t *testing.T) {
	// Assumption (ii) violated: the size-2 label group never fits the
	// single queue, so the policy stalls (grants nothing, ever) and
	// the simulator will report the run as deadlocked.
	p := Compatible()
	if err := p.Setup(ctx(1, []int{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 5; cycle++ {
		if g := p.Grant(cycle, 0, 1, []model.MessageID{0, 1, 2}); len(g) != 0 {
			t.Fatalf("cycle %d: granted %v despite oversized group", cycle, g)
		}
	}
}

func TestCompatibleGrantsGroupsInLabelOrder(t *testing.T) {
	p := Compatible()
	if err := p.Setup(ctx(2, []int{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	// First cycle, 2 free: the label-1 group {0,1} exactly fits; the
	// label-2 message must wait even though a request is pending.
	grants := p.Grant(0, 0, 2, []model.MessageID{2})
	if len(grants) != 2 || grants[0] != 0 || grants[1] != 1 {
		t.Fatalf("grants=%v, want [0 1]", grants)
	}
	// No free queues: nothing.
	if g := p.Grant(1, 0, 0, nil); len(g) != 0 {
		t.Fatalf("granted %v with no free queues", g)
	}
	// One frees up: label-2 message goes.
	grants = p.Grant(2, 0, 1, nil)
	if len(grants) != 1 || grants[0] != 2 {
		t.Fatalf("grants=%v, want [2]", grants)
	}
	// Exhausted.
	if g := p.Grant(3, 0, 2, nil); len(g) != 0 {
		t.Fatalf("granted %v after exhaustion", g)
	}
}

func TestCompatibleSimultaneousRuleBlocksPartialGroup(t *testing.T) {
	p := Compatible()
	if err := p.Setup(ctx(2, []int{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	// Only 1 free: the size-2 group must NOT be split.
	if g := p.Grant(0, 0, 1, nil); len(g) != 0 {
		t.Fatalf("simultaneous rule violated: %v", g)
	}
}

func TestCompatibleMultipleGroupsAtOnce(t *testing.T) {
	p := Compatible()
	if err := p.Setup(ctx(3, []int{1, 1, 2})); err != nil {
		t.Fatal(err)
	}
	// 3 free: both groups fit in one cycle.
	g := p.Grant(0, 0, 3, nil)
	if len(g) != 3 {
		t.Fatalf("grants=%v, want all three", g)
	}
}

func TestStaticRejectsOverCommit(t *testing.T) {
	p := Static()
	err := p.Setup(ctx(2, nil))
	if err == nil || !strings.Contains(err.Error(), "static") {
		t.Fatalf("Setup = %v", err)
	}
}

func TestStaticGrantsEverythingOnce(t *testing.T) {
	p := Static()
	if err := p.Setup(ctx(3, nil)); err != nil {
		t.Fatal(err)
	}
	g := p.Grant(0, 0, 3, nil)
	if len(g) != 3 {
		t.Fatalf("grants=%v", g)
	}
	if g2 := p.Grant(1, 0, 3, nil); len(g2) != 0 {
		t.Fatalf("static granted twice: %v", g2)
	}
}

func TestNaiveFCFSOrder(t *testing.T) {
	p := Naive(FCFS, 0)
	if err := p.Setup(&Context{}); err != nil {
		t.Fatal(err)
	}
	g := p.Grant(0, 0, 2, []model.MessageID{5, 3, 9})
	if len(g) != 2 || g[0] != 5 || g[1] != 3 {
		t.Fatalf("FCFS grants=%v", g)
	}
}

func TestNaiveLIFOOrder(t *testing.T) {
	p := Naive(LIFO, 0)
	if err := p.Setup(&Context{}); err != nil {
		t.Fatal(err)
	}
	g := p.Grant(0, 0, 1, []model.MessageID{5, 3, 9})
	if len(g) != 1 || g[0] != 9 {
		t.Fatalf("LIFO grants=%v", g)
	}
}

func TestNaiveLabelDescending(t *testing.T) {
	p := Naive(LabelDescending, 0)
	if err := p.Setup(&Context{Labels: []int{1, 3, 2}}); err != nil {
		t.Fatal(err)
	}
	g := p.Grant(0, 0, 3, []model.MessageID{0, 1, 2})
	if g[0] != 1 || g[1] != 2 || g[2] != 0 {
		t.Fatalf("label-desc grants=%v", g)
	}
}

func TestNaiveLabelDescendingNeedsLabels(t *testing.T) {
	p := Naive(LabelDescending, 0)
	if err := p.Setup(&Context{}); err == nil {
		t.Fatal("label-desc accepted nil labels")
	}
}

func TestNaiveRandomDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []model.MessageID {
		p := Naive(Random, seed)
		if err := p.Setup(&Context{}); err != nil {
			t.Fatal(err)
		}
		return p.Grant(0, 0, 3, []model.MessageID{0, 1, 2, 3, 4})
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different grant order")
		}
	}
}

func TestNaiveEmptyPending(t *testing.T) {
	p := Naive(FCFS, 0)
	if err := p.Setup(&Context{}); err != nil {
		t.Fatal(err)
	}
	if g := p.Grant(0, 0, 3, nil); len(g) != 0 {
		t.Fatalf("granted %v from empty pending", g)
	}
	if g := p.Grant(0, 0, 0, []model.MessageID{1}); len(g) != 0 {
		t.Fatalf("granted %v with zero free", g)
	}
}

func TestArbiterStrings(t *testing.T) {
	for arb, want := range map[Arbiter]string{
		FCFS: "fcfs", LIFO: "lifo", Random: "random", LabelDescending: "label-desc",
	} {
		if arb.String() != want {
			t.Errorf("%v", arb)
		}
	}
	if Naive(FCFS, 0).Name() != "naive-fcfs" {
		t.Error("naive name wrong")
	}
	if Compatible().Name() != "compatible" || Static().Name() != "static" {
		t.Error("policy names wrong")
	}
}
