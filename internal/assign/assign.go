// Package assign implements queue-assignment policies (§5 step 2, §7).
//
// During execution every message must be bound to one queue on every
// link it crosses. The binding discipline decides whether queue-induced
// deadlock can occur:
//
//   - Static (§7.1): every competing message gets its own queue before
//     execution; trivially compatible with any consistent labeling.
//   - Dynamic compatible (§7.2): queues are granted to competing
//     messages strictly in label order (*ordered assignment*), and an
//     equal-label group is granted distinct queues all at once
//     (*simultaneous assignment*). Grants may happen before a message's
//     header arrives — the paper's reservation remark.
//   - Naive baselines (the discipline the paper's Figs 7–9 warn
//     about): grant free queues to whoever asked, ordered FCFS, LIFO,
//     seeded-random, or adversarially by descending label.
package assign

import (
	"fmt"
	"math/rand"
	"sort"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// Context carries the compile-time information policies may use.
// The compiled-machine runtime (internal/machine) shares one Context's
// maps and slices across unlimited runs, so policies must treat every
// field as read-only.
type Context struct {
	Program *model.Program
	// Routes is indexed by message id.
	Routes [][]topology.Hop
	// Competing maps each link to the messages crossing it (any
	// direction; the pool of queues on a link is shared and a queue's
	// direction is set when bound, §2.3).
	Competing map[topology.LinkID][]model.MessageID
	// NumPools is the number of queue pools (dense ids [0,NumPools)).
	// 0 means unknown; policies derive a bound from Competing's keys.
	NumPools int
	// CompetingByPool, when non-nil, is Competing as a dense
	// pool-indexed slice, precompiled by the machine layer. Shared
	// and read-only.
	CompetingByPool [][]model.MessageID
	// LabelOrder, when non-nil, is each pool's competing set
	// pre-sorted by (label, message id) — the grant order of the
	// compatible policy, precompiled once so per-run Setup stops
	// re-sorting. Shared and read-only.
	LabelOrder [][]model.MessageID
	// Labels are dense 1-based labels per message; nil when the
	// driving pipeline skipped labeling (naive baselines tolerate
	// that, Compatible does not).
	Labels []int
	// QueuesPerLink is the fixed number of queues on every link.
	QueuesPerLink int
}

// poolCount resolves the number of dense pool ids: NumPools when set,
// otherwise one past the largest Competing key.
func (c *Context) poolCount() int {
	n := c.NumPools
	for link := range c.Competing {
		if int(link)+1 > n {
			n = int(link) + 1
		}
	}
	return n
}

// Policy decides which competing messages are bound to free queues.
//
// The scheduler invokes Grant for a pool only on cycles where the
// pool's observable state — the free-queue count or the pending list —
// has changed since the previous invocation (plus once at cycle 0).
// A Grant call whose inputs match its previous call is guaranteed to
// be elided, so implementations must be pure functions of (free,
// pending, own grant history): no time-based behavior, and no side
// effects (RNG draws included) on calls that grant nothing because
// free == 0 or pending is empty.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Setup validates the context and precomputes per-link state. It
	// must be called exactly once per run before any Grant, and must
	// not mutate or retain-for-writing anything reachable from ctx.
	// Callers that reuse one policy instance across runs (the batch
	// runner replays a grid column through retained instances) call
	// Setup again at the start of each run; implementations must reset
	// every piece of per-run state there, so that a reused instance is
	// indistinguishable from a fresh one. Retaining scratch capacity
	// across runs is encouraged.
	Setup(ctx *Context) error
	// Grant returns the messages to bind to free queues on link now.
	// free is the number of unbound queues; pending lists messages
	// with outstanding requests in arrival order. Grant must return
	// at most free messages, each either pending or (for reserving
	// policies) competing on the link and never granted before.
	Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID
}

// Compatible returns the paper's dynamic compatible policy (§7.2):
// per link, messages sorted by label; grants advance group by group in
// label order, a group only when enough queues are simultaneously
// free. Setup fails without labels. When an equal-label group is
// larger than a link's queue pool (assumption (ii) of Theorem 1
// violated), the policy simply never grants that group and the run
// stalls into a detected deadlock — use verify.CheckPreconditions (or
// core.Execute without Force) to refuse such configurations up front.
func Compatible() Policy { return &compatible{} }

type compatible struct {
	order [][]model.MessageID // label-sorted competing, per pool; shared read-only
	next  []int               // first ungranted index, per pool
	label []int
	// scratch backs Grant's return value; the runner consumes each
	// grant list before the next Grant call, so one buffer serves the
	// whole run without allocating per cycle.
	scratch []model.MessageID
}

func (c *compatible) Name() string { return "compatible" }

func (c *compatible) Setup(ctx *Context) error {
	if ctx.Labels == nil {
		return fmt.Errorf("assign: compatible policy requires labels")
	}
	c.label = ctx.Labels
	if ctx.LabelOrder != nil {
		// Precompiled by the machine layer: identical to the sort
		// below, shared across runs, never mutated.
		c.order = ctx.LabelOrder
	} else {
		c.order = make([][]model.MessageID, ctx.poolCount())
		for link, msgs := range ctx.Competing {
			sorted := append([]model.MessageID(nil), msgs...)
			sort.Slice(sorted, func(i, j int) bool {
				li, lj := ctx.Labels[sorted[i]], ctx.Labels[sorted[j]]
				if li != lj {
					return li < lj
				}
				return sorted[i] < sorted[j]
			})
			c.order[link] = sorted
		}
	}
	c.next = resetInts(c.next, len(c.order))
	return nil
}

// resetInts returns a zeroed int slice of length n, reusing s's
// backing array when it is large enough — the re-Setup path of a
// reused policy instance.
func resetInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// resetBools is resetInts for []bool.
func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

func (c *compatible) Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID {
	if int(link) >= len(c.order) {
		return nil
	}
	order := c.order[link]
	i := c.next[link]
	grants := c.scratch[:0]
	for i < len(order) {
		// Identify the equal-label group starting at i.
		j := i
		for j < len(order) && c.label[order[j]] == c.label[order[i]] {
			j++
		}
		if j-i > free {
			break // the whole group must be granted simultaneously
		}
		grants = append(grants, order[i:j]...)
		free -= j - i
		i = j
	}
	c.next[link] = i
	c.scratch = grants
	if len(grants) == 0 {
		return nil
	}
	return grants
}

// Static returns the §7.1 static policy: every competing message gets
// its own queue at cycle 0 and keeps it for the whole run. Setup fails
// if any link has more competing messages than queues.
func Static() Policy { return &static{} }

type static struct {
	competing [][]model.MessageID // per pool; shared read-only
	sorted    [][]model.MessageID // ascending copies of competing, cached across re-Setups
	done      []bool
}

func (s *static) Name() string { return "static" }

func (s *static) Setup(ctx *Context) error {
	byPool := ctx.CompetingByPool
	if byPool == nil {
		byPool = make([][]model.MessageID, ctx.poolCount())
		for link, msgs := range ctx.Competing {
			byPool[link] = msgs
		}
	}
	// Validate in ascending pool order so the reported link is
	// deterministic.
	for link, msgs := range byPool {
		if len(msgs) > ctx.QueuesPerLink {
			return fmt.Errorf("assign: static policy: link %d has %d competing messages but %d queues",
				link, len(msgs), ctx.QueuesPerLink)
		}
	}
	// The sorted grant lists depend only on the competing sets, which
	// are shared read-only state of the compiled machine — a re-Setup
	// on the same sets (the batch runner's reuse path) keeps the cache.
	if !samePools(s.competing, byPool) {
		s.sorted = make([][]model.MessageID, len(byPool))
		for link, msgs := range byPool {
			sorted := append([]model.MessageID(nil), msgs...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			s.sorted[link] = sorted
		}
	}
	s.competing = byPool
	s.done = resetBools(s.done, len(byPool))
	return nil
}

// samePools reports whether two per-pool competing sets share the same
// backing arrays — the cheap identity check behind the static policy's
// sorted-grant cache (identical backing implies identical contents,
// since both sides are read-only).
func samePools(a, b [][]model.MessageID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		if len(a[i]) > 0 && &a[i][0] != &b[i][0] {
			return false
		}
	}
	return true
}

func (s *static) Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID {
	if int(link) >= len(s.done) || s.done[link] {
		return nil
	}
	s.done[link] = true
	return s.sorted[link]
}

// Arbiter selects the order in which a naive policy serves pending
// requests.
type Arbiter int

const (
	// FCFS serves requests in arrival order.
	FCFS Arbiter = iota
	// LIFO serves the most recent request first.
	LIFO
	// Random serves pending requests in seeded-random order.
	Random
	// LabelDescending serves the pending request with the largest
	// label first — the adversary that reliably exhibits the
	// queue-induced deadlocks of Figs 7–9. Requires labels.
	LabelDescending
)

// String names the arbiter.
func (a Arbiter) String() string {
	switch a {
	case FCFS:
		return "fcfs"
	case LIFO:
		return "lifo"
	case Random:
		return "random"
	case LabelDescending:
		return "label-desc"
	}
	return fmt.Sprintf("arbiter(%d)", int(a))
}

// Naive returns a label-oblivious policy that binds free queues to
// pending requesters in the arbiter's order. It never reserves: a
// message is only granted after it asks. seed matters only for Random.
func Naive(arb Arbiter, seed int64) Policy {
	return &naive{arb: arb, seed: seed}
}

type naive struct {
	arb     Arbiter
	seed    int64
	rng     *rand.Rand
	labels  []int
	scratch []model.MessageID // backs Grant's return; see compatible.scratch
}

func (n *naive) Name() string { return "naive-" + n.arb.String() }

func (n *naive) Setup(ctx *Context) error {
	if n.arb == Random {
		// Only the random arbiter draws; the others skip the RNG
		// allocation entirely. A re-Setup re-seeds the retained RNG,
		// so a reused instance draws the same sequence a fresh one
		// would.
		if n.rng == nil {
			n.rng = rand.New(rand.NewSource(n.seed))
		} else {
			n.rng.Seed(n.seed)
		}
	}
	n.labels = ctx.Labels
	if n.arb == LabelDescending && n.labels == nil {
		return fmt.Errorf("assign: %s arbiter requires labels", n.arb)
	}
	return nil
}

func (n *naive) Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID {
	if free <= 0 || len(pending) == 0 {
		return nil
	}
	order := append(n.scratch[:0], pending...)
	n.scratch = order
	switch n.arb {
	case FCFS:
		// arrival order as given
	case LIFO:
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	case Random:
		n.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	case LabelDescending:
		sort.SliceStable(order, func(i, j int) bool { return n.labels[order[i]] > n.labels[order[j]] })
	}
	if len(order) > free {
		order = order[:free]
	}
	return order
}
