package machine

// Batched execution: a caller-owned execution context that runs many
// configurations back-to-back against one compiled machine without
// round-tripping scratch state through the machine's sync.Pool per
// run. Grid sweeps are the motivating caller — a (policy × queues ×
// capacity) column re-runs the same machine dozens of times, and
// under GC pressure the pool's eviction turns "pooled" into "fresh
// allocation per grid point". An Exec pins one exec's arenas, queue
// tables, ready sets, and result buffers for the column's lifetime,
// so the steady-state cost of a grid point is the simulation itself.

// Exec is a dedicated, reusable execution context for one Machine.
// Create it with Machine.NewExec; call Run once per configuration.
//
// The contract differs from Machine.Run in exactly one way: the
// returned Result (including Received, Stats.BlockedCycles,
// Stats.Queues, and Blocked) aliases buffers owned by the Exec and is
// valid only until the next Run call on the same Exec. Callers that
// need a Result to outlive the next run must deep-copy what they
// keep. In exchange, a steady-state Run performs no per-run
// allocations beyond what the policy itself allocates.
//
// An Exec is NOT safe for concurrent use — it is one worker's
// private machine. Concurrent callers use Machine.Run, which is.
// Byte-for-byte, Exec.Run produces the same Result as Machine.Run
// for the same options: both drive the identical prepare/runExec
// path, and the sweep equivalence suite replays grids through both
// to enforce it.
type Exec struct {
	m   *Machine
	e   *exec
	out Result
}

// NewExec returns a fresh batch execution context for m. The context
// retains its scratch (sized on first use, grown as configurations
// demand) until it becomes unreachable; for one-off runs prefer
// Machine.Run, whose pooled scratch is shared process-wide.
func (m *Machine) NewExec() *Exec {
	return &Exec{m: m, e: &exec{reuse: true}}
}

// Machine returns the compiled machine this context runs.
func (ex *Exec) Machine() *Machine { return ex.m }

// Run simulates one configuration, exactly as Machine.Run would —
// same validation, same errors, same Result bytes — but against the
// Exec's retained state. See the type comment for the Result
// lifetime contract.
func (ex *Exec) Run(opts ExecOptions) (*Result, error) {
	maxCycles, tbl, flavor, flt, lm, err := ex.m.prepare(&opts)
	if err != nil {
		return nil, err
	}
	if err := ex.m.runExec(ex.e, &opts, tbl, flavor, maxCycles, flt, lm); err != nil {
		return nil, err
	}
	ex.out = ex.e.result()
	return &ex.out, nil
}
