package machine

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// chain builds a two-cell program moving words on one message.
func chain(t testing.TB, words int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	m := b.DeclareMessage("M", c1, c2, words)
	b.WriteN(c1, m, words)
	b.ReadN(c2, m, words)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustCompile(t testing.TB, p *model.Program, topo topology.Topology) *Machine {
	t.Helper()
	m, err := Compile(p, topo, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func fcfs(queues, capacity int) ExecOptions {
	return ExecOptions{Policy: assign.Naive(assign.FCFS, 0), QueuesPerLink: queues, Capacity: capacity}
}

func TestCompileValidation(t *testing.T) {
	p := chain(t, 2)
	topo := topology.Linear(2)
	cases := []struct {
		name  string
		check func() error
	}{
		{"nil program", func() error { _, err := Compile(nil, topo, nil, nil); return err }},
		{"nil topology", func() error { _, err := Compile(p, nil, nil, nil); return err }},
		{"routes mismatch", func() error {
			_, err := Compile(p, topo, make([][]topology.Hop, 5), nil)
			return err
		}},
		{"labels mismatch", func() error { _, err := Compile(p, topo, nil, []int{1, 2, 3}); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.check()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
		})
	}
}

func TestRunValidation(t *testing.T) {
	m := mustCompile(t, chain(t, 2), topology.Linear(2))
	bad := []ExecOptions{
		{QueuesPerLink: 1, Capacity: 1}, // nil policy
		fcfs(0, 1),                      // zero queues
		fcfs(1, -1),                     // negative capacity
		{Policy: assign.Naive(assign.FCFS, 0), QueuesPerLink: 1, ExtCapacity: -1},             // negative ext
		{Policy: assign.Naive(assign.FCFS, 0), QueuesPerLink: 1, ExtPenalty: -1},              // negative penalty
		{Policy: assign.Naive(assign.FCFS, 0), QueuesPerLink: 1, Capacity: 0, ExtCapacity: 1}, // ext over latch
	}
	for i, opts := range bad {
		if _, err := m.Run(opts); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

// TestMachineReuseAcrossRuns is the compile-once contract: one
// machine, many runs, each fully independent.
func TestMachineReuseAcrossRuns(t *testing.T) {
	m := mustCompile(t, chain(t, 5), topology.Linear(2))
	var first *Result
	for i := 0; i < 10; i++ {
		res, err := m.Run(fcfs(1, 2))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("run %d: %s", i, res.Outcome())
		}
		if first == nil {
			first = res
			continue
		}
		if res.Cycles != first.Cycles || len(res.Received[0]) != len(first.Received[0]) {
			t.Fatalf("run %d diverged from run 0", i)
		}
	}
	// Results must not alias each other's buffers across runs.
	a, err := m.Run(fcfs(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(fcfs(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	a.Received[0][0] = -1
	if b.Received[0][0] == -1 {
		t.Fatal("results share received-word buffers")
	}
}

// TestMachineConcurrentRuns drives one compiled machine from many
// goroutines — the sweep engine's usage — under differing options,
// with Reset firing concurrently (documented as safe: in-flight runs
// keep the pool they started with).
func TestMachineConcurrentRuns(t *testing.T) {
	m := mustCompile(t, chain(t, 8), topology.Linear(2))
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, err := m.Run(fcfs(1+g%2, 1+i%3))
				if err != nil {
					errs <- err
					return
				}
				if !res.Completed {
					errs <- errors.New(res.Outcome())
					return
				}
				if g == 0 {
					m.Reset()
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestMachineResetKeepsWorking(t *testing.T) {
	m := mustCompile(t, chain(t, 3), topology.Linear(2))
	if _, err := m.Run(fcfs(1, 1)); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	res, err := m.Run(fcfs(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("after Reset: %s", res.Outcome())
	}
}

// TestMaxCyclesForOverflowGuard: pathological words × hops must yield
// a typed ConfigError, not a silently wrapped (tiny or negative)
// cycle bound.
func TestMaxCyclesForOverflowGuard(t *testing.T) {
	if n, err := maxCyclesFor(100, 10, 1); err != nil || n != 16*101*11+4096 {
		t.Fatalf("maxCyclesFor(100,10,1) = %d, %v", n, err)
	}
	if n, err := maxCyclesFor(0, 0, 1); err != nil || n != 1<<14 {
		t.Fatalf("floor: maxCyclesFor(0,0,1) = %d, %v", n, err)
	}
	// A link-latency factor scales the work term before the additive
	// slack, and a factor below 1 is treated as unit.
	if n, err := maxCyclesFor(100, 10, 4); err != nil || n != 16*101*11*4+4096 {
		t.Fatalf("maxCyclesFor(100,10,4) = %d, %v", n, err)
	}
	if n, err := maxCyclesFor(100, 10, 0); err != nil || n != 16*101*11+4096 {
		t.Fatalf("maxCyclesFor(100,10,0) = %d, %v", n, err)
	}
	for _, tc := range [][3]int{
		{math.MaxInt / 16, 4, 1},
		{math.MaxInt, math.MaxInt, 1},
		{1 << 40, 1 << 40, 1},
		{-1, 3, 1},
		{math.MaxInt / 100, 4, 7}, // fits at factor 1, overflows at 7
	} {
		_, err := maxCyclesFor(tc[0], tc[1], tc[2])
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("maxCyclesFor(%d,%d,%d) err = %v, want *ConfigError", tc[0], tc[1], tc[2], err)
		}
		if ce.Field != "MaxCycles" {
			t.Fatalf("overflow reported on field %q, want MaxCycles", ce.Field)
		}
	}
}

func TestConfigErrorRendering(t *testing.T) {
	err := &ConfigError{Field: "QueuesPerLink", Reason: "0 < 1"}
	if !strings.Contains(err.Error(), "QueuesPerLink") {
		t.Fatalf("error %q does not name the field", err)
	}
}

func TestMachineAccessors(t *testing.T) {
	p := chain(t, 2)
	topo := topology.Linear(2)
	m := mustCompile(t, p, topo)
	if m.Program() != p {
		t.Fatal("Program accessor")
	}
	if m.Topology() != topo {
		t.Fatal("Topology accessor")
	}
	if len(m.Routes()) != p.NumMessages() {
		t.Fatal("Routes accessor")
	}
}
