package machine

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"systolic/internal/linkmodel"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// linearRelay builds a store-and-forward relay over a linear array of
// cells: each interior cell reads a word from its left neighbour and
// forwards it right, so every word crosses every link.
func linearRelay(t testing.TB, cells, words int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	ids := make([]model.CellID, cells)
	for i := range ids {
		ids[i] = b.AddCell(fmt.Sprintf("C%d", i))
	}
	msgs := make([]model.MessageID, cells-1)
	for i := range msgs {
		msgs[i] = b.DeclareMessage(fmt.Sprintf("M%d", i), ids[i], ids[i+1], words)
	}
	b.WriteN(ids[0], msgs[0], words)
	for i := 1; i+1 < cells; i++ {
		for w := 0; w < words; w++ {
			b.Read(ids[i], msgs[i-1])
			b.Write(ids[i], msgs[i])
		}
	}
	b.ReadN(ids[cells-1], msgs[len(msgs)-1], words)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMaxCyclesForLinkFactor pins the derived-bound formula
// 16·(words+1)·(hops+1)·L+4096: the link factor scales it exactly, the
// 2^14 floor applies after scaling, factors below 1 clamp to unit, and
// the overflow guard names the link slowdown when the factor is what
// pushed the product over.
func TestMaxCyclesForLinkFactor(t *testing.T) {
	cases := []struct {
		words, hops, factor, want int
	}{
		{10, 2, 1, 1 << 14},              // floor regime
		{10, 2, 4, 1 << 14},              // scaled, still under the floor
		{100, 10, 1, 16*101*11 + 4096},   // above the floor, unit links
		{100, 10, 4, 16*101*11*4 + 4096}, // latency-4: exactly ×4
		{100, 10, 0, 16*101*11 + 4096},   // factor < 1 clamps to unit
	}
	for _, tc := range cases {
		got, err := maxCyclesFor(tc.words, tc.hops, tc.factor)
		if err != nil {
			t.Errorf("maxCyclesFor(%d,%d,%d): %v", tc.words, tc.hops, tc.factor, err)
			continue
		}
		if got != tc.want {
			t.Errorf("maxCyclesFor(%d,%d,%d) = %d, want %d", tc.words, tc.hops, tc.factor, got, tc.want)
		}
	}
	// A factor that overflows the product is a typed ConfigError
	// blaming the link slowdown, not a wrapped-around bound.
	_, err := maxCyclesFor(math.MaxInt/8, 4, 1<<20)
	var ce *ConfigError
	if !errors.As(err, &ce) {
		t.Fatalf("overflowing factor: err = %v, want *ConfigError", err)
	}
	if !strings.Contains(ce.Reason, "link slowdown") {
		t.Errorf("overflow reason %q does not name the link slowdown", ce.Reason)
	}
}

// TestLinkLatencyDerivedBoundRegression is the satellite regression
// for the maxCyclesFor link-factor fix: a slow-link linear array that
// genuinely needs more cycles than the old unit-latency bound. The
// old derivation (no link factor) is simulated by pinning MaxCycles
// to its value — the run is then misreported as stuck, while the
// scaled derivation lets the same run complete.
//
// Note on magnitudes: the formula carries 16 cycles of slack per
// word·hop, so a latency-4 model alone can never outrun the old
// bound (a serialized run costs ~4 cycles per word·hop, a quarter of
// the slack). The misreport needs a latency larger than the slack —
// here a delay-264 credit-1 link against the 2^14 floor. The
// latency-4 linear array the issue names is covered below as the
// ×4-scaling case.
func TestLinkLatencyDerivedBoundRegression(t *testing.T) {
	m := mustCompile(t, chain(t, 64), topology.Linear(2))
	oldBound, err := maxCyclesFor(m.totalWords, m.totalHops, 1)
	if err != nil {
		t.Fatal(err)
	}
	if oldBound != 1<<14 {
		t.Fatalf("old bound = %d, want the 2^14 floor (fixture drifted)", oldBound)
	}

	// delay-264 credit-1: one word per 264 cycles, ~16900 total —
	// just past the old bound.
	const delay = 264
	opts := fcfs(1, 1)
	opts.LinkModel = linkmodel.FixedPlan(delay, 1)
	res, err := m.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("slow-link run under the scaled derived bound: %s at cycle %d", res.Outcome(), res.Cycles)
	}
	if res.Cycles <= oldBound {
		t.Fatalf("run finished at cycle %d, inside the old bound %d — fixture no longer exercises the regression", res.Cycles, oldBound)
	}
	newBound, err := maxCyclesFor(m.totalWords, m.totalHops, delay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > newBound {
		t.Fatalf("run needed %d cycles, beyond even the scaled bound %d", res.Cycles, newBound)
	}

	// The old derivation would have cut the run off at oldBound and
	// called it stuck.
	opts.MaxCycles = oldBound
	cut, err := m.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if cut.Completed {
		t.Fatalf("run pinned to the old bound %d completed in %d cycles — regression fixture is too fast", oldBound, cut.Cycles)
	}

	// The issue's latency-4 linear array: the derived bound scales by
	// exactly 4 and the retimed relay completes (later than unit).
	relay := mustCompile(t, linearRelay(t, 8, 128), topology.Linear(8))
	b1, err := maxCyclesFor(relay.totalWords, relay.totalHops, 1)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := maxCyclesFor(relay.totalWords, relay.totalHops, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want := (b1-4096)*4 + 4096; b4 != want {
		t.Fatalf("latency-4 bound = %d, want %d (×4 above the floor)", b4, want)
	}
	unit, err := relay.Run(fcfs(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	lat4opts := fcfs(1, 1)
	lat4opts.LinkModel = linkmodel.FixedPlan(4, 1)
	lat4, err := relay.Run(lat4opts)
	if err != nil {
		t.Fatal(err)
	}
	if !unit.Completed || !lat4.Completed {
		t.Fatalf("relay outcomes: unit %s, latency-4 %s", unit.Outcome(), lat4.Outcome())
	}
	if lat4.Cycles <= unit.Cycles {
		t.Fatalf("latency-4 relay did not stretch: unit %d cycles, latency-4 %d", unit.Cycles, lat4.Cycles)
	}
}
