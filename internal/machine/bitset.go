package machine

// Word-packed ready sets. The scheduler's per-cycle sets — dirty
// cells, armed pools, the transport/writer/moved/reqCheck message
// sets — used to be (index slice, bool slice) pairs: the slice gave
// iteration order (sorted at use), the flags gave O(1) membership.
// A bitset gives both at once: membership is one bit, and iterating
// set bits with TrailingZeros64 visits entries in ascending id order
// by construction, so the per-cycle slices.Sort calls and the O(n)
// sorted insertions disappear entirely. At 32×32-mesh scale a set
// over every message is 1–2 cache lines instead of a pointer-chased
// pair of slices.
//
// Concurrency contract: bits in one word are NOT independent memory
// locations, so a bitset is only ever mutated by the coordinator —
// at init, between phase barriers, and while merging shard sinks.
// Worker shards treat every bitset as read-only and defer their
// membership changes through their sink, exactly as they already
// defer every other shared-structure effect (see parallel.go). The
// byte-granular flag arrays that shards do write in place (issued,
// writeReady, the per-hop requested flags) stay []bool for exactly
// this reason.

import "math/bits"

// bitset is a set of small non-negative integers with a cached
// cardinality. The zero value is an empty set of capacity 0; sizeTo
// prepares it for a run. All methods are coordinator-only (see the
// package comment above).
type bitset struct {
	words []uint64
	count int
}

// sizeTo empties the set and sizes it for members in [0, n).
func (b *bitset) sizeTo(n int) {
	w := (n + 63) >> 6
	b.words = grow(b.words, w)
	clear(b.words)
	b.count = 0
}

// add inserts i.
//
//sysvet:hotpath
func (b *bitset) add(i int) {
	w, bit := i>>6, uint64(1)<<(i&63)
	if b.words[w]&bit == 0 {
		b.words[w] |= bit
		b.count++
	}
}

// drop removes i.
//
//sysvet:hotpath
func (b *bitset) drop(i int) {
	w, bit := i>>6, uint64(1)<<(i&63)
	if b.words[w]&bit != 0 {
		b.words[w] &^= bit
		b.count--
	}
}

// has reports membership of i.
//
//sysvet:hotpath
func (b *bitset) has(i int) bool {
	return b.words[i>>6]&(uint64(1)<<(i&63)) != 0
}

// len returns the number of members.
//
//sysvet:hotpath
func (b *bitset) len() int { return b.count }

// clearAll empties the set, keeping its capacity.
//
//sysvet:hotpath
func (b *bitset) clearAll() {
	if b.count == 0 {
		return
	}
	clear(b.words)
	b.count = 0
}

// fill makes the set exactly [0, n). The set must be sized for n.
func (b *bitset) fill(n int) {
	clear(b.words)
	for i := 0; i < n>>6; i++ {
		b.words[i] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		b.words[n>>6] = (uint64(1) << r) - 1
	}
	b.count = n
}

// copyFrom makes b an exact copy of src, reusing b's backing array.
//
//sysvet:hotpath
func (b *bitset) copyFrom(src *bitset) {
	b.words = grow(b.words, len(src.words))
	copy(b.words, src.words)
	b.count = src.count
}

// next returns the smallest member ≥ i, or -1. The canonical
// ascending iteration — the order every ready-set phase must visit
// entries in — is
//
//	for i := s.next(0); i >= 0; i = s.next(i + 1) { ... }
//
// Dropping already-visited members (or the current one) mid-loop is
// safe; adding members behind the cursor is not observed.
//
//sysvet:hotpath
func (b *bitset) next(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(b.words) {
		return -1
	}
	word := b.words[w] &^ ((uint64(1) << (i & 63)) - 1)
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(b.words) {
			return -1
		}
		word = b.words[w]
	}
}
