package machine

// Deterministic sharded execution: the machinery that lets one run's
// per-cycle phases fan out across a bounded worker gang while staying
// byte-identical to single-threaded execution.
//
// The model (see also exec.go's phase-by-phase commentary and the
// "Parallel execution" section of ARCHITECTURE.md):
//
//   - Work is partitioned into shards. Phases whose per-entry effects
//     are entirely message-local (queue requests, interior advances,
//     queue releases) split their ready set's key space into
//     contiguous id ranges, one per shard; bitset iteration is
//     ascending within a range, so range concatenation in shard order
//     is the full ascending scan. Phases where entries can contend
//     on a cell — receiver reads and sender writes both race for the
//     cell's one-op-per-cycle issue slot — are sharded by cell
//     ownership instead: shard s owns the contiguous cell range
//     [s·cells/W, (s+1)·cells/W) and processes exactly the messages
//     whose receiver (reads) or sender (writes) it owns, so every
//     issue-slot conflict is resolved inside one shard, in ascending
//     message order, exactly as the single-threaded scan resolves it.
//
//   - Per-message and per-cell state (program counters, issue flags,
//     queue contents, transport progress) is only ever touched by the
//     entry's owning shard within a phase, so shards never contend.
//     Everything that targets a shared structure — pending-request
//     lists, the armed-pool list, the transport/writer/moved/reqCheck
//     sets, timeline events, counters — is appended to the shard's
//     private sink and merged by the coordinator after the phase's
//     barrier, always in ascending shard order. Id-range chunks
//     concatenate back to the full ascending order, so the merged
//     effect sequence is independent of the worker count; the
//     order-insensitive sets are bitsets, whose iteration order is
//     ascending no matter what order members were merged in. The
//     bitsets themselves are never touched by workers mid-phase —
//     bits within one word are not independent memory locations —
//     which is exactly why membership changes ride the sinks.
//
//   - Phase barriers. A cycle's phases run strictly in sequence —
//     cooldown tick, request collection, pool arbitration, reads,
//     interior advances, rendezvous, writer commit, queue release —
//     with a full gang barrier (and the relevant sink merges) between
//     them, mirroring the single-threaded phase order. Pool
//     arbitration stays on the coordinator: policy instances are
//     stateful and their Grant calls must observe pools in ascending
//     order (see assign.Policy).
//
// Single-threaded execution is the 1-shard special case of the same
// phase structure, with one deliberate shortcut: in direct mode
// (workers == 1, see exec.direct) each note*/shard site applies its
// effect to the canonical structure in place and the merges are
// skipped entirely. The applied order equals the single-sink merge
// order, so the shortcut is invisible in the Result; the per-effect
// branches are two lines each, the cross-worker-count equivalence
// suites pin Workers=1 against Workers=N byte-for-byte, and the
// reference full-scan engine in internal/sim remains the independent
// oracle for all of it.

import "systolic/internal/model"

// maxWorkers caps the shard count; beyond this, coordination overhead
// is guaranteed to dominate any per-cycle work the model can generate.
const maxWorkers = 64

// parallelGrain is the minimum work-list length at which a phase is
// dispatched to the gang; below it the coordinator runs every shard
// inline (identical effects, no barrier cost). Mostly-idle cycles —
// the common case on large arrays, see BenchmarkLargeLinear — thus
// never pay for parallelism they cannot use. The value trades one
// gang barrier (microseconds: a channel handoff per worker each way)
// against the listed entries' work; entries cost tens to hundreds of
// nanoseconds each, so below ~48 the barrier could not pay for
// itself on any machine.
const parallelGrain = 48

// shardOf maps cell c of n to one of w contiguous, balanced shards:
// shard s owns cells [s·n/w, (s+1)·n/w). Requires 0 ≤ c < n and
// 1 ≤ w ≤ n.
//
//sysvet:hotpath
func shardOf(c, n, w int) int {
	return (c*w + w - 1) / n
}

// chunk returns shard s's position range [lo, hi) of an n-entry work
// list split into w contiguous chunks. Concatenating the chunks in
// shard order yields [0, n) exactly.
//
//sysvet:hotpath
func chunk(n, w, s int) (lo, hi int) {
	if w == 1 {
		// Direct mode's shape; skip the divisions, they show in sweeps.
		return 0, n
	}
	return s * n / w, (s + 1) * n / w
}

// pendReq is one deferred queue request: msg asking for a queue from
// pool.
type pendReq struct {
	pool int
	msg  model.MessageID
}

// sink is one shard's private buffer for the side effects that target
// shared structures. Workers only append; the coordinator drains every
// sink in ascending shard order after each phase barrier (mergeSinks),
// which is what makes the merged effect order independent of the
// worker count. Buffers are retained across cycles and runs.
type sink struct {
	pending   []pendReq
	armed     []int
	transport []model.MessageID
	writers   []model.MessageID
	reqCheck  []model.MessageID
	moved     []model.MessageID
	// drops holds transport entries a read shard found fully drained;
	// the coordinator removes them from the transport bitset right
	// after the read barrier (not in mergeSinks — the write phase of
	// the same cycle must observe the post-drop set so a re-buffered
	// message is re-added, exactly as the old keep-flag compaction
	// ordered things).
	drops    []model.MessageID
	cooling  []int
	issued   []int
	dirty    []int
	timeline []BindEvent
	// linkHits holds one entry per word that crossed a link on this
	// shard under a LinkModel; the coordinator folds them into the
	// per-link tallies. Tally increments commute, so the fixed
	// shard-order merge makes the folded counts — and the busy windows
	// derived from them — identical for every worker count.
	linkHits []int32

	remainingDelta int
	wordsMoved     int
	releases       int
	gated          int
	anyEvent       bool
}

// reset empties a sink, keeping its backing arrays.
//
//sysvet:hotpath
func (sk *sink) reset() {
	sk.pending = sk.pending[:0]
	sk.armed = sk.armed[:0]
	sk.transport = sk.transport[:0]
	sk.writers = sk.writers[:0]
	sk.reqCheck = sk.reqCheck[:0]
	sk.moved = sk.moved[:0]
	sk.drops = sk.drops[:0]
	sk.cooling = sk.cooling[:0]
	sk.issued = sk.issued[:0]
	sk.dirty = sk.dirty[:0]
	sk.timeline = sk.timeline[:0]
	sk.linkHits = sk.linkHits[:0]
	sk.remainingDelta = 0
	sk.wordsMoved = 0
	sk.releases = 0
	sk.gated = 0
	sk.anyEvent = false
}

// gang is a run-scoped pool of workers[1..n) plus the coordinator
// (shard 0, which executes inline). It is spawned lazily by the first
// fanout whose work list actually warrants a barrier — small machines
// with Workers > 1 never pay for goroutines they cannot use — and
// stopped when the run ends: success, deadlock, timeout,
// cancellation, or a Setup failure that aborts before the first
// cycle. Abandoning a pooled exec can therefore never leak
// goroutines.
type gang struct {
	n    int
	fn   func(shard int) // current phase; written only while workers are idle
	work chan int
	done chan any // nil = shard finished; non-nil = recovered panic value
}

func newGang(n int) *gang {
	g := &gang{n: n, work: make(chan int), done: make(chan any)}
	for w := 1; w < n; w++ {
		go func() {
			for s := range g.work {
				g.done <- g.runShard(s)
			}
		}()
	}
	return g
}

// runShard executes the current phase for one shard, converting a
// panic (a user Logic blowing up, typically) into a value instead of
// killing the process from a bare worker goroutine.
func (g *gang) runShard(s int) (rec any) {
	defer func() { rec = recover() }()
	g.fn(s)
	return nil
}

// run executes fn(s) for every shard s, shard 0 on the caller, and
// returns after all shards finish. The channel handoffs order the fn
// store before every worker's read and every worker's effects before
// the caller continues. A panic on any shard — coordinator included —
// is re-raised here only after every worker has reported back, so the
// caller sees the same recoverable panic single-threaded execution
// would produce and the gang stays consistent (workers idle, stop
// safe) even if the caller recovers it.
func (g *gang) run(fn func(int)) {
	g.fn = fn
	for s := 1; s < g.n; s++ {
		g.work <- s
	}
	rec := g.runShard(0)
	for s := 1; s < g.n; s++ {
		if r := <-g.done; rec == nil {
			rec = r
		}
	}
	if rec != nil {
		panic(rec)
	}
}

// stop terminates the workers. All of them are idle (run has
// returned, draining every done send), so close wakes each one
// exactly once.
func (g *gang) stop() {
	close(g.work)
}

// fanout runs fn over every shard: via the gang when the work list is
// long enough to amortize a barrier, inline otherwise. Both paths
// produce identical state — fn(s) touches only shard-s-owned state
// plus sinks[s], and merge order is fixed — so the dispatch choice is
// invisible in the Result.
//
//sysvet:hotpath
func (e *exec) fanout(n int, fn func(int)) {
	if n == 0 {
		return
	}
	if e.direct {
		fn(0)
		return
	}
	if e.workers > 1 && n >= parallelGrain {
		if e.gang == nil {
			e.gang = newGang(e.workers)
		}
		e.gang.run(fn)
		return
	}
	for s := 0; s < e.workers; s++ {
		fn(s)
	}
}

// mergeSinks drains every shard's sink in ascending shard order into
// the canonical structures. It is the cell-and-transfer phase's merge:
// the read/advance/write/rendezvous shards populate exactly the fields
// drained here (collect and release phases have their own slimmer
// merges, mergeCollect and mergeRelease). The message, cell, and pool
// sets are bitsets, so merge order cannot be observed — iteration at
// the consumption site is ascending by construction, and duplicate
// notes collapse in add.
//
//sysvet:hotpath
func (e *exec) mergeSinks() {
	for s := range e.sinks {
		sk := &e.sinks[s]
		for _, id := range sk.transport {
			e.transport.add(int(id))
		}
		for _, id := range sk.writers {
			e.writers.add(int(id))
		}
		for _, id := range sk.reqCheck {
			e.reqSet.add(int(id))
		}
		for _, id := range sk.moved {
			e.movedSet.add(int(id))
		}
		e.cooling = append(e.cooling, sk.cooling...)
		e.issuedList = append(e.issuedList, sk.issued...)
		for _, c := range sk.dirty {
			e.dirty.add(c)
		}
		for _, l := range sk.linkHits {
			if e.lmTally[l] == 0 {
				e.lmDirty = append(e.lmDirty, l)
			}
			e.lmTally[l]++
		}
		e.remaining += sk.remainingDelta
		e.stats.WordsMoved += sk.wordsMoved
		e.stats.GatedOps += sk.gated
		if sk.anyEvent {
			e.moved = true
		}
		sk.reset()
	}
}

// mergeRelease drains the release phase's sink fields — armed pools,
// release counters, and unbind timeline events — in ascending shard
// order. releaseShard touches nothing else, and the sinks are clean on
// entry (mergeSinks fully reset them at the end of the transfer phase),
// so the partial reset here keeps every sink clean.
//
//sysvet:hotpath
func (e *exec) mergeRelease() {
	for s := range e.sinks {
		sk := &e.sinks[s]
		for _, p := range sk.armed {
			e.armed.add(p)
		}
		if len(sk.timeline) > 0 {
			e.res.Timeline = append(e.res.Timeline, sk.timeline...)
		}
		e.stats.Releases += sk.releases
		sk.armed = sk.armed[:0]
		sk.timeline = sk.timeline[:0]
		sk.releases = 0
	}
}
