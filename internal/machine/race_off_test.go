//go:build !race

package machine

// raceEnabled reports whether the race detector instruments this
// build; stress sizes and allocation-sensitive assertions adjust
// themselves when it does.
const raceEnabled = false
