package machine

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// ScenarioKey returns a stable content address for a scenario: a hex
// sha256 over a canonical binary serialization of the program (cells,
// messages, per-cell op streams), the topology (name and link set),
// and — when provided — the routes and dense labels. Two calls agree
// exactly when the four inputs are structurally identical, regardless
// of how the program was built (DSL text, builder calls, generation),
// which makes the key safe to use across processes and restarts.
//
// routes and labels may be nil: routing and labeling are deterministic
// functions of (program, topology, analysis options), so a key over
// the first two plus the options already content-addresses the whole
// compiled scenario. Compile-level callers that do hold routes and
// labels (see Machine.Fingerprint) include them so the key also pins
// the derived artifacts.
func ScenarioKey(p *model.Program, t topology.Topology, routes [][]topology.Hop, labels []int) string {
	h := sha256.New()
	writeScenario(h, p, t, routes, labels)
	return hex.EncodeToString(h.Sum(nil))
}

// Fingerprint returns the machine's content address: the ScenarioKey
// of exactly what was compiled, routes and labels included. Equal
// fingerprints mean interchangeable machines.
func (m *Machine) Fingerprint() string {
	return ScenarioKey(m.prog, m.topo, m.routes, m.labels)
}

// writeScenario streams the canonical serialization into h. Every
// variable-length field is length-prefixed and every section is
// tagged, so no two distinct scenarios can collide by concatenation
// ambiguity.
func writeScenario(h hash.Hash, p *model.Program, t topology.Topology, routes [][]topology.Hop, labels []int) {
	var buf [8]byte
	u := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	str := func(s string) {
		u(len(s))
		io.WriteString(h, s)
	}

	io.WriteString(h, "systolic-scenario-v1\x00")

	u(p.NumCells())
	for _, c := range p.Cells() {
		str(c.Name)
		host := 0
		if c.Host {
			host = 1
		}
		u(host)
	}

	u(p.NumMessages())
	for _, msg := range p.Messages() {
		str(msg.Name)
		u(int(msg.Sender))
		u(int(msg.Receiver))
		u(msg.Words)
	}

	for _, c := range p.Cells() {
		code := p.Code(c.ID)
		u(len(code))
		for _, op := range code {
			u(int(op.Kind))
			u(int(op.Msg))
		}
	}

	str(t.Name())
	links := t.Links()
	u(len(links))
	for _, l := range links {
		u(int(l.A))
		u(int(l.B))
	}

	io.WriteString(h, "routes\x00")
	u(len(routes))
	for _, rt := range routes {
		u(len(rt))
		for _, hop := range rt {
			u(int(hop.Link))
			u(int(hop.From))
			u(int(hop.To))
		}
	}

	io.WriteString(h, "labels\x00")
	u(len(labels))
	for _, l := range labels {
		u(l)
	}
}
