// Package machine is the compile-once execution core: it lowers an
// analyzed scenario (program, topology, routes, labels) into a flat,
// index-based intermediate representation — per-cell op streams,
// per-hop pool tables, precomputed competing sets — that one Compile
// call produces and unlimited Run calls consume.
//
// The split mirrors what cycle-accurate co-simulation platforms do to
// reach production throughput: all per-scenario derivation (routing,
// pool layout, label ordering) happens once, so the per-run cost is
// pure simulation, and the per-cycle cost is driven by a ready-set
// scheduler (see exec.go) that revisits only the cells, messages, and
// queue pools an event has actually touched — O(active) instead of the
// former full O(cells + queues + messages) scan.
//
// A *Machine is immutable after Compile and safe for concurrent Run
// calls: each run borrows a pooled execution context sized for the
// machine. The scheduler is cycle-for-cycle equivalent to the
// reference full-scan engine kept in internal/sim; the equivalence
// suite there replays the fuzz corpus plus hundreds of generated
// scenarios through both and demands byte-identical Results.
package machine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"systolic/internal/assign"
	"systolic/internal/fault"
	"systolic/internal/linkmodel"
	"systolic/internal/model"
	"systolic/internal/queue"
	"systolic/internal/topology"
)

// Word re-exports the queue word type.
type Word = queue.Word

// ConfigError is a typed rejection of an invalid configuration: the
// named field cannot be compiled or simulated. Callers assembling
// configurations mechanically detect it with errors.As.
type ConfigError struct {
	Field  string
	Reason string
}

// Error renders the rejection.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("machine: config %s: %s", e.Field, e.Reason)
}

// CellLogic supplies word values so workloads can verify end-to-end
// arithmetic (e.g. the FIR outputs of Fig 2). Calls follow program
// order per cell: OnRead when a read completes, Produce when a write
// issues. Implementations may keep per-cell registers.
type CellLogic interface {
	// OnRead observes the index-th word (0-based) of msg arriving at
	// cell.
	OnRead(cell model.CellID, msg model.MessageID, index int, w Word)
	// Produce returns the value of the index-th word (0-based) of msg,
	// written by cell.
	Produce(cell model.CellID, msg model.MessageID, index int) Word
}

// SyntheticLogic is the default CellLogic: word i of message m carries
// the value m*1e6 + i, so transport bugs (reordering, loss,
// cross-wiring) are detectable without workload semantics.
type SyntheticLogic struct{}

// OnRead is a no-op.
func (SyntheticLogic) OnRead(model.CellID, model.MessageID, int, Word) {}

// Produce encodes (message, index).
func (SyntheticLogic) Produce(_ model.CellID, msg model.MessageID, index int) Word {
	return Word(float64(msg)*1e6 + float64(index))
}

// BindEvent is one timeline entry: a queue bound to or released from a
// message.
type BindEvent struct {
	Cycle int
	Link  topology.LinkID
	// QueueIdx indexes the queue within its link: 0..Q-1 for the
	// shared pool, 0..2Q-1 under DirectionalPools (forward pool
	// first, then reverse), so (Link, QueueIdx) is always unique.
	QueueIdx int
	Msg      model.MessageID
	Bound    bool // true = bound, false = released
}

// CellBlock describes why a cell was stuck when a deadlock was
// detected.
type CellBlock struct {
	Cell   model.CellID
	Op     model.Op
	OpIdx  int
	Reason string
}

// QueueStat pairs a queue's identity with its counters.
type QueueStat struct {
	Link     topology.LinkID
	QueueIdx int
	Stats    queue.Stats
}

// Stats aggregates run counters.
type Stats struct {
	Cycles     int
	WordsMoved int // total hop traversals (incl. final reads)
	Grants     int
	Releases   int
	// GatedOps counts operations that were ready by every fault-free
	// criterion but were held back by a fault gate that cycle. Zero on
	// unfaulted runs; under faults it is the run's stall-pressure
	// measure, identical across engines and worker counts.
	GatedOps      int
	BlockedCycles []int // per cell: cycles spent with a stalled op
	Queues        []QueueStat
}

// Result reports a run's outcome.
type Result struct {
	// Exactly one of Completed, Deadlocked, TimedOut is true.
	Completed  bool
	Deadlocked bool
	TimedOut   bool
	Cycles     int
	// Received holds, per message, the words observed by the
	// receiver in arrival order (length == Words on completion).
	Received [][]Word
	// Blocked describes stuck cells when Deadlocked.
	Blocked []CellBlock
	// Faults lists the active (non-no-op) faults of the run's
	// FaultPlan in canonical spec form; nil on fault-free runs.
	Faults []string
	// Timeline is non-nil when ExecOptions.RecordTimeline.
	Timeline []BindEvent
	Stats    Stats
}

// Outcome returns "completed", "deadlocked" or "timed-out".
func (r *Result) Outcome() string {
	switch {
	case r.Completed:
		return "completed"
	case r.Deadlocked:
		return "deadlocked"
	default:
		return "timed-out"
	}
}

// DescribeBlocked renders a deadlock report, one line per stuck cell.
func DescribeBlocked(p *model.Program, blocked []CellBlock) string {
	var b []byte
	for _, cb := range blocked {
		b = append(b, fmt.Sprintf("%s stuck at %s: %s\n", p.Cell(cb.Cell).Name, p.OpString(cb.Op), cb.Reason)...)
	}
	return string(b)
}

// ExecOptions parameterizes one run of a compiled machine. Everything
// the compile step could not fix — queue budgets, capacities, the
// policy instance, logic — is chosen here, so one machine serves an
// entire policy × queues × capacity grid.
type ExecOptions struct {
	// Policy decides queue bindings. Required; instances are stateful
	// and must not be shared between concurrent runs.
	Policy assign.Policy
	// QueuesPerLink is the fixed number of queues on every link
	// (§2.3). Must be ≥ 1.
	QueuesPerLink int
	// Capacity is each queue's base capacity in words. 0 models the
	// paper's unbuffered latch: transfers happen only as same-cycle
	// rendezvous, which restricts every route to a single hop.
	Capacity int
	// ExtCapacity and ExtPenalty model the iWarp queue extension
	// (§8.1): extra buffering beyond Capacity at ExtPenalty additional
	// cycles per extension access.
	ExtCapacity int
	ExtPenalty  int
	// DirectionalPools splits every link's queue pool in two, one per
	// traffic direction (§2.3 note).
	DirectionalPools bool
	// Logic supplies word values; nil means SyntheticLogic.
	Logic CellLogic
	// MaxCycles bounds the run; ≤ 0 means a default derived from
	// program size (guarded against integer overflow).
	MaxCycles int
	// RecordTimeline captures bind/release events for rendering
	// (Fig 7's lower half).
	RecordTimeline bool
	// Faults degrades the array for this run: slowed or dead cells,
	// throttled or severed links (see internal/fault). nil (or a
	// no-op plan) runs the perfect array, byte-identically to a run
	// with no plan at all. Faults are per-run, like queue budgets:
	// one compiled machine serves faulted and fault-free runs alike.
	Faults *fault.Plan
	// LinkModel retimes the interconnect for this run: each link serves
	// the words that crossed it in a cycle and then stays busy for a
	// model-determined window (fixed per-link latency/bandwidth, or
	// congestion-sensitive backpressure — see internal/linkmodel). nil
	// (or a unit plan) keeps the paper's unit-latency links,
	// byte-identically to a run with no model at all. Like Faults, the
	// model is per-run: one compiled machine serves every timing.
	LinkModel *linkmodel.Plan
	// Workers selects deterministic sharded execution: each cycle's
	// phases fan out across this many shards with per-phase barriers,
	// and shard effects merge in fixed shard order, so the Result is
	// byte-identical for every worker count — reports, deadlock
	// traces, timelines, and statistics included. 0 and 1 both mean
	// single-threaded; values above 64 (or above the cell count) are
	// clamped; negative is a ConfigError.
	//
	// With Workers > 1 a non-nil Logic may be called concurrently for
	// distinct cells. All calls for one cell stay serialized in
	// program order on one shard, so per-cell state (slices indexed by
	// cell, as every workload in this repository uses) needs no
	// synchronization; state shared across cells must be read-only
	// during the run or synchronized by the implementation.
	Workers int
	// Context, when non-nil, cancels the run between cycles: Run
	// returns a wrapped context error instead of a Result. A nil
	// Context never cancels.
	Context context.Context
}

// hopRef is one compiled route hop: the physical link plus the queue
// pool serving it under each pool regime (index 0 = shared pool,
// index 1 = directional pools).
type hopRef struct {
	link topology.LinkID
	pool [2]int32
}

// poolTable is the per-regime pool layout: competing sets and, when
// labels exist, the label-sorted grant order, all precomputed at
// compile so every run (and every policy Setup) shares them
// read-only.
type poolTable struct {
	numPools int
	// competing keeps the map form of the competing sets for the
	// assign.Context contract; competingByPool is the dense view.
	competing       map[topology.LinkID][]model.MessageID
	competingByPool [][]model.MessageID
	// labelOrder is each pool's competing set sorted by (label,
	// message id); nil when the machine was compiled without labels.
	labelOrder [][]model.MessageID
}

// Machine is the immutable compiled form of one analyzed scenario.
// Compile it once; Run it as many times as the parameter grid needs,
// concurrently if desired.
type Machine struct {
	prog   *model.Program
	topo   topology.Topology
	routes [][]topology.Hop
	labels []int
	links  []topology.Link

	// Flat per-cell op streams: cell c's code is ops[opOff[c]:opOff[c+1]].
	ops   []model.Op
	opOff []int32

	// Flat per-message hop tables: message m's hops are
	// hops[hopOff[m]:hopOff[m+1]].
	hops   []hopRef
	hopOff []int32

	words            []int   // per message: declared word count
	wordOff          []int32 // prefix sums of words: arena offsets for received words
	sender, receiver []model.CellID

	totalWords, totalHops int
	maxRouteLen           int
	multiHopMsg           model.MessageID // first msg with a multi-hop route; -1 if none
	codeCells             int             // cells with a non-empty op stream

	shared, directional poolTable

	// execs holds the pooled *exec scratch. It is an atomic pointer
	// so Reset can swap in a fresh pool while concurrent Runs keep
	// using (and eventually abandon) the old one.
	execs atomic.Pointer[sync.Pool]
}

// Compile lowers a validated program over a topology into the flat
// machine IR. routes may be nil (they are computed); when provided
// they must be indexed by message id and match the topology. labels
// (dense, per message) are optional; without them label-ordered
// policies refuse to Setup, exactly as before.
func Compile(p *model.Program, t topology.Topology, routes [][]topology.Hop, labels []int) (*Machine, error) {
	if p == nil {
		return nil, &ConfigError{Field: "Program", Reason: "nil program"}
	}
	if t == nil {
		return nil, &ConfigError{Field: "Topology", Reason: "nil topology"}
	}
	if routes == nil {
		var err error
		routes, err = topology.Routes(p, t)
		if err != nil {
			return nil, err
		}
	} else if len(routes) != p.NumMessages() {
		return nil, &ConfigError{Field: "Routes", Reason: fmt.Sprintf("%d entries for %d messages", len(routes), p.NumMessages())}
	}
	if labels != nil && len(labels) != p.NumMessages() {
		return nil, &ConfigError{Field: "Labels", Reason: fmt.Sprintf("%d labels for %d messages", len(labels), p.NumMessages())}
	}

	m := &Machine{
		prog:        p,
		topo:        t,
		routes:      routes,
		labels:      labels,
		links:       t.Links(),
		multiHopMsg: -1,
	}

	// Per-cell op streams.
	cells := p.NumCells()
	m.opOff = make([]int32, cells+1)
	for c := 0; c < cells; c++ {
		code := p.Code(model.CellID(c))
		m.opOff[c+1] = m.opOff[c] + int32(len(code))
		if len(code) > 0 {
			m.codeCells++
		}
	}
	m.ops = make([]model.Op, m.opOff[cells])
	for c := 0; c < cells; c++ {
		copy(m.ops[m.opOff[c]:m.opOff[c+1]], p.Code(model.CellID(c)))
	}

	// Per-message declarations and hop tables with precomputed pool
	// ids for both pool regimes.
	msgs := p.NumMessages()
	m.words = make([]int, msgs)
	m.sender = make([]model.CellID, msgs)
	m.receiver = make([]model.CellID, msgs)
	m.hopOff = make([]int32, msgs+1)
	m.wordOff = make([]int32, msgs+1)
	for _, decl := range p.Messages() {
		m.words[decl.ID] = decl.Words
		m.sender[decl.ID] = decl.Sender
		m.receiver[decl.ID] = decl.Receiver
		m.totalWords += decl.Words
	}
	for id := 0; id < msgs; id++ {
		m.wordOff[id+1] = m.wordOff[id] + int32(m.words[id])
	}
	for id, rt := range routes {
		m.hopOff[id+1] = m.hopOff[id] + int32(len(rt))
		m.totalHops += len(rt)
		if len(rt) > m.maxRouteLen {
			m.maxRouteLen = len(rt)
		}
		if len(rt) > 1 && m.multiHopMsg < 0 {
			m.multiHopMsg = model.MessageID(id)
		}
	}
	m.hops = make([]hopRef, m.totalHops)
	for id, rt := range routes {
		off := m.hopOff[id]
		for i, h := range rt {
			dir := int32(0)
			if h.From != m.links[h.Link].A {
				dir = 1
			}
			m.hops[off+int32(i)] = hopRef{
				link: h.Link,
				pool: [2]int32{int32(h.Link), 2*int32(h.Link) + dir},
			}
		}
	}

	m.shared = m.buildPoolTable(0, len(m.links))
	m.directional = m.buildPoolTable(1, 2*len(m.links))

	m.execs.Store(&sync.Pool{New: func() any { return new(exec) }})
	return m, nil
}

// buildPoolTable derives one regime's competing sets (in the exact
// message-ascending append order the per-run construction used to
// produce) and, when labels exist, the label-sorted grant order.
func (m *Machine) buildPoolTable(flavor, numPools int) poolTable {
	tbl := poolTable{
		numPools:        numPools,
		competing:       make(map[topology.LinkID][]model.MessageID),
		competingByPool: make([][]model.MessageID, numPools),
	}
	for id := range m.routes {
		for _, h := range m.msgHops(model.MessageID(id)) {
			pool := h.pool[flavor]
			tbl.competingByPool[pool] = append(tbl.competingByPool[pool], model.MessageID(id))
		}
	}
	for pool, msgs := range tbl.competingByPool {
		if len(msgs) > 0 {
			tbl.competing[topology.LinkID(pool)] = msgs
		}
	}
	if m.labels != nil {
		tbl.labelOrder = make([][]model.MessageID, numPools)
		for pool, msgs := range tbl.competingByPool {
			if len(msgs) == 0 {
				continue
			}
			sorted := append([]model.MessageID(nil), msgs...)
			sort.Slice(sorted, func(i, j int) bool {
				li, lj := m.labels[sorted[i]], m.labels[sorted[j]]
				if li != lj {
					return li < lj
				}
				return sorted[i] < sorted[j]
			})
			tbl.labelOrder[pool] = sorted
		}
	}
	return tbl
}

// code returns cell c's op stream.
func (m *Machine) code(c int) []model.Op {
	return m.ops[m.opOff[c]:m.opOff[c+1]]
}

// msgHops returns message id's compiled hop table.
func (m *Machine) msgHops(id model.MessageID) []hopRef {
	return m.hops[m.hopOff[id]:m.hopOff[id+1]]
}

// Program returns the compiled program.
func (m *Machine) Program() *model.Program { return m.prog }

// Topology returns the compiled topology.
func (m *Machine) Topology() topology.Topology { return m.topo }

// Routes returns the compiled routes, indexed by message id. The
// result is shared and must not be modified.
func (m *Machine) Routes() [][]topology.Hop { return m.routes }

// Reset discards the machine's pooled execution scratch, releasing
// the memory retained for run reuse. The machine itself stays valid:
// the next Run simply pays one fresh allocation. Concurrent Run calls
// are unaffected beyond that — a run in flight keeps the pool it
// started with and abandons it on completion.
func (m *Machine) Reset() {
	m.execs.Store(&sync.Pool{New: func() any { return new(exec) }})
}

// prepare validates opts, applies defaults (Logic, MaxCycles), and
// resolves the pool regime plus the lowered fault and link-timing
// tables. It is the shared front half of Run and Exec.Run, so both
// reject configurations with identical errors.
func (m *Machine) prepare(opts *ExecOptions) (maxCycles int, tbl *poolTable, flavor int, flt *fault.Lowered, lm *linkmodel.Lowered, err error) {
	if opts.Policy == nil {
		return 0, nil, 0, nil, nil, &ConfigError{Field: "Policy", Reason: "nil policy"}
	}
	if opts.QueuesPerLink < 1 {
		return 0, nil, 0, nil, nil, &ConfigError{Field: "QueuesPerLink", Reason: fmt.Sprintf("%d < 1 (every link needs at least one queue, §2.3)", opts.QueuesPerLink)}
	}
	if opts.Capacity < 0 {
		return 0, nil, 0, nil, nil, &ConfigError{Field: "Capacity", Reason: fmt.Sprintf("negative capacity %d", opts.Capacity)}
	}
	if opts.ExtCapacity < 0 {
		return 0, nil, 0, nil, nil, &ConfigError{Field: "ExtCapacity", Reason: fmt.Sprintf("negative extension capacity %d", opts.ExtCapacity)}
	}
	if opts.ExtPenalty < 0 {
		return 0, nil, 0, nil, nil, &ConfigError{Field: "ExtPenalty", Reason: fmt.Sprintf("negative extension penalty %d", opts.ExtPenalty)}
	}
	if opts.Workers < 0 {
		return 0, nil, 0, nil, nil, &ConfigError{Field: "Workers", Reason: fmt.Sprintf("negative worker count %d (0 = single-threaded)", opts.Workers)}
	}
	if opts.Capacity == 0 {
		if m.multiHopMsg >= 0 {
			return 0, nil, 0, nil, nil, &ConfigError{Field: "Capacity", Reason: fmt.Sprintf(
				"capacity 0 (latch) supports single-hop routes only; message %s crosses %d links",
				m.prog.Message(m.multiHopMsg).Name, len(m.routes[m.multiHopMsg]))}
		}
		if opts.ExtCapacity > 0 {
			return 0, nil, 0, nil, nil, &ConfigError{Field: "ExtCapacity", Reason: "queue extension requires base capacity ≥ 1"}
		}
	}
	if opts.Faults != nil {
		if ferr := opts.Faults.Validate(m.prog.NumCells(), len(m.links)); ferr != nil {
			return 0, nil, 0, nil, nil, &ConfigError{Field: "Faults", Reason: ferr.Error()}
		}
		flt = fault.Lower(opts.Faults, m.prog.NumCells(), len(m.links))
	}
	if opts.LinkModel != nil {
		if lerr := opts.LinkModel.Validate(len(m.links)); lerr != nil {
			return 0, nil, 0, nil, nil, &ConfigError{Field: "LinkModel", Reason: lerr.Error()}
		}
		lm = linkmodel.Lower(opts.LinkModel, len(m.links))
	}
	if opts.Logic == nil {
		opts.Logic = SyntheticLogic{}
	}
	maxCycles = opts.MaxCycles
	if maxCycles <= 0 {
		linkFactor := 1
		if lm != nil {
			// The derived bound must scale with the slowest link or
			// slow-link runs are misreported as deadlocks; see
			// maxCyclesFor.
			linkFactor = lm.MaxFactor()
		}
		maxCycles, err = maxCyclesFor(m.totalWords, m.totalHops, linkFactor)
		if err != nil {
			return 0, nil, 0, nil, nil, err
		}
		if flt != nil {
			// A factor-k slowdown stretches any schedule by at most k,
			// so the derived bound scales by the largest factor; a
			// user-set MaxCycles is never second-guessed.
			scaled, ok := flt.ScaleCycles(maxCycles)
			if !ok {
				return 0, nil, 0, nil, nil, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf(
					"derived cycle bound %d×%d (fault slowdown) overflows int; set MaxCycles explicitly", maxCycles, flt.MaxFactor())}
			}
			maxCycles = scaled
		}
	}
	tbl = &m.shared
	if opts.DirectionalPools {
		tbl = &m.directional
		flavor = 1
	}
	return maxCycles, tbl, flavor, flt, lm, nil
}

// runExec drives one prepared run on e: init, policy setup, the
// scheduler loop. On success the caller harvests e.result(); on error
// e holds no live gang and can be released or reused.
func (m *Machine) runExec(e *exec, opts *ExecOptions, tbl *poolTable, flavor, maxCycles int, flt *fault.Lowered, lm *linkmodel.Lowered) error {
	e.init(m, opts, tbl, flavor, flt, lm)
	e.ctx = assign.Context{
		Program:         m.prog,
		Routes:          m.routes,
		Competing:       tbl.competing,
		CompetingByPool: tbl.competingByPool,
		LabelOrder:      tbl.labelOrder,
		NumPools:        tbl.numPools,
		Labels:          m.labels,
		QueuesPerLink:   opts.QueuesPerLink,
	}
	if err := opts.Policy.Setup(&e.ctx); err != nil {
		return err
	}
	e.run(maxCycles)
	if e.cancelled {
		return fmt.Errorf("machine: run cancelled after %d cycles: %w", e.now, context.Cause(opts.Context))
	}
	return nil
}

// Run simulates the compiled program to completion, deadlock, or the
// cycle bound under one configuration. It returns an error only for
// configuration problems; run-time deadlock is a Result, not an
// error. Run is safe for concurrent use.
func (m *Machine) Run(opts ExecOptions) (*Result, error) {
	maxCycles, tbl, flavor, flt, lm, err := m.prepare(&opts)
	if err != nil {
		return nil, err
	}
	pool := m.execs.Load()
	e := pool.Get().(*exec)
	if err := m.runExec(e, &opts, tbl, flavor, maxCycles, flt, lm); err != nil {
		e.release()
		pool.Put(e)
		return nil, err
	}
	out := new(Result)
	*out = e.result()
	e.release()
	pool.Put(e)
	return out, nil
}

// Measured crossover for AutoWorkers, from the committed
// BENCH_parallel.json trajectory on the CI-class host (numbers are
// ns/op for machine.Run; workers=4 measured with GOMAXPROCS ≥ 4):
//
//	workload          cells  workers=1   workers=4   verdict
//	wide-linear-1024   1024   65.7 ms     91.6 ms    sharding loses
//	mesh-32x32         1024    2.2 ms      3.2 ms    sharding loses
//
// Both workloads keep essentially every cell active each cycle —
// the best case for sharding — and still lose at 1024 cells: six
// phase barriers per cycle (a channel handoff per worker each way)
// outweigh the per-shard work until the ready sets are several
// thousand entries deep. autoWorkersMinCells therefore sits at 4x
// the measured losing size, and autoWorkersCellsPerShard keeps each
// shard at least ~2048 cells so added workers arrive with enough
// work to amortize their barrier share.
const (
	autoWorkersMinCells      = 4096
	autoWorkersCellsPerShard = 2048
)

// AutoWorkers returns the shard count RunParallel uses when
// ExecOptions.Workers is 0: single-threaded unless the machine is
// large enough for sharding to pay for its barriers (see the
// measured table above), then roughly one worker per
// autoWorkersCellsPerShard active-code cells, capped at
// runtime.GOMAXPROCS(0). Every choice produces byte-identical
// Results, so the heuristic only moves wall-clock time.
func (m *Machine) AutoWorkers() int {
	procs := runtime.GOMAXPROCS(0)
	if procs <= 1 || m.codeCells < autoWorkersMinCells {
		return 1
	}
	w := m.codeCells / autoWorkersCellsPerShard
	if w > procs {
		w = procs
	}
	return w
}

// RunParallel is Run with Workers defaulted to AutoWorkers when
// unset: the whole-machine entry point for callers that want
// intra-run parallelism without choosing a shard count. Like every
// worker count, its Result is byte-identical to the single-threaded
// run — the equivalence suite in internal/sim replays the fuzz corpus
// and hundreds of generated scenarios across worker counts to enforce
// exactly that.
func (m *Machine) RunParallel(opts ExecOptions) (*Result, error) {
	if opts.Workers == 0 {
		opts.Workers = m.AutoWorkers()
	}
	return m.Run(opts)
}
