package machine

import (
	"testing"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// fpProgram builds a small two-message relay used by the fingerprint
// tests.
func fpProgram(t *testing.T, words int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	c3 := b.AddCell("C3")
	a := b.DeclareMessage("A", c1, c2, words)
	bb := b.DeclareMessage("B", c2, c3, words)
	for i := 0; i < words; i++ {
		b.Write(c1, a)
	}
	for i := 0; i < words; i++ {
		b.Read(c2, a)
		b.Write(c2, bb)
	}
	for i := 0; i < words; i++ {
		b.Read(c3, bb)
	}
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func TestScenarioKeyStable(t *testing.T) {
	p1 := fpProgram(t, 2)
	p2 := fpProgram(t, 2)
	topo := topology.Linear(3)
	k1 := ScenarioKey(p1, topo, nil, nil)
	k2 := ScenarioKey(p2, topology.Linear(3), nil, nil)
	if k1 != k2 {
		t.Fatalf("structurally identical scenarios hash differently:\n%s\n%s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a hex sha256", k1)
	}
}

func TestScenarioKeySensitivity(t *testing.T) {
	base := fpProgram(t, 2)
	topo := topology.Linear(3)
	baseKey := ScenarioKey(base, topo, nil, nil)

	if k := ScenarioKey(fpProgram(t, 3), topo, nil, nil); k == baseKey {
		t.Fatal("changing word counts did not change the key")
	}
	if k := ScenarioKey(base, topology.Ring(3), nil, nil); k == baseKey {
		t.Fatal("changing the topology did not change the key")
	}
	routes, err := topology.Routes(base, topo)
	if err != nil {
		t.Fatalf("routes: %v", err)
	}
	if k := ScenarioKey(base, topo, routes, nil); k == baseKey {
		t.Fatal("adding routes did not change the key")
	}
	if ScenarioKey(base, topo, routes, []int{1, 2}) == ScenarioKey(base, topo, routes, []int{2, 1}) {
		t.Fatal("permuting labels did not change the key")
	}
}

func TestMachineFingerprintMatchesScenarioKey(t *testing.T) {
	p := fpProgram(t, 2)
	topo := topology.Linear(3)
	routes, err := topology.Routes(p, topo)
	if err != nil {
		t.Fatalf("routes: %v", err)
	}
	labels := []int{1, 1}
	m, err := Compile(p, topo, routes, labels)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	want := ScenarioKey(p, topo, routes, labels)
	if got := m.Fingerprint(); got != want {
		t.Fatalf("Fingerprint %s != ScenarioKey %s", got, want)
	}

	// A second compile of the same inputs yields the same fingerprint.
	m2, err := Compile(fpProgram(t, 2), topology.Linear(3), nil, labels)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if m2.Fingerprint() != want {
		t.Fatal("recompiled machine has a different fingerprint")
	}
}
