package machine

import (
	"fmt"
	"math"
)

// maxCyclesFor derives the default cycle bound for a run: generous
// enough that any live configuration finishes, small enough that a
// stall is detected promptly. The formula 16·(words+1)·(hops+1)+4096
// (floored at 2^14) is the one the simulator has always used; the
// multiplication is guarded so that pathological word counts × route
// lengths return a typed ConfigError instead of silently wrapping
// into a tiny or negative bound.
func maxCyclesFor(words, hops int) (int, error) {
	const floor = 1 << 14
	if words < 0 || hops < 0 {
		return 0, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf("negative work estimate (words=%d, hops=%d)", words, hops)}
	}
	if words == math.MaxInt || hops == math.MaxInt {
		return 0, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf(
			"derived cycle bound 16·(%d+1)·(%d+1)+4096 overflows int; set MaxCycles explicitly", words, hops)}
	}
	w, h := words+1, hops+1
	// n = 16*w*h + 4096 must fit in int: reject when w > (MaxInt-4096)/(16*h).
	if w > (math.MaxInt-4096)/16/h {
		return 0, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf(
			"derived cycle bound 16·(%d+1)·(%d+1)+4096 overflows int; set MaxCycles explicitly", words, hops)}
	}
	n := 16*w*h + 4096
	if n < floor {
		n = floor
	}
	return n, nil
}
