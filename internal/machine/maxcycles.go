package machine

import (
	"fmt"
	"math"
)

// maxCyclesFor derives the default cycle bound for a run: generous
// enough that any live configuration finishes, small enough that a
// stall is detected promptly. The formula 16·(words+1)·(hops+1)·L+4096
// (floored at 2^14) extends the one the simulator has always used with
// the run's largest link-latency factor L (1 under unit timing): a
// factor-L link stretches any schedule by at most L, so a bound that
// ignored it would misreport slow-link runs as deadlocks the moment
// they outran the unit-latency estimate. The multiplication is guarded
// so that pathological word counts × route lengths × latencies return
// a typed ConfigError instead of silently wrapping into a tiny or
// negative bound.
func maxCyclesFor(words, hops, linkFactor int) (int, error) {
	const floor = 1 << 14
	if words < 0 || hops < 0 {
		return 0, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf("negative work estimate (words=%d, hops=%d)", words, hops)}
	}
	if linkFactor < 1 {
		linkFactor = 1
	}
	if words == math.MaxInt || hops == math.MaxInt {
		return 0, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf(
			"derived cycle bound 16·(%d+1)·(%d+1)+4096 overflows int; set MaxCycles explicitly", words, hops)}
	}
	w, h := words+1, hops+1
	// n = 16*w*h*linkFactor + 4096 must fit in int: reject when
	// w > (MaxInt-4096)/(16*h*linkFactor), dividing stepwise so the
	// guard itself cannot overflow.
	if w > (math.MaxInt-4096)/16/h/linkFactor {
		if linkFactor > 1 {
			return 0, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf(
				"derived cycle bound 16·(%d+1)·(%d+1)·%d (link slowdown) +4096 overflows int; set MaxCycles explicitly", words, hops, linkFactor)}
		}
		return 0, &ConfigError{Field: "MaxCycles", Reason: fmt.Sprintf(
			"derived cycle bound 16·(%d+1)·(%d+1)+4096 overflows int; set MaxCycles explicitly", words, hops)}
	}
	n := 16*w*h*linkFactor + 4096
	if n < floor {
		n = floor
	}
	return n, nil
}
