package machine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// TestShardMath brute-forces the two partition helpers against each
// other: shardOf must be the exact inverse of the block boundaries
// chunk implies — every cell lands in [0,w), the mapping is monotone,
// and cell c is in shard s iff chunk(n,w,s) covers it.
func TestShardMath(t *testing.T) {
	for n := 1; n <= 40; n++ {
		for w := 1; w <= n && w <= maxWorkers; w++ {
			covered := 0
			for s := 0; s < w; s++ {
				lo, hi := chunk(n, w, s)
				if lo > hi || lo < 0 || hi > n {
					t.Fatalf("chunk(%d,%d,%d) = [%d,%d)", n, w, s, lo, hi)
				}
				if s == 0 && lo != 0 {
					t.Fatalf("chunk(%d,%d,0) starts at %d", n, w, lo)
				}
				if s == w-1 && hi != n {
					t.Fatalf("chunk(%d,%d,%d) ends at %d, want %d", n, w, s, hi, n)
				}
				covered += hi - lo
				for c := lo; c < hi; c++ {
					if got := shardOf(c, n, w); got != s {
						t.Fatalf("shardOf(%d, n=%d, w=%d) = %d, want %d", c, n, w, got, s)
					}
				}
			}
			if covered != n {
				t.Fatalf("n=%d w=%d: chunks cover %d cells", n, w, covered)
			}
		}
	}
}

// pipeline builds a cells-long wavefront: every interior cell
// word-interleaves R(M[i-1]) with W(M[i]), so after warm-up nearly
// every message is in flight at once — the workload shape sharded
// execution exists for.
func pipeline(t testing.TB, cells, words int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	ids := make([]model.CellID, cells)
	for i := range ids {
		ids[i] = b.AddCell(fmt.Sprintf("C%d", i))
	}
	msgs := make([]model.MessageID, cells-1)
	for i := range msgs {
		msgs[i] = b.DeclareMessage(fmt.Sprintf("M%d", i), ids[i], ids[i+1], words)
	}
	b.WriteN(ids[0], msgs[0], words)
	for i := 1; i < cells-1; i++ {
		for w := 0; w < words; w++ {
			b.Read(ids[i], msgs[i-1])
			b.Write(ids[i], msgs[i])
		}
	}
	b.ReadN(ids[cells-1], msgs[cells-2], words)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestRunParallelMatchesSingleThreaded replays a pipeline wide enough
// to exercise the gang (ready sets ≫ parallelGrain) across worker
// counts and policies, demanding fully DeepEqual Results against the
// single-threaded run. The cross-engine, corpus-scale version of this
// suite lives in internal/sim; this is the package-local fast check.
func TestRunParallelMatchesSingleThreaded(t *testing.T) {
	cells := 96
	if raceEnabled {
		cells = 48
	}
	p := pipeline(t, cells, 4)
	topo := topology.Linear(cells)
	m := mustCompile(t, p, topo)
	for _, timeline := range []bool{false, true} {
		base := ExecOptions{Policy: assign.Naive(assign.FCFS, 0), QueuesPerLink: 1, Capacity: 2, RecordTimeline: timeline}
		want, err := m.Run(base)
		if err != nil {
			t.Fatal(err)
		}
		if !want.Completed {
			t.Fatalf("single-threaded run: %s", want.Outcome())
		}
		for _, workers := range []int{2, 3, 4, 7, maxWorkers} {
			opts := base
			opts.Workers = workers
			opts.Policy = assign.Naive(assign.FCFS, 0)
			got, err := m.Run(opts)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("workers=%d timeline=%v: result diverged from single-threaded run", workers, timeline)
			}
		}
	}
}

// TestRunParallelWorkersValidation: a negative worker count is a
// typed ConfigError; absurdly large counts are clamped, not rejected.
func TestRunParallelWorkersValidation(t *testing.T) {
	m := mustCompile(t, chain(t, 2), topology.Linear(2))
	opts := fcfs(1, 1)
	opts.Workers = -1
	_, err := m.Run(opts)
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Workers" {
		t.Fatalf("Workers=-1: err = %v, want ConfigError on Workers", err)
	}
	opts.Workers = 1 << 20
	res, err := m.Run(opts)
	if err != nil || !res.Completed {
		t.Fatalf("Workers=1<<20: res=%v err=%v", res, err)
	}
}

// TestRunParallelDefaultsWorkers: RunParallel picks AutoWorkers when
// Workers is unset and still matches the single-threaded bytes.
func TestRunParallelDefaultsWorkers(t *testing.T) {
	m := mustCompile(t, pipeline(t, 32, 3), topology.Linear(32))
	want, err := m.Run(fcfs(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.RunParallel(fcfs(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("RunParallel diverged from single-threaded Run")
	}
}

// TestAutoWorkers pins the crossover heuristic to its benchmark-backed
// thresholds: machines at or below the sizes BENCH_parallel.json shows
// losing under sharding (1024 all-active cells) must choose 1 worker,
// and the choice never exceeds GOMAXPROCS.
func TestAutoWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	// wide-linear-1024 / mesh-32x32 class: 1024 cells, a measured
	// wall-clock loss at workers=4 — auto mode must stay sequential.
	m := mustCompile(t, pipeline(t, 1024, 1), topology.Linear(1024))
	if got := m.AutoWorkers(); got != 1 {
		t.Fatalf("AutoWorkers(1024 cells) = %d, want 1", got)
	}
	// Small machines likewise.
	small := mustCompile(t, chain(t, 2), topology.Linear(2))
	if got := small.AutoWorkers(); got != 1 {
		t.Fatalf("AutoWorkers(2 cells) = %d, want 1", got)
	}
	if procs > 1 {
		// Above the crossover the count scales with cells, capped at
		// GOMAXPROCS: 8192 cells target 8192/2048 = 4 shards.
		big := mustCompile(t, pipeline(t, 8192, 1), topology.Linear(8192))
		want := 8192 / autoWorkersCellsPerShard
		if want > procs {
			want = procs
		}
		if got := big.AutoWorkers(); got != want {
			t.Fatalf("AutoWorkers(8192 cells) = %d, want %d (procs=%d)", got, want, procs)
		}
	}
}

// goroutinesSettle polls until the goroutine count returns to at most
// base, tolerating the runtime's own background goroutines.
func goroutinesSettle(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d > %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunParallelCancel covers the mid-run context path: a cancelled
// context stops the run between cycles with a wrapped context error,
// and the gang's workers are gone afterwards (deadline-bound count,
// the goroutine-leak check the race job runs too).
func TestRunParallelCancel(t *testing.T) {
	m := mustCompile(t, pipeline(t, 64, 64), topology.Linear(64))
	base := runtime.NumGoroutine()

	// Already-cancelled context: deterministic immediate stop.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := fcfs(1, 2)
	opts.Workers = 4
	opts.Context = ctx
	if _, err := m.Run(opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}
	goroutinesSettle(t, base)

	// Cancel racing a live run: whichever wins, the error (if any) is
	// the context's and no goroutine survives.
	ctx, cancel = context.WithCancel(context.Background())
	opts.Context = ctx
	done := make(chan error, 1)
	go func() {
		_, err := m.Run(opts)
		done <- err
	}()
	time.Sleep(200 * time.Microsecond)
	cancel()
	if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: err = %v", err)
	}
	goroutinesSettle(t, base)
}

// TestRunParallelConcurrentRuns drives one machine from many
// goroutines, each with intra-run sharding — the serving layer's
// worst case, and the -race job's main target for the parallel
// runner. Every run must produce the single-threaded bytes.
func TestRunParallelConcurrentRuns(t *testing.T) {
	cells, runs := 48, 8
	if raceEnabled {
		cells, runs = 32, 4
	}
	m := mustCompile(t, pipeline(t, cells, 3), topology.Linear(cells))
	want, err := m.Run(fcfs(1, 2))
	if err != nil || !want.Completed {
		t.Fatalf("baseline: %v %v", want, err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				opts := fcfs(1, 2)
				opts.Workers = 2 + g%3
				got, err := m.Run(opts)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(want, got) {
					errs <- fmt.Errorf("goroutine %d run %d: diverged", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// panicLogic blows up on one specific read, emulating a buggy
// user-supplied CellLogic.
type panicLogic struct{ SyntheticLogic }

func (panicLogic) OnRead(_ model.CellID, msg model.MessageID, _ int, _ Word) {
	if msg == 40 {
		panic("boom: logic failure on message 40")
	}
}

// TestLogicPanicPropagates: a panic inside a sharded phase — here a
// user Logic on a gang worker goroutine — must surface to the Run
// caller as a recoverable panic (exactly as single-threaded execution
// surfaces it), not crash the process or strand gang goroutines; the
// machine must stay usable afterwards.
func TestLogicPanicPropagates(t *testing.T) {
	m := mustCompile(t, pipeline(t, 96, 4), topology.Linear(96))
	base := runtime.NumGoroutine()
	run := func() (rec any) {
		defer func() { rec = recover() }()
		opts := fcfs(1, 2)
		opts.Workers = 4
		opts.Logic = panicLogic{}
		_, _ = m.Run(opts)
		return nil
	}
	rec := run()
	if rec == nil {
		t.Fatal("logic panic did not propagate to the Run caller")
	}
	if s, ok := rec.(string); !ok || !strings.Contains(s, "boom") {
		t.Fatalf("recovered %v, want the logic's panic value", rec)
	}
	goroutinesSettle(t, base)

	opts := fcfs(1, 2)
	opts.Workers = 4
	res, err := m.Run(opts)
	if err != nil || !res.Completed {
		t.Fatalf("machine unusable after recovered panic: %v %v", res, err)
	}
}

// TestSetupErrorStopsGang: a run that dies in Policy.Setup must not
// strand gang workers. Since the gang is spawned lazily by the first
// real fanout this path no longer creates one at all; the release-side
// teardown stays as the regression guard either way.
func TestSetupErrorStopsGang(t *testing.T) {
	// Two messages compete on the one link, so Static().Setup refuses
	// with QueuesPerLink=1.
	b := model.NewBuilder()
	c1, c2 := b.AddCell("C1"), b.AddCell("C2")
	m1 := b.DeclareMessage("M1", c1, c2, 1)
	m2 := b.DeclareMessage("M2", c1, c2, 1)
	b.Write(c1, m1)
	b.Write(c1, m2)
	b.Read(c2, m1)
	b.Read(c2, m2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := mustCompile(t, p, topology.Linear(2))
	base := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		opts := ExecOptions{Policy: assign.Static(), QueuesPerLink: 1, Capacity: 1, Workers: 2}
		if _, err := m.Run(opts); err == nil {
			t.Fatal("under-budget static setup unexpectedly succeeded")
		}
	}
	goroutinesSettle(t, base)
}

// TestCancelErrorNamesCycles: the cancellation error is actionable —
// it says how far the run got and unwraps to the context error.
func TestCancelErrorNamesCycles(t *testing.T) {
	m := mustCompile(t, chain(t, 4), topology.Linear(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := fcfs(1, 1)
	opts.Context = ctx
	_, err := m.Run(opts)
	if err == nil || !strings.Contains(err.Error(), "cancelled after") {
		t.Fatalf("err = %v, want cycle-stamped cancellation", err)
	}
}
