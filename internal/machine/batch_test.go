package machine

import (
	"reflect"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/topology"
)

// crossing builds a two-cell program with one message each way over
// the single link, each cell writing before it reads: with one shared
// queue on the link the loser of the grant never drains the winner,
// so the run deadlocks; with two queues it completes. That makes one
// program cover both outcome shapes across a config grid.
func crossing(t testing.TB, words int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	m1 := b.DeclareMessage("M1", c1, c2, words)
	m2 := b.DeclareMessage("M2", c2, c1, words)
	b.WriteN(c1, m1, words)
	b.ReadN(c1, m2, words)
	b.WriteN(c2, m2, words)
	b.ReadN(c2, m1, words)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestExecMatchesRun replays a config grid through one Exec and
// through Machine.Run and demands byte-identical Results — the batch
// contract. The grid mixes completing and deadlocking points, both
// pool regimes, and several queue budgets, all back-to-back on the
// same Exec so retained-buffer reuse is actually exercised.
func TestExecMatchesRun(t *testing.T) {
	m := mustCompile(t, crossing(t, 6), topology.Linear(2))
	ex := m.NewExec()
	for _, directional := range []bool{false, true} {
		for _, queues := range []int{1, 2, 3} {
			for _, capacity := range []int{1, 2, 4} {
				opts := ExecOptions{
					Policy:           assign.Naive(assign.FCFS, 0),
					QueuesPerLink:    queues,
					Capacity:         capacity,
					DirectionalPools: directional,
				}
				want, err := m.Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				opts.Policy = assign.Naive(assign.FCFS, 0) // policies are stateful: fresh instance per run
				got, err := ex.Run(opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("dir=%v q=%d cap=%d: Exec.Run diverges from Machine.Run\ngot:  %+v\nwant: %+v",
						directional, queues, capacity, got, want)
				}
			}
		}
	}
}

// TestExecValidationMatchesRun checks the shared prepare path: the
// batch entry point rejects bad configurations with exactly the
// errors Machine.Run produces.
func TestExecValidationMatchesRun(t *testing.T) {
	m := mustCompile(t, chain(t, 2), topology.Linear(2))
	ex := m.NewExec()
	bad := []ExecOptions{
		{QueuesPerLink: 1, Capacity: 1}, // nil policy
		fcfs(0, 1),                      // zero queues
		fcfs(1, -1),                     // negative capacity
		{Policy: assign.Naive(assign.FCFS, 0), QueuesPerLink: 1, Workers: -1}, // negative workers
	}
	for i, opts := range bad {
		_, runErr := m.Run(opts)
		_, exErr := ex.Run(opts)
		if runErr == nil || exErr == nil {
			t.Fatalf("bad options %d accepted: run=%v exec=%v", i, runErr, exErr)
		}
		if runErr.Error() != exErr.Error() {
			t.Errorf("bad options %d: error mismatch\nrun:  %v\nexec: %v", i, runErr, exErr)
		}
	}
	// A rejected config must not poison the Exec for later runs.
	res, err := ex.Run(fcfs(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("post-error run: %s", res.Outcome())
	}
}

// TestExecResultLifetime documents the aliasing contract: the Result
// of one Run is rewritten by the next, and a deep copy taken before
// the next Run stays stable.
func TestExecResultLifetime(t *testing.T) {
	m := mustCompile(t, chain(t, 4), topology.Linear(2))
	ex := m.NewExec()
	first, err := ex.Run(fcfs(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	cycles := first.Cycles
	words := append([]Word(nil), first.Received[0]...)
	if _, err := ex.Run(fcfs(2, 4)); err != nil {
		t.Fatal(err)
	}
	if cycles != first.Cycles {
		// Not an API promise — just documenting that the same Result
		// struct is rewritten in place.
		t.Logf("first.Cycles rewritten from %d to %d (expected aliasing)", cycles, first.Cycles)
	}
	again, err := ex.Run(fcfs(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if again.Cycles != cycles {
		t.Fatalf("same config re-run: %d cycles, want %d", again.Cycles, cycles)
	}
	if len(again.Received[0]) != len(words) {
		t.Fatalf("same config re-run: %d words, want %d", len(again.Received[0]), len(words))
	}
	for i, w := range again.Received[0] {
		if w != words[i] {
			t.Fatalf("word %d: %v, want %v", i, w, words[i])
		}
	}
}
