package machine

import (
	"math/rand"
	"slices"
	"testing"
)

// collect iterates b the canonical way and returns the members.
func collect(b *bitset) []int {
	var out []int
	for i := b.next(0); i >= 0; i = b.next(i + 1) {
		out = append(out, i)
	}
	return out
}

func TestBitsetBasics(t *testing.T) {
	var b bitset
	b.sizeTo(200)
	if b.len() != 0 || b.next(0) != -1 {
		t.Fatalf("fresh set not empty: len=%d next=%d", b.len(), b.next(0))
	}
	for _, i := range []int{0, 63, 64, 65, 127, 128, 199} {
		b.add(i)
	}
	b.add(64) // duplicate must not inflate the count
	if b.len() != 7 {
		t.Fatalf("len = %d, want 7", b.len())
	}
	want := []int{0, 63, 64, 65, 127, 128, 199}
	if got := collect(&b); !slices.Equal(got, want) {
		t.Fatalf("collect = %v, want %v", got, want)
	}
	if !b.has(127) || b.has(126) {
		t.Fatalf("has(127)=%v has(126)=%v", b.has(127), b.has(126))
	}
	b.drop(64)
	b.drop(64) // absent drop is a no-op
	if b.len() != 6 || b.has(64) {
		t.Fatalf("after drop: len=%d has(64)=%v", b.len(), b.has(64))
	}
	b.clearAll()
	if b.len() != 0 || b.next(0) != -1 {
		t.Fatalf("clearAll left members: len=%d", b.len())
	}
}

func TestBitsetNextFrom(t *testing.T) {
	var b bitset
	b.sizeTo(300)
	b.add(5)
	b.add(170)
	cases := []struct{ from, want int }{
		{-3, 5}, {0, 5}, {5, 5}, {6, 170}, {170, 170}, {171, -1}, {299, -1}, {1000, -1},
	}
	for _, c := range cases {
		if got := b.next(c.from); got != c.want {
			t.Errorf("next(%d) = %d, want %d", c.from, got, c.want)
		}
	}
}

func TestBitsetFill(t *testing.T) {
	var b bitset
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		b.sizeTo(n)
		b.fill(n)
		if b.len() != n {
			t.Fatalf("fill(%d): len = %d", n, b.len())
		}
		got := collect(&b)
		if len(got) != n {
			t.Fatalf("fill(%d): %d members", n, len(got))
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("fill(%d): member %d = %d", n, i, v)
			}
		}
	}
}

func TestBitsetCopyFrom(t *testing.T) {
	var a, b bitset
	a.sizeTo(128)
	a.add(3)
	a.add(90)
	b.sizeTo(128)
	b.add(7)
	b.copyFrom(&a)
	if !slices.Equal(collect(&b), []int{3, 90}) || b.len() != 2 {
		t.Fatalf("copyFrom mismatch: %v len=%d", collect(&b), b.len())
	}
	// The copy must be independent.
	b.drop(3)
	if !a.has(3) {
		t.Fatal("drop on copy mutated source")
	}
}

// TestBitsetVsMap drives a bitset and a map with the same random
// operation stream and checks membership, count, and ascending
// iteration agree throughout.
func TestBitsetVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 500
	var b bitset
	b.sizeTo(n)
	ref := map[int]bool{}
	for step := 0; step < 20000; step++ {
		i := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			b.add(i)
			ref[i] = true
		case 1:
			b.drop(i)
			delete(ref, i)
		default:
			if b.has(i) != ref[i] {
				t.Fatalf("step %d: has(%d) = %v, want %v", step, i, b.has(i), ref[i])
			}
		}
		if b.len() != len(ref) {
			t.Fatalf("step %d: len = %d, want %d", step, b.len(), len(ref))
		}
	}
	want := make([]int, 0, len(ref))
	for i := range ref {
		want = append(want, i)
	}
	slices.Sort(want)
	if got := collect(&b); !slices.Equal(got, want) {
		t.Fatalf("final members diverge: got %d members, want %d", len(got), len(want))
	}
}
