package machine

import (
	"strconv"

	"systolic/internal/assign"
	"systolic/internal/fault"
	"systolic/internal/linkmodel"
	"systolic/internal/model"
	"systolic/internal/queue"
	"systolic/internal/topology"
)

// This file is the ready-set scheduler: the per-cycle loop that
// replaces the reference engine's full scan over every cell, queue,
// and message with event-driven wake lists. The invariant it lives
// by is *exact equivalence* — same grants, same transfers, same
// pending-list orders, same cycle counts, same deadlock reports as
// the reference loop in internal/sim — achieved by revisiting, each
// cycle, precisely the entities whose observable state an event could
// have changed since their last visit:
//
//   - cells: a cell's front op only changes when the cell issues, so
//     first-hop queue requests are re-examined only for cells whose pc
//     advanced ("dirty cells", processed in cell-id order — the same
//     relative order as the reference full scan, which skips unchanged
//     cells as no-ops);
//   - reads and interior advances visit only messages with words
//     buffered on their route (the "transport" set: written > read);
//   - sender writes and capacity-0 rendezvous visit only messages
//     whose sender is parked at W(msg) with the first-hop queue bound
//     (the "writer" set, maintained by the grant and pc-advance
//     hooks);
//   - interior queue requests re-check only messages pushed into
//     since the last collect (the "reqCheck" set);
//   - queue releases re-check only messages with a departure event
//     this cycle (the "moved" set) — a queue is releasable exactly
//     when its last word departs;
//   - pools: Grant is re-invoked only when a pool's free count or
//     pending list changed since its previous invocation ("armed
//     pools", visited in ascending pool order). Policies are pure
//     functions of (free, pending, own grant history) — see the
//     assign.Policy contract — so skipped invocations are exactly the
//     ones that could neither grant nor mutate policy state;
//   - queues: cooldown ticks touch only queues with an armed
//     extension penalty ("cooling list").
//
// Every ready set is a word-packed bitset (bitset.go) whose
// TrailingZeros64 iteration visits members in ascending id order by
// construction, matching the reference engine's message-order scans
// with no per-cycle sorting; set membership is a superset of the
// entries the reference scan could act on, so skipped entries are
// exactly its no-ops.
//
// Since the deterministic-sharding refactor every ready-set phase is
// written against a shard: fn(s) visits only the entries shard s owns
// (a contiguous id range of the set's key space, or the messages
// whose contended cell lies in s's cell range) and defers every
// shared-structure effect to sinks[s], which the coordinator merges
// in ascending shard order after the phase (see parallel.go for the
// ownership and merge-order argument — id-range chunks concatenate
// to the full ascending order just as position chunks of a sorted
// list did). Workers=1 runs the same phases over a single shard, with
// one shortcut: in direct mode (exec.direct) the note*/shard sites
// apply each effect to the canonical structure in place and the
// merges are skipped — see the direct field's comment for the
// per-structure safety argument, and parallel.go's header for why
// this stays byte-identical.
//
// Blocked-cycle accounting is derived in closed form at the end of a
// run (per cell: cycles elapsed while unfinished minus ops issued)
// instead of a per-cycle scan; the result is bit-identical to the
// reference engine's counter.

// queueInst is one physical queue in a link's pool.
type queueInst struct {
	link topology.LinkID // real link, for reporting
	idx  int             // queue index within the link, for reporting
	slot int             // index in exec.queues, for the cooling list
	q    queue.Queue

	bound   bool
	msg     model.MessageID
	hop     int // index into the bound message's route
	cooling bool
}

// msgState tracks one message's transport progress. The per-hop
// slices are windows into the exec's flat arenas.
type msgState struct {
	queues    []*queueInst // per hop; nil until granted
	granted   []bool
	requested []bool
	departed  []int // words that have left hop i (last hop: read by receiver)
	written   int   // words pushed by the sender
	read      int   // words consumed by the receiver
}

// exec holds all mutable state of one run. Everything that does not
// escape into the Result is pooled on the Machine and reused across
// runs.
type exec struct {
	m              *Machine
	logic          CellLogic
	policy         assign.Policy
	flavor         int // 0 shared pools, 1 directional
	capacity       int
	queuesPerLink  int
	recordTimeline bool

	numPools int
	queues   []queueInst         // pool p occupies [p*Q : (p+1)*Q]
	pending  [][]model.MessageID // per pool, outstanding requests

	msgs     []msgState
	hopQ     []*queueInst // flat backing for msgState.queues
	hopFlags []bool       // flat backing for granted + requested
	hopInts  []int        // flat backing for departed

	pc         []int
	issued     []bool
	issuedList []int // cells issued this cycle, to clear cheaply
	finishedAt []int // per cell: cycle of its final issue
	remaining  int   // cells with ops left

	// The ready sets. Every one is coordinator-owned (see bitset.go's
	// concurrency contract): workers read them during a phase and
	// defer membership changes through their sink; only the
	// coordinator flips bits, at init, between phase barriers, and in
	// mergeSinks.

	// dirty holds the cells whose pc advanced since the last collect.
	dirty bitset
	// transport holds the messages with words buffered somewhere on
	// their route (written > read): the only messages reads and
	// interior advances can act on. Drained entries are flagged by
	// the read shards (sink.drops) and dropped by the coordinator
	// before the advance phase — the bitset analogue of the old
	// keep-flag compaction.
	transport bitset
	// writers holds the messages whose sender is parked at W(msg)
	// with the first-hop queue bound: the only candidates for sender
	// writes and capacity-0 rendezvous. Maintained by the grant and
	// pc-advance hooks; writerSnap snapshots it each cycle so
	// mid-cycle insertions target the real set. writeReady stays a
	// byte-flag array because write shards clear entries in place
	// mid-phase, and bits within one bitset word are not independent
	// memory locations.
	writers    bitset
	writerSnap bitset
	writeReady []bool
	// reqSet holds the messages pushed into since the last collect:
	// the only candidates for new interior-hop queue requests.
	reqSet bitset
	// movedSet holds the messages with a departure event this cycle:
	// the only candidates for queue release.
	movedSet bitset
	// armed holds the pools to visit next grantPhase. The grant phase
	// swaps it with armedScratch so pools re-armed while granting land
	// in the following visit's set, never the one being iterated.
	armed        bitset
	armedScratch bitset

	cooling []int // queue slots with a possibly-armed cooldown

	// reuse marks a caller-owned batch exec (see Exec in batch.go):
	// buffers that normally escape into the Result — received, the
	// arena, blocked counts, queue stats, the deadlock report — are
	// retained and recycled across runs instead of freshly allocated,
	// because the batch contract says a Result is only valid until the
	// next Run on the same Exec. Pooled execs (Machine.Run) keep
	// reuse false: their Results outlive them.
	reuse        bool
	blockedBuf   []int
	qstatBuf     []QueueStat
	cellBlockBuf []CellBlock

	received [][]Word // escapes into Result; fresh per run unless reuse
	arena    []Word   // backing store for all received words; fresh per run unless reuse

	ctx assign.Context // per-run policy context; fields are shared read-only views

	// faults holds the run's lowered fault tables; nil on fault-free
	// runs, so every hot-path gate is a single pointer test. The
	// tables are immutable, making concurrent shard reads safe. Gates
	// sit at the four operation-issue sites (reads, interior advances,
	// sender writes, rendezvous), each checked *after* every fault-free
	// readiness criterion, so the gated-op count — and therefore every
	// downstream byte — matches the reference engine's full scan.
	faults *fault.Lowered

	// lm holds the run's lowered link-timing tables; nil under unit
	// latency, so every hot-path gate is a single pointer test.
	// Occupancy state: lmNextFree[l] is the first cycle link l is free
	// again (words cross only when now ≥ lmNextFree[l]); lmTally[l]
	// counts the words that crossed l this cycle; lmDirty lists the
	// links with a non-zero tally; lmBusyMax is the largest nextFree
	// ever set, so a no-event cycle at now ≥ lmBusyMax cannot be
	// waiting out a busy window. Gates sit immediately before the
	// fault link gates at the three link-crossing sites (interior
	// advances, sender writes, rendezvous) and are pure reads during a
	// phase; tallies ride the shard sinks (increments commute) and the
	// coordinator folds them — and recomputes nextFree — at end of
	// cycle (lmEndCycle), so every worker count produces the same
	// bytes. A busy-link stall is timing, not degradation: it does not
	// count toward GatedOps.
	lm         *linkmodel.Lowered
	lmNextFree []int
	lmTally    []int32
	lmDirty    []int32
	lmBusyMax  int

	// Sharded-execution state (see parallel.go). workers is the shard
	// count (1 = single-threaded); recvShard/sendShard map each message
	// to the shard owning its receiver/sender cell (only filled when
	// workers > 1); gang is the run-scoped worker pool (nil when
	// workers == 1). The fn* fields hold the phase closures, bound once
	// per exec so dispatch never allocates.
	// direct (workers == 1) short-circuits the sink machinery: with a
	// single shard there is no barrier for a deferred effect to cross,
	// and every sink merge is the identity reordering — the coordinator
	// is the worker, so each note* site applies its effect in place and
	// the per-phase merges are skipped. The applied order is exactly
	// the one-sink merge order (append order), so results stay
	// byte-identical to sharded execution; the cross-worker-count
	// equivalence suites enforce this.
	direct      bool
	workers     int
	recvShard   []int32
	sendShard   []int32
	sinks       []sink
	gang        *gang
	hasInterior bool // any route longer than one hop
	cancel      <-chan struct{}
	cancelled   bool
	fnFirstHop  func(int)
	fnInterior  func(int)
	fnReads     func(int)
	fnAdvances  func(int)
	fnWrites    func(int)
	fnRelease   func(int)

	res   Result
	stats Stats
	now   int
	moved bool // any event this cycle
}

// deliver appends a received word. Each message's slice is a window
// into one per-run arena, installed on first delivery (so messages
// that never deliver stay nil, as callers expect) and capped at the
// declared word count: the whole run's received output costs one
// allocation instead of one per message.
//
//sysvet:hotpath
func (e *exec) deliver(id model.MessageID, w Word) {
	if e.received[id] == nil {
		off, end := e.m.wordOff[id], e.m.wordOff[id+1]
		e.received[id] = e.arena[off:off:end]
	}
	e.received[id] = append(e.received[id], w)
}

// grow returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers clear what they need.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// init sizes the exec for one run, reusing pooled backing arrays.
func (e *exec) init(m *Machine, opts *ExecOptions, tbl *poolTable, flavor int, flt *fault.Lowered, lm *linkmodel.Lowered) {
	e.m = m
	e.logic = opts.Logic
	e.policy = opts.Policy
	e.flavor = flavor
	e.capacity = opts.Capacity
	e.queuesPerLink = opts.QueuesPerLink
	e.recordTimeline = opts.RecordTimeline
	e.faults = flt
	e.lm = lm
	e.lmBusyMax = 0
	if lm != nil {
		n := len(m.links)
		e.lmNextFree = grow(e.lmNextFree, n)
		e.lmTally = grow(e.lmTally, n)
		clear(e.lmNextFree)
		clear(e.lmTally)
		e.lmDirty = e.lmDirty[:0]
	}

	q := opts.QueuesPerLink
	e.numPools = tbl.numPools
	e.queues = grow(e.queues, e.numPools*q)
	for i := range e.queues {
		qi := &e.queues[i]
		pool := i / q
		realLink := topology.LinkID(pool)
		qi.idx = i % q
		if flavor == 1 {
			realLink = topology.LinkID(pool / 2)
			// A link's two pools are contiguous (forward 0..Q-1,
			// reverse Q..2Q-1), keeping (link, idx) unique in
			// timelines and stats.
			qi.idx = i % (2 * q)
		}
		qi.link = realLink
		qi.slot = i
		qi.bound = false
		qi.msg = 0
		qi.hop = 0
		qi.cooling = false
		qi.q.Init(opts.Capacity, opts.ExtCapacity, opts.ExtPenalty)
	}
	e.pending = grow(e.pending, e.numPools)
	for i := range e.pending {
		e.pending[i] = e.pending[i][:0]
	}

	totalHops := m.totalHops
	e.hopQ = grow(e.hopQ, totalHops)
	e.hopFlags = grow(e.hopFlags, 2*totalHops)
	e.hopInts = grow(e.hopInts, totalHops)
	clear(e.hopQ)
	clear(e.hopFlags)
	clear(e.hopInts)
	msgs := m.prog.NumMessages()
	e.msgs = grow(e.msgs, msgs)
	for id := range e.msgs {
		off, end := m.hopOff[id], m.hopOff[id+1]
		e.msgs[id] = msgState{
			queues:    e.hopQ[off:end:end],
			granted:   e.hopFlags[off:end:end],
			requested: e.hopFlags[int32(totalHops)+off : int32(totalHops)+end : int32(totalHops)+end],
			departed:  e.hopInts[off:end:end],
		}
	}

	cells := m.prog.NumCells()
	e.pc = grow(e.pc, cells)
	e.issued = grow(e.issued, cells)
	e.finishedAt = grow(e.finishedAt, cells)
	clear(e.pc)
	clear(e.issued)
	clear(e.finishedAt)
	e.issuedList = e.issuedList[:0]
	e.remaining = m.codeCells

	// Every cell and every pool starts "dirty": cycle 0 of the
	// reference engine scans them all, and so do we — once.
	e.dirty.sizeTo(cells)
	e.dirty.fill(cells)
	e.writeReady = grow(e.writeReady, msgs)
	clear(e.writeReady)
	e.transport.sizeTo(msgs)
	e.writers.sizeTo(msgs)
	e.writerSnap.sizeTo(msgs)
	e.reqSet.sizeTo(msgs)
	e.movedSet.sizeTo(msgs)
	e.armed.sizeTo(e.numPools)
	e.armed.fill(e.numPools)
	e.armedScratch.sizeTo(e.numPools)
	e.cooling = e.cooling[:0]

	// Shard layout. The worker count is clamped to the cell count (an
	// empty shard can own nothing) and to maxWorkers; the clamp is
	// invisible in the Result because every worker count produces the
	// same bytes.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > cells && cells > 0 {
		workers = cells
	}
	e.workers = workers
	e.direct = workers == 1
	e.sinks = grow(e.sinks, workers)
	for i := range e.sinks {
		e.sinks[i].reset()
	}
	if workers > 1 {
		e.recvShard = grow(e.recvShard, msgs)
		e.sendShard = grow(e.sendShard, msgs)
		for id := 0; id < msgs; id++ {
			e.recvShard[id] = int32(shardOf(int(m.receiver[id]), cells, workers))
			e.sendShard[id] = int32(shardOf(int(m.sender[id]), cells, workers))
		}
	}
	e.gang = nil // spawned lazily by the first fanout that needs it
	e.hasInterior = m.maxRouteLen > 1
	e.cancel = nil
	e.cancelled = false
	if opts.Context != nil {
		e.cancel = opts.Context.Done()
	}
	if e.fnFirstHop == nil {
		e.fnFirstHop = e.collectFirstHopShard
		e.fnInterior = e.collectInteriorShard
		e.fnReads = e.readShard
		e.fnAdvances = e.advanceShard
		e.fnWrites = e.writeShard
		e.fnRelease = e.releaseShard
	}

	if e.reuse {
		// Arena contents need no clearing: deliver re-installs each
		// message's window empty and only appended words are exposed.
		e.received = grow(e.received, msgs)
		clear(e.received)
		e.arena = grow(e.arena, m.totalWords)
	} else {
		e.received = make([][]Word, msgs)
		e.arena = make([]Word, m.totalWords)
	}
	e.res = Result{}
	e.stats = Stats{}
	e.now = 0
	e.moved = false
}

// release clears every reference that escaped into the returned
// Result (and the per-run inputs) before the exec returns to the
// machine's pool. It also stops a still-live gang: run() tears the
// gang down on every exit path, but a run that never starts — a
// Policy.Setup failure after init — would otherwise strand the
// workers forever when the pooled exec is reused or dropped.
func (e *exec) release() {
	if e.gang != nil {
		e.gang.stop()
		e.gang = nil
	}
	e.m = nil
	e.logic = nil
	e.policy = nil
	e.received = nil
	e.arena = nil
	e.cancel = nil
	e.faults = nil
	e.lm = nil
	e.ctx = assign.Context{}
	e.res = Result{}
	e.stats = Stats{}
}

// owns reports whether shard s owns cell c. With one worker the
// shard maps are not built and shard 0 owns everything.
//
//sysvet:hotpath
func (e *exec) owns(s int, shard []int32, id model.MessageID) bool {
	return e.workers == 1 || int(shard[id]) == s
}

// poolOf returns the pool serving hop i of message id under the
// run's regime.
//
//sysvet:hotpath
func (e *exec) poolOf(id model.MessageID, hop int) int {
	return int(e.m.hops[e.m.hopOff[id]+int32(hop)].pool[e.flavor])
}

// hopLink returns the physical link of hop i of message id.
//
//sysvet:hotpath
func (e *exec) hopLink(id model.MessageID, hop int) topology.LinkID {
	return e.m.hops[e.m.hopOff[id]+int32(hop)].link
}

// linkFree reports whether link lk can carry words this cycle, i.e.
// it is not inside a busy window from an earlier cycle's traffic.
// Callers gate with e.lm != nil so the unit-latency path never loads
// the table.
//
//sysvet:hotpath
func (e *exec) linkFree(lk topology.LinkID) bool {
	return e.now >= e.lmNextFree[lk]
}

// noteLinkHit tallies one word crossing link lk this cycle. Direct
// mode folds into coordinator state; sharded mode defers through the
// sink (increments commute, so merge order cannot be observed).
// Callers gate with e.lm != nil.
//
//sysvet:hotpath
func (e *exec) noteLinkHit(lk topology.LinkID, sk *sink) {
	if e.direct {
		if e.lmTally[lk] == 0 {
			e.lmDirty = append(e.lmDirty, int32(lk))
		}
		e.lmTally[lk]++
		return
	}
	sk.linkHits = append(sk.linkHits, int32(lk))
}

// lmEndCycle closes the cycle's link occupancy: every link with
// traffic this cycle gets a busy window from the model
// (nextFree = now + Busy(link, tally)), and the tallies reset.
// Coordinator-only, after the release phase — the reference engine
// runs the identical fold at the identical point.
//
//sysvet:hotpath
func (e *exec) lmEndCycle() {
	for _, l := range e.lmDirty {
		nf := e.now + e.lm.Busy(topology.LinkID(l), e.lmTally[l])
		e.lmNextFree[l] = nf
		if nf > e.lmBusyMax {
			e.lmBusyMax = nf
		}
		e.lmTally[l] = 0
	}
	e.lmDirty = e.lmDirty[:0]
}

// noteGated counts one operation held back by a fault gate.
//
//sysvet:hotpath
func (e *exec) noteGated(sk *sink) {
	if e.direct {
		e.stats.GatedOps++
		return
	}
	sk.gated++
}

// pool returns the queue instances of pool p.
//
//sysvet:hotpath
func (e *exec) pool(p int) []queueInst {
	return e.queues[p*e.queuesPerLink : (p+1)*e.queuesPerLink]
}

// hopOn returns the route hop of msg served by pool, or -1.
//
//sysvet:hotpath
func (e *exec) hopOn(pool int, msg model.MessageID) int {
	hops := e.m.msgHops(msg)
	for i := range hops {
		if int(hops[i].pool[e.flavor]) == pool {
			return i
		}
	}
	return -1
}

// armPool re-arms a pool immediately. Coordinator-only (grantPhase);
// sharded phases defer arming through their sink instead.
//
//sysvet:hotpath
func (e *exec) armPool(p int) {
	e.armed.add(p)
}

// noteTransport records that id now has buffered words. Reading the
// transport set is safe mid-phase (nothing mutates it inside a
// phase, and the drop pass ran before this phase); the insertion is
// deferred to the merge. A sender writes at most one word per cycle,
// so the sink sees each id at most once.
//
//sysvet:hotpath
func (e *exec) noteTransport(id model.MessageID, sk *sink) {
	if e.transport.has(int(id)) {
		return
	}
	if e.direct {
		// Safe in place: the write phase is the only caller, and the
		// transport set's iterations (reads, advances) ran earlier in
		// the cycle.
		e.transport.add(int(id))
		return
	}
	sk.transport = append(sk.transport, id)
}

// noteWriter records that id's sender is parked at W(id) with the
// first-hop queue bound. Called from the grant hook and the
// pc-advance hook, which together cover both orders the two
// conditions can become true in.
//
//sysvet:hotpath
func (e *exec) noteWriter(id model.MessageID, sk *sink) {
	if e.writeReady[id] {
		return
	}
	e.writeReady[id] = true
	if e.direct {
		// Safe in place: the writer snapshot for this cycle was taken
		// before any phase that can reach here, so the insertion lands
		// in next cycle's snapshot exactly as the merged path's would.
		e.writers.add(int(id))
		return
	}
	sk.writers = append(sk.writers, id)
}

// noteWriterNow is noteWriter for the coordinator-only grant phase,
// which must insert immediately: the writer snapshot taken at the top
// of the same cycle's transfer phase has to see grants made this
// cycle, exactly as the reference engine's in-line insertion does.
//
//sysvet:hotpath
func (e *exec) noteWriterNow(id model.MessageID) {
	if !e.writeReady[id] {
		e.writeReady[id] = true
		e.writers.add(int(id))
	}
}

// noteReqCheck records a push into one of id's queues: its next hop
// may now be requestable. On machines where every route is a single
// hop there are no interior hops to request, so the set stays empty
// and the interior phases are skipped outright. The merge dedups via
// the bitset; the tail check only folds the back-to-back repeats the
// interior advance loop produces for one multi-hop message.
//
//sysvet:hotpath
func (e *exec) noteReqCheck(id model.MessageID, sk *sink) {
	if !e.hasInterior {
		return
	}
	if e.direct {
		e.reqSet.add(int(id)) // idempotent; no dedup needed
		return
	}
	if n := len(sk.reqCheck); n > 0 && sk.reqCheck[n-1] == id {
		return
	}
	sk.reqCheck = append(sk.reqCheck, id)
}

// noteMoved records a departure event: one of id's queues may now be
// releasable. Dedup happens at the bitset merge, with the same tail
// check as noteReqCheck for intra-message repeats.
//
//sysvet:hotpath
func (e *exec) noteMoved(id model.MessageID, sk *sink) {
	if e.direct {
		e.movedSet.add(int(id)) // idempotent; no dedup needed
		return
	}
	if n := len(sk.moved); n > 0 && sk.moved[n-1] == id {
		return
	}
	sk.moved = append(sk.moved, id)
}

// noteEvent records per-cycle progress: the cycle saw an event (so the
// run is not deadlocked) and words hop traversals. Direct mode folds
// both straight into coordinator state; otherwise the shard sink
// accumulates and mergeSinks folds.
//
//sysvet:hotpath
func (e *exec) noteEvent(sk *sink, words int) {
	if e.direct {
		e.moved = true
		e.stats.WordsMoved += words
		return
	}
	sk.anyEvent = true
	sk.wordsMoved += words
}

// noteCooling registers a queue whose Pop may have armed an
// extension-access cooldown.
//
//sysvet:hotpath
func (e *exec) noteCooling(qi *queueInst, sk *sink) {
	if !qi.cooling && qi.q.Cooling() {
		qi.cooling = true
		if e.direct {
			e.cooling = append(e.cooling, qi.slot)
			return
		}
		sk.cooling = append(sk.cooling, qi.slot)
	}
}

// markCellDirty records a cell whose pc advanced. A cell issues at
// most once per cycle (the issued flag guards every advancePC call
// site), so the sink sees each cell at most once and the bitset
// merge needs no worker-side flag.
//
//sysvet:hotpath
func (e *exec) markCellDirty(c int, sk *sink) {
	if e.direct {
		e.dirty.add(c) // next collect reads it; this cycle's already ran
		return
	}
	sk.dirty = append(sk.dirty, c)
}

// advancePC issues cell c's front op: one op per cell per cycle. When
// the new front op is a write on an already-granted message, the
// message joins the writer set directly; otherwise the dirty-cell
// pass handles any first-hop queue request. Only c's owning shard may
// call this.
//
//sysvet:hotpath
func (e *exec) advancePC(c int, sk *sink) {
	e.pc[c]++
	e.issued[c] = true
	if e.direct {
		e.issuedList = append(e.issuedList, c)
	} else {
		sk.issued = append(sk.issued, c)
	}
	if e.pc[c] >= len(e.m.code(c)) {
		e.finishedAt[c] = e.now
		if e.direct {
			e.remaining--
		} else {
			sk.remainingDelta--
		}
		return
	}
	e.markCellDirty(c, sk)
	if op := e.m.code(c)[e.pc[c]]; op.Kind == model.Write {
		ms := &e.msgs[op.Msg]
		// Reading another message's queue-pointer table is safe here:
		// bindings only change in the grant and release phases, which
		// never overlap a phase that advances program counters.
		if len(ms.queues) > 0 && ms.queues[0] != nil {
			e.noteWriter(op.Msg, sk)
		}
	}
}

// run executes the scheduler loop. The cycle structure — tick,
// collect, grant, transfer, release, deadlock check — is the
// reference engine's, with each phase visiting only its ready set.
// The gang (when present) is torn down on every exit path, so a
// pooled exec never strands goroutines.
func (e *exec) run(maxCycles int) {
	defer func() {
		if e.gang != nil {
			e.gang.stop()
			e.gang = nil
		}
	}()
	for e.now = 0; e.now < maxCycles; e.now++ {
		if e.remaining == 0 {
			break
		}
		if e.cancel != nil {
			select {
			case <-e.cancel:
				e.cancelled = true
				return
			default:
			}
		}
		e.moved = false
		e.tickCooling()
		e.collectRequests()
		e.grantPhase()
		e.cellAndTransferPhase()
		e.releasePhase()
		if e.lm != nil {
			e.lmEndCycle()
		}
		if !e.moved && !e.anyCooling() && (e.faults == nil || e.faults.AllPeriodicOpen(e.now)) &&
			(e.lm == nil || e.now >= e.lmBusyMax) {
			// A no-event cycle proves deadlock only if every periodic
			// fault gate was open: a closed gate may be the sole reason
			// nothing moved, and the system can progress once it
			// reopens. Dead cells and severed links never reopen, so
			// they are rightly excluded — work stalled on them is a
			// genuine, deterministic deadlock. Likewise a link still
			// inside a busy window (now < lmBusyMax) may be the sole
			// stall cause; every window is finite, so waiting it out
			// keeps deadlock detection exact.
			e.res.Deadlocked = true
			e.res.Blocked = e.blockedReport()
			break
		}
	}
}

// tickCooling advances extension-penalty cooldowns, compacting
// entries whose cooldown has expired.
//
//sysvet:hotpath
func (e *exec) tickCooling() {
	w := 0
	for _, slot := range e.cooling {
		qi := &e.queues[slot]
		if qi.q.Cooling() {
			qi.q.Tick()
			e.cooling[w] = slot
			w++
		} else {
			qi.cooling = false
		}
	}
	e.cooling = e.cooling[:w]
}

// anyCooling reports whether some queue is waiting out an
// extension-access penalty; such cycles are latency, not deadlock.
//
//sysvet:hotpath
func (e *exec) anyCooling() bool {
	for _, slot := range e.cooling {
		if e.queues[slot].q.Cooling() {
			return true
		}
	}
	return false
}

// collectRequests registers queue requests: a message asks for its
// first hop when its sender reaches a W on it, and for hop i>0 when
// its header is buffered at the cell feeding that hop (§5). First-hop
// checks run over dirty cells in cell order, then interior checks
// over live messages in message order — the same relative append
// order the reference full scan produces. Both sub-phases split the
// key space into contiguous id ranges, one per shard; bitset
// iteration is ascending within a range, so the shard-order merge
// restores the full ascending append order for any worker count.
//
//sysvet:hotpath
func (e *exec) collectRequests() {
	e.fanout(e.dirty.len(), e.fnFirstHop)
	if !e.direct {
		e.mergeCollect()
	}
	e.dirty.clearAll()

	if e.hasInterior {
		e.fanout(e.reqSet.len(), e.fnInterior)
		if !e.direct {
			e.mergeCollect()
		}
		e.reqSet.clearAll()
	}
}

// mergeCollect drains the collect shards' sinks, which only ever
// carry pending requests; the requested pool arms as a consequence of
// the request itself. A dedicated merge spares the collect phases —
// two of the cycle's barriers — the full 11-field sink sweep.
//
//sysvet:hotpath
func (e *exec) mergeCollect() {
	for s := range e.sinks {
		sk := &e.sinks[s]
		for _, pr := range sk.pending {
			e.pending[pr.pool] = append(e.pending[pr.pool], pr.msg)
			e.armed.add(pr.pool)
		}
		sk.pending = sk.pending[:0]
	}
}

// collectFirstHopShard checks shard s's id range of the dirty set for
// senders parked at an unrequested W. Every touched flag
// (requested[0]) belongs to the range's own messages — a message's
// first-hop request can only come from its one sender. The set
// itself is read-only here; the coordinator clears it wholesale once
// every shard has consumed its range.
//
//sysvet:hotpath
func (e *exec) collectFirstHopShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.pc), e.workers, s)
	for c := e.dirty.next(lo); c >= 0 && c < hi; c = e.dirty.next(c + 1) {
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Write {
			continue
		}
		ms := &e.msgs[op.Msg]
		if len(ms.queues) > 0 && !ms.requested[0] {
			ms.requested[0] = true
			pool := e.poolOf(op.Msg, 0)
			if e.direct {
				e.pending[pool] = append(e.pending[pool], op.Msg)
				e.armed.add(pool)
			} else {
				sk.pending = append(sk.pending, pendReq{pool: pool, msg: op.Msg})
			}
		}
	}
}

// collectInteriorShard checks shard s's id range of the reqSet:
// only messages pushed into since the last collect can have a newly
// non-empty queue; requested flags make re-checks of older non-empty
// queues no-ops, so this subset in ascending order appends to the
// pending lists exactly as the full message scan did.
//
//sysvet:hotpath
func (e *exec) collectInteriorShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.msgs), e.workers, s)
	for id := e.reqSet.next(lo); id >= 0 && id < hi; id = e.reqSet.next(id + 1) {
		ms := &e.msgs[id]
		for hop := 1; hop < len(ms.queues); hop++ {
			if ms.requested[hop] || ms.queues[hop-1] == nil {
				continue
			}
			if ms.queues[hop-1].q.Len() > 0 {
				ms.requested[hop] = true
				pool := e.poolOf(model.MessageID(id), hop)
				if e.direct {
					e.pending[pool] = append(e.pending[pool], model.MessageID(id))
					e.armed.add(pool)
				} else {
					sk.pending = append(sk.pending, pendReq{pool: pool, msg: model.MessageID(id)})
				}
			}
		}
	}
}

// grantPhase invokes the policy for every armed pool in ascending
// pool order. A pool re-arms whenever its free count or pending list
// changes, so every invocation the reference engine's per-cycle sweep
// would have made that could matter is made here too. The phase runs
// entirely on the coordinator: policy instances are stateful and
// their call order is part of the observable behavior.
//
//sysvet:hotpath
func (e *exec) grantPhase() {
	// Swap the armed set with the (empty) scratch set: pools re-armed
	// while granting — by armPool below or a shard sink next phase —
	// land in the fresh set and are visited next grantPhase, never
	// the one being iterated.
	e.armed, e.armedScratch = e.armedScratch, e.armed
	for pid := e.armedScratch.next(0); pid >= 0; pid = e.armedScratch.next(pid + 1) {
		pool := e.pool(pid)
		free := 0
		for i := range pool {
			if !pool[i].bound {
				free++
			}
		}
		grants := e.policy.Grant(e.now, topology.LinkID(pid), free, e.pending[pid])
		for _, msg := range grants {
			if free == 0 {
				break // policy over-granted; ignore the excess
			}
			hop := e.hopOn(pid, msg)
			if hop < 0 || e.msgs[msg].granted[hop] {
				continue
			}
			var qi *queueInst
			for i := range pool {
				if !pool[i].bound {
					qi = &pool[i]
					break
				}
			}
			qi.bound = true
			qi.msg = msg
			qi.hop = hop
			ms := &e.msgs[msg]
			ms.granted[hop] = true
			ms.queues[hop] = qi
			free--
			e.moved = true
			e.stats.Grants++
			e.removePending(pid, msg)
			e.armPool(pid)
			if hop == 0 {
				// The sender may already be parked at W(msg) waiting
				// for exactly this grant.
				c := int(e.m.sender[msg])
				code := e.m.code(c)
				if e.pc[c] < len(code) {
					if op := code[e.pc[c]]; op.Kind == model.Write && op.Msg == msg {
						e.noteWriterNow(msg)
					}
				}
			}
			if e.recordTimeline {
				// Record the real link (qi.link), not the pool id:
				// under DirectionalPools pool ids are synthetic and
				// release events already use the real link.
				e.res.Timeline = append(e.res.Timeline, BindEvent{Cycle: e.now, Link: qi.link, QueueIdx: qi.idx, Msg: msg, Bound: true})
			}
		}
	}
	e.armedScratch.clearAll()
}

//sysvet:hotpath
func (e *exec) removePending(pool int, msg model.MessageID) {
	lst := e.pending[pool]
	for i, m := range lst {
		if m == msg {
			e.pending[pool] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// cellAndTransferPhase performs, in order: receiver reads, interior
// hop advances (swept from the receiver side so a pipeline advances
// one hop everywhere in a single cycle), rendezvous transfers for
// capacity-0 latches, and sender writes. Each cell issues at most one
// operation per cycle. All four sub-phases iterate live messages in
// ascending id order; a cell's front op names exactly one message, so
// this visits the same actions as the reference engine's cell-order
// scans. Reads are sharded by receiver cell and writes by sender cell
// (the issue slot is the only cross-message contention point, and it
// is always intra-shard); interior advances, which are fully
// message-local, chunk by position. One merge at the end covers all
// four sub-phases: nothing they defer is consumed before the release
// phase.
//
//sysvet:hotpath
func (e *exec) cellAndTransferPhase() {
	for _, c := range e.issuedList {
		e.issued[c] = false
	}
	e.issuedList = e.issuedList[:0]
	// Snapshot (and compact) the writer set up front: entries added
	// mid-cycle belong to cells that have already issued, so deferring
	// them to the next cycle is exactly what the issued-flag check in
	// the full-scan engine did. Entries whose writeReady flag was
	// cleared by a write shard last cycle are dropped here, on the
	// coordinator — the one place the writers bitset may be mutated.
	for id := e.writers.next(0); id >= 0; id = e.writers.next(id + 1) {
		if !e.writeReady[id] {
			e.writers.drop(id)
		}
	}
	e.writerSnap.copyFrom(&e.writers)

	// 1. Receiver reads from buffered last-hop queues, sharded by
	// receiver cell. Workers flag drained entries in their drop
	// sinks; the coordinator removes them afterwards, before the
	// advance phase iterates the set.
	e.fanout(e.transport.len(), e.fnReads)
	if !e.direct {
		for s := range e.sinks {
			sk := &e.sinks[s]
			for _, id := range sk.drops {
				e.transport.drop(int(id))
			}
			sk.drops = sk.drops[:0]
		}
	}

	// 2. Interior advances, last hop toward receiver first. Single-hop
	// machines have no interior queues to advance.
	if e.hasInterior {
		e.fanout(e.transport.len(), e.fnAdvances)
	}

	// 3. Capacity-0 rendezvous: single-hop messages hand a word
	//    directly from a writing sender to a reading receiver. Runs on
	//    the coordinator (it issues at two cells at once).
	if e.capacity == 0 {
		e.rendezvous(&e.sinks[0])
	}

	// 4. Sender writes into first-hop queues, sharded by sender cell.
	e.fanout(e.writerSnap.len(), e.fnWrites)

	if !e.direct {
		e.mergeSinks()
	}
}

// readShard serves receiver reads for the transport entries shard s
// owns (messages whose receiver cell is in s's range). Only messages
// with buffered words can serve a read; fully drained entries are
// flagged for removal via the drop sink (only the coordinator may
// mutate the set).
//
//sysvet:hotpath
func (e *exec) readShard(s int) {
	sk := &e.sinks[s]
	for i := e.transport.next(0); i >= 0; i = e.transport.next(i + 1) {
		id := model.MessageID(i)
		if !e.owns(s, e.recvShard, id) {
			continue
		}
		ms := &e.msgs[id]
		if ms.written == ms.read {
			if e.direct {
				// Dropping the current member mid-iteration is safe,
				// and every later sub-phase must see the post-drop set.
				e.transport.drop(i)
			} else {
				sk.drops = append(sk.drops, id)
			}
			continue
		}
		last := len(ms.queues) - 1
		if last < 0 || ms.queues[last] == nil {
			continue
		}
		cell := e.m.receiver[id]
		c := int(cell)
		code := e.m.code(c)
		if e.issued[c] || e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Read || op.Msg != id {
			continue
		}
		qi := ms.queues[last]
		if !qi.q.FrontReady() {
			continue
		}
		if e.faults != nil && !e.faults.CellOpen(cell, e.now) {
			e.noteGated(sk)
			continue
		}
		word := qi.q.Pop()
		e.noteCooling(qi, sk)
		e.logic.OnRead(cell, id, ms.read, word)
		e.deliver(id, word)
		ms.read++
		ms.departed[last]++
		e.noteMoved(id, sk)
		e.advancePC(c, sk)
		e.noteEvent(sk, 1)
	}
}

// advanceShard moves words between interior queues for shard s's id
// range of the transport set. Every touched queue is bound to the
// range's own message, so shards never contend.
//
//sysvet:hotpath
func (e *exec) advanceShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.msgs), e.workers, s)
	for i := e.transport.next(lo); i >= 0 && i < hi; i = e.transport.next(i + 1) {
		id := model.MessageID(i)
		ms := &e.msgs[id]
		for hop := len(ms.queues) - 2; hop >= 0; hop-- {
			src, dst := ms.queues[hop], ms.queues[hop+1]
			if src == nil || dst == nil {
				continue
			}
			if src.q.FrontReady() && dst.q.CanAccept() {
				if e.lm != nil && !e.linkFree(e.hopLink(id, hop+1)) {
					// Busy-link stalls are timing, not degradation: no
					// GatedOps.
					continue
				}
				if e.faults != nil && !e.faults.LinkOpen(e.hopLink(id, hop+1), e.now) {
					e.noteGated(sk)
					continue
				}
				dst.q.Push(src.q.Pop())
				if e.lm != nil {
					e.noteLinkHit(e.hopLink(id, hop+1), sk)
				}
				e.noteCooling(src, sk)
				ms.departed[hop]++
				e.noteMoved(id, sk)
				e.noteReqCheck(id, sk)
				e.noteEvent(sk, 1)
			}
		}
	}
}

// writeShard pushes sender words into first-hop queues for the
// writer-snapshot entries shard s owns (messages whose sender cell is
// in s's range).
//
//sysvet:hotpath
func (e *exec) writeShard(s int) {
	sk := &e.sinks[s]
	for i := e.writerSnap.next(0); i >= 0; i = e.writerSnap.next(i + 1) {
		id := model.MessageID(i)
		if !e.owns(s, e.sendShard, id) {
			continue
		}
		if !e.writeReady[id] {
			continue
		}
		ms := &e.msgs[id]
		if len(ms.queues) == 0 || ms.queues[0] == nil {
			e.writeReady[id] = false
			continue
		}
		cell := e.m.sender[id]
		c := int(cell)
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			e.writeReady[id] = false
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Write || op.Msg != id {
			e.writeReady[id] = false
			continue
		}
		if e.issued[c] {
			continue
		}
		qi := ms.queues[0]
		if !qi.q.CanAccept() {
			continue
		}
		if e.lm != nil && !e.linkFree(qi.link) {
			continue
		}
		if e.faults != nil && (!e.faults.CellOpen(cell, e.now) || !e.faults.LinkOpen(qi.link, e.now)) {
			e.noteGated(sk)
			continue
		}
		qi.q.Push(e.logic.Produce(cell, id, ms.written))
		if e.lm != nil {
			e.noteLinkHit(qi.link, sk)
		}
		ms.written++
		e.noteTransport(id, sk)
		e.noteReqCheck(id, sk)
		e.advancePC(c, sk)
		e.noteEvent(sk, 0)
	}
}

// rendezvous matches W(m) senders with R(m) receivers over bound
// capacity-0 latches: the word passes through without ever being
// buffered, the paper's "queues are just latches" regime.
//
//sysvet:hotpath
func (e *exec) rendezvous(sk *sink) {
	// A rendezvous needs the sender parked at W(id) over a bound
	// latch — precisely the writer set (capacity 0 admits only
	// single-hop routes, so every entry here is a latch candidate).
	for i := e.writerSnap.next(0); i >= 0; i = e.writerSnap.next(i + 1) {
		id := model.MessageID(i)
		if !e.writeReady[id] {
			continue
		}
		ms := &e.msgs[id]
		if len(ms.queues) != 1 || ms.queues[0] == nil {
			continue
		}
		sc, rc := int(e.m.sender[id]), int(e.m.receiver[id])
		if e.issued[sc] || e.issued[rc] {
			continue
		}
		sCode, rCode := e.m.code(sc), e.m.code(rc)
		if e.pc[sc] >= len(sCode) || e.pc[rc] >= len(rCode) {
			continue
		}
		sOp, rOp := sCode[e.pc[sc]], rCode[e.pc[rc]]
		if sOp.Kind != model.Write || sOp.Msg != id {
			continue
		}
		if rOp.Kind != model.Read || rOp.Msg != id {
			continue
		}
		if e.lm != nil && !e.linkFree(ms.queues[0].link) {
			continue
		}
		if e.faults != nil && (!e.faults.CellOpen(e.m.sender[id], e.now) ||
			!e.faults.CellOpen(e.m.receiver[id], e.now) ||
			!e.faults.LinkOpen(ms.queues[0].link, e.now)) {
			e.noteGated(sk)
			continue
		}
		w := e.logic.Produce(e.m.sender[id], id, ms.written)
		e.logic.OnRead(e.m.receiver[id], id, ms.read, w)
		e.deliver(id, w)
		if e.lm != nil {
			e.noteLinkHit(ms.queues[0].link, sk)
		}
		ms.written++
		ms.read++
		ms.departed[0]++
		e.noteMoved(id, sk)
		e.advancePC(sc, sk)
		e.advancePC(rc, sk)
		e.noteEvent(sk, 1)
	}
}

// releasePhase frees queues whose message has fully passed (§2.3: a
// queue may be reassigned only after the current message's last word
// has passed it) and retires messages with nothing left bound. The
// moved set is chunked by message-id range and merged in shard
// order, so release-side timeline events keep their ascending-message
// order for any worker count.
//
//sysvet:hotpath
func (e *exec) releasePhase() {
	e.fanout(e.movedSet.len(), e.fnRelease)
	if !e.direct {
		e.mergeRelease()
	}
	e.movedSet.clearAll()
}

// releaseShard frees the releasable queues of shard s's id range of
// the moved set. A queue becomes releasable exactly on the cycle its
// message's last word departs it (the queue is empty at that same
// instant), so the messages with departure events this cycle are the
// only release candidates.
//
//sysvet:hotpath
func (e *exec) releaseShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.msgs), e.workers, s)
	for i := e.movedSet.next(lo); i >= 0 && i < hi; i = e.movedSet.next(i + 1) {
		id := model.MessageID(i)
		ms := &e.msgs[id]
		words := e.m.words[id]
		for hop := range ms.queues {
			if !ms.granted[hop] || ms.queues[hop] == nil {
				continue
			}
			if ms.departed[hop] == words && ms.queues[hop].q.Empty() {
				qi := ms.queues[hop]
				qi.bound = false
				qi.q.Reset()
				ms.queues[hop] = nil // keep granted=true: the message had its turn
				if e.direct {
					// armed is consumed by next cycle's grantPhase, never
					// read during this scan, so in-place arming is safe.
					e.stats.Releases++
					e.armed.add(e.poolOf(id, hop))
					if e.recordTimeline {
						e.res.Timeline = append(e.res.Timeline, BindEvent{Cycle: e.now, Link: qi.link, QueueIdx: qi.idx, Msg: id, Bound: false})
					}
					continue
				}
				sk.releases++
				sk.armed = append(sk.armed, e.poolOf(id, hop))
				if e.recordTimeline {
					sk.timeline = append(sk.timeline, BindEvent{Cycle: e.now, Link: qi.link, QueueIdx: qi.idx, Msg: id, Bound: false})
				}
			}
		}
	}
}

// result assembles the run's Result. Blocked-cycle accounting is the
// closed form of the reference engine's per-cycle counter: a cell is
// blocked in every cycle it existed unfinished and did not issue.
func (e *exec) result() Result {
	e.res.Completed = e.remaining == 0
	if !e.res.Completed && !e.res.Deadlocked {
		e.res.TimedOut = true
	}
	e.res.Cycles = e.now
	e.res.Received = e.received
	if e.faults != nil {
		// The descriptions are computed once at Lower and shared; the
		// content equality is what the cross-engine suites compare.
		e.res.Faults = e.faults.Descriptions()
	}

	// Cycles in which the reference engine's accounting ran: every
	// executed cycle, plus the deadlock cycle itself (its accounting
	// runs before the stall is declared).
	accounted := e.now
	if e.res.Deadlocked {
		accounted++
	}
	cells := e.m.prog.NumCells()
	var blocked []int
	if e.reuse {
		e.blockedBuf = grow(e.blockedBuf, cells)
		blocked = e.blockedBuf
		clear(blocked)
	} else {
		blocked = make([]int, cells)
	}
	for c := 0; c < cells; c++ {
		n := len(e.m.code(c))
		if n == 0 {
			continue
		}
		if e.pc[c] >= n {
			// Unfinished through its final-issue cycle inclusive,
			// issuing in n of those cycles (the last of which is the
			// final-issue cycle itself, never counted as blocked).
			blocked[c] = e.finishedAt[c] + 1 - n
		} else {
			blocked[c] = accounted - e.pc[c]
		}
	}
	e.stats.BlockedCycles = blocked
	e.stats.Cycles = e.now
	var qs []QueueStat
	if e.reuse && e.qstatBuf != nil {
		qs = e.qstatBuf[:0]
	} else {
		qs = make([]QueueStat, 0, len(e.queues))
	}
	for i := range e.queues {
		qi := &e.queues[i]
		// qi.link is the real link, not the pool id: under
		// DirectionalPools a link's two pools report under the same
		// physical link, matching the timeline's attribution.
		qs = append(qs, QueueStat{Link: qi.link, QueueIdx: qi.idx, Stats: qi.q.Stats()})
	}
	if e.reuse {
		e.qstatBuf = qs
	}
	e.stats.Queues = qs
	e.res.Stats = e.stats
	return e.res
}

func (e *exec) blockedReport() []CellBlock {
	var out []CellBlock
	if e.reuse {
		out = e.cellBlockBuf[:0]
	}
	for c := 0; c < e.m.prog.NumCells(); c++ {
		cell := model.CellID(c)
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		out = append(out, CellBlock{Cell: cell, Op: op, OpIdx: e.pc[c], Reason: e.blockReason(op)})
	}
	if e.reuse {
		e.cellBlockBuf = out
	}
	return out
}

// blockReason renders one cell's stall cause. Plain concatenation
// rather than fmt: deadlocked sweep points hit this for every stuck
// cell, and Sprintf was a visible slice of their profile. The bytes
// are unchanged.
func (e *exec) blockReason(op model.Op) string {
	ms := &e.msgs[op.Msg]
	name := e.m.prog.Message(op.Msg).Name
	if op.Kind == model.Write {
		if len(ms.queues) > 0 && !ms.granted[0] {
			return "no queue bound for " + name + " on its first link"
		}
		return "queue for " + name + " is full (capacity " + strconv.Itoa(e.capacity) + ") and the downstream never drains"
	}
	last := len(ms.queues) - 1
	if last >= 0 && !ms.granted[last] {
		return "no queue bound for " + name + " on its last link"
	}
	return "no word of " + name + " has arrived"
}
