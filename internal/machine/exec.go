package machine

import (
	"fmt"
	"slices"
	"sort"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/queue"
	"systolic/internal/topology"
)

// This file is the ready-set scheduler: the per-cycle loop that
// replaces the reference engine's full scan over every cell, queue,
// and message with event-driven wake lists. The invariant it lives
// by is *exact equivalence* — same grants, same transfers, same
// pending-list orders, same cycle counts, same deadlock reports as
// the reference loop in internal/sim — achieved by revisiting, each
// cycle, precisely the entities whose observable state an event could
// have changed since their last visit:
//
//   - cells: a cell's front op only changes when the cell issues, so
//     first-hop queue requests are re-examined only for cells whose pc
//     advanced ("dirty cells", processed in cell-id order — the same
//     relative order as the reference full scan, which skips unchanged
//     cells as no-ops);
//   - reads and interior advances visit only messages with words
//     buffered on their route (the "transport" set: written > read);
//   - sender writes and capacity-0 rendezvous visit only messages
//     whose sender is parked at W(msg) with the first-hop queue bound
//     (the "writer" set, maintained by the grant and pc-advance
//     hooks);
//   - interior queue requests re-check only messages pushed into
//     since the last collect (the "reqCheck" set);
//   - queue releases re-check only messages with a departure event
//     this cycle (the "moved" set) — a queue is releasable exactly
//     when its last word departs;
//   - pools: Grant is re-invoked only when a pool's free count or
//     pending list changed since its previous invocation ("armed
//     pools", visited in ascending pool order). Policies are pure
//     functions of (free, pending, own grant history) — see the
//     assign.Policy contract — so skipped invocations are exactly the
//     ones that could neither grant nor mutate policy state;
//   - queues: cooldown ticks touch only queues with an armed
//     extension penalty ("cooling list").
//
// All message-set iterations run in ascending message id (sorted
// lists or sorted-at-use buffers), matching the reference engine's
// message-order scans; set membership is a superset of the entries
// the reference scan could act on, so skipped entries are exactly its
// no-ops.
//
// Blocked-cycle accounting is derived in closed form at the end of a
// run (per cell: cycles elapsed while unfinished minus ops issued)
// instead of a per-cycle scan; the result is bit-identical to the
// reference engine's counter.

// queueInst is one physical queue in a link's pool.
type queueInst struct {
	link topology.LinkID // real link, for reporting
	idx  int             // queue index within the link, for reporting
	slot int             // index in exec.queues, for the cooling list
	q    queue.Queue

	bound   bool
	msg     model.MessageID
	hop     int // index into the bound message's route
	cooling bool
}

// msgState tracks one message's transport progress. The per-hop
// slices are windows into the exec's flat arenas.
type msgState struct {
	queues    []*queueInst // per hop; nil until granted
	granted   []bool
	requested []bool
	departed  []int // words that have left hop i (last hop: read by receiver)
	written   int   // words pushed by the sender
	read      int   // words consumed by the receiver
}

// exec holds all mutable state of one run. Everything that does not
// escape into the Result is pooled on the Machine and reused across
// runs.
type exec struct {
	m              *Machine
	logic          CellLogic
	policy         assign.Policy
	flavor         int // 0 shared pools, 1 directional
	capacity       int
	queuesPerLink  int
	recordTimeline bool

	numPools int
	queues   []queueInst         // pool p occupies [p*Q : (p+1)*Q]
	pending  [][]model.MessageID // per pool, outstanding requests

	msgs     []msgState
	hopQ     []*queueInst // flat backing for msgState.queues
	hopFlags []bool       // flat backing for granted + requested
	hopInts  []int        // flat backing for departed

	pc         []int
	issued     []bool
	issuedList []int // cells issued this cycle, to clear cheaply
	finishedAt []int // per cell: cycle of its final issue
	remaining  int   // cells with ops left

	cellDirty  []bool
	dirtyCells []int // cells whose pc advanced since the last collect

	// transport lists messages with words buffered somewhere on their
	// route (written > read): the only messages reads and interior
	// advances can act on. Sorted ascending; stale entries carry a
	// false inTransport flag and are compacted at the next visit.
	transport   []model.MessageID
	inTransport []bool
	// writers lists messages whose sender is parked at W(msg) with
	// the first-hop queue bound: the only candidates for sender
	// writes and capacity-0 rendezvous. Maintained by the grant and
	// pc-advance hooks; writerScratch snapshots it per cycle so
	// mid-cycle insertions target the real list.
	writers       []model.MessageID
	writeReady    []bool
	writerScratch []model.MessageID
	// reqCheck lists messages pushed into since the last collect: the
	// only candidates for new interior-hop queue requests.
	reqCheck []model.MessageID
	reqFlag  []bool
	// movedMsgs lists messages with a departure event this cycle: the
	// only candidates for queue release.
	movedMsgs []model.MessageID
	movedFlag []bool

	poolArmed  []bool
	armed      []int // pools to visit next grantPhase (sorted at use)
	armedSpare []int

	cooling []int // queue slots with a possibly-armed cooldown

	received [][]Word // escapes into Result; fresh per run
	arena    []Word   // backing store for all received words; fresh per run

	ctx assign.Context // per-run policy context; fields are shared read-only views

	res   Result
	stats Stats
	now   int
	moved bool // any event this cycle
}

// deliver appends a received word. Each message's slice is a window
// into one per-run arena, installed on first delivery (so messages
// that never deliver stay nil, as callers expect) and capped at the
// declared word count: the whole run's received output costs one
// allocation instead of one per message.
func (e *exec) deliver(id model.MessageID, w Word) {
	if e.received[id] == nil {
		off, end := e.m.wordOff[id], e.m.wordOff[id+1]
		e.received[id] = e.arena[off:off:end]
	}
	e.received[id] = append(e.received[id], w)
}

// grow returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers clear what they need.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// init sizes the exec for one run, reusing pooled backing arrays.
func (e *exec) init(m *Machine, opts *ExecOptions, tbl *poolTable, flavor int) {
	e.m = m
	e.logic = opts.Logic
	e.policy = opts.Policy
	e.flavor = flavor
	e.capacity = opts.Capacity
	e.queuesPerLink = opts.QueuesPerLink
	e.recordTimeline = opts.RecordTimeline

	q := opts.QueuesPerLink
	e.numPools = tbl.numPools
	e.queues = grow(e.queues, e.numPools*q)
	for i := range e.queues {
		qi := &e.queues[i]
		pool := i / q
		realLink := topology.LinkID(pool)
		qi.idx = i % q
		if flavor == 1 {
			realLink = topology.LinkID(pool / 2)
			// A link's two pools are contiguous (forward 0..Q-1,
			// reverse Q..2Q-1), keeping (link, idx) unique in
			// timelines and stats.
			qi.idx = i % (2 * q)
		}
		qi.link = realLink
		qi.slot = i
		qi.bound = false
		qi.msg = 0
		qi.hop = 0
		qi.cooling = false
		qi.q.Init(opts.Capacity, opts.ExtCapacity, opts.ExtPenalty)
	}
	e.pending = grow(e.pending, e.numPools)
	for i := range e.pending {
		e.pending[i] = e.pending[i][:0]
	}

	totalHops := m.totalHops
	e.hopQ = grow(e.hopQ, totalHops)
	e.hopFlags = grow(e.hopFlags, 2*totalHops)
	e.hopInts = grow(e.hopInts, totalHops)
	clear(e.hopQ)
	clear(e.hopFlags)
	clear(e.hopInts)
	msgs := m.prog.NumMessages()
	e.msgs = grow(e.msgs, msgs)
	for id := range e.msgs {
		off, end := m.hopOff[id], m.hopOff[id+1]
		e.msgs[id] = msgState{
			queues:    e.hopQ[off:end:end],
			granted:   e.hopFlags[off:end:end],
			requested: e.hopFlags[int32(totalHops)+off : int32(totalHops)+end : int32(totalHops)+end],
			departed:  e.hopInts[off:end:end],
		}
	}

	cells := m.prog.NumCells()
	e.pc = grow(e.pc, cells)
	e.issued = grow(e.issued, cells)
	e.finishedAt = grow(e.finishedAt, cells)
	e.cellDirty = grow(e.cellDirty, cells)
	clear(e.pc)
	clear(e.issued)
	clear(e.finishedAt)
	e.issuedList = e.issuedList[:0]
	e.remaining = m.codeCells

	// Every cell and every pool starts "dirty": cycle 0 of the
	// reference engine scans them all, and so do we — once.
	e.dirtyCells = grow(e.dirtyCells, cells)
	for c := 0; c < cells; c++ {
		e.cellDirty[c] = true
		e.dirtyCells[c] = c
	}
	e.inTransport = grow(e.inTransport, msgs)
	e.writeReady = grow(e.writeReady, msgs)
	e.reqFlag = grow(e.reqFlag, msgs)
	e.movedFlag = grow(e.movedFlag, msgs)
	clear(e.inTransport)
	clear(e.writeReady)
	clear(e.reqFlag)
	clear(e.movedFlag)
	e.transport = e.transport[:0]
	e.writers = e.writers[:0]
	e.writerScratch = e.writerScratch[:0]
	e.reqCheck = e.reqCheck[:0]
	e.movedMsgs = e.movedMsgs[:0]
	e.poolArmed = grow(e.poolArmed, e.numPools)
	e.armed = grow(e.armed, e.numPools)
	for p := 0; p < e.numPools; p++ {
		e.poolArmed[p] = true
		e.armed[p] = p
	}
	e.armedSpare = e.armedSpare[:0]
	e.cooling = e.cooling[:0]

	e.received = make([][]Word, msgs)
	e.arena = make([]Word, m.totalWords)
	e.res = Result{}
	e.stats = Stats{}
	e.now = 0
	e.moved = false
}

// release clears every reference that escaped into the returned
// Result (and the per-run inputs) before the exec returns to the
// machine's pool.
func (e *exec) release() {
	e.m = nil
	e.logic = nil
	e.policy = nil
	e.received = nil
	e.arena = nil
	e.ctx = assign.Context{}
	e.res = Result{}
	e.stats = Stats{}
}

// poolOf returns the pool serving hop i of message id under the
// run's regime.
func (e *exec) poolOf(id model.MessageID, hop int) int {
	return int(e.m.hops[e.m.hopOff[id]+int32(hop)].pool[e.flavor])
}

// pool returns the queue instances of pool p.
func (e *exec) pool(p int) []queueInst {
	return e.queues[p*e.queuesPerLink : (p+1)*e.queuesPerLink]
}

// hopOn returns the route hop of msg served by pool, or -1.
func (e *exec) hopOn(pool int, msg model.MessageID) int {
	hops := e.m.msgHops(msg)
	for i := range hops {
		if int(hops[i].pool[e.flavor]) == pool {
			return i
		}
	}
	return -1
}

func (e *exec) armPool(p int) {
	if !e.poolArmed[p] {
		e.poolArmed[p] = true
		e.armed = append(e.armed, p)
	}
}

func (e *exec) markCellDirty(c int) {
	if !e.cellDirty[c] {
		e.cellDirty[c] = true
		e.dirtyCells = append(e.dirtyCells, c)
	}
}

// insertMsg inserts id into an ascending message list.
func insertMsg(list []model.MessageID, id model.MessageID) []model.MessageID {
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

// noteTransport records that id now has buffered words.
func (e *exec) noteTransport(id model.MessageID) {
	if !e.inTransport[id] {
		e.inTransport[id] = true
		e.transport = insertMsg(e.transport, id)
	}
}

// noteWriter records that id's sender is parked at W(id) with the
// first-hop queue bound. Called from the grant hook and the
// pc-advance hook, which together cover both orders the two
// conditions can become true in.
func (e *exec) noteWriter(id model.MessageID) {
	if !e.writeReady[id] {
		e.writeReady[id] = true
		e.writers = insertMsg(e.writers, id)
	}
}

// noteReqCheck records a push into one of id's queues: its next hop
// may now be requestable.
func (e *exec) noteReqCheck(id model.MessageID) {
	if !e.reqFlag[id] {
		e.reqFlag[id] = true
		e.reqCheck = append(e.reqCheck, id)
	}
}

// noteMoved records a departure event: one of id's queues may now be
// releasable.
func (e *exec) noteMoved(id model.MessageID) {
	if !e.movedFlag[id] {
		e.movedFlag[id] = true
		e.movedMsgs = append(e.movedMsgs, id)
	}
}

// noteCooling registers a queue whose Pop may have armed an
// extension-access cooldown.
func (e *exec) noteCooling(qi *queueInst) {
	if !qi.cooling && qi.q.Cooling() {
		qi.cooling = true
		e.cooling = append(e.cooling, qi.slot)
	}
}

// advancePC issues cell c's front op: one op per cell per cycle. When
// the new front op is a write on an already-granted message, the
// message joins the writer set directly; otherwise the dirty-cell
// pass handles any first-hop queue request.
func (e *exec) advancePC(c int) {
	e.pc[c]++
	e.issued[c] = true
	e.issuedList = append(e.issuedList, c)
	if e.pc[c] >= len(e.m.code(c)) {
		e.finishedAt[c] = e.now
		e.remaining--
		return
	}
	e.markCellDirty(c)
	if op := e.m.code(c)[e.pc[c]]; op.Kind == model.Write {
		ms := &e.msgs[op.Msg]
		if len(ms.queues) > 0 && ms.queues[0] != nil {
			e.noteWriter(op.Msg)
		}
	}
}

// run executes the scheduler loop. The cycle structure — tick,
// collect, grant, transfer, release, deadlock check — is the
// reference engine's, with each phase visiting only its ready set.
func (e *exec) run(maxCycles int) {
	for e.now = 0; e.now < maxCycles; e.now++ {
		if e.remaining == 0 {
			break
		}
		e.moved = false
		e.tickCooling()
		e.collectRequests()
		e.grantPhase()
		e.cellAndTransferPhase()
		e.releasePhase()
		if !e.moved && !e.anyCooling() {
			e.res.Deadlocked = true
			e.res.Blocked = e.blockedReport()
			break
		}
	}
}

// tickCooling advances extension-penalty cooldowns, compacting
// entries whose cooldown has expired.
func (e *exec) tickCooling() {
	w := 0
	for _, slot := range e.cooling {
		qi := &e.queues[slot]
		if qi.q.Cooling() {
			qi.q.Tick()
			e.cooling[w] = slot
			w++
		} else {
			qi.cooling = false
		}
	}
	e.cooling = e.cooling[:w]
}

// anyCooling reports whether some queue is waiting out an
// extension-access penalty; such cycles are latency, not deadlock.
func (e *exec) anyCooling() bool {
	for _, slot := range e.cooling {
		if e.queues[slot].q.Cooling() {
			return true
		}
	}
	return false
}

// collectRequests registers queue requests: a message asks for its
// first hop when its sender reaches a W on it, and for hop i>0 when
// its header is buffered at the cell feeding that hop (§5). First-hop
// checks run over dirty cells in cell order, then interior checks
// over live messages in message order — the same relative append
// order the reference full scan produces.
func (e *exec) collectRequests() {
	slices.Sort(e.dirtyCells)
	for _, c := range e.dirtyCells {
		e.cellDirty[c] = false
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Write {
			continue
		}
		ms := &e.msgs[op.Msg]
		if len(ms.queues) > 0 && !ms.requested[0] {
			ms.requested[0] = true
			pool := e.poolOf(op.Msg, 0)
			e.pending[pool] = append(e.pending[pool], op.Msg)
			e.armPool(pool)
		}
	}
	e.dirtyCells = e.dirtyCells[:0]

	// Interior requests: only messages pushed into since the last
	// collect can have a newly non-empty queue; requested flags make
	// re-checks of older non-empty queues no-ops, so this subset in
	// ascending order appends to the pending lists exactly as the
	// full message scan did.
	slices.Sort(e.reqCheck)
	for _, id := range e.reqCheck {
		e.reqFlag[id] = false
		ms := &e.msgs[id]
		for hop := 1; hop < len(ms.queues); hop++ {
			if ms.requested[hop] || ms.queues[hop-1] == nil {
				continue
			}
			if ms.queues[hop-1].q.Len() > 0 {
				ms.requested[hop] = true
				pool := e.poolOf(id, hop)
				e.pending[pool] = append(e.pending[pool], id)
				e.armPool(pool)
			}
		}
	}
	e.reqCheck = e.reqCheck[:0]
}

// grantPhase invokes the policy for every armed pool in ascending
// pool order. A pool re-arms whenever its free count or pending list
// changes, so every invocation the reference engine's per-cycle sweep
// would have made that could matter is made here too.
func (e *exec) grantPhase() {
	cur := e.armed
	e.armed = e.armedSpare[:0]
	slices.Sort(cur)
	for _, pid := range cur {
		e.poolArmed[pid] = false
		pool := e.pool(pid)
		free := 0
		for i := range pool {
			if !pool[i].bound {
				free++
			}
		}
		grants := e.policy.Grant(e.now, topology.LinkID(pid), free, e.pending[pid])
		for _, msg := range grants {
			if free == 0 {
				break // policy over-granted; ignore the excess
			}
			hop := e.hopOn(pid, msg)
			if hop < 0 || e.msgs[msg].granted[hop] {
				continue
			}
			var qi *queueInst
			for i := range pool {
				if !pool[i].bound {
					qi = &pool[i]
					break
				}
			}
			qi.bound = true
			qi.msg = msg
			qi.hop = hop
			ms := &e.msgs[msg]
			ms.granted[hop] = true
			ms.queues[hop] = qi
			free--
			e.moved = true
			e.stats.Grants++
			e.removePending(pid, msg)
			e.armPool(pid)
			if hop == 0 {
				// The sender may already be parked at W(msg) waiting
				// for exactly this grant.
				c := int(e.m.sender[msg])
				code := e.m.code(c)
				if e.pc[c] < len(code) {
					if op := code[e.pc[c]]; op.Kind == model.Write && op.Msg == msg {
						e.noteWriter(msg)
					}
				}
			}
			if e.recordTimeline {
				// Record the real link (qi.link), not the pool id:
				// under DirectionalPools pool ids are synthetic and
				// release events already use the real link.
				e.res.Timeline = append(e.res.Timeline, BindEvent{Cycle: e.now, Link: qi.link, QueueIdx: qi.idx, Msg: msg, Bound: true})
			}
		}
	}
	e.armedSpare = cur[:0]
}

func (e *exec) removePending(pool int, msg model.MessageID) {
	lst := e.pending[pool]
	for i, m := range lst {
		if m == msg {
			e.pending[pool] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// cellAndTransferPhase performs, in order: receiver reads, interior
// hop advances (swept from the receiver side so a pipeline advances
// one hop everywhere in a single cycle), rendezvous transfers for
// capacity-0 latches, and sender writes. Each cell issues at most one
// operation per cycle. All four sub-phases iterate live messages in
// ascending id order; a cell's front op names exactly one message, so
// this visits the same actions as the reference engine's cell-order
// scans.
func (e *exec) cellAndTransferPhase() {
	for _, c := range e.issuedList {
		e.issued[c] = false
	}
	e.issuedList = e.issuedList[:0]
	// Snapshot (and compact) the writer set up front: entries added
	// mid-cycle belong to cells that have already issued, so deferring
	// them to the next cycle is exactly what the issued-flag check in
	// the full-scan engine did.
	cur := e.writerScratch[:0]
	w := 0
	for _, id := range e.writers {
		if e.writeReady[id] {
			e.writers[w] = id
			w++
			cur = append(cur, id)
		}
	}
	e.writers = e.writers[:w]
	e.writerScratch = cur

	// 1. Receiver reads from buffered last-hop queues. Only messages
	// with buffered words can serve a read; stale transport entries
	// (fully drained) compact away here.
	wt := 0
	for _, id := range e.transport {
		if !e.inTransport[id] {
			continue
		}
		ms := &e.msgs[id]
		if ms.written == ms.read {
			e.inTransport[id] = false
			continue
		}
		e.transport[wt] = id
		wt++
		last := len(ms.queues) - 1
		if last < 0 || ms.queues[last] == nil {
			continue
		}
		cell := e.m.receiver[id]
		c := int(cell)
		code := e.m.code(c)
		if e.issued[c] || e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Read || op.Msg != id {
			continue
		}
		qi := ms.queues[last]
		if !qi.q.FrontReady() {
			continue
		}
		word := qi.q.Pop()
		e.noteCooling(qi)
		e.logic.OnRead(cell, id, ms.read, word)
		e.deliver(id, word)
		ms.read++
		ms.departed[last]++
		e.noteMoved(id)
		e.advancePC(c)
		e.moved = true
		e.stats.WordsMoved++
	}
	e.transport = e.transport[:wt]
	// 2. Interior advances, last hop toward receiver first.
	for _, id := range e.transport {
		ms := &e.msgs[id]
		for hop := len(ms.queues) - 2; hop >= 0; hop-- {
			src, dst := ms.queues[hop], ms.queues[hop+1]
			if src == nil || dst == nil {
				continue
			}
			if src.q.FrontReady() && dst.q.CanAccept() {
				dst.q.Push(src.q.Pop())
				e.noteCooling(src)
				ms.departed[hop]++
				e.noteMoved(id)
				e.noteReqCheck(id)
				e.moved = true
				e.stats.WordsMoved++
			}
		}
	}
	// 3. Capacity-0 rendezvous: single-hop messages hand a word
	//    directly from a writing sender to a reading receiver.
	if e.capacity == 0 {
		e.rendezvous()
	}
	// 4. Sender writes into first-hop queues.
	for _, id := range e.writerScratch {
		if !e.writeReady[id] {
			continue
		}
		ms := &e.msgs[id]
		if len(ms.queues) == 0 || ms.queues[0] == nil {
			e.writeReady[id] = false
			continue
		}
		cell := e.m.sender[id]
		c := int(cell)
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			e.writeReady[id] = false
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Write || op.Msg != id {
			e.writeReady[id] = false
			continue
		}
		if e.issued[c] {
			continue
		}
		qi := ms.queues[0]
		if !qi.q.CanAccept() {
			continue
		}
		qi.q.Push(e.logic.Produce(cell, id, ms.written))
		ms.written++
		e.noteTransport(id)
		e.noteReqCheck(id)
		e.advancePC(c)
		e.moved = true
	}
}

// rendezvous matches W(m) senders with R(m) receivers over bound
// capacity-0 latches: the word passes through without ever being
// buffered, the paper's "queues are just latches" regime.
func (e *exec) rendezvous() {
	// A rendezvous needs the sender parked at W(id) over a bound
	// latch — precisely the writer set (capacity 0 admits only
	// single-hop routes, so every entry here is a latch candidate).
	for _, id := range e.writerScratch {
		if !e.writeReady[id] {
			continue
		}
		ms := &e.msgs[id]
		if len(ms.queues) != 1 || ms.queues[0] == nil {
			continue
		}
		sc, rc := int(e.m.sender[id]), int(e.m.receiver[id])
		if e.issued[sc] || e.issued[rc] {
			continue
		}
		sCode, rCode := e.m.code(sc), e.m.code(rc)
		if e.pc[sc] >= len(sCode) || e.pc[rc] >= len(rCode) {
			continue
		}
		sOp, rOp := sCode[e.pc[sc]], rCode[e.pc[rc]]
		if sOp.Kind != model.Write || sOp.Msg != id {
			continue
		}
		if rOp.Kind != model.Read || rOp.Msg != id {
			continue
		}
		w := e.logic.Produce(e.m.sender[id], id, ms.written)
		e.logic.OnRead(e.m.receiver[id], id, ms.read, w)
		e.deliver(id, w)
		ms.written++
		ms.read++
		ms.departed[0]++
		e.noteMoved(id)
		e.advancePC(sc)
		e.advancePC(rc)
		e.moved = true
		e.stats.WordsMoved++
	}
}

// releasePhase frees queues whose message has fully passed (§2.3: a
// queue may be reassigned only after the current message's last word
// has passed it) and retires messages with nothing left bound.
func (e *exec) releasePhase() {
	// A queue becomes releasable exactly on the cycle its message's
	// last word departs it (the queue is empty at that same instant),
	// so the messages with departure events this cycle are the only
	// release candidates.
	slices.Sort(e.movedMsgs)
	for _, id := range e.movedMsgs {
		e.movedFlag[id] = false
		ms := &e.msgs[id]
		words := e.m.words[id]
		for hop := range ms.queues {
			if !ms.granted[hop] || ms.queues[hop] == nil {
				continue
			}
			if ms.departed[hop] == words && ms.queues[hop].q.Empty() {
				qi := ms.queues[hop]
				qi.bound = false
				qi.q.Reset()
				ms.queues[hop] = nil // keep granted=true: the message had its turn
				e.stats.Releases++
				e.armPool(e.poolOf(id, hop))
				if e.recordTimeline {
					e.res.Timeline = append(e.res.Timeline, BindEvent{Cycle: e.now, Link: qi.link, QueueIdx: qi.idx, Msg: id, Bound: false})
				}
			}
		}
	}
	e.movedMsgs = e.movedMsgs[:0]
}

// result assembles the run's Result. Blocked-cycle accounting is the
// closed form of the reference engine's per-cycle counter: a cell is
// blocked in every cycle it existed unfinished and did not issue.
func (e *exec) result() Result {
	e.res.Completed = e.remaining == 0
	if !e.res.Completed && !e.res.Deadlocked {
		e.res.TimedOut = true
	}
	e.res.Cycles = e.now
	e.res.Received = e.received

	// Cycles in which the reference engine's accounting ran: every
	// executed cycle, plus the deadlock cycle itself (its accounting
	// runs before the stall is declared).
	accounted := e.now
	if e.res.Deadlocked {
		accounted++
	}
	cells := e.m.prog.NumCells()
	blocked := make([]int, cells)
	for c := 0; c < cells; c++ {
		n := len(e.m.code(c))
		if n == 0 {
			continue
		}
		if e.pc[c] >= n {
			// Unfinished through its final-issue cycle inclusive,
			// issuing in n of those cycles (the last of which is the
			// final-issue cycle itself, never counted as blocked).
			blocked[c] = e.finishedAt[c] + 1 - n
		} else {
			blocked[c] = accounted - e.pc[c]
		}
	}
	e.stats.BlockedCycles = blocked
	e.stats.Cycles = e.now
	e.stats.Queues = make([]QueueStat, 0, len(e.queues))
	for i := range e.queues {
		qi := &e.queues[i]
		// qi.link is the real link, not the pool id: under
		// DirectionalPools a link's two pools report under the same
		// physical link, matching the timeline's attribution.
		e.stats.Queues = append(e.stats.Queues, QueueStat{Link: qi.link, QueueIdx: qi.idx, Stats: qi.q.Stats()})
	}
	e.res.Stats = e.stats
	return e.res
}

func (e *exec) blockedReport() []CellBlock {
	var out []CellBlock
	for c := 0; c < e.m.prog.NumCells(); c++ {
		cell := model.CellID(c)
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		out = append(out, CellBlock{Cell: cell, Op: op, OpIdx: e.pc[c], Reason: e.blockReason(op)})
	}
	return out
}

func (e *exec) blockReason(op model.Op) string {
	ms := &e.msgs[op.Msg]
	name := e.m.prog.Message(op.Msg).Name
	if op.Kind == model.Write {
		if len(ms.queues) > 0 && !ms.granted[0] {
			return fmt.Sprintf("no queue bound for %s on its first link", name)
		}
		return fmt.Sprintf("queue for %s is full (capacity %d) and the downstream never drains", name, e.capacity)
	}
	last := len(ms.queues) - 1
	if last >= 0 && !ms.granted[last] {
		return fmt.Sprintf("no queue bound for %s on its last link", name)
	}
	return fmt.Sprintf("no word of %s has arrived", name)
}
