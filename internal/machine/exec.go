package machine

import (
	"fmt"
	"slices"
	"sort"

	"systolic/internal/assign"
	"systolic/internal/model"
	"systolic/internal/queue"
	"systolic/internal/topology"
)

// This file is the ready-set scheduler: the per-cycle loop that
// replaces the reference engine's full scan over every cell, queue,
// and message with event-driven wake lists. The invariant it lives
// by is *exact equivalence* — same grants, same transfers, same
// pending-list orders, same cycle counts, same deadlock reports as
// the reference loop in internal/sim — achieved by revisiting, each
// cycle, precisely the entities whose observable state an event could
// have changed since their last visit:
//
//   - cells: a cell's front op only changes when the cell issues, so
//     first-hop queue requests are re-examined only for cells whose pc
//     advanced ("dirty cells", processed in cell-id order — the same
//     relative order as the reference full scan, which skips unchanged
//     cells as no-ops);
//   - reads and interior advances visit only messages with words
//     buffered on their route (the "transport" set: written > read);
//   - sender writes and capacity-0 rendezvous visit only messages
//     whose sender is parked at W(msg) with the first-hop queue bound
//     (the "writer" set, maintained by the grant and pc-advance
//     hooks);
//   - interior queue requests re-check only messages pushed into
//     since the last collect (the "reqCheck" set);
//   - queue releases re-check only messages with a departure event
//     this cycle (the "moved" set) — a queue is releasable exactly
//     when its last word departs;
//   - pools: Grant is re-invoked only when a pool's free count or
//     pending list changed since its previous invocation ("armed
//     pools", visited in ascending pool order). Policies are pure
//     functions of (free, pending, own grant history) — see the
//     assign.Policy contract — so skipped invocations are exactly the
//     ones that could neither grant nor mutate policy state;
//   - queues: cooldown ticks touch only queues with an armed
//     extension penalty ("cooling list").
//
// All message-set iterations run in ascending message id (sorted
// lists or sorted-at-use buffers), matching the reference engine's
// message-order scans; set membership is a superset of the entries
// the reference scan could act on, so skipped entries are exactly its
// no-ops.
//
// Since the deterministic-sharding refactor every ready-set phase is
// written against a shard: fn(s) visits only the entries shard s owns
// (a contiguous position chunk of the sorted work list, or the
// messages whose contended cell lies in s's cell range) and defers
// every shared-structure effect to sinks[s], which the coordinator
// merges in ascending shard order after the phase (see parallel.go
// for the ownership and merge-order argument). Workers=1 runs the
// same phases over a single shard — there is no separate sequential
// scheduler to drift from.
//
// Blocked-cycle accounting is derived in closed form at the end of a
// run (per cell: cycles elapsed while unfinished minus ops issued)
// instead of a per-cycle scan; the result is bit-identical to the
// reference engine's counter.

// queueInst is one physical queue in a link's pool.
type queueInst struct {
	link topology.LinkID // real link, for reporting
	idx  int             // queue index within the link, for reporting
	slot int             // index in exec.queues, for the cooling list
	q    queue.Queue

	bound   bool
	msg     model.MessageID
	hop     int // index into the bound message's route
	cooling bool
}

// msgState tracks one message's transport progress. The per-hop
// slices are windows into the exec's flat arenas.
type msgState struct {
	queues    []*queueInst // per hop; nil until granted
	granted   []bool
	requested []bool
	departed  []int // words that have left hop i (last hop: read by receiver)
	written   int   // words pushed by the sender
	read      int   // words consumed by the receiver
}

// exec holds all mutable state of one run. Everything that does not
// escape into the Result is pooled on the Machine and reused across
// runs.
type exec struct {
	m              *Machine
	logic          CellLogic
	policy         assign.Policy
	flavor         int // 0 shared pools, 1 directional
	capacity       int
	queuesPerLink  int
	recordTimeline bool

	numPools int
	queues   []queueInst         // pool p occupies [p*Q : (p+1)*Q]
	pending  [][]model.MessageID // per pool, outstanding requests

	msgs     []msgState
	hopQ     []*queueInst // flat backing for msgState.queues
	hopFlags []bool       // flat backing for granted + requested
	hopInts  []int        // flat backing for departed

	pc         []int
	issued     []bool
	issuedList []int // cells issued this cycle, to clear cheaply
	finishedAt []int // per cell: cycle of its final issue
	remaining  int   // cells with ops left

	cellDirty  []bool
	dirtyCells []int // cells whose pc advanced since the last collect

	// transport lists messages with words buffered somewhere on their
	// route (written > read): the only messages reads and interior
	// advances can act on. Sorted ascending; stale entries carry a
	// false inTransport flag and are compacted at the next visit.
	transport   []model.MessageID
	inTransport []bool
	// writers lists messages whose sender is parked at W(msg) with
	// the first-hop queue bound: the only candidates for sender
	// writes and capacity-0 rendezvous. Maintained by the grant and
	// pc-advance hooks; writerScratch snapshots it per cycle so
	// mid-cycle insertions target the real list.
	writers       []model.MessageID
	writeReady    []bool
	writerScratch []model.MessageID
	// reqCheck lists messages pushed into since the last collect: the
	// only candidates for new interior-hop queue requests.
	reqCheck []model.MessageID
	reqFlag  []bool
	// movedMsgs lists messages with a departure event this cycle: the
	// only candidates for queue release.
	movedMsgs []model.MessageID
	movedFlag []bool

	poolArmed  []bool
	armed      []int // pools to visit next grantPhase (sorted at use)
	armedSpare []int

	cooling []int // queue slots with a possibly-armed cooldown

	received [][]Word // escapes into Result; fresh per run
	arena    []Word   // backing store for all received words; fresh per run

	ctx assign.Context // per-run policy context; fields are shared read-only views

	// Sharded-execution state (see parallel.go). workers is the shard
	// count (1 = single-threaded); recvShard/sendShard map each message
	// to the shard owning its receiver/sender cell (only filled when
	// workers > 1); keep flags the transport entries surviving the read
	// phase's compaction; gang is the run-scoped worker pool (nil when
	// workers == 1). The fn* fields hold the phase closures, bound once
	// per exec so dispatch never allocates.
	workers     int
	recvShard   []int32
	sendShard   []int32
	sinks       []sink
	keep        []bool
	gang        *gang
	hasInterior bool // any route longer than one hop
	cancel      <-chan struct{}
	cancelled   bool
	fnFirstHop  func(int)
	fnInterior  func(int)
	fnReads     func(int)
	fnAdvances  func(int)
	fnWrites    func(int)
	fnRelease   func(int)

	res   Result
	stats Stats
	now   int
	moved bool // any event this cycle
}

// deliver appends a received word. Each message's slice is a window
// into one per-run arena, installed on first delivery (so messages
// that never deliver stay nil, as callers expect) and capped at the
// declared word count: the whole run's received output costs one
// allocation instead of one per message.
//
//sysvet:hotpath
func (e *exec) deliver(id model.MessageID, w Word) {
	if e.received[id] == nil {
		off, end := e.m.wordOff[id], e.m.wordOff[id+1]
		e.received[id] = e.arena[off:off:end]
	}
	e.received[id] = append(e.received[id], w)
}

// grow returns s resized to n, reusing its backing array when large
// enough. Contents are unspecified; callers clear what they need.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// init sizes the exec for one run, reusing pooled backing arrays.
func (e *exec) init(m *Machine, opts *ExecOptions, tbl *poolTable, flavor int) {
	e.m = m
	e.logic = opts.Logic
	e.policy = opts.Policy
	e.flavor = flavor
	e.capacity = opts.Capacity
	e.queuesPerLink = opts.QueuesPerLink
	e.recordTimeline = opts.RecordTimeline

	q := opts.QueuesPerLink
	e.numPools = tbl.numPools
	e.queues = grow(e.queues, e.numPools*q)
	for i := range e.queues {
		qi := &e.queues[i]
		pool := i / q
		realLink := topology.LinkID(pool)
		qi.idx = i % q
		if flavor == 1 {
			realLink = topology.LinkID(pool / 2)
			// A link's two pools are contiguous (forward 0..Q-1,
			// reverse Q..2Q-1), keeping (link, idx) unique in
			// timelines and stats.
			qi.idx = i % (2 * q)
		}
		qi.link = realLink
		qi.slot = i
		qi.bound = false
		qi.msg = 0
		qi.hop = 0
		qi.cooling = false
		qi.q.Init(opts.Capacity, opts.ExtCapacity, opts.ExtPenalty)
	}
	e.pending = grow(e.pending, e.numPools)
	for i := range e.pending {
		e.pending[i] = e.pending[i][:0]
	}

	totalHops := m.totalHops
	e.hopQ = grow(e.hopQ, totalHops)
	e.hopFlags = grow(e.hopFlags, 2*totalHops)
	e.hopInts = grow(e.hopInts, totalHops)
	clear(e.hopQ)
	clear(e.hopFlags)
	clear(e.hopInts)
	msgs := m.prog.NumMessages()
	e.msgs = grow(e.msgs, msgs)
	for id := range e.msgs {
		off, end := m.hopOff[id], m.hopOff[id+1]
		e.msgs[id] = msgState{
			queues:    e.hopQ[off:end:end],
			granted:   e.hopFlags[off:end:end],
			requested: e.hopFlags[int32(totalHops)+off : int32(totalHops)+end : int32(totalHops)+end],
			departed:  e.hopInts[off:end:end],
		}
	}

	cells := m.prog.NumCells()
	e.pc = grow(e.pc, cells)
	e.issued = grow(e.issued, cells)
	e.finishedAt = grow(e.finishedAt, cells)
	e.cellDirty = grow(e.cellDirty, cells)
	clear(e.pc)
	clear(e.issued)
	clear(e.finishedAt)
	e.issuedList = e.issuedList[:0]
	e.remaining = m.codeCells

	// Every cell and every pool starts "dirty": cycle 0 of the
	// reference engine scans them all, and so do we — once.
	e.dirtyCells = grow(e.dirtyCells, cells)
	for c := 0; c < cells; c++ {
		e.cellDirty[c] = true
		e.dirtyCells[c] = c
	}
	e.inTransport = grow(e.inTransport, msgs)
	e.writeReady = grow(e.writeReady, msgs)
	e.reqFlag = grow(e.reqFlag, msgs)
	e.movedFlag = grow(e.movedFlag, msgs)
	clear(e.inTransport)
	clear(e.writeReady)
	clear(e.reqFlag)
	clear(e.movedFlag)
	e.transport = e.transport[:0]
	e.writers = e.writers[:0]
	e.writerScratch = e.writerScratch[:0]
	e.reqCheck = e.reqCheck[:0]
	e.movedMsgs = e.movedMsgs[:0]
	e.poolArmed = grow(e.poolArmed, e.numPools)
	e.armed = grow(e.armed, e.numPools)
	for p := 0; p < e.numPools; p++ {
		e.poolArmed[p] = true
		e.armed[p] = p
	}
	e.armedSpare = e.armedSpare[:0]
	e.cooling = e.cooling[:0]

	// Shard layout. The worker count is clamped to the cell count (an
	// empty shard can own nothing) and to maxWorkers; the clamp is
	// invisible in the Result because every worker count produces the
	// same bytes.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > cells && cells > 0 {
		workers = cells
	}
	e.workers = workers
	e.sinks = grow(e.sinks, workers)
	for i := range e.sinks {
		e.sinks[i].reset()
	}
	if workers > 1 {
		e.recvShard = grow(e.recvShard, msgs)
		e.sendShard = grow(e.sendShard, msgs)
		for id := 0; id < msgs; id++ {
			e.recvShard[id] = int32(shardOf(int(m.receiver[id]), cells, workers))
			e.sendShard[id] = int32(shardOf(int(m.sender[id]), cells, workers))
		}
	}
	e.gang = nil // spawned lazily by the first fanout that needs it
	e.hasInterior = m.maxRouteLen > 1
	e.cancel = nil
	e.cancelled = false
	if opts.Context != nil {
		e.cancel = opts.Context.Done()
	}
	if e.fnFirstHop == nil {
		e.fnFirstHop = e.collectFirstHopShard
		e.fnInterior = e.collectInteriorShard
		e.fnReads = e.readShard
		e.fnAdvances = e.advanceShard
		e.fnWrites = e.writeShard
		e.fnRelease = e.releaseShard
	}

	e.received = make([][]Word, msgs)
	e.arena = make([]Word, m.totalWords)
	e.res = Result{}
	e.stats = Stats{}
	e.now = 0
	e.moved = false
}

// release clears every reference that escaped into the returned
// Result (and the per-run inputs) before the exec returns to the
// machine's pool. It also stops a still-live gang: run() tears the
// gang down on every exit path, but a run that never starts — a
// Policy.Setup failure after init — would otherwise strand the
// workers forever when the pooled exec is reused or dropped.
func (e *exec) release() {
	if e.gang != nil {
		e.gang.stop()
		e.gang = nil
	}
	e.m = nil
	e.logic = nil
	e.policy = nil
	e.received = nil
	e.arena = nil
	e.cancel = nil
	e.ctx = assign.Context{}
	e.res = Result{}
	e.stats = Stats{}
}

// owns reports whether shard s owns cell c. With one worker the
// shard maps are not built and shard 0 owns everything.
//
//sysvet:hotpath
func (e *exec) owns(s int, shard []int32, id model.MessageID) bool {
	return e.workers == 1 || int(shard[id]) == s
}

// poolOf returns the pool serving hop i of message id under the
// run's regime.
//
//sysvet:hotpath
func (e *exec) poolOf(id model.MessageID, hop int) int {
	return int(e.m.hops[e.m.hopOff[id]+int32(hop)].pool[e.flavor])
}

// pool returns the queue instances of pool p.
//
//sysvet:hotpath
func (e *exec) pool(p int) []queueInst {
	return e.queues[p*e.queuesPerLink : (p+1)*e.queuesPerLink]
}

// hopOn returns the route hop of msg served by pool, or -1.
//
//sysvet:hotpath
func (e *exec) hopOn(pool int, msg model.MessageID) int {
	hops := e.m.msgHops(msg)
	for i := range hops {
		if int(hops[i].pool[e.flavor]) == pool {
			return i
		}
	}
	return -1
}

// armPool re-arms a pool immediately. Coordinator-only (grantPhase);
// sharded phases defer arming through their sink instead.
//
//sysvet:hotpath
func (e *exec) armPool(p int) {
	if !e.poolArmed[p] {
		e.poolArmed[p] = true
		e.armed = append(e.armed, p)
	}
}

// insertMsg inserts id into an ascending message list.
//
//sysvet:hotpath
func insertMsg(list []model.MessageID, id model.MessageID) []model.MessageID {
	//sysvet:ignore hotalloc -- sort.Search's predicate does not escape, so the closure stays on the stack
	i := sort.Search(len(list), func(i int) bool { return list[i] >= id })
	list = append(list, 0)
	copy(list[i+1:], list[i:])
	list[i] = id
	return list
}

// noteTransport records that id now has buffered words. The flag is
// owned by the calling shard (id's sender); the list insertion is
// deferred to the merge.
//
//sysvet:hotpath
func (e *exec) noteTransport(id model.MessageID, sk *sink) {
	if !e.inTransport[id] {
		e.inTransport[id] = true
		sk.transport = append(sk.transport, id)
	}
}

// noteWriter records that id's sender is parked at W(id) with the
// first-hop queue bound. Called from the grant hook and the
// pc-advance hook, which together cover both orders the two
// conditions can become true in.
//
//sysvet:hotpath
func (e *exec) noteWriter(id model.MessageID, sk *sink) {
	if !e.writeReady[id] {
		e.writeReady[id] = true
		sk.writers = append(sk.writers, id)
	}
}

// noteWriterNow is noteWriter for the coordinator-only grant phase,
// which must insert immediately: the writer snapshot taken at the top
// of the same cycle's transfer phase has to see grants made this
// cycle, exactly as the reference engine's in-line insertion does.
//
//sysvet:hotpath
func (e *exec) noteWriterNow(id model.MessageID) {
	if !e.writeReady[id] {
		e.writeReady[id] = true
		e.writers = insertMsg(e.writers, id)
	}
}

// noteReqCheck records a push into one of id's queues: its next hop
// may now be requestable. On machines where every route is a single
// hop there are no interior hops to request, so the set stays empty
// and the interior phases are skipped outright.
//
//sysvet:hotpath
func (e *exec) noteReqCheck(id model.MessageID, sk *sink) {
	if !e.hasInterior {
		return
	}
	if !e.reqFlag[id] {
		e.reqFlag[id] = true
		sk.reqCheck = append(sk.reqCheck, id)
	}
}

// noteMoved records a departure event: one of id's queues may now be
// releasable.
//
//sysvet:hotpath
func (e *exec) noteMoved(id model.MessageID, sk *sink) {
	if !e.movedFlag[id] {
		e.movedFlag[id] = true
		sk.moved = append(sk.moved, id)
	}
}

// noteCooling registers a queue whose Pop may have armed an
// extension-access cooldown.
//
//sysvet:hotpath
func (e *exec) noteCooling(qi *queueInst, sk *sink) {
	if !qi.cooling && qi.q.Cooling() {
		qi.cooling = true
		sk.cooling = append(sk.cooling, qi.slot)
	}
}

// markCellDirty flags a cell whose pc advanced. The flag is owned by
// the calling shard (c is one of its cells).
//
//sysvet:hotpath
func (e *exec) markCellDirty(c int, sk *sink) {
	if !e.cellDirty[c] {
		e.cellDirty[c] = true
		sk.dirty = append(sk.dirty, c)
	}
}

// advancePC issues cell c's front op: one op per cell per cycle. When
// the new front op is a write on an already-granted message, the
// message joins the writer set directly; otherwise the dirty-cell
// pass handles any first-hop queue request. Only c's owning shard may
// call this.
//
//sysvet:hotpath
func (e *exec) advancePC(c int, sk *sink) {
	e.pc[c]++
	e.issued[c] = true
	sk.issued = append(sk.issued, c)
	if e.pc[c] >= len(e.m.code(c)) {
		e.finishedAt[c] = e.now
		sk.remainingDelta--
		return
	}
	e.markCellDirty(c, sk)
	if op := e.m.code(c)[e.pc[c]]; op.Kind == model.Write {
		ms := &e.msgs[op.Msg]
		// Reading another message's queue-pointer table is safe here:
		// bindings only change in the grant and release phases, which
		// never overlap a phase that advances program counters.
		if len(ms.queues) > 0 && ms.queues[0] != nil {
			e.noteWriter(op.Msg, sk)
		}
	}
}

// run executes the scheduler loop. The cycle structure — tick,
// collect, grant, transfer, release, deadlock check — is the
// reference engine's, with each phase visiting only its ready set.
// The gang (when present) is torn down on every exit path, so a
// pooled exec never strands goroutines.
func (e *exec) run(maxCycles int) {
	defer func() {
		if e.gang != nil {
			e.gang.stop()
			e.gang = nil
		}
	}()
	for e.now = 0; e.now < maxCycles; e.now++ {
		if e.remaining == 0 {
			break
		}
		if e.cancel != nil {
			select {
			case <-e.cancel:
				e.cancelled = true
				return
			default:
			}
		}
		e.moved = false
		e.tickCooling()
		e.collectRequests()
		e.grantPhase()
		e.cellAndTransferPhase()
		e.releasePhase()
		if !e.moved && !e.anyCooling() {
			e.res.Deadlocked = true
			e.res.Blocked = e.blockedReport()
			break
		}
	}
}

// tickCooling advances extension-penalty cooldowns, compacting
// entries whose cooldown has expired.
//
//sysvet:hotpath
func (e *exec) tickCooling() {
	w := 0
	for _, slot := range e.cooling {
		qi := &e.queues[slot]
		if qi.q.Cooling() {
			qi.q.Tick()
			e.cooling[w] = slot
			w++
		} else {
			qi.cooling = false
		}
	}
	e.cooling = e.cooling[:w]
}

// anyCooling reports whether some queue is waiting out an
// extension-access penalty; such cycles are latency, not deadlock.
//
//sysvet:hotpath
func (e *exec) anyCooling() bool {
	for _, slot := range e.cooling {
		if e.queues[slot].q.Cooling() {
			return true
		}
	}
	return false
}

// collectRequests registers queue requests: a message asks for its
// first hop when its sender reaches a W on it, and for hop i>0 when
// its header is buffered at the cell feeding that hop (§5). First-hop
// checks run over dirty cells in cell order, then interior checks
// over live messages in message order — the same relative append
// order the reference full scan produces. Both sub-phases chunk their
// sorted list by position; the shard-order merge restores the full
// sorted append order for any worker count.
//
//sysvet:hotpath
func (e *exec) collectRequests() {
	slices.Sort(e.dirtyCells)
	e.fanout(len(e.dirtyCells), e.fnFirstHop)
	e.mergeSinks()
	e.dirtyCells = e.dirtyCells[:0]

	if e.hasInterior {
		slices.Sort(e.reqCheck)
		e.fanout(len(e.reqCheck), e.fnInterior)
		e.mergeSinks()
		e.reqCheck = e.reqCheck[:0]
	}
}

// collectFirstHopShard checks shard s's chunk of the dirty cells for
// senders parked at an unrequested W. Every touched flag (cellDirty,
// requested[0]) belongs to the chunk's own cells and messages — a
// message's first-hop request can only come from its one sender.
//
//sysvet:hotpath
func (e *exec) collectFirstHopShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.dirtyCells), e.workers, s)
	for _, c := range e.dirtyCells[lo:hi] {
		e.cellDirty[c] = false
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Write {
			continue
		}
		ms := &e.msgs[op.Msg]
		if len(ms.queues) > 0 && !ms.requested[0] {
			ms.requested[0] = true
			pool := e.poolOf(op.Msg, 0)
			sk.pending = append(sk.pending, pendReq{pool: pool, msg: op.Msg})
			sk.armed = append(sk.armed, pool)
		}
	}
}

// collectInteriorShard checks shard s's chunk of the reqCheck set:
// only messages pushed into since the last collect can have a newly
// non-empty queue; requested flags make re-checks of older non-empty
// queues no-ops, so this subset in ascending order appends to the
// pending lists exactly as the full message scan did.
//
//sysvet:hotpath
func (e *exec) collectInteriorShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.reqCheck), e.workers, s)
	for _, id := range e.reqCheck[lo:hi] {
		e.reqFlag[id] = false
		ms := &e.msgs[id]
		for hop := 1; hop < len(ms.queues); hop++ {
			if ms.requested[hop] || ms.queues[hop-1] == nil {
				continue
			}
			if ms.queues[hop-1].q.Len() > 0 {
				ms.requested[hop] = true
				pool := e.poolOf(id, hop)
				sk.pending = append(sk.pending, pendReq{pool: pool, msg: id})
				sk.armed = append(sk.armed, pool)
			}
		}
	}
}

// grantPhase invokes the policy for every armed pool in ascending
// pool order. A pool re-arms whenever its free count or pending list
// changes, so every invocation the reference engine's per-cycle sweep
// would have made that could matter is made here too. The phase runs
// entirely on the coordinator: policy instances are stateful and
// their call order is part of the observable behavior.
//
//sysvet:hotpath
func (e *exec) grantPhase() {
	cur := e.armed
	e.armed = e.armedSpare[:0]
	slices.Sort(cur)
	for _, pid := range cur {
		e.poolArmed[pid] = false
		pool := e.pool(pid)
		free := 0
		for i := range pool {
			if !pool[i].bound {
				free++
			}
		}
		grants := e.policy.Grant(e.now, topology.LinkID(pid), free, e.pending[pid])
		for _, msg := range grants {
			if free == 0 {
				break // policy over-granted; ignore the excess
			}
			hop := e.hopOn(pid, msg)
			if hop < 0 || e.msgs[msg].granted[hop] {
				continue
			}
			var qi *queueInst
			for i := range pool {
				if !pool[i].bound {
					qi = &pool[i]
					break
				}
			}
			qi.bound = true
			qi.msg = msg
			qi.hop = hop
			ms := &e.msgs[msg]
			ms.granted[hop] = true
			ms.queues[hop] = qi
			free--
			e.moved = true
			e.stats.Grants++
			e.removePending(pid, msg)
			e.armPool(pid)
			if hop == 0 {
				// The sender may already be parked at W(msg) waiting
				// for exactly this grant.
				c := int(e.m.sender[msg])
				code := e.m.code(c)
				if e.pc[c] < len(code) {
					if op := code[e.pc[c]]; op.Kind == model.Write && op.Msg == msg {
						e.noteWriterNow(msg)
					}
				}
			}
			if e.recordTimeline {
				// Record the real link (qi.link), not the pool id:
				// under DirectionalPools pool ids are synthetic and
				// release events already use the real link.
				e.res.Timeline = append(e.res.Timeline, BindEvent{Cycle: e.now, Link: qi.link, QueueIdx: qi.idx, Msg: msg, Bound: true})
			}
		}
	}
	e.armedSpare = cur[:0]
}

//sysvet:hotpath
func (e *exec) removePending(pool int, msg model.MessageID) {
	lst := e.pending[pool]
	for i, m := range lst {
		if m == msg {
			e.pending[pool] = append(lst[:i], lst[i+1:]...)
			return
		}
	}
}

// cellAndTransferPhase performs, in order: receiver reads, interior
// hop advances (swept from the receiver side so a pipeline advances
// one hop everywhere in a single cycle), rendezvous transfers for
// capacity-0 latches, and sender writes. Each cell issues at most one
// operation per cycle. All four sub-phases iterate live messages in
// ascending id order; a cell's front op names exactly one message, so
// this visits the same actions as the reference engine's cell-order
// scans. Reads are sharded by receiver cell and writes by sender cell
// (the issue slot is the only cross-message contention point, and it
// is always intra-shard); interior advances, which are fully
// message-local, chunk by position. One merge at the end covers all
// four sub-phases: nothing they defer is consumed before the release
// phase.
//
//sysvet:hotpath
func (e *exec) cellAndTransferPhase() {
	for _, c := range e.issuedList {
		e.issued[c] = false
	}
	e.issuedList = e.issuedList[:0]
	// Snapshot (and compact) the writer set up front: entries added
	// mid-cycle belong to cells that have already issued, so deferring
	// them to the next cycle is exactly what the issued-flag check in
	// the full-scan engine did.
	cur := e.writerScratch[:0]
	w := 0
	for _, id := range e.writers {
		if e.writeReady[id] {
			e.writers[w] = id
			w++
			cur = append(cur, id)
		}
	}
	e.writers = e.writers[:w]
	e.writerScratch = cur

	// 1. Receiver reads from buffered last-hop queues, sharded by
	// receiver cell. Workers flag the surviving entries; the
	// coordinator compacts afterwards, preserving ascending order.
	e.keep = grow(e.keep, len(e.transport))
	clear(e.keep)
	e.fanout(len(e.transport), e.fnReads)
	wt := 0
	for i, id := range e.transport {
		if e.keep[i] {
			e.transport[wt] = id
			wt++
		}
	}
	e.transport = e.transport[:wt]

	// 2. Interior advances, last hop toward receiver first. Single-hop
	// machines have no interior queues to advance.
	if e.hasInterior {
		e.fanout(len(e.transport), e.fnAdvances)
	}

	// 3. Capacity-0 rendezvous: single-hop messages hand a word
	//    directly from a writing sender to a reading receiver. Runs on
	//    the coordinator (it issues at two cells at once).
	if e.capacity == 0 {
		e.rendezvous(&e.sinks[0])
	}

	// 4. Sender writes into first-hop queues, sharded by sender cell.
	e.fanout(len(e.writerScratch), e.fnWrites)

	e.mergeSinks()
}

// readShard serves receiver reads for the transport entries shard s
// owns (messages whose receiver cell is in s's range). Only messages
// with buffered words can serve a read; stale transport entries
// (fully drained) are marked for compaction here.
//
//sysvet:hotpath
func (e *exec) readShard(s int) {
	sk := &e.sinks[s]
	for i, id := range e.transport {
		if !e.owns(s, e.recvShard, id) {
			continue
		}
		if !e.inTransport[id] {
			continue // stale: keep[i] stays false
		}
		ms := &e.msgs[id]
		if ms.written == ms.read {
			e.inTransport[id] = false
			continue
		}
		e.keep[i] = true
		last := len(ms.queues) - 1
		if last < 0 || ms.queues[last] == nil {
			continue
		}
		cell := e.m.receiver[id]
		c := int(cell)
		code := e.m.code(c)
		if e.issued[c] || e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Read || op.Msg != id {
			continue
		}
		qi := ms.queues[last]
		if !qi.q.FrontReady() {
			continue
		}
		word := qi.q.Pop()
		e.noteCooling(qi, sk)
		e.logic.OnRead(cell, id, ms.read, word)
		e.deliver(id, word)
		ms.read++
		ms.departed[last]++
		e.noteMoved(id, sk)
		e.advancePC(c, sk)
		sk.anyEvent = true
		sk.wordsMoved++
	}
}

// advanceShard moves words between interior queues for shard s's
// position chunk of the transport set. Every touched queue is bound
// to the chunk's own message, so chunks never contend.
//
//sysvet:hotpath
func (e *exec) advanceShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.transport), e.workers, s)
	for _, id := range e.transport[lo:hi] {
		ms := &e.msgs[id]
		for hop := len(ms.queues) - 2; hop >= 0; hop-- {
			src, dst := ms.queues[hop], ms.queues[hop+1]
			if src == nil || dst == nil {
				continue
			}
			if src.q.FrontReady() && dst.q.CanAccept() {
				dst.q.Push(src.q.Pop())
				e.noteCooling(src, sk)
				ms.departed[hop]++
				e.noteMoved(id, sk)
				e.noteReqCheck(id, sk)
				sk.anyEvent = true
				sk.wordsMoved++
			}
		}
	}
}

// writeShard pushes sender words into first-hop queues for the
// writer-snapshot entries shard s owns (messages whose sender cell is
// in s's range).
//
//sysvet:hotpath
func (e *exec) writeShard(s int) {
	sk := &e.sinks[s]
	for _, id := range e.writerScratch {
		if !e.owns(s, e.sendShard, id) {
			continue
		}
		if !e.writeReady[id] {
			continue
		}
		ms := &e.msgs[id]
		if len(ms.queues) == 0 || ms.queues[0] == nil {
			e.writeReady[id] = false
			continue
		}
		cell := e.m.sender[id]
		c := int(cell)
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			e.writeReady[id] = false
			continue
		}
		op := code[e.pc[c]]
		if op.Kind != model.Write || op.Msg != id {
			e.writeReady[id] = false
			continue
		}
		if e.issued[c] {
			continue
		}
		qi := ms.queues[0]
		if !qi.q.CanAccept() {
			continue
		}
		qi.q.Push(e.logic.Produce(cell, id, ms.written))
		ms.written++
		e.noteTransport(id, sk)
		e.noteReqCheck(id, sk)
		e.advancePC(c, sk)
		sk.anyEvent = true
	}
}

// rendezvous matches W(m) senders with R(m) receivers over bound
// capacity-0 latches: the word passes through without ever being
// buffered, the paper's "queues are just latches" regime.
//
//sysvet:hotpath
func (e *exec) rendezvous(sk *sink) {
	// A rendezvous needs the sender parked at W(id) over a bound
	// latch — precisely the writer set (capacity 0 admits only
	// single-hop routes, so every entry here is a latch candidate).
	for _, id := range e.writerScratch {
		if !e.writeReady[id] {
			continue
		}
		ms := &e.msgs[id]
		if len(ms.queues) != 1 || ms.queues[0] == nil {
			continue
		}
		sc, rc := int(e.m.sender[id]), int(e.m.receiver[id])
		if e.issued[sc] || e.issued[rc] {
			continue
		}
		sCode, rCode := e.m.code(sc), e.m.code(rc)
		if e.pc[sc] >= len(sCode) || e.pc[rc] >= len(rCode) {
			continue
		}
		sOp, rOp := sCode[e.pc[sc]], rCode[e.pc[rc]]
		if sOp.Kind != model.Write || sOp.Msg != id {
			continue
		}
		if rOp.Kind != model.Read || rOp.Msg != id {
			continue
		}
		w := e.logic.Produce(e.m.sender[id], id, ms.written)
		e.logic.OnRead(e.m.receiver[id], id, ms.read, w)
		e.deliver(id, w)
		ms.written++
		ms.read++
		ms.departed[0]++
		e.noteMoved(id, sk)
		e.advancePC(sc, sk)
		e.advancePC(rc, sk)
		sk.anyEvent = true
		sk.wordsMoved++
	}
}

// releasePhase frees queues whose message has fully passed (§2.3: a
// queue may be reassigned only after the current message's last word
// has passed it) and retires messages with nothing left bound. The
// moved set is sorted, chunked by position, and merged in shard
// order, so release-side timeline events keep their ascending-message
// order for any worker count.
//
//sysvet:hotpath
func (e *exec) releasePhase() {
	slices.Sort(e.movedMsgs)
	e.fanout(len(e.movedMsgs), e.fnRelease)
	e.mergeSinks()
	e.movedMsgs = e.movedMsgs[:0]
}

// releaseShard frees the releasable queues of shard s's chunk of the
// moved set. A queue becomes releasable exactly on the cycle its
// message's last word departs it (the queue is empty at that same
// instant), so the messages with departure events this cycle are the
// only release candidates.
//
//sysvet:hotpath
func (e *exec) releaseShard(s int) {
	sk := &e.sinks[s]
	lo, hi := chunk(len(e.movedMsgs), e.workers, s)
	for _, id := range e.movedMsgs[lo:hi] {
		e.movedFlag[id] = false
		ms := &e.msgs[id]
		words := e.m.words[id]
		for hop := range ms.queues {
			if !ms.granted[hop] || ms.queues[hop] == nil {
				continue
			}
			if ms.departed[hop] == words && ms.queues[hop].q.Empty() {
				qi := ms.queues[hop]
				qi.bound = false
				qi.q.Reset()
				ms.queues[hop] = nil // keep granted=true: the message had its turn
				sk.releases++
				sk.armed = append(sk.armed, e.poolOf(id, hop))
				if e.recordTimeline {
					sk.timeline = append(sk.timeline, BindEvent{Cycle: e.now, Link: qi.link, QueueIdx: qi.idx, Msg: id, Bound: false})
				}
			}
		}
	}
}

// result assembles the run's Result. Blocked-cycle accounting is the
// closed form of the reference engine's per-cycle counter: a cell is
// blocked in every cycle it existed unfinished and did not issue.
func (e *exec) result() Result {
	e.res.Completed = e.remaining == 0
	if !e.res.Completed && !e.res.Deadlocked {
		e.res.TimedOut = true
	}
	e.res.Cycles = e.now
	e.res.Received = e.received

	// Cycles in which the reference engine's accounting ran: every
	// executed cycle, plus the deadlock cycle itself (its accounting
	// runs before the stall is declared).
	accounted := e.now
	if e.res.Deadlocked {
		accounted++
	}
	cells := e.m.prog.NumCells()
	blocked := make([]int, cells)
	for c := 0; c < cells; c++ {
		n := len(e.m.code(c))
		if n == 0 {
			continue
		}
		if e.pc[c] >= n {
			// Unfinished through its final-issue cycle inclusive,
			// issuing in n of those cycles (the last of which is the
			// final-issue cycle itself, never counted as blocked).
			blocked[c] = e.finishedAt[c] + 1 - n
		} else {
			blocked[c] = accounted - e.pc[c]
		}
	}
	e.stats.BlockedCycles = blocked
	e.stats.Cycles = e.now
	e.stats.Queues = make([]QueueStat, 0, len(e.queues))
	for i := range e.queues {
		qi := &e.queues[i]
		// qi.link is the real link, not the pool id: under
		// DirectionalPools a link's two pools report under the same
		// physical link, matching the timeline's attribution.
		e.stats.Queues = append(e.stats.Queues, QueueStat{Link: qi.link, QueueIdx: qi.idx, Stats: qi.q.Stats()})
	}
	e.res.Stats = e.stats
	return e.res
}

func (e *exec) blockedReport() []CellBlock {
	var out []CellBlock
	for c := 0; c < e.m.prog.NumCells(); c++ {
		cell := model.CellID(c)
		code := e.m.code(c)
		if e.pc[c] >= len(code) {
			continue
		}
		op := code[e.pc[c]]
		out = append(out, CellBlock{Cell: cell, Op: op, OpIdx: e.pc[c], Reason: e.blockReason(op)})
	}
	return out
}

func (e *exec) blockReason(op model.Op) string {
	ms := &e.msgs[op.Msg]
	name := e.m.prog.Message(op.Msg).Name
	if op.Kind == model.Write {
		if len(ms.queues) > 0 && !ms.granted[0] {
			return fmt.Sprintf("no queue bound for %s on its first link", name)
		}
		return fmt.Sprintf("queue for %s is full (capacity %d) and the downstream never drains", name, e.capacity)
	}
	last := len(ms.queues) - 1
	if last >= 0 && !ms.granted[last] {
		return fmt.Sprintf("no queue bound for %s on its last link", name)
	}
	return fmt.Sprintf("no word of %s has arrived", name)
}
