package fault

import (
	"reflect"
	"strings"
	"testing"

	"systolic/internal/model"
	"systolic/internal/topology"
)

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
	}{
		{"cell out of range", &Plan{Cells: []CellFault{{Cell: 5, Factor: 2}}}},
		{"negative cell", &Plan{Cells: []CellFault{{Cell: -1, Factor: 2}}}},
		{"duplicate cell", &Plan{Cells: []CellFault{{Cell: 1, Factor: 2}, {Cell: 1, Dead: true}}}},
		{"negative factor", &Plan{Cells: []CellFault{{Cell: 0, Factor: -2}}}},
		{"dead plus slow", &Plan{Cells: []CellFault{{Cell: 0, Dead: true, Factor: 3}}}},
		{"negative from", &Plan{Cells: []CellFault{{Cell: 0, Factor: 2, From: -1}}}},
		{"link out of range", &Plan{Links: []LinkFault{{Link: 4, Factor: 2}}}},
		{"duplicate link", &Plan{Links: []LinkFault{{Link: 0, Factor: 2}, {Link: 0, Severed: true}}}},
		{"severed plus slow", &Plan{Links: []LinkFault{{Link: 0, Severed: true, Factor: 2}}}},
		{"link negative from", &Plan{Links: []LinkFault{{Link: 0, Factor: 2, From: -3}}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(5, 4); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(0, 0); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	ok := &Plan{
		Cells: []CellFault{{Cell: 0, Factor: 3}, {Cell: 4, Dead: true, From: 7}},
		Links: []LinkFault{{Link: 3, Severed: true}, {Link: 0, Factor: 2, From: 1}},
	}
	if err := ok.Validate(5, 4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestIsNoopAndPeriodicOnly(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.IsNoop() || !nilPlan.PeriodicOnly() {
		t.Error("nil plan not noop/periodic")
	}
	if !(&Plan{}).IsNoop() {
		t.Error("empty plan not noop")
	}
	factor1 := &Plan{
		Cells: []CellFault{{Cell: 0, Factor: 1}, {Cell: 1, Factor: 0}},
		Links: []LinkFault{{Link: 0, Factor: 1}},
	}
	if !factor1.IsNoop() {
		t.Error("all-factor-1 plan not noop")
	}
	slow := &Plan{Cells: []CellFault{{Cell: 0, Factor: 2}}}
	if slow.IsNoop() || !slow.PeriodicOnly() {
		t.Error("slowdown misclassified")
	}
	dead := &Plan{Cells: []CellFault{{Cell: 0, Dead: true}}}
	if dead.IsNoop() || dead.PeriodicOnly() {
		t.Error("dead cell misclassified")
	}
	severed := &Plan{Links: []LinkFault{{Link: 0, Severed: true}}}
	if severed.IsNoop() || severed.PeriodicOnly() {
		t.Error("severed link misclassified")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"cell:2:slow=3",
		"cell:0:dead",
		"cell:1:dead@12",
		"link:4:slow=2@7",
		"link:3:sever",
		"cell:2:slow=3,cell:0:dead@5,link:1:slow=4,link:0:sever@9",
	}
	for _, s := range specs {
		p, err := ParseSpec(s)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", s, err)
			continue
		}
		if got := p.String(); got != s {
			t.Errorf("round trip %q → %q", s, got)
		}
	}
	// Whitespace is tolerated, canonical form is tight.
	p, err := ParseSpec(" cell:1:slow=2 , link:0:sever ")
	if err != nil {
		t.Fatalf("spaced spec: %v", err)
	}
	if got := p.String(); got != "cell:1:slow=2,link:0:sever" {
		t.Errorf("spaced spec canonicalized to %q", got)
	}
	if p2, err := ParseSpec(""); err != nil || p2 != nil {
		t.Errorf("empty spec → (%v, %v), want (nil, nil)", p2, err)
	}
	bad := []string{
		"cell:1",          // missing effect
		"cell:x:slow=2",   // bad index
		"cell:1:slow=x",   // bad factor
		"cell:1:sever",    // cells die
		"link:1:dead",     // links sever
		"cell:1:slow=2@x", // bad from
		"queue:1:slow=2",  // unknown kind
		"cell:1:explode",  // unknown effect
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q) accepted", s)
		}
	}
}

func TestLowerGates(t *testing.T) {
	plan := &Plan{
		Cells: []CellFault{
			{Cell: 1, Factor: 3},           // slow from cycle 0
			{Cell: 2, Dead: true, From: 5}, // dead from cycle 5
			{Cell: 3, Factor: 1},           // no-op entry
		},
		Links: []LinkFault{
			{Link: 0, Factor: 2, From: 4}, // throttled from cycle 4
			{Link: 2, Severed: true},      // severed from cycle 0
		},
	}
	l := Lower(plan, 4, 3)
	if l == nil {
		t.Fatal("Lower returned nil for an effective plan")
	}

	// Unfaulted cell always open.
	for cyc := 0; cyc < 10; cyc++ {
		if !l.CellOpen(0, cyc) {
			t.Errorf("healthy cell closed at %d", cyc)
		}
	}
	// Factor-3 cell: open exactly on multiples of 3 (global phase).
	for cyc := 0; cyc < 12; cyc++ {
		want := cyc%3 == 0
		if got := l.CellOpen(1, cyc); got != want {
			t.Errorf("slow cell at %d: open=%v, want %v", cyc, got, want)
		}
	}
	// Dead-from-5 cell: open before 5, closed forever after.
	for cyc := 0; cyc < 10; cyc++ {
		want := cyc < 5
		if got := l.CellOpen(2, cyc); got != want {
			t.Errorf("dead cell at %d: open=%v, want %v", cyc, got, want)
		}
	}
	// Factor-1 entry lowered to no gate.
	if !l.CellOpen(3, 7) {
		t.Error("factor-1 cell gated")
	}
	// Throttled-from-4 link: open before 4, then even cycles only.
	for cyc := 0; cyc < 10; cyc++ {
		want := cyc < 4 || cyc%2 == 0
		if got := l.LinkOpen(0, cyc); got != want {
			t.Errorf("throttled link at %d: open=%v, want %v", cyc, got, want)
		}
	}
	// Severed link closed from cycle 0.
	if l.LinkOpen(2, 0) || l.LinkOpen(2, 100) {
		t.Error("severed link open")
	}
	// Healthy link open.
	if !l.LinkOpen(1, 3) {
		t.Error("healthy link closed")
	}

	// AllPeriodicOpen: factor 3 (from 0) and factor 2 (from 4) are both
	// open on multiples of 6, and on 3 (the link gate not yet in
	// effect); never on 4 (3∤4), 8 (3∤8), or 9 (2∤9).
	for _, c := range []struct {
		cyc  int
		want bool
	}{{0, true}, {3, true}, {4, false}, {6, true}, {8, false}, {9, false}, {12, true}} {
		if got := l.AllPeriodicOpen(c.cyc); got != c.want {
			t.Errorf("AllPeriodicOpen(%d) = %v, want %v", c.cyc, got, c.want)
		}
	}

	if l.MaxFactor() != 3 {
		t.Errorf("MaxFactor = %d, want 3", l.MaxFactor())
	}
	if n, ok := l.ScaleCycles(100); !ok || n != 300 {
		t.Errorf("ScaleCycles(100) = (%d, %v), want (300, true)", n, ok)
	}
	const maxInt = int(^uint(0) >> 1)
	if _, ok := l.ScaleCycles(maxInt/3 + 1); ok {
		t.Error("ScaleCycles overflow not reported")
	}

	// Descriptions: only effective faults, cells first, plan order.
	want := []string{"cell:1:slow=3", "cell:2:dead@5", "link:0:slow=2@4", "link:2:sever"}
	if got := l.Descriptions(); !reflect.DeepEqual(got, want) {
		t.Errorf("Descriptions = %v, want %v", got, want)
	}
}

func TestLowerNoopReturnsNil(t *testing.T) {
	if Lower(nil, 3, 2) != nil {
		t.Error("Lower(nil) non-nil")
	}
	if Lower(&Plan{}, 3, 2) != nil {
		t.Error("Lower(empty) non-nil")
	}
	if Lower(&Plan{Cells: []CellFault{{Cell: 0, Factor: 1}}}, 3, 2) != nil {
		t.Error("Lower(factor-1) non-nil")
	}
}

// TestTypesAreStable pins the public field types the wire format and
// CLI build on.
func TestTypesAreStable(t *testing.T) {
	_ = CellFault{Cell: model.CellID(0), Factor: 2, Dead: false, From: 0}
	_ = LinkFault{Link: topology.LinkID(0), Factor: 2, Severed: false, From: 0}
}

// TestParseSpecEdgeCases pins the spec-grammar corners the fuzz
// corpus replays through the oracle's fault-spec-roundtrip invariant:
// @0 means "from the start" and canonicalizes to no suffix, negative
// effective-from cycles are rejected, and naming one cell or link
// twice — even with different effects — is a parse error rather than
// a silent last-write-wins.
func TestParseSpecEdgeCases(t *testing.T) {
	// @0 is accepted and equivalent to omitting the suffix.
	for _, s := range []string{"cell:1:slow=2@0", "link:0:sever@0"} {
		p, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		canon := p.String()
		if strings.Contains(canon, "@") {
			t.Errorf("ParseSpec(%q).String() = %q, want the @0 suffix dropped", s, canon)
		}
		again, err := ParseSpec(canon)
		if err != nil || !reflect.DeepEqual(p, again) {
			t.Errorf("canonical form %q did not round-trip: %v", canon, err)
		}
	}

	// Duplicate targets and negative effective-from cycles are parse
	// errors with messages naming the offending element.
	bad := []struct {
		spec, want string
	}{
		{"cell:1:slow=2,cell:1:slow=3", "cell 1 already has a fault"},
		{"cell:1:slow=2,cell:1:dead", "cell 1 already has a fault"},
		{"link:0:slow=2,link:0:sever", "link 0 already has a fault"},
		{"link:2:sever,cell:0:dead,link:2:slow=4", "link 2 already has a fault"},
		{"cell:1:slow=2@-3", "negative effective-from cycle"},
	}
	for _, tc := range bad {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted", tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ParseSpec(%q) error %q, want it to contain %q", tc.spec, err, tc.want)
		}
	}

	// The same cell and link index are distinct elements: no clash.
	if _, err := ParseSpec("cell:1:slow=2,link:1:slow=2"); err != nil {
		t.Errorf("cell and link sharing an index rejected: %v", err)
	}
}
