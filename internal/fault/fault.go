// Package fault models degraded arrays: slowed or dead cells and
// throttled or severed links, each optionally taking effect from a
// given cycle. A Plan is the declarative description; Lower compiles
// it into dense per-cell and per-link gate tables that both execution
// engines (the compiled machine and the full-scan reference) consult
// at identical points, so degraded runs stay byte-identical across
// engines and worker counts.
//
// Determinism argument: every gate is a pure function of (static
// plan, cycle number). A slowed element with factor k accepts work
// only on cycles that are multiples of k — a global phase, not one
// relative to the fault's effective-from cycle — so all periodic
// gates open simultaneously on common multiples. Deadlock detection
// waits for such an all-open cycle: the system's state evolves only
// on events, so a no-event cycle with every periodic gate open proves
// no future cycle can make progress either, exactly as in the
// fault-free engine. Dead cells and severed links never reopen; work
// depending on them stalls into an ordinary detected deadlock.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// CellFault degrades one cell: a periodic slowdown (the cell issues
// reads/writes only every Factor-th cycle), or death (the cell never
// issues again). Interior word forwarding through the cell is NOT
// gated by a cell fault — forwarding belongs to the communication
// agent (§2), which the link faults model.
type CellFault struct {
	// Cell is the degraded cell.
	Cell model.CellID
	// Factor is the periodic slowdown: the cell may issue only on
	// cycles divisible by Factor. 0 and 1 mean no slowdown.
	Factor int
	// Dead marks the cell permanently unable to issue from From on.
	Dead bool
	// From is the first cycle the fault is in effect (0 = always).
	From int
}

// LinkFault degrades one link: a periodic throttle (words may enter
// the link's queues only every Factor-th cycle) or a severed link (no
// word ever enters again). Words already buffered on the link may
// still be read out — they crossed before the fault bit.
type LinkFault struct {
	// Link is the degraded link.
	Link topology.LinkID
	// Factor is the periodic throttle: words enter the link's queues
	// only on cycles divisible by Factor. 0 and 1 mean no throttle.
	Factor int
	// Severed marks the link permanently closed from From on.
	Severed bool
	// From is the first cycle the fault is in effect (0 = always).
	From int
}

// Plan is a set of faults to apply to one run. At most one fault per
// cell and per link; Validate enforces this along with index bounds.
// A nil *Plan, an empty Plan, and a Plan whose every entry is a no-op
// (factor ≤ 1, not dead, not severed) are all equivalent to running
// fault-free, and the engines produce byte-identical results for all
// three (the property suite pins this).
type Plan struct {
	Cells []CellFault
	Links []LinkFault
}

// IsNoop reports whether the plan (possibly nil) degrades nothing.
func (p *Plan) IsNoop() bool {
	if p == nil {
		return true
	}
	for _, c := range p.Cells {
		if c.Dead || c.Factor > 1 {
			return false
		}
	}
	for _, l := range p.Links {
		if l.Severed || l.Factor > 1 {
			return false
		}
	}
	return true
}

// PeriodicOnly reports whether the plan (possibly nil) contains no
// dead cells and no severed links — only slowdowns, which delay but
// can never remove progress. An analyzer-approved configuration under
// a periodic-only plan must still complete; the differential oracle's
// degraded-completion invariant enforces exactly this.
func (p *Plan) PeriodicOnly() bool {
	if p == nil {
		return true
	}
	for _, c := range p.Cells {
		if c.Dead {
			return false
		}
	}
	for _, l := range p.Links {
		if l.Severed {
			return false
		}
	}
	return true
}

// Validate checks the plan against an array of numCells cells and
// numLinks links: indexes in range, factors non-negative, no dead
// element that also declares a slowdown, and at most one fault per
// cell and per link. A nil plan is valid.
func (p *Plan) Validate(numCells, numLinks int) error {
	if p == nil {
		return nil
	}
	seenCell := make(map[model.CellID]bool, len(p.Cells))
	for _, c := range p.Cells {
		if int(c.Cell) < 0 || int(c.Cell) >= numCells {
			return fmt.Errorf("cell %d out of range (array has %d cells)", c.Cell, numCells)
		}
		if seenCell[c.Cell] {
			return fmt.Errorf("cell %d has more than one fault", c.Cell)
		}
		seenCell[c.Cell] = true
		if c.Factor < 0 {
			return fmt.Errorf("cell %d: negative slowdown factor %d", c.Cell, c.Factor)
		}
		if c.Dead && c.Factor > 1 {
			return fmt.Errorf("cell %d: dead cell cannot also declare slowdown factor %d", c.Cell, c.Factor)
		}
		if c.From < 0 {
			return fmt.Errorf("cell %d: negative effective-from cycle %d", c.Cell, c.From)
		}
	}
	seenLink := make(map[topology.LinkID]bool, len(p.Links))
	for _, l := range p.Links {
		if int(l.Link) < 0 || int(l.Link) >= numLinks {
			return fmt.Errorf("link %d out of range (topology has %d links)", l.Link, numLinks)
		}
		if seenLink[l.Link] {
			return fmt.Errorf("link %d has more than one fault", l.Link)
		}
		seenLink[l.Link] = true
		if l.Factor < 0 {
			return fmt.Errorf("link %d: negative throttle factor %d", l.Link, l.Factor)
		}
		if l.Severed && l.Factor > 1 {
			return fmt.Errorf("link %d: severed link cannot also declare throttle factor %d", l.Link, l.Factor)
		}
		if l.From < 0 {
			return fmt.Errorf("link %d: negative effective-from cycle %d", l.Link, l.From)
		}
	}
	return nil
}

// describeCell renders one cell fault canonically (the spec grammar
// ParseSpec accepts).
func describeCell(c CellFault) string {
	var b strings.Builder
	b.WriteString("cell:")
	b.WriteString(strconv.Itoa(int(c.Cell)))
	if c.Dead {
		b.WriteString(":dead")
	} else {
		b.WriteString(":slow=")
		b.WriteString(strconv.Itoa(c.Factor))
	}
	if c.From > 0 {
		b.WriteString("@")
		b.WriteString(strconv.Itoa(c.From))
	}
	return b.String()
}

// describeLink renders one link fault canonically.
func describeLink(l LinkFault) string {
	var b strings.Builder
	b.WriteString("link:")
	b.WriteString(strconv.Itoa(int(l.Link)))
	if l.Severed {
		b.WriteString(":sever")
	} else {
		b.WriteString(":slow=")
		b.WriteString(strconv.Itoa(l.Factor))
	}
	if l.From > 0 {
		b.WriteString("@")
		b.WriteString(strconv.Itoa(l.From))
	}
	return b.String()
}

// String renders the plan as a comma-separated spec, cells first then
// links, each in declaration order. ParseSpec(p.String()) round-trips
// every valid plan with factors ≥ 2.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := make([]string, 0, len(p.Cells)+len(p.Links))
	for _, c := range p.Cells {
		parts = append(parts, describeCell(c))
	}
	for _, l := range p.Links {
		parts = append(parts, describeLink(l))
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault spec, the grammar the
// `sysdl run -fault` flag and the server wire format's string form
// share:
//
//	cell:IDX:slow=K[@FROM]   periodic cell slowdown, factor K
//	cell:IDX:dead[@FROM]     dead cell
//	link:IDX:slow=K[@FROM]   periodic link throttle, factor K
//	link:IDX:sever[@FROM]    severed link
//
// The optional @FROM suffix delays the fault to cycle FROM; @0 is
// accepted and means "from the start", the same as no suffix (the
// canonical String form omits it). An empty spec returns a nil plan.
// Naming one cell or link twice is a parse error, not a silent
// last-write-wins: a plan can hold at most one fault per element, and
// Lower without an intervening Validate used to keep whichever
// duplicate came last. Index bounds are not known here; callers run
// Plan.Validate against the concrete scenario.
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{}
	seenCell := map[int]bool{}
	seenLink := map[int]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		fields := strings.SplitN(part, ":", 3)
		if len(fields) != 3 {
			return nil, fmt.Errorf("fault spec %q: want kind:index:effect", part)
		}
		idx, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("fault spec %q: bad index: %v", part, err)
		}
		effect := fields[2]
		from := 0
		if at := strings.IndexByte(effect, '@'); at >= 0 {
			from, err = strconv.Atoi(effect[at+1:])
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: bad effective-from cycle: %v", part, err)
			}
			if from < 0 {
				return nil, fmt.Errorf("fault spec %q: negative effective-from cycle %d", part, from)
			}
			effect = effect[:at]
		}
		factor := 0
		terminal := false
		switch {
		case effect == "dead" || effect == "sever":
			terminal = true
		case strings.HasPrefix(effect, "slow="):
			factor, err = strconv.Atoi(strings.TrimPrefix(effect, "slow="))
			if err != nil {
				return nil, fmt.Errorf("fault spec %q: bad slowdown factor: %v", part, err)
			}
		default:
			return nil, fmt.Errorf("fault spec %q: unknown effect %q (want slow=K, dead, or sever)", part, effect)
		}
		switch fields[0] {
		case "cell":
			if effect == "sever" {
				return nil, fmt.Errorf("fault spec %q: cells die, links sever", part)
			}
			if seenCell[idx] {
				return nil, fmt.Errorf("fault spec %q: cell %d already has a fault in this spec (one fault per cell)", part, idx)
			}
			seenCell[idx] = true
			p.Cells = append(p.Cells, CellFault{Cell: model.CellID(idx), Factor: factor, Dead: terminal, From: from})
		case "link":
			if effect == "dead" {
				return nil, fmt.Errorf("fault spec %q: links sever, cells die", part)
			}
			if seenLink[idx] {
				return nil, fmt.Errorf("fault spec %q: link %d already has a fault in this spec (one fault per link)", part, idx)
			}
			seenLink[idx] = true
			p.Links = append(p.Links, LinkFault{Link: topology.LinkID(idx), Factor: factor, Severed: terminal, From: from})
		default:
			return nil, fmt.Errorf("fault spec %q: unknown kind %q (want cell or link)", part, fields[0])
		}
	}
	return p, nil
}

// periodicGate is one compiled slowdown for the all-open deadlock
// check.
type periodicGate struct {
	factor int
	from   int
}

// Lowered is a Plan compiled against a concrete array: dense per-cell
// and per-link tables the engines' hot paths index directly. Factor
// encoding: 0 = no fault, ≥ 2 = periodic factor, -1 = dead/severed.
// Immutable after Lower; safe to share read-only across shards.
type Lowered struct {
	cellFactor []int32
	cellFrom   []int32
	linkFactor []int32
	linkFrom   []int32
	periodic   []periodicGate
	maxFactor  int
	descs      []string
}

// Lower compiles a validated plan against an array of numCells cells
// and numLinks links. It returns nil for a no-op plan, so callers can
// gate every hot-path check on a single nil test.
func Lower(p *Plan, numCells, numLinks int) *Lowered {
	if p.IsNoop() {
		return nil
	}
	l := &Lowered{
		cellFactor: make([]int32, numCells),
		cellFrom:   make([]int32, numCells),
		linkFactor: make([]int32, numLinks),
		linkFrom:   make([]int32, numLinks),
		maxFactor:  1,
	}
	for _, c := range p.Cells {
		if !c.Dead && c.Factor <= 1 {
			continue
		}
		f := int32(-1)
		if !c.Dead {
			f = int32(c.Factor)
			l.periodic = append(l.periodic, periodicGate{factor: c.Factor, from: c.From})
			if c.Factor > l.maxFactor {
				l.maxFactor = c.Factor
			}
		}
		l.cellFactor[c.Cell] = f
		l.cellFrom[c.Cell] = int32(c.From)
		l.descs = append(l.descs, describeCell(c))
	}
	for _, lf := range p.Links {
		if !lf.Severed && lf.Factor <= 1 {
			continue
		}
		f := int32(-1)
		if !lf.Severed {
			f = int32(lf.Factor)
			l.periodic = append(l.periodic, periodicGate{factor: lf.Factor, from: lf.From})
			if lf.Factor > l.maxFactor {
				l.maxFactor = lf.Factor
			}
		}
		l.linkFactor[lf.Link] = f
		l.linkFrom[lf.Link] = int32(lf.From)
		l.descs = append(l.descs, describeLink(lf))
	}
	return l
}

// CellOpen reports whether cell c may issue an operation on cycle.
//
//sysvet:hotpath
func (l *Lowered) CellOpen(c model.CellID, cycle int) bool {
	f := l.cellFactor[c]
	if f == 0 || cycle < int(l.cellFrom[c]) {
		return true
	}
	if f < 0 {
		return false
	}
	return cycle%int(f) == 0
}

// LinkOpen reports whether a word may enter link lk's queues on cycle.
//
//sysvet:hotpath
func (l *Lowered) LinkOpen(lk topology.LinkID, cycle int) bool {
	f := l.linkFactor[lk]
	if f == 0 || cycle < int(l.linkFrom[lk]) {
		return true
	}
	if f < 0 {
		return false
	}
	return cycle%int(f) == 0
}

// AllPeriodicOpen reports whether every periodic gate is open on
// cycle. A no-event cycle that satisfies this is a true deadlock:
// dead and severed elements never reopen, every slowed element was
// offered the cycle, and the state cannot change without an event.
//
//sysvet:hotpath
func (l *Lowered) AllPeriodicOpen(cycle int) bool {
	for _, g := range l.periodic {
		if cycle >= g.from && cycle%g.factor != 0 {
			return false
		}
	}
	return true
}

// MaxFactor returns the largest periodic factor in the plan (≥ 1):
// the multiplier the engines apply to their derived default cycle
// bound, since a factor-k slowdown stretches any schedule by ≤ k.
func (l *Lowered) MaxFactor() int {
	return l.maxFactor
}

// ScaleCycles scales a derived cycle bound by MaxFactor, reporting
// failure instead of overflowing.
func (l *Lowered) ScaleCycles(n int) (int, bool) {
	f := l.maxFactor
	if f <= 1 {
		return n, true
	}
	const maxInt = int(^uint(0) >> 1)
	if n > maxInt/f {
		return 0, false
	}
	return n * f, true
}

// Descriptions returns the active (non-no-op) faults in canonical
// spec form, cells first then links, each in plan order. The slice is
// computed once at Lower and shared; callers must not modify it.
func (l *Lowered) Descriptions() []string {
	return l.descs
}
