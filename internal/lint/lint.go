// Package lint is the repository's static-analysis engine: a small,
// dependency-free reimplementation of the golang.org/x/tools
// go/analysis shape (Analyzer, Pass, Diagnostic) driven by `go list`
// and the standard library's go/parser + go/types. It exists because
// the contracts ARCHITECTURE.md states in prose — deterministic map
// iteration in anything that reaches a report, the Grant purity
// contract, hot-path allocation budgets, context cancellation in
// blocking paths, and the package-doc floor — are all statically
// decidable, and checking them at review time is cheaper than
// discovering violations dynamically in the equivalence suite.
//
// The command `go run ./tools/sysvet ./...` runs every analyzer over
// the module and exits non-zero on findings. Three source directives
// steer the suite:
//
//	//sysvet:ignore <analyzer> -- <reason>   suppress a finding on this or the next line
//	//sysvet:unordered -- <reason>           assert a map range is order-insensitive (detorder)
//	//sysvet:hotpath                         opt a function into the hotalloc allocation rules
//
// ignore and unordered require a non-empty reason after " -- ";
// a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
)

// Analyzer is one named static check. Run inspects a single package
// through its Pass and reports findings; it must not retain the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in
	// //sysvet:ignore directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run performs the check over one package.
	Run func(*Pass)
}

// Pass carries one package through one analyzer, mirroring
// go/analysis.Pass: parsed files, type information, and a Report
// sink. Dirs exposes the package's sysvet directives so analyzers
// with their own directive semantics (detorder's unordered,
// hotalloc's hotpath) can consult them.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Dirs     *DirectiveIndex

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: a position, the analyzer that produced
// it, and a message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", relPosition(d.Pos), d.Message, d.Analyzer)
}

// relPosition renders a position with the filename relative to the
// working directory when possible; go list reports absolute package
// dirs and relative paths read better in CI logs.
func relPosition(pos token.Position) string {
	if wd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(wd, pos.Filename); err == nil && len(rel) < len(pos.Filename) {
			pos.Filename = rel
		}
	}
	return pos.String()
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Detorder, Grantpure, Hotalloc, Ctxloop, Pkgdoc}
}

// analyzerNames is consulted when validating //sysvet:ignore
// directives: suppressing an analyzer that does not exist is a typo
// worth failing the build over.
func analyzerNames() map[string]bool {
	names := make(map[string]bool)
	for _, a := range Analyzers() {
		names[a.Name] = true
	}
	return names
}

// RunPackage runs the given analyzers over one loaded package,
// applies //sysvet:ignore suppression, and folds in malformed
// directives as findings of their own.
func RunPackage(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	dirs := parseDirectives(pkg.Fset, pkg.Files)
	out := append([]Diagnostic(nil), dirs.Problems()...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Dirs:     dirs,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if dirs.Suppressed(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	return out
}

// RunAll runs the analyzers over every root package of a load result
// and returns the findings in a stable order.
func RunAll(res *Result, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range res.Pkgs {
		out = append(out, RunPackage(pkg, analyzers)...)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// Main is the entry point shared with the tools/sysvet command: load
// the packages named by patterns (default ./...), run the suite,
// print findings, and return the process exit code.
func Main(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sysvet:", err)
		return 2
	}
	diags := RunAll(res, Analyzers())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sysvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
