package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The module universe (every systolic package plus its stdlib deps,
// fully type-checked) is shared across tests: fixtures type-check
// against it via LoadDir, and TestRepoIsClean runs the suite over it.
var (
	loadOnce sync.Once
	loadRes  *Result
	loadErr  error
)

func universe(t *testing.T) *Result {
	t.Helper()
	loadOnce.Do(func() {
		loadRes, loadErr = Load("systolic/...")
	})
	if loadErr != nil {
		t.Fatalf("loading module universe: %v", loadErr)
	}
	return loadRes
}

// loadFixture type-checks testdata/src/<dir> against the universe
// under the given import path, so path-scoped analyzers treat the
// fixture as the package the path names.
func loadFixture(t *testing.T, dir, importPath string) *Package {
	t.Helper()
	pkg, err := universe(t).LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

type wantKey struct {
	file string
	line int
}

var wantRe = regexp.MustCompile("// want `([^`]+)`")

// fixtureWants collects the `// want` annotations of a fixture
// package, keyed by the file and line they trail.
func fixtureWants(t *testing.T, pkg *Package) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[wantKey][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

// checkFixture runs the analyzers over a fixture and matches the
// findings against its want annotations, in both directions: every
// finding must be wanted on its line, and every want must be matched
// by a finding.
func checkFixture(t *testing.T, pkg *Package, analyzers []*Analyzer) {
	t.Helper()
	diags := RunPackage(pkg, analyzers)
	wants := fixtureWants(t, pkg)
	used := make(map[*regexp.Regexp]bool)
	for _, d := range diags {
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, re := range wants[key] {
			if !used[re] && re.MatchString(d.Message) {
				used[re] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for key, res := range wants {
		for _, re := range res {
			if !used[re] {
				t.Errorf("%s:%d: no finding matching %q", key.file, key.line, re)
			}
		}
	}
}

func TestDetorderFixture(t *testing.T) {
	// server is determinism-critical, so detorder fires there.
	pkg := loadFixture(t, "detorder", "systolic/internal/server")
	checkFixture(t, pkg, []*Analyzer{Detorder})
}

func TestDetorderScopedToCriticalPackages(t *testing.T) {
	// The same fixture under a non-critical path must be silent:
	// detorder's contract covers only packages whose output reaches
	// reports or wire responses.
	pkg := loadFixture(t, "detorder", "systolic/internal/assign")
	if diags := RunPackage(pkg, []*Analyzer{Detorder}); len(diags) != 0 {
		t.Errorf("detorder fired outside critical packages: %v", diags)
	}
}

func TestGrantpureFixture(t *testing.T) {
	// grantpure is signature-scoped, not path-scoped: any package
	// defining a Policy-shaped Grant is checked.
	pkg := loadFixture(t, "grantpure", "systolic/internal/lintfixtures/grantfix")
	checkFixture(t, pkg, []*Analyzer{Grantpure})
}

func TestHotallocFixture(t *testing.T) {
	pkg := loadFixture(t, "hotalloc", "systolic/internal/lintfixtures/hotallocfix")
	checkFixture(t, pkg, []*Analyzer{Hotalloc})
}

func TestCtxloopFixture(t *testing.T) {
	// sweep is in both ctxloop scopes: blocking loops and ExecOptions
	// literals.
	pkg := loadFixture(t, "ctxloop", "systolic/internal/sweep")
	checkFixture(t, pkg, []*Analyzer{Ctxloop})
}

func TestCtxloopScopedToBlockingPackages(t *testing.T) {
	pkg := loadFixture(t, "ctxloop", "systolic/internal/label")
	if diags := RunPackage(pkg, []*Analyzer{Ctxloop}); len(diags) != 0 {
		t.Errorf("ctxloop fired outside its packages: %v", diags)
	}
}

func TestPkgdocFixtures(t *testing.T) {
	nodoc := loadFixture(t, filepath.Join("pkgdoc", "nodoc"), "systolic/internal/lintfixtures/nodoc")
	checkFixture(t, nodoc, []*Analyzer{Pkgdoc})

	hasdoc := loadFixture(t, filepath.Join("pkgdoc", "hasdoc"), "systolic/internal/lintfixtures/hasdoc")
	if diags := RunPackage(hasdoc, []*Analyzer{Pkgdoc}); len(diags) != 0 {
		t.Errorf("pkgdoc flagged a documented package: %v", diags)
	}
}

// TestDirectiveValidation covers the directive grammar
// programmatically: a want comment cannot share a line with the
// directive it describes, so the fixture's malformed directives are
// asserted by category here. The load path puts the fixture in a
// detorder-critical package so the final assertion — a reasonless
// ignore does not suppress — has a finding to not-suppress.
func TestDirectiveValidation(t *testing.T) {
	pkg := loadFixture(t, "directives", "systolic/internal/sim")
	diags := RunPackage(pkg, Analyzers())

	countBy := func(analyzer, substr string) int {
		n := 0
		for _, d := range diags {
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				n++
			}
		}
		return n
	}
	checks := []struct {
		analyzer, substr string
		want             int
	}{
		{"sysvet", "//sysvet:ignore requires a non-empty reason", 3},
		{"sysvet", "//sysvet:unordered requires a non-empty reason", 1},
		{"sysvet", `unknown analyzer "nosuchanalyzer"`, 1},
		{"sysvet", "usage: //sysvet:ignore <analyzer> -- <reason>", 1},
		{"sysvet", "usage: //sysvet:hotpath (no arguments)", 1},
		{"sysvet", `unknown sysvet directive "frobnicate"`, 1},
		{"detorder", "map iteration order escapes", 1}, // the malformed ignore must not suppress
	}
	for _, c := range checks {
		if got := countBy(c.analyzer, c.substr); got != c.want {
			t.Errorf("findings [%s] containing %q: got %d, want %d\nall: %v",
				c.analyzer, c.substr, got, c.want, diags)
		}
	}
	if want := 9; len(diags) != want {
		t.Errorf("total findings: got %d, want %d\nall: %v", len(diags), want, diags)
	}
}

// TestRepoIsClean is the acceptance criterion as a test: the full
// suite over the whole module must report nothing. A finding here
// either needs a fix or a reasoned directive at the site.
func TestRepoIsClean(t *testing.T) {
	diags := RunAll(universe(t), Analyzers())
	for _, d := range diags {
		t.Errorf("sysvet finding: %s", d)
	}
}
