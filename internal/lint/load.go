package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analyzed package: parsed files plus full type
// information. Only root packages (the ones matched by the load
// patterns) carry Files and Info; dependencies are type-checked with
// function bodies ignored and only contribute their types.Package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// Result is a completed load: the shared FileSet, the root packages
// in dependency order, and the type-checked universe every import
// resolves against.
type Result struct {
	Fset   *token.FileSet
	Pkgs   []*Package
	byPath map[string]*types.Package
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// importerFunc adapts a lookup function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// Load resolves patterns with `go list -deps -json` and type-checks
// the whole dependency graph from source — the standard library
// included, since without golang.org/x/tools there is no export-data
// reader. go list emits dependencies before dependents, so a single
// forward pass with a map-backed importer suffices. CGO_ENABLED=0
// selects the pure-Go file sets for stdlib packages that would
// otherwise need cgo.
func Load(patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-json=Dir,ImportPath,Name,GoFiles,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	res := &Result{
		Fset:   token.NewFileSet(),
		byPath: map[string]*types.Package{"unsafe": types.Unsafe},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		lp := new(listedPkg)
		if err := dec.Decode(lp); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.ImportPath == "unsafe" || len(lp.GoFiles) == 0 {
			continue
		}
		if err := res.check(lp); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// check parses and type-checks one listed package into the result.
func (res *Result) check(lp *listedPkg) error {
	files, err := parseFiles(res.Fset, lp.Dir, lp.GoFiles)
	if err != nil {
		return err
	}
	root := !lp.DepOnly && !lp.Standard
	var info *types.Info
	if root {
		info = newInfo()
	}
	conf := types.Config{
		Importer:         importerFunc(res.importPath),
		FakeImportC:      true,
		IgnoreFuncBodies: !root,
	}
	tpkg, err := conf.Check(lp.ImportPath, res.Fset, files, info)
	if err != nil {
		return fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	res.byPath[lp.ImportPath] = tpkg
	// GOROOT-vendored packages are listed as vendor/<path> but imported
	// by their unvendored path; register both spellings.
	if trimmed := strings.TrimPrefix(lp.ImportPath, "vendor/"); trimmed != lp.ImportPath {
		res.byPath[trimmed] = tpkg
	}
	if root {
		res.Pkgs = append(res.Pkgs, &Package{
			Path:  lp.ImportPath,
			Name:  lp.Name,
			Dir:   lp.Dir,
			Files: files,
			Types: tpkg,
			Info:  info,
			Fset:  res.Fset,
		})
	}
	return nil
}

func (res *Result) importPath(path string) (*types.Package, error) {
	if p, ok := res.byPath[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("lint: import %q not loaded (go list order violated?)", path)
}

// LoadDir parses and type-checks a directory of Go files outside the
// module build (analyzer test fixtures under testdata) against this
// result's universe, under the given import path. Path-scoped
// analyzers see the fixture as whatever package the path claims, so
// fixtures can exercise rules that only fire in, say,
// systolic/internal/sweep.
func (res *Result) LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files, err := parseFiles(res.Fset, dir, names)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: importerFunc(res.importPath), FakeImportC: true}
	tpkg, err := conf.Check(importPath, res.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", dir, err)
	}
	return &Package{
		Path:  importPath,
		Name:  files[0].Name.Name,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		Fset:  res.Fset,
	}, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}
