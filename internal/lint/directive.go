package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed //sysvet: comment. Problem is non-empty
// when the directive is malformed; malformed directives never
// suppress anything and are reported as findings in their own right.
type Directive struct {
	Pos     token.Position
	Verb    string // "ignore", "unordered", or "hotpath"
	Arg     string // ignore: the analyzer being suppressed
	Reason  string
	Problem string
}

// DirectiveIndex holds every sysvet directive of one package, indexed
// by file and line for the suppression lookups.
type DirectiveIndex struct {
	byLine map[string]map[int][]*Directive
	list   []*Directive
}

const directivePrefix = "//sysvet:"

// parseDirectives scans every comment of the files for sysvet
// directives.
func parseDirectives(fset *token.FileSet, files []*ast.File) *DirectiveIndex {
	idx := &DirectiveIndex{byLine: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				d := parseDirective(c.Text)
				d.Pos = fset.Position(c.Pos())
				idx.list = append(idx.list, d)
				lines := idx.byLine[d.Pos.Filename]
				if lines == nil {
					lines = make(map[int][]*Directive)
					idx.byLine[d.Pos.Filename] = lines
				}
				lines[d.Pos.Line] = append(lines[d.Pos.Line], d)
			}
		}
	}
	return idx
}

// parseDirective splits "//sysvet:<verb> [arg] [-- reason]" and
// validates the shape. ignore and unordered insist on a non-empty
// reason: a suppression nobody can justify is a suppression nobody
// can review.
func parseDirective(text string) *Directive {
	rest := strings.TrimPrefix(text, directivePrefix)
	body, reason, hasReason := strings.Cut(rest, "--")
	reason = strings.TrimSpace(reason)
	fields := strings.Fields(body)
	if len(fields) == 0 {
		return &Directive{Problem: "missing directive verb; want ignore, unordered, or hotpath"}
	}
	d := &Directive{Verb: fields[0], Reason: reason}
	switch d.Verb {
	case "ignore":
		if len(fields) != 2 {
			d.Problem = "usage: //sysvet:ignore <analyzer> -- <reason>"
			return d
		}
		d.Arg = fields[1]
		if !analyzerNames()[d.Arg] {
			d.Problem = fmt.Sprintf("unknown analyzer %q in //sysvet:ignore", d.Arg)
			return d
		}
		if !hasReason || reason == "" {
			d.Problem = "//sysvet:ignore requires a non-empty reason: //sysvet:ignore <analyzer> -- <reason>"
		}
	case "unordered":
		if len(fields) != 1 {
			d.Problem = "usage: //sysvet:unordered -- <reason>"
			return d
		}
		if !hasReason || reason == "" {
			d.Problem = "//sysvet:unordered requires a non-empty reason: //sysvet:unordered -- <reason>"
		}
	case "hotpath":
		if len(fields) != 1 {
			d.Problem = "usage: //sysvet:hotpath (no arguments)"
		}
	default:
		d.Problem = fmt.Sprintf("unknown sysvet directive %q; want ignore, unordered, or hotpath", d.Verb)
	}
	return d
}

// at returns the well-formed directives on a given file line.
func (x *DirectiveIndex) at(file string, line int) []*Directive {
	if lines, ok := x.byLine[file]; ok {
		return lines[line]
	}
	return nil
}

// Suppressed reports whether a finding of the named analyzer at pos
// is covered by an ignore directive on the same line (trailing
// comment) or the line above (own-line comment).
func (x *DirectiveIndex) Suppressed(analyzer string, pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range x.at(pos.Filename, line) {
			if d.Problem == "" && d.Verb == "ignore" && d.Arg == analyzer {
				return true
			}
		}
	}
	return false
}

// Unordered reports whether a map range at pos carries a well-formed
// unordered directive (same line or the line above).
func (x *DirectiveIndex) Unordered(pos token.Position) bool {
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range x.at(pos.Filename, line) {
			if d.Problem == "" && d.Verb == "unordered" {
				return true
			}
		}
	}
	return false
}

// Hotpath reports whether a function declaration is marked
// //sysvet:hotpath, either inside its doc comment or on the line
// directly above the declaration.
func (x *DirectiveIndex) Hotpath(fset *token.FileSet, decl *ast.FuncDecl) bool {
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			if strings.HasPrefix(c.Text, directivePrefix+"hotpath") {
				return true
			}
		}
	}
	pos := fset.Position(decl.Pos())
	for _, d := range x.at(pos.Filename, pos.Line-1) {
		if d.Problem == "" && d.Verb == "hotpath" {
			return true
		}
	}
	return false
}

// Problems returns one diagnostic per malformed directive, under the
// reserved analyzer name "sysvet" so they cannot be self-suppressed.
func (x *DirectiveIndex) Problems() []Diagnostic {
	var out []Diagnostic
	for _, d := range x.list {
		if d.Problem != "" {
			out = append(out, Diagnostic{Pos: d.Pos, Analyzer: "sysvet", Message: d.Problem})
		}
	}
	return out
}
