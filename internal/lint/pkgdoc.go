package lint

import (
	"go/ast"
	"strings"
)

// Pkgdoc is the documentation floor formerly enforced by
// tools/doclint, folded into the multichecker so CI runs one static
// analysis entry point: every package must carry a package-level doc
// comment ("// Package xyz …", or "// Command xyz …" for mains) on at
// least one of its non-test files. Test-only packages never reach
// here — the loader only sees packages with non-test Go files.
var Pkgdoc = &Analyzer{
	Name: "pkgdoc",
	Doc:  "require a package doc comment on every package",
	Run:  runPkgdoc,
}

func runPkgdoc(pass *Pass) {
	if len(pass.Files) == 0 {
		return
	}
	var first *ast.File
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return
		}
		if first == nil || pass.Fset.Position(f.Package).Filename < pass.Fset.Position(first.Package).Filename {
			first = f
		}
	}
	want := "// Package " + pass.Pkg.Name()
	if pass.Pkg.Name() == "main" {
		want = "// Command <name>"
	}
	pass.Reportf(first.Package, "package %s has no package doc comment (want %s … on one file)", pass.Pkg.Name(), want)
}
