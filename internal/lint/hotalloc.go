package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc is the static counterpart of the TestAllocGate* dynamic
// gates: functions marked //sysvet:hotpath (the per-cycle scheduler
// phases in machine/exec.go and machine/parallel.go, the sweep inner
// loop) run millions of times per simulation and hold an 8–16-alloc
// budget per run, so they must not call fmt, box concrete values into
// interfaces, or allocate closures.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid fmt calls, interface boxing, and closure allocation " +
		"in functions marked //sysvet:hotpath",
	Run: runHotalloc,
}

func runHotalloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !pass.Dirs.Hotpath(pass.Fset, fd) {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
}

func checkHotBody(pass *Pass, fd *ast.FuncDecl) {
	var results *types.Tuple
	if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		results = obj.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(s.Pos(), "hot path %s allocates a closure", fd.Name.Name)
			return false
		case *ast.CallExpr:
			checkHotCall(pass, fd, s)
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN || len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i := range s.Lhs {
				lt := pass.Info.TypeOf(s.Lhs[i])
				if boxes(pass, lt, s.Rhs[i]) {
					pass.Reportf(s.Rhs[i].Pos(), "hot path %s boxes %s into %s", fd.Name.Name, typeName(pass, s.Rhs[i]), lt)
				}
			}
		case *ast.ValueSpec:
			if s.Type == nil {
				return true
			}
			lt := pass.Info.TypeOf(s.Type)
			for _, v := range s.Values {
				if boxes(pass, lt, v) {
					pass.Reportf(v.Pos(), "hot path %s boxes %s into %s", fd.Name.Name, typeName(pass, v), lt)
				}
			}
		case *ast.ReturnStmt:
			if results == nil || len(s.Results) != results.Len() {
				return true
			}
			for i, r := range s.Results {
				if boxes(pass, results.At(i).Type(), r) {
					pass.Reportf(r.Pos(), "hot path %s boxes %s into returned %s", fd.Name.Name, typeName(pass, r), results.At(i).Type())
				}
			}
		}
		return true
	})
}

// checkHotCall flags fmt calls, interface conversions, and arguments
// boxed into interface parameters.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.ObjectOf(base).(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Reportf(call.Pos(), "hot path %s calls fmt.%s", fd.Name.Name, sel.Sel.Name)
				return
			}
		}
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Explicit conversion T(x): boxing when T is an interface.
		target := tv.Type
		if len(call.Args) == 1 && boxes(pass, target, call.Args[0]) {
			pass.Reportf(call.Pos(), "hot path %s converts %s to interface %s", fd.Name.Name, typeName(pass, call.Args[0]), target)
		}
		return
	}
	if tv.IsBuiltin() {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // pass-through slice, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, pt, arg) {
			pass.Reportf(arg.Pos(), "hot path %s boxes %s into %s parameter of %s", fd.Name.Name, typeName(pass, arg), pt, callName(call))
		}
	}
}

// boxes reports whether assigning expr to a target of type dst
// converts a concrete value into an interface — an allocation on
// almost every such conversion.
func boxes(pass *Pass, dst types.Type, expr ast.Expr) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := pass.Info.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return !types.IsInterface(tv.Type)
}

func typeName(pass *Pass, expr ast.Expr) string {
	if t := pass.Info.TypeOf(expr); t != nil {
		return t.String()
	}
	return "value"
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}
