package lint

import (
	"go/ast"
	"go/types"
)

// Grantpure enforces the assign.Policy Grant contract documented in
// internal/assign: Grant must be a pure function of (free, pending,
// own grant history). Concretely, on any method whose signature
// matches Policy.Grant, and on every same-package function it calls:
// no writes to package-level state, no time.* calls, no package-level
// math/rand calls (a seeded *rand.Rand held by the policy is fine),
// and the pending slice must be neither mutated nor retained beyond
// the call — policies that reorder copy first, as naive does with its
// scratch buffer.
var Grantpure = &Analyzer{
	Name: "grantpure",
	Doc: "enforce the Grant purity contract on assign.Policy " +
		"implementations",
	Run: runGrantpure,
}

func runGrantpure(pass *Pass) {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != "Grant" || fd.Body == nil {
				continue
			}
			obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
			if !ok || !isGrantSignature(obj) {
				continue
			}
			checkGrant(pass, fd, decls)
		}
	}
}

// isGrantSignature matches assign.Policy.Grant:
//
//	Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID
func isGrantSignature(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	p, r := sig.Params(), sig.Results()
	if p.Len() != 4 || r.Len() != 1 {
		return false
	}
	return isInt(p.At(0).Type()) &&
		isNamedType(p.At(1).Type(), "systolic/internal/topology", "LinkID") &&
		isInt(p.At(2).Type()) &&
		isSliceOf(p.At(3).Type(), "systolic/internal/model", "MessageID") &&
		isSliceOf(r.At(0).Type(), "systolic/internal/model", "MessageID")
}

// checkGrant checks the Grant body and, transitively, every
// same-package function it calls. The pending-slice rules apply only
// to the Grant body itself, where the parameter is in scope.
func checkGrant(pass *Pass, grant *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) {
	var pending types.Object
	params := grant.Type.Params.List
	if len(params) == 4 && len(params[3].Names) == 1 && params[3].Names[0].Name != "_" {
		pending = pass.Info.Defs[params[3].Names[0]]
	}

	visited := make(map[*ast.FuncDecl]bool)
	var visit func(fd *ast.FuncDecl, root bool)
	visit = func(fd *ast.FuncDecl, root bool) {
		if visited[fd] {
			return
		}
		visited[fd] = true
		var pend types.Object
		if root {
			pend = pending
		}
		checkPurity(pass, fd, pend)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var callee types.Object
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				callee = pass.Info.ObjectOf(fun)
			case *ast.SelectorExpr:
				callee = pass.Info.ObjectOf(fun.Sel)
			}
			if fn, ok := callee.(*types.Func); ok {
				if next, ok := decls[fn]; ok {
					visit(next, false)
				}
			}
			return true
		})
	}
	visit(grant, true)
}

// checkPurity reports purity violations in one function body reached
// from Grant.
func checkPurity(pass *Pass, fd *ast.FuncDecl, pending types.Object) {
	where := ""
	if fd.Name.Name != "Grant" {
		where = " (reached from Grant via " + fd.Name.Name + ")"
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, l := range s.Lhs {
				if v := packageLevelTarget(pass, l); v != nil {
					pass.Reportf(l.Pos(), "Grant writes package-level state %s%s; Grant must be pure", v.Name(), where)
				}
				if pending == nil || len(s.Lhs) != len(s.Rhs) {
					continue
				}
				if isObjectExpr(pass, s.Rhs[i], pending) && retainingTarget(pass, l) {
					pass.Reportf(l.Pos(), "Grant retains the pending slice beyond the call; copy it instead")
				}
				if idx, ok := l.(*ast.IndexExpr); ok && isObjectExpr(pass, idx.X, pending) {
					pass.Reportf(l.Pos(), "Grant mutates the pending slice; copy it instead")
				}
			}
		case *ast.IncDecStmt:
			if v := packageLevelTarget(pass, s.X); v != nil {
				pass.Reportf(s.X.Pos(), "Grant writes package-level state %s%s; Grant must be pure", v.Name(), where)
			}
		case *ast.CallExpr:
			checkCallPurity(pass, s, pending, where)
		}
		return true
	})
}

// checkCallPurity flags nondeterminism sources and pending-mutating
// calls.
func checkCallPurity(pass *Pass, call *ast.CallExpr, pending types.Object, where string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if ok {
		if base, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.ObjectOf(base).(*types.PkgName); ok {
				if _, isFunc := pass.Info.ObjectOf(sel.Sel).(*types.Func); isFunc {
					switch path := pn.Imported().Path(); path {
					case "time":
						pass.Reportf(call.Pos(), "Grant calls time.%s%s; Grant must be deterministic", sel.Sel.Name, where)
					case "math/rand", "math/rand/v2":
						pass.Reportf(call.Pos(), "Grant calls package-level %s.%s%s; use a policy-owned seeded *rand.Rand", pn.Name(), sel.Sel.Name, where)
					case "sort", "slices":
						for _, arg := range call.Args {
							if pending != nil && isObjectExpr(pass, arg, pending) {
								pass.Reportf(call.Pos(), "Grant passes the pending slice to %s.%s, which reorders the caller's copy; sort a copy instead", pn.Name(), sel.Sel.Name)
							}
						}
					}
				}
			}
		}
	}
	if pending != nil && isBuiltin(pass, call.Fun, "append") && len(call.Args) > 0 && isObjectExpr(pass, call.Args[0], pending) {
		pass.Reportf(call.Pos(), "Grant appends to the pending slice, which may write into the caller's backing array; append to a copy instead")
	}
}

// packageLevelTarget resolves an assignment target to a package-level
// variable, or nil. Both `pkgVar = x` and `somepkg.Var = x` count.
func packageLevelTarget(pass *Pass, l ast.Expr) *types.Var {
	var obj types.Object
	switch lhs := l.(type) {
	case *ast.Ident:
		obj = pass.Info.ObjectOf(lhs)
	case *ast.SelectorExpr:
		base := baseIdent(lhs.X)
		if base == nil {
			return nil
		}
		bobj := pass.Info.ObjectOf(base)
		if _, ok := bobj.(*types.PkgName); ok {
			obj = pass.Info.ObjectOf(lhs.Sel)
		} else {
			obj = bobj // writing a field of a package-level struct
		}
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() == v.Pkg().Scope() {
		return v
	}
	return nil
}

// retainingTarget reports whether an assignment target outlives the
// call: a field of anything (the receiver included) or a package
// variable.
func retainingTarget(pass *Pass, l ast.Expr) bool {
	switch lhs := l.(type) {
	case *ast.SelectorExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		return packageLevelTarget(pass, lhs) != nil
	}
	return false
}

// isObjectExpr reports whether e is (possibly a slice expression of)
// the given object.
func isObjectExpr(pass *Pass, e ast.Expr, obj types.Object) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(x) == obj
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

func isNamedType(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func isSliceOf(t types.Type, pkgPath, name string) bool {
	s, ok := t.Underlying().(*types.Slice)
	return ok && isNamedType(s.Elem(), pkgPath, name)
}
