package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ctxloopPackages are the packages whose blocking paths must observe
// context cancellation: the simulator's cycle loop, the sweep
// engine's worker discipline, and the serving layer.
var ctxloopPackages = map[string]bool{
	"systolic/internal/machine": true,
	"systolic/internal/sweep":   true,
	"systolic/internal/server":  true,
}

// execOptionsPackages are where an ExecOptions literal missing its
// Context field is a cancellation bug: sweep and server run
// simulations on behalf of a caller that handed them a ctx, so a run
// issued without one cannot be stopped by that caller.
var execOptionsPackages = map[string]bool{
	"systolic/internal/sweep":  true,
	"systolic/internal/server": true,
}

// execOptionsTypes are the option structs whose Context field threads
// cancellation into a run.
var execOptionsTypes = map[string]bool{
	"systolic/internal/core":    true,
	"systolic/internal/machine": true,
}

// Ctxloop enforces the cancellation contract ("a dropped client
// cancels its simulation between cycles") in two ways. First,
// potentially unbounded loops — `for {}` or `for cond {}` with no
// post statement — that block on channels, selects, or
// Acquire/Wait-style calls must observe a context. Second, in the
// sweep and server packages, a core.ExecOptions or
// machine.ExecOptions literal must set its Context field; omitting
// it silently detaches the run from the caller's cancellation.
var Ctxloop = &Analyzer{
	Name: "ctxloop",
	Doc: "require blocking loops and issued runs to observe context " +
		"cancellation in machine, sweep, and server",
	Run: runCtxloop,
}

func runCtxloop(pass *Pass) {
	path := pass.Pkg.Path()
	loops := ctxloopPackages[path]
	lits := execOptionsPackages[path]
	if !loops && !lits {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ForStmt:
				if !loops || s.Init != nil || s.Post != nil {
					return true
				}
				if hasBlockingOp(pass, s.Body) && !observesContext(pass, s.Body) {
					pass.Reportf(s.Pos(), "potentially unbounded blocking loop does not observe context cancellation")
				}
			case *ast.CompositeLit:
				if !lits {
					return true
				}
				checkExecOptionsLit(pass, s)
			}
			return true
		})
	}
}

// checkExecOptionsLit flags ExecOptions literals without a Context
// field.
func checkExecOptionsLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "ExecOptions" || obj.Pkg() == nil || !execOptionsTypes[obj.Pkg().Path()] {
		return
	}
	for _, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Context" {
				return
			}
		}
	}
	pass.Reportf(lit.Pos(), "%s.ExecOptions literal does not set Context; the caller's cancellation cannot reach the run", obj.Pkg().Name())
}

// hasBlockingOp reports whether a loop body can block: channel sends
// or receives, a select with no default, or a call that waits
// (Acquire, Wait, Sleep).
func hasBlockingOp(pass *Pass, body *ast.BlockStmt) bool {
	blocking := false
	var scan func(n ast.Node) bool
	scan = func(n ast.Node) bool {
		if blocking {
			return false
		}
		switch s := n.(type) {
		case *ast.SendStmt:
			blocking = true
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				blocking = true
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocking = true
				return false
			}
			// A select with a default polls rather than blocks: its
			// comm operations cannot stick, but the clause bodies
			// still can, so scan those alone.
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						ast.Inspect(stmt, scan)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if sel, ok := s.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Acquire", "Wait", "Sleep":
					blocking = true
				}
			}
		}
		return !blocking
	}
	ast.Inspect(body, scan)
	return blocking
}

// observesContext reports whether the body references a
// context.Context value (which covers ctx.Done() and ctx.Err()
// selects) or receives from a channel whose name signals shutdown
// (cancel, done, quit, stop) — the machine executor's e.cancel
// pattern, derived from its run context.
func observesContext(pass *Pass, body *ast.BlockStmt) bool {
	seen := false
	ast.Inspect(body, func(n ast.Node) bool {
		if seen {
			return false
		}
		switch s := n.(type) {
		case *ast.Ident:
			if t := pass.Info.TypeOf(s); t != nil && isNamedType(t, "context", "Context") {
				seen = true
			}
		case *ast.UnaryExpr:
			if s.Op == token.ARROW && shutdownChannelName(s.X) {
				seen = true
			}
		}
		return !seen
	})
	return seen
}

func shutdownChannelName(e ast.Expr) bool {
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.CallExpr:
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	}
	name = strings.ToLower(name)
	for _, w := range [...]string{"cancel", "done", "quit", "stop"} {
		if strings.Contains(name, w) {
			return true
		}
	}
	return false
}
