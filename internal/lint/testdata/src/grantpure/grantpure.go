// Package grantfix exercises the grantpure analyzer: a policy that
// breaks every clause of the Grant purity contract, one that hides a
// violation behind a helper, a clean policy in the style of
// assign.naive, and a Grant of a different shape that is out of
// scope.
package grantfix

import (
	"math/rand"
	"sort"
	"time"

	"systolic/internal/model"
	"systolic/internal/topology"
)

var grants int

type bad struct {
	hist []model.MessageID
}

func (b *bad) Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID {
	grants++                 // want `writes package-level state grants`
	_ = time.Now()           // want `calls time.Now`
	_ = rand.Int()           // want `package-level rand.Int`
	sort.Slice(pending, nil) // want `passes the pending slice to sort.Slice`
	b.hist = pending         // want `retains the pending slice`
	pending[0] = 0           // want `mutates the pending slice`
	_ = append(pending, 0)   // want `appends to the pending slice`
	return pending
}

var tick int

func bump() {
	tick++ // want `writes package-level state tick \(reached from Grant via bump\)`
}

type sneaky struct{}

func (sneaky) Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID {
	bump()
	return nil
}

type good struct {
	rng     *rand.Rand
	scratch []model.MessageID
	granted int
}

func (g *good) Grant(now int, link topology.LinkID, free int, pending []model.MessageID) []model.MessageID {
	// Copy-then-sort is the contractual idiom: the caller's slice is
	// never reordered or retained.
	order := append(g.scratch[:0], pending...)
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	g.scratch = order[:0]
	if free <= 0 || len(order) == 0 {
		return nil
	}
	// A policy-owned seeded generator is fine; only package-level
	// rand is nondeterministic across runs.
	if g.rng.Intn(2) == 0 && len(order) > 1 {
		order[0], order[1] = order[1], order[0]
	}
	g.granted++ // receiver state is the policy's own grant history
	return order[:1]
}

type notPolicy struct{}

// Grant here has a different signature, so the contract does not
// apply even though the body is impure.
func (notPolicy) Grant(a, b int) int {
	grants++
	return a + b
}
