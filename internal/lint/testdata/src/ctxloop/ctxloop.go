// Package ctxloopfix exercises the ctxloop analyzer: blocking loops
// with and without a cancellation path, bounded and compute-only
// loops that are exempt, and core.ExecOptions literals with and
// without a Context field. The test loads it under the sweep package
// path, where both rules apply.
package ctxloopfix

import (
	"context"

	"systolic/internal/core"
)

type worker struct {
	jobs chan int
	quit chan struct{}
}

func drainForever(jobs chan int) int {
	total := 0
	for { // want `blocking loop does not observe context cancellation`
		total += <-jobs
	}
}

func sendForever(out chan int) {
	for { // want `blocking loop does not observe context cancellation`
		out <- 1
	}
}

func selectForever(a, b chan int) {
	for { // want `blocking loop does not observe context cancellation`
		select {
		case <-a:
		case <-b:
		}
	}
}

func drainWithCtx(ctx context.Context, jobs chan int) int {
	total := 0
	for {
		select {
		case <-ctx.Done():
			return total
		case j := <-jobs:
			total += j
		}
	}
}

func (w *worker) loop() {
	for {
		select {
		case <-w.quit: // shutdown-named channel counts as cancellation
			return
		case j := <-w.jobs:
			_ = j
		}
	}
}

func polling(jobs chan int) int {
	// A select with a default never blocks, so the loop is busy, not
	// stuck; ctxloop leaves it to the profiler.
	for {
		select {
		case j := <-jobs:
			return j
		default:
			return 0
		}
	}
}

func bounded(jobs chan int) int {
	total := 0
	for i := 0; i < 8; i++ { // bounded: has init and post
		total += <-jobs
	}
	return total
}

func compute(xs []int) int {
	total := 0
	for len(xs) > 0 { // no blocking op inside
		total += xs[0]
		xs = xs[1:]
	}
	return total
}

func runDetached(a *core.Analysis) error {
	_, err := core.Execute(a, core.ExecOptions{ // want `core.ExecOptions literal does not set Context`
		Policy:   core.DynamicCompatible,
		Capacity: 1,
	})
	return err
}

func runAttached(ctx context.Context, a *core.Analysis) error {
	_, err := core.Execute(a, core.ExecOptions{
		Context:  ctx,
		Policy:   core.DynamicCompatible,
		Capacity: 1,
	})
	return err
}
