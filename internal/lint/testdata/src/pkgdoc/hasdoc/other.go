package hasdoc

func Other() int { return 2 }
