// Package hasdoc satisfies the pkgdoc analyzer: one file carries the
// package comment, the other may omit it.
package hasdoc

func Documented() int { return 1 }
