package nodoc // want `package nodoc has no package doc comment`

func Unused() int { return 0 }
