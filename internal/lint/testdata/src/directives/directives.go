// Package directivesfix exercises directive validation: every
// malformed //sysvet: comment below must surface as a finding under
// the reserved "sysvet" analyzer name, and a malformed ignore must
// not suppress the finding it sits on. The test asserts these
// programmatically — a want comment cannot share a line with the
// directive it describes.
package directivesfix

//sysvet:ignore detorder
//sysvet:ignore detorder --
//sysvet:ignore nosuchanalyzer -- the analyzer name is made up
//sysvet:ignore
//sysvet:unordered
//sysvet:hotpath with arguments
//sysvet:frobnicate -- not a verb

// wellFormed carries one valid directive of each verb; none of these
// may produce a problem finding.
//
//sysvet:hotpath
func wellFormed(m map[string]int) []string {
	var out []string
	//sysvet:ignore detorder -- fixture: a valid suppression
	for k := range m {
		out = append(out, k)
	}
	//sysvet:unordered -- fixture: commutative sum
	for _, v := range m {
		_ = v
	}
	return out
}

// notSuppressed sits under a reasonless ignore, which must not
// suppress the detorder finding on its range statement.
func notSuppressed(m map[string]int) string {
	out := ""
	//sysvet:ignore detorder
	for k := range m {
		out = k
	}
	return out
}
