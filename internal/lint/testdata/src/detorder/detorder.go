// Package detorderfix exercises the detorder analyzer: flagged
// map-range escapes, provably order-insensitive bodies, the
// collect-sort idiom, and both sysvet directives. The test loads it
// under a determinism-critical import path.
package detorderfix

import (
	"fmt"
	"sort"
	"strings"
)

func appends(m map[string]int) []string {
	var out []string
	for k, v := range m { // want `map iteration order escapes`
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

func early(m map[string]int) string {
	for k := range m { // want `map iteration order escapes`
		if k != "" {
			return k
		}
	}
	return ""
}

func minKey(m map[int]bool) int {
	best := -1
	for k := range m { // want `map iteration order escapes`
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

func prints(m map[string]int) {
	for k := range m { // want `map iteration order escapes`
		fmt.Println(k)
	}
}

func renders(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration order escapes`
		b.WriteString(k)
	}
	return b.String()
}

func lastWins(m map[string]int) string {
	var k string
	for k = range m { // want `map iteration order escapes`
		_ = k
	}
	return k
}

func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // clean: the gathering half of collect-sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sums(m map[string]int) int {
	total := 0
	for _, v := range m { // clean: commutative accumulation
		total += v
	}
	return total
}

func keyedWrites(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // clean: each key written independently
		out[k] = v * 2
	}
	return out
}

func counts(m map[string]bool) int {
	n := 0
	for _, ok := range m { // clean: counters commute
		if ok {
			n++
		}
	}
	return n
}

func localOnly(m map[string][]int) int {
	total := 0
	for _, vs := range m { // clean: loop-local state plus commutative fold
		sum := 0
		for _, v := range vs {
			sum += v
		}
		total += sum
	}
	return total
}

func annotatedMin(m map[int]bool) int {
	best := -1
	//sysvet:unordered -- fixture: a minimum over keys is order-independent
	for k := range m {
		if best < 0 || k < best {
			best = k
		}
	}
	return best
}

func suppressed(m map[string]int) string {
	out := ""
	//sysvet:ignore detorder -- fixture: proves own-line suppression
	for k := range m {
		out = k
	}
	return out
}
