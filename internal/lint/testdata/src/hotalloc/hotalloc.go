// Package hotallocfix exercises the hotalloc analyzer: fmt calls,
// closure allocation, and every interface-boxing site (declaration,
// assignment, conversion, argument, return) inside functions marked
// //sysvet:hotpath, plus unmarked and suppressed controls.
package hotallocfix

import "fmt"

func sink(v any) { _ = v }

func sinkMany(vs ...any) { _ = vs }

//sysvet:hotpath
func hot(xs []int) {
	fmt.Println(xs)              // want `hot path hot calls fmt.Println`
	f := func() int { return 0 } // want `hot path hot allocates a closure`
	_ = f
	var v any = xs[0] // want `hot path hot boxes int into any`
	var w any
	w = xs[0] // want `hot path hot boxes int into any`
	_ = w
	sink(xs[0])     // want `hot path hot boxes int into any parameter of sink`
	sinkMany(xs[0]) // want `hot path hot boxes int into any parameter of sinkMany`
	_ = any(xs[0])  // want `hot path hot converts int to interface any`
	_ = v
}

//sysvet:hotpath
func hotRet(xs []int) any {
	return xs[0] // want `hot path hotRet boxes int into returned any`
}

//sysvet:hotpath
func hotClean(xs []int) int {
	// Arithmetic, indexing, nil interfaces, interface-to-interface
	// moves, and ... pass-through are all allocation-free.
	total := 0
	for _, x := range xs {
		total += x
	}
	var v any
	sink(v) // interface-to-interface: no boxing
	sink(nil)
	vs := []any{}
	sinkMany(vs...) // pass-through slice: no per-element boxing
	return total
}

//sysvet:hotpath
func hotIgnored(xs []int) {
	//sysvet:ignore hotalloc -- fixture: proves hotalloc suppression
	sink(xs[0])
}

func cold(xs []int) {
	// Unmarked functions may allocate freely.
	fmt.Println(xs)
	sink(xs[0])
	_ = func() int { return len(xs) }
}
