package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// detorderPackages are the determinism-critical packages: anything
// they compute can end up in a Result, a report table, a trace, or a
// wire response, all of which the repo promises are byte-identical
// across runs and worker counts. verify is included because
// PreconditionReport flows into core.Analysis and from there into
// server responses.
var detorderPackages = map[string]bool{
	"systolic/internal/machine": true,
	"systolic/internal/sim":     true,
	"systolic/internal/sweep":   true,
	"systolic/internal/diff":    true,
	"systolic/internal/server":  true,
	"systolic/internal/verify":  true,
}

// Detorder flags `range` over a map whose iteration order can escape
// the loop: Go randomizes map order per run, so any order-dependent
// effect (appending, early return, writes to outer state) breaks the
// byte-identical-reports contract. Sites that are genuinely
// order-insensitive declare it with //sysvet:unordered -- <reason>.
var Detorder = &Analyzer{
	Name: "detorder",
	Doc: "flag map iteration whose order can escape into a report " +
		"in determinism-critical packages",
	Run: runDetorder,
}

func runDetorder(pass *Pass) {
	if !detorderPackages[pass.Pkg.Path()] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			if pass.Dirs.Unordered(pass.Fset.Position(rs.Pos())) {
				return true
			}
			if reason := orderEscape(pass, rs); reason != "" {
				pass.Reportf(rs.Pos(),
					"map iteration order escapes the loop (%s); iterate sorted keys or annotate //sysvet:unordered -- <why order cannot matter>",
					reason)
			}
			return true
		})
	}
}

// commutativeAssign are the compound assignments whose final value is
// independent of iteration order over a fixed key set.
var commutativeAssign = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.XOR_ASSIGN: true,
}

// orderEscape inspects a map-range body and returns a short
// description of the first construct through which iteration order
// can leak, or "" when every effect is provably order-insensitive
// (keyed map writes, commutative accumulation, counters, and writes
// to loop-local state).
func orderEscape(pass *Pass, rs *ast.RangeStmt) string {
	lo, hi := rs.Pos(), rs.End()
	isLocal := func(obj types.Object) bool {
		return obj != nil && obj.Pos() >= lo && obj.Pos() < hi
	}

	if rs.Tok == token.ASSIGN {
		// `for k, v = range m` leaves the last-visited pair in outer
		// variables, which is an arbitrary element of the map.
		return "assigns range variables declared outside the loop"
	}

	if isKeyCollection(pass, rs) {
		// `for k := range m { keys = append(keys, k) }` is the first
		// half of the canonical sort-the-keys fix; the sort that
		// follows launders the order.
		return ""
	}

	var reason string
	found := func(r string) {
		if reason == "" {
			reason = r
		}
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.ReturnStmt:
			found("returns from inside the iteration")
		case *ast.SendStmt:
			found("sends on a channel")
		case *ast.GoStmt:
			found("starts a goroutine per element")
		case *ast.DeferStmt:
			found("defers a call per element")
		case *ast.CallExpr:
			if isBuiltin(pass, s.Fun, "append") {
				found("appends in iteration order")
			}
		case *ast.ExprStmt:
			if r := stmtCallEscape(pass, s, isLocal); r != "" {
				found(r)
			}
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if r := lhsEscape(pass, l, s.Tok, isLocal); r != "" {
					found(r)
					break
				}
			}
		}
		return reason == ""
	})
	return reason
}

// isKeyCollection matches a body that only appends the range key to
// a slice: the gathering half of "collect keys, sort, iterate".
func isKeyCollection(pass *Pass, rs *ast.RangeStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rs.Value != nil {
		return false
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 || as.Tok != token.ASSIGN {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	dst, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	src, ok := call.Args[0].(*ast.Ident)
	if !ok || pass.Info.ObjectOf(src) != pass.Info.ObjectOf(dst) {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && pass.Info.ObjectOf(arg) == pass.Info.ObjectOf(key)
}

// stmtCallEscape flags statement-level calls that act on outer state
// (b.WriteString, h.Write, fmt.Print...): each such call observes the
// iteration order. delete(m, k) and calls on loop-local values are
// fine.
func stmtCallEscape(pass *Pass, s *ast.ExprStmt, isLocal func(types.Object) bool) string {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	base := baseIdent(sel.X)
	if base == nil {
		return ""
	}
	obj := pass.Info.ObjectOf(base)
	if pn, ok := obj.(*types.PkgName); ok {
		if pn.Imported().Path() == "fmt" {
			return "calls fmt." + sel.Sel.Name + " per element"
		}
		return "" // other package-level calls: no receiver state to order
	}
	if obj != nil && !isLocal(obj) {
		return "calls a method on outer value " + base.Name
	}
	return ""
}

// lhsEscape classifies one assignment target inside a map range.
func lhsEscape(pass *Pass, l ast.Expr, tok token.Token, isLocal func(types.Object) bool) string {
	switch lhs := l.(type) {
	case *ast.Ident:
		if lhs.Name == "_" || tok == token.DEFINE {
			return ""
		}
		if obj := pass.Info.ObjectOf(lhs); isLocal(obj) {
			return ""
		}
		if commutativeAssign[tok] {
			return ""
		}
		return "assigns outer variable " + lhs.Name
	case *ast.IndexExpr:
		if t := pass.Info.TypeOf(lhs.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				return "" // keyed map write: each key written independently
			}
		}
		if base := baseIdent(lhs.X); base != nil && isLocal(pass.Info.ObjectOf(base)) {
			return ""
		}
		return "writes an element of an outer slice or array"
	case *ast.SelectorExpr:
		if base := baseIdent(lhs.X); base != nil && isLocal(pass.Info.ObjectOf(base)) {
			return ""
		}
		if commutativeAssign[tok] {
			return ""
		}
		return "assigns a field of an outer value"
	case *ast.StarExpr:
		return "writes through a pointer"
	}
	return ""
}

// baseIdent unwraps selectors, indexes, parens, and derefs down to
// the leftmost identifier, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return nil
		}
	}
}

// isBuiltin reports whether e denotes the named builtin.
func isBuiltin(pass *Pass, e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.ObjectOf(id).(*types.Builtin)
	return ok
}
