package label

import (
	"strings"
	"testing"

	"systolic/internal/model"
	"systolic/internal/rational"
)

type msgSpec struct {
	name  string
	s, r  int
	words int
}

func build(t testing.TB, cells int, msgs []msgSpec, code [][]string) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	ids := b.AddCells("C", cells)
	byName := map[string]model.MessageID{}
	for _, m := range msgs {
		byName[m.name] = b.DeclareMessage(m.name, ids[m.s], ids[m.r], m.words)
	}
	for c, ops := range code {
		for _, op := range ops {
			if op[0] == 'W' {
				b.Write(ids[c], byName[op[2:]])
			} else {
				b.Read(ids[c], byName[op[2:]])
			}
		}
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fig7 is the §4/§6 example: A: C2→C3 (4), B: C3→C4 (3), C: C1→C4 (3).
func fig7(t testing.TB) *model.Program {
	return build(t, 4,
		[]msgSpec{{"A", 1, 2, 4}, {"B", 2, 3, 3}, {"C", 0, 3, 3}},
		[][]string{
			{"W:C", "W:C", "W:C"},
			{"W:A", "W:A", "W:A", "W:A"},
			{"R:A", "R:A", "R:A", "R:A", "W:B", "W:B", "W:B"},
			{"R:C", "R:C", "R:C", "R:B", "R:B", "R:B"},
		})
}

func TestFig7LabelsMatchPaper(t *testing.T) {
	p := fig7(t)
	lab, err := Assign(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// §6: "messages A, B, and C will receive labels 1, 3, and 2".
	want := map[string]int{"A": 1, "B": 3, "C": 2}
	for name, dense := range want {
		m, _ := p.MessageByName(name)
		if lab.Dense[m.ID] != dense {
			t.Errorf("label(%s)=%d, want %d", name, lab.Dense[m.ID], dense)
		}
	}
	if err := Check(p, lab.ByMessage); err != nil {
		t.Fatal(err)
	}
}

func TestRelatedInterleavedReads(t *testing.T) {
	// Fig 8's C3 reads A and B interleaved: related.
	p := build(t, 3,
		[]msgSpec{{"A", 1, 2, 4}, {"B", 0, 2, 3}},
		[][]string{
			{"W:B", "W:B", "W:B"},
			{"W:A", "W:A", "W:A", "W:A"},
			{"R:A", "R:B", "R:A", "R:A", "R:B", "R:B", "R:A"},
		})
	uf := Related(p)
	if !uf.Same(0, 1) {
		t.Fatal("interleaved reads not related")
	}
	lab, err := Assign(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lab.Dense[0] != lab.Dense[1] {
		t.Fatalf("related messages got labels %d and %d", lab.Dense[0], lab.Dense[1])
	}
}

func TestRelatedInterleavedWrites(t *testing.T) {
	// Fig 9's C1 writes A and B interleaved: related.
	p := build(t, 3,
		[]msgSpec{{"A", 0, 1, 4}, {"B", 0, 2, 3}},
		[][]string{
			{"W:A", "W:B", "W:A", "W:A", "W:B", "W:B", "W:A"},
			{"R:A", "R:A", "R:A", "R:A"},
			{"R:B", "R:B", "R:B"},
		})
	if !Related(p).Same(0, 1) {
		t.Fatal("interleaved writes not related")
	}
}

func TestNotRelatedSequential(t *testing.T) {
	// Sequential use (all of A, then all of B) is not interleaving.
	p := build(t, 3,
		[]msgSpec{{"A", 1, 2, 2}, {"B", 0, 2, 2}},
		[][]string{
			{"W:B", "W:B"},
			{"W:A", "W:A"},
			{"R:A", "R:A", "R:B", "R:B"},
		})
	if Related(p).Same(0, 1) {
		t.Fatal("sequential messages marked related")
	}
}

func TestRelatedTransitive(t *testing.T) {
	// A between two Bs at one cell; B between two Cs at another ⇒
	// A related C transitively.
	p := build(t, 4,
		[]msgSpec{{"A", 0, 3, 1}, {"B", 1, 3, 2}, {"C", 2, 3, 2}},
		[][]string{
			{"W:A"},
			{"W:B", "W:B"},
			{"W:C", "W:C"},
			// Reads at C4: B A B (A between Bs), C B' … — build an
			// interleaving where B sits between the two Cs.
			{"R:C", "R:B", "R:A", "R:B", "R:C"},
		})
	uf := Related(p)
	if !uf.Same(0, 1) || !uf.Same(1, 2) || !uf.Same(0, 2) {
		t.Fatalf("transitivity failed: classes %v", uf.Classes())
	}
}

func TestTrivialLabeling(t *testing.T) {
	p := fig7(t)
	lab := Trivial(p)
	for i := range lab.Dense {
		if lab.Dense[i] != 1 || !lab.ByMessage[i].Equal(rational.FromInt(1)) {
			t.Fatal("trivial labeling not all ones")
		}
	}
	if err := Check(p, lab.ByMessage); err != nil {
		t.Fatalf("trivial labeling not consistent: %v", err)
	}
}

func TestCheckDetectsDecrease(t *testing.T) {
	p := fig7(t)
	labels := make([]rational.R, p.NumMessages())
	// Deliberately inconsistent: C4 reads C (give it 5) before B (1).
	for _, m := range p.Messages() {
		switch m.Name {
		case "A":
			labels[m.ID] = rational.FromInt(1)
		case "B":
			labels[m.ID] = rational.FromInt(1)
		case "C":
			labels[m.ID] = rational.FromInt(5)
		}
	}
	err := Check(p, labels)
	if err == nil || !strings.Contains(err.Error(), "decrease") {
		t.Fatalf("Check = %v, want decrease error", err)
	}
}

func TestCheckWrongLength(t *testing.T) {
	p := fig7(t)
	if err := Check(p, nil); err == nil {
		t.Fatal("Check accepted wrong-length labels")
	}
}

func TestCheckDense(t *testing.T) {
	p := fig7(t)
	lab, err := Assign(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckDense(p, lab.Dense); err != nil {
		t.Fatalf("dense labels inconsistent: %v", err)
	}
}

func TestAssignRejectsDeadlockedProgram(t *testing.T) {
	p := build(t, 2,
		[]msgSpec{{"A", 0, 1, 1}, {"B", 1, 0, 1}},
		[][]string{{"R:B", "W:A"}, {"R:A", "W:B"}})
	if _, err := Assign(p, Options{}); err == nil {
		t.Fatal("Assign accepted a deadlocked program")
	}
}

func TestAssignLookaheadLabelsSkipped(t *testing.T) {
	// P1 under lookahead: rule 1d gives B's label to the skipped A.
	p := build(t, 2,
		[]msgSpec{{"A", 0, 1, 4}, {"B", 0, 1, 2}},
		[][]string{
			{"W:A", "W:A", "W:B", "W:A", "W:B", "W:A"},
			{"R:B", "R:A", "R:B", "R:A", "R:A", "R:A"},
		})
	lab, err := Assign(p, Options{Lookahead: true, Budget: func(model.MessageID) int { return 2 }})
	if err != nil {
		t.Fatal(err)
	}
	if lab.Dense[0] != lab.Dense[1] {
		t.Fatalf("skipped message label %d ≠ pair label %d (rule 1d)", lab.Dense[0], lab.Dense[1])
	}
	if err := Check(p, lab.ByMessage); err != nil {
		t.Fatal(err)
	}
}

func TestDensifyTiesAndOrder(t *testing.T) {
	labels := []rational.R{
		rational.New(3, 2), // 1.5
		rational.FromInt(1),
		rational.New(3, 2), // tie with first
		rational.FromInt(4),
	}
	dense := densify(labels)
	want := []int{2, 1, 2, 3}
	for i := range want {
		if dense[i] != want[i] {
			t.Fatalf("densify = %v, want %v", dense, want)
		}
	}
}

func TestStep1aAssignsIncreasingLabels(t *testing.T) {
	// Three disjoint pipelines crossed in id order: labels 1, 2, 3
	// via repeated step 1a.
	p := build(t, 6,
		[]msgSpec{{"A", 0, 1, 1}, {"B", 2, 3, 1}, {"C", 4, 5, 1}},
		[][]string{{"W:A"}, {"R:A"}, {"W:B"}, {"R:B"}, {"W:C"}, {"R:C"}})
	lab, err := Assign(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint pipelines: any consistent labeling works; the scheme's
	// 1a gives strictly increasing integers in cross order.
	if !(lab.Dense[0] == 1 && lab.Dense[1] == 2 && lab.Dense[2] == 3) {
		t.Fatalf("dense labels %v, want [1 2 3]", lab.Dense)
	}
	for i := range lab.ByMessage {
		if !lab.ByMessage[i].IsInt() {
			t.Fatalf("step 1a produced non-integer label %v", lab.ByMessage[i])
		}
	}
}

func TestStep1bProducesFractionWhenWindowIsTight(t *testing.T) {
	// Force step 1b: a cell still to read an already-labeled message
	// with a small label, after having touched another.
	// C1 sends A then B to C2; C3 sends D to C2 read between them; D's
	// pair becomes executable only after A crosses, and C2 will still
	// read B … arrange labels so D must fit strictly between.
	p := build(t, 3,
		[]msgSpec{{"A", 0, 1, 1}, {"B", 0, 1, 1}, {"D", 2, 1, 1}},
		[][]string{
			{"W:A", "W:B"},
			{"R:A", "R:D", "R:B"},
			{"W:D"},
		})
	lab, err := Assign(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.MessageByName("A")
	b, _ := p.MessageByName("B")
	d, _ := p.MessageByName("D")
	if !(lab.ByMessage[a.ID].Less(lab.ByMessage[d.ID]) && lab.ByMessage[d.ID].Less(lab.ByMessage[b.ID])) {
		t.Fatalf("labels A=%v D=%v B=%v, want A<D<B",
			lab.ByMessage[a.ID], lab.ByMessage[d.ID], lab.ByMessage[b.ID])
	}
	if err := Check(p, lab.ByMessage); err != nil {
		t.Fatal(err)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	uf.Union(0, 1)
	uf.Union(3, 4)
	if !uf.Same(0, 1) || uf.Same(1, 2) || !uf.Same(3, 4) {
		t.Fatal("union-find wrong")
	}
	uf.Union(1, 3)
	if !uf.Same(0, 4) {
		t.Fatal("union-find transitivity wrong")
	}
	classes := uf.Classes()
	if len(classes) != 2 {
		t.Fatalf("classes=%v", classes)
	}
}
