// Package label implements the paper's consistent message labeling
// (§5 step 1, §6, §8.2).
//
// A labeling is *consistent* when every cell program writes to or reads
// from messages with nondecreasing labels. Consistency is the
// compile-time half of the avoidance strategy; the run-time half
// (compatible queue assignment) lives in internal/assign.
//
// The §6 scheme labels messages during a crossing-off pass:
//
//	1a. if neither endpoint of the picked message A will touch an
//	    already-labeled message, A gets a label larger than all in use;
//	1b. otherwise A gets a label between the last label each endpoint
//	    touched and the smallest labeled message either endpoint will
//	    still touch (possibly a non-integer — exact rationals here);
//	1c. messages *related* to A (interleaved reads or interleaved
//	    writes at some cell, closed symmetrically and transitively)
//	    receive A's label;
//	1d. with lookahead, messages whose writes were skipped while
//	    locating A's pair receive A's label (§8.2).
package label

import (
	"fmt"
	"sort"

	"systolic/internal/crossoff"
	"systolic/internal/model"
	"systolic/internal/rational"
)

// Labeling is an assignment of positive labels to every message.
type Labeling struct {
	// ByMessage holds the exact label of each message, indexed by id.
	ByMessage []rational.R
	// Dense holds equivalent 1-based integer ranks: same order, same
	// ties, smallest label ↦ 1.
	Dense []int
	// Warnings records §6 corner cases that were resolved best-effort
	// (e.g. a lookahead-skipped message that already had a different
	// label). A non-empty list does not imply inconsistency; run Check.
	Warnings []string
}

// Options configures the §6 scheme.
type Options struct {
	// Lookahead and Budget select the crossing-off variant used to
	// drive labeling (§8.2). Budget semantics match crossoff.Options.
	Lookahead bool
	Budget    func(model.MessageID) int
	// Picker chooses among executable pairs; the paper notes the
	// choice may affect queue-use efficiency. nil = crossoff default.
	Picker crossoff.PairPicker
}

// Trivial returns the all-ones labeling, which the paper observes is
// always consistent but makes the compatible-assignment condition very
// stringent (§5).
func Trivial(p *model.Program) Labeling {
	l := Labeling{
		ByMessage: make([]rational.R, p.NumMessages()),
		Dense:     make([]int, p.NumMessages()),
	}
	for i := range l.ByMessage {
		l.ByMessage[i] = rational.FromInt(1)
		l.Dense[i] = 1
	}
	return l
}

// Related computes the paper's related-messages relation: A and B are
// related when, in some cell program, an operation on A appears between
// two consecutive operations on B of the same kind; the relation is
// closed symmetrically and transitively. The result maps each message
// to a class representative.
func Related(p *model.Program) *UnionFind {
	uf := NewUnionFind(p.NumMessages())
	for c := 0; c < p.NumCells(); c++ {
		code := p.Code(model.CellID(c))
		// Within one cell all ops on a given message share a kind
		// (the cell is its sender or its receiver), so tracking the
		// previous op index per message suffices.
		prev := make(map[model.MessageID]int)
		for i, op := range code {
			if j, ok := prev[op.Msg]; ok {
				for k := j + 1; k < i; k++ {
					uf.Union(int(op.Msg), int(code[k].Msg))
				}
			}
			prev[op.Msg] = i
		}
	}
	return uf
}

// Assign produces a consistent labeling. It runs the paper's §6
// crossing-off-driven greedy scheme first; if that scheme's pick order
// paints itself into a corner (rule 1c can commit a related class to a
// label before every member's per-cell constraints are visible — the
// paper leaves the "optimal" pick choice open), Assign falls back to
// the order-based construction of AssignByOrder, which cannot fail,
// and records the fallback in Warnings. It returns an error only when
// the program is not deadlock-free under the selected variant.
func Assign(p *model.Program, opts Options) (Labeling, error) {
	lab, err := assignGreedy(p, opts)
	if err == nil && Check(p, lab.ByMessage) == nil {
		return lab, nil
	}
	if !crossoff.Classify(p, crossoff.Options{Lookahead: opts.Lookahead, Budget: opts.Budget, Picker: opts.Picker}) {
		return Labeling{}, fmt.Errorf("label: program is not deadlock-free: %s",
			crossoff.DescribeBlocked(p, crossoff.Run(p, crossoff.Options{Lookahead: opts.Lookahead, Budget: opts.Budget}).Blocked))
	}
	var eqs [][2]model.MessageID
	if opts.Lookahead {
		eqs = LookaheadEqualities(p, opts.Budget) // §8.2 rule 1d
	}
	fallback, err2 := AssignByOrder(p, eqs)
	if err2 != nil {
		return Labeling{}, err2
	}
	reason := "greedy §6 scheme produced an inconsistent labeling"
	if err != nil {
		reason = err.Error()
	}
	fallback.Warnings = append(fallback.Warnings,
		fmt.Sprintf("label: fell back to order-based labeling (%s)", reason))
	return fallback, nil
}

// assignGreedy is the literal §6 algorithm: label during a
// crossing-off pass, steps 1a–1d.
func assignGreedy(p *model.Program, opts Options) (Labeling, error) {
	uf := Related(p)

	labels := make([]rational.R, p.NumMessages())
	labeled := make([]bool, p.NumMessages())
	lastTouched := make([]rational.R, p.NumCells()) // zero = "nothing yet" (labels are ≥ 1)
	maxInUse := rational.FromInt(0)
	var warnings []string
	var schemeErr error

	// Remaining-op bookkeeping for the "will read from or write to"
	// scans of steps 1a/1b: per cell, the multiset of message ids in
	// its uncrossed suffix. We maintain counts and decrement as pairs
	// cross.
	remaining := make([]map[model.MessageID]int, p.NumCells())
	for c := 0; c < p.NumCells(); c++ {
		remaining[c] = make(map[model.MessageID]int)
		for _, op := range p.Code(model.CellID(c)) {
			remaining[c][op.Msg]++
		}
	}

	// pendingMin returns the smallest label among already-labeled
	// messages still appearing in cell c's remaining ops, excluding
	// message self.
	pendingMin := func(c model.CellID, self model.MessageID) (rational.R, bool) {
		var min rational.R
		found := false
		for msg, n := range remaining[c] {
			if n <= 0 || msg == self || !labeled[msg] {
				continue
			}
			if !found || labels[msg].Less(min) {
				min = labels[msg]
				found = true
			}
		}
		return min, found
	}

	setLabel := func(msg model.MessageID, lab rational.R) {
		labels[msg] = lab
		labeled[msg] = true
		maxInUse = rational.Max(maxInUse, lab)
	}

	observer := func(pr crossoff.Pair) {
		defer func() {
			// The pair is crossed after observation: account for it.
			remaining[pr.WriteCell][pr.Msg]--
			remaining[pr.ReadCell][pr.Msg]--
			lastTouched[pr.WriteCell] = labels[pr.Msg]
			lastTouched[pr.ReadCell] = labels[pr.Msg]
		}()
		if labeled[pr.Msg] {
			return
		}
		m := p.Message(pr.Msg)
		uS, okS := pendingMin(m.Sender, pr.Msg)
		uR, okR := pendingMin(m.Receiver, pr.Msg)
		var lab rational.R
		switch {
		case !okS && !okR:
			// Step 1a: larger than every label in use.
			lab = rational.FromInt(maxInUse.Floor() + 1)
		default:
			// Step 1b: between the last labels touched and the
			// smallest pending labeled message.
			upper := uS
			if !okS || (okR && uR.Less(upper)) {
				upper = uR
			}
			lower := rational.Max(lastTouched[m.Sender], lastTouched[m.Receiver])
			if !lower.Less(upper) {
				if schemeErr == nil {
					schemeErr = fmt.Errorf(
						"label: empty window for message %s: last touched %v, pending %v",
						m.Name, lower, upper)
				}
				lower = upper.Sub(rational.FromInt(1)) // degrade; Check will judge
			}
			lab = lower.Mid(upper)
		}
		// Steps 1c/1d share the label across the related class and
		// the skipped-over messages.
		for other := 0; other < p.NumMessages(); other++ {
			if uf.Find(other) == uf.Find(int(pr.Msg)) && !labeled[other] {
				setLabel(model.MessageID(other), lab)
			}
		}
		for _, sk := range pr.Skipped {
			if !labeled[sk.Msg] {
				setLabel(sk.Msg, lab)
			} else if !labels[sk.Msg].Equal(lab) {
				warnings = append(warnings, fmt.Sprintf(
					"label: skipped message %s already labeled %v, wanted %v (rule 1d)",
					p.Message(sk.Msg).Name, labels[sk.Msg], lab))
			}
		}
		if !labeled[pr.Msg] { // not covered by its own class loop? (always is; defensive)
			setLabel(pr.Msg, lab)
		}
	}

	res := crossoff.Run(p, crossoff.Options{
		Lookahead: opts.Lookahead,
		Budget:    opts.Budget,
		Picker:    opts.Picker,
		Observer:  observer,
	})
	if !res.DeadlockFree {
		return Labeling{}, fmt.Errorf("label: program is not deadlock-free: %s",
			crossoff.DescribeBlocked(p, res.Blocked))
	}
	if schemeErr != nil {
		return Labeling{}, schemeErr
	}
	for i, ok := range labeled {
		if !ok {
			// Unreachable for validated programs (every message has a
			// crossed pair), kept as a hard failure.
			return Labeling{}, fmt.Errorf("label: message %s never labeled", p.Message(model.MessageID(i)).Name)
		}
	}
	return Labeling{ByMessage: labels, Dense: densify(labels), Warnings: warnings}, nil
}

// densify converts exact labels to 1-based integer ranks preserving
// order and ties.
func densify(labels []rational.R) []int {
	idx := make([]int, len(labels))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return labels[idx[a]].Less(labels[idx[b]]) })
	dense := make([]int, len(labels))
	rank := 0
	for i, id := range idx {
		if i == 0 || labels[idx[i-1]].Less(labels[id]) {
			rank++
		}
		dense[id] = rank
	}
	return dense
}

// Check verifies consistency: every cell program touches messages in
// nondecreasing label order. It returns nil for consistent labelings
// and a descriptive error naming the first violating cell and ops
// otherwise.
func Check(p *model.Program, labels []rational.R) error {
	if len(labels) != p.NumMessages() {
		return fmt.Errorf("label: %d labels for %d messages", len(labels), p.NumMessages())
	}
	for c := 0; c < p.NumCells(); c++ {
		code := p.Code(model.CellID(c))
		for i := 1; i < len(code); i++ {
			prev, cur := labels[code[i-1].Msg], labels[code[i].Msg]
			if cur.Less(prev) {
				return fmt.Errorf(
					"label: cell %s: %s (label %v) follows %s (label %v): labels decrease",
					p.Cell(model.CellID(c)).Name,
					p.OpString(code[i]), cur, p.OpString(code[i-1]), prev)
			}
		}
	}
	return nil
}

// CheckDense is Check over integer labels, a convenience for callers
// holding only dense ranks.
func CheckDense(p *model.Program, dense []int) error {
	labels := make([]rational.R, len(dense))
	for i, d := range dense {
		labels[i] = rational.FromInt(int64(d))
	}
	return Check(p, labels)
}

// UnionFind is a plain disjoint-set structure over message indices.
type UnionFind struct {
	parent []int
	rank   []int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets containing x and y.
func (u *UnionFind) Union(x, y int) {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
}

// Same reports whether x and y are in one set.
func (u *UnionFind) Same(x, y int) bool { return u.Find(x) == u.Find(y) }

// Classes returns the members of each class with ≥1 member, keyed by
// representative, each sorted ascending.
func (u *UnionFind) Classes() map[int][]int {
	out := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		out[r] = append(out[r], i)
	}
	for _, members := range out {
		sort.Ints(members)
	}
	return out
}
