package label

import (
	"fmt"

	"systolic/internal/crossoff"
	"systolic/internal/model"
	"systolic/internal/rational"
)

// AssignByOrder computes a consistent labeling directly from the
// definition of consistency (§5): every cell program must touch
// messages in nondecreasing label order. Each pair of consecutive
// distinct messages in a cell program contributes a ≤ constraint; the
// related-messages rule (§6 step 1c) is subsumed exactly — an
// interleaving R(B)…R(A)…R(B) induces the cycle B ≤ … ≤ A ≤ … ≤ B,
// forcing equal labels. Strongly connected components of the
// constraint graph are merged, and labels are the 1-based longest-path
// ranks of the condensation, which distinguishes messages as much as
// the constraints allow.
//
// Unlike the crossing-off-driven §6 greedy scheme (Assign), this
// construction cannot fail on a deadlock-free program: ≤ constraint
// systems are always satisfiable (the trivial all-equal labeling
// satisfies any of them). Assign falls back to it when the greedy
// scheme's pick order paints itself into a corner — a possibility the
// paper leaves open when it notes that choosing an "optimal"
// executable pair "is an issue".
//
// extraEqualities injects additional same-label requirements, e.g. the
// §8.2 rule that lookahead-skipped messages share the located
// message's label; pass nil for none.
func AssignByOrder(p *model.Program, extraEqualities [][2]model.MessageID) (Labeling, error) {
	if !crossoff.Classify(p, crossoff.Options{Lookahead: true}) {
		// Even with unbounded buffering the program cannot run; labels
		// are meaningless. (Strictly-deadlocked programs that lookahead
		// admits are labelable — callers gate on their own variant.)
		res := crossoff.Run(p, crossoff.Options{})
		return Labeling{}, fmt.Errorf("label: program is not deadlock-free: %s",
			crossoff.DescribeBlocked(p, res.Blocked))
	}
	n := p.NumMessages()
	adj := make([][]int, n) // u → v means label(u) ≤ label(v)
	addEdge := func(u, v model.MessageID) {
		if u != v {
			adj[u] = append(adj[u], int(v))
		}
	}
	for c := 0; c < p.NumCells(); c++ {
		code := p.Code(model.CellID(c))
		for i := 1; i < len(code); i++ {
			addEdge(code[i-1].Msg, code[i].Msg)
		}
	}
	for _, eq := range extraEqualities {
		addEdge(eq[0], eq[1])
		addEdge(eq[1], eq[0])
	}

	comp := sccKosaraju(adj)

	// Condensation longest-path rank: rank(C) = 1 + max rank of
	// predecessors. Process components in reverse topological order of
	// the original graph (Kosaraju numbers components in topological
	// order of the condensation already).
	nc := 0
	for _, c := range comp {
		if c+1 > nc {
			nc = c + 1
		}
	}
	rank := make([]int, nc)
	for i := range rank {
		rank[i] = 1
	}
	// Kosaraju numbers components in topological order of the
	// condensation (sources first), so a single ascending sweep sees
	// every predecessor's final rank before propagating it.
	order := make([][]int, nc) // members per component
	for m, c := range comp {
		order[c] = append(order[c], m)
	}
	for c := 0; c < nc; c++ {
		for _, u := range order[c] {
			for _, v := range adj[u] {
				cv := comp[v]
				if cv != c && rank[c]+1 > rank[cv] {
					rank[cv] = rank[c] + 1
				}
			}
		}
	}

	lab := Labeling{
		ByMessage: make([]rational.R, n),
		Dense:     make([]int, n),
	}
	for m := 0; m < n; m++ {
		lab.ByMessage[m] = rational.FromInt(int64(rank[comp[m]]))
	}
	lab.Dense = densify(lab.ByMessage)
	return lab, nil
}

// sccKosaraju returns the component id of each node, with component
// ids in topological order of the condensation (sources first).
func sccKosaraju(adj [][]int) []int {
	n := len(adj)
	visited := make([]bool, n)
	post := make([]int, 0, n)
	var dfs1 func(int)
	dfs1 = func(u int) {
		visited[u] = true
		for _, v := range adj[u] {
			if !visited[v] {
				dfs1(v)
			}
		}
		post = append(post, u)
	}
	for u := 0; u < n; u++ {
		if !visited[u] {
			dfs1(u)
		}
	}
	radj := make([][]int, n)
	for u, vs := range adj {
		for _, v := range vs {
			radj[v] = append(radj[v], u)
		}
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var dfs2 func(int, int)
	dfs2 = func(u, c int) {
		comp[u] = c
		for _, v := range radj[u] {
			if comp[v] == -1 {
				dfs2(v, c)
			}
		}
	}
	c := 0
	for i := len(post) - 1; i >= 0; i-- {
		if comp[post[i]] == -1 {
			dfs2(post[i], c)
			c++
		}
	}
	return comp
}

// LookaheadEqualities runs the lookahead crossing-off procedure and
// collects the §8.2 rule-1d equality pairs: each skipped write's
// message must share the located pair's label.
func LookaheadEqualities(p *model.Program, budget func(model.MessageID) int) [][2]model.MessageID {
	var eqs [][2]model.MessageID
	crossoff.Run(p, crossoff.Options{
		Lookahead: true,
		Budget:    budget,
		Observer: func(pr crossoff.Pair) {
			for _, sk := range pr.Skipped {
				if sk.Msg != pr.Msg {
					eqs = append(eqs, [2]model.MessageID{pr.Msg, sk.Msg})
				}
			}
		},
	})
	return eqs
}
