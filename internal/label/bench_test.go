package label

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkAssignGreedy(b *testing.B) {
	for _, size := range []struct{ cells, msgs int }{{4, 8}, {6, 16}, {8, 32}} {
		rng := rand.New(rand.NewSource(11))
		p := randomDF(b, rng, size.cells, size.msgs, 4)
		b.Run(fmt.Sprintf("cells=%d,msgs=%d", size.cells, size.msgs), func(b *testing.B) {
			for b.Loop() {
				if _, err := Assign(p, Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAssignByOrder(b *testing.B) {
	for _, size := range []struct{ cells, msgs int }{{4, 8}, {6, 16}, {8, 32}} {
		rng := rand.New(rand.NewSource(11))
		p := randomDF(b, rng, size.cells, size.msgs, 4)
		b.Run(fmt.Sprintf("cells=%d,msgs=%d", size.cells, size.msgs), func(b *testing.B) {
			for b.Loop() {
				if _, err := AssignByOrder(p, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRelated(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	p := randomDF(b, rng, 8, 32, 4)
	for b.Loop() {
		Related(p)
	}
}

func BenchmarkCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	p := randomDF(b, rng, 8, 32, 4)
	lab, err := Assign(p, Options{})
	if err != nil {
		b.Fatal(err)
	}
	for b.Loop() {
		if err := Check(p, lab.ByMessage); err != nil {
			b.Fatal(err)
		}
	}
}
