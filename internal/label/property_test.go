package label

import (
	"fmt"
	"testing"

	"systolic/internal/gen"
	"systolic/internal/model"
)

// concat builds the sequential composition of two programs over the
// same cell count: p's messages and code, then q's messages (renamed)
// and code appended cell by cell. If both halves are deadlock-free the
// composition is too — cross off p's pairs in their order, then q's.
func concat(t *testing.T, p, q *model.Program) *model.Program {
	t.Helper()
	if p.NumCells() != q.NumCells() {
		t.Fatalf("concat: %d vs %d cells", p.NumCells(), q.NumCells())
	}
	b := model.NewBuilder()
	for _, c := range p.Cells() {
		b.AddCell(c.Name)
	}
	remapP := make([]model.MessageID, p.NumMessages())
	for _, m := range p.Messages() {
		remapP[m.ID] = b.DeclareMessage("P"+m.Name, m.Sender, m.Receiver, m.Words)
	}
	remapQ := make([]model.MessageID, q.NumMessages())
	for _, m := range q.Messages() {
		remapQ[m.ID] = b.DeclareMessage("Q"+m.Name, m.Sender, m.Receiver, m.Words)
	}
	emit := func(src *model.Program, remap []model.MessageID) {
		for c := 0; c < src.NumCells(); c++ {
			for _, op := range src.Code(model.CellID(c)) {
				if op.Kind == model.Write {
					b.Write(model.CellID(c), remap[op.Msg])
				} else {
					b.Read(model.CellID(c), remap[op.Msg])
				}
			}
		}
	}
	emit(p, remapP)
	emit(q, remapQ)
	built, err := b.Build()
	if err != nil {
		t.Fatalf("concat: %v", err)
	}
	return built
}

// TestPropertyConsistentLabelingSurvivesConcatenation: for generated
// deadlock-free programs p and q over the same cells, the sequential
// composition p;q must label consistently — the §6 scheme (or its
// order-based fallback) always finds nondecreasing per-cell labels for
// the whole, and Check agrees.
func TestPropertyConsistentLabelingSurvivesConcatenation(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cells := 4 + int(seed%4)
			opts := gen.Options{Cells: cells, Topology: gen.TopoLinear}
			p, err := gen.Generate(seed, opts)
			if err != nil {
				t.Fatal(err)
			}
			q, err := gen.Generate(seed+1000, opts)
			if err != nil {
				t.Fatal(err)
			}
			whole := concat(t, p.Program, q.Program)

			lab, err := Assign(whole, Options{})
			if err != nil {
				t.Fatalf("labeling the concatenation failed: %v\n%s", err, whole)
			}
			if err := Check(whole, lab.ByMessage); err != nil {
				t.Fatalf("inconsistent labeling on concatenation: %v\n%s", err, whole)
			}
			if err := CheckDense(whole, lab.Dense); err != nil {
				t.Fatalf("dense ranks inconsistent on concatenation: %v", err)
			}

			// The halves alone must also label consistently — the
			// property is about composition, not repair.
			for name, half := range map[string]*model.Program{"p": p.Program, "q": q.Program} {
				l, err := Assign(half, Options{})
				if err != nil {
					t.Fatalf("half %s: %v", name, err)
				}
				if err := Check(half, l.ByMessage); err != nil {
					t.Fatalf("half %s inconsistent: %v", name, err)
				}
			}
		})
	}
}

// TestPropertyRelatedClassesShareLabels: messages the §6 relation ties
// together must receive equal labels from Assign — rule 1c stated as
// a property over generated interleaved programs.
func TestPropertyRelatedClassesShareLabels(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		sc, err := gen.Generate(seed, gen.Options{Interleave: 3})
		if err != nil {
			t.Fatal(err)
		}
		lab, err := Assign(sc.Program, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		uf := Related(sc.Program)
		for a := 0; a < sc.Program.NumMessages(); a++ {
			for b := a + 1; b < sc.Program.NumMessages(); b++ {
				if uf.Same(a, b) && !lab.ByMessage[a].Equal(lab.ByMessage[b]) {
					t.Errorf("seed %d: related messages %d and %d labeled %v vs %v",
						seed, a, b, lab.ByMessage[a], lab.ByMessage[b])
				}
			}
		}
	}
}
