package label

import (
	"math/rand"
	"testing"

	"systolic/internal/crossoff"
	"systolic/internal/model"
)

func TestAssignByOrderFig7(t *testing.T) {
	p := fig7(t)
	lab, err := AssignByOrder(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, lab.ByMessage); err != nil {
		t.Fatal(err)
	}
	// Order constraints: A ≤ B (C3), C ≤ B (C4); B strictly above both.
	a, _ := p.MessageByName("A")
	b, _ := p.MessageByName("B")
	c, _ := p.MessageByName("C")
	if !(lab.Dense[a.ID] < lab.Dense[b.ID] && lab.Dense[c.ID] < lab.Dense[b.ID]) {
		t.Fatalf("dense labels A=%d B=%d C=%d", lab.Dense[a.ID], lab.Dense[b.ID], lab.Dense[c.ID])
	}
}

func TestAssignByOrderMergesInterleavings(t *testing.T) {
	// Fig 8 shape: interleaved reads force equal labels via the SCC.
	p := build(t, 3,
		[]msgSpec{{"A", 1, 2, 4}, {"B", 0, 2, 3}},
		[][]string{
			{"W:B", "W:B", "W:B"},
			{"W:A", "W:A", "W:A", "W:A"},
			{"R:A", "R:B", "R:A", "R:A", "R:B", "R:B", "R:A"},
		})
	lab, err := AssignByOrder(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lab.Dense[0] != lab.Dense[1] {
		t.Fatalf("interleaved messages labeled %d and %d", lab.Dense[0], lab.Dense[1])
	}
}

func TestAssignByOrderExtraEqualities(t *testing.T) {
	// Two independent pipelines; an injected equality ties them.
	p := build(t, 4,
		[]msgSpec{{"A", 0, 1, 1}, {"B", 2, 3, 1}},
		[][]string{{"W:A"}, {"R:A"}, {"W:B"}, {"R:B"}})
	lab, err := AssignByOrder(p, [][2]model.MessageID{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if lab.Dense[0] != lab.Dense[1] {
		t.Fatalf("equality ignored: %v", lab.Dense)
	}
}

func TestAssignByOrderRejectsTrulyDeadlocked(t *testing.T) {
	p := build(t, 2,
		[]msgSpec{{"A", 0, 1, 1}, {"B", 1, 0, 1}},
		[][]string{{"R:B", "W:A"}, {"R:A", "W:B"}})
	if _, err := AssignByOrder(p, nil); err == nil {
		t.Fatal("deadlocked program labeled")
	}
}

// regression103 is the generated program (seed 103 of the Theorem 1
// property test) on which the literal §6 greedy scheme commits a
// related class (M1=M6, interleaved at C4) to a label before M1's
// sender constraints (M7 ≤ M4 ≤ M1 at C2) are visible. A consistent
// labeling exists; Assign must find one via its fallback.
func regression103(t *testing.T) *model.Program {
	return build(t, 6,
		[]msgSpec{
			{"M1", 1, 3, 4}, {"M2", 2, 0, 2}, {"M3", 4, 5, 1},
			{"M4", 2, 1, 1}, {"M5", 2, 4, 3}, {"M6", 3, 5, 4}, {"M7", 2, 1, 1},
		},
		[][]string{
			{"R:M2", "R:M2"},
			{"R:M7", "R:M4", "W:M1", "W:M1", "W:M1", "W:M1"},
			{"W:M7", "W:M2", "W:M2", "W:M5", "W:M4", "W:M5", "W:M5"},
			{"W:M6", "R:M1", "R:M1", "R:M1", "W:M6", "W:M6", "W:M6", "R:M1"},
			{"W:M3", "R:M5", "R:M5", "R:M5"},
			{"R:M3", "R:M6", "R:M6", "R:M6", "R:M6"},
		})
}

func TestGreedyCornerCaseFallsBackConsistently(t *testing.T) {
	p := regression103(t)
	if !crossoff.Classify(p, crossoff.Options{}) {
		t.Fatal("regression program should be deadlock-free")
	}
	lab, err := Assign(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(p, lab.ByMessage); err != nil {
		t.Fatalf("Assign returned inconsistent labels: %v", err)
	}
	if len(lab.Warnings) == 0 {
		t.Fatal("expected a fallback warning on the greedy corner case")
	}
	// The constraint structure: M7 ≤ M2 ≤ M5 = M4 ≤ M1 = M6, M3 ≤ M5.
	get := func(name string) int {
		m, _ := p.MessageByName(name)
		return lab.Dense[m.ID]
	}
	if get("M4") != get("M5") || get("M1") != get("M6") {
		t.Fatalf("forced equalities broken: M4=%d M5=%d M1=%d M6=%d",
			get("M4"), get("M5"), get("M1"), get("M6"))
	}
	if !(get("M7") <= get("M2") && get("M2") <= get("M5") && get("M4") <= get("M1")) {
		t.Fatal("order constraints broken")
	}
}

func TestAssignByOrderAlwaysConsistentOnRandomDAGs(t *testing.T) {
	// Random deadlock-free programs built the same way as the verify
	// generator (duplicated here to avoid an import cycle).
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomDF(t, rng, 2+rng.Intn(5), 1+rng.Intn(8), 4)
		lab, err := AssignByOrder(p, nil)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := Check(p, lab.ByMessage); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
	}
}

func TestAssignNeverReturnsInconsistent(t *testing.T) {
	// The headline contract after the fallback change: whatever path
	// Assign takes, the result passes Check.
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomDF(t, rng, 2+rng.Intn(5), 1+rng.Intn(8), 4)
		lab, err := Assign(p, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
		if err := Check(p, lab.ByMessage); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
	}
}

func randomDF(t testing.TB, rng *rand.Rand, cells, messages, maxWords int) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	ids := b.AddCells("C", cells)
	type decl struct {
		id   model.MessageID
		s, r model.CellID
		left int
	}
	var msgs []decl
	for i := 0; i < messages; i++ {
		s := rng.Intn(cells)
		r := rng.Intn(cells - 1)
		if r >= s {
			r++
		}
		words := 1 + rng.Intn(maxWords)
		id := b.DeclareMessage(
			"M"+string(rune('A'+i)), ids[s], ids[r], words)
		msgs = append(msgs, decl{id: id, s: ids[s], r: ids[r], left: words})
	}
	live := make([]int, len(msgs))
	for i := range live {
		live[i] = i
	}
	for len(live) > 0 {
		k := rng.Intn(len(live))
		i := live[k]
		b.Write(msgs[i].s, msgs[i].id)
		b.Read(msgs[i].r, msgs[i].id)
		msgs[i].left--
		if msgs[i].left == 0 {
			live = append(live[:k], live[k+1:]...)
		}
	}
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}
