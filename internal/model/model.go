// Package model defines the abstract objects of Kung's systolic
// communication model (§2 of the paper): cells, messages, and cell
// programs made of syntactic read/write operations.
//
// A Program is the unit every other package operates on. It is
// immutable after Build; analysis packages (crossoff, label) and the
// run-time packages (assign, sim) consume it without copying.
package model

import (
	"fmt"
	"sort"
	"strings"
)

// CellID identifies a cell (processor) in the array. The host counts
// as a cell (§2.1). IDs are dense indices 0..NumCells-1.
type CellID int

// MessageID identifies a declared message. IDs are dense indices
// 0..NumMessages-1 in declaration order.
type MessageID int

// OpKind distinguishes the two operations the deadlock machinery cares
// about: reads and writes to messages (§2.2).
type OpKind uint8

const (
	// Read is R(X): consume the next word of message X from the front
	// of an input queue.
	Read OpKind = iota
	// Write is W(X): append the next word of message X to the end of
	// an output queue.
	Write
)

// String returns "R" or "W".
func (k OpKind) String() string {
	if k == Read {
		return "R"
	}
	return "W"
}

// Op is a single statement of a cell program: R(Msg) or W(Msg).
type Op struct {
	Kind OpKind
	Msg  MessageID
}

// Message is a declared message: a sequence of Words words traveling
// from Sender to Receiver. All messages are declared before execution
// (§2.1).
type Message struct {
	ID       MessageID
	Name     string
	Sender   CellID
	Receiver CellID
	Words    int
}

// Cell is a processing element. Host marks the distinguished host cell
// (treated as an ordinary cell by all analyses).
type Cell struct {
	ID   CellID
	Name string
	Host bool
}

// Program is a validated systolic program: one op sequence per cell,
// plus the message declarations the ops refer to.
type Program struct {
	cells    []Cell
	messages []Message
	code     [][]Op

	byName map[string]MessageID
}

// NumCells returns the number of cells (including the host).
func (p *Program) NumCells() int { return len(p.cells) }

// NumMessages returns the number of declared messages.
func (p *Program) NumMessages() int { return len(p.messages) }

// Cell returns the cell with the given id.
func (p *Program) Cell(id CellID) Cell { return p.cells[id] }

// Cells returns all cells in id order. The returned slice must not be
// modified.
func (p *Program) Cells() []Cell { return p.cells }

// Message returns the declaration of the given message.
func (p *Program) Message(id MessageID) Message { return p.messages[id] }

// Messages returns all message declarations in id order. The returned
// slice must not be modified.
func (p *Program) Messages() []Message { return p.messages }

// MessageByName looks a message up by its declared name.
func (p *Program) MessageByName(name string) (Message, bool) {
	id, ok := p.byName[name]
	if !ok {
		return Message{}, false
	}
	return p.messages[id], true
}

// Code returns the op sequence of one cell. The returned slice must
// not be modified.
func (p *Program) Code(c CellID) []Op { return p.code[c] }

// TotalOps returns the total number of read and write operations in
// the program.
func (p *Program) TotalOps() int {
	n := 0
	for _, ops := range p.code {
		n += len(ops)
	}
	return n
}

// OpString formats an op using the program's message names, e.g.
// "W(XA)".
func (p *Program) OpString(op Op) string {
	return fmt.Sprintf("%s(%s)", op.Kind, p.messages[op.Msg].Name)
}

// String renders the program as one line per cell, mirroring the
// paper's figures.
func (p *Program) String() string {
	var b strings.Builder
	for c, ops := range p.code {
		fmt.Fprintf(&b, "%s:", p.cells[c].Name)
		for _, op := range ops {
			b.WriteByte(' ')
			b.WriteString(p.OpString(op))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Clone returns a deep copy of the program. Analyses never mutate a
// Program, but generators that derive variants (e.g. mutation-based
// deadlock injection in internal/verify) start from a clone.
func (p *Program) Clone() *Program {
	q := &Program{
		cells:    append([]Cell(nil), p.cells...),
		messages: append([]Message(nil), p.messages...),
		code:     make([][]Op, len(p.code)),
		byName:   make(map[string]MessageID, len(p.byName)),
	}
	for i, ops := range p.code {
		q.code[i] = append([]Op(nil), ops...)
	}
	for k, v := range p.byName {
		q.byName[k] = v
	}
	return q
}

// Builder assembles a Program incrementally and validates it on Build.
// The zero Builder is ready to use.
type Builder struct {
	cells    []Cell
	messages []Message
	code     map[CellID][]Op
	byName   map[string]MessageID
	errs     []error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		code:   make(map[CellID][]Op),
		byName: make(map[string]MessageID),
	}
}

// AddCell declares a cell and returns its id. Cell names must be
// unique and non-empty.
func (b *Builder) AddCell(name string) CellID {
	return b.addCell(name, false)
}

// AddHost declares the host cell (§2.1 treats the host as a cell).
func (b *Builder) AddHost(name string) CellID {
	return b.addCell(name, true)
}

func (b *Builder) addCell(name string, host bool) CellID {
	if name == "" {
		b.errs = append(b.errs, fmt.Errorf("model: empty cell name"))
	}
	for _, c := range b.cells {
		if c.Name == name {
			b.errs = append(b.errs, fmt.Errorf("model: duplicate cell name %q", name))
		}
	}
	id := CellID(len(b.cells))
	b.cells = append(b.cells, Cell{ID: id, Name: name, Host: host})
	return id
}

// AddCells declares n cells named prefix1..prefixN and returns their ids.
func (b *Builder) AddCells(prefix string, n int) []CellID {
	ids := make([]CellID, n)
	for i := range ids {
		ids[i] = b.AddCell(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return ids
}

// DeclareMessage declares a message with the given name, endpoints and
// word count, returning its id. Word count must be positive; names
// must be unique.
func (b *Builder) DeclareMessage(name string, sender, receiver CellID, words int) MessageID {
	if name == "" {
		b.errs = append(b.errs, fmt.Errorf("model: empty message name"))
	}
	if _, dup := b.byName[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("model: duplicate message name %q", name))
	}
	if words <= 0 {
		b.errs = append(b.errs, fmt.Errorf("model: message %q: word count %d not positive", name, words))
	}
	if sender == receiver {
		b.errs = append(b.errs, fmt.Errorf("model: message %q: sender and receiver are both cell %d", name, sender))
	}
	id := MessageID(len(b.messages))
	b.messages = append(b.messages, Message{ID: id, Name: name, Sender: sender, Receiver: receiver, Words: words})
	b.byName[name] = id
	return id
}

// Write appends a W(msg) op to cell c's program.
func (b *Builder) Write(c CellID, msg MessageID) *Builder {
	b.code[c] = append(b.code[c], Op{Kind: Write, Msg: msg})
	return b
}

// Read appends an R(msg) op to cell c's program.
func (b *Builder) Read(c CellID, msg MessageID) *Builder {
	b.code[c] = append(b.code[c], Op{Kind: Read, Msg: msg})
	return b
}

// WriteN appends n W(msg) ops.
func (b *Builder) WriteN(c CellID, msg MessageID, n int) *Builder {
	for i := 0; i < n; i++ {
		b.Write(c, msg)
	}
	return b
}

// ReadN appends n R(msg) ops.
func (b *Builder) ReadN(c CellID, msg MessageID, n int) *Builder {
	for i := 0; i < n; i++ {
		b.Read(c, msg)
	}
	return b
}

// Build validates and freezes the program. Validation enforces the
// paper's §2 conventions:
//
//   - every W(X) appears only in X's sender program, every R(X) only in
//     X's receiver program;
//   - the number of W(X) ops equals the number of R(X) ops equals X's
//     declared word count (each op moves exactly one word);
//   - cell and message references are in range.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.cells) == 0 {
		return nil, fmt.Errorf("model: program has no cells")
	}
	code := make([][]Op, len(b.cells))
	for c := range code {
		code[c] = append([]Op(nil), b.code[CellID(c)]...)
	}
	writes := make([]int, len(b.messages))
	reads := make([]int, len(b.messages))
	for c, ops := range code {
		for i, op := range ops {
			if int(op.Msg) < 0 || int(op.Msg) >= len(b.messages) {
				return nil, fmt.Errorf("model: cell %s op %d references unknown message %d", b.cells[c].Name, i, op.Msg)
			}
			m := b.messages[op.Msg]
			switch op.Kind {
			case Write:
				if m.Sender != CellID(c) {
					return nil, fmt.Errorf("model: W(%s) in cell %s, but %s's sender is %s",
						m.Name, b.cells[c].Name, m.Name, b.cells[m.Sender].Name)
				}
				writes[op.Msg]++
			case Read:
				if m.Receiver != CellID(c) {
					return nil, fmt.Errorf("model: R(%s) in cell %s, but %s's receiver is %s",
						m.Name, b.cells[c].Name, m.Name, b.cells[m.Receiver].Name)
				}
				reads[op.Msg]++
			default:
				return nil, fmt.Errorf("model: cell %s op %d has invalid kind %d", b.cells[c].Name, i, op.Kind)
			}
		}
	}
	for id, m := range b.messages {
		if writes[id] != m.Words {
			return nil, fmt.Errorf("model: message %s declares %d words but sender writes %d", m.Name, m.Words, writes[id])
		}
		if reads[id] != m.Words {
			return nil, fmt.Errorf("model: message %s declares %d words but receiver reads %d", m.Name, m.Words, reads[id])
		}
	}
	byName := make(map[string]MessageID, len(b.byName))
	for k, v := range b.byName {
		byName[k] = v
	}
	return &Program{
		cells:    append([]Cell(nil), b.cells...),
		messages: append([]Message(nil), b.messages...),
		code:     code,
		byName:   byName,
	}, nil
}

// MustBuild is Build that panics on error; for tests and fixed example
// programs whose validity is static.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// MessagesBySender returns message ids grouped by sender cell.
func (p *Program) MessagesBySender() map[CellID][]MessageID {
	out := make(map[CellID][]MessageID)
	for _, m := range p.messages {
		out[m.Sender] = append(out[m.Sender], m.ID)
	}
	return out
}

// MessagesByReceiver returns message ids grouped by receiver cell.
func (p *Program) MessagesByReceiver() map[CellID][]MessageID {
	out := make(map[CellID][]MessageID)
	for _, m := range p.messages {
		out[m.Receiver] = append(out[m.Receiver], m.ID)
	}
	return out
}

// SortedMessageNames returns all message names sorted, a convenience
// for deterministic rendering.
func (p *Program) SortedMessageNames() []string {
	names := make([]string, 0, len(p.messages))
	for _, m := range p.messages {
		names = append(names, m.Name)
	}
	sort.Strings(names)
	return names
}
