package model

import (
	"strings"
	"testing"
)

// twoCell builds a minimal valid program: A: C1→C2, 2 words.
func twoCell(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 2)
	b.WriteN(c1, a, 2)
	b.ReadN(c2, a, 2)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildValidProgram(t *testing.T) {
	p := twoCell(t)
	if p.NumCells() != 2 || p.NumMessages() != 1 {
		t.Fatalf("cells=%d msgs=%d", p.NumCells(), p.NumMessages())
	}
	if p.TotalOps() != 4 {
		t.Fatalf("TotalOps=%d, want 4", p.TotalOps())
	}
	m, ok := p.MessageByName("A")
	if !ok || m.Words != 2 || m.Sender != 0 || m.Receiver != 1 {
		t.Fatalf("MessageByName wrong: %+v ok=%v", m, ok)
	}
	if _, ok := p.MessageByName("nope"); ok {
		t.Fatal("found nonexistent message")
	}
}

func TestOpKindString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatal("OpKind.String wrong")
	}
}

func TestOpString(t *testing.T) {
	p := twoCell(t)
	if got := p.OpString(Op{Kind: Write, Msg: 0}); got != "W(A)" {
		t.Fatalf("OpString = %q", got)
	}
}

func TestProgramString(t *testing.T) {
	s := twoCell(t).String()
	if !strings.Contains(s, "C1: W(A) W(A)") || !strings.Contains(s, "C2: R(A) R(A)") {
		t.Fatalf("String output:\n%s", s)
	}
}

func TestValidationWordCountMismatch(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 3)
	b.WriteN(c1, a, 2) // one short
	b.ReadN(c2, a, 3)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "writes 2") {
		t.Fatalf("expected write-count error, got %v", err)
	}
}

func TestValidationReadCountMismatch(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	b.Write(c1, a)
	// no read at all
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "reads 0") {
		t.Fatalf("expected read-count error, got %v", err)
	}
}

func TestValidationWriteInWrongCell(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	b.Write(c2, a) // receiver writing its own inbound message
	b.Read(c2, a)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "sender") {
		t.Fatalf("expected wrong-sender error, got %v", err)
	}
}

func TestValidationReadInWrongCell(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	b.Write(c1, a)
	b.Read(c1, a)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "receiver") {
		t.Fatalf("expected wrong-receiver error, got %v", err)
	}
}

func TestValidationDuplicateCellName(t *testing.T) {
	b := NewBuilder()
	b.AddCell("X")
	b.AddCell("X")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate cell") {
		t.Fatalf("expected duplicate-cell error, got %v", err)
	}
}

func TestValidationDuplicateMessageName(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	b.DeclareMessage("A", c1, c2, 1)
	b.DeclareMessage("A", c2, c1, 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "duplicate message") {
		t.Fatalf("expected duplicate-message error, got %v", err)
	}
}

func TestValidationSelfMessage(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	b.AddCell("C2")
	b.DeclareMessage("A", c1, c1, 1)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "sender and receiver") {
		t.Fatalf("expected self-message error, got %v", err)
	}
}

func TestValidationNonpositiveWords(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	b.DeclareMessage("A", c1, c2, 0)
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "not positive") {
		t.Fatalf("expected word-count error, got %v", err)
	}
}

func TestValidationEmptyProgram(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Fatal("empty program built")
	}
}

func TestHostFlag(t *testing.T) {
	b := NewBuilder()
	h := b.AddHost("Host")
	c := b.AddCell("C1")
	a := b.DeclareMessage("A", h, c, 1)
	b.Write(h, a)
	b.Read(c, a)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !p.Cell(h).Host || p.Cell(c).Host {
		t.Fatal("host flags wrong")
	}
}

func TestAddCellsNames(t *testing.T) {
	b := NewBuilder()
	ids := b.AddCells("P", 3)
	c2 := b.AddCell("Q")
	a := b.DeclareMessage("A", ids[0], c2, 1)
	b.Write(ids[0], a)
	b.Read(c2, a)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"P1", "P2", "P3"} {
		if p.Cell(CellID(i)).Name != want {
			t.Errorf("cell %d named %q, want %q", i, p.Cell(CellID(i)).Name, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := twoCell(t)
	q := p.Clone()
	q.code[0][0] = Op{Kind: Read, Msg: 0}
	if p.Code(0)[0].Kind != Write {
		t.Fatal("Clone shares op storage with original")
	}
	if q.NumCells() != p.NumCells() || q.NumMessages() != p.NumMessages() {
		t.Fatal("Clone lost structure")
	}
	if _, ok := q.MessageByName("A"); !ok {
		t.Fatal("Clone lost name index")
	}
}

func TestGroupings(t *testing.T) {
	b := NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	c3 := b.AddCell("C3")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c1, c3, 1)
	c := b.DeclareMessage("C", c3, c1, 1)
	b.Write(c1, a).Write(c1, bb).Read(c1, c)
	b.Read(c2, a)
	b.Read(c3, bb).Write(c3, c)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bySender := p.MessagesBySender()
	if len(bySender[c1]) != 2 || len(bySender[c3]) != 1 {
		t.Fatalf("MessagesBySender wrong: %v", bySender)
	}
	byRecv := p.MessagesByReceiver()
	if len(byRecv[c2]) != 1 || len(byRecv[c3]) != 1 || len(byRecv[c1]) != 1 {
		t.Fatalf("MessagesByReceiver wrong: %v", byRecv)
	}
	names := p.SortedMessageNames()
	if len(names) != 3 || names[0] != "A" || names[2] != "C" {
		t.Fatalf("SortedMessageNames = %v", names)
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic")
		}
	}()
	b := NewBuilder()
	b.AddCell("X")
	b.AddCell("X")
	b.MustBuild()
}
