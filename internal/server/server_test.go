package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// relayDSL is a small deadlock-free three-cell relay used throughout
// the server tests.
const relayDSL = `topology linear 3
cell C1
cell C2
cell C3
message A C1 C2 2
message B C2 C3 2
code C1: W(A) W(A)
code C2: R(A) W(B) R(A) W(B)
code C3: R(B) R(B)
`

// fig7DSL is the paper's §4 queue-induced-deadlock example.
const fig7DSL = `topology linear 4
cell C1
cell C2
cell C3
cell C4
message A C2 C3 4
message B C3 C4 3
message C C1 C4 3
code C1: W(C) W(C) W(C)
code C2: W(A) W(A) W(A) W(A)
code C3: R(A) R(A) R(A) R(A) W(B) W(B) W(B)
code C4: R(C) R(C) R(C) R(B) R(B) R(B)
`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// postRaw posts a pre-encoded body.
func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func TestAnalyzeEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !ar.DeadlockFree || !ar.Strict {
		t.Fatalf("relay misclassified: %+v", ar)
	}
	if ar.MinQueuesDynamic < 1 || ar.MinQueuesStatic < 1 {
		t.Fatalf("queue bounds missing: %+v", ar)
	}
	if len(ar.Labels) != 2 {
		t.Fatalf("want 2 labels, got %+v", ar.Labels)
	}
	if ar.Cached {
		t.Fatal("first analyze claims a cache hit")
	}
	if len(ar.Scenario) != 64 {
		t.Fatalf("scenario %q is not a content hash", ar.Scenario)
	}

	_, body2 := postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Program: relayDSL})
	var ar2 AnalyzeResponse
	if err := json.Unmarshal(body2, &ar2); err != nil {
		t.Fatalf("decode second: %v", err)
	}
	if !ar2.Cached {
		t.Fatal("second identical analyze was not a cache hit")
	}
	if ar2.Scenario != ar.Scenario {
		t.Fatal("scenario hash changed between identical requests")
	}
}

// TestRunEndpointWorkers: a sharded /v1/run must return exactly the
// single-threaded payload (determinism over the wire), bounded by the
// shared -max-concurrency budget (no leaked slots afterwards), and a
// negative worker count is a 400.
func TestRunEndpointWorkers(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxConcurrency: 2})
	strip := func(body []byte) RunResponse {
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		rr.ID = ""
		rr.Cached = false
		return rr
	}
	_, plain := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, Queues: 1})
	resp, sharded := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, Queues: 1, Workers: 8})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sharded run: status %d: %s", resp.StatusCode, sharded)
	}
	if !reflect.DeepEqual(strip(plain), strip(sharded)) {
		t.Fatalf("workers=8 changed the response:\n%s\nvs\n%s", plain, sharded)
	}
	if inUse := s.limiter.InUse(); inUse != 0 {
		t.Fatalf("limiter leaked %d slots after a sharded run", inUse)
	}
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, Workers: -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("workers=-1: status %d: %s", resp.StatusCode, body)
	}
}

func TestRunEndpointCacheHitAndResults(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := RunRequest{Program: relayDSL}

	resp, body := postJSON(t, ts.URL+"/v1/run", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first RunResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if first.Outcome != "completed" {
		t.Fatalf("relay did not complete: %+v", first)
	}
	if first.Cached {
		t.Fatal("first run claims a cache hit")
	}
	if first.WordsMoved == 0 || first.Cycles == 0 || first.QueuesUsed < 1 {
		t.Fatalf("run counters missing: %+v", first)
	}

	_, body2 := postJSON(t, ts.URL+"/v1/run", req)
	var second RunResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatalf("decode second: %v", err)
	}
	if !second.Cached {
		t.Fatal("second identical run was not a cache hit")
	}
	if second.Outcome != first.Outcome || second.Cycles != first.Cycles {
		t.Fatalf("cached run diverged: %+v vs %+v", second, first)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1", stats.CacheMisses)
	}
	if stats.CacheHits != 1 {
		t.Fatalf("CacheHits = %d, want 1", stats.CacheHits)
	}
	if stats.CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1", stats.CacheEntries)
	}
	if stats.Requests < 3 {
		t.Fatalf("Requests = %d, want ≥ 3", stats.Requests)
	}

	// The stored result replays the original response byte-for-byte.
	var doc bytes.Buffer
	resp3, err := http.Get(ts.URL + "/v1/results/" + first.ID)
	if err != nil {
		t.Fatalf("GET results: %v", err)
	}
	defer resp3.Body.Close()
	doc.ReadFrom(resp3.Body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("results status %d", resp3.StatusCode)
	}
	if doc.String() != string(body) {
		t.Fatalf("stored result differs:\n%q\nvs\n%q", doc.String(), string(body))
	}
}

// TestCanonicalAliasing: a textually different but structurally
// identical program must hit the canonical cache — one compile total.
func TestCanonicalAliasing(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	variant := "# same scenario, different text\n" + strings.ReplaceAll(relayDSL, "\n", "\n\n")
	postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL})
	_, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: variant})
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !rr.Cached {
		t.Fatal("structurally identical program missed the canonical cache")
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1 (one compile for both texts)", stats.CacheMisses)
	}
}

// TestAnalyzeOptionsSplitTheCache: the same program under different
// analysis options is a different scenario.
func TestAnalyzeOptionsSplitTheCache(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Program: relayDSL})
	postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Program: relayDSL, Analyze: AnalyzeSpec{Lookahead: true, Capacity: 2}})
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.CacheMisses != 2 {
		t.Fatalf("CacheMisses = %d, want 2 (options are part of the key)", stats.CacheMisses)
	}
}

func TestRunReportsDeadlock(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Program: fig7DSL, Policy: "fcfs", Queues: 1, Force: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rr.Outcome != "deadlocked" {
		t.Fatalf("fig7 under FCFS/1 queue should deadlock, got %q", rr.Outcome)
	}
	if len(rr.Blocked) == 0 {
		t.Fatal("deadlocked run reports no blocked cells")
	}
	// The paper's default policy completes the same scenario.
	_, body2 := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: fig7DSL})
	var ok RunResponse
	if err := json.Unmarshal(body2, &ok); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ok.Outcome != "completed" {
		t.Fatalf("compatible policy should complete fig7, got %q", ok.Outcome)
	}
	if !ok.Cached {
		t.Fatal("second fig7 request should reuse the compiled scenario")
	}
}

// TestRunEndpointFaults: the run endpoint's faults field degrades the
// array — a periodic plan completes late but completes, the response
// echoes the active faults and the gated-operation count, and bad
// specs are 400s. A factor-1 plan must answer byte-identically to no
// plan at all (modulo the response ID).
func TestRunEndpointFaults(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Program: relayDSL, Faults: "cell:1:slow=2,link:0:slow=3@4",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var faulted RunResponse
	if err := json.Unmarshal(body, &faulted); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if faulted.Outcome != "completed" {
		t.Fatalf("periodic faults should only delay, got %q", faulted.Outcome)
	}
	if want := []string{"cell:1:slow=2", "link:0:slow=3@4"}; !reflect.DeepEqual(faulted.Faults, want) {
		t.Fatalf("faults echoed as %v, want %v", faulted.Faults, want)
	}
	if faulted.GatedOps == 0 {
		t.Fatal("degraded run reports zero gated operations")
	}

	_, clean := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL})
	_, noop := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, Faults: "cell:0:slow=1"})
	var cr, nr RunResponse
	if err := json.Unmarshal(clean, &cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := json.Unmarshal(noop, &nr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	cr.ID, nr.ID = "", ""
	if !reflect.DeepEqual(cr, nr) {
		t.Fatalf("factor-1 plan changed the response:\n%+v\nvs\n%+v", cr, nr)
	}
	if cr.Cycles >= faulted.Cycles {
		t.Fatalf("slowdown did not slow the run: clean %d cycles, faulted %d", cr.Cycles, faulted.Cycles)
	}

	if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, Faults: "cell:0:melted"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d: %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, Faults: "cell:99:dead"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ill-fitting plan: status %d: %s", resp.StatusCode, body)
	}
}

// TestRunEndpointDeadCellDeadlocks: a dead cell mid-relay starves its
// consumer — the run deadlocks and the blocked report names the stall.
func TestRunEndpointDeadCellDeadlocks(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Program: relayDSL, Faults: "cell:1:dead",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rr.Outcome != "deadlocked" {
		t.Fatalf("dead relay cell should deadlock the run, got %q", rr.Outcome)
	}
	if len(rr.Blocked) == 0 {
		t.Fatal("deadlocked run reports no blocked cells")
	}
	if want := []string{"cell:1:dead"}; !reflect.DeepEqual(rr.Faults, want) {
		t.Fatalf("faults echoed as %v, want %v", rr.Faults, want)
	}
}

// TestSweepEndpointFaults: the sweep endpoint's faults field degrades
// every grid point, and ill-fitting plans refuse the whole sweep with
// 400 before any streaming commitment.
func TestSweepEndpointFaults(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := SweepRequest{
		Program:    relayDSL,
		Policies:   []string{"compatible"},
		Queues:     []int{2},
		Capacities: []int{1},
		Lookaheads: []int{0},
		Seed:       1,
	}
	_, clean := postJSON(t, ts.URL+"/v1/sweep", req)
	req.Faults = "cell:1:slow=3"
	resp, faulted := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, faulted)
	}
	var cr, fr SweepResponse
	if err := json.Unmarshal(clean, &cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := json.Unmarshal(faulted, &fr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(fr.Outcomes) != 1 || fr.Outcomes[0].Result != "completed" {
		t.Fatalf("faulted sweep outcomes: %+v", fr.Outcomes)
	}
	if cr.Outcomes[0].Cycles >= fr.Outcomes[0].Cycles {
		t.Fatalf("slowdown did not slow the grid point: clean %d cycles, faulted %d",
			cr.Outcomes[0].Cycles, fr.Outcomes[0].Cycles)
	}

	req.Faults = "cell:99:dead"
	if resp, body := postJSON(t, ts.URL+"/v1/sweep", req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ill-fitting plan: status %d: %s", resp.StatusCode, body)
	}
	req.Faults = "link:0:dead"
	if resp, body := postJSON(t, ts.URL+"/v1/sweep", req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d: %s", resp.StatusCode, body)
	}
}

func TestSweepEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Program:    fig7DSL,
		Policies:   []string{"fcfs", "compatible"},
		Queues:     []int{1, 2},
		Capacities: []int{1},
		Lookaheads: []int{0},
		Seed:       1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(sr.Outcomes) != 4 {
		t.Fatalf("want 4 grid points, got %d", len(sr.Outcomes))
	}
	if sr.Table == "" {
		t.Fatal("sweep table missing")
	}
	var sawDeadlock, sawCompleted bool
	for _, o := range sr.Outcomes {
		switch o.Result {
		case "deadlocked":
			sawDeadlock = true
		case "completed":
			sawCompleted = true
		}
	}
	if !sawDeadlock || !sawCompleted {
		t.Fatalf("sweep should contrast deadlock and completion: %+v", sr.Outcomes)
	}
	if sr.Cached {
		t.Fatal("first sweep claims a cache hit")
	}
	if len(sr.Scenario) != 64 {
		t.Fatalf("scenario %q is not a content hash", sr.Scenario)
	}

	// A repeated sweep is served from the compiled-scenario cache: no
	// recompiles, cacheHits advances.
	var before StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &before)
	_, body2 := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{
		Program:    fig7DSL,
		Policies:   []string{"fcfs", "compatible"},
		Queues:     []int{1, 2},
		Capacities: []int{1},
		Lookaheads: []int{0},
		Seed:       1,
	})
	var sr2 SweepResponse
	if err := json.Unmarshal(body2, &sr2); err != nil {
		t.Fatalf("decode second: %v", err)
	}
	if !sr2.Cached {
		t.Fatal("repeated sweep did not hit the scenario cache")
	}
	var after StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &after)
	if after.CacheHits <= before.CacheHits {
		t.Fatalf("CacheHits did not advance on a repeated sweep: %d → %d", before.CacheHits, after.CacheHits)
	}
	if after.CacheMisses != before.CacheMisses {
		t.Fatalf("repeated sweep recompiled: misses %d → %d", before.CacheMisses, after.CacheMisses)
	}

	// The sweep's strict (lookahead 0) analysis is the same cache entry
	// a default /v1/run uses — the cache is shared across endpoints.
	_, rbody := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: fig7DSL})
	var rr RunResponse
	if err := json.Unmarshal(rbody, &rr); err != nil {
		t.Fatalf("decode run: %v", err)
	}
	if !rr.Cached {
		t.Fatal("default run after a sweep missed the shared cache entry")
	}
}

func TestEvictionBound(t *testing.T) {
	_, ts := newTestServer(t, Options{CacheSize: 1})
	programs := []string{relayDSL, fig7DSL, relayDSL}
	for _, p := range programs {
		postJSON(t, ts.URL+"/v1/analyze", AnalyzeRequest{Program: p})
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1 (bound)", stats.CacheEntries)
	}
	if stats.CacheEvictions < 2 {
		t.Fatalf("CacheEvictions = %d, want ≥ 2", stats.CacheEvictions)
	}
	if stats.CacheMisses != 3 {
		t.Fatalf("CacheMisses = %d, want 3 (relay was evicted and recompiled)", stats.CacheMisses)
	}
}

func TestRequestErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
	}{
		{"bad json", "POST", "/v1/run", "{", http.StatusBadRequest},
		{"unknown field", "POST", "/v1/run", `{"programme": "x"}`, http.StatusBadRequest},
		{"unparseable program", "POST", "/v1/run", `{"program": "frobnicate 3"}`, http.StatusBadRequest},
		{"unknown policy", "POST", "/v1/run", fmt.Sprintf(`{"program": %q, "policy": "nice"}`, relayDSL), http.StatusBadRequest},
		{"under-budget without force", "POST", "/v1/run", fmt.Sprintf(`{"program": %q, "queues": 1, "policy": "static"}`, fig7DSL), http.StatusUnprocessableEntity},
		{"oversized body", "POST", "/v1/run", `{"program": "` + strings.Repeat("x", maxBodyBytes) + `"}`, http.StatusRequestEntityTooLarge},
		{"missing result", "GET", "/v1/results/r-99999999", "", http.StatusNotFound},
		{"wrong method", "GET", "/v1/run", "", http.StatusMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantCode)
			}
		})
	}
}

func TestStatsEndpointShape(t *testing.T) {
	s, ts := newTestServer(t, Options{MaxConcurrency: 3})
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.MaxConcurrency != 3 {
		t.Fatalf("MaxConcurrency = %d, want 3", stats.MaxConcurrency)
	}
	if stats.InFlightRuns != 0 {
		t.Fatalf("InFlightRuns = %d at rest", stats.InFlightRuns)
	}
	if got := s.statsSnapshot(); got.MaxConcurrency != 3 {
		t.Fatalf("snapshot disagrees: %+v", got)
	}
}
