// Package server turns the systolic library into a long-running
// simulation service: an HTTP/JSON daemon that accepts DSL programs,
// analyzes and simulates them, fans out parameter-sweep grids, and
// retains results for later retrieval.
//
// The throughput story is the content-addressed compiled-machine
// cache (see cache.go): every request's scenario — program, topology,
// analysis options — is canonically hashed, cache hits skip parsing,
// Analyze, and machine compilation entirely and go straight to a
// pooled machine.Run, concurrent identical compiles are deduplicated
// singleflight style, and an LRU bound caps residency. A shared
// sweep.Limiter bounds simultaneous simulations across every
// endpoint, so a burst of /v1/run traffic and a wide /v1/sweep grid
// draw from one -max-concurrency budget.
//
// Endpoints:
//
//	POST /v1/analyze   classify, label, and size a DSL program
//	POST /v1/run       simulate under a policy/queues/capacity config
//	POST /v1/sweep     run a whole configuration grid
//	GET  /v1/results/{id}  replay a prior response document
//	GET  /v1/stats     cache and concurrency counters
//	GET  /debug/vars   the same counters in expvar form
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"systolic/internal/core"
	"systolic/internal/dsl"
	"systolic/internal/fault"
	"systolic/internal/linkmodel"
	"systolic/internal/machine"
	"systolic/internal/model"
	"systolic/internal/sweep"
	"systolic/internal/topology"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address for ListenAndServe (default
	// "127.0.0.1:8080").
	Addr string
	// CacheSize bounds the compiled-scenario LRU cache (entries;
	// default 128).
	CacheSize int
	// MaxConcurrency bounds simultaneous simulations across all
	// endpoints (default runtime.GOMAXPROCS(0)).
	MaxConcurrency int
	// MaxResults bounds retained result documents (default 256).
	MaxResults int
	// QueueWait bounds how many requests may wait for a free run slot
	// before the server sheds load with 429 + Retry-After: 0 means the
	// default pool of 2×MaxConcurrency, -1 disables waiting entirely
	// (any request that misses a free slot is shed), n > 0 admits n
	// waiters.
	QueueWait int
	// Tenants, when non-nil, enables per-tenant API keys and quotas on
	// the compute endpoints (see tenant.go). Nil serves anonymously.
	Tenants *Tenants
	// TenantsFile is a path to a tenants JSON file, loaded by
	// ListenAndServe when Tenants is nil. Empty means anonymous.
	TenantsFile string
	// Log, when non-nil, receives one line on listen and one on
	// shutdown, plus one per response-write failure (a half-written
	// reply is diagnosable instead of silent).
	Log io.Writer
}

// Server is the simulation service. Create it with New; it is ready
// to serve immediately and safe for concurrent use.
type Server struct {
	opts    Options
	cache   *scenarioCache
	results *resultStore
	limiter *sweep.Limiter
	adm     *admission
	tenants *Tenants
	mux     *http.ServeMux

	requests atomic.Int64
}

// New builds a Server from options.
func New(opts Options) *Server {
	s := &Server{
		opts:    opts,
		cache:   newScenarioCache(opts.CacheSize),
		results: newResultStore(opts.MaxResults),
		limiter: sweep.NewLimiter(opts.MaxConcurrency),
		tenants: opts.Tenants,
		mux:     http.NewServeMux(),
	}
	s.adm = newAdmission(s.limiter, opts.QueueWait)
	// The compute endpoints go through the tenant gate (a no-op
	// closure-free pass-through in anonymous mode); the read endpoints
	// stay open so operators can always inspect results and stats.
	s.mux.HandleFunc("POST /v1/analyze", s.gate(s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/run", s.gate(s.handleRun))
	s.mux.HandleFunc("POST /v1/sweep", s.gate(s.handleSweep))
	s.mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	publishExpvar(s)
	return s
}

// Routes lists the service's route patterns. The docs/API.md
// conformance test walks this list, so an endpoint cannot be added
// without documenting it.
func Routes() []string {
	return []string{
		"POST /v1/analyze",
		"POST /v1/run",
		"POST /v1/sweep",
		"GET /v1/results/{id}",
		"GET /v1/stats",
	}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			s.requests.Add(1)
		}
		s.mux.ServeHTTP(w, r)
	})
}

// ListenAndServe runs a Server on opts.Addr until ctx is cancelled,
// then shuts down gracefully (in-flight requests get five seconds to
// drain). It returns nil on a clean shutdown.
func ListenAndServe(ctx context.Context, opts Options) error {
	addr := opts.Addr
	if addr == "" {
		addr = "127.0.0.1:8080"
	}
	if opts.Tenants == nil && opts.TenantsFile != "" {
		ts, err := LoadTenants(opts.TenantsFile)
		if err != nil {
			return fmt.Errorf("server: %w", err)
		}
		opts.Tenants = ts
	}
	s := New(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen: %w", err)
	}
	if opts.Log != nil {
		fmt.Fprintf(opts.Log, "sysdl serve: listening on http://%s (cache %d scenarios, %d concurrent runs, %d waiters, %d tenants)\n",
			ln.Addr(), s.cache.max, s.limiter.Cap(), s.adm.waitCap, s.tenants.count())
	}
	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		err := hs.Shutdown(sctx)
		if opts.Log != nil {
			fmt.Fprintln(opts.Log, "sysdl serve: shut down")
		}
		return err
	case err := <-errc:
		return fmt.Errorf("server: %w", err)
	}
}

// statusError carries an HTTP status with an error; retryAfter > 0
// additionally sets a Retry-After header (seconds) on the reply, the
// back-off contract of every 429.
type statusError struct {
	code       int
	retryAfter int
	err        error
}

func (e *statusError) Error() string { return e.err.Error() }

func badRequest(err error) *statusError {
	return &statusError{code: http.StatusBadRequest, err: err}
}

// lookup resolves a request's scenario through the cache: the alias
// fast path first (one hash, one map probe, no parsing), then the
// canonical path (parse, hash the parsed form, compile at most once
// process-wide). cached reports whether a compile was skipped.
func (s *Server) lookup(program string, key analysisKey) (e *entry, cached bool, err error) {
	src := srcDigest(program, key)
	if e, ok := s.cache.lookupSrc(src); ok {
		return e, true, nil
	}
	f, perr := dsl.Parse(program)
	if perr != nil {
		return nil, false, badRequest(perr)
	}
	scenario := machine.ScenarioKey(f.Program, f.Topology, nil, nil)
	canon := canonDigest(scenario, key)
	e, hit := s.cache.getOrCompile(canon, src, scenario, func() (*core.Analysis, error) {
		a, err := core.Analyze(f.Program, f.Topology, key.options())
		if err != nil {
			return nil, err
		}
		if a.DeadlockFree {
			if _, err := a.Machine(); err != nil {
				return nil, err
			}
		}
		return a, nil
	})
	return e, hit, nil
}

// logf writes one diagnostic line to Options.Log, if configured.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, "sysdl serve: "+format+"\n", args...)
	}
}

// writeJSON writes a JSON response body with status code. Encode
// failures happen after headers are committed, so they are logged
// rather than mapped to a status.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		s.logf("response encode after headers committed: %v", err)
	}
}

// writeError maps an error onto an ErrorResponse.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := http.StatusUnprocessableEntity
	var se *statusError
	if errors.As(err, &se) {
		code = se.code
		if se.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(se.retryAfter))
		}
	}
	var oe *core.OptionError
	var ce *machine.ConfigError
	if errors.As(err, &oe) || errors.As(err, &ce) {
		code = http.StatusBadRequest
	}
	s.writeJSON(w, code, ErrorResponse{Error: err.Error()})
}

// maxBodyBytes bounds request bodies: generous for DSL text, small
// enough that one bad client cannot exhaust the daemon's memory.
const maxBodyBytes = 8 << 20

// decode reads a JSON request body strictly and size-bounded.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return &statusError{code: http.StatusRequestEntityTooLarge, err: fmt.Errorf("request body over %d bytes", tooBig.Limit)}
		}
		return badRequest(fmt.Errorf("bad request body: %w", err))
	}
	return nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	e, cached, err := s.lookup(req.Program, runKey(req.Analyze))
	if err != nil {
		s.writeError(w, err)
		return
	}
	a, err := e.wait()
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	resp := &AnalyzeResponse{
		ID:               s.results.nextID(),
		Scenario:         e.scenario,
		Cached:           cached,
		DeadlockFree:     a.DeadlockFree,
		Strict:           a.Strict,
		MinQueuesDynamic: a.MinQueuesDynamic,
		MinQueuesStatic:  a.MinQueuesStatic,
	}
	if a.DeadlockFree {
		for _, msg := range a.Program.Messages() {
			resp.Labels = append(resp.Labels, LabelInfo{
				Message: msg.Name,
				Label:   a.Labeling.ByMessage[msg.ID].String(),
				Rank:    a.Labeling.Dense[msg.ID],
			})
		}
	}
	s.store(w, resp.ID, resp)
}

// slotGuard releases one limiter slot exactly once. It lives on the
// handler's stack (a deferred method on a local, not a closure) so the
// cache-hit run path stays within its allocation gate.
type slotGuard struct {
	l        *sweep.Limiter
	released bool
}

func (g *slotGuard) release() {
	if !g.released {
		g.released = true
		g.l.Release()
	}
}

// executeRun is the submit-to-result core of POST /v1/run, shared with
// BenchmarkServeCacheHit: everything except HTTP/JSON framing and
// result retention. On the steady-state hit path it performs one
// source hash, one cache probe, a limiter acquire, and a pooled
// machine.Run — nothing else.
func (s *Server) executeRun(ctx context.Context, req *RunRequest, resp *RunResponse) error {
	kind := core.DynamicCompatible
	if req.Policy != "" {
		var err error
		kind, err = core.ParsePolicy(req.Policy)
		if err != nil {
			return badRequest(err)
		}
	}
	if req.Workers < 0 {
		return badRequest(fmt.Errorf("negative workers %d (0 = single-threaded)", req.Workers))
	}
	plan, err := fault.ParseSpec(req.Faults)
	if err != nil {
		return badRequest(err)
	}
	var lplan *linkmodel.Plan
	if req.LinkModel != "" {
		lplan, err = linkmodel.ParseSpec(req.LinkModel)
		if err != nil {
			return badRequest(err)
		}
	}
	e, cached, err := s.lookup(req.Program, runKey(req.Analyze))
	if err != nil {
		return err
	}
	a, err := e.wait()
	if err != nil {
		return badRequest(err)
	}
	// Admission replaces a bare limiter Acquire: a bounded pool of
	// waiters, then load shedding with 429 + Retry-After (see
	// admission.go). On success we hold one slot.
	if err := s.adm.admit(ctx); err != nil {
		return err
	}
	// The release is defer-guarded: core.Execute re-raises panics from
	// buggy policies to its caller, and before this guard a panic —
	// swallowed by net/http's handler recovery — leaked the slot
	// permanently. The guard releases exactly once whether this
	// function returns or unwinds.
	guard := slotGuard{l: s.limiter}
	defer guard.release()
	if h := testHookAcquired; h != nil {
		h()
	}
	// Intra-run sharding against the slot acquired above: each extra
	// shard must win its own -max-concurrency slot, so a burst of
	// sharded runs degrades shard counts, never the budget or the
	// response bytes; see sweep.Limiter.ShardBudget.
	workers, releaseShards := s.limiter.ShardBudget(req.Workers)
	defer releaseShards()
	res, err := core.Execute(a, core.ExecOptions{
		Policy:        kind,
		QueuesPerLink: req.Queues,
		Capacity:      req.Capacity,
		Seed:          req.Seed,
		MaxCycles:     req.MaxCycles,
		Force:         req.Force,
		Workers:       workers,
		Faults:        plan,
		LinkModel:     lplan,
		// A dropped client cancels its simulation between cycles
		// instead of burning the slot to completion.
		Context: ctx,
	})
	guard.release()
	if err != nil {
		return err
	}
	resp.Scenario = e.scenario
	resp.Cached = cached
	resp.Outcome = res.Outcome()
	resp.Cycles = res.Cycles
	resp.QueuesUsed = a.ResolveQueues(kind, req.Queues)
	resp.MinQueues = a.MinQueues(kind)
	resp.WordsMoved = res.Stats.WordsMoved
	resp.Blocked = nil
	if res.Deadlocked {
		desc := machine.DescribeBlocked(a.Program, res.Blocked)
		resp.Blocked = strings.Split(strings.TrimRight(desc, "\n"), "\n")
	}
	resp.Faults = res.Faults
	resp.GatedOps = res.Stats.GatedOps
	// Echo the model in canonical form (ParseSpec round-trips it); the
	// engine Result itself never carries link timing, so the wire echo
	// is the client's confirmation of what was simulated.
	resp.LinkModel = ""
	if lplan != nil {
		resp.LinkModel = lplan.String()
	}
	return nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	t := tenantFrom(r.Context())
	maxCycles, err := t.cycleBudget(req.MaxCycles)
	if err != nil {
		s.writeError(w, err)
		return
	}
	req.MaxCycles = maxCycles
	if err := t.beginRun(); err != nil {
		s.writeError(w, err)
		return
	}
	defer t.endRun()
	var resp RunResponse
	if err := s.executeRun(r.Context(), &req, &resp); err != nil {
		s.writeError(w, err)
		return
	}
	resp.ID = s.results.nextID()
	s.store(w, resp.ID, &resp)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	stream, err := streamParam(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if req.Workers < 0 {
		s.writeError(w, badRequest(fmt.Errorf("negative workers %d (0 = one per CPU)", req.Workers)))
		return
	}
	if req.RunWorkers < 0 {
		s.writeError(w, badRequest(fmt.Errorf("negative run_workers %d (0 = single-threaded)", req.RunWorkers)))
		return
	}
	axes := sweep.Axes{
		Queues:     req.Queues,
		Capacities: req.Capacities,
		Lookaheads: req.Lookaheads,
		LinkModels: req.LinkModels,
		Seed:       req.Seed,
	}
	for _, name := range req.Policies {
		kind, err := core.ParsePolicy(name)
		if err != nil {
			s.writeError(w, badRequest(err))
			return
		}
		axes.Policies = append(axes.Policies, kind)
	}
	// Validate the grid before any admission or streaming commitment:
	// a streamed response commits its 200 with the headers, so every
	// refusal must happen here.
	if err := axes.Validate(); err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	t := tenantFrom(r.Context())
	maxCycles, err := t.cycleBudget(req.MaxCycles)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if err := t.checkGrid(axes.Size(1)); err != nil {
		s.writeError(w, err)
		return
	}
	if err := t.beginRun(); err != nil {
		s.writeError(w, err)
		return
	}
	defer t.endRun()
	// Request-level admission: the sweep engine acquires the limiter
	// per grid point, so the request itself only probes — an
	// overloaded daemon sheds the whole sweep with 429 up front.
	if err := s.adm.probe(r.Context()); err != nil {
		s.writeError(w, err)
		return
	}
	job, err := s.prepareSweep(&req, axes, maxCycles)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if stream {
		s.streamSweep(w, r, job)
		return
	}
	rep, err := sweep.Run(r.Context(), job.cases, job.axes, job.opts)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp := &SweepResponse{ID: s.results.nextID(), Scenario: job.scenario, Cached: job.cached, Table: rep.Table()}
	for _, o := range rep.Outcomes {
		resp.Outcomes = append(resp.Outcomes, wireOutcome(o))
	}
	s.store(w, resp.ID, resp)
}

// wireOutcome converts one engine outcome to its wire form. The
// buffered and streaming sweep paths share it, which is what makes a
// streamed row byte-equivalent to the buffered list's element.
func wireOutcome(o sweep.Outcome) SweepOutcome {
	return SweepOutcome{
		Case:      o.CaseName,
		Policy:    o.Policy.String(),
		Queues:    o.QueuesUsed,
		Capacity:  o.Capacity,
		Lookahead: o.Lookahead,
		LinkModel: o.LinkModel,
		Result:    o.Result,
		Cycles:    o.Cycles,
		Error:     o.Err,
	}
}

// sweepJob is a validated, cache-resolved sweep ready to run, shared
// by the buffered and streaming paths.
type sweepJob struct {
	cases    []sweep.Case
	axes     sweep.Axes
	opts     sweep.Options
	scenario string
	cached   bool // every lookahead's analysis came from the cache
}

// prepareSweep resolves the request's per-lookahead analyses through
// the scenario cache — the same content-addressed path /v1/run and
// /v1/analyze use — and packages the sweep so the engine's own
// analyze step never runs: repeated sweeps of one program skip
// parsing, Analyze, and machine compilation entirely.
func (s *Server) prepareSweep(req *SweepRequest, axes sweep.Axes, maxCycles int) (*sweepJob, error) {
	type resolved struct {
		a   *core.Analysis
		err error
	}
	las := axes.WithDefaults().Lookaheads
	res := make(map[int]resolved, len(las))
	scenario := ""
	cachedAll := true
	var prog *model.Program
	var topo topology.Topology
	for _, la := range las {
		if _, seen := res[la]; seen {
			continue
		}
		e, hit, err := s.lookup(req.Program, sweepKey(la))
		if err != nil {
			// Unparseable program: a request-level 400, exactly as the
			// run path refuses it.
			return nil, err
		}
		a, aerr := e.wait()
		res[la] = resolved{a: a, err: aerr}
		if !hit {
			cachedAll = false
		}
		scenario = e.scenario
		if a != nil && prog == nil {
			prog, topo = a.Program, a.Topology
		}
	}
	if prog == nil {
		// Every lookahead's analysis failed; parse once so the grid can
		// still report the per-point errors the engine contract
		// promises.
		f, err := dsl.Parse(req.Program)
		if err != nil {
			return nil, badRequest(err)
		}
		prog, topo = f.Program, f.Topology
	}
	// Faults are validated against the program before any streaming
	// commitment: an ill-fitting plan refuses the whole sweep with 400
	// instead of surfacing as an identical error on every grid point.
	plan, err := fault.ParseSpec(req.Faults)
	if err != nil {
		return nil, badRequest(err)
	}
	if err := plan.Validate(prog.NumCells(), len(topo.Links())); err != nil {
		return nil, badRequest(err)
	}
	return &sweepJob{
		cases: []sweep.Case{{Name: "program", Program: prog, Topology: topo}},
		axes:  axes,
		opts: sweep.Options{
			Workers:    req.Workers,
			RunWorkers: req.RunWorkers,
			MaxCycles:  maxCycles,
			Faults:     plan,
			Limiter:    s.limiter,
			Analysis: func(_, lookahead int) (*core.Analysis, error) {
				r := res[lookahead]
				return r.a, r.err
			},
		},
		scenario: scenario,
		cached:   cachedAll,
	}, nil
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, ok := s.results.get(id)
	if !ok {
		s.writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("no result %q (retention is bounded; see /v1/stats)", id)})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil {
		s.logf("result %s: replay write: %v", id, err)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// statsSnapshot assembles the live counters.
func (s *Server) statsSnapshot() StatsResponse {
	return StatsResponse{
		CacheHits:      s.cache.hits.Load(),
		CacheMisses:    s.cache.misses.Load(),
		CacheEvictions: s.cache.evictions.Load(),
		CacheEntries:   s.cache.len(),
		// The limiter sees every simulation — single runs and sweep
		// grid points alike — so its occupancy is the saturation
		// signal, not a per-endpoint counter.
		InFlightRuns:   int64(s.limiter.InUse()),
		MaxConcurrency: s.limiter.Cap(),
		ShedRequests:   s.adm.shed.Load(),
		QueueDepth:     s.adm.waiting.Load(),
		QueueWait:      s.adm.waitCap,
		Tenants:        s.tenants.count(),
		TenantRejects:  s.tenants.rejectCount(),
		AuthFailures:   s.tenants.authFailureCount(),
		Results:        s.results.len(),
		Requests:       s.requests.Load(),
	}
}

// store marshals a response document, retains it under id, and writes
// it as the HTTP reply. The retained bytes include the framing
// newline, so GET /v1/results/{id} replays the response exactly.
func (s *Server) store(w http.ResponseWriter, id string, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	body = append(body, '\n')
	s.results.save(id, body)
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(body); err != nil {
		s.logf("result %s: response write: %v", id, err)
	}
}

// expvar publication: one process-wide "sysdl_serve" Func that reads
// the most recently created Server's counters, registered exactly
// once so tests creating many Servers never trip expvar's
// duplicate-name panic.
var (
	expvarOnce    atomic.Bool
	expvarCurrent atomic.Pointer[Server]
)

func publishExpvar(s *Server) {
	expvarCurrent.Store(s)
	if expvarOnce.CompareAndSwap(false, true) {
		expvar.Publish("sysdl_serve", expvar.Func(func() any {
			if cur := expvarCurrent.Load(); cur != nil {
				return cur.statsSnapshot()
			}
			return nil
		}))
	}
}
