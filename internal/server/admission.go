package server

// Admission control for the serving layer: a saturated daemon must
// shed load, not queue it. The shared sweep.Limiter already bounds how
// many simulations execute; this file bounds how many requests may
// *wait* for one. Beyond that small pool, requests are refused with
// 429 Too Many Requests and a Retry-After estimate derived from
// limiter occupancy, so clients back off instead of piling onto an
// unbounded Acquire queue that grows goroutines and tail latency
// without limit.

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"

	"systolic/internal/sweep"
)

// testHookAcquired, when non-nil, runs on the /v1/run path after a
// limiter slot has been acquired and before the simulation executes.
// Tests use it to hold slots open (saturation coverage) and to inject
// panics (slot-leak regression coverage).
var testHookAcquired func()

// admission gates limiter acquisition behind a bounded wait pool.
type admission struct {
	limiter *sweep.Limiter
	// waitCap bounds concurrent waiters; 0 sheds immediately whenever
	// no slot is free.
	waitCap int

	waiting atomic.Int64 // requests currently waiting for a slot
	shed    atomic.Int64 // requests refused with 429
}

// newAdmission builds the gate. queueWait follows the Options
// contract: 0 means the default pool of 2× the limiter's capacity,
// -1 means no waiting at all, n > 0 means n waiters.
func newAdmission(l *sweep.Limiter, queueWait int) *admission {
	wc := queueWait
	switch {
	case wc == 0:
		wc = 2 * l.Cap()
	case wc < 0:
		wc = 0
	}
	return &admission{limiter: l, waitCap: wc}
}

// admit acquires one limiter slot for the caller. The fast path is a
// non-blocking try; otherwise the caller joins the bounded wait pool
// or — if the pool is full — is shed with a 429 statusError carrying
// a Retry-After estimate. A cancelled ctx while waiting maps to 503.
// On nil error the caller holds one slot and must Release it.
func (a *admission) admit(ctx context.Context) error {
	if a.limiter.TryAcquireN(1) == 1 {
		return nil
	}
	if a.waiting.Add(1) > int64(a.waitCap) {
		a.waiting.Add(-1)
		a.shed.Add(1)
		return a.overloaded()
	}
	defer a.waiting.Add(-1)
	if err := a.limiter.Acquire(ctx); err != nil {
		return &statusError{code: http.StatusServiceUnavailable, err: fmt.Errorf("cancelled while waiting for a run slot: %w", err)}
	}
	return nil
}

// probe is request-level admission for endpoints whose engine acquires
// the limiter per unit of work (the sweep engine acquires per grid
// point): it admits like admit, then immediately returns the slot, so
// an overloaded daemon sheds whole sweeps up front while an admitted
// sweep's internal acquisition cannot deadlock against the slot the
// request itself would otherwise pin.
func (a *admission) probe(ctx context.Context) error {
	if err := a.admit(ctx); err != nil {
		return err
	}
	a.limiter.Release()
	return nil
}

// overloaded builds the 429 shed error.
func (a *admission) overloaded() error {
	retry := a.retryAfter()
	return &statusError{
		code:       http.StatusTooManyRequests,
		retryAfter: retry,
		err: fmt.Errorf("server saturated: %d/%d runs in flight, %d waiting; retry in %ds",
			a.limiter.InUse(), a.limiter.Cap(), a.waiting.Load(), retry),
	}
}

// retryAfter estimates whole seconds until a slot plausibly frees:
// the backlog (running + waiting) divided by capacity, floored at 1 —
// rough, monotone in load, and cheap. Every denominator and counter is
// guarded: an unbounded (nil) limiter has capacity 0, a -max-concurrency
// of 1 with an empty wait pool can shed while the last run releases
// (occupancy 0), and the waiting counter is read outside the shed
// path's own increment — none of those may ever produce a Retry-After
// of 0, which RFC 9110 clients read as "retry immediately" and turn
// into a busy loop against a saturated daemon.
func (a *admission) retryAfter() int {
	c := a.limiter.Cap()
	if c <= 0 {
		// Unset/unbounded capacity: no occupancy math is meaningful,
		// but the shed still needs a positive hint.
		return 1
	}
	backlog := a.limiter.InUse()
	if w := int(a.waiting.Load()); w > 0 {
		backlog += w
	}
	retry := (backlog + c - 1) / c
	if retry < 1 {
		retry = 1
	}
	return retry
}
