package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// postJSONRaw posts without a testing.T so worker goroutines can
// report failures through their own channel instead of calling Fatalf
// off the test goroutine.
func postJSONRaw(url string, body any) (*http.Response, []byte) {
	b, err := json.Marshal(body)
	if err != nil {
		return nil, nil
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return nil, nil
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func errAt(client, i int, msg string) error {
	return fmt.Errorf("client %d request %d: %s", client, i, msg)
}

// TestConcurrentClientsOneCachedScenario is the end-to-end acceptance
// test for the serving layer: N concurrent clients hammer one
// scenario over real HTTP. Exactly one compile must happen
// (singleflight), every request must complete identically, and the
// stats counters must add up. Run it under -race: the cache, the
// limiter, the pooled machine, and the result store are all exercised
// concurrently.
func TestConcurrentClientsOneCachedScenario(t *testing.T) {
	s := New(Options{MaxConcurrency: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		clients   = 8
		perClient = 25
	)
	total := clients * perClient

	var wg sync.WaitGroup
	outcomes := make([][]string, clients)
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				resp, body := postJSONRaw(ts.URL+"/v1/run", RunRequest{Program: relayDSL})
				if resp == nil {
					errs[c] = errAt(c, i, "transport failure")
					return
				}
				if resp.StatusCode != 200 {
					errs[c] = errAt(c, i, string(body))
					return
				}
				var rr RunResponse
				if err := json.Unmarshal(body, &rr); err != nil {
					errs[c] = err
					return
				}
				outcomes[c] = append(outcomes[c], rr.Outcome)
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", c, err)
		}
	}
	for c := range outcomes {
		if len(outcomes[c]) != perClient {
			t.Fatalf("client %d finished %d/%d requests", c, len(outcomes[c]), perClient)
		}
		for i, o := range outcomes[c] {
			if o != "completed" {
				t.Fatalf("client %d request %d: outcome %q", c, i, o)
			}
		}
	}

	stats := s.statsSnapshot()
	if stats.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want exactly 1 (singleflight)", stats.CacheMisses)
	}
	if stats.CacheHits != int64(total-1) {
		t.Fatalf("CacheHits = %d, want %d", stats.CacheHits, total-1)
	}
	if stats.CacheEntries != 1 {
		t.Fatalf("CacheEntries = %d, want 1", stats.CacheEntries)
	}
	if stats.InFlightRuns != 0 {
		t.Fatalf("InFlightRuns = %d after drain", stats.InFlightRuns)
	}
	if stats.Requests < int64(total) {
		t.Fatalf("Requests = %d, want ≥ %d", stats.Requests, total)
	}
}
