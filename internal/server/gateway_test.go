package server

// Gateway-layer coverage: admission control and load shedding, the
// panic slot-leak regression, per-tenant quotas, and streaming sweep
// responses.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"systolic/internal/sweep"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// postJSONAuth posts with an API key in the Authorization header.
func postJSONAuth(t *testing.T, url, key string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Authorization", "Bearer "+key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestAdmissionControl saturates a -max-concurrency 1 daemon with one
// slow run, fills the single-waiter pool with a second, and asserts
// the overflow — a run and a sweep — is shed with 429 + Retry-After
// while the shed/queue-depth counters advance. Releasing the slow run
// drains the pool and every admitted request completes.
func TestAdmissionControl(t *testing.T) {
	hold := make(chan struct{})
	testHookAcquired = func() { <-hold }
	t.Cleanup(func() { testHookAcquired = nil })

	s, ts := newTestServer(t, Options{MaxConcurrency: 1, QueueWait: 1})

	type result struct {
		code int
		body string
	}
	results := make(chan result, 2)
	post := func() {
		resp, body := postJSONRaw(ts.URL+"/v1/run", RunRequest{Program: relayDSL})
		if resp == nil {
			results <- result{0, "transport failure"}
			return
		}
		results <- result{resp.StatusCode, string(body)}
	}
	go post() // acquires the only slot, parks in the hook
	waitFor(t, "the slot holder", func() bool { return s.limiter.InUse() == 1 })
	go post() // joins the bounded wait pool
	waitFor(t, "a waiter in the pool", func() bool { return s.adm.waiting.Load() == 1 })

	// Pool full: a run is shed with 429 and a Retry-After estimate.
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow run: status %d, want 429: %s", resp.StatusCode, body)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("overflow run: Retry-After %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}
	if !bytes.Contains(body, []byte("saturated")) {
		t.Fatalf("shed error is not saturation-scoped: %s", body)
	}

	// A sweep is shed at the same gate (request-level probe).
	resp, body = postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Program: relayDSL, Lookaheads: []int{0}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow sweep: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("overflow sweep: no Retry-After header")
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.ShedRequests != 2 {
		t.Fatalf("ShedRequests = %d, want 2", stats.ShedRequests)
	}
	if stats.QueueDepth != 1 {
		t.Fatalf("QueueDepth = %d, want 1 (one parked waiter)", stats.QueueDepth)
	}
	if stats.QueueWait != 1 {
		t.Fatalf("QueueWait = %d, want 1", stats.QueueWait)
	}

	close(hold)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("admitted request %d: status %d: %s", i, r.code, r.body)
		}
	}
	waitFor(t, "the limiter to drain", func() bool { return s.limiter.InUse() == 0 })
	if n := s.adm.waiting.Load(); n != 0 {
		t.Fatalf("wait pool did not drain: %d", n)
	}
}

// TestQueueWaitDisabled: QueueWait -1 sheds the moment no slot is
// free, with no waiting pool at all.
func TestQueueWaitDisabled(t *testing.T) {
	l := sweep.NewLimiter(1)
	a := newAdmission(l, -1)
	if a.waitCap != 0 {
		t.Fatalf("waitCap = %d, want 0", a.waitCap)
	}
	if err := a.admit(context.Background()); err != nil {
		t.Fatalf("admit with a free slot: %v", err)
	}
	err := a.admit(context.Background())
	se, ok := err.(*statusError)
	if !ok || se.code != http.StatusTooManyRequests {
		t.Fatalf("admit with no free slot: %v, want a 429 statusError", err)
	}
	if se.retryAfter < 1 {
		t.Fatalf("retryAfter = %d, want ≥ 1", se.retryAfter)
	}
	l.Release()
	if got := a.shed.Load(); got != 1 {
		t.Fatalf("shed = %d, want 1", got)
	}
}

// TestPanicDoesNotLeakLimiterSlot is the regression test for the
// non-deferred Release: a panic inside the simulation (re-raised by
// core.Execute, swallowed by net/http's handler recovery) must not
// leak a -max-concurrency slot. Before the defer-once guard, two
// panics here exhausted MaxConcurrency=2 permanently.
func TestPanicDoesNotLeakLimiterSlot(t *testing.T) {
	testHookAcquired = func() { panic("injected policy bug") }
	t.Cleanup(func() { testHookAcquired = nil })

	s, ts := newTestServer(t, Options{MaxConcurrency: 2, QueueWait: -1})
	ts.Config.ErrorLog = log.New(io.Discard, "", 0) // the injected panics are expected noise

	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/v1/run", "application/json",
			bytes.NewReader(mustJSON(t, RunRequest{Program: relayDSL})))
		// net/http aborts the connection on a handler panic; either a
		// transport error or a closed body is acceptable here.
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	if inUse := s.limiter.InUse(); inUse != 0 {
		t.Fatalf("panicking handlers leaked %d limiter slots", inUse)
	}
	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.InFlightRuns != 0 {
		t.Fatalf("InFlightRuns = %d after panics, want 0", stats.InFlightRuns)
	}

	// With the slots intact, a healthy run is admitted immediately even
	// though QueueWait is -1.
	testHookAcquired = nil
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after panics: status %d: %s", resp.StatusCode, body)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// tenantsFixture is a registry with one rate-limited tenant and one
// quota-bounded tenant.
const tenantsFixture = `{
  "tiers": {
    "drip":  {"requestsPerSec": 0.001, "burst": 1},
    "small": {"maxConcurrent": 1, "maxGridPoints": 4, "maxCycles": 100000}
  },
  "tenants": {
    "key-alice": {"name": "alice", "tier": "drip"},
    "key-bob":   {"name": "bob", "tier": "small"}
  }
}`

func parseFixture(t *testing.T) *Tenants {
	t.Helper()
	ts, err := ParseTenants([]byte(tenantsFixture))
	if err != nil {
		t.Fatalf("ParseTenants: %v", err)
	}
	return ts
}

// TestTenantAuthAndRateLimit: with a registry configured, compute
// endpoints demand a key, unknown keys are 401, and a tenant over its
// token bucket gets a tenant-scoped 429 with Retry-After.
func TestTenantAuthAndRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{Tenants: parseFixture(t)})

	resp, _ := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless request: status %d, want 401", resp.StatusCode)
	}
	resp, _ = postJSONAuth(t, ts.URL+"/v1/run", "key-unknown", RunRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown key: status %d, want 401", resp.StatusCode)
	}

	resp, body := postJSONAuth(t, ts.URL+"/v1/run", "key-alice", RunRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated run: status %d: %s", resp.StatusCode, body)
	}
	// Burst 1 at 0.001 req/s: the bucket is empty for the next ~1000s.
	resp, body = postJSONAuth(t, ts.URL+"/v1/run", "key-alice", RunRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited run: status %d, want 429: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("alice")) {
		t.Fatalf("rate-limit error is not tenant-scoped: %s", body)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("rate limit Retry-After %q, want an integer ≥ 1", resp.Header.Get("Retry-After"))
	}

	// The X-API-Key spelling authenticates too.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/run",
		bytes.NewReader(mustJSON(t, RunRequest{Program: relayDSL})))
	req.Header.Set("X-API-Key", "key-bob")
	xresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	xresp.Body.Close()
	if xresp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key run: status %d", xresp.StatusCode)
	}

	var stats StatsResponse
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if stats.Tenants != 2 {
		t.Fatalf("Tenants = %d, want 2", stats.Tenants)
	}
	if stats.AuthFailures != 2 {
		t.Fatalf("AuthFailures = %d, want 2", stats.AuthFailures)
	}
	if stats.TenantRejects != 1 {
		t.Fatalf("TenantRejects = %d, want 1", stats.TenantRejects)
	}
}

// TestTenantQuotas covers the tier's grid, cycle, and concurrency
// bounds end to end for tenant bob (maxConcurrent 1, maxGridPoints 4,
// maxCycles 100000).
func TestTenantQuotas(t *testing.T) {
	reg := parseFixture(t)
	s, ts := newTestServer(t, Options{Tenants: reg, MaxConcurrency: 4})

	// Grid over the tier bound: 2 policies × 2 queues × 2 capacities.
	resp, body := postJSONAuth(t, ts.URL+"/v1/sweep", "key-bob", SweepRequest{
		Program:  relayDSL,
		Policies: []string{"fcfs", "compatible"},
		Queues:   []int{1, 2}, Capacities: []int{1, 2}, Lookaheads: []int{0},
	})
	if resp.StatusCode != http.StatusTooManyRequests || !bytes.Contains(body, []byte("bob")) {
		t.Fatalf("oversized grid: status %d body %s, want tenant-scoped 429", resp.StatusCode, body)
	}

	// Cycle budget over the tier bound.
	resp, body = postJSONAuth(t, ts.URL+"/v1/run", "key-bob", RunRequest{Program: relayDSL, MaxCycles: 1 << 30})
	if resp.StatusCode != http.StatusTooManyRequests || !bytes.Contains(body, []byte("bob")) {
		t.Fatalf("oversized cycle budget: status %d body %s, want tenant-scoped 429", resp.StatusCode, body)
	}

	// Concurrency: hold bob's single slot, then a second run is 429.
	hold := make(chan struct{})
	testHookAcquired = func() { <-hold }
	t.Cleanup(func() { testHookAcquired = nil })
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest("POST", ts.URL+"/v1/run",
			bytes.NewReader(mustJSON(t, RunRequest{Program: relayDSL})))
		req.Header.Set("X-API-Key", "key-bob")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	waitFor(t, "bob's first run to hold its slot", func() bool { return s.limiter.InUse() == 1 })
	resp, body = postJSONAuth(t, ts.URL+"/v1/run", "key-bob", RunRequest{Program: relayDSL})
	if resp.StatusCode != http.StatusTooManyRequests || !bytes.Contains(body, []byte("concurrency")) {
		t.Fatalf("concurrent run over quota: status %d body %s, want 429", resp.StatusCode, body)
	}
	close(hold)
	<-done

	if rejects := reg.rejectCount(); rejects != 3 {
		t.Fatalf("TenantRejects = %d, want 3", rejects)
	}
}

// TestTenantCycleClamp: a tier with MaxCycles clamps an unset request
// budget rather than letting "use the default" exceed the tier.
func TestTenantCycleClamp(t *testing.T) {
	reg := parseFixture(t)
	bob := reg.byKey["key-bob"]
	got, err := bob.cycleBudget(0)
	if err != nil || got != 100000 {
		t.Fatalf("cycleBudget(0) = %d, %v; want the tier bound 100000", got, err)
	}
	got, err = bob.cycleBudget(5000)
	if err != nil || got != 5000 {
		t.Fatalf("cycleBudget(5000) = %d, %v; want 5000", got, err)
	}
	if _, err := bob.cycleBudget(100001); err == nil {
		t.Fatal("cycleBudget over the tier bound was allowed")
	}
	var anon *tenant
	if got, err := anon.cycleBudget(0); err != nil || got != 0 {
		t.Fatalf("anonymous cycleBudget(0) = %d, %v; want passthrough", got, err)
	}
}

// TestParseTenantsErrors pins the registry's validation: determinate,
// key-redacting errors.
func TestParseTenantsErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"empty", `{}`, "no tenants"},
		{"no name", `{"tenants": {"key-abcdef": {}}}`, "key-" /* redacted */},
		{"unknown tier", `{"tenants": {"k": {"name": "x", "tier": "gold"}}}`, "unknown tier"},
		{"negative limit", `{"tiers": {"t": {"maxCycles": -1}}, "tenants": {"k": {"name": "x", "tier": "t"}}}`, "negative"},
		{"unknown field", `{"tenant": {}}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTenants([]byte(tc.json))
			if err == nil || !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("ParseTenants = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if _, err := ParseTenants([]byte(`{"tenants": {"key-abcdef": {"name": ""}}}`)); err == nil ||
		bytes.Contains([]byte(err.Error()), []byte("abcdef")) {
		t.Fatalf("error %v leaks the full API key", err)
	}
}

// TestSweepStreaming is the streaming acceptance test: rows arrive
// incrementally (the first row is readable while a later grid point is
// still held mid-flight), in enumeration order, byte-equivalent to the
// buffered response's outcome list, with a terminal summary row whose
// ID replays the buffered document.
func TestSweepStreaming(t *testing.T) {
	gate := make(chan struct{})
	testHookStreamOutcome = func(i int, o sweep.Outcome) {
		if i == 1 {
			<-gate
		}
	}
	t.Cleanup(func() { testHookStreamOutcome = nil })

	_, ts := newTestServer(t, Options{MaxConcurrency: 2})
	sreq := SweepRequest{
		Program:  relayDSL,
		Policies: []string{"fcfs"},
		Queues:   []int{1, 2, 3}, Capacities: []int{1}, Lookaheads: []int{0},
		Workers: 1, // sequential grid: point 1 cannot start before point 0 is delivered
	}
	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(mustJSON(t, sreq)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q, want application/x-ndjson", ct)
	}

	br := bufio.NewReader(resp.Body)
	type lineResult struct {
		line []byte
		err  error
	}
	readLine := func() chan lineResult {
		ch := make(chan lineResult, 1)
		go func() {
			l, e := br.ReadBytes('\n')
			ch <- lineResult{l, e}
		}()
		return ch
	}

	// The first row must arrive while grid point 1 is parked in the
	// hook — i.e. before the grid finishes. A buffered implementation
	// hangs here.
	var first []byte
	select {
	case r := <-readLine():
		if r.err != nil {
			t.Fatalf("first row: %v", r.err)
		}
		first = r.line
	case <-time.After(30 * time.Second):
		t.Fatal("no streamed row arrived before the grid finished")
	}
	var row0 SweepOutcome
	if err := json.Unmarshal(first, &row0); err != nil {
		t.Fatalf("first row is not a SweepOutcome: %v\n%s", err, first)
	}
	if row0.Queues != 1 {
		t.Fatalf("first row is grid point %+v, want the queues=1 point (enumeration order)", row0)
	}
	close(gate)

	var rows [][]byte
	rows = append(rows, bytes.TrimRight(first, "\n"))
	var summaryLine []byte
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			summaryLine = bytes.TrimRight(line, "\n")
			rows = append(rows, summaryLine)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("reading stream: %v", err)
		}
	}
	rows = rows[:len(rows)-1] // the last line is the summary, not an outcome row
	if len(rows) != 3 {
		t.Fatalf("streamed %d outcome rows, want 3", len(rows))
	}
	var sum SweepStreamSummary
	if err := json.Unmarshal(summaryLine, &sum); err != nil {
		t.Fatalf("summary row: %v\n%s", err, summaryLine)
	}
	if !sum.Done || sum.Rows != 3 || sum.ID == "" || sum.Table == "" {
		t.Fatalf("summary row incomplete: %+v", sum)
	}

	// The retained document replays the sweep in buffered form, and its
	// outcome list is byte-equivalent to the concatenated rows.
	var doc bytes.Buffer
	dresp, err := http.Get(ts.URL + "/v1/results/" + sum.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	doc.ReadFrom(dresp.Body)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("results replay status %d", dresp.StatusCode)
	}
	var raw struct {
		Outcomes []json.RawMessage `json:"outcomes"`
	}
	if err := json.Unmarshal(doc.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if len(raw.Outcomes) != len(rows) {
		t.Fatalf("buffered document has %d outcomes, streamed %d rows", len(raw.Outcomes), len(rows))
	}
	for i := range rows {
		if !bytes.Equal(rows[i], []byte(raw.Outcomes[i])) {
			t.Fatalf("row %d diverges from the buffered outcome:\n%s\nvs\n%s", i, rows[i], raw.Outcomes[i])
		}
	}

	// A second, buffered sweep of the same request is served from the
	// scenario cache.
	bresp, bbody := postJSON(t, ts.URL+"/v1/sweep", sreq)
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("buffered repeat: status %d: %s", bresp.StatusCode, bbody)
	}
	var sr SweepResponse
	if err := json.Unmarshal(bbody, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Cached {
		t.Fatal("repeated sweep did not hit the scenario cache")
	}
	if sr.Scenario != sum.Scenario {
		t.Fatal("streamed and buffered scenario hashes differ")
	}
}

// TestSweepStreamClientGoneReleasesEverything: a client that
// disappears mid-stream must unwind the engine — no limiter slots
// held, no workers parked on the dead consumer.
func TestSweepStreamClientGoneReleasesEverything(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	reached := make(chan struct{})
	testHookStreamOutcome = func(i int, o sweep.Outcome) {
		if i == 1 {
			once.Do(func() { close(reached) })
			<-gate
		}
	}
	t.Cleanup(func() { testHookStreamOutcome = nil })

	s, ts := newTestServer(t, Options{MaxConcurrency: 2})
	sreq := SweepRequest{
		Program:  relayDSL,
		Policies: []string{"fcfs"},
		Queues:   []int{1, 2, 3, 4}, Capacities: []int{1}, Lookaheads: []int{0},
		Workers: 1,
	}
	resp, err := http.Post(ts.URL+"/v1/sweep?stream=1", "application/json", bytes.NewReader(mustJSON(t, sreq)))
	if err != nil {
		t.Fatal(err)
	}
	<-reached
	resp.Body.Close() // the client vanishes mid-grid
	close(gate)

	waitFor(t, "the limiter to drain after client disconnect", func() bool {
		return s.limiter.InUse() == 0
	})

	// The daemon still serves: a fresh buffered sweep completes.
	r2, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Program: relayDSL, Policies: []string{"fcfs"}, Queues: []int{1}, Capacities: []int{1}, Lookaheads: []int{0}})
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("sweep after disconnect: status %d: %s", r2.StatusCode, body)
	}
}

// TestSweepRequestValidation: the sweep endpoint refuses what the run
// endpoint refuses — negative worker counts — plus bad stream values,
// before any work or response bytes are committed.
func TestSweepRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		path string
		req  SweepRequest
	}{
		{"negative workers", "/v1/sweep", SweepRequest{Program: relayDSL, Workers: -1}},
		{"negative run_workers", "/v1/sweep", SweepRequest{Program: relayDSL, RunWorkers: -2}},
		{"bad stream value", "/v1/sweep?stream=yes", SweepRequest{Program: relayDSL}},
		{"negative queue axis", "/v1/sweep", SweepRequest{Program: relayDSL, Queues: []int{-1}}},
		{"zero capacity axis", "/v1/sweep", SweepRequest{Program: relayDSL, Capacities: []int{0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
		})
	}
	// run_workers is live, not just validated: a sharded sweep returns
	// the same outcomes as an unsharded one.
	base := SweepRequest{Program: relayDSL, Policies: []string{"compatible"}, Queues: []int{1}, Capacities: []int{1}, Lookaheads: []int{0}}
	_, plain := postJSON(t, ts.URL+"/v1/sweep", base)
	sharded := base
	sharded.RunWorkers = 4
	_, shardedBody := postJSON(t, ts.URL+"/v1/sweep", sharded)
	var a, b SweepResponse
	if err := json.Unmarshal(plain, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(shardedBody, &b); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a.Outcomes) != fmt.Sprintf("%+v", b.Outcomes) {
		t.Fatalf("run_workers changed sweep outcomes:\n%+v\nvs\n%+v", a.Outcomes, b.Outcomes)
	}
}
