package server

// Wire format of the /v1/* endpoints. Field names are the contract
// documented in docs/API.md; the doc-conformance test decodes the
// doc's JSON examples into these structs with unknown fields
// disallowed, so doc and code cannot drift apart silently.

// AnalyzeSpec selects compile-time analysis options. It is embedded in
// every request that parses a program: the analysis result (labels,
// queue bounds, the compiled machine) depends on it, so it is part of
// the cache key.
type AnalyzeSpec struct {
	// Lookahead classifies and labels with the §8 lookahead variant.
	Lookahead bool `json:"lookahead,omitempty"`
	// Capacity is the per-queue word capacity rule R2 assumes when
	// Lookahead is set.
	Capacity int `json:"capacity,omitempty"`
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Program is DSL source text (see docs/DSL.md).
	Program string      `json:"program"`
	Analyze AnalyzeSpec `json:"analyze,omitempty"`
}

// LabelInfo is one message's §6 label in an AnalyzeResponse.
type LabelInfo struct {
	Message string `json:"message"`
	Label   string `json:"label"` // exact rational, e.g. "3/2"
	Rank    int    `json:"rank"`  // dense 1-based integer rank
}

// AnalyzeResponse is the body returned by POST /v1/analyze.
type AnalyzeResponse struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"` // canonical content hash of (program, topology)
	Cached   bool   `json:"cached"`   // true when the compiled scenario was already resident
	// DeadlockFree is the classification under the requested options;
	// Strict is the no-lookahead classification.
	DeadlockFree     bool        `json:"deadlockFree"`
	Strict           bool        `json:"strict"`
	MinQueuesDynamic int         `json:"minQueuesDynamic"`
	MinQueuesStatic  int         `json:"minQueuesStatic"`
	Labels           []LabelInfo `json:"labels,omitempty"`
}

// RunRequest is the body of POST /v1/run.
type RunRequest struct {
	Program string      `json:"program"`
	Analyze AnalyzeSpec `json:"analyze,omitempty"`
	// Policy is compatible|static|fcfs|lifo|random|adversarial
	// (default compatible).
	Policy string `json:"policy,omitempty"`
	// Queues per link; 0 means the analysis minimum for the policy.
	Queues int `json:"queues,omitempty"`
	// Capacity per queue in words; 0 means 1.
	Capacity int `json:"capacity,omitempty"`
	// Seed feeds randomized policies.
	Seed int64 `json:"seed,omitempty"`
	// MaxCycles bounds the simulation; 0 derives a bound from program
	// size.
	MaxCycles int `json:"maxCycles,omitempty"`
	// Force runs even when Theorem 1's queue requirement is unmet.
	Force bool `json:"force,omitempty"`
	// Workers requests deterministic sharded execution for this run
	// (0 or 1 = single-threaded). The response is byte-identical for
	// every worker count; the server grants at most the concurrency
	// the shared -max-concurrency budget has free, so a saturated
	// daemon degrades the shard count, never the result.
	Workers int `json:"workers,omitempty"`
	// Faults degrades the array for this run, in the fault-spec
	// grammar the CLI's -fault flag shares, e.g.
	// "cell:1:slow=2,link:0:sever@9". Empty runs the perfect array.
	// Faults are per-run, not part of the cached analysis.
	Faults string `json:"faults,omitempty"`
	// LinkModel retimes the interconnect for this run, in the
	// link-model spec grammar the CLI's -link-model flag shares, e.g.
	// "fixed,delay=3" or "congestion,delay=2,threshold=2,max=4". Empty
	// keeps unit-latency links. A malformed spec is refused with 400.
	// Like faults, link models are per-run, not part of the cached
	// analysis.
	LinkModel string `json:"linkModel,omitempty"`
}

// RunResponse is the body returned by POST /v1/run.
type RunResponse struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	Cached   bool   `json:"cached"`
	// Outcome is "completed", "deadlocked" or "timed-out".
	Outcome    string `json:"outcome"`
	Cycles     int    `json:"cycles"`
	QueuesUsed int    `json:"queuesUsed"`
	MinQueues  int    `json:"minQueues"`
	WordsMoved int    `json:"wordsMoved"`
	// Blocked describes stuck cells when Outcome is "deadlocked", one
	// line per cell.
	Blocked []string `json:"blocked,omitempty"`
	// Faults lists the run's active faults in canonical spec form;
	// GatedOps counts operations delayed by a fault gate. Both are
	// omitted for fault-free runs.
	Faults   []string `json:"faults,omitempty"`
	GatedOps int      `json:"gatedOps,omitempty"`
	// LinkModel echoes the run's link-timing model in canonical spec
	// form; omitted for unit-latency runs.
	LinkModel string `json:"linkModel,omitempty"`
}

// SweepRequest is the body of POST /v1/sweep. Empty axes take the
// sweep engine's defaults.
type SweepRequest struct {
	Program    string   `json:"program"`
	Policies   []string `json:"policies,omitempty"`
	Queues     []int    `json:"queues,omitempty"`
	Capacities []int    `json:"capacities,omitempty"`
	Lookaheads []int    `json:"lookaheads,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	// Workers bounds the request's own fan-out; the server-wide
	// -max-concurrency limiter applies on top. Negative is refused
	// with 400 (0 = one per CPU), matching the run endpoint.
	Workers int `json:"workers,omitempty"`
	// RunWorkers shards each grid point's simulation, mirroring the
	// CLI's -run-workers flag (snake_case to match it; 0 or 1 =
	// single-threaded). Each extra shard must win its own limiter
	// slot, so saturation degrades shard counts, never results.
	RunWorkers int `json:"run_workers,omitempty"`
	MaxCycles  int `json:"maxCycles,omitempty"`
	// Faults degrades every grid point with one fault plan, in the
	// same spec grammar as the run endpoint. A plan that does not fit
	// the program is refused with 400 up front.
	Faults string `json:"faults,omitempty"`
	// LinkModels is the link-timing axis: each entry is a link-model
	// spec ("" = unit-latency links), and the grid multiplies by the
	// axis exactly like queues or capacities. Empty sweeps unit links
	// only. A malformed spec refuses the sweep with 400.
	LinkModels []string `json:"linkModels,omitempty"`
}

// SweepOutcome is one grid point of a SweepResponse.
type SweepOutcome struct {
	Case      string `json:"case"`
	Policy    string `json:"policy"`
	Queues    int    `json:"queues"`
	Capacity  int    `json:"capacity"`
	Lookahead int    `json:"lookahead"`
	// LinkModel is the grid point's link-timing spec; omitted for
	// unit-latency points.
	LinkModel string `json:"linkModel,omitempty"`
	// Result is "completed", "deadlocked", "timed-out", "rejected" or
	// "error".
	Result string `json:"result"`
	Cycles int    `json:"cycles"`
	Error  string `json:"error,omitempty"`
}

// SweepResponse is the body returned by POST /v1/sweep.
type SweepResponse struct {
	ID string `json:"id"`
	// Scenario is the canonical content hash of (program, topology);
	// Cached is true when every per-lookahead analysis the grid needed
	// was already resident in the compiled-scenario cache.
	Scenario string         `json:"scenario"`
	Cached   bool           `json:"cached"`
	Outcomes []SweepOutcome `json:"outcomes"`
	// Table is the engine's rendered fixed-width report.
	Table string `json:"table"`
}

// SweepStreamSummary is the terminal NDJSON row of POST
// /v1/sweep?stream=1, after one SweepOutcome row per grid point. Its
// ID retrieves the buffered-form document via GET /v1/results/{id}.
type SweepStreamSummary struct {
	ID string `json:"id"`
	// Done distinguishes the summary row from outcome rows.
	Done bool `json:"done"`
	// Rows is the number of outcome rows that preceded this one.
	Rows     int    `json:"rows"`
	Scenario string `json:"scenario"`
	Cached   bool   `json:"cached"`
	Table    string `json:"table"`
}

// StatsResponse is the body returned by GET /v1/stats.
type StatsResponse struct {
	// CacheHits counts requests served from the compiled-scenario
	// cache (including waits on an in-flight compile); CacheMisses
	// counts compiles triggered; CacheEvictions counts LRU evictions.
	CacheHits      int64 `json:"cacheHits"`
	CacheMisses    int64 `json:"cacheMisses"`
	CacheEvictions int64 `json:"cacheEvictions"`
	CacheEntries   int   `json:"cacheEntries"`
	// InFlightRuns is the number of simulations executing right now;
	// MaxConcurrency is the limiter bound they share.
	InFlightRuns   int64 `json:"inFlightRuns"`
	MaxConcurrency int   `json:"maxConcurrency"`
	// ShedRequests counts requests refused with 429 because the
	// bounded wait pool was full; QueueDepth is the number of requests
	// waiting for a run slot right now; QueueWait is the pool's bound.
	ShedRequests int64 `json:"shedRequests"`
	QueueDepth   int64 `json:"queueDepth"`
	QueueWait    int   `json:"queueWait"`
	// Tenants is the number of configured API keys (0 = anonymous
	// mode); TenantRejects counts per-tenant quota and rate-limit
	// refusals; AuthFailures counts missing or unknown API keys.
	Tenants       int   `json:"tenants"`
	TenantRejects int64 `json:"tenantRejects"`
	AuthFailures  int64 `json:"authFailures"`
	// Results is the number of retained result documents; Requests
	// counts every /v1/* request handled.
	Results  int   `json:"results"`
	Requests int64 `json:"requests"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}
