package server

// Streaming sweep results: POST /v1/sweep?stream=1 writes one NDJSON
// outcome row per grid point as it completes, then a terminal summary
// row, instead of buffering the whole report. Rows are emitted in
// enumeration order — exactly the order the buffered response's
// outcome list carries — by holding out-of-order completions in a
// small reorder buffer until their index is next. Each row is the
// json.Marshal bytes of the same SweepOutcome the buffered path
// emits, plus the NDJSON newline, so the concatenated rows are
// byte-equivalent to the buffered outcome list.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"systolic/internal/sweep"
)

// testHookStreamOutcome, when non-nil, observes every completed grid
// point on the streaming path before it is handed to the writer.
// Tests use it to hold the grid mid-flight and assert rows reach the
// client before the sweep finishes.
var testHookStreamOutcome func(index int, o sweep.Outcome)

// streamParam interprets the ?stream= query parameter.
func streamParam(r *http.Request) (bool, error) {
	switch v := r.URL.Query().Get("stream"); v {
	case "", "0", "false":
		return false, nil
	case "1", "true":
		return true, nil
	default:
		return false, badRequest(fmt.Errorf("bad stream parameter %q (want 1 or true)", v))
	}
}

// streamRow pairs a grid point's enumeration index with its outcome.
type streamRow struct {
	i int
	o sweep.Outcome
}

// streamSweep runs a prepared sweep with a streaming response. The
// engine runs in its own goroutine, handing completed grid points
// over a channel via Options.OnOutcome (after each point's limiter
// slot is released, so a slow client never pins the simulation
// budget); this goroutine reorders them by index and writes NDJSON.
// The buffered-form response document is still retained under the
// result ID, so GET /v1/results/{id} replays the sweep as if it had
// not been streamed.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, job *sweepJob) {
	ctx := r.Context()
	rows := make(chan streamRow)
	done := make(chan struct{})
	var rep *sweep.Report
	var runErr error
	job.opts.OnOutcome = func(i int, o sweep.Outcome) {
		if h := testHookStreamOutcome; h != nil {
			h(i, o)
		}
		select {
		case rows <- streamRow{i, o}:
		case <-ctx.Done():
			// Client gone; drop the row so the engine's workers are
			// never stuck on a dead consumer while Run unwinds.
		}
	}
	go func() {
		defer close(done)
		defer close(rows)
		rep, runErr = sweep.Run(ctx, job.cases, job.axes, job.opts)
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	pending := make(map[int]sweep.Outcome)
	next := 0
	for {
		var row streamRow
		var ok bool
		select {
		case <-ctx.Done():
			<-done
			return
		case row, ok = <-rows:
		}
		if !ok {
			break
		}
		pending[row.i] = row.o
		for {
			o, ready := pending[next]
			if !ready {
				break
			}
			delete(pending, next)
			next++
			if err := enc.Encode(wireOutcome(o)); err != nil {
				s.logf("sweep stream: encode row: %v", err)
				<-done
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	<-done

	if runErr != nil {
		// Headers are committed; the best we can do is a terminal
		// error row and a log line.
		s.logf("sweep stream: %v", runErr)
		if err := enc.Encode(ErrorResponse{Error: runErr.Error()}); err != nil {
			s.logf("sweep stream: encode error row: %v", err)
		}
		return
	}
	resp := &SweepResponse{ID: s.results.nextID(), Scenario: job.scenario, Cached: job.cached, Table: rep.Table()}
	for _, o := range rep.Outcomes {
		resp.Outcomes = append(resp.Outcomes, wireOutcome(o))
	}
	body, err := json.Marshal(resp)
	if err != nil {
		s.logf("sweep stream: marshal result document: %v", err)
		return
	}
	s.results.save(resp.ID, append(body, '\n'))
	sum := SweepStreamSummary{
		ID:       resp.ID,
		Done:     true,
		Rows:     len(resp.Outcomes),
		Scenario: job.scenario,
		Cached:   job.cached,
		Table:    rep.Table(),
	}
	if err := enc.Encode(sum); err != nil {
		s.logf("sweep stream: encode summary: %v", err)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}
