package server

import (
	"encoding/json"
	"net/http"
	"reflect"
	"testing"
)

// TestRunEndpointLinkModel: the run endpoint's linkModel field retimes
// the interconnect — a fixed delay completes late but completes, the
// response echoes the canonical spec, a unit-equivalent model answers
// byte-identically to no model at all (modulo the response ID), and
// malformed specs are 400s.
func TestRunEndpointLinkModel(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{
		Program: relayDSL, LinkModel: "fixed,delay=3",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var retimed RunResponse
	if err := json.Unmarshal(body, &retimed); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if retimed.Outcome != "completed" {
		t.Fatalf("a fixed delay should only stretch the run, got %q", retimed.Outcome)
	}
	if retimed.LinkModel != "fixed,delay=3" {
		t.Fatalf("link model echoed as %q, want %q", retimed.LinkModel, "fixed,delay=3")
	}

	_, clean := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL})
	_, unit := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, LinkModel: "fixed,delay=1"})
	var cr, ur RunResponse
	if err := json.Unmarshal(clean, &cr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := json.Unmarshal(unit, &ur); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ur.LinkModel != "fixed,delay=1" {
		t.Fatalf("unit-equivalent model echoed as %q", ur.LinkModel)
	}
	cr.ID, ur.ID = "", ""
	ur.LinkModel = ""
	if !reflect.DeepEqual(cr, ur) {
		t.Fatalf("delay-1 model changed the simulated response:\n%+v\nvs\n%+v", cr, ur)
	}
	if cr.Cycles >= retimed.Cycles {
		t.Fatalf("retiming did not stretch the run: clean %d cycles, retimed %d", cr.Cycles, retimed.Cycles)
	}

	for _, bad := range []string{"fixed,delay=nope", "warp9", "fixed,delay=3,delay=4"} {
		if resp, body := postJSON(t, ts.URL+"/v1/run", RunRequest{Program: relayDSL, LinkModel: bad}); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed spec %q: status %d: %s", bad, resp.StatusCode, body)
		}
	}
}

// TestSweepEndpointLinkModels: the sweep endpoint's linkModels axis
// multiplies the grid, every outcome names its spec, and malformed
// specs refuse the whole sweep with 400 before any streaming
// commitment.
func TestSweepEndpointLinkModels(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := SweepRequest{
		Program:    relayDSL,
		Policies:   []string{"compatible"},
		Queues:     []int{2},
		Capacities: []int{1},
		Lookaheads: []int{0},
		LinkModels: []string{"", "fixed,delay=3"},
		Seed:       1,
	}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SweepResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(sr.Outcomes) != 2 {
		t.Fatalf("%d outcomes, want 2 (the link axis doubles the grid)", len(sr.Outcomes))
	}
	unit, retimed := sr.Outcomes[0], sr.Outcomes[1]
	if unit.LinkModel != "" || retimed.LinkModel != "fixed,delay=3" {
		t.Fatalf("outcome link models %q, %q", unit.LinkModel, retimed.LinkModel)
	}
	if unit.Result != "completed" || retimed.Result != "completed" {
		t.Fatalf("outcomes %+v", sr.Outcomes)
	}
	if unit.Cycles >= retimed.Cycles {
		t.Fatalf("retimed point did not stretch: unit %d cycles, retimed %d", unit.Cycles, retimed.Cycles)
	}

	req.LinkModels = []string{"fixed,delay=nope"}
	if resp, body := postJSON(t, ts.URL+"/v1/sweep", req); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec: status %d: %s", resp.StatusCode, body)
	}
}
