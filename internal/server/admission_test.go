package server

import (
	"context"
	"testing"

	"systolic/internal/sweep"
)

// TestRetryAfterOccupancyEdges pins the Retry-After estimate over the
// occupancy edge cases: whatever the limiter's capacity (including the
// unbounded nil limiter's 0) and however empty or loaded the pool, the
// hint is ≥ 1 second — a 0 tells RFC 9110 clients to retry
// immediately, turning every shed into a busy loop — and stays
// monotone in backlog.
func TestRetryAfterOccupancyEdges(t *testing.T) {
	cases := []struct {
		name    string
		cap     int // 0 = nil (unbounded) limiter
		inUse   int
		waiting int64
		want    int
	}{
		{"nil limiter, idle", 0, 0, 0, 1},
		{"cap 1, empty but shedding", 1, 0, 0, 1},
		{"cap 1, one running", 1, 1, 0, 1},
		{"cap 1, running plus waiter", 1, 1, 1, 2},
		{"cap 1, deep backlog", 1, 1, 4, 5},
		{"cap 4, idle", 4, 0, 0, 1},
		{"cap 4, saturated", 4, 4, 0, 1},
		{"cap 4, saturated plus pool", 4, 4, 8, 3},
		{"negative waiting is clamped", 1, 0, -3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var l *sweep.Limiter
			if tc.cap > 0 {
				l = sweep.NewLimiter(tc.cap)
				if got := l.TryAcquireN(tc.inUse); got != tc.inUse {
					t.Fatalf("acquired %d of %d slots", got, tc.inUse)
				}
			}
			a := newAdmission(l, -1)
			a.waiting.Store(tc.waiting)
			if got := a.retryAfter(); got != tc.want {
				t.Errorf("retryAfter(cap=%d inUse=%d waiting=%d) = %d, want %d",
					tc.cap, tc.inUse, tc.waiting, got, tc.want)
			}
			if got := a.retryAfter(); got < 1 {
				t.Errorf("Retry-After %d < 1", got)
			}
		})
	}
}

// TestAdmitShedCarriesRetryAfter exercises the whole shed path: with
// -max-concurrency 1, no wait pool, and the only slot held, the next
// request is refused with 429 and a positive Retry-After.
func TestAdmitShedCarriesRetryAfter(t *testing.T) {
	l := sweep.NewLimiter(1)
	a := newAdmission(l, -1)
	if err := a.admit(context.Background()); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	defer l.Release()
	err := a.admit(context.Background())
	if err == nil {
		t.Fatal("second admit succeeded with the slot held")
	}
	se, ok := err.(*statusError)
	if !ok {
		t.Fatalf("shed error is %T, want *statusError", err)
	}
	if se.code != 429 {
		t.Errorf("shed status = %d, want 429", se.code)
	}
	if se.retryAfter < 1 {
		t.Errorf("shed Retry-After = %d, want ≥ 1", se.retryAfter)
	}
}
