package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"sync"
	"sync/atomic"

	"systolic/internal/core"
	"systolic/internal/model"
)

// cacheKey is a raw sha256 digest. Keys stay as fixed-size arrays so
// the hot-path map lookups allocate nothing.
type cacheKey = [sha256.Size]byte

// entry is one cached compiled scenario. ready is closed once compile
// (Analyze + machine build) finishes; until then a and err must not be
// read. Waiters hold the pointer directly, so an entry evicted while
// in flight still completes for everyone who found it.
type entry struct {
	canon    cacheKey
	ready    chan struct{}
	a        *core.Analysis
	err      error
	scenario string   // hex ScenarioKey(program, topology) for responses
	srcKeys  []string // source-level aliases registered for this entry
}

// wait blocks until the entry's compile has finished.
func (e *entry) wait() (*core.Analysis, error) {
	<-e.ready
	return e.a, e.err
}

// scenarioCache is the content-addressed compiled-machine cache at the
// heart of the serving layer. Entries are keyed canonically — a stable
// hash of the parsed program, topology, and analysis options (see
// machine.ScenarioKey) — so two textually different programs that
// parse to the same scenario share one compile. On top of that sits a
// source-level alias index: the raw (request text, options) hash maps
// straight to its entry, so the steady-state hit path for repeated
// identical requests is one sha256 and one map probe, with no parsing
// at all.
//
// Concurrent misses on the same key are deduplicated singleflight
// style: the first request inserts an in-flight entry and compiles;
// everyone else finds the entry and waits on its ready channel. The
// LRU bound counts canonical entries; evicting one removes its
// aliases with it.
type scenarioCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used; values are *entry
	byCanon map[cacheKey]*list.Element
	bySrc   map[cacheKey]*list.Element // source-alias fast path

	hits, misses, evictions atomic.Int64
}

func newScenarioCache(max int) *scenarioCache {
	if max <= 0 {
		max = 128
	}
	return &scenarioCache{
		max:     max,
		ll:      list.New(),
		byCanon: make(map[cacheKey]*list.Element),
		bySrc:   make(map[cacheKey]*list.Element),
	}
}

// analysisKey is the analysis-options half of a cache key: everything
// besides the program that the compiled artifact depends on. The run
// path maps its AnalyzeSpec here (budget 0, R2-derived); the sweep
// path maps a lookahead axis value to a uniform budget override —
// exactly the options the sweep engine's in-engine analyze step would
// use, so a sweep's lookahead-0 grid points share cache entries with
// default /v1/run and /v1/analyze requests.
type analysisKey struct {
	lookahead bool
	capacity  int
	budget    int // uniform skip budget override; 0 = R2-derived
}

// runKey maps a request's AnalyzeSpec onto the cache key space.
func runKey(spec AnalyzeSpec) analysisKey {
	return analysisKey{lookahead: spec.Lookahead, capacity: spec.Capacity}
}

// sweepKey maps one sweep lookahead axis value onto the cache key
// space, mirroring the sweep engine's own analyze step: 0 is the
// strict procedure, n > 0 a uniform budget of n.
func sweepKey(lookahead int) analysisKey {
	if lookahead > 0 {
		return analysisKey{lookahead: true, budget: lookahead}
	}
	return analysisKey{}
}

// options lowers the key to the core analyzer's options.
func (k analysisKey) options() core.AnalyzeOptions {
	opts := core.AnalyzeOptions{Lookahead: k.lookahead, Capacity: k.capacity}
	if k.budget > 0 {
		b := k.budget
		opts.BudgetOverride = func(model.MessageID) int { return b }
	}
	return opts
}

// digestBytes encodes the key for hashing.
func (k analysisKey) digestBytes() [17]byte {
	var b [17]byte
	if k.lookahead {
		b[0] = 1
	}
	binary.LittleEndian.PutUint64(b[1:], uint64(int64(k.capacity)))
	binary.LittleEndian.PutUint64(b[9:], uint64(int64(k.budget)))
	return b
}

// srcDigest hashes a raw request (program text + analysis options)
// without parsing it. This is the only work a steady-state cache hit
// performs before the simulation itself.
func srcDigest(program string, key analysisKey) cacheKey {
	h := sha256.New()
	io.WriteString(h, "sysdl-src-v2\x00")
	io.WriteString(h, program)
	opts := key.digestBytes()
	h.Write(opts[:])
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// canonDigest folds the canonical scenario hash with the analysis
// options into a cache key.
func canonDigest(scenarioKey string, key analysisKey) cacheKey {
	h := sha256.New()
	io.WriteString(h, "sysdl-canon-v2\x00")
	io.WriteString(h, scenarioKey)
	opts := key.digestBytes()
	h.Write(opts[:])
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// lookupSrc is the alias fast path: a hit returns the entry (possibly
// still compiling — the caller waits on it) and counts as a cache hit.
func (c *scenarioCache) lookupSrc(src cacheKey) (*entry, bool) {
	c.mu.Lock()
	el, ok := c.bySrc[src]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.mu.Unlock()
	c.hits.Add(1)
	return el.Value.(*entry), true
}

// getOrCompile returns the entry for a canonical key, compiling it via
// compile() exactly once no matter how many requests race here. src is
// registered as an alias so the next textually identical request skips
// the parse. Finding an existing entry — even one still compiling —
// counts as a hit (hit true); only the request that triggers the
// compile counts a miss.
func (c *scenarioCache) getOrCompile(canon, src cacheKey, scenario string, compile func() (*core.Analysis, error)) (_ *entry, hit bool) {
	c.mu.Lock()
	if el, ok := c.byCanon[canon]; ok {
		c.ll.MoveToFront(el)
		c.addAliasLocked(el, src)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*entry), true
	}
	e := &entry{canon: canon, ready: make(chan struct{}), scenario: scenario}
	el := c.ll.PushFront(e)
	c.byCanon[canon] = el
	c.addAliasLocked(el, src)
	for c.ll.Len() > c.max {
		c.evictLocked()
	}
	c.mu.Unlock()
	c.misses.Add(1)

	e.a, e.err = compile()
	close(e.ready)
	if e.err != nil {
		// Do not cache failures: a failed compile is cheap to rediscover
		// and caching it would pin a broken scenario for its LRU
		// lifetime.
		c.remove(e)
	}
	return e, false
}

// addAliasLocked registers a source alias for an entry, bounded so a
// flood of textual variants of one scenario cannot grow memory
// unboundedly.
func (c *scenarioCache) addAliasLocked(el *list.Element, src cacheKey) {
	if existing, ok := c.bySrc[src]; ok && existing == el {
		return
	}
	e := el.Value.(*entry)
	const maxAliases = 8
	if len(e.srcKeys) >= maxAliases {
		return
	}
	c.bySrc[src] = el
	e.srcKeys = append(e.srcKeys, string(src[:]))
}

// evictLocked drops the least recently used entry and its aliases.
func (c *scenarioCache) evictLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	c.dropLocked(el)
	c.evictions.Add(1)
}

// remove deletes a specific entry (used to un-cache failed compiles);
// it does not count as an eviction. The pointer comparison guards
// against dropping a newer entry that replaced e after an eviction.
func (c *scenarioCache) remove(e *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byCanon[e.canon]; ok && el.Value.(*entry) == e {
		c.dropLocked(el)
	}
}

func (c *scenarioCache) dropLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.byCanon, e.canon)
	for _, s := range e.srcKeys {
		var k cacheKey
		copy(k[:], s)
		if c.bySrc[k] == el {
			delete(c.bySrc, k)
		}
	}
	e.srcKeys = nil
}

// len reports the number of cached canonical entries.
func (c *scenarioCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
