package server

import (
	"fmt"
	"sync"
)

// resultStore retains the marshaled response documents of prior
// /v1/analyze, /v1/run, and /v1/sweep requests, bounded FIFO, so
// GET /v1/results/{id} can replay exactly what the submitter saw.
type resultStore struct {
	mu    sync.Mutex
	max   int
	seq   int64
	order []string // insertion order; front is the oldest retained id
	items map[string][]byte
}

func newResultStore(max int) *resultStore {
	if max <= 0 {
		max = 256
	}
	return &resultStore{max: max, items: make(map[string][]byte)}
}

// nextID reserves a result identifier.
func (s *resultStore) nextID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	return fmt.Sprintf("r-%08d", s.seq)
}

// save retains a response document under its id, evicting the oldest
// documents beyond the bound.
func (s *resultStore) save(id string, body []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.items[id]; dup {
		return
	}
	s.items[id] = body
	s.order = append(s.order, id)
	for len(s.order) > s.max {
		delete(s.items, s.order[0])
		s.order = s.order[1:]
	}
}

// get returns the stored document for an id.
func (s *resultStore) get(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.items[id]
	return b, ok
}

// len reports how many documents are retained.
func (s *resultStore) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.items)
}
