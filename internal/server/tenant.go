package server

// Per-tenant API keys and quotas. A Tenants registry is optional: with
// none configured (the default), every gate below is a nil-receiver
// no-op and the anonymous serving path pays nothing. With one, a
// single middleware (Server.gate) authenticates each compute request
// by API key, applies the tenant's requests/sec token bucket, and
// threads the tenant through the request context so handlers can
// enforce the tier's concurrency, grid-size, and cycle budgets.
//
// The registry is loaded from a small JSON file (-tenants <file>):
//
//	{
//	  "tiers":   {"free": {"maxConcurrent": 1, "maxGridPoints": 64,
//	                       "maxCycles": 100000, "requestsPerSec": 5, "burst": 10}},
//	  "tenants": {"k-abc123": {"name": "alice", "tier": "free"}}
//	}
//
// A tier value of 0 means unlimited for that dimension; a tenant with
// no tier gets the zero TierPolicy, i.e. authenticated but unlimited.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TierPolicy is one quota tier. Every field's zero value means
// "unlimited" so a partial tier only constrains what it names.
type TierPolicy struct {
	// MaxConcurrent bounds a tenant's simultaneous runs/sweeps.
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// MaxGridPoints bounds the size of one sweep request's grid,
	// after default-axis resolution.
	MaxGridPoints int `json:"maxGridPoints,omitempty"`
	// MaxCycles bounds the per-run cycle budget; requests above it are
	// refused and requests that leave it unset are clamped to it.
	MaxCycles int `json:"maxCycles,omitempty"`
	// RequestsPerSec is a token-bucket rate on compute requests;
	// Burst is its bucket depth (minimum 1).
	RequestsPerSec float64 `json:"requestsPerSec,omitempty"`
	Burst          int     `json:"burst,omitempty"`
}

// Tenants is the API-key registry. Build one with ParseTenants or
// LoadTenants; it is immutable after construction and safe for
// concurrent use (each tenant's mutable state is internally locked).
type Tenants struct {
	byKey map[string]*tenant

	rejects      atomic.Int64 // quota/rate refusals across all tenants
	authFailures atomic.Int64 // missing or unknown API keys
}

// tenant is one authenticated principal and its live quota state.
type tenant struct {
	name string
	tier TierPolicy
	reg  *Tenants

	active atomic.Int64 // concurrent runs in flight

	mu     sync.Mutex // guards the token bucket
	tokens float64
	last   time.Time
}

// tenantsFile is the on-disk shape.
type tenantsFile struct {
	Tiers   map[string]TierPolicy  `json:"tiers"`
	Tenants map[string]tenantEntry `json:"tenants"`
}

type tenantEntry struct {
	Name string `json:"name"`
	Tier string `json:"tier,omitempty"`
}

// ParseTenants builds a registry from the JSON tenants-file format
// above. Validation walks keys in sorted order so the first error
// reported is deterministic.
func ParseTenants(data []byte) (*Tenants, error) {
	var f tenantsFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	if len(f.Tenants) == 0 {
		return nil, errors.New("tenants: no tenants defined")
	}
	tierNames := make([]string, 0, len(f.Tiers))
	for name := range f.Tiers {
		tierNames = append(tierNames, name)
	}
	sort.Strings(tierNames)
	for _, name := range tierNames {
		p := f.Tiers[name]
		if p.MaxConcurrent < 0 || p.MaxGridPoints < 0 || p.MaxCycles < 0 || p.RequestsPerSec < 0 || p.Burst < 0 {
			return nil, fmt.Errorf("tenants: tier %q has a negative limit", name)
		}
	}
	keys := make([]string, 0, len(f.Tenants))
	for k := range f.Tenants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ts := &Tenants{byKey: make(map[string]*tenant, len(f.Tenants))}
	now := time.Now()
	for _, key := range keys {
		e := f.Tenants[key]
		if key == "" {
			return nil, errors.New("tenants: empty API key")
		}
		if e.Name == "" {
			return nil, fmt.Errorf("tenants: key %s has no name", redactKey(key))
		}
		tier := TierPolicy{}
		if e.Tier != "" {
			p, ok := f.Tiers[e.Tier]
			if !ok {
				return nil, fmt.Errorf("tenants: %q references unknown tier %q", e.Name, e.Tier)
			}
			tier = p
		}
		burst := float64(tier.Burst)
		if burst < 1 {
			burst = 1
		}
		ts.byKey[key] = &tenant{name: e.Name, tier: tier, reg: ts, tokens: burst, last: now}
	}
	return ts, nil
}

// LoadTenants reads and parses a tenants file.
func LoadTenants(path string) (*Tenants, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants: %w", err)
	}
	ts, err := ParseTenants(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return ts, nil
}

// redactKey shows enough of an API key to identify it in an error
// without reproducing the credential.
func redactKey(k string) string {
	if len(k) <= 4 {
		return k
	}
	return k[:4] + "…"
}

// count, rejectCount, and authFailureCount feed /v1/stats; all are
// nil-safe so anonymous servers report zeros.
func (ts *Tenants) count() int {
	if ts == nil {
		return 0
	}
	return len(ts.byKey)
}

func (ts *Tenants) rejectCount() int64 {
	if ts == nil {
		return 0
	}
	return ts.rejects.Load()
}

func (ts *Tenants) authFailureCount() int64 {
	if ts == nil {
		return 0
	}
	return ts.authFailures.Load()
}

// authenticate resolves a request's API key — "Authorization: Bearer
// <key>" or "X-API-Key: <key>" — to its tenant, counting failures.
func (ts *Tenants) authenticate(r *http.Request) (*tenant, error) {
	key := r.Header.Get("X-API-Key")
	if key == "" {
		if auth := r.Header.Get("Authorization"); strings.HasPrefix(auth, "Bearer ") {
			key = strings.TrimPrefix(auth, "Bearer ")
		}
	}
	if key == "" {
		ts.authFailures.Add(1)
		return nil, &statusError{code: http.StatusUnauthorized, err: errors.New("missing API key (Authorization: Bearer <key> or X-API-Key)")}
	}
	t, ok := ts.byKey[key]
	if !ok {
		ts.authFailures.Add(1)
		return nil, &statusError{code: http.StatusUnauthorized, err: errors.New("unknown API key")}
	}
	return t, nil
}

// gate wraps a compute handler with tenant authentication and rate
// limiting. With no registry configured it returns the handler
// unchanged — the anonymous path costs nothing.
func (s *Server) gate(h http.HandlerFunc) http.HandlerFunc {
	if s.tenants == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t, err := s.tenants.authenticate(r)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if err := t.allowRequest(time.Now()); err != nil {
			s.writeError(w, err)
			return
		}
		h(w, r.WithContext(withTenant(r.Context(), t)))
	}
}

// tenantKey carries the authenticated tenant through a request
// context.
type tenantKey struct{}

func withTenant(ctx context.Context, t *tenant) context.Context {
	return context.WithValue(ctx, tenantKey{}, t)
}

// tenantFrom recovers the request's tenant; nil in anonymous mode.
func tenantFrom(ctx context.Context) *tenant {
	t, _ := ctx.Value(tenantKey{}).(*tenant)
	return t
}

// allowRequest spends one token from the tenant's rate bucket,
// refilling by elapsed time, and refuses with a tenant-scoped 429 —
// Retry-After sized to the token deficit — when the bucket is empty.
func (t *tenant) allowRequest(now time.Time) error {
	if t == nil || t.tier.RequestsPerSec <= 0 {
		return nil
	}
	t.mu.Lock()
	burst := float64(t.tier.Burst)
	if burst < 1 {
		burst = 1
	}
	t.tokens += now.Sub(t.last).Seconds() * t.tier.RequestsPerSec
	t.last = now
	if t.tokens > burst {
		t.tokens = burst
	}
	if t.tokens < 1 {
		deficit := (1 - t.tokens) / t.tier.RequestsPerSec
		t.mu.Unlock()
		t.reg.rejects.Add(1)
		retry := int(math.Ceil(deficit))
		if retry < 1 {
			retry = 1
		}
		return &statusError{
			code:       http.StatusTooManyRequests,
			retryAfter: retry,
			err:        fmt.Errorf("tenant %q over its rate limit (%g requests/s)", t.name, t.tier.RequestsPerSec),
		}
	}
	t.tokens--
	t.mu.Unlock()
	return nil
}

// beginRun claims one of the tenant's concurrent-run slots; endRun
// returns it. Both are nil-safe.
func (t *tenant) beginRun() error {
	if t == nil {
		return nil
	}
	if n := t.active.Add(1); t.tier.MaxConcurrent > 0 && n > int64(t.tier.MaxConcurrent) {
		t.active.Add(-1)
		t.reg.rejects.Add(1)
		return &statusError{
			code:       http.StatusTooManyRequests,
			retryAfter: 1,
			err:        fmt.Errorf("tenant %q at its concurrency limit (%d concurrent runs)", t.name, t.tier.MaxConcurrent),
		}
	}
	return nil
}

func (t *tenant) endRun() {
	if t != nil {
		t.active.Add(-1)
	}
}

// checkGrid refuses sweep grids over the tenant's tier bound.
func (t *tenant) checkGrid(points int) error {
	if t == nil || t.tier.MaxGridPoints <= 0 || points <= t.tier.MaxGridPoints {
		return nil
	}
	t.reg.rejects.Add(1)
	return &statusError{
		code: http.StatusTooManyRequests,
		err:  fmt.Errorf("tenant %q sweep grid of %d points exceeds its tier's %d", t.name, points, t.tier.MaxGridPoints),
	}
}

// cycleBudget applies the tier's per-run cycle bound: explicit
// requests above it are refused, an unset request (0) is clamped to
// the bound so "use the default" can never exceed the tier.
func (t *tenant) cycleBudget(requested int) (int, error) {
	if t == nil || t.tier.MaxCycles <= 0 {
		return requested, nil
	}
	if requested > t.tier.MaxCycles {
		t.reg.rejects.Add(1)
		return 0, &statusError{
			code: http.StatusTooManyRequests,
			err:  fmt.Errorf("tenant %q cycle budget %d exceeds its tier's %d", t.name, requested, t.tier.MaxCycles),
		}
	}
	if requested == 0 {
		return t.tier.MaxCycles, nil
	}
	return requested, nil
}
