package server

import (
	"context"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/core"
	"systolic/internal/dsl"
	"systolic/internal/machine"
)

// benchMachine compiles the relay scenario once, outside the measured
// region, exactly as the cache does.
func benchMachine(tb testing.TB) *machine.Machine {
	tb.Helper()
	f, err := dsl.Parse(relayDSL)
	if err != nil {
		tb.Fatalf("parse: %v", err)
	}
	a, err := core.Analyze(f.Program, f.Topology, core.AnalyzeOptions{})
	if err != nil {
		tb.Fatalf("analyze: %v", err)
	}
	m, err := a.Machine()
	if err != nil {
		tb.Fatalf("compile: %v", err)
	}
	return m
}

// bareRun is the comparison baseline: a pooled machine.Run with a
// fresh policy instance, the cost floor any serving layer sits on.
func bareRun(tb testing.TB, m *machine.Machine) {
	res, err := m.Run(machine.ExecOptions{
		Policy:        assign.Compatible(),
		QueuesPerLink: 1,
		Capacity:      1,
	})
	if err != nil {
		tb.Fatalf("run: %v", err)
	}
	if !res.Completed {
		tb.Fatalf("baseline run did not complete")
	}
}

// BenchmarkBareMachineRun measures the floor.
func BenchmarkBareMachineRun(b *testing.B) {
	m := benchMachine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bareRun(b, m)
	}
}

// BenchmarkServeCacheHit measures the server's submit-to-result hit
// path (executeRun: source hash, cache probe, limiter, pooled run),
// excluding HTTP/JSON framing. The acceptance criterion is that its
// allocations stay within 2x of BenchmarkBareMachineRun — the cache
// hit must cost a small constant over the bare pooled run.
func BenchmarkServeCacheHit(b *testing.B) {
	s := New(Options{})
	ctx := context.Background()
	req := &RunRequest{Program: relayDSL, Queues: 1, Capacity: 1}
	var resp RunResponse
	if err := s.executeRun(ctx, req, &resp); err != nil { // warm the cache
		b.Fatalf("warm-up: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.executeRun(ctx, req, &resp); err != nil {
			b.Fatalf("run: %v", err)
		}
		if resp.Outcome != "completed" {
			b.Fatalf("outcome %q", resp.Outcome)
		}
	}
	if s.cache.misses.Load() != 1 {
		b.Fatalf("benchmark was not pure cache hits: %d misses", s.cache.misses.Load())
	}
}

// TestServeCacheHitAllocGate enforces the acceptance criterion as a
// plain test so CI fails fast without running benchmarks: the hit
// path's allocations must stay within 2x of a bare pooled run.
func TestServeCacheHitAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	m := benchMachine(t)
	bare := testing.AllocsPerRun(200, func() { bareRun(t, m) })

	s := New(Options{})
	ctx := context.Background()
	req := &RunRequest{Program: relayDSL, Queues: 1, Capacity: 1}
	var resp RunResponse
	if err := s.executeRun(ctx, req, &resp); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	hit := testing.AllocsPerRun(200, func() {
		if err := s.executeRun(ctx, req, &resp); err != nil {
			t.Fatalf("run: %v", err)
		}
	})
	t.Logf("bare pooled run: %.1f allocs/op; serve hit path: %.1f allocs/op", bare, hit)
	if hit > 2*bare {
		t.Fatalf("serve hit path costs %.1f allocs/op, more than 2x the bare run's %.1f", hit, bare)
	}
}
