package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readAPIDoc loads docs/API.md, the wire-format contract this test
// enforces.
func readAPIDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "docs", "API.md"))
	if err != nil {
		t.Fatalf("docs/API.md must exist: %v", err)
	}
	return string(b)
}

// TestAPIDocCoversEveryRoute fails when a route is registered on the
// service but absent from docs/API.md — endpoints cannot ship
// undocumented.
func TestAPIDocCoversEveryRoute(t *testing.T) {
	doc := readAPIDoc(t)
	for _, route := range Routes() {
		// The doc writes routes as headings like "### POST /v1/run".
		if !strings.Contains(doc, route) {
			t.Errorf("docs/API.md does not document route %q", route)
		}
	}
	if !strings.Contains(doc, "/debug/vars") {
		t.Error("docs/API.md does not mention the expvar endpoint")
	}
}

// TestAPIDocCoversPublicSurface pins the Go-surface section: the
// entry points the reference promises to cover must be named.
func TestAPIDocCoversPublicSurface(t *testing.T) {
	doc := readAPIDoc(t)
	for _, sym := range []string{
		"Analyze", "Precompile", "Execute", "Sweep",
		"GenerateProgram", "DiffCheck", "Serve",
		"ParseDSL", "FormatDSL", "ParsePolicyName",
		"NewServeHandler", "ServeRoutes",
	} {
		if !strings.Contains(doc, sym) {
			t.Errorf("docs/API.md does not document %s", sym)
		}
	}
}

// docJSONBlocks extracts fenced blocks whose info string is
// "json <tag>", keyed by tag.
func docJSONBlocks(t *testing.T, doc string) map[string][]string {
	t.Helper()
	out := make(map[string][]string)
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		head := strings.TrimSpace(lines[i])
		if !strings.HasPrefix(head, "```json ") {
			continue
		}
		tag := strings.TrimSpace(strings.TrimPrefix(head, "```json "))
		var body []string
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		if i == len(lines) {
			t.Fatalf("unterminated json fence %q", tag)
		}
		out[tag] = append(out[tag], strings.Join(body, "\n"))
	}
	return out
}

// TestAPIDocExamplesMatchWireTypes decodes every documented JSON
// example into the service's actual request/response structs with
// unknown fields disallowed, so a renamed or removed field breaks
// this test until the doc is updated.
func TestAPIDocExamplesMatchWireTypes(t *testing.T) {
	doc := readAPIDoc(t)
	blocks := docJSONBlocks(t, doc)

	targets := map[string]func() any{
		"v1/analyze-request":       func() any { return new(AnalyzeRequest) },
		"v1/analyze-response":      func() any { return new(AnalyzeResponse) },
		"v1/run-request":           func() any { return new(RunRequest) },
		"v1/run-response":          func() any { return new(RunResponse) },
		"v1/run-deadlock-response": func() any { return new(RunResponse) },
		"v1/sweep-request":         func() any { return new(SweepRequest) },
		"v1/sweep-response":        func() any { return new(SweepResponse) },
		"v1/sweep-stream-row":      func() any { return new(SweepOutcome) },
		"v1/sweep-outcome":         func() any { return new(SweepOutcome) },
		"v1/sweep-stream-summary":  func() any { return new(SweepStreamSummary) },
		"v1/stats-response":        func() any { return new(StatsResponse) },
		"v1/tenants-file":          func() any { return new(tenantsFile) },
		"v1/error":                 func() any { return new(ErrorResponse) },
	}
	for tag, mk := range targets {
		bodies, ok := blocks[tag]
		if !ok {
			t.Errorf("docs/API.md has no ```json %s example", tag)
			continue
		}
		for _, body := range bodies {
			dec := json.NewDecoder(strings.NewReader(body))
			dec.DisallowUnknownFields()
			if err := dec.Decode(mk()); err != nil {
				t.Errorf("example %q does not match the wire type: %v\n%s", tag, err, body)
			}
		}
	}
	for tag := range blocks {
		if _, known := targets[tag]; !known {
			t.Errorf("docs/API.md example tag %q has no conformance mapping; add it to this test", tag)
		}
	}
}

// TestAPIDocTenantsExampleLoads feeds the documented tenants-file
// example through the real loader: a copy-pasted quickstart config
// must not be rejected.
func TestAPIDocTenantsExampleLoads(t *testing.T) {
	doc := readAPIDoc(t)
	blocks := docJSONBlocks(t, doc)
	bodies := blocks["v1/tenants-file"]
	if len(bodies) == 0 {
		t.Fatal("docs/API.md has no ```json v1/tenants-file example")
	}
	for _, body := range bodies {
		tn, err := ParseTenants([]byte(body))
		if err != nil {
			t.Errorf("documented tenants file rejected by ParseTenants: %v\n%s", err, body)
			continue
		}
		if tn.count() == 0 {
			t.Error("documented tenants file defines no tenants")
		}
	}
}

// TestAPIDocRequestExamplesAreServable goes one step further than
// shape checking: the documented request programs must actually be
// accepted by a live handler.
func TestAPIDocRequestExamplesAreServable(t *testing.T) {
	doc := readAPIDoc(t)
	blocks := docJSONBlocks(t, doc)
	_, ts := newTestServer(t, Options{})
	for tag, path := range map[string]string{
		"v1/analyze-request": "/v1/analyze",
		"v1/run-request":     "/v1/run",
		"v1/sweep-request":   "/v1/sweep",
	} {
		for _, body := range blocks[tag] {
			resp, out := postRaw(t, ts.URL+path, body)
			if resp.StatusCode != 200 {
				t.Errorf("documented %s example rejected by the server (%d): %s", tag, resp.StatusCode, out)
			}
		}
	}
}
