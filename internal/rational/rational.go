// Package rational implements small exact rational numbers.
//
// The paper's labeling scheme (§6, step 1b) may need to label a message
// with "a real number between two consecutive integers"; exact
// rationals make the construction order-stable and overflow-checked
// without pulling in math/big for what are tiny denominators in
// practice (labels are repeatedly halved between neighbors).
package rational

import (
	"fmt"
)

// R is an exact rational num/den with den > 0 and gcd(num,den)=1.
// The zero value is 0/1.
type R struct {
	num int64
	den int64
}

// New returns num/den reduced to lowest terms. It panics if den is 0.
func New(num, den int64) R {
	if den == 0 {
		panic("rational: zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd(abs(num), den)
	return R{num / g, den / g}
}

// FromInt returns n/1.
func FromInt(n int64) R { return R{n, 1} }

// Num returns the reduced numerator.
func (r R) Num() int64 { return r.norm().num }

// Den returns the reduced denominator (always positive).
func (r R) Den() int64 { return r.norm().den }

// norm maps the zero value onto 0/1.
func (r R) norm() R {
	if r.den == 0 {
		return R{0, 1}
	}
	return r
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// mulCheck multiplies with overflow detection.
func mulCheck(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/b != a {
		panic(fmt.Sprintf("rational: overflow in %d*%d", a, b))
	}
	return c
}

// Add returns r+s.
func (r R) Add(s R) R {
	r, s = r.norm(), s.norm()
	return New(mulCheck(r.num, s.den)+mulCheck(s.num, r.den), mulCheck(r.den, s.den))
}

// Sub returns r-s.
func (r R) Sub(s R) R {
	r, s = r.norm(), s.norm()
	return New(mulCheck(r.num, s.den)-mulCheck(s.num, r.den), mulCheck(r.den, s.den))
}

// Mul returns r*s.
func (r R) Mul(s R) R {
	r, s = r.norm(), s.norm()
	return New(mulCheck(r.num, s.num), mulCheck(r.den, s.den))
}

// Div returns r/s; it panics if s is zero.
func (r R) Div(s R) R {
	s = s.norm()
	if s.num == 0 {
		panic("rational: division by zero")
	}
	r = r.norm()
	return New(mulCheck(r.num, s.den), mulCheck(r.den, s.num))
}

// Mid returns the midpoint (r+s)/2, the canonical "number strictly
// between" used by the labeling scheme.
func (r R) Mid(s R) R { return r.Add(s).Div(FromInt(2)) }

// Cmp returns -1, 0, or +1 as r is less than, equal to, or greater
// than s.
func (r R) Cmp(s R) int {
	r, s = r.norm(), s.norm()
	l := mulCheck(r.num, s.den)
	rr := mulCheck(s.num, r.den)
	switch {
	case l < rr:
		return -1
	case l > rr:
		return 1
	default:
		return 0
	}
}

// Less reports r < s.
func (r R) Less(s R) bool { return r.Cmp(s) < 0 }

// Equal reports r == s.
func (r R) Equal(s R) bool { return r.Cmp(s) == 0 }

// Floor returns the greatest integer ≤ r.
func (r R) Floor() int64 {
	r = r.norm()
	q := r.num / r.den
	if r.num%r.den != 0 && r.num < 0 {
		q--
	}
	return q
}

// IsInt reports whether r is an integer.
func (r R) IsInt() bool { return r.norm().den == 1 }

// Float returns a float64 approximation (for rendering only).
func (r R) Float() float64 {
	r = r.norm()
	return float64(r.num) / float64(r.den)
}

// String renders "n" for integers and "n/d" otherwise.
func (r R) String() string {
	r = r.norm()
	if r.den == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}

// Max returns the larger of r and s.
func Max(r, s R) R {
	if r.Less(s) {
		return s
	}
	return r
}

// Min returns the smaller of r and s.
func Min(r, s R) R {
	if s.Less(r) {
		return s
	}
	return r
}
