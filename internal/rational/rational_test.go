package rational

import (
	"testing"
	"testing/quick"
)

func TestNewReduces(t *testing.T) {
	cases := []struct {
		num, den     int64
		wantN, wantD int64
	}{
		{1, 2, 1, 2},
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 7, 0, 1},
		{6, 3, 2, 1},
	}
	for _, c := range cases {
		r := New(c.num, c.den)
		if r.Num() != c.wantN || r.Den() != c.wantD {
			t.Errorf("New(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantN, c.wantD)
		}
	}
}

func TestZeroDenominatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1,0) did not panic")
		}
	}()
	New(1, 0)
}

func TestZeroValueIsZero(t *testing.T) {
	var r R
	if !r.Equal(FromInt(0)) {
		t.Fatalf("zero value = %v, want 0", r)
	}
	if got := r.Add(FromInt(3)); !got.Equal(FromInt(3)) {
		t.Fatalf("0+3 = %v", got)
	}
	if r.String() != "0" {
		t.Fatalf("zero renders %q", r.String())
	}
}

func TestArithmetic(t *testing.T) {
	half := New(1, 2)
	third := New(1, 3)
	if got := half.Add(third); !got.Equal(New(5, 6)) {
		t.Errorf("1/2+1/3 = %v", got)
	}
	if got := half.Sub(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2-1/3 = %v", got)
	}
	if got := half.Mul(third); !got.Equal(New(1, 6)) {
		t.Errorf("1/2*1/3 = %v", got)
	}
	if got := half.Div(third); !got.Equal(New(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %v", got)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("division by zero did not panic")
		}
	}()
	FromInt(1).Div(FromInt(0))
}

func TestMidIsStrictlyBetween(t *testing.T) {
	cases := [][2]R{
		{FromInt(1), FromInt(2)},
		{New(1, 2), New(2, 3)},
		{FromInt(-3), New(-5, 2)},
		{New(7, 3), New(8, 3)},
	}
	for _, c := range cases {
		m := c[0].Mid(c[1])
		if !(c[0].Less(m) && m.Less(c[1])) {
			t.Errorf("Mid(%v,%v) = %v not strictly between", c[0], c[1], m)
		}
	}
}

func TestCmp(t *testing.T) {
	if FromInt(1).Cmp(FromInt(2)) != -1 {
		t.Error("1 < 2 failed")
	}
	if New(2, 4).Cmp(New(1, 2)) != 0 {
		t.Error("2/4 == 1/2 failed")
	}
	if New(-1, 2).Cmp(New(-2, 3)) != 1 {
		t.Error("-1/2 > -2/3 failed")
	}
}

func TestFloor(t *testing.T) {
	cases := []struct {
		r    R
		want int64
	}{
		{New(7, 2), 3},
		{New(-7, 2), -4},
		{FromInt(5), 5},
		{FromInt(-5), -5},
		{New(1, 3), 0},
		{New(-1, 3), -1},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.want {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

func TestIsIntAndString(t *testing.T) {
	if !FromInt(4).IsInt() || New(1, 2).IsInt() {
		t.Error("IsInt misclassifies")
	}
	if New(3, 2).String() != "3/2" || FromInt(7).String() != "7" {
		t.Error("String format wrong")
	}
}

func TestMaxMin(t *testing.T) {
	a, b := New(1, 2), New(2, 3)
	if !Max(a, b).Equal(b) || !Min(a, b).Equal(a) {
		t.Error("Max/Min wrong")
	}
	if !Max(b, a).Equal(b) || !Min(b, a).Equal(a) {
		t.Error("Max/Min not symmetric")
	}
}

// small generates rationals with bounded components so quick-check
// arithmetic stays far from overflow.
func small(n1, d1, n2, d2 int16) (R, R) {
	den1, den2 := int64(d1)%100, int64(d2)%100
	if den1 == 0 {
		den1 = 1
	}
	if den2 == 0 {
		den2 = 1
	}
	return New(int64(n1)%1000, den1), New(int64(n2)%1000, den2)
}

func TestQuickAddCommutes(t *testing.T) {
	f := func(n1, d1, n2, d2 int16) bool {
		a, b := small(n1, d1, n2, d2)
		return a.Add(b).Equal(b.Add(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAddSubRoundTrip(t *testing.T) {
	f := func(n1, d1, n2, d2 int16) bool {
		a, b := small(n1, d1, n2, d2)
		return a.Add(b).Sub(b).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMidBetween(t *testing.T) {
	f := func(n1, d1, n2, d2 int16) bool {
		a, b := small(n1, d1, n2, d2)
		if a.Equal(b) {
			return a.Mid(b).Equal(a)
		}
		lo, hi := Min(a, b), Max(a, b)
		m := lo.Mid(hi)
		return lo.Less(m) && m.Less(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCmpAntisymmetric(t *testing.T) {
	f := func(n1, d1, n2, d2 int16) bool {
		a, b := small(n1, d1, n2, d2)
		return a.Cmp(b) == -b.Cmp(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloorBounds(t *testing.T) {
	f := func(n1, d1 int16) bool {
		a, _ := small(n1, d1, 0, 1)
		fl := FromInt(a.Floor())
		next := fl.Add(FromInt(1))
		return !a.Less(fl) && a.Less(next)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
