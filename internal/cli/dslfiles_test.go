package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShippedDSLFiles keeps the examples/dsl/*.sys files honest: each
// must parse, and behave as its header comment promises.
func TestShippedDSLFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "dsl")
	// read takes the subtest's own *testing.T: calling t.Fatal on the
	// parent from inside a subtest panics with "subtest may have called
	// FailNow on a parent test" instead of failing cleanly.
	read := func(t *testing.T, name string) string {
		t.Helper()
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	t.Run("fig6-completes", func(t *testing.T) {
		var b strings.Builder
		opts := DefaultSysdlOptions()
		code, err := Sysdl(&b, "run", read(t, "fig6.sys"), opts)
		if err != nil || code != 0 {
			t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
		}
	})

	t.Run("fig7-fcfs-deadlocks", func(t *testing.T) {
		var b strings.Builder
		opts := DefaultSysdlOptions()
		opts.Policy = "fcfs"
		opts.Queues = 1
		opts.Force = true
		code, err := Sysdl(&b, "run", read(t, "fig7.sys"), opts)
		if err != nil || code != 1 {
			t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
		}
		if !strings.Contains(b.String(), "deadlocked") {
			t.Fatalf("output:\n%s", b.String())
		}
	})

	t.Run("fig7-compatible-completes", func(t *testing.T) {
		var b strings.Builder
		opts := DefaultSysdlOptions()
		opts.Queues = 1
		code, err := Sysdl(&b, "run", read(t, "fig7.sys"), opts)
		if err != nil || code != 0 {
			t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
		}
	})

	t.Run("p1-check-and-lookahead-run", func(t *testing.T) {
		var b strings.Builder
		code, err := Sysdl(&b, "check", read(t, "p1.sys"), DefaultSysdlOptions())
		if err != nil || code != 1 {
			t.Fatalf("check: code=%d err=%v", code, err)
		}
		if !strings.Contains(b.String(), "lookahead (budget 2): deadlock-free=true") {
			t.Fatalf("check output:\n%s", b.String())
		}
		opts := DefaultSysdlOptions()
		opts.Lookahead = true
		opts.Capacity = 2
		opts.Queues = 2
		b.Reset()
		code, err = Sysdl(&b, "run", read(t, "p1.sys"), opts)
		if err != nil || code != 0 {
			t.Fatalf("run: code=%d err=%v\n%s", code, err, b.String())
		}
	})

	t.Run("pipeline-plan", func(t *testing.T) {
		var b strings.Builder
		code, err := Sysdl(&b, "plan", read(t, "pipeline.sys"), DefaultSysdlOptions())
		if err != nil || code != 0 {
			t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
		}
	})
}
