// Package cli implements the figures and sysdl command-line tools as
// testable functions over io.Writer; the cmd/ mains are thin wrappers.
package cli

import (
	"fmt"
	"io"

	"systolic"
)

// Figure writes the reproduction of one paper figure (1–10).
func Figure(w io.Writer, n int) error {
	f, ok := figureFuncs()[n]
	if !ok {
		return fmt.Errorf("cli: no figure %d", n)
	}
	return f(w)
}

// AllFigures writes every figure in order.
func AllFigures(w io.Writer) error {
	for i := 1; i <= 10; i++ {
		if err := Figure(w, i); err != nil {
			return err
		}
	}
	return nil
}

func figureFuncs() map[int]func(io.Writer) error {
	return map[int]func(io.Writer) error{
		1: fig1, 2: fig2, 3: fig3, 4: fig4, 5: fig5,
		6: fig6, 7: fig7, 8: fig8, 9: fig9, 10: fig10,
	}
}

func header(w io.Writer, n int, title string) {
	fmt.Fprintf(w, "\n===== Figure %d: %s =====\n\n", n, title)
}

func fig1(w io.Writer) error {
	header(w, 1, "systolic vs memory-to-memory communication")
	rows, err := systolic.MemModelTable(systolic.MemModelDefaultSweep())
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "pipeline makespan (cycles), 4 local-memory accesses per word under mem-to-mem:")
	for _, r := range rows {
		fmt.Fprintln(w, " ", r)
	}
	return nil
}

func fig2(w io.Writer) error {
	header(w, 2, "program for filtering (3-tap FIR, first two outputs)")
	fmt.Fprint(w, systolic.RenderProgram(systolic.Fig2Workload().Program))
	return nil
}

func fig3(w io.Writer) error {
	header(w, 3, "messages assigned to queue sequences")
	wl := systolic.Fig3Workload()
	s, err := systolic.RenderQueueSequences(wl.Program, wl.Topology)
	if err != nil {
		return err
	}
	fmt.Fprint(w, s)
	fmt.Fprintln(w, "\n(4 queues per link; message A crosses C1–C2, C2–C3, C3–C4 as in §2.3)")
	return nil
}

func fig4(w io.Writer) error {
	header(w, 4, "crossing-off procedure on the Fig 2 program")
	wl := systolic.Fig2Workload()
	rounds, free := systolic.CrossOffSchedule(wl.Program)
	fmt.Fprint(w, systolic.RenderSchedule(wl.Program, rounds))
	fmt.Fprintf(w, "\ndeadlock-free: %v (12 steps; steps 3, 5, 9 cross two pairs)\n", free)
	return nil
}

func fig5(w io.Writer) error {
	header(w, 5, "deadlocked program examples P1, P2, P3")
	for _, wl := range []*systolic.Workload{
		systolic.Fig5P1Workload(), systolic.Fig5P2Workload(), systolic.Fig5P3Workload(),
	} {
		fmt.Fprintf(w, "--- %s ---\n", wl.Name)
		fmt.Fprint(w, systolic.RenderProgram(wl.Program))
		fmt.Fprintf(w, "strict: deadlock-free=%v; lookahead(budget 2): deadlock-free=%v\n\n",
			systolic.IsDeadlockFree(wl.Program),
			systolic.IsDeadlockFreeWithLookahead(wl.Program, 2))
	}
	return nil
}

func fig6(w io.Writer) error {
	header(w, 6, "cyclic messages, deadlock-free program")
	wl := systolic.Fig6Workload()
	fmt.Fprint(w, systolic.RenderProgram(wl.Program))
	fmt.Fprintf(w, "deadlock-free: %v (sender/receiver cycle C1→C2→C3→C4→C1 notwithstanding)\n",
		systolic.IsDeadlockFree(wl.Program))
	return nil
}

func fig7(w io.Writer) error {
	header(w, 7, "queue-induced deadlock example 1 (ordering on a shared queue)")
	wl := systolic.Fig7Workload(systolic.Fig7Options{})
	fmt.Fprint(w, systolic.RenderProgram(wl.Program))
	a, err := systolic.Analyze(wl.Program, wl.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nconsistent labels (§6):")
	fmt.Fprint(w, systolic.RenderLabels(wl.Program, a.Labeling))

	run := func(kind systolic.PolicyKind) (*systolic.RunResult, error) {
		return systolic.Execute(a, systolic.ExecOptions{
			Policy: kind, QueuesPerLink: 1, Capacity: 1, Force: true, RecordTimeline: true,
		})
	}
	bad, err := run(systolic.NaiveFCFS)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nnaive FCFS assignment, 1 queue/link: %s\n", bad.Outcome())
	fmt.Fprint(w, systolic.RenderTimeline(wl.Program, wl.Topology, bad))
	good, err := run(systolic.DynamicCompatible)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncompatible assignment, 1 queue/link: %s in %d cycles\n", good.Outcome(), good.Cycles)
	fmt.Fprint(w, systolic.RenderTimeline(wl.Program, wl.Topology, good))
	return nil
}

func fig8(w io.Writer) error {
	return interleaved(w, 8, systolic.Fig8Workload(),
		"interleaved reads from multiple messages (cell C3)")
}

func fig9(w io.Writer) error {
	return interleaved(w, 9, systolic.Fig9Workload(),
		"interleaved writes to multiple messages (cell C1)")
}

func interleaved(w io.Writer, n int, wl *systolic.Workload, title string) error {
	header(w, n, title)
	fmt.Fprint(w, systolic.RenderProgram(wl.Program))
	a, err := systolic.Analyze(wl.Program, wl.Topology, systolic.AnalyzeOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "\nrelated messages share a label:")
	fmt.Fprint(w, systolic.RenderLabels(wl.Program, a.Labeling))
	fmt.Fprintf(w, "minimum queues/link for compatible assignment: %d\n", a.MinQueuesDynamic)

	for _, queues := range []int{1, 2} {
		res, err := systolic.Execute(a, systolic.ExecOptions{
			Policy: systolic.NaiveFCFS, QueuesPerLink: queues, Capacity: 1, Force: true,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "naive FCFS with %d queue(s)/link: %s\n", queues, res.Outcome())
	}
	res, err := systolic.Execute(a, systolic.ExecOptions{
		Policy: systolic.DynamicCompatible, QueuesPerLink: 2, Capacity: 1,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "compatible with 2 queues/link: %s in %d cycles\n", res.Outcome(), res.Cycles)
	return nil
}

func fig10(w io.Writer) error {
	header(w, 10, "program P1 crossed off using lookahead (buffer 2)")
	wl := systolic.Fig5P1Workload()
	fmt.Fprint(w, systolic.RenderProgram(wl.Program))
	res := systolic.CrossOff(wl.Program, systolic.CrossoffOptions{
		Lookahead: true,
		Budget:    func(systolic.MessageID) int { return 2 },
	})
	fmt.Fprintf(w, "\ndeadlock-free under lookahead: %v; crossed pairs in order:\n", res.DeadlockFree)
	for i, pr := range res.Order {
		fmt.Fprintf(w, "  pair %d: message %s (skips %d writes)\n",
			i+1, wl.Program.Message(pr.Msg).Name, len(pr.Skipped))
	}
	fmt.Fprintln(w, "\nrun-time confirmation (2 queues, capacity 2, compatible):")
	a, err := systolic.Analyze(wl.Program, wl.Topology, systolic.AnalyzeOptions{Lookahead: true, Capacity: 2})
	if err != nil {
		return err
	}
	run, err := systolic.Execute(a, systolic.ExecOptions{QueuesPerLink: 2, Capacity: 2})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  %s in %d cycles\n", run.Outcome(), run.Cycles)
	fmt.Fprintln(w, "with capacity 1 (skip budget 1) the program stays deadlocked:")
	bad, err := systolic.Analyze(wl.Program, wl.Topology, systolic.AnalyzeOptions{Lookahead: true, Capacity: 1})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  classified deadlock-free: %v\n", bad.DeadlockFree)
	return nil
}
