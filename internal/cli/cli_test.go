package cli

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"systolic"
)

func TestAllFiguresRender(t *testing.T) {
	var b strings.Builder
	if err := AllFigures(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Figure 1", "speedup=6.33x",
		"Figure 2", "W(XA)",
		"Figure 3", "C1→C2, C2→C3, C3→C4",
		"Figure 4", "Step 12",
		"Figure 5", "strict: deadlock-free=false; lookahead(budget 2): deadlock-free=true",
		"Figure 6", "deadlock-free: true",
		"Figure 7", "naive FCFS assignment, 1 queue/link: deadlocked",
		"compatible assignment, 1 queue/link: completed",
		"Figure 8", "minimum queues/link for compatible assignment: 2",
		"Figure 9",
		"Figure 10", "pair 1: message B (skips 2 writes)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("figures output missing %q", want)
		}
	}
}

func TestFigureUnknown(t *testing.T) {
	var b strings.Builder
	if err := Figure(&b, 42); err == nil {
		t.Fatal("figure 42 accepted")
	}
}

const sampleDSL = `
cell Host host
cell C1
cell C2
message IN Host C1 3
message MID C1 C2 3
message OUT C2 Host 3
code Host: W(IN) W(IN) R(OUT) W(IN) R(OUT) R(OUT)
code C1: R(IN) W(MID) R(IN) W(MID) R(IN) W(MID)
code C2: R(MID) W(OUT) R(MID) W(OUT) R(MID) W(OUT)
`

func TestSysdlCheck(t *testing.T) {
	var b strings.Builder
	code, err := Sysdl(&b, "check", sampleDSL, DefaultSysdlOptions())
	if err != nil || code != 0 {
		t.Fatalf("check: code=%d err=%v\n%s", code, err, b.String())
	}
	if !strings.Contains(b.String(), "strict crossing-off: deadlock-free=true") {
		t.Fatalf("output:\n%s", b.String())
	}
}

func TestSysdlCheckDeadlocked(t *testing.T) {
	src := `
cell C1
cell C2
message A C1 C2 1
message B C2 C1 1
code C1: R(B) W(A)
code C2: R(A) W(B)
`
	var b strings.Builder
	code, err := Sysdl(&b, "check", src, DefaultSysdlOptions())
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("deadlocked program exited %d, want 1", code)
	}
}

func TestSysdlLabelPlanRunRender(t *testing.T) {
	for _, cmd := range []string{"label", "plan", "run", "render"} {
		var b strings.Builder
		code, err := Sysdl(&b, cmd, sampleDSL, DefaultSysdlOptions())
		if err != nil || code != 0 {
			t.Fatalf("%s: code=%d err=%v\n%s", cmd, code, err, b.String())
		}
		switch cmd {
		case "label":
			if !strings.Contains(b.String(), "dense") {
				t.Fatalf("label output:\n%s", b.String())
			}
		case "plan":
			if !strings.Contains(b.String(), "queues/link needed") {
				t.Fatalf("plan output:\n%s", b.String())
			}
		case "run":
			if !strings.Contains(b.String(), "outcome: completed") {
				t.Fatalf("run output:\n%s", b.String())
			}
		case "render":
			if !strings.Contains(b.String(), "routes:") {
				t.Fatalf("render output:\n%s", b.String())
			}
		}
	}
}

// TestSysdlRunWorkers: `sysdl run -workers N` must print exactly the
// single-threaded bytes for every N — the CLI face of deterministic
// sharded execution — including timeline and stats rendering.
func TestSysdlRunWorkers(t *testing.T) {
	var first string
	for _, workers := range []int{0, 1, 2, 4, 7} {
		opts := DefaultSysdlOptions()
		opts.Workers = workers
		opts.Timeline = true
		opts.Stats = true
		var b strings.Builder
		code, err := Sysdl(&b, "run", sampleDSL, opts)
		if err != nil || code != 0 {
			t.Fatalf("workers=%d: code=%d err=%v\n%s", workers, code, err, b.String())
		}
		if first == "" {
			first = b.String()
		} else if b.String() != first {
			t.Fatalf("run output differs at -workers %d:\n%s\nvs\n%s", workers, first, b.String())
		}
	}
}

func TestSysdlRunPolicies(t *testing.T) {
	for _, policy := range []string{"compatible", "static", "fcfs", "lifo", "random", "adversarial"} {
		opts := DefaultSysdlOptions()
		opts.Policy = policy
		opts.Queues = 3
		opts.Capacity = 2
		opts.Force = true
		var b strings.Builder
		code, err := Sysdl(&b, "run", sampleDSL, opts)
		if err != nil || code != 0 {
			t.Fatalf("policy %s: code=%d err=%v\n%s", policy, code, err, b.String())
		}
	}
}

func TestSysdlRunTimeline(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.Timeline = true
	var b strings.Builder
	code, err := Sysdl(&b, "run", sampleDSL, opts)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(b.String(), "bound to") {
		t.Fatalf("timeline missing:\n%s", b.String())
	}
}

func TestSysdlRunStats(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.Stats = true
	var b strings.Builder
	code, err := Sysdl(&b, "run", sampleDSL, opts)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(b.String(), "max-occ") {
		t.Fatalf("stats missing:\n%s", b.String())
	}
}

// TestSysdlRunFault: `sysdl run -fault` degrades the array, completes
// anyway for periodic faults, and reports the active faults, the gated
// operation count, and the surviving Theorem 1 budgets.
func TestSysdlRunFault(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.Fault = "cell:1:slow=2,link:0:slow=3@4"
	var b strings.Builder
	code, err := Sysdl(&b, "run", sampleDSL, opts)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"outcome: completed",
		"faults:",
		"cell:1:slow=2",
		"gated ops:",
		"impact cell:1:slow=2 (slow-cell): guarantee-holds=true",
		"impact link:0:slow=3@4 (degraded-link): guarantee-holds=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("faulted run output missing %q:\n%s", want, out)
		}
	}
}

// TestSysdlRunFaultNoop: a factor-1 plan is byte-identical to no
// -fault flag at all — no faults section, same run report.
func TestSysdlRunFaultNoop(t *testing.T) {
	var clean, noop strings.Builder
	if code, err := Sysdl(&clean, "run", sampleDSL, DefaultSysdlOptions()); err != nil || code != 0 {
		t.Fatalf("clean run: code=%d err=%v", code, err)
	}
	opts := DefaultSysdlOptions()
	opts.Fault = "cell:0:slow=1"
	if code, err := Sysdl(&noop, "run", sampleDSL, opts); err != nil || code != 0 {
		t.Fatalf("noop-faulted run: code=%d err=%v", code, err)
	}
	if clean.String() != noop.String() {
		t.Fatalf("factor-1 plan changed the output:\n%s\nvs\n%s", clean.String(), noop.String())
	}
}

// TestSysdlRunFaultBadSpec: malformed and ill-fitting specs are usage
// errors, not runs.
func TestSysdlRunFaultBadSpec(t *testing.T) {
	for _, spec := range []string{"cell:0:frobnicate", "link:0:dead", "gpu:0:slow=2"} {
		opts := DefaultSysdlOptions()
		opts.Fault = spec
		var b strings.Builder
		if code, err := Sysdl(&b, "run", sampleDSL, opts); err == nil || code != 2 {
			t.Errorf("spec %q: code=%d err=%v, want usage error", spec, code, err)
		}
	}
	// Well-formed specs naming elements the program does not have are
	// execution-layer errors (exit 1), surfaced by Execute's validation.
	for _, spec := range []string{"cell:99:dead", "cell:-1:dead"} {
		opts := DefaultSysdlOptions()
		opts.Fault = spec
		var b strings.Builder
		if code, err := Sysdl(&b, "run", sampleDSL, opts); err == nil || code != 1 {
			t.Errorf("spec %q: code=%d err=%v, want exec error", spec, code, err)
		}
	}
}

func TestSysdlErrors(t *testing.T) {
	var b strings.Builder
	if code, err := Sysdl(&b, "run", "bogus", DefaultSysdlOptions()); err == nil || code == 0 {
		t.Fatal("parse error not reported")
	}
	if code, err := Sysdl(&b, "frobnicate", sampleDSL, DefaultSysdlOptions()); err == nil || code != 2 {
		t.Fatal("unknown subcommand not reported")
	}
	opts := DefaultSysdlOptions()
	opts.Policy = "bogus"
	if code, err := Sysdl(&b, "run", sampleDSL, opts); err == nil || code != 2 {
		t.Fatal("unknown policy not reported")
	}
}

func TestParsePolicy(t *testing.T) {
	kinds := map[string]systolic.PolicyKind{
		"compatible":  systolic.DynamicCompatible,
		"static":      systolic.StaticAssignment,
		"fcfs":        systolic.NaiveFCFS,
		"lifo":        systolic.NaiveLIFO,
		"random":      systolic.NaiveRandom,
		"adversarial": systolic.NaiveAdversarial,
	}
	for name, want := range kinds {
		got, err := ParsePolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
}

// TestStartProfilesWritesFiles runs a command bracketed by the
// profiling helper and checks both pprof files appear and are
// non-empty.
func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultSysdlOptions()
	opts.CPUProfile = filepath.Join(dir, "cpu.out")
	opts.MemProfile = filepath.Join(dir, "mem.out")
	stop, err := StartProfiles(opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if code, err := Sysdl(&buf, "plan", sampleDSL, opts); err != nil || code != 0 {
		t.Fatalf("plan: code=%d err=%v", code, err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{opts.CPUProfile, opts.MemProfile} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
}

// TestStartProfilesNoop: with both flags empty the helper must not
// create anything and stop must succeed.
func TestStartProfilesNoop(t *testing.T) {
	stop, err := StartProfiles(DefaultSysdlOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
