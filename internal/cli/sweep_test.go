package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSysdlSweep runs the sweep verb over the shipped Fig 7 file: the
// table must show FCFS deadlocking somewhere and the compatible policy
// completing every swept configuration at some budget.
func TestSysdlSweep(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "dsl", "fig7.sys"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	code, err := Sysdl(&b, "sweep", string(src), DefaultSysdlOptions())
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"sweeping 48 configurations",
		"deadlocked",
		"dynamic-compatible completes every swept configuration",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}

// TestSysdlSweepFlags checks custom axes and the flag error paths.
func TestSysdlSweepFlags(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "dsl", "fig6.sys"))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSysdlOptions()
	opts.SweepPolicies = "fcfs,compatible"
	opts.SweepQueues = "1,2"
	opts.SweepCapacities = "1"
	opts.SweepLookaheads = "0"
	opts.Workers = 2
	var b strings.Builder
	code, err := Sysdl(&b, "sweep", string(src), opts)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
	}
	if !strings.Contains(b.String(), "sweeping 4 configurations") {
		t.Fatalf("custom grid not honored:\n%s", b.String())
	}

	opts.SweepQueues = "one"
	if code, err := Sysdl(&b, "sweep", string(src), opts); err == nil || code != 2 {
		t.Fatal("bad -sweep-queues accepted")
	}
	opts.SweepQueues = "1"
	opts.SweepPolicies = "bogus"
	if code, err := Sysdl(&b, "sweep", string(src), opts); err == nil || code != 2 {
		t.Fatal("bad -sweep-policies accepted")
	}
}

// TestSysdlSweepFault: `sysdl sweep -fault` degrades every grid point;
// a periodic plan only delays, so the compatible policy still
// completes its swept configurations, and a malformed spec is a usage
// error.
func TestSysdlSweepFault(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "dsl", "fig6.sys"))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSysdlOptions()
	opts.SweepPolicies = "compatible"
	opts.SweepQueues = "0,2"
	opts.SweepCapacities = "1"
	opts.SweepLookaheads = "0"
	opts.Fault = "cell:0:slow=2"
	var b strings.Builder
	code, err := Sysdl(&b, "sweep", string(src), opts)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
	}
	if !strings.Contains(b.String(), "dynamic-compatible completes every swept configuration") {
		t.Fatalf("periodic fault broke the completion guarantee:\n%s", b.String())
	}

	opts.Fault = "cell:0:melted"
	if code, err := Sysdl(&b, "sweep", string(src), opts); err == nil || code != 2 {
		t.Fatal("bad -fault spec accepted")
	}
}
