package cli

import (
	"context"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// lockedBuf is a concurrency-safe writer the daemon logs into while
// the test polls it.
type lockedBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// TestServeVerbLifecycle boots the daemon on an ephemeral port, waits
// for the listen line, hits /v1/stats over real HTTP, cancels the
// context (the SIGINT path), and expects a clean exit.
func TestServeVerbLifecycle(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.Addr = "127.0.0.1:0"

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out lockedBuf
	done := make(chan struct {
		code int
		err  error
	}, 1)
	go func() {
		code, err := Serve(ctx, &out, opts)
		done <- struct {
			code int
			err  error
		}{code, err}
	}()

	urlRe := regexp.MustCompile(`listening on (http://[^ ]+)`)
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; log so far: %q", out.String())
		}
		if m := urlRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatalf("GET /v1/stats: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", resp.StatusCode)
	}

	cancel()
	select {
	case r := <-done:
		if r.err != nil || r.code != 0 {
			t.Fatalf("serve exit: code %d err %v", r.code, r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "shut down") {
		t.Fatalf("no shutdown line in log: %q", out.String())
	}
}
