package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"systolic"
)

// SysdlOptions are the flags of the sysdl tool.
type SysdlOptions struct {
	Queues    int
	Capacity  int
	Policy    string
	Seed      int64
	Lookahead bool
	Timeline  bool
	Stats     bool
	Force     bool

	// Fault is a fault-plan spec (see systolic.ParseFaultSpec) the run
	// and sweep verbs apply to every simulation, and the fuzz verb
	// applies to every scenario it fits. Empty runs the perfect array.
	Fault string

	// LinkModel is a link-timing spec (see systolic.ParseLinkModelSpec)
	// the run verb applies to the simulation. Empty keeps unit-latency
	// links.
	LinkModel string

	// sweep-verb flags: comma-separated axis values ("" = defaults)
	// and the worker-pool bound (0 = GOMAXPROCS). Workers doubles as
	// the run verb's intra-run shard count (deterministic: every
	// count produces byte-identical output).
	SweepPolicies   string
	SweepQueues     string
	SweepCapacities string
	SweepLookaheads string
	// SweepLinkModels is the link-timing axis, semicolon-separated
	// (specs contain commas); an empty element is unit latency.
	SweepLinkModels string
	Workers         int

	// fuzz-verb flags: scenario count and generation knobs. The fuzz
	// verb also reuses -seed (base seed), -queues (> 0 forces an
	// absolute under-budget probe) and -workers; -run-workers N > 1
	// additionally cross-checks every simulation against a sharded
	// re-run (the parallel-equivalence oracle).
	FuzzN          int
	FuzzMutations  int
	FuzzCyclic     bool
	FuzzCells      int
	FuzzInterleave int
	FuzzTopology   string
	FuzzLookahead  int
	FuzzFaults     bool
	FuzzLinkModels bool
	RunWorkers     int

	// serve-verb flags: listen address, compiled-scenario cache bound,
	// the process-wide concurrent-simulation budget, the bounded
	// admission wait pool (0 = 2×max-concurrency, -1 = shed
	// immediately), and an optional tenants file enabling per-tenant
	// API keys and quotas.
	Addr           string
	CacheSize      int
	MaxConcurrency int
	QueueWait      int
	TenantsFile    string

	// Profiling flags, usable with every verb: write a pprof CPU or
	// heap profile covering the whole command (see StartProfiles).
	CPUProfile string
	MemProfile string
}

// DefaultSysdlOptions returns the tool's flag defaults.
func DefaultSysdlOptions() SysdlOptions {
	return SysdlOptions{
		Capacity: 1, Policy: "compatible", Seed: 1, FuzzN: 256, FuzzMutations: 2,
		Addr: "127.0.0.1:8080", CacheSize: 128,
	}
}

// BindFlags registers the options on a FlagSet.
func (o *SysdlOptions) BindFlags(fs *flag.FlagSet) {
	fs.IntVar(&o.Queues, "queues", o.Queues, "queues per link (0 = minimum from analysis)")
	fs.IntVar(&o.Capacity, "capacity", o.Capacity, "words per queue (0 = unbuffered latch)")
	fs.StringVar(&o.Policy, "policy", o.Policy, "compatible|static|fcfs|lifo|random|adversarial")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "seed for the random policy")
	fs.BoolVar(&o.Lookahead, "lookahead", o.Lookahead, "classify/label with §8 lookahead")
	fs.BoolVar(&o.Timeline, "timeline", o.Timeline, "print queue bind/release timeline")
	fs.BoolVar(&o.Stats, "stats", o.Stats, "print per-queue statistics")
	fs.BoolVar(&o.Force, "force", o.Force, "run even when Theorem 1's queue requirement is unmet")
	fs.StringVar(&o.Fault, "fault", o.Fault, "run/sweep/fuzz: fault-plan spec, e.g. cell:1:slow=2,link:0:sever@9 (empty = perfect array)")
	fs.StringVar(&o.LinkModel, "link-model", o.LinkModel, "run: link-timing spec, e.g. fixed,delay=3 or congestion,delay=1,threshold=2,max=4 (empty = unit latency)")
	fs.StringVar(&o.SweepPolicies, "sweep-policies", o.SweepPolicies, "sweep: comma-separated policies (default fcfs,static,compatible)")
	fs.StringVar(&o.SweepQueues, "sweep-queues", o.SweepQueues, "sweep: comma-separated queue budgets, 0 = auto (default 0,1,2,3)")
	fs.StringVar(&o.SweepCapacities, "sweep-capacities", o.SweepCapacities, "sweep: comma-separated capacities (default 1,2)")
	fs.StringVar(&o.SweepLookaheads, "sweep-lookaheads", o.SweepLookaheads, "sweep: comma-separated lookahead budgets, 0 = strict (default 0,2)")
	fs.StringVar(&o.SweepLinkModels, "sweep-link-models", o.SweepLinkModels, "sweep: semicolon-separated link-timing specs, empty element = unit latency (default unit only)")
	fs.IntVar(&o.Workers, "workers", o.Workers, "run: intra-run shards (byte-identical output for any count); sweep/fuzz: worker-pool size (0 = GOMAXPROCS)")
	fs.IntVar(&o.FuzzN, "n", o.FuzzN, "fuzz: number of scenarios (seeds seed..seed+n-1)")
	fs.IntVar(&o.FuzzMutations, "fuzz-mutations", o.FuzzMutations, "fuzz: adjacent-op swaps per scenario (0 = deadlock-free by construction)")
	fs.BoolVar(&o.FuzzCyclic, "fuzz-cyclic", o.FuzzCyclic, "fuzz: allow cyclic data flow")
	fs.IntVar(&o.FuzzCells, "fuzz-cells", o.FuzzCells, "fuzz: cells per scenario (0 = per-seed random)")
	fs.IntVar(&o.FuzzInterleave, "fuzz-interleave", o.FuzzInterleave, "fuzz: interleave depth (0 = per-seed random)")
	fs.StringVar(&o.FuzzTopology, "fuzz-topology", o.FuzzTopology, "fuzz: auto|linear|ring|mesh")
	fs.IntVar(&o.FuzzLookahead, "fuzz-lookahead", o.FuzzLookahead, "fuzz: §8 analysis budget (0 = strict)")
	fs.BoolVar(&o.FuzzFaults, "faults", o.FuzzFaults, "fuzz: additionally check each scenario degraded by a seeded fault plan")
	fs.BoolVar(&o.FuzzLinkModels, "link-models", o.FuzzLinkModels, "fuzz: additionally check each scenario under retimed link models (noop-equivalence, completion, parallel equivalence)")
	fs.IntVar(&o.RunWorkers, "run-workers", o.RunWorkers, "sweep: shard each grid point across this many workers (limiter-bounded); fuzz: cross-check each simulation against a sharded re-run")
	fs.StringVar(&o.Addr, "addr", o.Addr, "serve: listen address")
	fs.IntVar(&o.CacheSize, "cache-size", o.CacheSize, "serve: compiled-scenario cache bound (entries)")
	fs.IntVar(&o.MaxConcurrency, "max-concurrency", o.MaxConcurrency, "serve: concurrent simulations (0 = GOMAXPROCS)")
	fs.IntVar(&o.QueueWait, "queue-wait", o.QueueWait, "serve: requests allowed to wait for a run slot before shedding with 429 (0 = 2x max-concurrency, -1 = none)")
	fs.StringVar(&o.TenantsFile, "tenants", o.TenantsFile, "serve: tenants JSON file enabling per-tenant API keys and quotas (empty = anonymous)")
	fs.StringVar(&o.CPUProfile, "cpuprofile", o.CPUProfile, "write a pprof CPU profile to this file")
	fs.StringVar(&o.MemProfile, "memprofile", o.MemProfile, "write a pprof heap profile to this file on exit")
}

// StartProfiles starts the profiling the options ask for and returns
// a stop function that must run exactly once before the process
// exits: it ends the CPU profile and writes the heap profile. With
// both flags empty it is a no-op. The profiles cover the entire
// command — parse, analysis, compile, and every simulated cycle — so
// `sysdl sweep big.sys -cpuprofile cpu.out` feeds straight into
// `go tool pprof`.
func StartProfiles(opts SysdlOptions) (stop func() error, err error) {
	var cpuFile *os.File
	if opts.CPUProfile != "" {
		cpuFile, err = os.Create(opts.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cli: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cli: -cpuprofile: %w", err)
			}
		}
		if opts.MemProfile != "" {
			f, err := os.Create(opts.MemProfile)
			if err != nil {
				return fmt.Errorf("cli: -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle live objects so the heap profile reflects retention
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("cli: -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// Sysdl executes one sysdl subcommand over DSL source text, writing
// human output to w. It returns the process exit code and an error for
// usage/config problems (already reflected in the exit code). The
// fuzz verb generates its own programs and ignores src.
func Sysdl(w io.Writer, cmd, src string, opts SysdlOptions) (int, error) {
	if cmd == "fuzz" {
		return Fuzz(w, opts)
	}
	p, topo, err := systolic.ParseDSL(src)
	if err != nil {
		return 1, err
	}
	switch cmd {
	case "check":
		strict := systolic.IsDeadlockFree(p)
		fmt.Fprintf(w, "strict crossing-off: deadlock-free=%v\n", strict)
		for _, b := range []int{1, 2, 4} {
			fmt.Fprintf(w, "lookahead (budget %d): deadlock-free=%v\n",
				b, systolic.IsDeadlockFreeWithLookahead(p, b))
		}
		if !strict {
			for _, f := range systolic.SuggestFixes(p, 3) {
				fmt.Fprintf(w, "hint: %s\n", systolic.DescribeFix(p, f))
			}
			return 1, nil
		}
		return 0, nil
	case "label":
		a, code, err := sysdlAnalyze(w, p, topo, opts)
		if err != nil || code != 0 {
			return code, err
		}
		fmt.Fprint(w, systolic.RenderLabels(p, a.Labeling))
		return 0, nil
	case "plan":
		a, code, err := sysdlAnalyze(w, p, topo, opts)
		if err != nil || code != 0 {
			return code, err
		}
		fmt.Fprintf(w, "deadlock-free: %v\n", a.DeadlockFree)
		fmt.Fprintf(w, "queues/link needed, dynamic compatible policy: %d\n", a.MinQueuesDynamic)
		fmt.Fprintf(w, "queues/link needed, static policy:             %d\n", a.MinQueuesStatic)
		return 0, nil
	case "run":
		a, code, err := sysdlAnalyze(w, p, topo, opts)
		if err != nil || code != 0 {
			return code, err
		}
		kind, err := ParsePolicy(opts.Policy)
		if err != nil {
			return 2, err
		}
		plan, err := systolic.ParseFaultSpec(opts.Fault)
		if err != nil {
			return 2, err
		}
		var lplan *systolic.LinkModelPlan
		if opts.LinkModel != "" {
			lplan, err = systolic.ParseLinkModelSpec(opts.LinkModel)
			if err != nil {
				return 2, err
			}
		}
		res, err := systolic.Execute(a, systolic.ExecOptions{
			Policy:         kind,
			QueuesPerLink:  opts.Queues,
			Capacity:       opts.Capacity,
			Seed:           opts.Seed,
			RecordTimeline: opts.Timeline,
			Force:          opts.Force,
			Workers:        opts.Workers,
			Faults:         plan,
			LinkModel:      lplan,
		})
		if err != nil {
			return 1, err
		}
		fmt.Fprint(w, systolic.RenderRun(p, res))
		if len(res.Faults) > 0 {
			fmt.Fprintln(w, "faults:")
			for _, f := range res.Faults {
				fmt.Fprintf(w, "  %s\n", f)
			}
			fmt.Fprintf(w, "gated ops: %d\n", res.Stats.GatedOps)
			for _, imp := range systolic.DegradedBudgets(a, plan) {
				fmt.Fprintf(w, "impact %s (%s): guarantee-holds=%v affected-messages=%d queues dynamic=%d static=%d\n",
					imp.Fault, imp.Class, imp.GuaranteeHolds, len(imp.AffectedMessages), imp.MinQueuesDynamic, imp.MinQueuesStatic)
			}
		}
		if li := systolic.LinkBudgets(a, lplan); li != nil {
			fmt.Fprintf(w, "link model %s: guarantee-holds=%v max-stretch=%d affected-messages=%d queues dynamic=%d static=%d\n",
				li.Model, li.GuaranteeHolds, li.MaxFactor, len(li.AffectedMessages), li.MinQueuesDynamic, li.MinQueuesStatic)
		}
		if opts.Timeline {
			fmt.Fprint(w, systolic.RenderTimeline(p, topo, res))
		}
		if opts.Stats {
			fmt.Fprint(w, systolic.RenderQueueStats(p, topo, res))
		}
		if !res.Completed {
			return 1, nil
		}
		return 0, nil
	case "render":
		fmt.Fprint(w, systolic.RenderProgram(p))
		s, err := systolic.RenderQueueSequences(p, topo)
		if err != nil {
			return 1, err
		}
		fmt.Fprintln(w, "\nroutes:")
		fmt.Fprint(w, s)
		return 0, nil
	case "sweep":
		axes, err := sweepAxes(opts)
		if err != nil {
			return 2, err
		}
		plan, err := systolic.ParseFaultSpec(opts.Fault)
		if err != nil {
			return 2, err
		}
		cases := []systolic.SweepCase{{Name: "program", Program: p, Topology: topo}}
		rep, err := systolic.Sweep(context.Background(), cases, axes,
			systolic.SweepOptions{Workers: opts.Workers, RunWorkers: opts.RunWorkers, Faults: plan})
		if err != nil {
			return 1, err
		}
		fmt.Fprintf(w, "sweeping %d configurations\n\n", len(rep.Outcomes))
		fmt.Fprint(w, rep.Table())
		return 0, nil
	}
	return 2, fmt.Errorf("cli: unknown subcommand %q", cmd)
}

// Fuzz runs the differential oracle: n generated scenarios checked
// against the paper's invariants across a worker pool. The report is
// byte-identical across runs for fixed flags. Exit code 1 means the
// oracle found invariant violations; expected under-budget
// counterexamples (when -queues forces a budget below the Theorem 1
// bound) keep exit code 0.
func Fuzz(w io.Writer, opts SysdlOptions) (int, error) {
	topo, err := parseGenTopology(opts.FuzzTopology)
	if err != nil {
		return 2, err
	}
	if opts.FuzzN < 1 {
		return 2, fmt.Errorf("cli: -n %d < 1", opts.FuzzN)
	}
	plan, err := systolic.ParseFaultSpec(opts.Fault)
	if err != nil {
		return 2, err
	}
	dopts := systolic.DiffOptions{
		Gen: systolic.GenOptions{
			Cells:      opts.FuzzCells,
			Interleave: opts.FuzzInterleave,
			Mutations:  opts.FuzzMutations,
			Cyclic:     opts.FuzzCyclic,
			Topology:   topo,
		},
		QueueOverride: opts.Queues,
		Lookahead:     opts.FuzzLookahead,
		Workers:       opts.Workers,
		RunWorkers:    opts.RunWorkers,
		Faults:        plan,
		SeedFaults:    opts.FuzzFaults,
		LinkModels:    opts.FuzzLinkModels,
	}
	// Bad generation knobs (e.g. -fuzz-cells 1) fail for every seed
	// identically: catch them once up front as a usage error instead
	// of reporting n generate-error "violations".
	if _, err := systolic.GenerateProgram(opts.Seed, dopts.Gen); err != nil {
		return 2, err
	}
	rep, err := systolic.DiffRun(context.Background(), opts.FuzzN, opts.Seed, dopts)
	if err != nil {
		return 1, err
	}
	fmt.Fprint(w, rep.Summary())
	if len(rep.Violations()) > 0 {
		return 1, nil
	}
	return 0, nil
}

// parseGenTopology maps the -fuzz-topology flag value onto a
// generation family.
func parseGenTopology(name string) (systolic.GenTopoKind, error) {
	switch name {
	case "", "auto":
		return systolic.GenTopoAuto, nil
	case "linear":
		return systolic.GenTopoLinear, nil
	case "ring":
		return systolic.GenTopoRing, nil
	case "mesh":
		return systolic.GenTopoMesh, nil
	}
	return 0, fmt.Errorf("cli: unknown fuzz topology %q", name)
}

// sweepAxes builds the sweep grid from the comma-separated flag
// values; empty flags keep the engine defaults.
func sweepAxes(opts SysdlOptions) (systolic.SweepAxes, error) {
	axes := systolic.SweepAxes{Seed: opts.Seed}
	if opts.SweepPolicies != "" {
		for _, name := range strings.Split(opts.SweepPolicies, ",") {
			kind, err := ParsePolicy(strings.TrimSpace(name))
			if err != nil {
				return axes, err
			}
			axes.Policies = append(axes.Policies, kind)
		}
	}
	var err error
	if axes.Queues, err = parseIntList(opts.SweepQueues, "sweep-queues"); err != nil {
		return axes, err
	}
	if axes.Capacities, err = parseIntList(opts.SweepCapacities, "sweep-capacities"); err != nil {
		return axes, err
	}
	if axes.Lookaheads, err = parseIntList(opts.SweepLookaheads, "sweep-lookaheads"); err != nil {
		return axes, err
	}
	// Link-model specs contain commas, so the axis splits on
	// semicolons; a lone empty flag keeps the engine default (unit
	// only), and an empty element inside a list is the unit row.
	if opts.SweepLinkModels != "" {
		for _, spec := range strings.Split(opts.SweepLinkModels, ";") {
			axes.LinkModels = append(axes.LinkModels, strings.TrimSpace(spec))
		}
	}
	return axes, nil
}

func parseIntList(s, flagName string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("cli: bad -%s value %q", flagName, f)
		}
		out = append(out, n)
	}
	return out, nil
}

func sysdlAnalyze(w io.Writer, p *systolic.Program, topo systolic.Topology, opts SysdlOptions) (*systolic.Analysis, int, error) {
	a, err := systolic.Analyze(p, topo, systolic.AnalyzeOptions{
		Lookahead: opts.Lookahead,
		Capacity:  opts.Capacity,
	})
	if err != nil {
		return nil, 1, err
	}
	if !a.DeadlockFree {
		fmt.Fprintln(w, "program is not deadlock-free (try -lookahead, or fix the program)")
		return nil, 1, nil
	}
	return a, 0, nil
}

// ParsePolicy maps a policy flag value to a PolicyKind. It shares the
// serving layer's spelling (see systolic.ParsePolicyName).
func ParsePolicy(name string) (systolic.PolicyKind, error) {
	kind, err := systolic.ParsePolicyName(name)
	if err != nil {
		return 0, fmt.Errorf("cli: unknown policy %q", name)
	}
	return kind, nil
}
