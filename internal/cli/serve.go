package cli

import (
	"context"
	"io"

	"systolic"
)

// Serve runs the sysdl serve verb: the HTTP simulation daemon, until
// ctx is cancelled (the main wires SIGINT/SIGTERM into ctx, so ^C is
// a graceful shutdown). Log output goes to w.
func Serve(ctx context.Context, w io.Writer, opts SysdlOptions) (int, error) {
	err := systolic.Serve(ctx, systolic.ServeOptions{
		Addr:           opts.Addr,
		CacheSize:      opts.CacheSize,
		MaxConcurrency: opts.MaxConcurrency,
		QueueWait:      opts.QueueWait,
		TenantsFile:    opts.TenantsFile,
		Log:            w,
	})
	if err != nil {
		return 1, err
	}
	return 0, nil
}
