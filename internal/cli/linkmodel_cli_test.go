package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSysdlRunLinkModel: `sysdl run -link-model` retimes the
// interconnect, completes anyway (every shipped model is delay-only),
// and reports the model's Theorem 1 impact.
func TestSysdlRunLinkModel(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.LinkModel = "fixed,delay=3"
	var b strings.Builder
	code, err := Sysdl(&b, "run", sampleDSL, opts)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"outcome: completed",
		"link model fixed,delay=3: guarantee-holds=true max-stretch=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("retimed run output missing %q:\n%s", want, out)
		}
	}
}

// TestSysdlRunLinkModelNoop: a delay-1 fixed plan is byte-identical
// to no -link-model flag at all — no link-model section, same report.
func TestSysdlRunLinkModelNoop(t *testing.T) {
	var clean, noop strings.Builder
	if code, err := Sysdl(&clean, "run", sampleDSL, DefaultSysdlOptions()); err != nil || code != 0 {
		t.Fatalf("clean run: code=%d err=%v", code, err)
	}
	opts := DefaultSysdlOptions()
	opts.LinkModel = "fixed,delay=1"
	if code, err := Sysdl(&noop, "run", sampleDSL, opts); err != nil || code != 0 {
		t.Fatalf("unit-model run: code=%d err=%v", code, err)
	}
	if clean.String() != noop.String() {
		t.Fatalf("delay-1 model changed the output:\n%s\nvs\n%s", clean.String(), noop.String())
	}
}

// TestSysdlRunLinkModelBadSpec: malformed specs are usage errors, not
// runs.
func TestSysdlRunLinkModelBadSpec(t *testing.T) {
	for _, spec := range []string{"fixed,delay=nope", "warp9", "fixed,delay=2,delay=3"} {
		opts := DefaultSysdlOptions()
		opts.LinkModel = spec
		var b strings.Builder
		if code, err := Sysdl(&b, "run", sampleDSL, opts); err == nil || code != 2 {
			t.Errorf("spec %q: code=%d err=%v, want usage error", spec, code, err)
		}
	}
}

// TestSysdlSweepLinkModels: the -sweep-link-models axis multiplies the
// grid and names each model in the table.
func TestSysdlSweepLinkModels(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "examples", "dsl", "fig7.sys"))
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultSysdlOptions()
	opts.SweepPolicies = "compatible"
	opts.SweepQueues = "2"
	opts.SweepCapacities = "1"
	opts.SweepLookaheads = "0"
	opts.SweepLinkModels = ";fixed,delay=3"
	var b strings.Builder
	code, err := Sysdl(&b, "sweep", string(src), opts)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, b.String())
	}
	out := b.String()
	for _, want := range []string{
		"sweeping 2 configurations",
		"link-model",
		"unit",
		"fixed,delay=3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}

	opts.SweepLinkModels = "fixed,delay=oops"
	var bad strings.Builder
	if code, _ := Sysdl(&bad, "sweep", string(src), opts); code == 0 {
		t.Error("malformed -sweep-link-models spec accepted")
	}
}

// TestSysdlFuzzLinkModels: `sysdl fuzz -link-models` runs the
// link-timing invariants over a small batch without violations, and
// runs more simulations than a plain fuzz of the same width.
func TestSysdlFuzzLinkModels(t *testing.T) {
	base := DefaultSysdlOptions()
	base.FuzzN = 12
	var clean strings.Builder
	if code, err := Fuzz(&clean, base); err != nil || code != 0 {
		t.Fatalf("clean fuzz: code=%d err=%v\n%s", code, err, clean.String())
	}
	retimed := base
	retimed.FuzzLinkModels = true
	var b strings.Builder
	if code, err := Fuzz(&b, retimed); err != nil || code != 0 {
		t.Fatalf("link-model fuzz: code=%d err=%v\n%s", code, err, b.String())
	}
	if strings.Contains(b.String(), "VIOLATION") {
		t.Fatalf("link-model fuzz reported violations:\n%s", b.String())
	}
}
