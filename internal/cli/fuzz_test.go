package cli

import (
	"strings"
	"testing"
)

// TestFuzzVerb: the fuzz verb needs no source text, reports zero
// violations on the shipped analyzer, and renders byte-identically
// across invocations and worker counts.
func TestFuzzVerb(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.FuzzN = 60

	var first string
	for _, workers := range []int{1, 0} {
		o := opts
		o.Workers = workers
		var b strings.Builder
		code, err := Sysdl(&b, "fuzz", "", o)
		if err != nil {
			t.Fatal(err)
		}
		if code != 0 {
			t.Fatalf("exit code %d, want 0\n%s", code, b.String())
		}
		out := b.String()
		if !strings.Contains(out, "invariant violations: 0") {
			t.Fatalf("oracle reported violations:\n%s", out)
		}
		if first == "" {
			first = out
		} else if out != first {
			t.Fatalf("fuzz output differs across worker counts:\n%s\nvs\n%s", first, out)
		}
	}
}

// TestFuzzVerbRunWorkers: -run-workers pairs every simulation with a
// sharded re-run; on the shipped runner that must add zero violations
// and leave the rendered report's verdict clean.
func TestFuzzVerbRunWorkers(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.FuzzN = 40
	opts.RunWorkers = 3

	var b strings.Builder
	code, err := Sysdl(&b, "fuzz", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, b.String())
	}
	if out := b.String(); !strings.Contains(out, "invariant violations: 0") {
		t.Fatalf("parallel-equivalence fuzz reported violations:\n%s", out)
	}
}

// TestFuzzVerbUnderBudget: forcing -queues 1 below the Theorem 1
// bound demonstrates the predicted deadlocks without flipping the
// exit code (they are expected counterexamples).
func TestFuzzVerbUnderBudget(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.FuzzN = 40
	opts.FuzzMutations = 0
	opts.Queues = 1

	var b strings.Builder
	code, err := Sysdl(&b, "fuzz", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, b.String())
	}
	out := b.String()
	if !strings.Contains(out, "under-budget-deadlock") {
		t.Fatalf("want an under-budget counterexample in:\n%s", out)
	}
	if !strings.Contains(out, "minimized program:") {
		t.Fatalf("want a minimized program in:\n%s", out)
	}
	if !strings.Contains(out, "invariant violations: 0") {
		t.Fatalf("under-budget probe must not report violations:\n%s", out)
	}
}

// TestFuzzVerbFaults: `sysdl fuzz -faults` seeds a degraded-array
// check per scenario; on the shipped runner that must stay violation-
// free. An explicit -fault spec rides along the same way.
func TestFuzzVerbFaults(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.FuzzN = 40
	opts.FuzzFaults = true

	var b strings.Builder
	code, err := Sysdl(&b, "fuzz", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, b.String())
	}
	if out := b.String(); !strings.Contains(out, "invariant violations: 0") {
		t.Fatalf("faulted fuzz reported violations:\n%s", out)
	}

	opts = DefaultSysdlOptions()
	opts.FuzzN = 30
	opts.Fault = "cell:0:slow=2"
	b.Reset()
	code, err = Sysdl(&b, "fuzz", "", opts)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("explicit-plan fuzz: exit code %d\n%s", code, b.String())
	}
	if out := b.String(); !strings.Contains(out, "invariant violations: 0") {
		t.Fatalf("explicit-plan fuzz reported violations:\n%s", out)
	}
}

// TestFuzzVerbBadFaultSpec: a malformed -fault spec is a usage error.
func TestFuzzVerbBadFaultSpec(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.Fault = "cell:0:melted"
	var b strings.Builder
	if code, err := Sysdl(&b, "fuzz", "", opts); err == nil || code != 2 {
		t.Fatalf("code=%d err=%v, want usage error", code, err)
	}
}

// TestFuzzVerbBadTopology: unknown topology names are usage errors.
func TestFuzzVerbBadTopology(t *testing.T) {
	opts := DefaultSysdlOptions()
	opts.FuzzTopology = "torus"
	var b strings.Builder
	code, err := Sysdl(&b, "fuzz", "", opts)
	if err == nil || code != 2 {
		t.Fatalf("code=%d err=%v, want usage error", code, err)
	}
}
