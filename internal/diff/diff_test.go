package diff

import (
	"context"
	"strings"
	"testing"

	"systolic/internal/core"
	"systolic/internal/dsl"
	"systolic/internal/fault"
	"systolic/internal/gen"
	"systolic/internal/model"
	"systolic/internal/workload"
)

// TestCleanSweep: on the shipped analyzer, a batch of un-mutated,
// mutated, and cyclic scenarios must produce zero invariant
// violations — the differential statement of Theorem 1.
func TestCleanSweep(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"mutated", Options{Gen: gen.Options{Mutations: 3}}},
		{"cyclic", Options{Gen: gen.Options{Cyclic: true, Mutations: 2}}},
		{"lookahead", Options{Gen: gen.Options{Mutations: 4}, Lookahead: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(context.Background(), 300, 1, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations() {
				t.Errorf("%s", v)
			}
			if rep.N != 300 || len(rep.Results) != 300 {
				t.Fatalf("report sized %d/%d, want 300", rep.N, len(rep.Results))
			}
		})
	}
}

// TestFaultedSweep: with seeded fault plans the degraded-array
// invariants (noop-equivalence, degraded-completion, parallel
// equivalence under faults) must hold across a batch of scenarios —
// and the extra simulations must actually run.
func TestFaultedSweep(t *testing.T) {
	clean, err := Run(context.Background(), 120, 1, Options{Gen: gen.Options{Mutations: 2}})
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := Run(context.Background(), 120, 1, Options{Gen: gen.Options{Mutations: 2}, SeedFaults: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range faulted.Violations() {
		t.Errorf("faulted sweep: %s", v)
	}
	runs := func(r *Report) (n int) {
		for _, res := range r.Results {
			n += res.Runs
		}
		return n
	}
	if c, f := runs(clean), runs(faulted); f <= c {
		t.Fatalf("SeedFaults ran %d simulations over %d clean — the degraded checks never executed", f, c)
	}
}

// TestFaultedSweepExplicitPlan: an explicit plan is applied to every
// scenario it fits, including terminal faults, without violations.
func TestFaultedSweepExplicitPlan(t *testing.T) {
	plan, err := fault.ParseSpec("cell:1:slow=2,cell:0:dead@9")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), 80, 3, Options{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("explicit-plan sweep: %s", v)
	}
}

// TestDeterministicReport: the same batch must render byte-identically
// regardless of worker count (the acceptance bar for sysdl fuzz).
func TestDeterministicReport(t *testing.T) {
	opts := Options{Gen: gen.Options{Mutations: 2}, QueueOverride: 1}
	var first string
	for _, workers := range []int{1, 4} {
		o := opts
		o.Workers = workers
		rep, err := Run(context.Background(), 60, 7, o)
		if err != nil {
			t.Fatal(err)
		}
		s := rep.Summary()
		if first == "" {
			first = s
		} else if s != first {
			t.Fatalf("summary differs between worker counts:\n%s\nvs\n%s", first, s)
		}
	}
}

// TestParallelEquivalenceOracle: with RunWorkers set the oracle
// doubles every simulation with a sharded re-run and compares the two
// — zero violations on the shipped runner, and the run count must
// show the comparison actually happened.
func TestParallelEquivalenceOracle(t *testing.T) {
	single, err := Run(context.Background(), 60, 5, Options{Gen: gen.Options{Mutations: 1}})
	if err != nil {
		t.Fatal(err)
	}
	paired, err := Run(context.Background(), 60, 5, Options{Gen: gen.Options{Mutations: 1}, RunWorkers: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range paired.Violations() {
		t.Errorf("parallel-equivalence sweep: %s", v)
	}
	runs := func(r *Report) (n int) {
		for _, res := range r.Results {
			n += res.Runs
		}
		return n
	}
	if s, p := runs(single), runs(paired); p != 2*s {
		t.Fatalf("RunWorkers=3 executed %d simulations over %d single-threaded — every run must be paired with a sharded re-run", p, s)
	}
}

// TestUnderBudgetCounterexample: forcing queues below the Theorem 1
// bound must produce at least one reproducible, minimized, replayable
// counterexample — and no violations (the failures are expected).
func TestUnderBudgetCounterexample(t *testing.T) {
	opts := Options{QueueOverride: 1}
	rep, err := Run(context.Background(), 100, 1, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("unexpected violation: %s", v)
	}
	cexs := rep.Counterexamples()
	var deadlocks []Finding
	for _, f := range cexs {
		if f.Invariant == "under-budget-deadlock" {
			deadlocks = append(deadlocks, f)
		}
	}
	if len(deadlocks) == 0 {
		t.Fatal("want at least one under-budget deadlock counterexample")
	}

	f := deadlocks[0]
	// The counterexample replays: regenerate the scenario from its
	// seed and re-check — the same finding must reappear.
	sc, err := gen.Generate(f.Seed, opts.Gen)
	if err != nil {
		t.Fatal(err)
	}
	res := Check(sc, opts)
	replayed := false
	for _, g := range res.Findings {
		if g.Invariant == f.Invariant && g.Policy == f.Policy && g.Queues == f.Queues && g.Capacity == f.Capacity {
			replayed = true
			if g.Counterexample != f.Counterexample {
				t.Errorf("replay minimized differently:\n%s\nvs\n%s", f.Counterexample, g.Counterexample)
			}
		}
	}
	if !replayed {
		t.Fatalf("replay of seed %d did not reproduce the finding %+v", f.Seed, f)
	}

	// The minimized program must itself still exhibit the deadlock:
	// parse it back, analyze, run at the forced budget.
	file, err := dsl.Parse(f.Counterexample)
	if err != nil {
		t.Fatalf("counterexample is not valid DSL: %v\n%s", err, f.Counterexample)
	}
	a, err := core.Analyze(file.Program, file.Topology, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.DeadlockFree {
		t.Fatal("minimized counterexample no longer analyzer-approved")
	}
	kind := core.DynamicCompatible
	if f.Policy == core.StaticAssignment.String() {
		kind = core.StaticAssignment
	}
	r, err := core.Execute(a, core.ExecOptions{
		Policy: kind, QueuesPerLink: f.Queues, Capacity: f.Capacity, Force: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Deadlocked {
		t.Fatalf("minimized counterexample %s instead of deadlocking:\n%s", r.Outcome(), f.Counterexample)
	}
}

// TestCheckFigurePrograms: the oracle agrees with the hand-written
// figure analysis — Fig 7/8/9 are deadlock-free and pass every
// invariant at the Theorem 1 budget.
func TestCheckFigurePrograms(t *testing.T) {
	for _, w := range []*workload.Workload{
		workload.Fig7(workload.Fig7Options{}),
		workload.Fig8(),
		workload.Fig9(),
	} {
		sc := &gen.Scenario{Seed: -1, Program: w.Program, Topology: w.Topology, Name: w.Name}
		res := Check(sc, Options{})
		if !res.DeadlockFree {
			t.Errorf("%s: rejected by oracle analysis", w.Name)
		}
		for _, v := range res.Violations() {
			t.Errorf("%s: %s", w.Name, v)
		}
	}
}

// TestShrinkers: dropMessage and trimWord preserve validity and do
// what they say.
func TestShrinkers(t *testing.T) {
	sc, err := gen.Generate(11, gen.Options{Cells: 4, Messages: 3, MaxWords: 3, Topology: gen.TopoLinear})
	if err != nil {
		t.Fatal(err)
	}
	p := sc.Program
	q, err := dropMessage(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumMessages() != p.NumMessages()-1 {
		t.Errorf("dropMessage: %d messages, want %d", q.NumMessages(), p.NumMessages()-1)
	}
	for m := 0; m < p.NumMessages(); m++ {
		if p.Message(model.MessageID(m)).Words < 2 {
			continue
		}
		r, err := trimWord(p, model.MessageID(m))
		if err != nil {
			t.Fatalf("trimWord(%d): %v", m, err)
		}
		if got, want := r.Message(model.MessageID(m)).Words, p.Message(model.MessageID(m)).Words-1; got != want {
			t.Errorf("trimWord(%d): %d words, want %d", m, got, want)
		}
	}
}

// TestRunErrors: bad batch parameters are rejected.
func TestRunErrors(t *testing.T) {
	if _, err := Run(context.Background(), 0, 1, Options{}); err == nil {
		t.Error("Run(n=0): want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, 50, 1, Options{}); err == nil {
		t.Error("Run(cancelled ctx): want error")
	}
}

// TestSummaryMentionsCounts: the summary must surface the headline
// numbers a CI log reader needs.
func TestSummaryMentionsCounts(t *testing.T) {
	rep, err := Run(context.Background(), 20, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary()
	for _, want := range []string{"20 scenarios", "seeds 3..22", "invariant violations: 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

// TestLinkModelSweep: with the link-timing invariants enabled, a batch
// of scenarios must pass noop-equivalence, completion under both
// retimed models, and parallel equivalence — and the extra
// simulations must actually run. The 200-scenario width is the CI
// contract for sysdl fuzz -link-models.
func TestLinkModelSweep(t *testing.T) {
	clean, err := Run(context.Background(), 200, 1, Options{Gen: gen.Options{Mutations: 2}})
	if err != nil {
		t.Fatal(err)
	}
	retimed, err := Run(context.Background(), 200, 1, Options{Gen: gen.Options{Mutations: 2}, LinkModels: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range retimed.Violations() {
		t.Errorf("link-model sweep: %s", v)
	}
	runs := func(r *Report) (n int) {
		for _, res := range r.Results {
			n += res.Runs
		}
		return n
	}
	if c, f := runs(clean), runs(retimed); f <= c {
		t.Fatalf("LinkModels ran %d simulations over %d clean — the link-timing checks never executed", f, c)
	}
}

// TestLinkModelWithFaults: link models and seeded fault plans compose
// in one oracle pass without violations.
func TestLinkModelWithFaults(t *testing.T) {
	rep, err := Run(context.Background(), 80, 3, Options{Gen: gen.Options{Mutations: 2}, SeedFaults: true, LinkModels: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations() {
		t.Errorf("composed sweep: %s", v)
	}
}
