package diff

import (
	"testing"

	"systolic/internal/gen"
)

// FuzzOracle is the native fuzzing entry point: the input is a
// scenario seed plus the mutation knob, everything else derives from
// them deterministically. Any invariant violation the oracle reports
// is a crash, so `go test -fuzz=Fuzz ./internal/diff` turns the
// coverage-guided fuzzer loose on the analyzer/simulator agreement.
// The checked-in corpus under testdata/fuzz/FuzzOracle pins seeds
// covering every topology family, cyclic flow, and mutated (rejected)
// programs.
func FuzzOracle(f *testing.F) {
	f.Add(int64(1), uint8(0), false)
	f.Add(int64(17), uint8(3), false)
	f.Add(int64(23), uint8(1), true)
	f.Add(int64(404), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed int64, mutations uint8, cyclic bool) {
		opts := Options{Gen: gen.Options{
			Mutations: int(mutations % 8),
			Cyclic:    cyclic,
		}}
		sc, err := gen.Generate(seed, opts.Gen)
		if err != nil {
			t.Skip() // impossible knobs, not a finding
		}
		res := Check(sc, opts)
		for _, v := range res.Violations() {
			t.Fatalf("seed %d: %s", seed, v)
		}
	})
}
