package diff

import (
	"testing"

	"systolic/internal/gen"
	"systolic/internal/workload"
)

// fuzzScenario resolves the family knob: 0 is a random generated
// scenario, 1–4 are the operator-graph workload families (attention,
// stencil, FFT, pipelined sort) with sizes derived from the seed.
// Returns nil when the knobs are impossible (not a finding).
func fuzzScenario(seed int64, gopts gen.Options, family uint8) *gen.Scenario {
	mod := func(m uint64) int { return int(uint64(seed) % m) }
	var w *workload.Workload
	var err error
	switch family {
	case 1:
		w, err = workload.Attention(workload.AttentionOptions{
			Tokens:  2 + mod(9),
			Experts: 1 + mod(4),
		})
	case 2:
		w, err = workload.Stencil(workload.StencilOptions{
			Rows:  2 + mod(3),
			Cols:  2 + mod(4),
			Iters: 1 + mod(3),
		})
	case 3:
		w, err = workload.FFT(workload.FFTOptions{LogN: 1 + mod(4)})
	case 4:
		w, err = workload.PipelinedSort(workload.PipelinedSortOptions{
			Width:  2 + mod(10),
			Rounds: 1 + mod(6),
		})
	default:
		sc, gerr := gen.Generate(seed, gopts)
		if gerr != nil {
			return nil
		}
		return sc
	}
	if err != nil {
		return nil
	}
	return &gen.Scenario{Seed: seed, Program: w.Program, Topology: w.Topology, Name: w.Name}
}

// FuzzOracle is the native fuzzing entry point: the input is a
// scenario seed plus the mutation, family, and fault-class knobs;
// everything else derives from them deterministically. Any invariant
// violation the oracle reports is a crash, so `go test -fuzz=Fuzz
// ./internal/diff` turns the coverage-guided fuzzer loose on the
// analyzer/simulator agreement — including the degraded-array
// invariants when faultClass injects a seeded fault plan (1 =
// periodic-only slowdowns, 2 = terminal faults allowed). The
// checked-in corpus under testdata/fuzz/FuzzOracle pins seeds
// covering every topology family, cyclic flow, mutated (rejected)
// programs, every workload family, and every fault class.
func FuzzOracle(f *testing.F) {
	f.Add(int64(1), uint8(0), false, uint8(0), uint8(0))
	f.Add(int64(17), uint8(3), false, uint8(0), uint8(0))
	f.Add(int64(23), uint8(1), true, uint8(0), uint8(1))
	f.Add(int64(404), uint8(5), true, uint8(0), uint8(2))
	f.Add(int64(5), uint8(0), false, uint8(1), uint8(1))
	f.Add(int64(7), uint8(0), false, uint8(3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, mutations uint8, cyclic bool, family uint8, faultClass uint8) {
		opts := Options{Gen: gen.Options{
			Mutations: int(mutations % 8),
			Cyclic:    cyclic,
		}}
		sc := fuzzScenario(seed, opts.Gen, family%5)
		if sc == nil {
			t.Skip() // impossible knobs, not a finding
		}
		switch faultClass % 3 {
		case 1:
			opts.Faults = gen.RandomFaults(seed, sc.Program.NumCells(),
				len(sc.Topology.Links()), gen.FaultOptions{PeriodicOnly: true})
		case 2:
			opts.Faults = gen.RandomFaults(seed, sc.Program.NumCells(),
				len(sc.Topology.Links()), gen.FaultOptions{})
		}
		res := Check(sc, opts)
		for _, v := range res.Violations() {
			t.Fatalf("seed %d: %s", seed, v)
		}
	})
}
