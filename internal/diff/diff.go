// Package diff is the differential oracle that cross-checks Theorem 1
// against the simulator at scale. For each generated scenario
// (internal/gen) it runs the compile-time analysis, then executes the
// program under a matrix of policy × queue budget × capacity
// configurations, and asserts the paper's invariants:
//
//  1. a program the crossing-off test declares deadlock-free, run with
//     at least the Theorem 1 queue budget, never deadlocks in
//     simulation ("theorem1-completion");
//  2. static and dynamic compatible assignment deliver identical word
//     streams when both complete ("stream-equality"), and every
//     completed stream matches the synthetic per-word expectation
//     ("stream-integrity");
//  3. the §6 labeling the analyzer produced is consistent
//     ("label-consistency");
//  4. any simulated deadlock on an analyzer-approved configuration is
//     reported as a minimized counterexample carrying the seed that
//     reproduces it.
//
// Deliberately under-budgeted runs (queue override below the Theorem 1
// bound) are the control group: their deadlocks are *expected*
// counterexamples demonstrating the bound is load-bearing, reported
// with the same minimized-program machinery but not counted as
// violations.
//
// Reports are deterministic: scenario seeds derive from the base seed
// (seed+i), every result lands in its own slot (sweep.ForEach), and
// rendering is order-stable — byte-identical output for any worker
// count.
//
// Each scenario is analyzed once and its policy × budget × capacity
// matrix executes against the single machine compiled for that
// analysis (core.Analysis.Machine); shrinking re-analyzes only
// because every candidate is a different program, and even then each
// candidate's accept/reject simulations share one compile.
package diff

import (
	"context"
	"fmt"
	"reflect"
	"strings"

	"systolic/internal/core"
	"systolic/internal/dsl"
	"systolic/internal/fault"
	"systolic/internal/gen"
	"systolic/internal/label"
	"systolic/internal/linkmodel"
	"systolic/internal/model"
	"systolic/internal/queue"
	"systolic/internal/sim"
	"systolic/internal/sweep"
)

// Options configures the oracle.
type Options struct {
	// Gen are the scenario-generation knobs (zero = per-seed random).
	Gen gen.Options
	// Policies are the assignment disciplines to cross-check; default
	// dynamic-compatible and static (the two Theorem 1 covers).
	Policies []core.PolicyKind
	// Capacities are per-queue word capacities to run (≥ 1); default
	// {1, 2}.
	Capacities []int
	// Slacks are extra queues over the Theorem 1 minimum; default
	// {0, 1} (the bound exactly, and one above).
	Slacks []int
	// QueueOverride, when > 0, replaces the slack grid with one
	// absolute queues-per-link budget for every run — the deliberate
	// under-budget probe.
	QueueOverride int
	// Lookahead is the §8 analysis budget (0 = strict §3).
	Lookahead int
	// MaxCycles bounds each simulation (0 = simulator default).
	MaxCycles int
	// Workers bounds Run's pool (≤ 0 = GOMAXPROCS).
	Workers int
	// RunWorkers, when > 1, turns every simulation into a differential
	// pair: the oracle executes each configuration single-threaded and
	// again sharded across RunWorkers workers, and any byte-level
	// divergence between the two results is a "parallel-equivalence"
	// violation. This is the sysdl fuzz -run-workers knob.
	RunWorkers int
	// ShrinkBudget caps property evaluations spent minimizing one
	// counterexample (0 = 200).
	ShrinkBudget int
	// Faults, when non-nil, adds the degraded-array invariants to every
	// approved scenario: fault-noop-equivalence (an all-factor-1 plan is
	// byte-identical to no plan), degraded-completion (under the
	// periodic-only projection of the plan the run must still complete
	// — slowdowns delay, they never remove progress), and
	// fault-parallel-equivalence (the full plan, terminal faults
	// included, produces byte-identical results single-threaded and
	// sharded). Plans that do not fit a scenario's cell/link counts are
	// skipped for that scenario.
	Faults *fault.Plan
	// SeedFaults derives a per-scenario random fault plan
	// (gen.RandomFaults from the scenario seed) when Faults is nil —
	// the sysdl fuzz -faults knob.
	SeedFaults bool
	// LinkModels, when true, adds the link-timing invariants to every
	// approved scenario: linkmodel-noop-equivalence (a delay-1 fixed
	// plan is byte-identical to unit-latency execution),
	// linkmodel-completion (an analyzer-approved configuration still
	// completes under a fixed slowdown and under congestion
	// backpressure — every shipped model is delay-only, so retiming
	// stretches schedules but never removes progress), and
	// linkmodel-parallel-equivalence (each model produces
	// byte-identical results single-threaded and sharded). This is the
	// sysdl fuzz -link-models knob.
	LinkModels bool
}

func (o Options) withDefaults() Options {
	if len(o.Policies) == 0 {
		o.Policies = []core.PolicyKind{core.DynamicCompatible, core.StaticAssignment}
	}
	if len(o.Capacities) == 0 {
		// With lookahead the §8 classification assumes queues can
		// buffer the skipped writes, so the default capacities start
		// at the lookahead budget (rule R2's assumption met).
		if o.Lookahead > 1 {
			o.Capacities = []int{o.Lookahead, o.Lookahead + 1}
		} else {
			o.Capacities = []int{1, 2}
		}
	}
	if len(o.Slacks) == 0 {
		o.Slacks = []int{0, 1}
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 200
	}
	return o
}

// Finding is one oracle observation: an invariant violation, or (with
// Expected) an anticipated under-budget deadlock demonstrating that
// Theorem 1's bound is tight.
type Finding struct {
	// Seed regenerates the scenario (gen.Generate(Seed, opts.Gen)).
	Seed int64
	// Invariant names what was checked: "theorem1-completion",
	// "stream-equality", "stream-integrity", "label-consistency",
	// "under-budget-deadlock", "parallel-equivalence",
	// "analyze-error", "exec-error", "generate-error",
	// "fault-noop-equivalence", "degraded-completion",
	// "fault-parallel-equivalence", "fault-exec-error",
	// "fault-spec-roundtrip",
	// "linkmodel-noop-equivalence", "linkmodel-completion",
	// "linkmodel-parallel-equivalence", "linkmodel-exec-error".
	Invariant string
	// Expected marks anticipated findings (under-budget deadlocks);
	// everything else is a violation.
	Expected bool
	// Policy, Queues, MinQueues, Capacity identify the configuration.
	Policy    string
	Queues    int
	MinQueues int
	Capacity  int
	// Detail is a human-readable account (outcome, blocked cells, …).
	Detail string
	// Counterexample is the minimized program + topology in DSL form,
	// replayable with sysdl; empty when not applicable.
	Counterexample string
}

// String renders one finding, deterministically.
func (f Finding) String() string {
	var b strings.Builder
	kind := "VIOLATION"
	if f.Expected {
		kind = "counterexample"
	}
	fmt.Fprintf(&b, "%s seed=%d invariant=%s", kind, f.Seed, f.Invariant)
	if f.Policy != "" {
		fmt.Fprintf(&b, " policy=%s queues=%d (min %d) capacity=%d", f.Policy, f.Queues, f.MinQueues, f.Capacity)
	}
	fmt.Fprintf(&b, ": %s", f.Detail)
	if f.Counterexample != "" {
		b.WriteString("\n  minimized program:\n")
		for _, line := range strings.Split(strings.TrimRight(f.Counterexample, "\n"), "\n") {
			b.WriteString("    " + line + "\n")
		}
	}
	return b.String()
}

// Result is the oracle's verdict on one scenario.
type Result struct {
	Seed         int64
	Name         string
	DeadlockFree bool
	MinDynamic   int
	MinStatic    int
	// Runs counts simulations; Completed those that finished.
	Runs      int
	Completed int
	Findings  []Finding
}

// Violations returns the unexpected findings.
func (r Result) Violations() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Expected {
			out = append(out, f)
		}
	}
	return out
}

// Check runs the full oracle on one scenario.
func Check(sc *gen.Scenario, opts Options) Result {
	opts = opts.withDefaults()
	res := Result{Seed: sc.Seed, Name: sc.Name}
	fail := func(f Finding) {
		f.Seed = sc.Seed
		res.Findings = append(res.Findings, f)
	}

	a, err := core.Analyze(sc.Program, sc.Topology, analyzeOptions(opts))
	if err != nil {
		fail(Finding{Invariant: "analyze-error", Detail: err.Error()})
		return res
	}
	res.DeadlockFree = a.DeadlockFree
	if !a.DeadlockFree {
		// The analyzer rejected the program: Theorem 1 promises
		// nothing, so there is nothing to cross-check.
		return res
	}
	res.MinDynamic, res.MinStatic = a.MinQueuesDynamic, a.MinQueuesStatic

	// Invariant 3: the labeling must be consistent (§6) — checked
	// here independently of core.Analyze's internal verification.
	if err := label.Check(sc.Program, a.Labeling.ByMessage); err != nil {
		fail(Finding{Invariant: "label-consistency", Detail: err.Error()})
	}
	if err := label.CheckDense(sc.Program, a.Labeling.Dense); err != nil {
		fail(Finding{Invariant: "label-consistency", Detail: "dense ranks: " + err.Error()})
	}

	// Minimization runs up to ShrinkBudget analyze+execute cycles per
	// finding, and Summary renders only a handful — so expected
	// under-budget findings are minimized for the first few per
	// scenario and merely recorded beyond that. Violations (the
	// findings that matter) are always minimized.
	expectedMinimized := 0
	const maxExpectedMinimized = 2

	for _, capacity := range opts.Capacities {
		// The first completed run at this capacity is the reference
		// stream every other completed run must reproduce
		// (invariant 2, strengthened across budgets).
		var refStream [][]sim.Word
		var refConfig string
		for _, pol := range opts.Policies {
			min := a.MinQueues(pol)
			var budgets []int
			if opts.QueueOverride > 0 {
				budgets = []int{opts.QueueOverride}
			} else {
				for _, s := range opts.Slacks {
					q := min + s
					if q < 1 {
						q = 1
					}
					budgets = append(budgets, q)
				}
			}
			for _, q := range budgets {
				r, err := core.Execute(a, core.ExecOptions{
					Policy:        pol,
					QueuesPerLink: q,
					Capacity:      capacity,
					MaxCycles:     opts.MaxCycles,
					Force:         true, // observe under-budget deadlocks instead of refusing
				})
				res.Runs++
				cfg := Finding{Policy: pol.String(), Queues: q, MinQueues: min, Capacity: capacity}
				if err != nil {
					if q < min {
						// Below the bound a policy may cleanly refuse
						// to set up at all (static assignment needs a
						// queue per competing message) — that is the
						// bound enforced, not an oracle violation.
						cfg.Invariant = "under-budget-refusal"
						cfg.Expected = true
					} else {
						cfg.Invariant = "exec-error"
					}
					cfg.Detail = err.Error()
					fail(cfg)
					continue
				}
				// Parallel-equivalence: with a run-worker count set,
				// every simulation is executed a second time, sharded,
				// and must reproduce the single-threaded result byte
				// for byte (the Theorem 1 oracle doubling as the
				// determinism oracle for machine.RunParallel).
				if opts.RunWorkers > 1 {
					rp, perr := core.Execute(a, core.ExecOptions{
						Policy:        pol,
						QueuesPerLink: q,
						Capacity:      capacity,
						MaxCycles:     opts.MaxCycles,
						Workers:       opts.RunWorkers,
						Force:         true,
					})
					res.Runs++
					if perr == nil && rp.Completed {
						res.Completed++
					}
					switch {
					case perr != nil:
						pcfg := cfg
						pcfg.Invariant = "parallel-equivalence"
						pcfg.Detail = fmt.Sprintf("sharded run (workers=%d) errored where single-threaded succeeded: %v", opts.RunWorkers, perr)
						fail(pcfg)
					case !reflect.DeepEqual(r, rp):
						pcfg := cfg
						pcfg.Invariant = "parallel-equivalence"
						pcfg.Detail = fmt.Sprintf("sharded run (workers=%d) diverged from single-threaded run: %s vs %s after %d vs %d cycles",
							opts.RunWorkers, rp.Outcome(), r.Outcome(), rp.Cycles, r.Cycles)
						fail(pcfg)
					}
				}
				switch {
				case r.Completed:
					res.Completed++
					if d := streamIntegrity(sc.Program, r.Received); d != "" {
						cfg.Invariant = "stream-integrity"
						cfg.Detail = d
						fail(cfg)
					}
					// Invariant 2 is checked independently of the
					// synthetic expectation above: the first completed
					// run at this capacity is the reference every later
					// one (other policies, other budgets) must match
					// word for word, whatever the words are.
					if refStream == nil {
						refStream = r.Received
						refConfig = fmt.Sprintf("%s queues=%d", pol.String(), q)
					} else if d := streamDiff(refStream, r.Received); d != "" {
						cfg.Invariant = "stream-equality"
						cfg.Detail = fmt.Sprintf("stream differs from %s: %s", refConfig, d)
						fail(cfg)
					}
				case q < min:
					// Expected: below the Theorem 1 bound the paper
					// promises nothing; a deadlock here is the bound
					// shown tight, minimized for the report.
					cfg.Invariant = "under-budget-deadlock"
					cfg.Expected = true
					cfg.Detail = fmt.Sprintf("%s after %d cycles: %s", r.Outcome(), r.Cycles,
						blockedCells(sc.Program, r.Blocked))
					if expectedMinimized < maxExpectedMinimized {
						expectedMinimized++
						cfg.Counterexample = minimizeUnderBudget(sc, opts, pol, q, capacity)
					}
					fail(cfg)
				case opts.Lookahead > 0 && capacity < opts.Lookahead:
					// Expected: the §8 lookahead classification assumed
					// queues can buffer the skipped writes (rule R2);
					// running below that capacity breaks the
					// assumption just like an under-budgeted link.
					cfg.Invariant = "under-capacity-deadlock"
					cfg.Expected = true
					cfg.Detail = fmt.Sprintf("%s after %d cycles with capacity %d < lookahead budget %d: %s",
						r.Outcome(), r.Cycles, capacity, opts.Lookahead, blockedCells(sc.Program, r.Blocked))
					fail(cfg)
				default:
					// Invariant 1 broken: approved program, approved
					// budget, and yet it did not complete.
					cfg.Invariant = "theorem1-completion"
					cfg.Detail = fmt.Sprintf("%s after %d cycles with queues=%d ≥ min=%d: %s",
						r.Outcome(), r.Cycles, q, min, blockedCells(sc.Program, r.Blocked))
					cfg.Counterexample = minimizeCompletion(sc, opts, pol, q-min, capacity)
					fail(cfg)
				}
			}
		}
	}
	faultChecks(sc, a, opts, &res, fail)
	linkModelChecks(sc, a, opts, &res, fail)
	return res
}

// linkModelChecks runs the link-timing invariants on one approved
// scenario, after the main matrix, at one configuration: the first
// policy and capacity, at exactly the Theorem 1 budget — the same
// regime faultChecks uses, so a violation pins timing, not budgets.
func linkModelChecks(sc *gen.Scenario, a *core.Analysis, opts Options, res *Result, fail func(Finding)) {
	if !opts.LinkModels {
		return
	}
	pol := opts.Policies[0]
	capacity := opts.Capacities[0]
	q := a.MinQueues(pol)
	if q < 1 {
		q = 1
	}
	cfg := Finding{Policy: pol.String(), Queues: q, MinQueues: a.MinQueues(pol), Capacity: capacity}
	exec := func(p *linkmodel.Plan, workers int) (*sim.Result, error) {
		res.Runs++
		r, err := core.Execute(a, core.ExecOptions{
			Policy:        pol,
			QueuesPerLink: q,
			Capacity:      capacity,
			MaxCycles:     opts.MaxCycles,
			Workers:       workers,
			LinkModel:     p,
			Force:         true,
		})
		if err == nil && r.Completed {
			res.Completed++
		}
		return r, err
	}

	// Invariant: a fixed plan with delay 1 and no credit is unit timing
	// in disguise — it must be byte-identical to running with no model.
	clean, cleanErr := exec(nil, 0)
	rNoop, noopErr := exec(linkmodel.FixedPlan(1, 0), 0)
	switch {
	case (cleanErr == nil) != (noopErr == nil):
		f := cfg
		f.Invariant = "linkmodel-noop-equivalence"
		f.Detail = fmt.Sprintf("delay-1 plan changed the error outcome: %v vs %v", noopErr, cleanErr)
		fail(f)
	case cleanErr == nil && !reflect.DeepEqual(clean, rNoop):
		f := cfg
		f.Invariant = "linkmodel-noop-equivalence"
		f.Detail = fmt.Sprintf("delay-1 plan diverged from unit-latency run: %s vs %s after %d vs %d cycles",
			rNoop.Outcome(), clean.Outcome(), rNoop.Cycles, clean.Cycles)
		fail(f)
	}

	// Invariants: every shipped model is delay-only, so an
	// analyzer-approved configuration must still complete under it —
	// and each model must be byte-identical single-threaded and
	// sharded.
	workers := opts.RunWorkers
	if workers <= 1 {
		workers = 4
	}
	for _, plan := range []*linkmodel.Plan{
		linkmodel.FixedPlan(3, 0),
		linkmodel.CongestionPlan(1, 2, 4),
	} {
		r1, err1 := exec(plan, 0)
		switch {
		case err1 != nil:
			f := cfg
			f.Invariant = "linkmodel-exec-error"
			f.Detail = fmt.Sprintf("model %s: %v", plan, err1)
			fail(f)
			continue
		case !r1.Completed:
			f := cfg
			f.Invariant = "linkmodel-completion"
			f.Detail = fmt.Sprintf("%s after %d cycles under model %s: %s",
				r1.Outcome(), r1.Cycles, plan, blockedCells(sc.Program, r1.Blocked))
			fail(f)
		}
		rw, errw := exec(plan, workers)
		switch {
		case errw != nil:
			f := cfg
			f.Invariant = "linkmodel-parallel-equivalence"
			f.Detail = fmt.Sprintf("model %s: sharded run (workers=%d) errored where single-threaded succeeded: %v", plan, workers, errw)
			fail(f)
		case !reflect.DeepEqual(r1, rw):
			f := cfg
			f.Invariant = "linkmodel-parallel-equivalence"
			f.Detail = fmt.Sprintf("model %s: workers=%d diverged from single-threaded: %s vs %s after %d vs %d cycles",
				plan, workers, rw.Outcome(), r1.Outcome(), rw.Cycles, r1.Cycles)
			fail(f)
		}
	}
}

// faultChecks runs the degraded-array invariants on one approved
// scenario, after the main matrix, at one configuration: the first
// policy and capacity, at exactly the Theorem 1 budget.
func faultChecks(sc *gen.Scenario, a *core.Analysis, opts Options, res *Result, fail func(Finding)) {
	numCells := sc.Program.NumCells()
	numLinks := len(sc.Topology.Links())
	plan := opts.Faults
	if plan == nil && opts.SeedFaults {
		plan = gen.RandomFaults(sc.Seed, numCells, numLinks, gen.FaultOptions{})
	}
	if plan.IsNoop() {
		return
	}
	if plan.Validate(numCells, numLinks) != nil {
		// An explicit plan sized for a different array; nothing to
		// check on this scenario.
		return
	}
	pol := opts.Policies[0]
	capacity := opts.Capacities[0]
	q := a.MinQueues(pol)
	if q < 1 {
		q = 1
	}
	cfg := Finding{Policy: pol.String(), Queues: q, MinQueues: a.MinQueues(pol), Capacity: capacity}

	// Invariant: the plan's canonical spec re-parses to the same plan
	// (fault-spec-roundtrip). Every seeded plan replays through the
	// grammar the CLI and wire share, so the corpus covers its edge
	// cases: @0 effective-froms canonicalize to no suffix, and a valid
	// plan can never trip the duplicate-target parse error.
	if spec := plan.String(); spec != "" {
		rt, err := fault.ParseSpec(spec)
		switch {
		case err != nil:
			f := cfg
			f.Invariant = "fault-spec-roundtrip"
			f.Detail = fmt.Sprintf("canonical spec %q failed to re-parse: %v", spec, err)
			fail(f)
		case rt.String() != spec:
			f := cfg
			f.Invariant = "fault-spec-roundtrip"
			f.Detail = fmt.Sprintf("canonical spec %q re-parsed to %q", spec, rt.String())
			fail(f)
		}
	}
	exec := func(p *fault.Plan, workers int) (*sim.Result, error) {
		res.Runs++
		r, err := core.Execute(a, core.ExecOptions{
			Policy:        pol,
			QueuesPerLink: q,
			Capacity:      capacity,
			MaxCycles:     opts.MaxCycles,
			Workers:       workers,
			Faults:        p,
			Force:         true,
		})
		if err == nil && r.Completed {
			res.Completed++
		}
		return r, err
	}

	// Invariant: a plan whose every fault is a factor-1 no-op must be
	// byte-identical to running with no plan at all.
	noop := &fault.Plan{}
	for c := 0; c < numCells; c++ {
		noop.Cells = append(noop.Cells, fault.CellFault{Cell: model.CellID(c), Factor: 1})
	}
	clean, cleanErr := exec(nil, 0)
	rNoop, noopErr := exec(noop, 0)
	switch {
	case (cleanErr == nil) != (noopErr == nil):
		f := cfg
		f.Invariant = "fault-noop-equivalence"
		f.Detail = fmt.Sprintf("factor-1 plan changed the error outcome: %v vs %v", noopErr, cleanErr)
		fail(f)
	case cleanErr == nil && !reflect.DeepEqual(clean, rNoop):
		f := cfg
		f.Invariant = "fault-noop-equivalence"
		f.Detail = fmt.Sprintf("factor-1 plan diverged from fault-free run: %s vs %s after %d vs %d cycles",
			rNoop.Outcome(), clean.Outcome(), rNoop.Cycles, clean.Cycles)
		fail(f)
	}

	// Invariant: under the periodic-only projection of the plan (dead
	// cells and severed links weakened to factor-3 slowdowns) an
	// analyzer-approved configuration must still complete — periodic
	// faults delay progress but can never remove it.
	periodic := &fault.Plan{}
	for _, c := range plan.Cells {
		if c.Dead {
			c.Dead, c.Factor = false, 3
		}
		if c.Factor > 1 {
			periodic.Cells = append(periodic.Cells, c)
		}
	}
	for _, l := range plan.Links {
		if l.Severed {
			l.Severed, l.Factor = false, 3
		}
		if l.Factor > 1 {
			periodic.Links = append(periodic.Links, l)
		}
	}
	rp, perr := exec(periodic, 0)
	switch {
	case perr != nil:
		f := cfg
		f.Invariant = "fault-exec-error"
		f.Detail = fmt.Sprintf("periodic plan %s: %v", periodic, perr)
		fail(f)
	case !rp.Completed:
		f := cfg
		f.Invariant = "degraded-completion"
		f.Detail = fmt.Sprintf("%s after %d cycles under periodic plan %s: %s",
			rp.Outcome(), rp.Cycles, periodic, blockedCells(sc.Program, rp.Blocked))
		fail(f)
	}

	// Invariant: the full plan — terminal faults included — produces
	// byte-identical results single-threaded and sharded.
	workers := opts.RunWorkers
	if workers <= 1 {
		workers = 4
	}
	r1, err1 := exec(plan, 0)
	rw, errw := exec(plan, workers)
	switch {
	case (err1 == nil) != (errw == nil):
		f := cfg
		f.Invariant = "fault-parallel-equivalence"
		f.Detail = fmt.Sprintf("plan %s: error outcome differs between workers 1 and %d: %v vs %v", plan, workers, err1, errw)
		fail(f)
	case err1 == nil && !reflect.DeepEqual(r1, rw):
		f := cfg
		f.Invariant = "fault-parallel-equivalence"
		f.Detail = fmt.Sprintf("plan %s: workers=%d diverged from single-threaded: %s vs %s after %d vs %d cycles",
			plan, workers, rw.Outcome(), r1.Outcome(), rw.Cycles, r1.Cycles)
		fail(f)
	}
}

// analyzeOptions maps oracle options onto the analyzer's.
func analyzeOptions(opts Options) core.AnalyzeOptions {
	ao := core.AnalyzeOptions{}
	if opts.Lookahead > 0 {
		la := opts.Lookahead
		ao.Lookahead = true
		ao.BudgetOverride = func(model.MessageID) int { return la }
	}
	return ao
}

// streamIntegrity checks every received word against the synthetic
// encoding (message id, word index) — FIFO order per message with no
// loss, duplication, or cross-wiring. Empty string = intact.
func streamIntegrity(p *model.Program, received [][]sim.Word) string {
	for _, m := range p.Messages() {
		ws := received[m.ID]
		if len(ws) != m.Words {
			return fmt.Sprintf("message %s delivered %d of %d words", m.Name, len(ws), m.Words)
		}
		for i, w := range ws {
			if want := queue.Word(float64(m.ID)*1e6 + float64(i)); w != want {
				return fmt.Sprintf("message %s word %d = %v, want %v (reordered or cross-wired)", m.Name, i, w, want)
			}
		}
	}
	return ""
}

// streamDiff compares two complete delivery records. Empty string =
// identical.
func streamDiff(a, b [][]sim.Word) string {
	if len(a) != len(b) {
		return fmt.Sprintf("%d vs %d messages", len(a), len(b))
	}
	for m := range a {
		if len(a[m]) != len(b[m]) {
			return fmt.Sprintf("message %d: %d vs %d words", m, len(a[m]), len(b[m]))
		}
		for i := range a[m] {
			if a[m][i] != b[m][i] {
				return fmt.Sprintf("message %d word %d: %v vs %v", m, i, a[m][i], b[m][i])
			}
		}
	}
	return ""
}

// blockedCells renders the stuck-cell set of a deadlock report.
func blockedCells(p *model.Program, blocked []sim.CellBlock) string {
	if len(blocked) == 0 {
		return "no blocked cells recorded"
	}
	parts := make([]string, len(blocked))
	for i, cb := range blocked {
		parts[i] = fmt.Sprintf("%s@%s", p.Cell(cb.Cell).Name, p.OpString(cb.Op))
	}
	return "blocked: " + strings.Join(parts, " ")
}

// Report is the order-stable outcome of a batch run.
type Report struct {
	N        int
	BaseSeed int64
	Results  []Result
}

// Run generates and checks n scenarios with seeds seed, seed+1, …,
// seed+n-1 across a bounded worker pool (reusing the sweep engine's
// pool discipline). Replaying any reported finding needs only its
// scenario seed: Run(ctx, 1, thatSeed, opts).
func Run(ctx context.Context, n int, seed int64, opts Options) (*Report, error) {
	if n <= 0 {
		return nil, fmt.Errorf("diff: n %d < 1", n)
	}
	opts = opts.withDefaults()
	results := make([]Result, n)
	err := sweep.ForEach(ctx, n, opts.Workers, func(i int) {
		s := seed + int64(i)
		sc, gerr := gen.Generate(s, opts.Gen)
		if gerr != nil {
			results[i] = Result{Seed: s, Findings: []Finding{{
				Seed: s, Invariant: "generate-error", Detail: gerr.Error(),
			}}}
			return
		}
		results[i] = Check(sc, opts)
	})
	if err != nil {
		return nil, err
	}
	return &Report{N: n, BaseSeed: seed, Results: results}, nil
}

// Violations returns every unexpected finding, in scenario order.
func (r *Report) Violations() []Finding {
	var out []Finding
	for _, res := range r.Results {
		out = append(out, res.Violations()...)
	}
	return out
}

// Counterexamples returns the expected under-budget findings, in
// scenario order.
func (r *Report) Counterexamples() []Finding {
	var out []Finding
	for _, res := range r.Results {
		for _, f := range res.Findings {
			if f.Expected {
				out = append(out, f)
			}
		}
	}
	return out
}

// maxRendered bounds how many findings of each kind Summary prints in
// full; the rest are counted. Rendering stays deterministic either way.
const maxRendered = 5

// Summary renders the report. Equal reports produce byte-identical
// text for any worker count.
func (r *Report) Summary() string {
	var b strings.Builder
	free, rejected, runs, completed := 0, 0, 0, 0
	for _, res := range r.Results {
		if res.DeadlockFree {
			free++
		} else {
			rejected++
		}
		runs += res.Runs
		completed += res.Completed
	}
	viols := r.Violations()
	cexs := r.Counterexamples()
	// Render the minimized deadlock demonstrations ahead of plain
	// policy refusals — they carry the replayable programs.
	var ordered []Finding
	for _, f := range cexs {
		if f.Counterexample != "" {
			ordered = append(ordered, f)
		}
	}
	for _, f := range cexs {
		if f.Counterexample == "" {
			ordered = append(ordered, f)
		}
	}
	cexs = ordered
	fmt.Fprintf(&b, "differential oracle: %d scenarios, seeds %d..%d\n", r.N, r.BaseSeed, r.BaseSeed+int64(r.N)-1)
	fmt.Fprintf(&b, "  deadlock-free: %d   rejected: %d   simulations: %d   completed: %d\n",
		free, rejected, runs, completed)
	fmt.Fprintf(&b, "  invariant violations: %d   expected counterexamples: %d\n", len(viols), len(cexs))
	renderFindings(&b, "violations", viols)
	renderFindings(&b, "under-budget counterexamples", cexs)
	return b.String()
}

func renderFindings(b *strings.Builder, title string, fs []Finding) {
	if len(fs) == 0 {
		return
	}
	fmt.Fprintf(b, "\n%s:\n", title)
	for i, f := range fs {
		if i == maxRendered {
			fmt.Fprintf(b, "… and %d more (replay any finding by rerunning with the same flags plus -n 1 -seed <its seed>)\n", len(fs)-maxRendered)
			break
		}
		b.WriteString(f.String())
		if !strings.HasSuffix(f.String(), "\n") {
			b.WriteString("\n")
		}
	}
}

// minimizeCompletion shrinks a scenario that broke invariant 1: the
// property preserved is "analyzer approves, yet execution at the
// Theorem 1 budget plus slack does not complete".
func minimizeCompletion(sc *gen.Scenario, opts Options, pol core.PolicyKind, slack, capacity int) string {
	p := shrink(sc.Program, opts.ShrinkBudget, func(q *model.Program) bool {
		a, err := core.Analyze(q, sc.Topology, analyzeOptions(opts))
		if err != nil || !a.DeadlockFree {
			return false
		}
		budget := a.MinQueues(pol) + slack
		if budget < 1 {
			budget = 1
		}
		r, err := core.Execute(a, core.ExecOptions{
			Policy: pol, QueuesPerLink: budget, Capacity: capacity,
			MaxCycles: opts.MaxCycles, Force: true,
		})
		return err == nil && !r.Completed
	})
	return dsl.Format(p, sc.Topology)
}

// minimizeUnderBudget shrinks an expected counterexample: the property
// preserved is "analyzer approves, the Theorem 1 bound exceeds the
// forced budget, and execution at that budget deadlocks".
func minimizeUnderBudget(sc *gen.Scenario, opts Options, pol core.PolicyKind, q, capacity int) string {
	p := shrink(sc.Program, opts.ShrinkBudget, func(candidate *model.Program) bool {
		a, err := core.Analyze(candidate, sc.Topology, analyzeOptions(opts))
		if err != nil || !a.DeadlockFree || a.MinQueues(pol) <= q {
			return false
		}
		r, err := core.Execute(a, core.ExecOptions{
			Policy: pol, QueuesPerLink: q, Capacity: capacity,
			MaxCycles: opts.MaxCycles, Force: true,
		})
		return err == nil && r.Deadlocked
	})
	return dsl.Format(p, sc.Topology)
}

// shrink greedily minimizes a program while keep holds: it first
// drops whole messages, then trims trailing words, restarting after
// every success, until a fixed point or the evaluation budget runs
// out. keep(p) must be true on entry; the result always satisfies it.
func shrink(p *model.Program, budget int, keep func(*model.Program) bool) *model.Program {
	evals := 0
	spent := func(q *model.Program) bool {
		evals++
		return evals <= budget && keep(q)
	}
	for {
		improved := false
		for m := 0; m < p.NumMessages(); m++ {
			q, err := dropMessage(p, model.MessageID(m))
			if err != nil {
				continue
			}
			if spent(q) {
				p, improved = q, true
				break
			}
			if evals > budget {
				return p
			}
		}
		if improved {
			continue
		}
		for m := 0; m < p.NumMessages(); m++ {
			if p.Message(model.MessageID(m)).Words < 2 {
				continue
			}
			q, err := trimWord(p, model.MessageID(m))
			if err != nil {
				continue
			}
			if spent(q) {
				p, improved = q, true
				break
			}
			if evals > budget {
				return p
			}
		}
		if !improved {
			return p
		}
	}
}

// dropMessage rebuilds p without message mid (ops removed, remaining
// message ids renumbered).
func dropMessage(p *model.Program, mid model.MessageID) (*model.Program, error) {
	b := model.NewBuilder()
	for _, c := range p.Cells() {
		if c.Host {
			b.AddHost(c.Name)
		} else {
			b.AddCell(c.Name)
		}
	}
	remap := make([]model.MessageID, p.NumMessages())
	for _, m := range p.Messages() {
		if m.ID == mid {
			continue
		}
		remap[m.ID] = b.DeclareMessage(m.Name, m.Sender, m.Receiver, m.Words)
	}
	for c := 0; c < p.NumCells(); c++ {
		for _, op := range p.Code(model.CellID(c)) {
			if op.Msg == mid {
				continue
			}
			if op.Kind == model.Write {
				b.Write(model.CellID(c), remap[op.Msg])
			} else {
				b.Read(model.CellID(c), remap[op.Msg])
			}
		}
	}
	return b.Build()
}

// trimWord rebuilds p with message mid one word shorter: its declared
// count drops by one and the last W and last R on it disappear.
func trimWord(p *model.Program, mid model.MessageID) (*model.Program, error) {
	b := model.NewBuilder()
	for _, c := range p.Cells() {
		if c.Host {
			b.AddHost(c.Name)
		} else {
			b.AddCell(c.Name)
		}
	}
	for _, m := range p.Messages() {
		words := m.Words
		if m.ID == mid {
			words--
		}
		b.DeclareMessage(m.Name, m.Sender, m.Receiver, words)
	}
	for c := 0; c < p.NumCells(); c++ {
		code := p.Code(model.CellID(c))
		lastIdx := -1
		for i, op := range code {
			if op.Msg == mid {
				lastIdx = i
			}
		}
		for i, op := range code {
			if i == lastIdx && op.Msg == mid {
				continue
			}
			if op.Kind == model.Write {
				b.Write(model.CellID(c), op.Msg)
			} else {
				b.Read(model.CellID(c), op.Msg)
			}
		}
	}
	return b.Build()
}
