package core

import (
	"errors"
	"testing"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

func optProgram(t *testing.T) *model.Program {
	t.Helper()
	b := model.NewBuilder()
	cs := b.AddCells("C", 2)
	m := b.DeclareMessage("M", cs[0], cs[1], 1)
	b.Write(cs[0], m)
	b.Read(cs[1], m)
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAnalyzeOptionErrors: nil inputs and negative capacities are
// rejected with typed *OptionError before any analysis state is
// built — the differential oracle feeds edge-case configs and relies
// on this failing cleanly instead of panicking.
func TestAnalyzeOptionErrors(t *testing.T) {
	p := optProgram(t)
	topo := topology.Linear(2)
	cases := []struct {
		name string
		call func() error
	}{
		{"nil program", func() error { _, err := Analyze(nil, topo, AnalyzeOptions{}); return err }},
		{"nil topology", func() error { _, err := Analyze(p, nil, AnalyzeOptions{}); return err }},
		{"negative capacity", func() error { _, err := Analyze(p, topo, AnalyzeOptions{Capacity: -1}); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("err = %v, want *OptionError", err)
			}
			if oe.Op != "Analyze" {
				t.Errorf("Op = %q, want Analyze", oe.Op)
			}
		})
	}
}

// TestExecuteOptionErrors mirrors TestAnalyzeOptionErrors on the
// run-time side.
func TestExecuteOptionErrors(t *testing.T) {
	p := optProgram(t)
	a, err := Analyze(p, topology.Linear(2), AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		a    *Analysis
		opts ExecOptions
	}{
		{"nil analysis", nil, ExecOptions{}},
		{"nil topology", &Analysis{Program: p}, ExecOptions{}},
		{"negative queues", a, ExecOptions{QueuesPerLink: -1}},
		{"negative capacity", a, ExecOptions{Capacity: -2}},
		{"negative ext capacity", a, ExecOptions{ExtCapacity: -1}},
		{"negative ext penalty", a, ExecOptions{ExtPenalty: -1}},
		{"negative max cycles", a, ExecOptions{MaxCycles: -7}},
		{"unknown policy", a, ExecOptions{Policy: PolicyKind(42)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Execute(tc.a, tc.opts)
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("err = %v, want *OptionError", err)
			}
			if oe.Op != "Execute" {
				t.Errorf("Op = %q, want Execute", oe.Op)
			}
		})
	}
}

// TestSimConfigErrors: the simulator's own boundary rejects broken
// configs with typed *sim.ConfigError (zero queues per link, nil
// topology, negative capacity).
func TestSimConfigErrors(t *testing.T) {
	p := optProgram(t)
	topo := topology.Linear(2)
	a, err := Analyze(p, topo, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pol := DynamicCompatible.policy(0)
	cases := []struct {
		name string
		cfg  sim.Config
	}{
		{"nil topology", sim.Config{Policy: pol, QueuesPerLink: 1, Capacity: 1}},
		{"nil policy", sim.Config{Topology: topo, QueuesPerLink: 1, Capacity: 1}},
		{"zero queues", sim.Config{Topology: topo, Policy: pol, QueuesPerLink: 0, Capacity: 1}},
		{"negative capacity", sim.Config{Topology: topo, Policy: pol, QueuesPerLink: 1, Capacity: -1}},
		{"routes mismatch", sim.Config{Topology: topo, Policy: pol, QueuesPerLink: 1, Capacity: 1,
			Routes: make([][]topology.Hop, 5)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Labels = a.Labeling.Dense
			_, err := sim.Run(p, cfg)
			var ce *sim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *sim.ConfigError", err)
			}
		})
	}
}

// TestAnalyzeNilTopologyNoPanics: the historical failure mode was a
// nil-interface panic inside topology.Routes; it must be an error all
// the way down.
func TestAnalyzeNilTopologyNoPanics(t *testing.T) {
	p := optProgram(t)
	if _, err := topology.Routes(p, nil); err == nil {
		t.Error("topology.Routes(p, nil): want error")
	}
}
