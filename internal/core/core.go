// Package core assembles the paper's deadlock-avoidance strategy into
// one engine (§9's three major steps):
//
//  1. ensure the program is deadlock-free (crossing-off, §3, optionally
//     with §8 lookahead);
//  2. ensure a consistent labeling of its messages (§6);
//  3. ensure a compatible assignment of queues at run time (§7),
//     sized so Theorem 1's assumption (ii) holds.
//
// Analyze performs steps 1–2 and computes the queue requirements;
// Execute performs step 3 inside the simulator. A completed Execute on
// an Analyze-approved configuration is Theorem 1 made operational.
package core

import (
	"context"
	"fmt"
	"sync"

	"systolic/internal/assign"
	"systolic/internal/crossoff"
	"systolic/internal/fault"
	"systolic/internal/label"
	"systolic/internal/linkmodel"
	"systolic/internal/machine"
	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
	"systolic/internal/verify"
)

// OptionError is a typed rejection of an invalid Analyze or Execute
// option: machine-generated configurations (the differential oracle,
// the sweep engine) distinguish a bad option from a genuine engine
// failure with errors.As. Every invalid option is rejected here at
// the API boundary, before any state is built, instead of panicking
// deep in internal/sim.
type OptionError struct {
	// Op is "Analyze" or "Execute".
	Op string
	// Field names the offending option.
	Field string
	// Reason says what was wrong with it.
	Reason string
}

// Error renders the rejection.
func (e *OptionError) Error() string {
	return fmt.Sprintf("core: %s: option %s: %s", e.Op, e.Field, e.Reason)
}

// AnalyzeOptions configures compile-time analysis.
type AnalyzeOptions struct {
	// Lookahead admits programs that need queue buffering (§8). The
	// skip budget is derived from Capacity and each message's route
	// (rule R2) unless BudgetOverride is set.
	Lookahead bool
	// Capacity is the per-queue word capacity assumed by rule R2 when
	// Lookahead is on.
	Capacity int
	// BudgetOverride replaces the derived R2 budget.
	BudgetOverride func(model.MessageID) int
	// Picker overrides the crossing-off pair choice.
	Picker crossoff.PairPicker
}

// Analysis is the compile-time artifact: classification, labeling, and
// queue requirements for a (program, topology) pair.
type Analysis struct {
	Program  *model.Program
	Topology topology.Topology
	Routes   [][]topology.Hop

	// DeadlockFree reports the classification under the requested
	// options; Strict reports the no-lookahead classification (always
	// computed, for reporting).
	DeadlockFree bool
	Strict       bool
	// Blocked describes the stalled fronts when not DeadlockFree.
	Blocked []crossoff.BlockedOp

	// Labeling is the §6 result (only when DeadlockFree).
	Labeling label.Labeling
	// MinQueuesDynamic is the queues-per-link required by the dynamic
	// compatible policy (largest equal-label competing group);
	// MinQueuesStatic is the requirement for the static policy
	// (largest competing set).
	MinQueuesDynamic int
	MinQueuesStatic  int

	// machineOnce caches the compiled machine: one Analysis serves
	// unlimited Execute calls (the sweep grid, the oracle's policy ×
	// budget × capacity matrix) off a single compile.
	machineOnce sync.Once
	machine     *machine.Machine
	machineErr  error
}

// Machine returns the compiled execution machine for this analysis,
// compiling it on first use and caching it thereafter. The machine is
// immutable and safe for concurrent Execute calls; everything a run
// can vary (policy, queue budget, capacity, logic) is chosen per run.
func (a *Analysis) Machine() (*machine.Machine, error) {
	a.machineOnce.Do(func() {
		a.machine, a.machineErr = machine.Compile(a.Program, a.Topology, a.Routes, a.Labeling.Dense)
	})
	return a.machine, a.machineErr
}

// Analyze classifies, labels, and sizes a program over a topology.
// A non-deadlock-free program yields an Analysis with DeadlockFree
// false and no labeling, not an error; errors are reserved for
// configuration problems (e.g. unroutable messages).
func Analyze(p *model.Program, t topology.Topology, opts AnalyzeOptions) (*Analysis, error) {
	if p == nil {
		return nil, &OptionError{Op: "Analyze", Field: "Program", Reason: "nil program"}
	}
	if t == nil {
		return nil, &OptionError{Op: "Analyze", Field: "Topology", Reason: "nil topology"}
	}
	if opts.Capacity < 0 {
		return nil, &OptionError{Op: "Analyze", Field: "Capacity", Reason: fmt.Sprintf("negative capacity %d", opts.Capacity)}
	}
	routes, err := topology.Routes(p, t)
	if err != nil {
		return nil, err
	}
	a := &Analysis{Program: p, Topology: t, Routes: routes}

	budget := opts.BudgetOverride
	if budget == nil && opts.Lookahead {
		budget = crossoff.BudgetFromRoutes(routes, opts.Capacity)
	}
	copts := crossoff.Options{Lookahead: opts.Lookahead, Budget: budget, Picker: opts.Picker}
	res := crossoff.Run(p, copts)
	if opts.Lookahead {
		a.Strict = crossoff.Classify(p, crossoff.Options{Picker: opts.Picker})
	} else {
		// Without lookahead the main run IS the strict classification
		// (Budget is ignored when Lookahead is off), so don't cross off
		// the whole program a second time.
		a.Strict = res.DeadlockFree
	}
	a.DeadlockFree = res.DeadlockFree
	a.Blocked = res.Blocked
	if !a.DeadlockFree {
		return a, nil
	}

	lab, err := label.Assign(p, label.Options{
		Lookahead: opts.Lookahead,
		Budget:    budget,
		Picker:    opts.Picker,
	})
	if err != nil {
		return nil, fmt.Errorf("core: labeling: %w", err)
	}
	if err := label.Check(p, lab.ByMessage); err != nil {
		return nil, fmt.Errorf("core: labeling scheme produced an inconsistent labeling: %w", err)
	}
	a.Labeling = lab

	rep := verify.CheckPreconditionsRoutes(routes, lab.Dense, 1<<30)
	a.MinQueuesDynamic = rep.MaxGroup
	a.MinQueuesStatic = rep.MaxCompeting
	return a, nil
}

// PolicyKind selects the run-time assignment discipline.
type PolicyKind int

const (
	// DynamicCompatible is the §7.2 ordered/simultaneous policy.
	DynamicCompatible PolicyKind = iota
	// StaticAssignment is the §7.1 one-queue-per-message policy.
	StaticAssignment
	// NaiveFCFS, NaiveLIFO, NaiveRandom, NaiveAdversarial are the
	// label-oblivious baselines (the discipline Figs 7–9 warn about).
	NaiveFCFS
	NaiveLIFO
	NaiveRandom
	NaiveAdversarial
)

// String names the policy kind.
func (k PolicyKind) String() string {
	switch k {
	case DynamicCompatible:
		return "dynamic-compatible"
	case StaticAssignment:
		return "static"
	case NaiveFCFS:
		return "naive-fcfs"
	case NaiveLIFO:
		return "naive-lifo"
	case NaiveRandom:
		return "naive-random"
	case NaiveAdversarial:
		return "naive-adversarial"
	}
	return fmt.Sprintf("policy(%d)", int(k))
}

// ParsePolicy maps a policy name — the spelling the CLI flags and the
// serving layer's wire format share — to its PolicyKind. Both the
// short flag names ("compatible", "fcfs") and the PolicyKind.String()
// forms ("dynamic-compatible", "naive-fcfs") are accepted, so a
// rendered report row can be pasted back into a request.
func ParsePolicy(name string) (PolicyKind, error) {
	switch name {
	case "compatible", "dynamic-compatible":
		return DynamicCompatible, nil
	case "static":
		return StaticAssignment, nil
	case "fcfs", "naive-fcfs":
		return NaiveFCFS, nil
	case "lifo", "naive-lifo":
		return NaiveLIFO, nil
	case "random", "naive-random":
		return NaiveRandom, nil
	case "adversarial", "naive-adversarial":
		return NaiveAdversarial, nil
	}
	return 0, &OptionError{Op: "Execute", Field: "Policy", Reason: fmt.Sprintf("unknown policy %q (want compatible|static|fcfs|lifo|random|adversarial)", name)}
}

// policy instantiates the assign.Policy for a kind.
func (k PolicyKind) policy(seed int64) assign.Policy {
	switch k {
	case DynamicCompatible:
		return assign.Compatible()
	case StaticAssignment:
		return assign.Static()
	case NaiveFCFS:
		return assign.Naive(assign.FCFS, seed)
	case NaiveLIFO:
		return assign.Naive(assign.LIFO, seed)
	case NaiveRandom:
		return assign.Naive(assign.Random, seed)
	default:
		return assign.Naive(assign.LabelDescending, seed)
	}
}

// ExecOptions configures a run of an analyzed program.
type ExecOptions struct {
	// Policy selects the assignment discipline; DynamicCompatible by
	// default.
	Policy PolicyKind
	// QueuesPerLink defaults to the analysis' minimum for the chosen
	// policy.
	QueuesPerLink int
	// Capacity is the per-queue capacity (default 1).
	Capacity int
	// ExtCapacity/ExtPenalty enable the §8 queue extension.
	ExtCapacity int
	ExtPenalty  int
	// DirectionalPools gives each link one queue pool per direction
	// instead of the paper's shared, direction-resettable pool.
	DirectionalPools bool
	// Logic supplies word values (nil = synthetic).
	Logic sim.CellLogic
	// Seed feeds randomized policies.
	Seed int64
	// MaxCycles bounds the run (0 = derived default).
	MaxCycles int
	// RecordTimeline captures bind/release events.
	RecordTimeline bool
	// Force skips the Theorem 1 precondition check, allowing
	// deliberately under-provisioned runs (used to demonstrate the
	// failure modes the theorem excludes).
	Force bool
	// Workers selects deterministic sharded execution (0 or 1 =
	// single-threaded). Every worker count produces byte-identical
	// results; see machine.ExecOptions.Workers for the contract,
	// including the concurrent-Logic caveat.
	Workers int
	// Context, when non-nil, cancels the run between simulated cycles;
	// Execute then returns the wrapped context error.
	Context context.Context
	// Faults degrades the array for this run: slowed or dead cells,
	// throttled or severed links, each optionally from a given cycle
	// (see internal/fault). nil runs the perfect array. Faults are a
	// run-time condition, not an analysis input — the analysis'
	// Theorem 1 budgets describe the perfect array, and
	// verify.DegradedBudgets reports which of them survive each fault.
	Faults *fault.Plan
	// LinkModel retimes the interconnect for this run: fixed per-link
	// latency/bandwidth or congestion-sensitive backpressure (see
	// internal/linkmodel). nil or a unit plan keeps unit-latency links.
	// Like Faults it is a run-time condition: the analysis' budgets
	// describe the unit-latency array, and verify.LinkBudgets reports
	// how they stretch under the model.
	LinkModel *linkmodel.Plan
}

// MinQueues returns Theorem 1's queues-per-link requirement for a
// policy: the largest competing set for static assignment, the largest
// equal-label group otherwise.
func (a *Analysis) MinQueues(policy PolicyKind) int {
	if policy == StaticAssignment {
		return a.MinQueuesStatic
	}
	return a.MinQueuesDynamic
}

// ResolveQueues resolves a requested queues-per-link budget: 0 means
// the analysis' minimum for the policy, floored at one physical queue.
// Execute and the sweep engine share this so reports always name the
// budget that actually ran.
func (a *Analysis) ResolveQueues(policy PolicyKind, requested int) int {
	if requested != 0 {
		return requested
	}
	if q := a.MinQueues(policy); q > 0 {
		return q
	}
	return 1
}

// Execute runs an analyzed program under the chosen policy. For the
// compatible and static policies it verifies Theorem 1's assumption
// (ii) first (unless Force) so that a refusal is a clear report rather
// than a run-time stall.
func Execute(a *Analysis, opts ExecOptions) (*sim.Result, error) {
	m, mopts, err := lower(a, opts)
	if err != nil {
		return nil, err
	}
	mopts.Policy = opts.Policy.policy(opts.Seed)
	return m.Run(mopts)
}

// lower validates ExecOptions against an analysis and lowers them to
// the machine layer: budget resolution and the Theorem 1 precondition
// check. Execute and Runner.Execute share it so the batch path rejects
// exactly what the pooled path rejects, with byte-identical error
// strings. The returned options carry a nil Policy — the caller
// instantiates it (Execute fresh per call, Runner from its retained
// per-kind instances).
func lower(a *Analysis, opts ExecOptions) (*machine.Machine, machine.ExecOptions, error) {
	var none machine.ExecOptions
	if a == nil || a.Program == nil {
		return nil, none, &OptionError{Op: "Execute", Field: "Analysis", Reason: "nil analysis"}
	}
	if a.Topology == nil {
		return nil, none, &OptionError{Op: "Execute", Field: "Analysis.Topology", Reason: "nil topology"}
	}
	if opts.QueuesPerLink < 0 {
		return nil, none, &OptionError{Op: "Execute", Field: "QueuesPerLink", Reason: fmt.Sprintf("negative queue count %d (0 = analysis minimum)", opts.QueuesPerLink)}
	}
	if opts.Capacity < 0 {
		return nil, none, &OptionError{Op: "Execute", Field: "Capacity", Reason: fmt.Sprintf("negative capacity %d", opts.Capacity)}
	}
	if opts.ExtCapacity < 0 {
		return nil, none, &OptionError{Op: "Execute", Field: "ExtCapacity", Reason: fmt.Sprintf("negative extension capacity %d", opts.ExtCapacity)}
	}
	if opts.ExtPenalty < 0 {
		return nil, none, &OptionError{Op: "Execute", Field: "ExtPenalty", Reason: fmt.Sprintf("negative extension penalty %d", opts.ExtPenalty)}
	}
	if opts.MaxCycles < 0 {
		return nil, none, &OptionError{Op: "Execute", Field: "MaxCycles", Reason: fmt.Sprintf("negative cycle bound %d", opts.MaxCycles)}
	}
	if opts.Workers < 0 {
		return nil, none, &OptionError{Op: "Execute", Field: "Workers", Reason: fmt.Sprintf("negative worker count %d (0 = single-threaded)", opts.Workers)}
	}
	if opts.Faults != nil {
		if ferr := opts.Faults.Validate(a.Program.NumCells(), len(a.Topology.Links())); ferr != nil {
			return nil, none, &OptionError{Op: "Execute", Field: "Faults", Reason: ferr.Error()}
		}
	}
	if opts.LinkModel != nil {
		if lerr := opts.LinkModel.Validate(len(a.Topology.Links())); lerr != nil {
			return nil, none, &OptionError{Op: "Execute", Field: "LinkModel", Reason: lerr.Error()}
		}
	}
	switch opts.Policy {
	case DynamicCompatible, StaticAssignment, NaiveFCFS, NaiveLIFO, NaiveRandom, NaiveAdversarial:
	default:
		return nil, none, &OptionError{Op: "Execute", Field: "Policy", Reason: fmt.Sprintf("unknown policy kind %d", int(opts.Policy))}
	}
	if !a.DeadlockFree {
		return nil, none, fmt.Errorf("core: program is not deadlock-free: %s",
			crossoff.DescribeBlocked(a.Program, a.Blocked))
	}
	queues := a.ResolveQueues(opts.Policy, opts.QueuesPerLink)
	capacity := opts.Capacity
	if capacity == 0 {
		capacity = 1
	}
	if !opts.Force {
		switch opts.Policy {
		case DynamicCompatible:
			if queues < a.MinQueuesDynamic {
				return nil, none, fmt.Errorf(
					"core: %d queues per link < %d required by the largest equal-label group (Theorem 1 assumption (ii)); pass Force to run anyway",
					queues, a.MinQueuesDynamic)
			}
		case StaticAssignment:
			if queues < a.MinQueuesStatic {
				return nil, none, fmt.Errorf(
					"core: %d queues per link < %d required for static assignment; pass Force to run anyway",
					queues, a.MinQueuesStatic)
			}
		}
	}
	m, err := a.Machine()
	if err != nil {
		return nil, none, err
	}
	return m, machine.ExecOptions{
		QueuesPerLink:    queues,
		Capacity:         capacity,
		ExtCapacity:      opts.ExtCapacity,
		ExtPenalty:       opts.ExtPenalty,
		DirectionalPools: opts.DirectionalPools,
		Logic:            opts.Logic,
		MaxCycles:        opts.MaxCycles,
		RecordTimeline:   opts.RecordTimeline,
		Workers:          opts.Workers,
		Context:          opts.Context,
		Faults:           opts.Faults,
		LinkModel:        opts.LinkModel,
	}, nil
}

// Runner is a batched execution context over one analysis: it owns a
// dedicated machine.Exec and replays configurations against it
// back-to-back, so a column of grid points pays sync.Pool traffic and
// scratch allocation zero times instead of once per point. Validation,
// budget resolution, and the Theorem 1 precondition check are the
// shared lower step — a Runner rejects exactly the configurations
// Execute rejects, with identical error strings, and a completed run
// produces byte-identical Result content.
//
// The Result lifetime contract is machine.Exec's: the returned Result
// aliases the Runner's retained buffers and is valid only until the
// next Execute call on the same Runner. A Runner is NOT safe for
// concurrent use; concurrent callers use Execute, which is.
type Runner struct {
	a  *Analysis
	ex *machine.Exec
	// policies retains one assign.Policy instance per kind: policies
	// fully reset their per-run state in Setup (see assign.Policy), so
	// reuse is invisible in results while eliding the per-grid-point
	// constructor and grant-scratch allocations. seeds invalidates an
	// instance when the caller's seed changes (only randomized
	// policies read it, but re-creating is cheaper than knowing which).
	policies [NaiveAdversarial + 1]assign.Policy
	seeds    [NaiveAdversarial + 1]int64
}

// NewRunner returns a batched execution context for a. The analysis'
// machine is compiled lazily on the first Execute, exactly as the
// package-level Execute does, so constructing a Runner for an analysis
// that turns out never to run costs nothing.
func NewRunner(a *Analysis) *Runner {
	return &Runner{a: a}
}

// Execute runs one configuration against the Runner's retained
// execution context. See Runner for the Result lifetime contract.
//
//sysvet:hotpath
func (r *Runner) Execute(opts ExecOptions) (*sim.Result, error) {
	m, mopts, err := lower(r.a, opts)
	if err != nil {
		return nil, err
	}
	mopts.Policy = r.policyFor(opts.Policy, opts.Seed)
	if r.ex == nil {
		r.ex = m.NewExec()
	}
	return r.ex.Run(mopts)
}

// policyFor returns the Runner's retained policy instance for a kind,
// creating it on first use and replacing it when the seed changes.
// lower has already validated the kind.
func (r *Runner) policyFor(k PolicyKind, seed int64) assign.Policy {
	i := int(k)
	if r.policies[i] == nil || r.seeds[i] != seed {
		r.policies[i] = k.policy(seed)
		r.seeds[i] = seed
	}
	return r.policies[i]
}
