package core

import (
	"math/rand"
	"strings"
	"testing"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
	"systolic/internal/verify"
	"systolic/internal/workload"
)

func analyzeWorkload(t *testing.T, w *workload.Workload) *Analysis {
	t.Helper()
	a, err := Analyze(w.Program, w.Topology, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeFig2(t *testing.T) {
	a := analyzeWorkload(t, workload.Fig2())
	if !a.DeadlockFree || !a.Strict {
		t.Fatal("Fig 2 not deadlock-free")
	}
	if a.MinQueuesDynamic < 1 || a.MinQueuesStatic < a.MinQueuesDynamic {
		t.Fatalf("queue requirements dyn=%d static=%d", a.MinQueuesDynamic, a.MinQueuesStatic)
	}
}

func TestAnalyzeDeadlockedProgramNotAnError(t *testing.T) {
	w := workload.Fig5P3()
	a, err := Analyze(w.Program, w.Topology, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.DeadlockFree {
		t.Fatal("P3 classified deadlock-free")
	}
	if len(a.Blocked) == 0 {
		t.Fatal("no blocked diagnosis")
	}
	if _, err := Execute(a, ExecOptions{}); err == nil {
		t.Fatal("Execute accepted a deadlocked program")
	}
}

func TestAnalyzeLookaheadAdmitsP1(t *testing.T) {
	w := workload.Fig5P1()
	strict, err := Analyze(w.Program, w.Topology, AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if strict.DeadlockFree {
		t.Fatal("P1 strict-admitted")
	}
	la, err := Analyze(w.Program, w.Topology, AnalyzeOptions{Lookahead: true, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !la.DeadlockFree || la.Strict {
		t.Fatalf("lookahead analysis wrong: free=%v strict=%v", la.DeadlockFree, la.Strict)
	}
	res, err := Execute(la, ExecOptions{QueuesPerLink: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("P1 run %s", res.Outcome())
	}
}

func TestExecuteRefusesUnderProvisionedCompatible(t *testing.T) {
	a := analyzeWorkload(t, workload.Fig8())
	_, err := Execute(a, ExecOptions{QueuesPerLink: 1})
	if err == nil || !strings.Contains(err.Error(), "assumption (ii)") {
		t.Fatalf("Execute = %v, want precondition refusal", err)
	}
	// Force runs it anyway — and the stall is detected as deadlock.
	res, err := Execute(a, ExecOptions{QueuesPerLink: 1, Force: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatalf("forced under-provisioned run %s", res.Outcome())
	}
}

func TestExecuteDefaultsQueueCountFromAnalysis(t *testing.T) {
	a := analyzeWorkload(t, workload.Fig8())
	res, err := Execute(a, ExecOptions{}) // QueuesPerLink defaults to MinQueuesDynamic (2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("defaulted run %s", res.Outcome())
	}
}

func TestExecuteStaticPolicy(t *testing.T) {
	a := analyzeWorkload(t, workload.Fig3())
	res, err := Execute(a, ExecOptions{Policy: StaticAssignment, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("static run %s", res.Outcome())
	}
	// Static under-provisioned refuses too.
	if _, err := Execute(a, ExecOptions{Policy: StaticAssignment, QueuesPerLink: 1}); err == nil {
		t.Fatal("static accepted too few queues")
	}
}

func TestAllPolicyKindsRunFig2(t *testing.T) {
	w := workload.Fig2()
	a := analyzeWorkload(t, w)
	for _, kind := range []PolicyKind{
		DynamicCompatible, StaticAssignment, NaiveFCFS, NaiveLIFO, NaiveRandom, NaiveAdversarial,
	} {
		res, err := Execute(a, ExecOptions{
			Policy:        kind,
			QueuesPerLink: a.MinQueuesStatic, // plenty for everyone
			Capacity:      2,
			Logic:         w.Logic,
			Seed:          11,
			Force:         true,
		})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !res.Completed {
			t.Fatalf("%v: %s", kind, res.Outcome())
		}
		if err := w.CheckReceived(res.Received); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
	}
}

func TestPolicyKindStrings(t *testing.T) {
	want := map[PolicyKind]string{
		DynamicCompatible: "dynamic-compatible",
		StaticAssignment:  "static",
		NaiveFCFS:         "naive-fcfs",
		NaiveLIFO:         "naive-lifo",
		NaiveRandom:       "naive-random",
		NaiveAdversarial:  "naive-adversarial",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d → %q", int(k), k.String())
		}
	}
}

// TestTheorem1Property is the headline property test: for randomized
// deadlock-free programs on linear arrays, the full avoidance pipeline
// (crossing-off ✓, §6 labels ✓, compatible assignment with enough
// queues) always runs to completion. This is Theorem 1, exercised.
func TestTheorem1Property(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed))
		cells := 2 + rng.Intn(5)
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells:    cells,
			Messages: 1 + rng.Intn(7),
			MaxWords: 4,
			Chain:    seed%3 == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		topo := topology.Linear(cells)
		a, err := Analyze(p, topo, AnalyzeOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
		if !a.DeadlockFree {
			t.Fatalf("seed %d: generator produced a non-deadlock-free program", seed)
		}
		res, err := Execute(a, ExecOptions{Capacity: 1 + int(seed%3)})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p)
		}
		if !res.Completed {
			t.Fatalf("seed %d: Theorem 1 violated — %s\n%s\nblocked:\n%s",
				seed, res.Outcome(), p, sim.DescribeBlocked(p, res.Blocked))
		}
	}
}

// TestTheorem1OnRing exercises the property over a ring topology
// (multi-hop, shared links in both directions).
func TestTheorem1OnRing(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		cells := 3 + rng.Intn(4)
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells:    cells,
			Messages: 1 + rng.Intn(5),
			MaxWords: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(p, topology.Ring(cells), AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(a, ExecOptions{Capacity: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: ring run %s\n%s", seed, res.Outcome(), p)
		}
	}
}

// TestNaiveSometimesDeadlocks documents the converse: naive assignment
// with scarce queues does deadlock on some generated programs — the
// avoidance machinery is not vacuous.
func TestNaiveSometimesDeadlocks(t *testing.T) {
	deadlocks := 0
	for seed := int64(0); seed < 300 && deadlocks == 0; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cells := 3 + rng.Intn(3)
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells:    cells,
			Messages: 3 + rng.Intn(5),
			MaxWords: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(p, topology.Linear(cells), AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(a, ExecOptions{
			Policy: NaiveLIFO, QueuesPerLink: 1, Capacity: 1, Force: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			deadlocks++
		}
	}
	if deadlocks == 0 {
		t.Fatal("naive LIFO with 1 queue never deadlocked on 300 random programs")
	}
}

// TestCompatibleNeverReordersWords: completion is not enough — the
// receiver must see every message's words in order.
func TestCompatibleNeverReordersWords(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 77))
		cells := 3 + rng.Intn(3)
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells: cells, Messages: 4, MaxWords: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(p, topology.Linear(cells), AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(a, ExecOptions{Capacity: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: %s", seed, res.Outcome())
		}
		for id := 0; id < p.NumMessages(); id++ {
			words := res.Received[id]
			if len(words) != p.Message(model.MessageID(id)).Words {
				t.Fatalf("seed %d: message %d received %d words", seed, id, len(words))
			}
			for i, w := range words {
				if w != sim.Word(float64(id)*1e6+float64(i)) {
					t.Fatalf("seed %d: message %d word %d = %v (reordered)", seed, id, i, w)
				}
			}
		}
	}
}
