package core

import (
	"fmt"
	"math/rand"
	"testing"

	"systolic/internal/sim"
	"systolic/internal/topology"
	"systolic/internal/verify"
)

// TestTheorem1AcrossTopologies runs the full avoidance pipeline over
// every topology family the package provides, with random
// deadlock-free programs whose message endpoints are arbitrary cell
// pairs (multi-hop routes, heavy link sharing).
func TestTheorem1AcrossTopologies(t *testing.T) {
	families := []struct {
		name  string
		cells int
		topo  topology.Topology
	}{
		{"linear", 6, topology.Linear(6)},
		{"ring", 6, topology.Ring(6)},
		{"mesh", 6, topology.Mesh2D(2, 3)},
		{"torus", 6, topology.Torus2D(2, 3)},
		{"hypercube", 8, topology.Hypercube(3)},
		{"star", 6, topology.Star(6)},
	}
	for _, fam := range families {
		fam := fam
		t.Run(fam.name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				rng := rand.New(rand.NewSource(seed*31 + 7))
				p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
					Cells:    fam.cells,
					Messages: 2 + rng.Intn(5),
					MaxWords: 3,
				})
				if err != nil {
					t.Fatal(err)
				}
				a, err := Analyze(p, fam.topo, AnalyzeOptions{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				res, err := Execute(a, ExecOptions{Capacity: 1 + int(seed%2)})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Completed {
					t.Fatalf("seed %d on %s: %s\n%s\n%s",
						seed, fam.topo.Name(), res.Outcome(), p,
						sim.DescribeBlocked(p, res.Blocked))
				}
			}
		})
	}
}

// TestSimulatorIsDeterministic: identical configurations must yield
// identical outcomes, cycle counts and received words — the foundation
// of the exact deadlock detection argument.
func TestSimulatorIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
		Cells: 5, Messages: 6, MaxWords: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	topo := topology.Linear(5)
	run := func() *sim.Result {
		a, err := Analyze(p, topo, AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(a, ExecOptions{Capacity: 2, RecordTimeline: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Outcome() != r2.Outcome() || r1.Cycles != r2.Cycles {
		t.Fatalf("nondeterministic: %s/%d vs %s/%d", r1.Outcome(), r1.Cycles, r2.Outcome(), r2.Cycles)
	}
	if fmt.Sprint(r1.Received) != fmt.Sprint(r2.Received) {
		t.Fatal("received words differ between identical runs")
	}
	if len(r1.Timeline) != len(r2.Timeline) {
		t.Fatal("timelines differ between identical runs")
	}
	for i := range r1.Timeline {
		if r1.Timeline[i] != r2.Timeline[i] {
			t.Fatalf("timeline event %d differs", i)
		}
	}
}

// TestDirectionalPoolsPreserveTheorem1: the per-direction pool
// ablation must not break the guarantee.
func TestDirectionalPoolsPreserveTheorem1(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 400))
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells: 5, Messages: 5, MaxWords: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(p, topology.Linear(5), AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(a, ExecOptions{Capacity: 2, DirectionalPools: true})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: directional run %s\n%s", seed, res.Outcome(), p)
		}
	}
}
