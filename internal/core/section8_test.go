package core

import (
	"math/rand"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
	"systolic/internal/verify"
)

// TestSection8ClassifierMatchesSimulator validates the §8 story
// end-to-end: for single-hop programs under static assignment (one
// private queue per message, so assignment plays no role), the
// lookahead classifier with skip budget c must agree exactly with the
// simulator running capacity-c queues — admitted programs complete,
// rejected programs deadlock. The execution of a program over bounded
// private FIFOs is monotone, so the verdict is schedule-independent
// and the equivalence is exact.
func TestSection8ClassifierMatchesSimulator(t *testing.T) {
	agreeBoth := 0
	for seed := int64(0); seed < 250; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cells := 2 + rng.Intn(3)
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells:    cells,
			Messages: 2 + rng.Intn(4),
			MaxWords: 3,
			Chain:    true, // single-hop routes: budget == capacity
		})
		if err != nil {
			t.Fatal(err)
		}
		// Shuffle ops to produce programs across the whole spectrum:
		// strictly fine, buffering-fixable, and truly deadlocked.
		for i := 0; i < 1+rng.Intn(6); i++ {
			c := rng.Intn(p.NumCells())
			codeLen := len(p.Code(model.CellID(c)))
			if codeLen < 2 {
				continue
			}
			if q, err := verify.SwapAdjacent(p, model.CellID(c), rng.Intn(codeLen-1)); err == nil {
				p = q
			}
		}
		capacity := 1 + rng.Intn(3)
		admitted := crossoff.Classify(p, crossoff.Options{
			Lookahead: true,
			Budget:    crossoff.UniformBudget(capacity),
		})
		res, err := sim.Run(p, sim.Config{
			Topology:      topology.Linear(cells),
			QueuesPerLink: p.NumMessages(), // private queue per message
			Capacity:      capacity,
			Policy:        assign.Static(),
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if admitted && !res.Completed {
			t.Fatalf("seed %d: classifier admitted (budget %d) but run %s\n%s",
				seed, capacity, res.Outcome(), p)
		}
		if !admitted && !res.Deadlocked {
			t.Fatalf("seed %d: classifier rejected (budget %d) but run %s\n%s",
				seed, capacity, res.Outcome(), p)
		}
		if !admitted {
			agreeBoth++
		}
	}
	if agreeBoth == 0 {
		t.Fatal("mutation never produced a rejected program; test is vacuous")
	}
}

// TestSection8ModifiedLabelingRunsLookaheadPrograms: programs admitted
// only under lookahead run to completion under the full pipeline with
// the §8.2 modified labeling and capacity matching the budget.
func TestSection8ModifiedLabelingRunsLookaheadPrograms(t *testing.T) {
	checked := 0
	for seed := int64(0); seed < 400 && checked < 30; seed++ {
		rng := rand.New(rand.NewSource(seed + 5000))
		cells := 2 + rng.Intn(3)
		p, err := verify.RandomDeadlockFree(rng, verify.RandomOptions{
			Cells:    cells,
			Messages: 2 + rng.Intn(4),
			MaxWords: 3,
			Chain:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1+rng.Intn(6); i++ {
			c := rng.Intn(p.NumCells())
			codeLen := len(p.Code(model.CellID(c)))
			if codeLen < 2 {
				continue
			}
			if q, err := verify.SwapAdjacent(p, model.CellID(c), rng.Intn(codeLen-1)); err == nil {
				p = q
			}
		}
		const capacity = 2
		strict := crossoff.Classify(p, crossoff.Options{})
		admitted := crossoff.Classify(p, crossoff.Options{
			Lookahead: true, Budget: crossoff.UniformBudget(capacity),
		})
		if strict || !admitted {
			continue // want lookahead-only programs
		}
		checked++
		lab, err := label.Assign(p, label.Options{
			Lookahead: true, Budget: crossoff.UniformBudget(capacity),
		})
		if err != nil {
			t.Fatalf("seed %d: labeling: %v\n%s", seed, err, p)
		}
		rep, err := verify.CheckPreconditions(p, topology.Linear(cells), lab.Dense, 1<<30)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(p, sim.Config{
			Topology:      topology.Linear(cells),
			QueuesPerLink: rep.MaxGroup,
			Capacity:      capacity,
			Policy:        assign.Compatible(),
			Labels:        lab.Dense,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Completed {
			t.Fatalf("seed %d: lookahead-admitted program %s under modified labeling\n%s\n%s",
				seed, res.Outcome(), p, sim.DescribeBlocked(p, res.Blocked))
		}
	}
	if checked == 0 {
		t.Fatal("never found a lookahead-only program; test is vacuous")
	}
	t.Logf("validated %d lookahead-only programs", checked)
}
