// Package dsl parses and formats a small text notation for systolic
// programs, so programs can live in files, tests, and tool invocations
// in the same shape the paper prints them.
//
// Grammar (line oriented; '#' starts a comment):
//
//	topology linear N | ring N | mesh R C
//	cell NAME [host]
//	message NAME SENDER RECEIVER WORDS
//	code CELL: OP OP OP …
//
// where OP is R(MSG) or W(MSG). Multiple code lines for the same cell
// append. The topology line is optional; Linear(numCells) is the
// default.
package dsl

import (
	"fmt"
	"strconv"
	"strings"

	"systolic/internal/model"
	"systolic/internal/topology"
)

// File is a parsed DSL document: a validated program plus its
// (possibly defaulted) topology.
type File struct {
	Program  *model.Program
	Topology topology.Topology
}

// Parse reads a DSL document.
func Parse(src string) (*File, error) {
	b := model.NewBuilder()
	cellID := make(map[string]model.CellID)
	msgID := make(map[string]model.MessageID)
	var topoKind string
	var topoArgs []int
	numCells := 0

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("dsl: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "topology":
			if len(fields) < 3 {
				return nil, fail("topology needs a kind and size(s)")
			}
			topoKind = fields[1]
			topoArgs = nil
			for _, f := range fields[2:] {
				n, err := strconv.Atoi(f)
				if err != nil {
					return nil, fail("bad topology size %q", f)
				}
				topoArgs = append(topoArgs, n)
			}
		case "cell":
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fail("cell needs a name and optional 'host'")
			}
			name := fields[1]
			if _, dup := cellID[name]; dup {
				return nil, fail("duplicate cell %q", name)
			}
			if len(fields) == 3 {
				if fields[2] != "host" {
					return nil, fail("unknown cell attribute %q", fields[2])
				}
				cellID[name] = b.AddHost(name)
			} else {
				cellID[name] = b.AddCell(name)
			}
			numCells++
		case "message":
			if len(fields) != 5 {
				return nil, fail("message needs NAME SENDER RECEIVER WORDS")
			}
			s, ok := cellID[fields[2]]
			if !ok {
				return nil, fail("unknown sender cell %q", fields[2])
			}
			r, ok := cellID[fields[3]]
			if !ok {
				return nil, fail("unknown receiver cell %q", fields[3])
			}
			words, err := strconv.Atoi(fields[4])
			if err != nil {
				return nil, fail("bad word count %q", fields[4])
			}
			msgID[fields[1]] = b.DeclareMessage(fields[1], s, r, words)
		case "code":
			rest := strings.TrimPrefix(line, "code")
			colon := strings.IndexByte(rest, ':')
			if colon < 0 {
				return nil, fail("code needs 'code CELL: ops'")
			}
			cellName := strings.TrimSpace(rest[:colon])
			c, ok := cellID[cellName]
			if !ok {
				return nil, fail("unknown cell %q", cellName)
			}
			for _, tok := range strings.Fields(rest[colon+1:]) {
				kind, msg, err := parseOp(tok)
				if err != nil {
					return nil, fail("%v", err)
				}
				id, ok := msgID[msg]
				if !ok {
					return nil, fail("unknown message %q", msg)
				}
				if kind == model.Write {
					b.Write(c, id)
				} else {
					b.Read(c, id)
				}
			}
		default:
			return nil, fail("unknown directive %q", fields[0])
		}
	}

	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	t, err := buildTopology(topoKind, topoArgs, numCells)
	if err != nil {
		return nil, err
	}
	return &File{Program: p, Topology: t}, nil
}

func parseOp(tok string) (model.OpKind, string, error) {
	if len(tok) < 4 || tok[1] != '(' || tok[len(tok)-1] != ')' {
		return 0, "", fmt.Errorf("bad op %q (want R(MSG) or W(MSG))", tok)
	}
	name := tok[2 : len(tok)-1]
	switch tok[0] {
	case 'R', 'r':
		return model.Read, name, nil
	case 'W', 'w':
		return model.Write, name, nil
	}
	return 0, "", fmt.Errorf("bad op %q (want R(MSG) or W(MSG))", tok)
}

func buildTopology(kind string, args []int, numCells int) (topology.Topology, error) {
	switch kind {
	case "":
		return topology.Linear(numCells), nil
	case "linear":
		if len(args) != 1 {
			return nil, fmt.Errorf("dsl: topology linear needs one size")
		}
		return topology.Linear(args[0]), nil
	case "ring":
		if len(args) != 1 {
			return nil, fmt.Errorf("dsl: topology ring needs one size")
		}
		return topology.Ring(args[0]), nil
	case "mesh":
		if len(args) != 2 {
			return nil, fmt.Errorf("dsl: topology mesh needs rows and cols")
		}
		return topology.Mesh2D(args[0], args[1]), nil
	}
	return nil, fmt.Errorf("dsl: unknown topology %q", kind)
}

// Format renders a program (and optional topology description) back
// into parseable DSL text. Parse(Format(p)) reproduces the program.
func Format(p *model.Program, t topology.Topology) string {
	var b strings.Builder
	if t != nil {
		if line, ok := topoLine(t); ok {
			b.WriteString("topology " + line + "\n")
		}
	}
	for _, c := range p.Cells() {
		if c.Host {
			fmt.Fprintf(&b, "cell %s host\n", c.Name)
		} else {
			fmt.Fprintf(&b, "cell %s\n", c.Name)
		}
	}
	for _, m := range p.Messages() {
		fmt.Fprintf(&b, "message %s %s %s %d\n", m.Name, p.Cell(m.Sender).Name, p.Cell(m.Receiver).Name, m.Words)
	}
	for _, c := range p.Cells() {
		code := p.Code(c.ID)
		if len(code) == 0 {
			continue
		}
		fmt.Fprintf(&b, "code %s:", c.Name)
		for _, op := range code {
			b.WriteString(" " + p.OpString(op))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// topoLine renders the topology directive for the kinds the grammar
// supports; arbitrary graphs have no DSL syntax and are omitted (Parse
// then defaults to a linear array).
func topoLine(t topology.Topology) (string, bool) {
	name := t.Name()
	for _, kind := range []string{"linear", "ring", "mesh"} {
		if strings.HasPrefix(name, kind+"(") {
			args := strings.TrimSuffix(strings.TrimPrefix(name, kind+"("), ")")
			args = strings.ReplaceAll(args, "x", " ")
			return kind + " " + args, true
		}
	}
	return "", false
}
