package dsl

import (
	"strings"
	"testing"

	"systolic/internal/crossoff"
	"systolic/internal/model"
)

const fig6Src = `
# Fig 6: cyclic messages, deadlock-free.
topology ring 4
cell C1
cell C2
cell C3
cell C4
message A C1 C2 1
message B C2 C3 1
message C C3 C4 1
message D C4 C1 1
code C1: W(A) R(D)
code C2: R(A) W(B)
code C3: R(B) W(C)
code C4: R(C) W(D)
`

func TestParseFig6(t *testing.T) {
	f, err := Parse(fig6Src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Program.NumCells() != 4 || f.Program.NumMessages() != 4 {
		t.Fatalf("cells=%d msgs=%d", f.Program.NumCells(), f.Program.NumMessages())
	}
	if f.Topology.Name() != "ring(4)" {
		t.Fatalf("topology %s", f.Topology.Name())
	}
	if !crossoff.Classify(f.Program, crossoff.Options{}) {
		t.Fatal("parsed Fig 6 not deadlock-free")
	}
}

func TestParseDefaultsToLinear(t *testing.T) {
	f, err := Parse(`
cell A
cell B
message M A B 1
code A: W(M)
code B: R(M)
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Topology.Name() != "linear(2)" {
		t.Fatalf("topology %s", f.Topology.Name())
	}
}

func TestParseHostAttribute(t *testing.T) {
	f, err := Parse(`
cell H host
cell C
message M H C 1
code H: W(M)
code C: R(M)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Program.Cell(0).Host {
		t.Fatal("host attribute lost")
	}
}

func TestParseMultipleCodeLinesAppend(t *testing.T) {
	f, err := Parse(`
cell A
cell B
message M A B 3
code A: W(M)
code A: W(M) W(M)
code B: R(M) R(M) R(M)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Program.Code(0)) != 3 {
		t.Fatalf("code A has %d ops", len(f.Program.Code(0)))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus directive", "unknown directive"},
		{"cell", "cell needs"},
		{"cell A weird", "unknown cell attribute"},
		{"cell A\ncell A", "duplicate cell"},
		{"cell A\nmessage M A B 1", "unknown receiver"},
		{"cell A\ncell B\nmessage M A B x", "bad word count"},
		{"cell A\ncell B\nmessage M A B 1\ncode C: W(M)", "unknown cell"},
		{"cell A\ncell B\nmessage M A B 1\ncode A: W(X)", "unknown message"},
		{"cell A\ncell B\nmessage M A B 1\ncode A: FOO", "bad op"},
		{"cell A\ncell B\nmessage M A B 1\ncode A W(M)", "code needs"},
		{"topology bogus 3\ncell A\ncell B\nmessage M A B 1\ncode A: W(M)\ncode B: R(M)", "unknown topology"},
		{"topology linear\ncell A", "topology needs"},
		{"topology linear x\ncell A", "bad topology size"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestParseValidationError(t *testing.T) {
	// Word count mismatch surfaces model validation.
	_, err := Parse(`
cell A
cell B
message M A B 2
code A: W(M)
code B: R(M) R(M)
`)
	if err == nil {
		t.Fatal("validation error not surfaced")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	f, err := Parse(fig6Src)
	if err != nil {
		t.Fatal(err)
	}
	out := Format(f.Program, f.Topology)
	g, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if g.Program.NumCells() != f.Program.NumCells() || g.Program.NumMessages() != f.Program.NumMessages() {
		t.Fatal("round trip lost structure")
	}
	for c := 0; c < f.Program.NumCells(); c++ {
		a, b := f.Program.Code(model.CellID(c)), g.Program.Code(model.CellID(c))
		if len(a) != len(b) {
			t.Fatalf("cell %d code length differs", c)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("cell %d op %d differs", c, i)
			}
		}
	}
	if g.Topology.Name() != "ring(4)" {
		t.Fatalf("topology %s after round trip", g.Topology.Name())
	}
}

func TestFormatMeshRoundTrip(t *testing.T) {
	src := `
topology mesh 2 2
cell P1
cell P2
cell P3
cell P4
message M P1 P2 1
code P1: W(M)
code P2: R(M)
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Parse(Format(f.Program, f.Topology))
	if err != nil {
		t.Fatal(err)
	}
	if g.Topology.Name() != "mesh(2x2)" {
		t.Fatalf("topology %s", g.Topology.Name())
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	f, err := Parse("# lead\n\ncell A # trailing\ncell B\nmessage M A B 1 # words\ncode A: W(M)\ncode B: R(M)\n")
	if err != nil {
		t.Fatal(err)
	}
	if f.Program.NumCells() != 2 {
		t.Fatal("comment handling broke parsing")
	}
}
