package dsl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// extractFences returns the bodies of fenced code blocks whose info
// string equals lang, in document order.
func extractFences(t *testing.T, doc, lang string) []string {
	t.Helper()
	var out []string
	lines := strings.Split(doc, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```"+lang {
			continue
		}
		var body []string
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body = append(body, lines[i])
		}
		if i == len(lines) {
			t.Fatalf("unterminated ```%s fence", lang)
		}
		out = append(out, strings.Join(body, "\n")+"\n")
	}
	return out
}

func readDoc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "docs", "DSL.md"))
	if err != nil {
		t.Fatalf("docs/DSL.md must exist: %v", err)
	}
	return string(b)
}

// TestDSLDocSnippetsParse round-trips every documented snippet
// through the parser, so docs/DSL.md cannot document syntax the
// parser does not accept. Each good snippet must also survive
// Format→Parse canonicalization.
func TestDSLDocSnippetsParse(t *testing.T) {
	doc := readDoc(t)
	good := extractFences(t, doc, "sys")
	if len(good) < 4 {
		t.Fatalf("docs/DSL.md documents only %d parseable snippets; the reference should show at least 4", len(good))
	}
	for i, src := range good {
		f, err := Parse(src)
		if err != nil {
			t.Errorf("documented snippet %d does not parse: %v\n%s", i+1, err, src)
			continue
		}
		rendered := Format(f.Program, f.Topology)
		f2, err := Parse(rendered)
		if err != nil {
			t.Errorf("snippet %d does not round-trip through Format: %v\n%s", i+1, err, rendered)
			continue
		}
		if Format(f2.Program, f2.Topology) != rendered {
			t.Errorf("snippet %d: Format is not a fixed point", i+1)
		}
	}
}

// TestDSLDocBadSnippetsRejected asserts every sys-bad snippet really
// is rejected, so the doc's error examples stay honest.
func TestDSLDocBadSnippetsRejected(t *testing.T) {
	doc := readDoc(t)
	bad := extractFences(t, doc, "sys-bad")
	if len(bad) < 3 {
		t.Fatalf("docs/DSL.md shows only %d rejected snippets; the reference should show at least 3", len(bad))
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("sys-bad snippet %d unexpectedly parses:\n%s", i+1, src)
		}
	}
}

// TestDSLDocCoversShippedExamples pins the walkthrough section: every
// shipped example file must be named in the doc and must parse.
func TestDSLDocCoversShippedExamples(t *testing.T) {
	doc := readDoc(t)
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "dsl", "*.sys"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no examples/dsl/*.sys files found (err %v)", err)
	}
	for _, path := range files {
		name := filepath.Base(path)
		if !strings.Contains(doc, name) {
			t.Errorf("docs/DSL.md never mentions shipped example %s", name)
		}
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(string(src)); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
}

// TestDSLDocCoversEveryDirective keeps the reference complete: each
// directive, topology kind, and op form the parser accepts must be
// documented.
func TestDSLDocCoversEveryDirective(t *testing.T) {
	doc := readDoc(t)
	for _, required := range []string{
		"topology linear", "topology ring", "topology mesh",
		"`cell`", "`message`", "`code`", "host",
		"R(MSG)", "W(MSG)", "#",
	} {
		if !strings.Contains(doc, required) {
			t.Errorf("docs/DSL.md does not document %q", required)
		}
	}
}
