package linkmodel

import (
	"strings"
	"testing"

	"systolic/internal/topology"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"unit",
		"fixed,delay=1",
		"fixed,delay=3",
		"fixed,delay=2,credit=1",
		"fixed,delay=2,link:3:delay=5",
		"fixed,delay=1,link:0:delay=4,link:2:credit=1",
		"congestion,delay=1,threshold=2,max=4",
		"congestion,delay=2,threshold=1,max=3,credit=2",
	}
	for _, spec := range specs {
		p, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if got := p.String(); got != spec {
			t.Errorf("ParseSpec(%q).String() = %q", spec, got)
		}
		q, err := ParseSpec(p.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", p.String(), err)
		}
		if q.String() != p.String() {
			t.Errorf("round-trip drift: %q -> %q", p.String(), q.String())
		}
	}
}

func TestParseSpecEmptyAndUnit(t *testing.T) {
	p, err := ParseSpec("")
	if err != nil || p != nil {
		t.Fatalf("ParseSpec(\"\") = %v, %v; want nil, nil", p, err)
	}
	u, err := ParseSpec("unit")
	if err != nil {
		t.Fatal(err)
	}
	if !u.IsUnit() {
		t.Error("unit plan is not IsUnit")
	}
	if Lower(u, 4) != nil {
		t.Error("Lower(unit) != nil")
	}
	if Lower(nil, 4) != nil {
		t.Error("Lower(nil) != nil")
	}
	// A fixed plan with unit parameters lowers to nil too.
	f, err := ParseSpec("fixed,delay=1")
	if err != nil {
		t.Fatal(err)
	}
	if Lower(f, 4) != nil {
		t.Error("Lower(fixed,delay=1) != nil")
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"bogus", "unknown model"},
		{"fixed,delay=2,delay=3", "duplicate parameter"},
		{"fixed,link:1:delay=2,link:1:delay=3", "duplicate delay for link 1"},
		{"fixed,threshold=2", "congestion model only"},
		{"congestion,link:0:delay=2", "fixed model only"},
		{"fixed,delay=x", "bad delay"},
		{"fixed,delay", "want key=value"},
		{"fixed,link:0:slow=2", "unknown link parameter"},
		{"congestion,warp=9", "unknown parameter"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", c.spec, err, c.want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok, err := ParseSpec("fixed,delay=2,link:3:delay=5")
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(4); err != nil {
		t.Errorf("Validate(4): %v", err)
	}
	if err := ok.Validate(3); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("Validate(3) err = %v, want out of range", err)
	}
	dup := &Plan{Kind: Fixed, Overrides: []Override{{Link: 1, Delay: 2}, {Link: 1, Credit: 1}}}
	if err := dup.Validate(4); err == nil || !strings.Contains(err.Error(), "more than one override") {
		t.Errorf("duplicate override err = %v", err)
	}
	neg := &Plan{Kind: Fixed, Delay: -1}
	if err := neg.Validate(4); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative delay err = %v", err)
	}
	huge := &Plan{Kind: Fixed, Delay: maxParam + 1}
	if err := huge.Validate(4); err == nil || !strings.Contains(err.Error(), "exceeds the maximum") {
		t.Errorf("huge delay err = %v", err)
	}
}

func TestLoweredBusy(t *testing.T) {
	p, err := ParseSpec("fixed,delay=3,credit=2,link:1:delay=5,link:2:credit=1")
	if err != nil {
		t.Fatal(err)
	}
	l := Lower(p, 4)
	if l == nil {
		t.Fatal("lowered to nil")
	}
	cases := []struct {
		link  topology.LinkID
		tally int32
		want  int
	}{
		{0, 1, 3},  // one word, one service of delay 3
		{0, 2, 3},  // within credit 2: still one service
		{0, 3, 6},  // two services
		{1, 1, 5},  // override delay
		{2, 4, 12}, // credit override 1: four services of delay 3
	}
	for _, c := range cases {
		if got := l.Busy(c.link, c.tally); got != c.want {
			t.Errorf("Busy(%d, %d) = %d, want %d", c.link, c.tally, got, c.want)
		}
	}
	if l.MaxFactor() != 5 {
		t.Errorf("MaxFactor = %d, want 5", l.MaxFactor())
	}
}

func TestLoweredCongestion(t *testing.T) {
	p, err := ParseSpec("congestion,delay=1,threshold=2,max=4")
	if err != nil {
		t.Fatal(err)
	}
	l := Lower(p, 2)
	if l == nil {
		t.Fatal("lowered to nil")
	}
	cases := []struct {
		tally int32
		want  int
	}{
		{1, 1},  // under threshold: unit
		{2, 1},  // (2-1)/2 = 0 extra
		{3, 2},  // one extra cycle of backpressure
		{9, 5},  // (9-1)/2 = 4, at the cap
		{99, 5}, // capped
	}
	for _, c := range cases {
		if got := l.Busy(0, c.tally); got != c.want {
			t.Errorf("Busy(0, %d) = %d, want %d", c.tally, got, c.want)
		}
	}
	if l.MaxFactor() != 5 {
		t.Errorf("MaxFactor = %d, want 5", l.MaxFactor())
	}
}

func TestScaleCycles(t *testing.T) {
	l := Lower(FixedPlan(4, 0), 2)
	if n, ok := l.ScaleCycles(100); !ok || n != 400 {
		t.Errorf("ScaleCycles(100) = %d, %v; want 400, true", n, ok)
	}
	const maxInt = int(^uint(0) >> 1)
	if _, ok := l.ScaleCycles(maxInt/2 + 1); ok {
		t.Error("ScaleCycles near MaxInt did not report overflow")
	}
	unitish := Lower(CongestionPlan(1, 2, 3), 2)
	if unitish.MaxFactor() != 4 {
		t.Errorf("congestion MaxFactor = %d, want 4", unitish.MaxFactor())
	}
}

func TestModelInterface(t *testing.T) {
	var m Model = FixedPlan(2, 1)
	if m.Spec() != "fixed,delay=2,credit=1" {
		t.Errorf("Spec = %q", m.Spec())
	}
	if m.Compile(3) == nil {
		t.Error("Compile = nil for non-unit model")
	}
	var u Model = UnitPlan()
	if u.Compile(3) != nil {
		t.Error("unit Compile != nil")
	}
}
