// Package linkmodel makes inter-cell link timing a pluggable model:
// the unit-latency default the simulator has always had, a fixed
// per-link latency/bandwidth model, and a congestion-sensitive model
// whose hop delay feeds back as backpressure. A Plan is the
// declarative description; Lower compiles it into dense per-link
// delay and credit tables that both execution engines (the compiled
// machine and the full-scan reference) consult at identical points,
// so non-unit-latency runs stay byte-identical across engines and
// worker counts.
//
// Timing semantics (the occupancy model): a link that served w words
// on cycle t is busy — no further word may enter its queues — until
// cycle t+B, where
//
//	B = delay · ceil(w / credit) + extra
//
// delay is the link's per-service latency (1 = unit), credit its
// per-service word bandwidth (0 = unlimited, one service per burst),
// and extra is the congestion model's feedback term
// min(maxExtra, (w-1)/threshold) — zero for the fixed model. A word
// "enters a link's queues" at exactly the points the fault package's
// LinkOpen gate guards, so link timing and fault gating compose at
// the same program points.
//
// Determinism argument: during a cycle's phases the busy state is
// read-only — a pure function of per-link next-free cycles computed
// at the END of the previous cycle by the coordinating goroutine.
// Per-cycle word tallies accumulate commutatively (shards append
// link hits to their private sinks; the merge sums them), so the
// next-free table is identical for every worker count. Deadlock
// detection waits for a no-event cycle on which every link is free
// again: busy windows are finite (≤ the tallied words × max factor),
// so a frozen system reaches an all-free cycle and the no-event
// argument of the fault-free engine applies unchanged.
package linkmodel

import (
	"fmt"
	"strconv"
	"strings"

	"systolic/internal/topology"
)

// Kind selects one of the three timing models.
type Kind int

const (
	// Unit is the classical cycle-synchronous model: every hop costs
	// one cycle, links never back up. Lower returns nil for it, so the
	// engines' hot paths pay a single nil test.
	Unit Kind = iota
	// Fixed gives every link a fixed service latency and optional word
	// credit, with per-link overrides.
	Fixed
	// Congestion is Fixed plus a load-feedback term: the more words a
	// link served in a cycle, the longer it stays busy, up to a cap.
	Congestion
)

// maxParam bounds every parsed parameter so lowered tables fit int32
// and derived cycle bounds cannot overflow from a spec alone.
const maxParam = 1 << 20

// Override adjusts one link of a Fixed plan. Zero fields inherit the
// plan-wide value.
type Override struct {
	Link   topology.LinkID
	Delay  int
	Credit int
}

// Plan is a declarative link-timing model for one run. A nil *Plan
// and a Plan that lowers to unit timing (delay ≤ 1, no credit, no
// effective override, not congestion-sensitive) are equivalent, and
// the engines produce byte-identical results for both.
type Plan struct {
	Kind Kind
	// Delay is the plan-wide per-service latency in cycles (0 and 1
	// mean unit latency).
	Delay int
	// Credit is the plan-wide per-service word bandwidth (0 =
	// unlimited: a burst of any size is one service).
	Credit int
	// Threshold and MaxExtra shape the Congestion feedback term
	// min(MaxExtra, (words-1)/Threshold). Threshold 0 defaults to 2.
	Threshold int
	MaxExtra  int
	// Overrides adjusts individual links (Fixed only). At most one
	// override per link; ParseSpec and Validate both enforce this.
	Overrides []Override
}

// Model is the pluggable link-timing interface: anything that can
// render itself in the shared spec grammar and compile to the dense
// tables the engines consult. *Plan is the canonical implementation;
// the engines never call the interface on a hot path — they index
// the compiled tables directly.
type Model interface {
	// Spec is the canonical spec-string form (ParseSpec grammar).
	Spec() string
	// Compile lowers the model against a concrete link count. nil
	// means unit timing.
	Compile(numLinks int) *Lowered
}

// Spec implements Model.
func (p *Plan) Spec() string { return p.String() }

// Compile implements Model. The plan must already be validated.
func (p *Plan) Compile(numLinks int) *Lowered { return Lower(p, numLinks) }

// UnitPlan returns the explicit unit-timing plan ("unit"); nil works
// everywhere a unit plan does.
func UnitPlan() *Plan { return &Plan{Kind: Unit} }

// FixedPlan returns a uniform fixed-latency plan.
func FixedPlan(delay, credit int) *Plan {
	return &Plan{Kind: Fixed, Delay: delay, Credit: credit}
}

// CongestionPlan returns a congestion-sensitive plan.
func CongestionPlan(delay, threshold, maxExtra int) *Plan {
	return &Plan{Kind: Congestion, Delay: delay, Threshold: threshold, MaxExtra: maxExtra}
}

// IsUnit reports whether the plan (possibly nil) times every link
// exactly like the classical unit-latency engine.
func (p *Plan) IsUnit() bool {
	if p == nil || p.Kind == Unit {
		return true
	}
	if p.Kind == Congestion {
		return p.Delay <= 1 && p.Credit == 0 && p.MaxExtra == 0
	}
	if p.Delay > 1 || p.Credit > 0 {
		return false
	}
	for _, o := range p.Overrides {
		if o.Delay > 1 || o.Credit > 0 {
			return false
		}
	}
	return true
}

// Validate checks the plan against a topology of numLinks links:
// parameters in range, overrides only where they are meaningful, and
// at most one override per link. A nil plan is valid.
func (p *Plan) Validate(numLinks int) error {
	if p == nil {
		return nil
	}
	switch p.Kind {
	case Unit, Fixed, Congestion:
	default:
		return fmt.Errorf("link model: unknown kind %d", p.Kind)
	}
	check := func(name string, v int) error {
		if v < 0 {
			return fmt.Errorf("link model: negative %s %d", name, v)
		}
		if v > maxParam {
			return fmt.Errorf("link model: %s %d exceeds the maximum %d", name, v, maxParam)
		}
		return nil
	}
	for _, c := range []struct {
		name string
		v    int
	}{{"delay", p.Delay}, {"credit", p.Credit}, {"threshold", p.Threshold}, {"max extra delay", p.MaxExtra}} {
		if err := check(c.name, c.v); err != nil {
			return err
		}
	}
	if p.Kind != Fixed && len(p.Overrides) > 0 {
		return fmt.Errorf("link model: per-link overrides apply to the fixed model only")
	}
	seen := make(map[topology.LinkID]bool, len(p.Overrides))
	for _, o := range p.Overrides {
		if int(o.Link) < 0 || int(o.Link) >= numLinks {
			return fmt.Errorf("link model: link %d out of range (topology has %d links)", o.Link, numLinks)
		}
		if seen[o.Link] {
			return fmt.Errorf("link model: link %d has more than one override", o.Link)
		}
		seen[o.Link] = true
		if err := check("delay", o.Delay); err != nil {
			return err
		}
		if err := check("credit", o.Credit); err != nil {
			return err
		}
	}
	return nil
}

// String renders the plan as a comma-separated spec in the grammar
// ParseSpec accepts: kind first, plan-wide parameters in fixed order,
// then per-link overrides in declaration order.
// ParseSpec(p.String()) round-trips every valid plan.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var b strings.Builder
	switch p.Kind {
	case Unit:
		return "unit"
	case Fixed:
		b.WriteString("fixed")
		fmt.Fprintf(&b, ",delay=%d", p.delayOrUnit())
		if p.Credit > 0 {
			fmt.Fprintf(&b, ",credit=%d", p.Credit)
		}
		for _, o := range p.Overrides {
			if o.Delay > 0 {
				fmt.Fprintf(&b, ",link:%d:delay=%d", o.Link, o.Delay)
			}
			if o.Credit > 0 {
				fmt.Fprintf(&b, ",link:%d:credit=%d", o.Link, o.Credit)
			}
		}
	case Congestion:
		b.WriteString("congestion")
		fmt.Fprintf(&b, ",delay=%d,threshold=%d,max=%d", p.delayOrUnit(), p.thresholdOrDefault(), p.MaxExtra)
		if p.Credit > 0 {
			fmt.Fprintf(&b, ",credit=%d", p.Credit)
		}
	}
	return b.String()
}

func (p *Plan) delayOrUnit() int {
	if p.Delay <= 0 {
		return 1
	}
	return p.Delay
}

func (p *Plan) thresholdOrDefault() int {
	if p.Threshold <= 0 {
		return 2
	}
	return p.Threshold
}

// ParseSpec parses a comma-separated link-model spec, the grammar the
// `sysdl run -link-model` flag and the server wire format's
// `linkModel` field share:
//
//	unit                          the classical unit-latency model
//	fixed[,delay=K][,credit=C][,link:IDX:delay=K][,link:IDX:credit=C]
//	congestion[,delay=K][,threshold=T][,max=M][,credit=C]
//
// An empty spec returns a nil plan (unit timing). Repeating a
// parameter — plan-wide or for the same link — is a parse error, not
// a silent last-write-wins. Index bounds are not known here; callers
// run Plan.Validate against the concrete topology.
func ParseSpec(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	parts := strings.Split(spec, ",")
	p := &Plan{}
	switch strings.TrimSpace(parts[0]) {
	case "unit":
		p.Kind = Unit
	case "fixed":
		p.Kind = Fixed
	case "congestion":
		p.Kind = Congestion
	default:
		return nil, fmt.Errorf("link model spec %q: unknown model %q (want unit, fixed, or congestion)", spec, strings.TrimSpace(parts[0]))
	}
	seen := map[string]bool{}
	type overrideKey struct {
		link  int
		param string
	}
	seenOverride := map[overrideKey]bool{}
	overrides := map[int]*Override{}
	var order []int
	parseVal := func(part, key, val string) (int, error) {
		n, err := strconv.Atoi(val)
		if err != nil {
			return 0, fmt.Errorf("link model spec %q: bad %s: %v", part, key, err)
		}
		return n, nil
	}
	for _, part := range parts[1:] {
		part = strings.TrimSpace(part)
		if strings.HasPrefix(part, "link:") {
			if p.Kind != Fixed {
				return nil, fmt.Errorf("link model spec %q: per-link overrides apply to the fixed model only", part)
			}
			fields := strings.SplitN(part, ":", 3)
			if len(fields) != 3 {
				return nil, fmt.Errorf("link model spec %q: want link:IDX:delay=K or link:IDX:credit=C", part)
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("link model spec %q: bad link index: %v", part, err)
			}
			key, val, ok := strings.Cut(fields[2], "=")
			if !ok || (key != "delay" && key != "credit") {
				return nil, fmt.Errorf("link model spec %q: unknown link parameter %q (want delay=K or credit=C)", part, fields[2])
			}
			if seenOverride[overrideKey{idx, key}] {
				return nil, fmt.Errorf("link model spec %q: duplicate %s for link %d", part, key, idx)
			}
			seenOverride[overrideKey{idx, key}] = true
			n, err := parseVal(part, key, val)
			if err != nil {
				return nil, err
			}
			o := overrides[idx]
			if o == nil {
				o = &Override{Link: topology.LinkID(idx)}
				overrides[idx] = o
				order = append(order, idx)
			}
			if key == "delay" {
				o.Delay = n
			} else {
				o.Credit = n
			}
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("link model spec %q: want key=value", part)
		}
		if seen[key] {
			return nil, fmt.Errorf("link model spec %q: duplicate parameter %q", part, key)
		}
		seen[key] = true
		n, err := parseVal(part, key, val)
		if err != nil {
			return nil, err
		}
		switch key {
		case "delay":
			p.Delay = n
		case "credit":
			p.Credit = n
		case "threshold":
			if p.Kind != Congestion {
				return nil, fmt.Errorf("link model spec %q: threshold applies to the congestion model only", part)
			}
			p.Threshold = n
		case "max":
			if p.Kind != Congestion {
				return nil, fmt.Errorf("link model spec %q: max applies to the congestion model only", part)
			}
			p.MaxExtra = n
		default:
			return nil, fmt.Errorf("link model spec %q: unknown parameter %q (want delay, credit, threshold, or max)", part, key)
		}
	}
	for _, idx := range order {
		p.Overrides = append(p.Overrides, *overrides[idx])
	}
	return p, nil
}

// Lowered is a Plan compiled against a concrete topology: dense
// per-link delay and credit tables the engines' hot paths index
// directly, plus the congestion feedback parameters. Immutable after
// Lower; safe to share read-only across shards.
type Lowered struct {
	delay      []int32
	credit     []int32
	congestion bool
	threshold  int32
	maxExtra   int32
	maxFactor  int
	desc       string
}

// Lower compiles a validated plan against a topology of numLinks
// links. It returns nil for a unit-timing plan, so callers can gate
// every hot-path check on a single nil test.
func Lower(p *Plan, numLinks int) *Lowered {
	if p.IsUnit() {
		return nil
	}
	l := &Lowered{
		delay:     make([]int32, numLinks),
		credit:    make([]int32, numLinks),
		threshold: int32(p.thresholdOrDefault()),
		maxFactor: 1,
		desc:      p.String(),
	}
	base := int32(p.delayOrUnit())
	for i := range l.delay {
		l.delay[i] = base
		l.credit[i] = int32(p.Credit)
	}
	if p.Kind == Congestion {
		l.congestion = true
		l.maxExtra = int32(p.MaxExtra)
	}
	for _, o := range p.Overrides {
		if o.Delay > 0 {
			l.delay[o.Link] = int32(o.Delay)
		}
		if o.Credit > 0 {
			l.credit[o.Link] = int32(o.Credit)
		}
	}
	for _, d := range l.delay {
		if f := int(d) + int(l.maxExtra); f > l.maxFactor {
			l.maxFactor = f
		}
	}
	return l
}

// Busy returns how many cycles link lk stays busy after serving
// tally words in one cycle: delay·ceil(tally/credit) plus the
// congestion feedback min(maxExtra, (tally-1)/threshold). tally must
// be ≥ 1. The result is ≥ 1; 1 reproduces unit timing (free again
// next cycle).
//
//sysvet:hotpath
func (l *Lowered) Busy(lk topology.LinkID, tally int32) int {
	slots := 1
	if c := l.credit[lk]; c > 0 && tally > c {
		slots = int((tally + c - 1) / c)
	}
	b := int(l.delay[lk]) * slots
	if l.congestion {
		extra := (tally - 1) / l.threshold
		if extra > l.maxExtra {
			extra = l.maxExtra
		}
		b += int(extra)
	}
	return b
}

// MaxFactor returns the largest per-service delay any link can incur
// (base delay plus the congestion cap, ≥ 1): the multiplier the
// engines apply to their derived default cycle bound, since every
// word a link serves holds it for at most MaxFactor cycles.
func (l *Lowered) MaxFactor() int {
	return l.maxFactor
}

// ScaleCycles scales a derived cycle bound by MaxFactor, reporting
// failure instead of overflowing.
func (l *Lowered) ScaleCycles(n int) (int, bool) {
	f := l.maxFactor
	if f <= 1 {
		return n, true
	}
	const maxInt = int(^uint(0) >> 1)
	if n > maxInt/f {
		return 0, false
	}
	return n * f, true
}

// Description returns the model in canonical spec form.
func (l *Lowered) Description() string {
	return l.desc
}
