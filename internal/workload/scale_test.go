package workload

// Scale proof for the operator-graph generators: one 10k-cell
// pipelined sorting network runs end-to-end — generate, analyze,
// execute, verify — inside a wall-clock ceiling, and the compiled
// machine's per-Execute allocation count stays flat at that size
// (the same steady-state budget the 8-cell gates use). `-short`
// shrinks the array and skips the timing ceiling so the suite stays
// fast on developer machines.

import (
	"testing"
	"time"

	"systolic/internal/core"
	"systolic/internal/sim"
)

func TestPipelinedSortScale(t *testing.T) {
	width, rounds := 10000, 3
	ceiling := 60 * time.Second
	if testing.Short() {
		width = 2000
		ceiling = 0
	}
	start := time.Now()
	w, err := PipelinedSort(PipelinedSortOptions{Width: width, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.Program.NumCells(); n != width {
		t.Fatalf("generator built %d cells, want %d", n, width)
	}
	a, err := core.Analyze(w.Program, w.Topology, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.DeadlockFree {
		t.Fatal("10k-cell sorting network rejected by the analyzer")
	}
	res, err := core.Execute(a, core.ExecOptions{
		QueuesPerLink: w.DefaultQueues,
		Capacity:      w.DefaultCapacity,
		Logic:         w.Logic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("run %s: %s", res.Outcome(), sim.DescribeBlocked(w.Program, res.Blocked))
	}

	// Verify by sequential replay: the residents must equal `rounds`
	// rounds of odd-even transposition applied directly.
	want := make([]float64, width)
	for i := range want {
		want[i] = float64((i*7+3)%(2*width) + 1)
	}
	for r := 0; r < rounds; r++ {
		for i := r % 2; i+1 < width; i += 2 {
			if want[i+1] < want[i] {
				want[i], want[i+1] = want[i+1], want[i]
			}
		}
	}
	got := w.Logic.(*exchangeLogic).Residents()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resident[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if ceiling > 0 {
		if elapsed := time.Since(start); elapsed > ceiling {
			t.Errorf("generate+analyze+execute+verify took %v, ceiling %v", elapsed, ceiling)
		}
	}

	// Allocation gate: after a warm-up populates the machine's pooled
	// scratch, repeat Executes on the 10k-cell array must cost the
	// same fixed allocation budget as an 8-cell one — nothing per-run
	// may scale with the array. Synthetic logic keeps repeats
	// state-free (the exchange logic's residents evolve across runs).
	if raceEnabled {
		t.Skip("allocation gate is not meaningful under -race")
	}
	run := func() {
		r, err := core.Execute(a, core.ExecOptions{
			QueuesPerLink: w.DefaultQueues,
			Capacity:      w.DefaultCapacity,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Completed {
			t.Fatal(r.Outcome())
		}
	}
	run()
	if got := testing.AllocsPerRun(3, run); got > 48 {
		t.Errorf("%v allocs per Execute at %d cells, budget 48", got, width)
	}
}
