package workload

import (
	"math"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/sim"
)

// runFamily pushes a workload through the full avoidance pipeline
// (classify, label, simulate with the compatible policy) and returns
// the completed result.
func runFamily(t *testing.T, w *Workload) *sim.Result {
	t.Helper()
	if !crossoff.Classify(w.Program, crossoff.Options{}) {
		t.Fatalf("%s: program not deadlock-free under strict crossing-off", w.Name)
	}
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatalf("%s: labeling: %v", w.Name, err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: w.DefaultQueues,
		Capacity:      w.DefaultCapacity,
		Policy:        assign.Compatible(),
		Labels:        lab.Dense,
		Logic:         w.Logic,
	})
	if err != nil {
		t.Fatalf("%s: sim: %v", w.Name, err)
	}
	if !res.Completed {
		t.Fatalf("%s: run %s: %s", w.Name, res.Outcome(), sim.DescribeBlocked(w.Program, res.Blocked))
	}
	return res
}

func checkResidents(t *testing.T, name string, logic sim.CellLogic, want []float64) {
	t.Helper()
	got := logic.(*exchangeLogic).Residents()
	if len(got) != len(want) {
		t.Fatalf("%s: %d residents, want %d", name, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("%s: resident[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
}

func TestAttentionEndToEnd(t *testing.T) {
	w, err := Attention(AttentionOptions{Tokens: 9, Experts: 3})
	if err != nil {
		t.Fatal(err)
	}
	res := runFamily(t, w)
	if err := w.CheckReceived(res.Received); err != nil {
		t.Fatal(err)
	}
}

func TestAttentionRejectsBadSizes(t *testing.T) {
	if _, err := Attention(AttentionOptions{Tokens: 0, Experts: 2}); err == nil {
		t.Error("Tokens=0 accepted")
	}
	if _, err := Attention(AttentionOptions{Tokens: 2, Experts: 0}); err == nil {
		t.Error("Experts=0 accepted")
	}
}

func TestStencilEndToEnd(t *testing.T) {
	const rows, cols, iters = 3, 4, 2
	w, err := Stencil(StencilOptions{Rows: rows, Cols: cols, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	runFamily(t, w)

	// Sequential replay in construction order: horizontal pairs then
	// vertical pairs per iteration, both members keeping the average.
	want := make([]float64, rows*cols)
	for idx := range want {
		want[idx] = float64((idx*13+5)%97 + 1)
	}
	for k := 0; k < iters; k++ {
		for i := 0; i < rows; i++ {
			for j := 0; j+1 < cols; j++ {
				a, b := i*cols+j, i*cols+j+1
				avg := (want[a] + want[b]) / 2
				want[a], want[b] = avg, avg
			}
		}
		for i := 0; i+1 < rows; i++ {
			for j := 0; j < cols; j++ {
				a, b := i*cols+j, (i+1)*cols+j
				avg := (want[a] + want[b]) / 2
				want[a], want[b] = avg, avg
			}
		}
	}
	checkResidents(t, w.Name, w.Logic, want)
}

func TestFFTEndToEnd(t *testing.T) {
	const logN = 3
	w, err := FFT(FFTOptions{LogN: logN})
	if err != nil {
		t.Fatal(err)
	}
	runFamily(t, w)

	// Replay the butterfly stages directly: the network computes the
	// (unnormalized) Walsh–Hadamard transform of the initial residents.
	n := 1 << logN
	want := make([]float64, n)
	for idx := range want {
		want[idx] = float64((idx*7+3)%(2*n) + 1)
	}
	for s := 0; s < logN; s++ {
		stride := 1 << s
		for i := 0; i < n; i++ {
			if i&stride != 0 {
				continue
			}
			a, b := want[i], want[i+stride]
			want[i], want[i+stride] = a+b, a-b
		}
	}
	checkResidents(t, w.Name, w.Logic, want)
}

func TestPipelinedSortEndToEnd(t *testing.T) {
	const width = 9
	w, err := PipelinedSort(PipelinedSortOptions{Width: width, Rounds: width})
	if err != nil {
		t.Fatal(err)
	}
	runFamily(t, w)

	// Width rounds fully sort, so the residents must be the sorted
	// initial values.
	want := make([]float64, width)
	for idx := range want {
		want[idx] = float64((idx*7+3)%(2*width) + 1)
	}
	for r := 0; r < width; r++ {
		for i := r % 2; i+1 < width; i += 2 {
			if want[i] > want[i+1] {
				want[i], want[i+1] = want[i+1], want[i]
			}
		}
	}
	for i := 0; i+1 < width; i++ {
		if want[i] > want[i+1] {
			t.Fatalf("replay not sorted at %d — test bug", i)
		}
	}
	checkResidents(t, w.Name, w.Logic, want)
}

func TestPipelinedSortPartialRounds(t *testing.T) {
	// Fewer rounds than width: residents equal exactly that many
	// odd-even transposition rounds, not a full sort.
	const width, rounds = 8, 3
	w, err := PipelinedSort(PipelinedSortOptions{Width: width, Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	runFamily(t, w)
	want := make([]float64, width)
	for idx := range want {
		want[idx] = float64((idx*7+3)%(2*width) + 1)
	}
	for r := 0; r < rounds; r++ {
		for i := r % 2; i+1 < width; i += 2 {
			if want[i] > want[i+1] {
				want[i], want[i+1] = want[i+1], want[i]
			}
		}
	}
	checkResidents(t, w.Name, w.Logic, want)
}
