// Package workload provides the programs the paper's figures use —
// reconstructed exactly where the text fully constrains them — plus
// generalized systolic algorithm generators (FIR filtering,
// matrix–vector and matrix–matrix multiplication, odd-even
// transposition sort) with complete word-level semantics, so simulated
// runs can be checked against direct computation.
package workload

import (
	"fmt"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// Workload bundles a program with everything needed to run and verify
// it.
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// Program is the validated systolic program.
	Program *model.Program
	// Topology connects the program's cells.
	Topology topology.Topology
	// Logic supplies word values; nil means synthetic transport-only
	// values.
	Logic sim.CellLogic
	// Expected maps message names to the words their receivers must
	// observe (empty for workloads verified another way).
	Expected map[string][]sim.Word
	// DefaultQueues and DefaultCapacity are sensible run parameters
	// (enough for the avoidance strategy to apply).
	DefaultQueues   int
	DefaultCapacity int
	// Notes documents reconstruction decisions relative to the paper.
	Notes string
}

// CheckReceived compares a simulation's received words against
// Expected, returning a descriptive error on the first mismatch.
func (w *Workload) CheckReceived(received [][]sim.Word) error {
	for name, want := range w.Expected {
		m, ok := w.Program.MessageByName(name)
		if !ok {
			return fmt.Errorf("workload %s: expected message %q not declared", w.Name, name)
		}
		got := received[m.ID]
		if len(got) != len(want) {
			return fmt.Errorf("workload %s: message %s: received %d words, want %d", w.Name, name, len(got), len(want))
		}
		for i := range want {
			if !closeEnough(float64(got[i]), float64(want[i])) {
				return fmt.Errorf("workload %s: message %s word %d: got %v, want %v", w.Name, name, i, got[i], want[i])
			}
		}
	}
	return nil
}

func closeEnough(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 || b < -1 {
		if b < 0 {
			scale = -b
		} else {
			scale = b
		}
	}
	return d <= 1e-9*scale
}
