package workload

import (
	"systolic/internal/model"
	"systolic/internal/topology"
)

// Fig5P1 returns program P1 of Fig 5, taken verbatim from Fig 10 (the
// lookahead walkthrough spells out all six steps of each cell):
//
//	C1: W(A) W(A) W(B) W(A) W(B) W(A)
//	C2: R(B) R(A) R(B) R(A) R(A) R(A)
//
// P1 is deadlocked under the strict procedure and deadlock-free under
// lookahead with a skip budget of 2 (queues buffering two words, §8).
func Fig5P1() *Workload {
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 4)
	bb := b.DeclareMessage("B", c1, c2, 2)
	b.Write(c1, a).Write(c1, a).Write(c1, bb).Write(c1, a).Write(c1, bb).Write(c1, a)
	b.Read(c2, bb).Read(c2, a).Read(c2, bb).Read(c2, a).Read(c2, a).Read(c2, a)
	return &Workload{
		Name:            "fig5-p1",
		Program:         b.MustBuild(),
		Topology:        topology.Linear(2),
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes:           "exact program, transcribed from Fig 10",
	}
}

// Fig5P2 returns program P2 of Fig 5 (reconstruction): both cells
// write their outgoing message before reading the incoming one.
// Deadlocked with unbuffered latches ("neither C1 nor C2 can finish
// writing the first word in its output message", §3.2); deadlock-free
// under lookahead with any buffering (skip budget ≥ 1).
func Fig5P2() *Workload {
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c2, c1, 1)
	b.Write(c1, a).Read(c1, bb)
	b.Write(c2, bb).Read(c2, a)
	return &Workload{
		Name:            "fig5-p2",
		Program:         b.MustBuild(),
		Topology:        topology.Linear(2),
		DefaultQueues:   2,
		DefaultCapacity: 1,
		Notes: "reconstructed: the figure's OCR is garbled; §3.2 requires both " +
			"cells blocked on their first writes, fixable by buffering",
	}
}

// Fig5P3 returns program P3 of Fig 5 (reconstruction): both cells read
// before writing, a true circular data dependency. Deadlocked even
// under lookahead — rule R1 exists precisely so P3 is *not* admitted
// ("the value associated with the write … may depend on the preceding
// read", §8.1).
func Fig5P3() *Workload {
	b := model.NewBuilder()
	c1 := b.AddCell("C1")
	c2 := b.AddCell("C2")
	a := b.DeclareMessage("A", c1, c2, 1)
	bb := b.DeclareMessage("B", c2, c1, 1)
	b.Read(c1, bb).Write(c1, a)
	b.Read(c2, a).Write(c2, bb)
	return &Workload{
		Name:            "fig5-p3",
		Program:         b.MustBuild(),
		Topology:        topology.Linear(2),
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes: "reconstructed: §8.1 demands a program that skipping reads " +
			"would wrongly admit; reads-then-writes on both sides is the " +
			"minimal such program",
	}
}

// Fig6 returns the Fig 6 program: messages form a sender/receiver
// cycle C1→C2→C3→C4→C1, yet the program is deadlock-free — the
// paper's warning that cycle-checking is not a deadlock test.
//
//	C1: W(A) R(D)   C2: R(A) W(B)   C3: R(B) W(C)   C4: R(C) W(D)
func Fig6() *Workload {
	b := model.NewBuilder()
	cs := b.AddCells("C", 4)
	a := b.DeclareMessage("A", cs[0], cs[1], 1)
	bb := b.DeclareMessage("B", cs[1], cs[2], 1)
	c := b.DeclareMessage("C", cs[2], cs[3], 1)
	d := b.DeclareMessage("D", cs[3], cs[0], 1)
	b.Write(cs[0], a).Read(cs[0], d)
	b.Read(cs[1], a).Write(cs[1], bb)
	b.Read(cs[2], bb).Write(cs[2], c)
	b.Read(cs[3], c).Write(cs[3], d)
	return &Workload{
		Name:            "fig6",
		Program:         b.MustBuild(),
		Topology:        topology.Ring(4),
		DefaultQueues:   1,
		DefaultCapacity: 1,
		Notes:           "exact program (the figure lists all eight ops)",
	}
}

// Fig7Options sizes the Fig 7 example: LenA words of A (the figure
// shows four W(A)s) and LenBC words each of B and C (the figure
// abbreviates them with "…").
type Fig7Options struct {
	LenA, LenBC int
}

// Fig7 returns the first queue-induced-deadlock example (§4): a
// deadlock-free program on cells C1…C4 where messages B and C both
// cross the C3–C4 interval and C4 wants all of C before any of B. With
// one queue per link, granting that queue to B first deadlocks the
// run; the consistent labels A=1, C=2, B=3 plus compatible assignment
// force C first.
//
//	C1: W(C)…      C2: W(A)×4    C3: R(A)×4 W(B)…   C4: R(C)… R(B)…
func Fig7(opts Fig7Options) *Workload {
	if opts.LenA <= 0 {
		opts.LenA = 4
	}
	if opts.LenBC <= 0 {
		opts.LenBC = 3
	}
	b := model.NewBuilder()
	cs := b.AddCells("C", 4)
	a := b.DeclareMessage("A", cs[1], cs[2], opts.LenA)
	bm := b.DeclareMessage("B", cs[2], cs[3], opts.LenBC)
	cm := b.DeclareMessage("C", cs[0], cs[3], opts.LenBC)
	b.WriteN(cs[0], cm, opts.LenBC)
	b.WriteN(cs[1], a, opts.LenA)
	b.ReadN(cs[2], a, opts.LenA).WriteN(cs[2], bm, opts.LenBC)
	b.ReadN(cs[3], cm, opts.LenBC).ReadN(cs[3], bm, opts.LenBC)
	return &Workload{
		Name:            "fig7",
		Program:         b.MustBuild(),
		Topology:        topology.Linear(4),
		DefaultQueues:   1,
		DefaultCapacity: 1,
		Notes: "structure exact per §4's prose (B assigned before C on the " +
			"C3–C4 queue ⇒ deadlock); the elided sequence lengths default to 3",
	}
}

// Fig8 returns the second queue-induced-deadlock example: cell C3
// reads messages A (from C2) and B (from C1, crossing C2–C3 too) in an
// interleaved order, so A and B are *related*, share a label, and need
// separate queues on C2–C3 — one queue deadlocks, two succeed.
//
//	C1: W(B)×3   C2: W(A)×4   C3: R(A) R(B) R(A) R(A) R(B) R(B) R(A)
func Fig8() *Workload {
	b := model.NewBuilder()
	cs := b.AddCells("C", 3)
	a := b.DeclareMessage("A", cs[1], cs[2], 4)
	bm := b.DeclareMessage("B", cs[0], cs[2], 3)
	b.WriteN(cs[0], bm, 3)
	b.WriteN(cs[1], a, 4)
	b.Read(cs[2], a).Read(cs[2], bm).Read(cs[2], a).Read(cs[2], a)
	b.Read(cs[2], bm).Read(cs[2], bm).Read(cs[2], a)
	return &Workload{
		Name:            "fig8",
		Program:         b.MustBuild(),
		Topology:        topology.Linear(3),
		DefaultQueues:   2,
		DefaultCapacity: 1,
		Notes:           "C3's interleaving transcribed from the figure (A B A A B B A)",
	}
}

// Fig9 returns the third example, the write-side mirror of Fig 8: cell
// C1 writes A (to C2) and B (to C3, crossing C1–C2 too) interleaved,
// so A and B need separate queues on C1–C2.
//
//	C1: W(A) W(B) W(A) W(A) W(B) W(B) W(A)   C2: R(A)×4   C3: R(B)×3
func Fig9() *Workload {
	b := model.NewBuilder()
	cs := b.AddCells("C", 3)
	a := b.DeclareMessage("A", cs[0], cs[1], 4)
	bm := b.DeclareMessage("B", cs[0], cs[2], 3)
	b.Write(cs[0], a).Write(cs[0], bm).Write(cs[0], a).Write(cs[0], a)
	b.Write(cs[0], bm).Write(cs[0], bm).Write(cs[0], a)
	b.ReadN(cs[1], a, 4)
	b.ReadN(cs[2], bm, 3)
	return &Workload{
		Name:            "fig9",
		Program:         b.MustBuild(),
		Topology:        topology.Linear(3),
		DefaultQueues:   2,
		DefaultCapacity: 1,
		Notes:           "C1's interleaving mirrors Fig 8's read order (A B A A B B A)",
	}
}

// Fig3 returns an illustrative program in the spirit of Fig 3: four
// cells, four queues per link, several multi-hop messages whose queue
// sequences can be rendered. The paper's figure is itself only an
// illustration; message A's route (C1→C4 over three links) is the one
// detail §2.3 states, and is preserved.
func Fig3() *Workload {
	b := model.NewBuilder()
	cs := b.AddCells("C", 4)
	a := b.DeclareMessage("A", cs[0], cs[3], 3)
	bm := b.DeclareMessage("B", cs[0], cs[2], 2)
	cm := b.DeclareMessage("C", cs[1], cs[3], 2)
	d := b.DeclareMessage("D", cs[3], cs[0], 2)
	b.WriteN(cs[0], a, 3).WriteN(cs[0], bm, 2).ReadN(cs[0], d, 2)
	b.WriteN(cs[1], cm, 2)
	b.ReadN(cs[2], bm, 2)
	b.ReadN(cs[3], a, 3).ReadN(cs[3], cm, 2).WriteN(cs[3], d, 2)
	return &Workload{
		Name:            "fig3",
		Program:         b.MustBuild(),
		Topology:        topology.Linear(4),
		DefaultQueues:   4,
		DefaultCapacity: 2,
		Notes: "illustrative (the paper's Fig 3 shows no program text); " +
			"message A crosses C1–C2, C2–C3, C3–C4 as §2.3 describes",
	}
}
