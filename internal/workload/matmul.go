package workload

import (
	"fmt"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// MatMulOptions parameterizes the 2-D mesh matrix-multiply generator.
type MatMulOptions struct {
	// Rows×Inner times Inner×Cols = Rows×Cols on a Rows×Cols mesh.
	Rows, Inner, Cols int
	// A (Rows×Inner) and B (Inner×Cols); nil selects deterministic
	// synthetic values.
	A, B [][]float64
}

// MatMul generates C = A·B on a Rows×Cols mesh, the paper's promised
// extension to higher-dimensional arrays (§2.1). Row streams of A flow
// east (cells in column 0 inject them), column streams of B flow south
// (row 0 injects), every cell accumulates its c_ij, and each row's
// results converge on the row's easternmost cell as per-cell messages
// — multi-hop, mutually competing traffic that genuinely needs the
// labeling machinery.
func MatMul(opts MatMulOptions) (*Workload, error) {
	rows, inner, cols := opts.Rows, opts.Inner, opts.Cols
	if rows < 1 || inner < 1 || cols < 2 {
		return nil, fmt.Errorf("workload: MatMul needs Rows ≥ 1, Inner ≥ 1, Cols ≥ 2")
	}
	a := opts.A
	if a == nil {
		a = synthMatrix(rows, inner, 1)
	}
	bm := opts.B
	if bm == nil {
		bm = synthMatrix(inner, cols, 2)
	}
	if len(a) != rows || len(bm) != inner {
		return nil, fmt.Errorf("workload: MatMul: operand shapes do not match")
	}

	bld := model.NewBuilder()
	mesh := topology.Mesh2D(rows, cols)
	cellAt := func(r, c int) model.CellID { return model.CellID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			bld.AddCell(fmt.Sprintf("P%d.%d", r, c))
		}
	}

	// aMsg[r][c] feeds cell (r,c) from (r,c-1); bMsg[r][c] feeds (r,c)
	// from (r-1,c); cMsg[r][c] carries c_{rc} to the row collector.
	aMsg := make([][]model.MessageID, rows)
	bMsg := make([][]model.MessageID, rows)
	cMsg := make([][]model.MessageID, rows)
	for r := 0; r < rows; r++ {
		aMsg[r] = make([]model.MessageID, cols)
		bMsg[r] = make([]model.MessageID, cols)
		cMsg[r] = make([]model.MessageID, cols)
		for c := 0; c < cols; c++ {
			if c > 0 {
				aMsg[r][c] = bld.DeclareMessage(fmt.Sprintf("A%d.%d", r, c), cellAt(r, c-1), cellAt(r, c), inner)
			}
			if r > 0 {
				bMsg[r][c] = bld.DeclareMessage(fmt.Sprintf("B%d.%d", r, c), cellAt(r-1, c), cellAt(r, c), inner)
			}
			if c < cols-1 {
				cMsg[r][c] = bld.DeclareMessage(fmt.Sprintf("C%d.%d", r, c), cellAt(r, c), cellAt(r, cols-1), 1)
			}
		}
	}

	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			cell := cellAt(r, c)
			for k := 0; k < inner; k++ {
				if c > 0 {
					bld.Read(cell, aMsg[r][c])
				}
				if r > 0 {
					bld.Read(cell, bMsg[r][c])
				}
				if c < cols-1 {
					bld.Write(cell, aMsg[r][c+1])
				}
				if r < rows-1 {
					bld.Write(cell, bMsg[r+1][c])
				}
			}
			if c < cols-1 {
				bld.Write(cell, cMsg[r][c])
			} else {
				for cc := 0; cc < cols-1; cc++ {
					bld.Read(cell, cMsg[r][cc])
				}
			}
		}
	}
	p, err := bld.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: MatMul(%dx%dx%d): %w", rows, inner, cols, err)
	}

	// Expected: collector of row r reads C[r][0..cols-2] in order.
	expected := make(map[string][]sim.Word)
	prod := func(r, c int) float64 {
		var s float64
		for k := 0; k < inner; k++ {
			s += a[r][k] * bm[k][c]
		}
		return s
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols-1; c++ {
			expected[fmt.Sprintf("C%d.%d", r, c)] = []sim.Word{sim.Word(prod(r, c))}
		}
	}

	logic := &matmulLogic{
		cols: cols, inner: inner,
		a: a, b: bm,
		kindOf: make(map[model.MessageID]rune),
		aReg:   make([]float64, p.NumCells()),
		bReg:   make([]float64, p.NumCells()),
		acc:    make([]float64, p.NumCells()),
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c > 0 {
				logic.kindOf[aMsg[r][c]] = 'a'
			}
			if r > 0 {
				logic.kindOf[bMsg[r][c]] = 'b'
			}
			if c < cols-1 {
				logic.kindOf[cMsg[r][c]] = 'c'
			}
		}
	}
	// Top-left corner cells never read, so their accumulators are
	// computed directly.
	logic.acc[cellAt(0, 0)] = prod(0, 0)

	w := &Workload{
		Name:            fmt.Sprintf("matmul(%dx%dx%d)", rows, inner, cols),
		Program:         p,
		Topology:        mesh,
		Logic:           logic,
		Expected:        expected,
		DefaultQueues:   4,
		DefaultCapacity: 2,
		Notes:           "wavefront A east / B south; per-row result collection east",
	}
	return w, nil
}

func synthMatrix(r, c int, salt int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
		for j := range m[i] {
			m[i][j] = float64((i+1)*(j+salt) + salt)
		}
	}
	return m
}

type matmulLogic struct {
	cols, inner int
	a, b        [][]float64
	kindOf      map[model.MessageID]rune
	aReg, bReg  []float64
	acc         []float64
}

func (l *matmulLogic) pos(cell model.CellID) (int, int) {
	return int(cell) / l.cols, int(cell) % l.cols
}

func (l *matmulLogic) OnRead(cell model.CellID, msg model.MessageID, index int, w sim.Word) {
	r, c := l.pos(cell)
	switch l.kindOf[msg] {
	case 'a':
		l.aReg[cell] = float64(w)
		if r == 0 { // top-row cells see no B stream: accumulate here
			l.acc[cell] += float64(w) * l.b[index][c]
		}
	case 'b':
		l.bReg[cell] = float64(w)
		av := l.aReg[cell]
		if c == 0 { // left-column cells inject A themselves
			av = l.a[r][index]
		}
		l.acc[cell] += av * float64(w)
	case 'c':
		// collector bookkeeping only; values checked via Expected
	}
}

func (l *matmulLogic) Produce(cell model.CellID, msg model.MessageID, index int) sim.Word {
	r, c := l.pos(cell)
	switch l.kindOf[msg] {
	case 'a':
		if c == 0 {
			return sim.Word(l.a[r][index])
		}
		return sim.Word(l.aReg[cell])
	case 'b':
		if r == 0 {
			return sim.Word(l.b[index][c])
		}
		return sim.Word(l.bReg[cell])
	default:
		return sim.Word(l.acc[cell])
	}
}
