package workload

import (
	"strings"
	"testing"

	"systolic/internal/assign"
	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/sim"
)

// runPipeline analyzes and executes a workload under the compatible
// policy with its default parameters, failing the test on any stage.
func runPipeline(t *testing.T, w *Workload, queues, capacity int) *sim.Result {
	t.Helper()
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatalf("%s: labeling: %v", w.Name, err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: queues,
		Capacity:      capacity,
		Policy:        assign.Compatible(),
		Labels:        lab.Dense,
		Logic:         w.Logic,
	})
	if err != nil {
		t.Fatalf("%s: sim: %v", w.Name, err)
	}
	if !res.Completed {
		t.Fatalf("%s: %s\n%s", w.Name, res.Outcome(), sim.DescribeBlocked(w.Program, res.Blocked))
	}
	if err := w.CheckReceived(res.Received); err != nil {
		t.Fatalf("%s: %v", w.Name, err)
	}
	return res
}

// TestFig2GoldenProgram pins the exact op sequences of Fig 2.
func TestFig2GoldenProgram(t *testing.T) {
	p := Fig2().Program
	want := map[string]string{
		"Host": "W(XA) W(XA) W(XA) R(YA) W(XA) R(YA)",
		"C1":   "R(XA) W(XB) R(XA) W(XB) R(XA) R(YB) W(XB) W(YA) R(XA) R(YB) W(YA)",
		"C2":   "R(XB) W(XC) R(XB) R(YC) W(XC) W(YB) R(XB) R(YC) W(YB)",
		"C3":   "R(XC) W(YC) R(XC) W(YC)",
	}
	got := p.String()
	for cell, ops := range want {
		line := cell + ": " + ops
		if !strings.Contains(got, line) {
			t.Errorf("missing program line %q in:\n%s", line, got)
		}
	}
}

func TestFig2MessageDeclarations(t *testing.T) {
	p := Fig2().Program
	wantWords := map[string]int{"XA": 4, "XB": 3, "XC": 2, "YA": 2, "YB": 2, "YC": 2}
	for name, words := range wantWords {
		m, ok := p.MessageByName(name)
		if !ok {
			t.Fatalf("message %s missing", name)
		}
		if m.Words != words {
			t.Errorf("%s has %d words, want %d", name, m.Words, words)
		}
	}
}

func TestFig2OutputsAreTheConvolution(t *testing.T) {
	w := Fig2()
	// Weights 2,3,5 over inputs 1,4,9,16: y1 = 2·1+3·4+5·9 = 59,
	// y2 = 2·4+3·9+5·16 = 115.
	want := w.Expected["YA"]
	if len(want) != 2 || want[0] != 59 || want[1] != 115 {
		t.Fatalf("expected outputs %v", want)
	}
	runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
}

func TestFIRSweep(t *testing.T) {
	for _, tc := range []struct{ k, n int }{
		{1, 1}, {1, 5}, {2, 3}, {3, 2}, {4, 8}, {5, 1}, {8, 16},
	} {
		w, err := FIR(FIROptions{Taps: tc.k, Outputs: tc.n})
		if err != nil {
			t.Fatal(err)
		}
		if !crossoff.Classify(w.Program, crossoff.Options{}) {
			t.Fatalf("FIR(%d,%d) not deadlock-free", tc.k, tc.n)
		}
		runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
	}
}

func TestFIRValidation(t *testing.T) {
	if _, err := FIR(FIROptions{Taps: 0, Outputs: 1}); err == nil {
		t.Fatal("Taps 0 accepted")
	}
	if _, err := FIR(FIROptions{Taps: 2, Outputs: 2, Weights: []float64{1}}); err == nil {
		t.Fatal("short weights accepted")
	}
	if _, err := FIR(FIROptions{Taps: 2, Outputs: 2, Inputs: []float64{1}}); err == nil {
		t.Fatal("short inputs accepted")
	}
	if _, err := FIR(FIROptions{Taps: 27, Outputs: 1, PaperNames: true}); err == nil {
		t.Fatal("27 paper-named taps accepted")
	}
}

func TestMatVec(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		w, err := MatVec(MatVecOptions{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if !crossoff.Classify(w.Program, crossoff.Options{}) {
			t.Fatalf("matvec(%d) not deadlock-free", n)
		}
		runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
	}
}

func TestMatVecExplicitOperands(t *testing.T) {
	w, err := MatVec(MatVecOptions{
		N: 2,
		A: [][]float64{{1, 2}, {3, 4}},
		X: []float64{10, 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := w.Expected["Y"]
	if want[0] != 210 || want[1] != 430 {
		t.Fatalf("expected %v", want)
	}
	runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
}

func TestMatVecValidation(t *testing.T) {
	if _, err := MatVec(MatVecOptions{N: 0}); err == nil {
		t.Fatal("N=0 accepted")
	}
	if _, err := MatVec(MatVecOptions{N: 2, A: [][]float64{{1}}, X: []float64{1, 2}}); err == nil {
		t.Fatal("ragged A accepted")
	}
}

func TestMatMulShapes(t *testing.T) {
	for _, tc := range []struct{ r, k, c int }{
		{1, 1, 2}, {2, 3, 2}, {3, 2, 4}, {4, 4, 4},
	} {
		w, err := MatMul(MatMulOptions{Rows: tc.r, Inner: tc.k, Cols: tc.c})
		if err != nil {
			t.Fatal(err)
		}
		if !crossoff.Classify(w.Program, crossoff.Options{}) {
			t.Fatalf("matmul(%dx%dx%d) not deadlock-free", tc.r, tc.k, tc.c)
		}
		runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
	}
}

func TestMatMulExplicitOperands(t *testing.T) {
	w, err := MatMul(MatMulOptions{
		Rows: 2, Inner: 2, Cols: 2,
		A: [][]float64{{1, 2}, {3, 4}},
		B: [][]float64{{5, 6}, {7, 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// C = [[19 22],[43 50]]; collectors hold column 1, messages carry
	// column 0.
	if got := w.Expected["C0.0"]; got[0] != 19 {
		t.Fatalf("C0.0 expected %v", got)
	}
	if got := w.Expected["C1.0"]; got[0] != 43 {
		t.Fatalf("C1.0 expected %v", got)
	}
	runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
}

func TestMatMulValidation(t *testing.T) {
	if _, err := MatMul(MatMulOptions{Rows: 1, Inner: 1, Cols: 1}); err == nil {
		t.Fatal("Cols=1 accepted (no collector possible)")
	}
}

func TestSortPolite(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9} {
		w, err := Sort(SortOptions{N: n})
		if err != nil {
			t.Fatal(err)
		}
		if !crossoff.Classify(w.Program, crossoff.Options{}) {
			t.Fatalf("polite sort(%d) not strictly deadlock-free", n)
		}
		runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
	}
}

func TestSortSymmetricNeedsLookahead(t *testing.T) {
	w, err := Sort(SortOptions{N: 6, Symmetric: true})
	if err != nil {
		t.Fatal(err)
	}
	if crossoff.Classify(w.Program, crossoff.Options{}) {
		t.Fatal("symmetric sort strictly admitted")
	}
	if !crossoff.Classify(w.Program, crossoff.Options{Lookahead: true, Budget: crossoff.UniformBudget(1)}) {
		t.Fatal("symmetric sort rejected with budget 1")
	}
	// Runs fine with 1-word buffering despite the strict verdict.
	lab, err := label.Assign(w.Program, label.Options{Lookahead: true, Budget: crossoff.UniformBudget(1)})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: 2,
		Capacity:      1,
		Policy:        assign.Compatible(),
		Labels:        lab.Dense,
		Logic:         w.Logic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("symmetric sort run %s\n%s", res.Outcome(), sim.DescribeBlocked(w.Program, res.Blocked))
	}
	if err := w.CheckReceived(res.Received); err != nil {
		t.Fatal(err)
	}
}

func TestSortExplicitValues(t *testing.T) {
	w, err := Sort(SortOptions{Values: []float64{5, 1, 4, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
	for j, want := range []sim.Word{1, 2, 3, 4, 5} {
		got := w.Expected["V"+string(rune('1'+j))]
		if got[0] != want {
			t.Fatalf("V%d expected %v, want %v", j+1, got, want)
		}
	}
}

func TestSortValidation(t *testing.T) {
	if _, err := Sort(SortOptions{}); err == nil {
		t.Fatal("empty sort accepted")
	}
}

func TestFigureClassifications(t *testing.T) {
	cases := []struct {
		w          *Workload
		strictFree bool
		la2Free    bool
	}{
		{Fig2(), true, true},
		{Fig3(), true, true},
		{Fig5P1(), false, true},
		{Fig5P2(), false, true},
		{Fig5P3(), false, false},
		{Fig6(), true, true},
		{Fig7(Fig7Options{}), true, true},
		{Fig8(), true, true},
		{Fig9(), true, true},
	}
	for _, tc := range cases {
		if got := crossoff.Classify(tc.w.Program, crossoff.Options{}); got != tc.strictFree {
			t.Errorf("%s: strict=%v, want %v", tc.w.Name, got, tc.strictFree)
		}
		got := crossoff.Classify(tc.w.Program, crossoff.Options{Lookahead: true, Budget: crossoff.UniformBudget(2)})
		if got != tc.la2Free {
			t.Errorf("%s: lookahead2=%v, want %v", tc.w.Name, got, tc.la2Free)
		}
	}
}

func TestFig7Sizing(t *testing.T) {
	w := Fig7(Fig7Options{LenA: 6, LenBC: 2})
	a, _ := w.Program.MessageByName("A")
	b, _ := w.Program.MessageByName("B")
	if a.Words != 6 || b.Words != 2 {
		t.Fatalf("sizing ignored: A=%d B=%d", a.Words, b.Words)
	}
	if !crossoff.Classify(w.Program, crossoff.Options{}) {
		t.Fatal("sized Fig 7 not deadlock-free")
	}
}

func TestFig8RelatedClassAndLabels(t *testing.T) {
	w := Fig8()
	uf := label.Related(w.Program)
	a, _ := w.Program.MessageByName("A")
	b, _ := w.Program.MessageByName("B")
	if !uf.Same(int(a.ID), int(b.ID)) {
		t.Fatal("Fig 8's A and B not related")
	}
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lab.Dense[a.ID] != lab.Dense[b.ID] {
		t.Fatal("Fig 8's A and B labels differ")
	}
}

func TestFig9RunsUnderStatic(t *testing.T) {
	// §7.1's example: two queues between C1 and C2 assigned statically.
	w := Fig9()
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: 2,
		Capacity:      1,
		Policy:        assign.Static(),
		Labels:        lab.Dense,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatalf("static Fig 9 run %s", res.Outcome())
	}
}

func TestCheckReceivedErrors(t *testing.T) {
	w := Fig2()
	// Unknown message name.
	w2 := *w
	w2.Expected = map[string][]sim.Word{"NOPE": {1}}
	if err := w2.CheckReceived(make([][]sim.Word, w.Program.NumMessages())); err == nil {
		t.Fatal("unknown expected message accepted")
	}
	// Wrong count.
	w2.Expected = map[string][]sim.Word{"YA": {1, 2, 3}}
	if err := w2.CheckReceived(make([][]sim.Word, w.Program.NumMessages())); err == nil {
		t.Fatal("word-count mismatch accepted")
	}
	// Wrong value.
	recv := make([][]sim.Word, w.Program.NumMessages())
	ya, _ := w.Program.MessageByName("YA")
	recv[ya.ID] = []sim.Word{59, 999}
	if err := w.CheckReceived(recv); err == nil {
		t.Fatal("wrong value accepted")
	}
	recv[ya.ID] = []sim.Word{59, 115}
	if err := w.CheckReceived(recv); err != nil {
		t.Fatalf("correct values rejected: %v", err)
	}
}
