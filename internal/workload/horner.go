package workload

import (
	"fmt"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// HornerOptions parameterizes the polynomial-evaluation generator.
type HornerOptions struct {
	// Coefficients, leading first: p(x) = c_1·x^{k-1} + … + c_k.
	// nil selects deterministic synthetic values of length Degree+1.
	Coefficients []float64
	// Degree is the polynomial degree when Coefficients is nil.
	Degree int
	// Points are the evaluation points; nil selects Count points.
	Points []float64
	Count  int
}

// Horner generates systolic polynomial evaluation by Horner's rule on
// a linear array Host, C1…Ck (k coefficients, one per cell): the host
// streams evaluation points through the array while accumulator words
// flow alongside (acc ← acc·x + c_j per cell), and the finished values
// return to the host as a single multi-hop message against the data
// flow — forward and backward traffic sharing every link.
func Horner(opts HornerOptions) (*Workload, error) {
	coefs := opts.Coefficients
	if coefs == nil {
		if opts.Degree < 0 {
			return nil, fmt.Errorf("workload: Horner needs Coefficients or Degree ≥ 0")
		}
		coefs = make([]float64, opts.Degree+1)
		for i := range coefs {
			coefs[i] = float64(i%5 - 2) // …, -2..2 pattern, includes zeros
		}
		if coefs[0] == 0 {
			coefs[0] = 1
		}
	}
	points := opts.Points
	if points == nil {
		n := opts.Count
		if n <= 0 {
			n = 4
		}
		points = make([]float64, n)
		for i := range points {
			points[i] = float64(i) - 1.5
		}
	}
	k, m := len(coefs), len(points)
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("workload: Horner needs ≥ 1 coefficient and ≥ 1 point")
	}

	b := model.NewBuilder()
	host := b.AddHost("Host")
	cells := b.AddCells("C", k)

	xs := make([]model.MessageID, k+1)
	accs := make([]model.MessageID, k+1)
	for j := 1; j <= k; j++ {
		from := host
		if j > 1 {
			from = cells[j-2]
		}
		xs[j] = b.DeclareMessage(fmt.Sprintf("X%d", j), from, cells[j-1], m)
		if j > 1 {
			accs[j] = b.DeclareMessage(fmt.Sprintf("A%d", j), cells[j-2], cells[j-1], m)
		}
	}
	y := b.DeclareMessage("Y", cells[k-1], host, m) // multi-hop back

	// The host primes the pipeline with two points and then drains a
	// result per further point (the Fig 2 interleave): writing every
	// point before reading any result would stall the return path
	// once the streams exceed the array's buffering.
	prime := 2
	if k < prime {
		prime = k // a single-cell array cannot overlap two iterations
	}
	if m < prime {
		prime = m
	}
	b.WriteN(host, xs[1], prime)
	for i := 1; i <= m; i++ {
		b.Read(host, y)
		if i+prime <= m {
			b.Write(host, xs[1])
		}
	}
	for j := 1; j <= k; j++ {
		c := cells[j-1]
		outAcc := y
		if j < k {
			outAcc = accs[j+1]
		}
		for i := 0; i < m; i++ {
			b.Read(c, xs[j])
			if j > 1 {
				b.Read(c, accs[j])
			}
			if j < k {
				b.Write(c, xs[j+1])
			}
			b.Write(c, outAcc)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: Horner(k=%d,m=%d): %w", k, m, err)
	}

	expected := make([]sim.Word, m)
	for i, x := range points {
		acc := 0.0
		for _, c := range coefs {
			acc = acc*x + c
		}
		expected[i] = sim.Word(acc)
	}

	logic := &hornerLogic{
		points: points,
		coef:   make([]float64, p.NumCells()),
		kindOf: make(map[model.MessageID]byte),
		stage:  make(map[model.MessageID]int),
		lastX:  make([]float64, p.NumCells()),
		lastA:  make([]float64, p.NumCells()),
	}
	for j := 1; j <= k; j++ {
		logic.coef[cells[j-1]] = coefs[j-1]
		logic.kindOf[xs[j]] = 'x'
		logic.stage[xs[j]] = j
		if j > 1 {
			logic.kindOf[accs[j]] = 'a'
		}
	}
	logic.kindOf[y] = 'a'

	return &Workload{
		Name:     fmt.Sprintf("horner(k=%d,m=%d)", k, m),
		Program:  p,
		Topology: topology.Linear(k + 1),
		Logic:    logic,
		Expected: map[string][]sim.Word{"Y": expected},
		// Interior links carry X, A and the returning Y, and the
		// per-cell interleaving makes all three related (one label
		// class), so the simultaneous-assignment rule needs three
		// queues per link.
		DefaultQueues:   3,
		DefaultCapacity: 2,
		Notes: "Horner's rule pipeline; the result message Y crosses every " +
			"link against the forward streams",
	}, nil
}

type hornerLogic struct {
	points []float64
	coef   []float64
	kindOf map[model.MessageID]byte
	stage  map[model.MessageID]int
	lastX  []float64
	lastA  []float64
}

func (l *hornerLogic) OnRead(cell model.CellID, msg model.MessageID, index int, w sim.Word) {
	if l.kindOf[msg] == 'x' {
		l.lastX[cell] = float64(w)
		return
	}
	l.lastA[cell] = float64(w)
}

func (l *hornerLogic) Produce(cell model.CellID, msg model.MessageID, index int) sim.Word {
	if l.kindOf[msg] == 'x' {
		if l.stage[msg] == 1 { // host injects the raw points
			return sim.Word(l.points[index])
		}
		return sim.Word(l.lastX[cell])
	}
	// Accumulator out: acc·x + c; the first cell starts from zero.
	return sim.Word(l.lastA[cell]*l.lastX[cell] + l.coef[cell])
}
