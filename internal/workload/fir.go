package workload

import (
	"fmt"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// FIROptions parameterizes the FIR generator.
type FIROptions struct {
	// Taps is the filter length k ≥ 1; Outputs is the number of
	// results n ≥ 1. The host supplies n+k-1 input words.
	Taps, Outputs int
	// Weights has length Taps; Inputs has length Outputs+Taps-1. Both
	// may be nil for deterministic synthetic values.
	Weights []float64
	Inputs  []float64
	// PaperNames uses the Fig 2 names (XA, XB, …, YA, …) instead of
	// X1…/Y1…; only valid for Taps ≤ 26.
	PaperNames bool
}

// FIR generates the systolic FIR filter program of Fig 2, generalized
// to k taps and n outputs. With Taps=3, Outputs=2 and PaperNames it
// reproduces the paper's program verbatim.
//
// Structure (cells Host, C1…Ck on a linear array, weight w_{k+1-j}
// resident in cell Cj):
//
//   - X_j (into cell j) carries inputs x_1…x_{n+k-j}; X_1 comes from
//     the host.
//   - Y_j (out of cell j toward the host) carries the n partial
//     results; Y_1 reaches the host with the final values
//     y_i = Σ_t w_t·x_{i+t-1}.
func FIR(opts FIROptions) (*Workload, error) {
	k, n := opts.Taps, opts.Outputs
	if k < 1 || n < 1 {
		return nil, fmt.Errorf("workload: FIR needs Taps ≥ 1 and Outputs ≥ 1 (got %d, %d)", k, n)
	}
	if opts.PaperNames && k > 26 {
		return nil, fmt.Errorf("workload: paper names support at most 26 taps")
	}
	weights := opts.Weights
	if weights == nil {
		weights = make([]float64, k)
		for i := range weights {
			weights[i] = float64(i + 1) // w_1=1, w_2=2, …
		}
	}
	if len(weights) != k {
		return nil, fmt.Errorf("workload: FIR: %d weights for %d taps", len(weights), k)
	}
	inputs := opts.Inputs
	if inputs == nil {
		inputs = make([]float64, n+k-1)
		for i := range inputs {
			inputs[i] = float64(10 + i) // x_1=10, x_2=11, …
		}
	}
	if len(inputs) != n+k-1 {
		return nil, fmt.Errorf("workload: FIR: %d inputs, need n+k-1 = %d", len(inputs), n+k-1)
	}

	nameX := func(j int) string { // message into cell j (1-based)
		if opts.PaperNames {
			return fmt.Sprintf("X%c", 'A'+j-1)
		}
		return fmt.Sprintf("X%d", j)
	}
	nameY := func(j int) string { // message out of cell j toward host
		if opts.PaperNames {
			return fmt.Sprintf("Y%c", 'A'+j-1)
		}
		return fmt.Sprintf("Y%d", j)
	}

	b := model.NewBuilder()
	host := b.AddHost("Host")
	cells := b.AddCells("C", k)

	xs := make([]model.MessageID, k+1) // xs[j] = X_j, 1-based
	ys := make([]model.MessageID, k+1)
	for j := 1; j <= k; j++ {
		from := host
		if j > 1 {
			from = cells[j-2]
		}
		xs[j] = b.DeclareMessage(nameX(j), from, cells[j-1], n+k-j)
		to := host
		if j > 1 {
			to = cells[j-2]
		}
		ys[j] = b.DeclareMessage(nameY(j), cells[j-1], to, n)
	}

	// Host: prime the pipeline with k inputs, then alternate reading a
	// result and (while any remain) writing the next input.
	b.WriteN(host, xs[1], k)
	for i := 1; i <= n; i++ {
		b.Read(host, ys[1])
		if k+i <= n+k-1 {
			b.Write(host, xs[1])
		}
	}
	// Cell j: pass k-j inputs through, then per output read an input
	// and the inner partial sum, forward the input if the next stage
	// still needs it, and emit the updated partial sum.
	for j := 1; j <= k; j++ {
		c := cells[j-1]
		for d := 1; d <= k-j; d++ {
			b.Read(c, xs[j])
			b.Write(c, xs[j+1])
		}
		for i := 1; i <= n; i++ {
			b.Read(c, xs[j])
			if j < k {
				b.Read(c, ys[j+1])
			}
			if j < k && i+k-j <= n+k-j-1 {
				b.Write(c, xs[j+1])
			}
			b.Write(c, ys[j])
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: FIR(%d,%d): %w", k, n, err)
	}

	expected := make([]sim.Word, n)
	for i := 0; i < n; i++ {
		var y float64
		for t := 0; t < k; t++ {
			y += weights[t] * inputs[i+t]
		}
		expected[i] = sim.Word(y)
	}

	logic := &firLogic{
		k:      k,
		host:   host,
		stageX: make(map[model.MessageID]int),
		stageY: make(map[model.MessageID]int),
		weight: make([]float64, p.NumCells()),
		lastX:  make([]float64, p.NumCells()),
		lastY:  make([]float64, p.NumCells()),
		inputs: inputs,
	}
	for j := 1; j <= k; j++ {
		logic.stageX[xs[j]] = j
		logic.stageY[ys[j]] = j
		logic.weight[cells[j-1]] = weights[k-j] // cell j holds w_{k+1-j}
	}

	return &Workload{
		Name:            fmt.Sprintf("fir(k=%d,n=%d)", k, n),
		Program:         p,
		Topology:        topology.Linear(k + 1),
		Logic:           logic,
		Expected:        map[string][]sim.Word{nameY(1): expected},
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes: "Fig 2 generalized; Taps=3, Outputs=2 with PaperNames " +
			"reproduces the figure's program exactly.",
	}, nil
}

// Fig2 returns the exact program of Fig 2: a 3-tap FIR filter
// computing its first two outputs, with the paper's message names.
func Fig2() *Workload {
	w, err := FIR(FIROptions{
		Taps: 3, Outputs: 2,
		Weights:    []float64{2, 3, 5}, // w1, w2, w3 (values are free in the paper)
		Inputs:     []float64{1, 4, 9, 16},
		PaperNames: true,
	})
	if err != nil {
		panic(err) // static parameters; cannot fail
	}
	w.Name = "fig2-fir"
	return w
}

// firLogic implements the filter arithmetic: each cell keeps the last
// input word and the last inner partial sum it read; outgoing X words
// pass through, outgoing Y words accumulate weight·x.
type firLogic struct {
	k      int
	host   model.CellID
	stageX map[model.MessageID]int
	stageY map[model.MessageID]int
	weight []float64
	lastX  []float64
	lastY  []float64
	inputs []float64
}

func (l *firLogic) OnRead(cell model.CellID, msg model.MessageID, index int, w sim.Word) {
	if _, isX := l.stageX[msg]; isX {
		l.lastX[cell] = float64(w)
		return
	}
	l.lastY[cell] = float64(w)
}

func (l *firLogic) Produce(cell model.CellID, msg model.MessageID, index int) sim.Word {
	if j, isX := l.stageX[msg]; isX {
		if j == 1 { // host injects the raw input stream
			return sim.Word(l.inputs[index])
		}
		return sim.Word(l.lastX[cell]) // pass-through
	}
	j := l.stageY[msg]
	if j == l.k { // deepest cell starts the accumulation
		return sim.Word(l.weight[cell] * l.lastX[cell])
	}
	return sim.Word(l.lastY[cell] + l.weight[cell]*l.lastX[cell])
}
