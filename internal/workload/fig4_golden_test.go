package workload

import (
	"strings"
	"testing"

	"systolic/internal/crossoff"
)

// TestFig4GoldenSequence pins the complete crossing-off schedule of
// the Fig 2 program, pair by pair — the full content of the paper's
// Figure 4. (Within a two-pair step the rendering orders pairs by
// message id; the paper's figure lists the same two pairs side by
// side.)
func TestFig4GoldenSequence(t *testing.T) {
	p := Fig2().Program
	rounds, free := crossoff.Schedule(p)
	if !free {
		t.Fatal("Fig 2 not deadlock-free")
	}
	var got []string
	for _, r := range rounds {
		var parts []string
		for _, pr := range r.Pairs {
			parts = append(parts, p.Message(pr.Msg).Name)
		}
		got = append(got, strings.Join(parts, "+"))
	}
	// Figure 4, steps 1–12 (messages whose pair crosses in each step).
	want := []string{
		"XA",    // 1: host/C1
		"XB",    // 2: C1/C2
		"XA+XC", // 3: two pairs
		"XB",    // 4
		"XA+YC", // 5: two pairs
		"XC",    // 6
		"YB",    // 7
		"XB",    // 8
		"YA+YC", // 9: two pairs
		"XA",    // 10
		"YB",    // 11
		"YA",    // 12
	}
	if len(got) != len(want) {
		t.Fatalf("schedule has %d steps, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d crosses %q, want %q (full schedule %v)", i+1, got[i], want[i], got)
		}
	}
}
