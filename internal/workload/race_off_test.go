//go:build !race

package workload

// raceEnabled reports whether the race detector instruments this
// build; allocation gates skip themselves when it does.
const raceEnabled = false
