package workload

import (
	"fmt"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// MatVecOptions parameterizes the matrix–vector generator.
type MatVecOptions struct {
	// N is the matrix dimension (N×N) and the array length.
	N int
	// A and X are the operands; nil selects deterministic synthetic
	// values. A is row-major.
	A [][]float64
	X []float64
}

// MatVec generates a systolic y = A·x on a linear array Host, C1…CN:
// a stream of partial sums S0 (all zeros) enters C1; cell Cj holds x_j
// and column j of A and adds A[i][j]·x_j to the i-th passing partial
// sum; the completed results return to the host as message Y, routed
// across the whole array (a deliberately multi-hop message exercising
// queue-sequence assignment, §2.3/Fig 3).
func MatVec(opts MatVecOptions) (*Workload, error) {
	n := opts.N
	if n < 1 {
		return nil, fmt.Errorf("workload: MatVec needs N ≥ 1")
	}
	a := opts.A
	if a == nil {
		a = make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = float64(i + 2*j + 1)
			}
		}
	}
	x := opts.X
	if x == nil {
		x = make([]float64, n)
		for j := range x {
			x[j] = float64(j + 1)
		}
	}
	if len(a) != n || len(x) != n {
		return nil, fmt.Errorf("workload: MatVec: operand sizes do not match N=%d", n)
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("workload: MatVec: row %d has %d entries, want %d", i, len(a[i]), n)
		}
	}

	b := model.NewBuilder()
	host := b.AddHost("Host")
	cells := b.AddCells("C", n)

	ss := make([]model.MessageID, n+1) // ss[j] feeds cell j+1; ss[0] from host
	for j := 0; j < n; j++ {
		from := host
		if j > 0 {
			from = cells[j-1]
		}
		ss[j] = b.DeclareMessage(fmt.Sprintf("S%d", j), from, cells[j], n)
	}
	y := b.DeclareMessage("Y", cells[n-1], host, n)

	b.WriteN(host, ss[0], n).ReadN(host, y, n)
	for j := 0; j < n; j++ {
		c := cells[j]
		out := y
		if j < n-1 {
			out = ss[j+1]
		}
		for i := 0; i < n; i++ {
			b.Read(c, ss[j])
			b.Write(c, out)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: MatVec(%d): %w", n, err)
	}

	expected := make([]sim.Word, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += a[i][j] * x[j]
		}
		expected[i] = sim.Word(s)
	}

	logic := &matvecLogic{
		col:  make(map[model.MessageID]int),
		a:    a,
		x:    x,
		last: make([]float64, p.NumCells()),
	}
	for j := 0; j < n; j++ {
		out := y
		if j < n-1 {
			out = ss[j+1]
		}
		logic.col[out] = j // words of this message leave column j's cell
	}
	logic.source = ss[0]

	return &Workload{
		Name:            fmt.Sprintf("matvec(n=%d)", n),
		Program:         p,
		Topology:        topology.Linear(n + 1),
		Logic:           logic,
		Expected:        map[string][]sim.Word{"Y": expected},
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes:           "partial-sum pipeline; Y returns to the host across n links",
	}, nil
}

type matvecLogic struct {
	col    map[model.MessageID]int // producing column per forwarded message
	source model.MessageID
	a      [][]float64
	x      []float64
	last   []float64 // last partial sum read, per cell
}

func (l *matvecLogic) OnRead(cell model.CellID, msg model.MessageID, index int, w sim.Word) {
	l.last[cell] = float64(w)
}

func (l *matvecLogic) Produce(cell model.CellID, msg model.MessageID, index int) sim.Word {
	if msg == l.source {
		return 0 // host seeds zero partial sums
	}
	j := l.col[msg]
	return sim.Word(l.last[cell] + l.a[index][j]*l.x[j])
}
