package workload

import (
	"fmt"
	"sort"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// SortOptions parameterizes the odd-even transposition sort generator.
type SortOptions struct {
	// Values are the initial cell contents (one per cell); nil selects
	// a deterministic shuffled sequence of length N.
	Values []float64
	// N is the number of sorting cells when Values is nil.
	N int
	// Symmetric makes both partners of an exchange write before
	// reading. The resulting program is deadlocked under the strict
	// crossing-off procedure and deadlock-free under lookahead with
	// skip budget ≥ 1 — a generator-scale version of Fig 5's P1/§8
	// story. The default ("polite") ordering is strictly deadlock-free.
	Symmetric bool
}

// Sort generates odd-even transposition sort on a linear array
// Host, C1…CN: n compare-exchange rounds between alternating neighbor
// pairs, then each cell ships its resident value to the host (V1…VN,
// increasingly multi-hop). The host reads V1…VN, which must arrive
// sorted ascending.
func Sort(opts SortOptions) (*Workload, error) {
	values := opts.Values
	if values == nil {
		if opts.N < 1 {
			return nil, fmt.Errorf("workload: Sort needs Values or N ≥ 1")
		}
		values = make([]float64, opts.N)
		for i := range values {
			values[i] = float64((i*7+3)%(2*opts.N) + 1) // deterministic shuffle
		}
	}
	n := len(values)
	if n < 1 {
		return nil, fmt.Errorf("workload: Sort needs at least one value")
	}

	b := model.NewBuilder()
	host := b.AddHost("Host")
	cells := b.AddCells("C", n)

	logic := &sortLogic{
		symmetric: opts.Symmetric,
		resident:  make([]float64, n+1),
		outbox:    make([]float64, n+1),
		role:      make(map[model.MessageID]sortRole),
	}
	for j, v := range values {
		logic.resident[cells[j]] = v
	}

	// n rounds of compare-exchange between neighbors.
	for r := 0; r < n; r++ {
		for i := r % 2; i+1 < n; i += 2 {
			left, right := cells[i], cells[i+1]
			e := b.DeclareMessage(fmt.Sprintf("E%d.%d", r, i), left, right, 1)
			f := b.DeclareMessage(fmt.Sprintf("F%d.%d", r, i), right, left, 1)
			logic.role[e] = sortRole{kind: 'e'}
			logic.role[f] = sortRole{kind: 'f'}
			if opts.Symmetric {
				b.Write(left, e).Read(left, f)
				b.Write(right, f).Read(right, e)
			} else {
				b.Write(left, e).Read(left, f)
				b.Read(right, e).Write(right, f)
			}
		}
	}
	// Collection: each cell ships its final value to the host.
	vs := make([]model.MessageID, n)
	for j := 0; j < n; j++ {
		vs[j] = b.DeclareMessage(fmt.Sprintf("V%d", j+1), cells[j], host, 1)
		logic.role[vs[j]] = sortRole{kind: 'v'}
		b.Write(cells[j], vs[j])
	}
	for j := 0; j < n; j++ {
		b.Read(host, vs[j])
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: Sort(%d): %w", n, err)
	}

	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	expected := make(map[string][]sim.Word, n)
	for j := 0; j < n; j++ {
		expected[fmt.Sprintf("V%d", j+1)] = []sim.Word{sim.Word(sorted[j])}
	}

	variant := "polite"
	if opts.Symmetric {
		variant = "symmetric"
	}
	return &Workload{
		Name:            fmt.Sprintf("sort(n=%d,%s)", n, variant),
		Program:         p,
		Topology:        topology.Linear(n + 1),
		Logic:           logic,
		Expected:        expected,
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes: "odd-even transposition; the symmetric variant needs §8 " +
			"lookahead/buffering to be admitted",
	}, nil
}

type sortRole struct{ kind byte }

// sortLogic keeps one resident value per cell. An exchange sends the
// pre-exchange resident both ways; the left partner keeps the minimum,
// the right partner the maximum.
type sortLogic struct {
	symmetric bool
	resident  []float64
	outbox    []float64
	role      map[model.MessageID]sortRole
}

func (l *sortLogic) OnRead(cell model.CellID, msg model.MessageID, index int, w sim.Word) {
	switch l.role[msg].kind {
	case 'e': // right partner receives the left value
		l.outbox[cell] = l.resident[cell]
		if float64(w) > l.resident[cell] {
			l.resident[cell] = float64(w)
		}
	case 'f': // left partner receives the right value
		if float64(w) < l.resident[cell] {
			l.resident[cell] = float64(w)
		}
	case 'v': // host collection; values checked via Expected
	}
}

func (l *sortLogic) Produce(cell model.CellID, msg model.MessageID, index int) sim.Word {
	switch l.role[msg].kind {
	case 'e':
		return sim.Word(l.resident[cell])
	case 'f':
		if l.symmetric {
			// The write precedes the read, so resident is still the
			// pre-exchange value.
			return sim.Word(l.resident[cell])
		}
		return sim.Word(l.outbox[cell])
	default:
		return sim.Word(l.resident[cell])
	}
}

// Residents exposes the final cell contents (for tests that verify
// without host collection).
func (l *sortLogic) Residents(cells int) []float64 {
	out := make([]float64, 0, cells)
	for c := 1; c <= cells; c++ {
		out = append(out, l.resident[c])
	}
	return out
}
