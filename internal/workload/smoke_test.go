package workload

import (
	"testing"

	"systolic/internal/assign"
	"systolic/internal/crossoff"
	"systolic/internal/label"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// TestSmokeFig2Schedule checks the headline Fig 4 structure: the Fig 2
// program crosses off in exactly 12 rounds, with two pairs in rounds
// 3, 5 and 9 and one pair elsewhere.
func TestSmokeFig2Schedule(t *testing.T) {
	w := Fig2()
	rounds, free := crossoff.Schedule(w.Program)
	if !free {
		t.Fatalf("Fig 2 program classified deadlocked")
	}
	if len(rounds) != 12 {
		t.Fatalf("Fig 2 schedule has %d rounds, want 12", len(rounds))
	}
	for _, r := range rounds {
		want := 1
		if r.Step == 3 || r.Step == 5 || r.Step == 9 {
			want = 2
		}
		if len(r.Pairs) != want {
			t.Errorf("round %d has %d pairs, want %d", r.Step, len(r.Pairs), want)
		}
	}
}

// TestSmokeFig7Labels checks the §6 walkthrough: picking A's pair
// first labels A, B, C as 1, 3, 2.
func TestSmokeFig7Labels(t *testing.T) {
	w := Fig7(Fig7Options{})
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatalf("labeling failed: %v", err)
	}
	get := func(name string) int {
		m, ok := w.Program.MessageByName(name)
		if !ok {
			t.Fatalf("no message %s", name)
		}
		return lab.Dense[m.ID]
	}
	if a, b, c := get("A"), get("B"), get("C"); a != 1 || b != 3 || c != 2 {
		t.Fatalf("labels A=%d B=%d C=%d, want 1/3/2", a, b, c)
	}
	if err := label.Check(w.Program, lab.ByMessage); err != nil {
		t.Fatalf("labeling inconsistent: %v", err)
	}
}

// TestSmokeFIREndToEnd runs Fig 2 under the full avoidance pipeline
// and checks the filter outputs.
func TestSmokeFIREndToEnd(t *testing.T) {
	w := Fig2()
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatalf("labeling: %v", err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: w.DefaultQueues,
		Capacity:      w.DefaultCapacity,
		Policy:        assign.Compatible(),
		Labels:        lab.Dense,
		Logic:         w.Logic,
	})
	if err != nil {
		t.Fatalf("sim config: %v", err)
	}
	if !res.Completed {
		t.Fatalf("run %s: %s", res.Outcome(), sim.DescribeBlocked(w.Program, res.Blocked))
	}
	if err := w.CheckReceived(res.Received); err != nil {
		t.Fatal(err)
	}
}

// TestSmokeFig7DeadlockAndAvoidance reproduces Fig 7's lower half: one
// queue per link, naive FCFS assignment deadlocks; compatible
// assignment with the paper's labels completes.
func TestSmokeFig7DeadlockAndAvoidance(t *testing.T) {
	w := Fig7(Fig7Options{})
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatalf("labeling: %v", err)
	}
	base := sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: 1,
		Capacity:      1,
		Labels:        lab.Dense,
	}

	naive := base
	naive.Policy = assign.Naive(assign.FCFS, 0)
	resN, err := sim.Run(w.Program, naive)
	if err != nil {
		t.Fatalf("naive sim: %v", err)
	}
	if !resN.Deadlocked {
		t.Fatalf("naive FCFS run %s, want deadlock", resN.Outcome())
	}

	good := base
	good.Policy = assign.Compatible()
	resC, err := sim.Run(w.Program, good)
	if err != nil {
		t.Fatalf("compatible sim: %v", err)
	}
	if !resC.Completed {
		t.Fatalf("compatible run %s: %s", resC.Outcome(), sim.DescribeBlocked(w.Program, resC.Blocked))
	}
}

// TestSmokeFig5P1Lookahead checks the §8 story: P1 is deadlocked
// strictly, deadlock-free with lookahead budget 2, and still deadlocked
// with budget 1.
func TestSmokeFig5P1Lookahead(t *testing.T) {
	p := Fig5P1().Program
	if crossoff.Classify(p, crossoff.Options{}) {
		t.Fatal("P1 classified deadlock-free strictly")
	}
	if !crossoff.Classify(p, crossoff.Options{Lookahead: true, Budget: crossoff.UniformBudget(2)}) {
		t.Fatal("P1 not admitted with lookahead budget 2")
	}
	if crossoff.Classify(p, crossoff.Options{Lookahead: true, Budget: crossoff.UniformBudget(1)}) {
		t.Fatal("P1 admitted with lookahead budget 1")
	}
}

// TestSmokeMatMul runs the 2-D mesh workload end to end.
func TestSmokeMatMul(t *testing.T) {
	w, err := MatMul(MatMulOptions{Rows: 3, Inner: 4, Cols: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !crossoff.Classify(w.Program, crossoff.Options{}) {
		t.Fatal("matmul program not deadlock-free")
	}
	lab, err := label.Assign(w.Program, label.Options{})
	if err != nil {
		t.Fatalf("labeling: %v", err)
	}
	res, err := sim.Run(w.Program, sim.Config{
		Topology:      w.Topology,
		QueuesPerLink: w.DefaultQueues,
		Capacity:      w.DefaultCapacity,
		Policy:        assign.Compatible(),
		Labels:        lab.Dense,
		Logic:         w.Logic,
	})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	if !res.Completed {
		t.Fatalf("run %s: %s", res.Outcome(), sim.DescribeBlocked(w.Program, res.Blocked))
	}
	if err := w.CheckReceived(res.Received); err != nil {
		t.Fatal(err)
	}
}

// TestSmokeCompetingRoutes sanity-checks route computation for Fig 7.
func TestSmokeCompetingRoutes(t *testing.T) {
	w := Fig7(Fig7Options{})
	routes, err := topology.Routes(w.Program, w.Topology)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := w.Program.MessageByName("C")
	if len(routes[c.ID]) != 3 {
		t.Fatalf("message C crosses %d links, want 3", len(routes[c.ID]))
	}
	comp := topology.Competing(routes)
	// Link C3–C4 must carry both B and C.
	last := routes[c.ID][2].Link
	if got := len(comp[last]); got != 2 {
		t.Fatalf("link C3–C4 has %d competing messages, want 2", got)
	}
}
