package workload

import (
	"testing"

	"systolic/internal/crossoff"
)

func TestHornerSweep(t *testing.T) {
	for _, tc := range []struct{ k, m int }{
		{1, 1}, {1, 6}, {2, 2}, {3, 4}, {5, 20}, {8, 50},
	} {
		w, err := Horner(HornerOptions{Degree: tc.k - 1, Count: tc.m})
		if err != nil {
			t.Fatal(err)
		}
		if !crossoff.Classify(w.Program, crossoff.Options{}) {
			t.Fatalf("horner(k=%d,m=%d) not deadlock-free", tc.k, tc.m)
		}
		runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
	}
}

func TestHornerExplicit(t *testing.T) {
	// p(x) = 2x² - 3x + 1 at x ∈ {0, 1, 2, -1}.
	w, err := Horner(HornerOptions{
		Coefficients: []float64{2, -3, 1},
		Points:       []float64{0, 1, 2, -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0, 3, 6}
	for i, v := range want {
		if got := float64(w.Expected["Y"][i]); got != v {
			t.Fatalf("p(x_%d) expected %v, got %v", i, v, got)
		}
	}
	runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
}

func TestHornerLongStreamStaysPipelined(t *testing.T) {
	// The host interleave must keep the program deadlock-free for
	// streams much longer than the array (the write-all-first variant
	// is not).
	w, err := Horner(HornerOptions{Degree: 2, Count: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !crossoff.Classify(w.Program, crossoff.Options{}) {
		t.Fatal("long-stream horner not deadlock-free")
	}
	res := runPipeline(t, w, w.DefaultQueues, w.DefaultCapacity)
	// Throughput: ~O(m) cycles, not O(m·k).
	if res.Cycles > 100*8 {
		t.Fatalf("horner makespan %d too slow for 100 points", res.Cycles)
	}
}

func TestHornerValidation(t *testing.T) {
	if _, err := Horner(HornerOptions{Degree: -1}); err == nil {
		t.Fatal("negative degree accepted")
	}
	if _, err := Horner(HornerOptions{Coefficients: []float64{}, Points: []float64{1}}); err == nil {
		t.Fatal("empty coefficients accepted")
	}
}
