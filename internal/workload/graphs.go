package workload

// Second-generation workload families: operator graphs lowered onto
// systolic arrays, in the style of chiplet co-simulation decomposition
// — attention/MoE-style routing, iterative stencils, FFT butterflies,
// and pipelined sorting networks that scale to 10k+ cells. Every
// generator emits its program in a serial word-transfer history order
// (each W immediately followed by its matching R across the history),
// so the result is deadlock-free by construction under the strict
// crossing-off procedure — the same oracle trick verify.
// RandomDeadlockFree uses — while still exercising deep multi-hop
// routes, wide fan-in, and long pipelines at run time.

import (
	"fmt"

	"systolic/internal/model"
	"systolic/internal/sim"
	"systolic/internal/topology"
)

// AttentionOptions sizes the attention/MoE-style operator graph.
type AttentionOptions struct {
	// Tokens is the number of tokens routed through the graph (≥ 1).
	Tokens int
	// Experts is the number of expert cells (≥ 1).
	Experts int
}

// Attention generates an attention/MoE-style operator graph on a
// linear array: a router (cell 0) dispatches each token to one of E
// expert cells round-robin; each expert scales the token by its
// weight and ships the result to a combiner (cell E+1). Token t's
// route crosses every cell between router and its expert, and every
// expert-to-combiner route overlaps on the tail links, so the family
// stresses multi-hop contention and fan-in — the operator-graph shape
// the ROADMAP's scenario-diversity item calls for.
func Attention(opts AttentionOptions) (*Workload, error) {
	if opts.Tokens < 1 || opts.Experts < 1 {
		return nil, fmt.Errorf("workload: Attention needs Tokens ≥ 1 and Experts ≥ 1 (got %d, %d)", opts.Tokens, opts.Experts)
	}
	t, e := opts.Tokens, opts.Experts
	b := model.NewBuilder()
	router := b.AddHost("Router")
	experts := b.AddCells("X", e)
	combiner := b.AddCell("Comb")

	logic := &attnLogic{
		weight: make([]float64, e),
		value:  map[model.MessageID]float64{},
	}
	for i := range logic.weight {
		logic.weight[i] = float64(i%5 + 1)
	}
	expected := make(map[string][]sim.Word, t)

	// Serial history: token t is dispatched, transformed, and combined
	// before token t+1 is dispatched. Per-cell program order is the
	// projection of this history, so crossing-off can cross pairs in
	// exactly history order: deadlock-free by construction. At run
	// time the tokens still pipeline — the history only fixes each
	// cell's op order, not the global schedule.
	for i := 0; i < t; i++ {
		x := i % e
		tok := b.DeclareMessage(fmt.Sprintf("T%d", i+1), router, experts[x], 1)
		out := b.DeclareMessage(fmt.Sprintf("O%d", i+1), experts[x], combiner, 1)
		v := float64(i + 1)
		logic.value[tok] = v
		b.Write(router, tok)
		b.Read(experts[x], tok)
		b.Write(experts[x], out)
		b.Read(combiner, out)
		logic.out = append(logic.out, outDecl{msg: out, tok: tok, expert: x})
		expected[fmt.Sprintf("O%d", i+1)] = []sim.Word{sim.Word(logic.weight[x] * v)}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: Attention(%d,%d): %w", t, e, err)
	}
	logic.finish()
	return &Workload{
		Name:            fmt.Sprintf("attention(tokens=%d,experts=%d)", t, e),
		Program:         p,
		Topology:        topology.Linear(e + 2),
		Logic:           logic,
		Expected:        expected,
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes: "MoE-style operator graph: round-robin token routing " +
			"through expert cells into a combiner; serial-history " +
			"construction keeps it strictly deadlock-free",
	}, nil
}

// outDecl records one expert output's provenance.
type outDecl struct {
	msg    model.MessageID
	tok    model.MessageID
	expert int
}

// attnLogic scales each token by its expert's weight.
type attnLogic struct {
	weight []float64
	value  map[model.MessageID]float64 // token and output messages → word value
	out    []outDecl
}

// finish precomputes every output message's value: the expert output
// depends only on the token value and the expert weight, so it can be
// fixed at construction.
func (l *attnLogic) finish() {
	for _, o := range l.out {
		l.value[o.msg] = l.weight[o.expert] * l.value[o.tok]
	}
}

func (l *attnLogic) OnRead(model.CellID, model.MessageID, int, sim.Word) {}

func (l *attnLogic) Produce(_ model.CellID, msg model.MessageID, _ int) sim.Word {
	return sim.Word(l.value[msg])
}

// StencilOptions sizes the iterative mesh stencil.
type StencilOptions struct {
	// Rows and Cols shape the 2-D mesh (each ≥ 1, Rows·Cols ≥ 2).
	Rows, Cols int
	// Iters is the number of diffusion iterations (≥ 1).
	Iters int
}

// Stencil generates an iterative neighbor-exchange stencil on a 2-D
// mesh: each iteration, every horizontal pair and then every vertical
// pair exchanges residents and both members keep the average — a
// diffusion relaxation. Exchanges use the polite pair ordering (one
// member writes first, the other reads first), and pairs are emitted
// in a serial history, so the program is strictly deadlock-free while
// the mesh still saturates every link each iteration at run time.
func Stencil(opts StencilOptions) (*Workload, error) {
	r, c, it := opts.Rows, opts.Cols, opts.Iters
	if r < 1 || c < 1 || r*c < 2 {
		return nil, fmt.Errorf("workload: Stencil needs Rows·Cols ≥ 2 (got %d×%d)", r, c)
	}
	if it < 1 {
		return nil, fmt.Errorf("workload: Stencil needs Iters ≥ 1 (got %d)", it)
	}
	b := model.NewBuilder()
	cells := b.AddCells("S", r*c)
	at := func(i, j int) model.CellID { return cells[i*c+j] }

	logic := newExchangeLogic(r*c, exchangeAverage)
	for idx := range cells {
		logic.resident[cells[idx]] = float64((idx*13+5)%97 + 1)
	}

	declarePair := func(name string, a, bb model.CellID) {
		e := b.DeclareMessage(name+"e", a, bb, 1)
		f := b.DeclareMessage(name+"f", bb, a, 1)
		logic.kind[e] = 'e'
		logic.kind[f] = 'f'
		b.Write(a, e)
		b.Read(bb, e)
		b.Write(bb, f)
		b.Read(a, f)
	}
	for k := 0; k < it; k++ {
		for i := 0; i < r; i++ {
			for j := 0; j+1 < c; j++ {
				declarePair(fmt.Sprintf("H%d.%d.%d", k, i, j), at(i, j), at(i, j+1))
			}
		}
		for i := 0; i+1 < r; i++ {
			for j := 0; j < c; j++ {
				declarePair(fmt.Sprintf("V%d.%d.%d", k, i, j), at(i, j), at(i+1, j))
			}
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: Stencil(%d×%d,%d): %w", r, c, it, err)
	}
	return &Workload{
		Name:            fmt.Sprintf("stencil(%dx%d,iters=%d)", r, c, it),
		Program:         p,
		Topology:        topology.Mesh2D(r, c),
		Logic:           logic,
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes: "iterative diffusion stencil; residents verified by " +
			"sequential replay, no host collection so it scales",
	}, nil
}

// FFTOptions sizes the butterfly network.
type FFTOptions struct {
	// LogN is the number of butterfly stages; the array has 2^LogN
	// cells. Must be ≥ 1.
	LogN int
}

// FFT generates an in-place butterfly network (the data-flow graph of
// an FFT; the arithmetic is the Walsh–Hadamard transform, i.e. all
// twiddle factors 1, keeping word semantics exactly verifiable in
// floats): logN stages, stage s exchanging between partners 2^s
// apart. Later stages cross long stretches of the linear array, so
// queue competition grows stage by stage — the deep-multi-hop shape
// the figure workloads never reach.
func FFT(opts FFTOptions) (*Workload, error) {
	if opts.LogN < 1 {
		return nil, fmt.Errorf("workload: FFT needs LogN ≥ 1 (got %d)", opts.LogN)
	}
	n := 1 << opts.LogN
	b := model.NewBuilder()
	cells := b.AddCells("B", n)

	logic := newExchangeLogic(n, exchangeButterfly)
	for idx := range cells {
		logic.resident[cells[idx]] = float64((idx*7+3)%(2*n) + 1)
	}

	for s := 0; s < opts.LogN; s++ {
		stride := 1 << s
		for i := 0; i < n; i++ {
			if i&stride != 0 {
				continue
			}
			a, bb := cells[i], cells[i+stride]
			x := b.DeclareMessage(fmt.Sprintf("X%d.%d", s, i), a, bb, 1)
			y := b.DeclareMessage(fmt.Sprintf("Y%d.%d", s, i), bb, a, 1)
			logic.kind[x] = 'e'
			logic.kind[y] = 'f'
			b.Write(a, x)
			b.Read(bb, x)
			b.Write(bb, y)
			b.Read(a, y)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: FFT(logN=%d): %w", opts.LogN, err)
	}
	return &Workload{
		Name:            fmt.Sprintf("fft(logN=%d)", opts.LogN),
		Program:         p,
		Topology:        topology.Linear(n),
		Logic:           logic,
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes: "butterfly exchange network (Walsh–Hadamard arithmetic); " +
			"stage-s partners sit 2^s cells apart, so routes deepen " +
			"stage by stage",
	}, nil
}

// PipelinedSortOptions sizes the collection-free sorting network.
type PipelinedSortOptions struct {
	// Width is the number of sorting cells (≥ 2).
	Width int
	// Rounds is the number of odd-even transposition rounds (≥ 1;
	// Width rounds fully sort). Fewer rounds bound the program size
	// for very wide arrays.
	Rounds int
}

// PipelinedSort generates an odd-even transposition sorting network
// without host collection: every message is single-hop between
// neighbors and per-cell state is a dense slice, so the generator
// scales to 10k+ cells — the scale-test workload. After Rounds
// rounds the residents equal Rounds rounds of odd-even transposition
// applied directly (a full sort when Rounds ≥ Width).
func PipelinedSort(opts PipelinedSortOptions) (*Workload, error) {
	w, rounds := opts.Width, opts.Rounds
	if w < 2 {
		return nil, fmt.Errorf("workload: PipelinedSort needs Width ≥ 2 (got %d)", w)
	}
	if rounds < 1 {
		return nil, fmt.Errorf("workload: PipelinedSort needs Rounds ≥ 1 (got %d)", rounds)
	}
	b := model.NewBuilder()
	cells := b.AddCells("P", w)

	logic := newExchangeLogic(w, exchangeSort)
	for idx := range cells {
		logic.resident[cells[idx]] = float64((idx*7+3)%(2*w) + 1)
	}

	for r := 0; r < rounds; r++ {
		for i := r % 2; i+1 < w; i += 2 {
			left, right := cells[i], cells[i+1]
			e := b.DeclareMessage(fmt.Sprintf("E%d.%d", r, i), left, right, 1)
			f := b.DeclareMessage(fmt.Sprintf("F%d.%d", r, i), right, left, 1)
			logic.kind[e] = 'e'
			logic.kind[f] = 'f'
			b.Write(left, e)
			b.Read(right, e)
			b.Write(right, f)
			b.Read(left, f)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("workload: PipelinedSort(%d,%d): %w", w, rounds, err)
	}
	return &Workload{
		Name:            fmt.Sprintf("pipesort(width=%d,rounds=%d)", w, rounds),
		Program:         p,
		Topology:        topology.Linear(w),
		Logic:           logic,
		DefaultQueues:   2,
		DefaultCapacity: 2,
		Notes: "collection-free odd-even transposition; dense per-cell " +
			"state and single-hop messages keep 10k-cell arrays cheap",
	}, nil
}

// Exchange combining rules for exchangeLogic.
const (
	// exchangeSort: left keeps min, right keeps max.
	exchangeSort = iota
	// exchangeAverage: both keep the average (diffusion).
	exchangeAverage
	// exchangeButterfly: initiator keeps a+b, partner keeps a-b.
	exchangeButterfly
)

// exchangeLogic is the shared CellLogic for pairwise-exchange
// families (stencil, FFT, pipelined sort): message kind 'e' carries
// the initiator's resident to the partner, kind 'f' carries the
// partner's pre-exchange resident back; both sides then apply the
// combining rule. Pair ordering is polite (initiator: W(e) … R(f);
// partner: R(e) W(f)), so the partner's Produce(f) must return the
// pre-exchange resident stashed in outbox. State is dense slices —
// no per-message maps beyond the kind table — so 10k-cell instances
// stay cheap.
type exchangeLogic struct {
	rule     int
	resident []float64
	outbox   []float64
	kind     map[model.MessageID]byte
}

func newExchangeLogic(cells, rule int) *exchangeLogic {
	return &exchangeLogic{
		rule:     rule,
		resident: make([]float64, cells),
		outbox:   make([]float64, cells),
		kind:     map[model.MessageID]byte{},
	}
}

func (l *exchangeLogic) combine(mine, theirs float64, initiator bool) float64 {
	switch l.rule {
	case exchangeAverage:
		return (mine + theirs) / 2
	case exchangeButterfly:
		if initiator {
			return mine + theirs // a' = a + b
		}
		return theirs - mine // b' = a - b
	default: // exchangeSort
		if initiator {
			if theirs < mine {
				return theirs // left keeps min
			}
			return mine
		}
		if theirs > mine {
			return theirs // right keeps max
		}
		return mine
	}
}

func (l *exchangeLogic) OnRead(cell model.CellID, msg model.MessageID, _ int, w sim.Word) {
	switch l.kind[msg] {
	case 'e': // partner receives the initiator's value
		l.outbox[cell] = l.resident[cell]
		l.resident[cell] = l.combine(l.resident[cell], float64(w), false)
	case 'f': // initiator receives the partner's pre-exchange value
		l.resident[cell] = l.combine(l.resident[cell], float64(w), true)
	}
}

func (l *exchangeLogic) Produce(cell model.CellID, msg model.MessageID, _ int) sim.Word {
	if l.kind[msg] == 'f' {
		// The partner already folded the exchange into resident; the
		// return value is its pre-exchange resident.
		return sim.Word(l.outbox[cell])
	}
	return sim.Word(l.resident[cell])
}

// Residents exposes the final per-cell values for verification by
// sequential replay.
func (l *exchangeLogic) Residents() []float64 {
	return append([]float64(nil), l.resident...)
}
